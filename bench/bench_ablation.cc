// Ablations over the paper's design decisions (DESIGN.md calls these out):
//   A1. replication factor: 2 vs 3 vs 5 copies — write latency (quorum),
//       read availability under one-site loss, RAM amplification;
//   A2. failover detection timeout: write-unavailability window after a
//       master crash;
//   A3. isolation level: READ_COMMITTED vs READ_UNCOMMITTED — dirty-read
//       anomaly counts under concurrent PS/FE activity on one SE;
//   A4. §6 future work head-to-head: master/slave (CP and AP) vs QUORUM vs
//       Paxos-style consensus — write availability through a partition
//       where the master/leader sits on the minority side, plus loss on
//       crash.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.h"
#include "replication/consensus.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

// ---------------------------------------------------------------------------
// A1: replication factor
// ---------------------------------------------------------------------------

void PrintReplicationFactorTable() {
  Table t("ABL-1: replication factor (quorum commits, 5 sites)",
          {"copies", "quorum write latency", "survives one-site loss",
           "RAM amplification"});
  for (int factor : {2, 3, 5}) {
    sim::SimClock clock;
    auto network = std::make_unique<sim::Network>(sim::Topology(5), &clock);
    std::vector<std::unique_ptr<storage::StorageElement>> ses;
    std::vector<storage::StorageElement*> ptrs;
    for (int s = 0; s < factor; ++s) {
      storage::StorageElementConfig cfg;
      cfg.site = static_cast<sim::SiteId>(s);
      ses.push_back(std::make_unique<storage::StorageElement>(
          cfg, &clock, static_cast<uint32_t>(s)));
      ptrs.push_back(ses.back().get());
    }
    replication::ReplicaSetConfig cfg;
    cfg.sync_mode = replication::SyncMode::kQuorum;
    replication::ReplicaSet rs(cfg, ptrs, network.get());
    clock.AdvanceTo(Seconds(1));
    replication::WriteBuilder wb;
    wb.Set(1, "v", int64_t{1});
    auto w = rs.Write(0, std::move(wb).Build());
    bool survives = factor >= 3;  // Majority still exists with 1 site gone.
    t.AddRow({Table::Num(factor), Table::Dur(w.latency),
              survives ? "yes" : "NO (majority = all)",
              Table::Dbl(static_cast<double>(factor), 0) + "x"});
  }
  t.Print();
}

// ---------------------------------------------------------------------------
// A2: failover detection timeout
// ---------------------------------------------------------------------------

void PrintFailoverTimeoutTable() {
  Table t("ABL-2: failover detection timeout vs write-unavailability window "
          "after a master SE crash (writes every 100ms)",
          {"detection timeout", "writes rejected", "unavailability window"});
  for (MicroDuration detect : {Seconds(1), Seconds(5), Seconds(30)}) {
    sim::SimClock clock;
    auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
    std::vector<std::unique_ptr<storage::StorageElement>> ses;
    std::vector<storage::StorageElement*> ptrs;
    for (int s = 0; s < 3; ++s) {
      storage::StorageElementConfig cfg;
      cfg.site = static_cast<sim::SiteId>(s);
      ses.push_back(std::make_unique<storage::StorageElement>(
          cfg, &clock, static_cast<uint32_t>(s)));
      ptrs.push_back(ses.back().get());
    }
    replication::ReplicaSetConfig cfg;
    cfg.failover_detection = detect;
    replication::ReplicaSet rs(cfg, ptrs, network.get());
    clock.AdvanceTo(Seconds(1));
    replication::WriteBuilder seed;
    seed.Set(1, "v", int64_t{0});
    rs.Write(0, std::move(seed).Build());
    clock.Advance(Seconds(1));
    rs.CatchUpAll();
    rs.CrashReplica(rs.master_id());
    MicroTime crash = clock.Now();
    int64_t rejected = 0;
    MicroTime first_ok = 0;
    for (int i = 0; i < 1000; ++i) {
      clock.Advance(Millis(100));
      replication::WriteBuilder wb;
      wb.Set(1, "v", static_cast<int64_t>(i));
      auto w = rs.Write(1, std::move(wb).Build());
      if (w.status.ok()) {
        first_ok = clock.Now();
        break;
      }
      ++rejected;
    }
    t.AddRow({FormatDuration(detect), Table::Num(rejected),
              Table::Dur(first_ok - crash)});
  }
  t.Print();
}

// ---------------------------------------------------------------------------
// A3: isolation level anomaly counts
// ---------------------------------------------------------------------------

void PrintIsolationTable() {
  Table t("ABL-3: dirty reads observed by a concurrent reader during 1,000 "
          "writer transactions (one SE)",
          {"reader isolation", "dirty reads", "note"});
  for (auto iso : {storage::IsolationLevel::kReadCommitted,
                   storage::IsolationLevel::kReadUncommitted}) {
    sim::SimClock clock;
    storage::StorageElementConfig cfg;
    storage::StorageElement se(cfg, &clock);
    {
      auto txn = se.Begin();
      (void)txn.SetAttribute(1, "balance", int64_t{0});
      (void)txn.Commit(0);
    }
    int64_t dirty = 0;
    for (int i = 1; i <= 1000; ++i) {
      clock.Advance(Millis(1));
      auto writer = se.Begin();
      (void)writer.SetAttribute(1, "balance", static_cast<int64_t>(i));
      // Concurrent read while the writer is uncommitted.
      auto reader = se.Begin(iso);
      auto v = reader.GetAttribute(1, "balance");
      if (v.ok() &&
          storage::ValueToString(*v) == std::to_string(i)) {
        ++dirty;  // Saw the uncommitted value.
      }
      reader.Abort();
      if (i % 2 == 0) {
        (void)writer.Commit(clock.Now());
      } else {
        writer.Abort();  // Half the writes never happen.
      }
    }
    t.AddRow({iso == storage::IsolationLevel::kReadCommitted
                  ? "READ_COMMITTED (intra-SE, §3.2)"
                  : "READ_UNCOMMITTED (multi-SE, §3.2)",
              Table::Num(dirty),
              iso == storage::IsolationLevel::kReadCommitted
                  ? "reads never blocked, never dirty"
                  : "half of these observed writes that aborted"});
  }
  t.Print();
}

// ---------------------------------------------------------------------------
// A4: replication strategy head-to-head (incl. §6 consensus)
// ---------------------------------------------------------------------------

struct StrategyResult {
  double write_availability = 0;
  int64_t lost_on_crash = 0;
  MicroDuration steady_latency = 0;
};

StrategyResult RunMasterSlave(replication::PartitionMode pmode,
                              replication::SyncMode smode) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (int s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = static_cast<sim::SiteId>(s);
    ses.push_back(std::make_unique<storage::StorageElement>(
        cfg, &clock, static_cast<uint32_t>(s)));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSetConfig cfg;
  cfg.partition_mode = pmode;
  cfg.sync_mode = smode;
  cfg.async_ship_delay = Millis(10);
  replication::ReplicaSet rs(cfg, ptrs, network.get());
  StrategyResult out;
  clock.AdvanceTo(Seconds(1));
  {
    replication::WriteBuilder wb;
    wb.Set(1, "v", int64_t{0});
    out.steady_latency = rs.Write(0, std::move(wb).Build()).latency;
  }
  // Master's site isolated for 60s; writes arrive at site 1 every 100ms.
  network->partitions().IsolateSite(0, 3, clock.Now(),
                                    clock.Now() + Seconds(60));
  int64_t ok = 0, total = 0;
  for (int i = 0; i < 600; ++i) {
    clock.Advance(Millis(100));
    replication::WriteBuilder wb;
    wb.Set(1 + i % 10, "v", static_cast<int64_t>(i));
    if (rs.Write(1, std::move(wb).Build()).status.ok()) ++ok;
    ++total;
  }
  out.write_availability = static_cast<double>(ok) / total;
  // Crash-loss probe: fresh commits then master crash.
  clock.Advance(Seconds(60));
  for (int i = 0; i < 10; ++i) {
    replication::WriteBuilder wb;
    wb.Set(50, "v", static_cast<int64_t>(i));
    rs.Write(rs.master_site(), std::move(wb).Build());
  }
  rs.CrashReplica(rs.master_id());
  clock.Advance(Seconds(10));
  auto fo = rs.FailOver();
  if (fo.ok()) out.lost_on_crash = fo->lost_transactions;
  return out;
}

StrategyResult RunConsensus() {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (int s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = static_cast<sim::SiteId>(s);
    ses.push_back(std::make_unique<storage::StorageElement>(
        cfg, &clock, static_cast<uint32_t>(s)));
    ptrs.push_back(ses.back().get());
  }
  replication::ConsensusReplicaSet group(replication::ConsensusConfig(), ptrs,
                                         network.get());
  StrategyResult out;
  clock.AdvanceTo(Seconds(1));
  {
    replication::WriteBuilder wb;
    wb.Set(1, "v", int64_t{0});
    out.steady_latency = group.Write(0, std::move(wb).Build()).latency;
  }
  network->partitions().IsolateSite(0, 3, clock.Now(),
                                    clock.Now() + Seconds(60));
  int64_t ok = 0, total = 0;
  for (int i = 0; i < 600; ++i) {
    clock.Advance(Millis(100));
    replication::WriteBuilder wb;
    wb.Set(1 + i % 10, "v", static_cast<int64_t>(i));
    if (group.Write(1, std::move(wb).Build()).status.ok()) ++ok;
    ++total;
  }
  out.write_availability = static_cast<double>(ok) / total;
  clock.Advance(Seconds(60));
  storage::CommitSeq before = group.committed_seq();
  for (int i = 0; i < 10; ++i) {
    replication::WriteBuilder wb;
    wb.Set(50, "v", static_cast<int64_t>(i));
    group.Write(group.leader_site(), std::move(wb).Build());
  }
  group.CrashReplica(group.leader_id());
  clock.Advance(Seconds(10));
  replication::WriteBuilder wb;
  wb.Set(51, "v", int64_t{1});
  (void)group.Write(1, std::move(wb).Build());
  // Committed entries never truncate under consensus.
  out.lost_on_crash =
      static_cast<int64_t>(before + 10 + 1 - group.committed_seq());
  if (out.lost_on_crash < 0) out.lost_on_crash = 0;
  return out;
}

void PrintStrategyTable() {
  Table t("ABL-4: replication strategy head-to-head (master/leader site "
          "isolated 60s, writes from the surviving side; §6 future work)",
          {"strategy", "steady write latency", "write avail during cut",
           "acked txns lost on crash"});
  auto cp = RunMasterSlave(replication::PartitionMode::kPreferConsistency,
                           replication::SyncMode::kAsync);
  t.AddRow({"master/slave async, CP (paper)", Table::Dur(cp.steady_latency),
            Table::Pct(cp.write_availability, 1), Table::Num(cp.lost_on_crash)});
  auto ap = RunMasterSlave(replication::PartitionMode::kPreferAvailability,
                           replication::SyncMode::kAsync);
  t.AddRow({"master/slave async, AP (§5)", Table::Dur(ap.steady_latency),
            Table::Pct(ap.write_availability, 1),
            Table::Num(ap.lost_on_crash) + " (+divergence)"});
  auto qr = RunMasterSlave(replication::PartitionMode::kPreferConsistency,
                           replication::SyncMode::kQuorum);
  t.AddRow({"master/slave quorum", Table::Dur(qr.steady_latency),
            Table::Pct(qr.write_availability, 1), Table::Num(qr.lost_on_crash)});
  auto cs = RunConsensus();
  t.AddRow({"consensus (Paxos-style, §6)", Table::Dur(cs.steady_latency),
            Table::Pct(cs.write_availability, 1), Table::Num(cs.lost_on_crash)});
  t.Print();

  Table t2("ABL-4 expected shape", {"check", "result"});
  t2.AddRow({"CP loses write availability during the cut",
             cp.write_availability < 0.5 ? "PASS" : "FAIL"});
  t2.AddRow({"consensus keeps writing (majority side) AND loses nothing",
             cs.write_availability > 0.9 && cs.lost_on_crash == 0 ? "PASS"
                                                                  : "FAIL"});
  t2.AddRow({"consensus pays latency even in steady state",
             cs.steady_latency > cp.steady_latency ? "PASS" : "FAIL"});
  t2.Print();
}

void BM_ConsensusWrite(benchmark::State& state) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (int s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = static_cast<sim::SiteId>(s);
    ses.push_back(std::make_unique<storage::StorageElement>(
        cfg, &clock, static_cast<uint32_t>(s)));
    ptrs.push_back(ses.back().get());
  }
  replication::ConsensusReplicaSet group(replication::ConsensusConfig(), ptrs,
                                         network.get());
  uint64_t i = 0;
  for (auto _ : state) {
    clock.Advance(Micros(100));
    replication::WriteBuilder wb;
    wb.Set(i % 100, "v", static_cast<int64_t>(i));
    auto w = group.Write(0, std::move(wb).Build());
    benchmark::DoNotOptimize(w);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsensusWrite);

}  // namespace

int main(int argc, char** argv) {
  PrintReplicationFactorTable();
  PrintFailoverTimeoutTable();
  PrintIsolationTable();
  PrintStrategyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
