// E8 — the data location stage (§3.3.1 decision 1, §3.5, the H-F link).
//
// Compares the three realizations the paper discusses:
//   * provisioned identity-location maps: O(log N) lookups, per-entry RAM
//     stolen from subscriber storage;
//   * cached maps: O(1) hits but a miss broadcasts to every SE in the
//     system (cost grows with #SE);
//   * consistent hashing: O(1), near-zero state — but no selective placement
//     and one data replica per identity type (the paper's impracticality).

#include <benchmark/benchmark.h>

#include "common/table.h"
#include "location/location_stage.h"
#include "telecom/subscriber.h"

using namespace udr;
using location::Identity;
using location::IdentityType;
using location::LocationEntry;

namespace {

void PrintLocationTables() {
  location::LocationCostModel model;

  Table t("E8a: provisioned identity-location maps vs subscriber count N "
          "(modelled O(log N) lookup; 2 identities per subscriber)",
          {"N subscribers", "lookup cost", "stage RAM", "RAM vs 200GB SE"});
  for (int64_t n : {10'000LL, 100'000LL, 1'000'000LL}) {
    location::ProvisionedLocationStage stage(model);
    telecom::SubscriberFactory factory(42);
    for (int64_t i = 0; i < n; ++i) {
      LocationEntry e{static_cast<storage::RecordKey>(i),
                      static_cast<uint32_t>(i % 16)};
      stage.Bind({IdentityType::kImsi, factory.ImsiOf(i)}, e);
      stage.Bind({IdentityType::kMsisdn, factory.MsisdnOf(i)}, e);
    }
    auto r = stage.Resolve({IdentityType::kImsi, factory.ImsiOf(n / 2)}, 0);
    double se_fraction = static_cast<double>(stage.ApproxBytes()) /
                         (200.0 * 1000 * 1000 * 1000);
    t.AddRow({Table::Num(n), Table::Dur(r.cost),
              Table::Bytes(stage.ApproxBytes()), Table::Pct(se_fraction, 3)});
  }
  t.Print();

  Table t2("E8b: consistent hashing (O(1)) — the §3.5 alternative",
           {"partitions", "lookup cost", "stage RAM", "data replicas needed",
            "selective placement"});
  for (uint32_t parts : {16u, 256u}) {
    location::ConsistentHashLocationStage stage(parts, 128, model);
    auto r = stage.Resolve({IdentityType::kImsi, "214050000000001"}, 0);
    t2.AddRow({Table::Num(parts), Table::Dur(r.cost),
               Table::Bytes(stage.ApproxBytes()),
               Table::Num(stage.RequiredDataReplicas()) + " (one per identity)",
               "impossible"});
  }
  t2.Print();

  Table t3("E8c: cached maps — miss broadcast cost vs system size (§3.5)",
           {"#SE in system", "hit cost", "miss cost"});
  for (int se_count : {16, 64, 256}) {
    std::map<std::string, LocationEntry> truth;
    truth["x"] = {1, 0};
    location::CachedLocationStage stage(
        [&truth](const Identity& id) -> StatusOr<LocationEntry> {
          auto it = truth.find(id.value);
          if (it == truth.end()) return Status::NotFound("no");
          return it->second;
        },
        [se_count]() { return se_count; }, model);
    auto miss = stage.Resolve({IdentityType::kImsi, "x"}, 0);
    auto hit = stage.Resolve({IdentityType::kImsi, "x"}, 0);
    t3.AddRow({Table::Num(se_count), Table::Dur(hit.cost),
               Table::Dur(miss.cost)});
  }
  t3.Print();

  Table t4("E8d: expected shape", {"check", "result"});
  {
    location::ProvisionedLocationStage s1(model), s2(model);
    for (int i = 0; i < 1000; ++i) {
      s1.Bind({IdentityType::kImsi, "a" + std::to_string(i)}, {1, 0});
    }
    for (int i = 0; i < 1000000; ++i) {
      s2.Bind({IdentityType::kImsi, "b" + std::to_string(i)}, {1, 0});
    }
    auto c1 = s1.Resolve({IdentityType::kImsi, "a5"}, 0).cost;
    auto c2 = s2.Resolve({IdentityType::kImsi, "b5"}, 0).cost;
    location::ConsistentHashLocationStage ch(256, 128, model);
    auto c3 = ch.Resolve({IdentityType::kImsi, "b5"}, 0).cost;
    t4.AddRow({"provisioned lookup grows ~log N (weak H-F link)",
               c2 > c1 && c2 < 3 * c1 ? "PASS" : "FAIL"});
    t4.AddRow({"consistent hashing flat and cheapest",
               c3 <= c1 ? "PASS" : "FAIL"});
  }
  t4.Print();
}

// --- Measured lookup costs (real data structures, not the cost model) ------

void BM_ProvisionedMapLookup(benchmark::State& state) {
  location::ProvisionedLocationStage stage;
  telecom::SubscriberFactory factory(42);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    stage.Bind({IdentityType::kImsi, factory.ImsiOf(i)}, {1, 0});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = stage.Resolve({IdentityType::kImsi, factory.ImsiOf(i % n)}, 0);
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProvisionedMapLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ConsistentHashLookup(benchmark::State& state) {
  location::ConsistentHashLocationStage stage(256, 128);
  telecom::SubscriberFactory factory(42);
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = stage.Resolve({IdentityType::kImsi, factory.ImsiOf(i % 1000)}, 0);
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup);

}  // namespace

int main(int argc, char** argv) {
  PrintLocationTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
