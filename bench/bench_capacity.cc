// E1 — §3.5 capacity figures ("Huge").
//
// Reproduces every number the paper prints:
//   * 2-blade SE holds 2e6 average-profile subscribers (200 GB RAM);
//   * 16 SE/cluster  => 32e6 subscribers per blade cluster;
//   * 256 SE/NF      => 512e6 subscribers per UDR NF;
//   * 1e6 LDAP ops/s per server; paper's per-cluster figure 36e6 and
//     per-NF figure 9,216e6; ~18 ops per subscriber per second.
//
// The model arithmetic is validated against a real measured per-operation
// cost on this build's storage engine + LDAP path (google-benchmark section
// at the end): the engine must sustain >= 1e6 indexed single-record ops/s
// per server-equivalent for the paper's figures to be credible.

#include <benchmark/benchmark.h>

#include "common/table.h"
#include "ldap/dn.h"
#include "storage/record_store.h"
#include "telecom/subscriber.h"
#include "udr/capacity_model.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

void PrintCapacityTables() {
  udrnf::CapacityModel m;

  Table t1("E1a: subscriber capacity (paper §3.5 vs model arithmetic)",
           {"quantity", "paper", "model", "note"});
  t1.AddRow({"subscribers per SE", "2,000,000",
             Table::Num(m.subscribers_per_se),
             "tested figure, 2-blade SE, 200 GB RAM"});
  t1.AddRow({"RAM per subscriber", "~100 KB",
             Table::Bytes(m.BytesPerSubscriber()), "200 GB / 2e6"});
  t1.AddRow({"subscribers per cluster (16 SE)", "32,000,000",
             Table::Num(m.SubscribersPerCluster()), "16 x 2e6"});
  t1.AddRow({"subscribers per UDR NF (256 SE)", "512,000,000",
             Table::Num(m.SubscribersPerNf()),
             "more than the population of the USA"});
  t1.Print();

  Table t2("E1b: LDAP throughput (paper §3.5 vs model arithmetic)",
           {"quantity", "paper", "strict 32x1e6", "note"});
  t2.AddRow({"ops/s per LDAP server", "1,000,000",
             Table::Num(m.ldap_ops_per_server), "tested figure"});
  t2.AddRow({"ops/s per cluster", Table::Num(m.LdapOpsPerClusterPaper()),
             Table::Num(m.LdapOpsPerClusterStrict()),
             "paper prints 36e6 (1.125e6/server budget)"});
  t2.AddRow({"ops/s per UDR NF (256 clusters)",
             Table::Num(m.LdapOpsPerNfPaper()),
             Table::Num(m.LdapOpsPerNfStrict()), "paper: 9,216e6"});
  t2.AddRow({"ops per subscriber per second",
             Table::Dbl(m.OpsPerSubscriberPaper(), 0) /*=18*/,
             Table::Dbl(static_cast<double>(m.LdapOpsPerNfStrict()) /
                            static_cast<double>(m.SubscribersPerNf()),
                        1),
             "typical procedure costs 1-3 ops, IMS 5-6"});
  t2.Print();

  // A deployed mini-NF reports the same arithmetic through the real objects.
  workload::TestbedOptions opts;
  opts.sites = 3;
  opts.udr.se_per_cluster = 2;
  opts.udr.ldap_per_cluster = 2;
  workload::Testbed bed(opts);
  Table t3("E1c: deployed mini-NF aggregates (3 clusters x 2 SE x 2 LDAP)",
           {"quantity", "value"});
  t3.AddRow({"storage elements", Table::Num(bed.udr().TotalStorageElements())});
  t3.AddRow({"partitions (1 primary/SE)",
             Table::Num(static_cast<int64_t>(bed.udr().partition_count()))});
  t3.AddRow({"aggregate LDAP ops/s",
             Table::Num(bed.udr().TotalLdapOpsPerSecond())});
  t3.AddRow({"subscriber capacity @100KB/profile",
             Table::Num(bed.udr().TotalSubscriberCapacity(100 * 1000))});
  t3.Print();

  // Average profile footprint of OUR synthetic subscriber (documented in
  // DESIGN.md: the simulator profile is leaner than a production one).
  telecom::SubscriberFactory factory(42);
  int64_t bytes = 0;
  for (int i = 0; i < 100; ++i) bytes += factory.Make(i).profile.ApproxBytes();
  Table t4("E1d: synthetic profile footprint", {"quantity", "value"});
  t4.AddRow({"avg synthetic profile bytes", Table::Bytes(bytes / 100)});
  t4.AddRow({"note", "paper's 100KB average includes full IMS service data"});
  t4.Print();
}

// --- Measured hot-path costs ------------------------------------------------

void BM_IndexedRead(benchmark::State& state) {
  storage::RecordStore store;
  telecom::SubscriberFactory factory(42);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    store.PutRecord(static_cast<storage::RecordKey>(i),
                    factory.Make(static_cast<uint64_t>(i % 512)).profile);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    const storage::Record* r =
        store.Find(static_cast<storage::RecordKey>(key % n));
    benchmark::DoNotOptimize(r);
    const storage::Attribute* a = r->Find("authkey");
    benchmark::DoNotOptimize(a);
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedRead)->Arg(1000)->Arg(100000);

void BM_IndexedWrite(benchmark::State& state) {
  storage::RecordStore store;
  uint64_t key = 0;
  for (auto _ : state) {
    store.SetAttribute(key % 10000, "serving-vlr", std::string("vlr-1"),
                       static_cast<MicroTime>(key), 0);
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedWrite);

void BM_FullLdapSearchPath(benchmark::State& state) {
  workload::TestbedOptions opts;
  opts.sites = 1;
  opts.subscribers = 1000;
  workload::Testbed bed(opts);
  telecom::SubscriberFactory factory(42);
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.requested_attrs = {"authkey"};
  uint64_t i = 0;
  for (auto _ : state) {
    req.dn = ldap::SubscriberDn("imsi", factory.ImsiOf(i % 1000));
    auto r = bed.udr().Submit(req, 0);
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullLdapSearchPath);

}  // namespace

int main(int argc, char** argv) {
  PrintCapacityTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
