// E5 — durability tuning (§3.3.1 decision 2 + §5).
//
// Compare the three replication acknowledgement modes across backbone RTTs:
//   * ASYNC (paper default): fastest commits, loses the unshipped suffix on
//     a master crash;
//   * DUAL_SEQUENCE (§5 evolution): master + one slave in sequence before
//     acking; survives the crash, pays ~1 backbone RTT;
//   * QUORUM (Cassandra-style comparator): majority ack; survives, pays the
//     RTT of the slower majority member and refuses writes without quorum.
// Expected shape: latency ASYNC < DUAL_SEQ <= QUORUM; loss ASYNC > 0,
// DUAL_SEQ = QUORUM = 0.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"

using namespace udr;

namespace {

struct ModeTrial {
  MicroDuration mean_commit_latency = 0;
  int64_t committed = 0;
  int64_t lost_on_crash = 0;
  int64_t degraded = 0;
};

ModeTrial RunTrial(replication::SyncMode mode, MicroDuration backbone_one_way,
                   bool crash_master) {
  sim::SimClock clock;
  sim::LatencyConfig lc;
  lc.backbone_one_way = backbone_one_way;
  auto network = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (uint32_t s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = s;
    cfg.name = "se-" + std::to_string(s);
    ses.push_back(std::make_unique<storage::StorageElement>(cfg, &clock, s));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSetConfig cfg;
  cfg.sync_mode = mode;
  // The async shipper batches entries for 10ms before sending: the window a
  // master crash can eat acknowledged transactions from (§3.3.1).
  cfg.async_ship_delay = Millis(10);
  replication::ReplicaSet rs(cfg, ptrs, network.get());

  ModeTrial trial;
  MicroDuration total_latency = 0;
  clock.AdvanceTo(Seconds(1));
  const int kWrites = 200;
  for (int i = 0; i < kWrites; ++i) {
    replication::WriteBuilder wb;
    wb.Set(static_cast<storage::RecordKey>(i % 50), "serving-vlr",
           std::string("vlr-") + std::to_string(i));
    auto w = rs.Write(/*client_site=*/0, std::move(wb).Build());
    if (w.status.ok()) {
      ++trial.committed;
      total_latency += w.latency;
      if (w.degraded) ++trial.degraded;
    }
    clock.Advance(Millis(2));
  }
  trial.mean_commit_latency =
      trial.committed > 0 ? total_latency / trial.committed : 0;

  if (crash_master) {
    // Crash immediately after the last commit: the async window is hot.
    rs.CrashReplica(rs.master_id());
    clock.Advance(Seconds(10));
    auto report = rs.FailOver();
    if (report.ok()) trial.lost_on_crash = report->lost_transactions;
  }
  return trial;
}

const char* ModeName(replication::SyncMode m) {
  switch (m) {
    case replication::SyncMode::kAsync:
      return "ASYNC (paper default)";
    case replication::SyncMode::kDualSequence:
      return "DUAL-IN-SEQUENCE (§5)";
    case replication::SyncMode::kQuorum:
      return "QUORUM (Cassandra-like)";
  }
  return "?";
}

void PrintModeTables() {
  const replication::SyncMode modes[] = {
      replication::SyncMode::kAsync, replication::SyncMode::kDualSequence,
      replication::SyncMode::kQuorum};

  Table t("E5a: commit latency vs backbone RTT (writes from the master's "
          "site; 200 writes)",
          {"mode", "RTT 10ms", "RTT 30ms", "RTT 100ms"});
  for (auto mode : modes) {
    std::vector<std::string> row = {ModeName(mode)};
    for (MicroDuration ow : {Millis(5), Millis(15), Millis(50)}) {
      row.push_back(Table::Dur(RunTrial(mode, ow, false).mean_commit_latency));
    }
    t.AddRow(row);
  }
  t.Print();

  Table t2("E5b: master SE crash right after the last commit (RTT 30ms)",
           {"mode", "committed", "lost on crash", "durable fraction",
            "degraded commits"});
  for (auto mode : modes) {
    ModeTrial trial = RunTrial(mode, Millis(15), true);
    double durable = trial.committed > 0
                         ? 1.0 - static_cast<double>(trial.lost_on_crash) /
                                     static_cast<double>(trial.committed)
                         : 1.0;
    t2.AddRow({ModeName(mode), Table::Num(trial.committed),
               Table::Num(trial.lost_on_crash), Table::Pct(durable, 2),
               Table::Num(trial.degraded)});
  }
  t2.Print();

  Table t3("E5c: expected shape", {"check", "result"});
  auto a = RunTrial(replication::SyncMode::kAsync, Millis(15), true);
  auto d = RunTrial(replication::SyncMode::kDualSequence, Millis(15), true);
  auto q = RunTrial(replication::SyncMode::kQuorum, Millis(15), true);
  t3.AddRow({"latency ASYNC < DUAL_SEQ <= QUORUM",
             a.mean_commit_latency < d.mean_commit_latency &&
                     d.mean_commit_latency <= q.mean_commit_latency
                 ? "PASS"
                 : "FAIL"});
  t3.AddRow({"ASYNC loses acked transactions",
             a.lost_on_crash > 0 ? "PASS" : "FAIL"});
  t3.AddRow({"DUAL_SEQ and QUORUM lose nothing",
             d.lost_on_crash == 0 && q.lost_on_crash == 0 ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_ReplicatedWrite(benchmark::State& state) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (uint32_t s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = s;
    ses.push_back(std::make_unique<storage::StorageElement>(cfg, &clock, s));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSetConfig cfg;
  cfg.sync_mode = static_cast<replication::SyncMode>(state.range(0));
  replication::ReplicaSet rs(cfg, ptrs, network.get());
  uint64_t i = 0;
  for (auto _ : state) {
    clock.Advance(Micros(100));
    replication::WriteBuilder wb;
    wb.Set(i % 100, "a", static_cast<int64_t>(i));
    auto w = rs.Write(0, std::move(wb).Build());
    benchmark::DoNotOptimize(w);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplicatedWrite)
    ->Arg(0)  // ASYNC
    ->Arg(1)  // DUAL_SEQUENCE
    ->Arg(2); // QUORUM

}  // namespace

int main(int argc, char** argv) {
  PrintModeTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
