// E7 — provisioning backlogs and batch fragility (§3.3, §3.3.3, §4.1).
//
// Three paper claims, measured:
//   * a provisioning back-log grows as soon as per-operation latency exceeds
//     the inter-arrival gap; if it overflows, operations drop ("fatal");
//   * "a network glitch as short as 30 seconds may cause a batch that's been
//     running for hours to fail" — under CP mode with abort-on-failure;
//   * the §5 multi-master evolution (PA mode) lets the same batch complete
//     through the glitch.

#include <benchmark/benchmark.h>

#include "common/table.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

workload::TestbedOptions BedOptions(replication::PartitionMode mode,
                                    bool slow_commits = false) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.udr.partition_mode = mode;
  if (slow_commits) {
    o.udr.se_template.wal_sync_commit = true;
    o.udr.se_template.wal_sync_penalty = Millis(50);
  }
  return o;
}

void PrintBatchTables() {
  // --- E7a: the 30-second glitch vs a long batch ---------------------------
  Table t("E7a: batch provisioning through a 30s backbone glitch "
          "(20 ops/s, abort-on-first-failure; PS at site 0)",
          {"mode", "attempted", "succeeded", "aborted", "manual interventions"});
  for (auto mode : {replication::PartitionMode::kPreferConsistency,
                    replication::PartitionMode::kPreferAvailability}) {
    workload::Testbed bed(BedOptions(mode));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    MicroTime glitch = bed.clock().Now() + Minutes(2);
    bed.network().partitions().CutBetween({0}, {1, 2}, glitch,
                                          glitch + Seconds(30));
    // 6000 ops at 20/s = a 5-minute batch (hours-long in spirit; scaled).
    auto report = ps.RunBatch(0, 6000, 20.0, /*stop_on_failure=*/true);
    t.AddRow({mode == replication::PartitionMode::kPreferConsistency
                  ? "PC (paper default)"
                  : "PA (§5 multi-master)",
              Table::Num(report.attempted), Table::Num(report.succeeded),
              report.aborted ? "YES" : "no",
              Table::Num(report.manual_interventions())});
  }
  t.Print();

  // --- E7b: retry instead of abort ----------------------------------------
  Table t2("E7b: same glitch, continue-and-retry batch policy (PC mode)",
           {"policy", "succeeded", "failed", "manual interventions"});
  {
    workload::Testbed bed(BedOptions(
        replication::PartitionMode::kPreferConsistency));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    MicroTime glitch = bed.clock().Now() + Minutes(2);
    bed.network().partitions().CutBetween({0}, {1, 2}, glitch,
                                          glitch + Seconds(30));
    auto report = ps.RunBatch(0, 6000, 20.0, /*stop_on_failure=*/false);
    t2.AddRow({"continue past failures", Table::Num(report.succeeded),
               Table::Num(report.failed),
               Table::Num(report.manual_interventions())});
  }
  t2.Print();

  // --- E7c: backlog growth --------------------------------------------------
  Table t3("E7c: provisioning backlog (queue cap 200, 60s of arrivals)",
           {"arrival rate", "service", "max depth", "dropped", "served"});
  struct Case {
    double rate;
    bool slow;
    const char* label;
  } cases[] = {
      {20, false, "fast commits (~1ms)"},
      {200, false, "fast commits (~1ms)"},
      {20, true, "wal-sync commits (~54ms)"},
      {60, true, "wal-sync commits (~54ms)"},
  };
  for (const Case& c : cases) {
    workload::Testbed bed(BedOptions(
        replication::PartitionMode::kPreferConsistency, c.slow));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    auto report = ps.RunBacklog(Seconds(60), c.rate, /*capacity=*/200);
    t3.AddRow({Table::Dbl(c.rate, 0) + "/s", c.label,
               Table::Num(report.max_depth), Table::Num(report.dropped),
               Table::Num(report.served)});
  }
  t3.Print();

  Table t4("E7d: expected shape", {"check", "result"});
  {
    workload::Testbed bed_pc(BedOptions(
        replication::PartitionMode::kPreferConsistency));
    telecom::ProvisioningSystem ps_pc({0, 0}, &bed_pc.udr(),
                                      &bed_pc.factory());
    MicroTime g1 = bed_pc.clock().Now() + Seconds(30);
    bed_pc.network().partitions().CutBetween({0}, {1, 2}, g1, g1 + Seconds(30));
    auto pc = ps_pc.RunBatch(0, 3000, 20.0, true);

    workload::Testbed bed_pa(BedOptions(
        replication::PartitionMode::kPreferAvailability));
    telecom::ProvisioningSystem ps_pa({0, 0}, &bed_pa.udr(),
                                      &bed_pa.factory());
    MicroTime g2 = bed_pa.clock().Now() + Seconds(30);
    bed_pa.network().partitions().CutBetween({0}, {1, 2}, g2, g2 + Seconds(30));
    auto pa = ps_pa.RunBatch(0, 3000, 20.0, true);

    t4.AddRow({"CP batch aborts on the glitch", pc.aborted ? "PASS" : "FAIL"});
    t4.AddRow({"AP batch completes through it",
               !pa.aborted && pa.succeeded == 3000 ? "PASS" : "FAIL"});
  }
  t4.Print();
}

void BM_ProvisionOneSubscriber(benchmark::State& state) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = ps.Provision(i++);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProvisionOneSubscriber);

}  // namespace

int main(int argc, char** argv) {
  PrintBatchTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
