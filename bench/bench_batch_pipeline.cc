// B — the batched data path: multi-op LDAP requests through the staged
// pipeline (resolve all -> group by partition -> grouped dispatch) vs the
// per-op path, and the hash-routed location bypass.
//
// B1 sweeps the batch size for a same-subscriber multi-op signaling event
// (the paper's bind + search + modify pattern): the per-op path pays one
// location lookup and one PoA->storage round trip per op, the batch pays the
// lookups plus ONE round trip per touched partition. B2 shows the same
// effect on real FE procedures (IMS registration, 6 ops). B3 reports the
// location-stage bypass under PlacementKind::kHash deployments — hit rate,
// resolution-cost savings, and routing equivalence with the location stage.
// B4 is the self-checking expected-shape table (acceptance: batched
// throughput >= 2x per-op at batch size 16).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/table.h"
#include "routing/batch.h"
#include "routing/router.h"
#include "telecom/front_end.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"

using namespace udr;
using location::Identity;
using location::IdentityType;
using routing::BatchRequest;
using routing::BatchResult;
using routing::Mutation;
using routing::Operation;

namespace {

workload::Testbed MakeBed(int64_t subscribers,
                          routing::PlacementKind placement =
                              routing::PlacementKind::kLeastLoaded) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = subscribers;
  o.udr.partitions_per_se = 2;
  o.udr.placement = placement;
  workload::Testbed bed(o);
  // Let asynchronous replication drain so nearest reads see the population.
  bed.clock().Advance(Seconds(120));
  bed.udr().CatchUpAllPartitions();
  return bed;
}

/// One signaling event touching `size` ops on one subscriber: reads with a
/// write every 4th op (the multi-op LDAP request of §2.2).
BatchRequest EventOf(const telecom::Subscriber& sub, int size) {
  BatchRequest batch;
  for (int i = 0; i < size; ++i) {
    if (i % 4 == 3) {
      batch.Add(Operation::Write(
          sub.ImsiId(), {{Mutation::Kind::kSet, "sqn",
                          static_cast<int64_t>(i)}}));
    } else {
      batch.Add(Operation::ReadAttribute(sub.ImsiId(), "authkey"));
    }
  }
  return batch;
}

/// Runs the same event per-op through Route + ReplicaSet calls; returns the
/// modelled latency sum.
MicroDuration RunPerOp(workload::Testbed& bed, const BatchRequest& batch) {
  MicroDuration total = 0;
  auto& router = bed.udr().router();
  for (const Operation& op : batch.ops) {
    routing::RouteResult route = router.Route(
        op.identity, 0,
        op.IsRead() ? routing::RouteIntent::kRead : routing::RouteIntent::kWrite);
    if (!route.status.ok()) continue;
    total += route.resolve_cost;
    if (op.kind == Operation::Kind::kWrite) {
      std::vector<storage::WriteOp> ops;
      for (const Mutation& m : op.mutations) {
        storage::WriteOp w;
        w.kind = storage::WriteKind::kUpsertAttr;
        w.key = route.key;
        w.attr_id = storage::InternAttr(m.attr);
        w.attribute.value = m.value;
        ops.push_back(std::move(w));
      }
      total += route.rs->Write(0, std::move(ops)).latency;
    } else {
      total += route.rs
                   ->ReadAttribute(0, route.key, op.attr,
                                   replication::ReadPreference::kNearest)
                   .latency;
    }
  }
  return total;
}

double SpeedupAt(int size, MicroDuration* batched_out = nullptr,
                 MicroDuration* per_op_out = nullptr) {
  workload::Testbed bed = MakeBed(64);
  telecom::Subscriber sub = bed.factory().Make(7);
  BatchRequest event = EventOf(sub, size);
  BatchResult batched = bed.udr().router().RouteBatch(event, 0);
  MicroDuration per_op = RunPerOp(bed, event);
  if (batched_out != nullptr) *batched_out = batched.latency;
  if (per_op_out != nullptr) *per_op_out = per_op;
  return batched.latency > 0
             ? static_cast<double>(per_op) / static_cast<double>(batched.latency)
             : 0.0;
}

void PrintBatchTables() {
  Table t1("B1: batched vs per-op multi-op event (one subscriber, reads + "
           "every-4th-op write)",
           {"batch size", "per-op path", "batched", "per-op ops/s",
            "batched ops/s", "speedup"});
  double speedup16 = 0;  // Reused by the B4 acceptance row.
  for (int size : {1, 4, 16, 64}) {
    MicroDuration batched = 0, per_op = 0;
    double speedup = SpeedupAt(size, &batched, &per_op);
    if (size == 16) speedup16 = speedup;
    auto ops_per_sec = [size](MicroDuration lat) {
      return lat > 0 ? static_cast<int64_t>(size * Seconds(1) / lat) : 0;
    };
    t1.AddRow({Table::Num(size), Table::Dur(per_op), Table::Dur(batched),
               Table::Num(ops_per_sec(per_op)), Table::Num(ops_per_sec(batched)),
               Table::Dbl(speedup, 2) + "x"});
  }
  t1.Print();

  Table t2("B2: FE procedures, sequential submits vs one multi-op message "
           "(100 procedures each)",
           {"procedure", "ops", "sequential mean", "batched mean", "speedup"});
  {
    struct Row {
      const char* name;
      int ops;
      MicroDuration seq_total = 0;
      MicroDuration bat_total = 0;
    };
    Row rows[] = {{"HLR update-location", 2}, {"IMS register", 6}};
    for (bool batched : {false, true}) {
      workload::Testbed bed = MakeBed(200);
      telecom::HlrFe hlr(0, &bed.udr(), batched);
      telecom::HssFe hss(0, &bed.udr(), batched);
      for (uint64_t i = 0; i < 100; ++i) {
        telecom::Subscriber sub = bed.factory().Make(i);
        auto ul = hlr.UpdateLocation(sub.ImsiId(), "vlr1", 101);
        auto reg = hss.ImsRegister(sub.ImpuId(), "scscf1");
        (batched ? rows[0].bat_total : rows[0].seq_total) += ul.latency;
        (batched ? rows[1].bat_total : rows[1].seq_total) += reg.latency;
      }
    }
    for (const Row& r : rows) {
      double speedup = r.bat_total > 0 ? static_cast<double>(r.seq_total) /
                                             static_cast<double>(r.bat_total)
                                       : 0.0;
      t2.AddRow({r.name, Table::Num(r.ops), Table::Dur(r.seq_total / 100),
                 Table::Dur(r.bat_total / 100), Table::Dbl(speedup, 2) + "x"});
    }
  }
  t2.Print();

  Table t3("B3: hash-routed location bypass (PlacementKind::kHash, 2,000 "
           "IMSI reads via 125 x 16-op batches)",
           {"deployment", "bypass hits", "hit rate", "mean batch size",
            "mean partition fan-out", "mean resolve cost/op"});
  bool bypass_equivalent = true;
  for (auto placement : {routing::PlacementKind::kLeastLoaded,
                         routing::PlacementKind::kHash}) {
    workload::Testbed bed = MakeBed(500, placement);
    auto& udr = bed.udr();
    MicroDuration resolve_total = 0;
    int64_t ops_total = 0;
    for (int b = 0; b < 125; ++b) {
      BatchRequest batch;
      for (int k = 0; k < 16; ++k) {
        uint64_t index = static_cast<uint64_t>((b * 16 + k) % 500);
        batch.Add(Operation::ReadAttribute(bed.factory().Make(index).ImsiId(),
                                           "authkey"));
      }
      BatchResult r = udr.router().RouteBatch(batch, 0);
      resolve_total += r.resolve_cost;
      ops_total += static_cast<int64_t>(batch.ops.size());
    }
    // Snapshot before the equivalence probes below inflate the counter.
    const int64_t hits = udr.metrics().Get("router.bypass.hits");
    if (placement == routing::PlacementKind::kHash) {
      // Equivalence: the bypass must reproduce the provisioned locations.
      for (uint64_t i = 0; i < 500; ++i) {
        Identity id = bed.factory().Make(i).ImsiId();
        auto fast = udr.router().Route(id, 0, routing::RouteIntent::kRead);
        auto loc = udr.AuthoritativeLookup(id);
        if (!fast.status.ok() || !loc.ok() || fast.partition != loc->partition ||
            fast.key != loc->key) {
          bypass_equivalent = false;
        }
      }
    }
    const Metrics& m = udr.metrics();
    t3.AddRow({placement == routing::PlacementKind::kHash ? "hash placement"
                                                          : "least-loaded",
               Table::Num(hits),
               Table::Pct(static_cast<double>(hits) /
                              static_cast<double>(ops_total),
                          1),
               Table::Dbl(m.HistOrEmpty("router.batch.size").Mean(), 1),
               Table::Dbl(m.HistOrEmpty("router.batch.groups").Mean(), 1),
               Table::Dur(resolve_total / ops_total)});
  }
  t3.Print();

  Table t4("B4: expected shape", {"check", "result"});
  {
    t4.AddRow({"batched >= 2x per-op at batch size 16",
               speedup16 >= 2.0 ? "PASS" : "FAIL"});
    t4.AddRow({"hash bypass routes == location-stage routes (500 ids)",
               bypass_equivalent ? "PASS" : "FAIL"});
    workload::Testbed bed = MakeBed(32);
    // Route() is a thin wrapper over a size-1 batch: identical decisions.
    bool wrapper_ok = true;
    for (uint64_t i = 0; i < 32; ++i) {
      Identity id = bed.factory().Make(i).ImsiId();
      auto route = bed.udr().router().Route(id, 0, routing::RouteIntent::kRead);
      BatchRequest one;
      one.Add(Operation::ReadRecord(id));
      BatchResult batch = bed.udr().router().RouteBatch(one, 0);
      if (!route.status.ok() || !batch.ok() ||
          route.partition != batch.outcomes[0].partition ||
          route.key != batch.outcomes[0].key) {
        wrapper_ok = false;
      }
    }
    t4.AddRow({"Route == size-1 RouteBatch decisions", wrapper_ok ? "PASS" : "FAIL"});
  }
  t4.Print();
}

void BM_PerOpEvent16(benchmark::State& state) {
  workload::Testbed bed = MakeBed(64);
  telecom::Subscriber sub = bed.factory().Make(7);
  BatchRequest event = EventOf(sub, 16);
  for (auto _ : state) {
    MicroDuration lat = RunPerOp(bed, event);
    benchmark::DoNotOptimize(lat);
  }
}
BENCHMARK(BM_PerOpEvent16)->Unit(benchmark::kMicrosecond)->Iterations(200);

void BM_RouteBatch16(benchmark::State& state) {
  workload::Testbed bed = MakeBed(64);
  telecom::Subscriber sub = bed.factory().Make(7);
  BatchRequest event = EventOf(sub, 16);
  for (auto _ : state) {
    BatchResult r = bed.udr().router().RouteBatch(event, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RouteBatch16)->Unit(benchmark::kMicrosecond)->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  PrintBatchTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
