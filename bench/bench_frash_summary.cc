// E13 — Figures 5 and 6: the FRASH trade-off graph, quantified, and the
// paper's PACELC classification of the realized UDR NF.
//
// Figure 5 draws restriction arrows between the FRASH characteristics; this
// bench measures one concrete number for each arrow on this build. Figure 6
// places the design decisions on those arrows: FE transactions end up PA/EL,
// PS transactions PC/EC — reproduced here from live measurements.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/table.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"
#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

using namespace udr;

namespace {

/// F-R: wal-sync (full durability) vs periodic checkpoint write cost.
std::pair<MicroDuration, MicroDuration> MeasureFR() {
  sim::SimClock clock;
  storage::StorageElementConfig fast;
  storage::StorageElementConfig durable = fast;
  durable.wal_sync_commit = true;
  storage::StorageElement a(fast, &clock), b(durable, &clock);
  return {a.WriteServiceTime(), b.WriteServiceTime()};
}

/// F-A: async vs quorum commit latency over the backbone.
std::pair<MicroDuration, MicroDuration> MeasureFA() {
  MicroDuration lat[2];
  int idx = 0;
  for (auto mode : {replication::SyncMode::kAsync,
                    replication::SyncMode::kQuorum}) {
    sim::SimClock clock;
    auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
    std::vector<std::unique_ptr<storage::StorageElement>> ses;
    std::vector<storage::StorageElement*> ptrs;
    for (uint32_t s = 0; s < 3; ++s) {
      storage::StorageElementConfig cfg;
      cfg.site = s;
      ses.push_back(std::make_unique<storage::StorageElement>(cfg, &clock, s));
      ptrs.push_back(ses.back().get());
    }
    replication::ReplicaSetConfig cfg;
    cfg.sync_mode = mode;
    replication::ReplicaSet rs(cfg, ptrs, network.get());
    clock.AdvanceTo(Seconds(1));
    replication::WriteBuilder wb;
    wb.Set(1, "a", int64_t{1});
    lat[idx++] = rs.Write(0, std::move(wb).Build()).latency;
  }
  return {lat[0], lat[1]};
}

/// R-A on partition: FE read vs PS write availability through a 1-min cut.
std::pair<double, double> MeasureRA() {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 200;
  o.pin_home_sites = true;
  workload::Testbed bed(o);
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0 + Minutes(1),
                                        t0 + Minutes(2));
  workload::TrafficOptions t;
  t.duration = Minutes(3);
  t.fe_rate_per_sec = 50;
  t.ps_rate_per_sec = 10;
  t.subscriber_count = 200;
  auto rep = workload::RunTraffic(bed, t);
  return {rep.fe_read.availability(), rep.ps.availability()};
}

/// H-F: provisioned map lookup cost at 10^4 vs 10^6 subscribers.
std::pair<MicroDuration, MicroDuration> MeasureHF() {
  location::LocationCostModel model;
  location::ProvisionedLocationStage small(model), large(model);
  for (int i = 0; i < 10000; ++i) {
    small.Bind({location::IdentityType::kImsi, "s" + std::to_string(i)}, {1, 0});
  }
  for (int i = 0; i < 1000000; ++i) {
    large.Bind({location::IdentityType::kImsi, "l" + std::to_string(i)}, {1, 0});
  }
  return {small.Resolve({location::IdentityType::kImsi, "s1"}, 0).cost,
          large.Resolve({location::IdentityType::kImsi, "l1"}, 0).cost};
}

/// S-R: scale-out sync window at 1k vs 10k subscribers.
std::pair<MicroDuration, MicroDuration> MeasureSR() {
  MicroDuration w[2];
  int idx = 0;
  for (int64_t subs : {1000LL, 10000LL}) {
    workload::TestbedOptions o;
    o.sites = 4;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, subs);
    (void)bed.udr().AddCluster(3);
    w[idx++] = static_cast<MicroDuration>(
        bed.udr().metrics().HistOrEmpty("scaleout.sync_window_us").max());
  }
  return {w[0], w[1]};
}

/// H-R: backbone crossing fraction, pinned vs unpinned placement (roam 5%).
std::pair<double, double> MeasureHR() {
  double fractions[2];
  int idx = 0;
  for (bool pinned : {true, false}) {
    workload::TestbedOptions o;
    o.sites = 3;
    o.subscribers = 150;
    o.pin_home_sites = pinned;
    workload::Testbed bed(o);
    int64_t crossings = 0, total = 0;
    for (uint64_t i = 0; i < 150; ++i) {
      auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(i).ImsiId());
      if (!loc.ok()) continue;
      ++total;
      if (bed.udr().partition(loc->partition)->master_site() !=
          bed.HomeSiteOf(i)) {
        ++crossings;
      }
    }
    fractions[idx++] =
        total > 0 ? static_cast<double>(crossings) / total : 0.0;
  }
  return {fractions[0], fractions[1]};
}

void PrintSummary() {
  auto [fr_fast, fr_durable] = MeasureFR();
  auto [fa_async, fa_quorum] = MeasureFA();
  auto [ra_fe, ra_ps] = MeasureRA();
  auto [hf_small, hf_large] = MeasureHF();
  auto [sr_small, sr_large] = MeasureSR();
  auto [hr_pinned, hr_unpinned] = MeasureHR();

  Table t("E13a: Figure 5 — FRASH restriction arrows, quantified on this build",
          {"link", "moving toward", "costs", "measured"});
  t.AddRow({"F-R", "R (full durability: wal-sync commit)",
            "write service time",
            Table::Dur(fr_fast) + " -> " + Table::Dur(fr_durable)});
  t.AddRow({"F-A", "A (quorum instead of async replication)",
            "commit latency",
            Table::Dur(fa_async) + " -> " + Table::Dur(fa_quorum)});
  t.AddRow({"R-A", "C on partition (paper default)",
            "PS availability during a 1-min cut",
            Table::Pct(ra_fe, 1) + " (FE reads) vs " + Table::Pct(ra_ps, 1) +
                " (PS writes)"});
  t.AddRow({"H-F (dotted: weak)", "H (10^4 -> 10^6 subscribers)",
            "location lookup cost",
            Table::Dur(hf_small) + " -> " + Table::Dur(hf_large)});
  t.AddRow({"S-R", "S (scale-out, 1k -> 10k provisioned)",
            "new-PoA sync window",
            Table::Dur(sr_small) + " -> " + Table::Dur(sr_large)});
  t.AddRow({"H-R", "R via selective placement (5% roaming)",
            "backbone crossings",
            Table::Pct(hr_pinned, 1) + " pinned vs " +
                Table::Pct(hr_unpinned, 1) + " unpinned"});
  t.Print();

  // Figure 6 / §3.6: PACELC classification from live behaviour.
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 200;
  o.pin_home_sites = true;
  workload::Testbed bed(o);
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0 + Minutes(1),
                                        t0 + Minutes(2));
  workload::TrafficOptions opt;
  opt.duration = Minutes(3);
  opt.fe_rate_per_sec = 50;
  opt.ps_rate_per_sec = 10;
  opt.roaming_fraction = 0.3;
  opt.subscriber_count = 200;
  auto rep = workload::RunTraffic(bed, opt);

  Table t2("E13b: Figure 6 / §3.6 — PACELC classification of the UDR NF",
           {"traffic class", "on Partition", "Else (no partition)",
            "classification", "evidence"});
  bool fe_available = rep.fe_read.availability() > 0.99;
  bool fe_stale = rep.FeAll().stale_procedures > 0;
  bool ps_consistent = rep.ps.stale_procedures == 0;
  bool ps_unavailable = rep.ps.availability() < rep.fe_read.availability();
  t2.AddRow({"application FE (reads on slaves)",
             fe_available ? "Available (local slave copies)" : "?",
             fe_stale ? "Latency favored (stale reads accepted)" : "?",
             "PA/EL",
             Table::Pct(rep.fe_read.availability(), 1) + " avail, " +
                 Table::Num(rep.FeAll().stale_procedures) + " stale procs"});
  t2.AddRow({"Provisioning System (master-only)",
             ps_unavailable ? "Consistent (writes fail on far side)" : "?",
             ps_consistent ? "Consistency favored (0 stale)" : "?",
             "PC/EC",
             Table::Pct(rep.ps.availability(), 1) + " avail, 0 stale"});
  t2.Print();

  Table t3("E13c: expected shape", {"check", "result"});
  t3.AddRow({"every arrow has the paper's direction",
             fr_durable > fr_fast && fa_quorum > fa_async &&
                     ra_ps < ra_fe && hf_large >= hf_small &&
                     sr_large > sr_small && hr_pinned < hr_unpinned
                 ? "PASS"
                 : "FAIL"});
  t3.AddRow({"FE classifies PA/EL", fe_available && fe_stale ? "PASS" : "FAIL"});
  t3.AddRow({"PS classifies PC/EC",
             ps_consistent && ps_unavailable ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_FullSummaryPass(benchmark::State& state) {
  for (auto _ : state) {
    auto fr = MeasureFR();
    benchmark::DoNotOptimize(fr);
  }
}
BENCHMARK(BM_FullSummaryPass);

}  // namespace

int main(int argc, char** argv) {
  PrintSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
