// Shared emission helpers for the machine-readable BENCH_*.json artifacts
// the self-checking benches write (ci.sh points them into the build tree and
// refreshes the tracked top-level copies from each run).
//
// Every artifact opens with the same "meta" run-metadata block — the dominant
// RNG seed, the modelled sim time the run covers, and the config knobs that
// determine the result — so downstream tooling can join bench rows across
// commits without per-bench parsing. Bodies stay bench-specific; only the
// envelope is shared.

#ifndef UDR_BENCH_BENCH_JSON_H_
#define UDR_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace udr {
namespace bench {

/// Run metadata serialized into the artifact's "meta" object.
struct RunMeta {
  uint64_t seed = 0;              ///< Dominant RNG seed (0 = not seeded).
  long long sim_duration_us = 0;  ///< Modelled sim time covered (0 = n/a).
  /// Config knobs that determine the run: name -> already-rendered JSON
  /// value (numbers bare, strings pre-quoted by the caller).
  std::vector<std::pair<std::string, std::string>> knobs;
};

/// Output path: $<env_var> when set and non-empty, else ./<fallback>.
inline std::string JsonPath(const char* env_var, const char* fallback) {
  const char* env = std::getenv(env_var);
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

/// Opens <path> and writes the shared preamble
///   { "bench": "<bench>", "meta": {...},
/// leaving the file positioned for the bench-specific body. Returns nullptr
/// (with a diagnostic on stderr) when the file cannot be created; the caller
/// then skips its body and CloseJson.
inline FILE* OpenJson(const std::string& path, const char* bench,
                      const RunMeta& meta) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench, path.c_str());
    return nullptr;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench);
  std::fprintf(f, "  \"meta\": {\"seed\": %llu, \"sim_duration_us\": %lld",
               static_cast<unsigned long long>(meta.seed),
               meta.sim_duration_us);
  for (const auto& knob : meta.knobs) {
    std::fprintf(f, ", \"%s\": %s", knob.first.c_str(), knob.second.c_str());
  }
  std::fprintf(f, "},\n");
  return f;
}

/// Writes the shared  "pass": <bool> }  footer, closes the file and reports
/// the artifact path on stdout (the line smoke logs show per bench).
inline void CloseJson(FILE* f, const std::string& path, const char* bench,
                      bool pass) {
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("%s: wrote %s\n", bench, path.c_str());
}

}  // namespace bench
}  // namespace udr

#endif  // UDR_BENCH_BENCH_JSON_H_
