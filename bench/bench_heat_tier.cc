// Heat-tier benchmark (self-checking, plain main): batched kNearest reads
// under a Zipf-0.99 subscriber draw, three ways —
//
//   row 1  uniform baseline        theta 0,    heat tier off
//   row 2  unmitigated skew        theta 0.99, heat tier off
//   row 3  heat-mitigated skew     theta 0.99, PoA cache + runtime split on
//
// The skew penalty in this model is real queueing: RouteBatch serializes the
// ops of one partition group through that replica set's service slots, so a
// hot partition's group latency is the SUM of its ops' service times. The
// heat tier attacks it twice: cache hits leave the group entirely (PoA-local
// cost), and the runtime split controller halves the hot partition's ring
// arcs so the residual misses spread over two replica sets.
//
//   S1  read p99/p50 per row, cache hit rate, runtime splits/merges.
//   S2  gates: mitigated skew p99 <= 1.5x uniform; hit rate >= 70% at
//       Zipf 0.99; >= 1 runtime split and >= 1 merge; zero acked-write
//       loss; zero failed reads; zero stale cache serves.
//
// Emits BENCH_heat_tier.json (to $UDR_BENCH_HEAT_TIER_JSON, or
// ./BENCH_heat_tier.json).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table.h"
#include "routing/batch.h"
#include "routing/router.h"
#include "workload/testbed.h"
#include "workload/zipf.h"

using namespace udr;
using routing::BatchRequest;
using routing::BatchResult;
using routing::Mutation;
using routing::Operation;
using routing::OpOutcome;

namespace {

constexpr int64_t kSubscribers = 2000;
constexpr int kBatches = 4000;
constexpr int kOpsPerBatch = 8;

struct RunStats {
  std::string label;
  double theta = 0.0;
  bool heat = false;
  Histogram read_batch_latency;  ///< Per-batch modelled latency, µs.
  int64_t reads = 0;
  int64_t read_failures = 0;
  int64_t cache_hits = 0;
  int64_t stale_cache_serves = 0;  ///< from_cache && stale: policy violation.
  int64_t writes = 0;
  int64_t write_failures = 0;  ///< Acked-write loss (any non-ok write).
  int splits = 0;
  int merges = 0;

  double hit_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(reads);
  }
};

RunStats RunOne(const std::string& label, double theta, bool heat) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = kSubscribers;
  o.udr.placement = routing::PlacementKind::kHash;
  if (heat) {
    o.udr.heat_tracking = true;
    o.udr.heat_top_k = 1024;  // Sketch must span the cache-worthy head.
    o.udr.poa_cache_bytes = 1024 * 1024;
    o.udr.poa_cache_admit_min = 2;
    o.udr.heat_halflife_us = Millis(50);
    o.udr.heat_split_threshold = 150.0;
    o.udr.heat_merge_threshold = 10.0;
    o.udr.heat_max_splits = 4;
  }
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  bed.clock().Advance(Seconds(120));
  udr.CatchUpAllPartitions();

  workload::ZipfGenerator pick(kSubscribers, theta);
  Rng rng(7);
  RunStats stats;
  stats.label = label;
  stats.theta = theta;
  stats.heat = heat;

  // Phase A: skewed read traffic against one PoA (the cache is PoA-local),
  // with a write every 8th batch to keep the invalidation path honest.
  for (int iter = 0; iter < kBatches; ++iter) {
    bed.clock().Advance(Micros(500));

    if (iter % 8 == 7) {
      BatchRequest wb;
      wb.Add(Operation::Write(
          bed.factory().Make(pick.Next(rng)).ImsiId(),
          {{Mutation::Kind::kSet, "bench-heat",
            std::string("w") + std::to_string(iter)}}));
      BatchResult wr = udr.router().RouteBatch(wb, 0);
      ++stats.writes;
      if (!wr.outcomes[0].ok()) ++stats.write_failures;
    }

    BatchRequest b;
    for (int k = 0; k < kOpsPerBatch; ++k) {
      b.Add(Operation::ReadRecord(bed.factory().Make(pick.Next(rng)).ImsiId(),
                                  replication::ReadPreference::kNearest));
    }
    BatchResult r = udr.router().RouteBatch(b, 0);
    stats.read_batch_latency.Record(r.latency);
    stats.reads += kOpsPerBatch;
    stats.cache_hits += r.cache_hits;
    for (const OpOutcome& out : r.outcomes) {
      // A stale NotFound is a lagging slave that has not applied the write
      // yet — replica-set policy, not loss. A FRESH failure is loss.
      if (!out.ok() && !out.stale) ++stats.read_failures;
      if (out.from_cache && out.stale) ++stats.stale_cache_serves;
    }
    const int splits_before = udr.runtime_splits();
    const int merges_before = udr.runtime_merges();
    udr.PumpEvents();  // Drives the split/merge controller.
    if (udr.runtime_splits() != splits_before ||
        udr.runtime_merges() != merges_before) {
      // A split/merge just bulk-moved records (unthrottled drain): give the
      // destination SEs their settle window so steady-state skew latency —
      // what this bench gates on — is not conflated with the one-off
      // migration backlog (bench_migration owns that story).
      bed.clock().Advance(Millis(100));
      udr.CatchUpAllPartitions();
    }
  }

  // Phase B: traffic stops; idle sim-time decays the heat so cooled split
  // siblings merge back and retire.
  for (int i = 0; i < 200; ++i) {
    bed.clock().Advance(Millis(50));
    udr.PumpEvents();
  }

  stats.splits = udr.runtime_splits();
  stats.merges = udr.runtime_merges();
  return stats;
}

void WriteJson(const std::vector<RunStats>& rows, double p99_ratio_mitigated,
               double p99_ratio_raw, bool pass) {
  std::string path =
      bench::JsonPath("UDR_BENCH_HEAT_TIER_JSON", "BENCH_heat_tier.json");
  bench::RunMeta meta;
  meta.seed = 7;  // Zipf draw Rng in RunOne.
  meta.knobs = {{"subscribers", std::to_string(kSubscribers)},
                {"batches", std::to_string(kBatches)},
                {"ops_per_batch", std::to_string(kOpsPerBatch)}};
  FILE* f = bench::OpenJson(path, "bench_heat_tier", meta);
  if (f == nullptr) return;
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunStats& r = rows[i];
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"zipf_theta\": %.2f, \"heat_tier\": %s, "
        "\"read_p50_us\": %lld, \"read_p99_us\": %lld, \"hit_rate\": %.4f, "
        "\"splits\": %d, \"merges\": %d, \"read_failures\": %lld, "
        "\"write_failures\": %lld, \"stale_cache_serves\": %lld}%s\n",
        r.label.c_str(), r.theta, r.heat ? "true" : "false",
        static_cast<long long>(r.read_batch_latency.P50()),
        static_cast<long long>(r.read_batch_latency.P99()), r.hit_rate(),
        r.splits, r.merges, static_cast<long long>(r.read_failures),
        static_cast<long long>(r.write_failures),
        static_cast<long long>(r.stale_cache_serves),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"p99_skew_over_uniform_unmitigated\": %.2f,\n",
               p99_ratio_raw);
  std::fprintf(f, "  \"p99_skew_over_uniform_mitigated\": %.2f,\n",
               p99_ratio_mitigated);
  bench::CloseJson(f, path, "bench_heat_tier", pass);
}

}  // namespace

int main() {
  std::vector<RunStats> rows;
  std::printf("bench_heat_tier: uniform baseline...\n");
  rows.push_back(RunOne("uniform", 0.0, false));
  std::printf("bench_heat_tier: unmitigated zipf-0.99...\n");
  rows.push_back(RunOne("skew-raw", 0.99, false));
  std::printf("bench_heat_tier: heat-mitigated zipf-0.99...\n");
  rows.push_back(RunOne("skew-heat", 0.99, true));

  const RunStats& uniform = rows[0];
  const RunStats& raw = rows[1];
  const RunStats& heat = rows[2];
  const double base_p99 =
      static_cast<double>(uniform.read_batch_latency.P99());
  const double ratio_raw =
      base_p99 > 0 ? raw.read_batch_latency.P99() / base_p99 : 0.0;
  const double ratio_heat =
      base_p99 > 0 ? heat.read_batch_latency.P99() / base_p99 : 0.0;

  Table t1("S1: batched kNearest reads, 2000 subscribers, 8 ops/batch "
           "(latency per batch)",
           {"row", "theta", "p50 us", "p99 us", "p99/uniform", "hit rate",
            "splits", "merges"});
  for (const RunStats& r : rows) {
    const double ratio =
        base_p99 > 0 ? r.read_batch_latency.P99() / base_p99 : 0.0;
    t1.AddRow({r.label, Table::Dbl(r.theta, 2),
               Table::Num(r.read_batch_latency.P50()),
               Table::Num(r.read_batch_latency.P99()),
               Table::Dbl(ratio, 2) + "x", Table::Dbl(r.hit_rate() * 100, 1) + "%",
               Table::Num(r.splits), Table::Num(r.merges)});
  }
  t1.Print();
  std::printf("\n");

  int64_t read_failures = 0, write_failures = 0, stale_serves = 0;
  for (const RunStats& r : rows) {
    read_failures += r.read_failures;
    write_failures += r.write_failures;
    stale_serves += r.stale_cache_serves;
  }

  const bool p99_ok = ratio_heat <= 1.5;
  const bool hit_ok = heat.hit_rate() >= 0.70;
  const bool split_ok = heat.splits >= 1;
  const bool merge_ok = heat.merges >= 1;
  const bool loss_ok = write_failures == 0;
  const bool reads_ok = read_failures == 0;
  const bool stale_ok = stale_serves == 0;
  const bool pass = p99_ok && hit_ok && split_ok && merge_ok && loss_ok &&
                    reads_ok && stale_ok;

  Table t2("S2: self-check (any failed row breaks the CI smoke)",
           {"check", "value", "target", "verdict"});
  t2.AddRow({"mitigated skew p99 / uniform p99", Table::Dbl(ratio_heat, 2) + "x",
             "<= 1.5x", p99_ok ? "PASS" : "FAIL"});
  t2.AddRow({"cache hit rate @ zipf 0.99",
             Table::Dbl(heat.hit_rate() * 100, 1) + "%", ">= 70%",
             hit_ok ? "PASS" : "FAIL"});
  t2.AddRow({"runtime splits", Table::Num(heat.splits), ">= 1",
             split_ok ? "PASS" : "FAIL"});
  t2.AddRow({"runtime merges", Table::Num(heat.merges), ">= 1",
             merge_ok ? "PASS" : "FAIL"});
  t2.AddRow({"acked-write loss", Table::Num(write_failures), "0",
             loss_ok ? "PASS" : "FAIL"});
  t2.AddRow({"failed reads", Table::Num(read_failures), "0",
             reads_ok ? "PASS" : "FAIL"});
  t2.AddRow({"stale cache serves", Table::Num(stale_serves), "0",
             stale_ok ? "PASS" : "FAIL"});
  t2.Print();

  WriteJson(rows, ratio_heat, ratio_raw, pass);
  return pass ? 0 : 1;
}
