// E2 — responsiveness ("Fast", requirement 4 + §3.3).
//
// Paper claims reproduced:
//   * index-based single-subscriber queries complete within the 10 ms
//     average target when the PoA is local;
//   * reads served by a co-located slave copy avoid the IP backbone
//     (§3.3.2 decision 2): local-read latency ≪ remote-master latency;
//   * writes always travel to the master copy: a roaming write pays the
//     backbone RTT.

#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/table.h"
#include "telecom/front_end.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

void PrintLatencyTables() {
  workload::TestbedOptions opts;
  opts.sites = 3;
  opts.subscribers = 300;
  opts.pin_home_sites = true;
  workload::Testbed bed(opts);
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();

  telecom::HlrFe fe_home(0, &bed.udr());
  telecom::HlrFe fe_roam(2, &bed.udr());

  Histogram h_read_local, h_read_roam, h_write_local, h_write_roam, h_sri;
  for (uint64_t i = 0; i < 300; i += 3) {  // Home site 0 subscribers.
    telecom::Subscriber s = bed.factory().Make(i);
    auto r1 = fe_home.Authenticate(s.ImsiId());
    if (r1.ok()) h_read_local.Record(r1.latency);
    auto r2 = fe_roam.Authenticate(s.ImsiId());
    if (r2.ok()) h_read_roam.Record(r2.latency);
    auto w1 = fe_home.UpdateLocation(s.ImsiId(), "vlr-h", 1);
    if (w1.ok()) h_write_local.Record(w1.latency);
    auto w2 = fe_roam.UpdateLocation(s.ImsiId(), "vlr-r", 2);
    if (w2.ok()) h_write_roam.Record(w2.latency);
    auto c = fe_home.SendRoutingInfo(s.MsisdnId());
    if (c.ok()) h_sri.Record(c.latency);
    bed.clock().Advance(Millis(50));
    bed.udr().CatchUpAllPartitions();
  }

  auto row = [](const char* name, const Histogram& h, const char* note) {
    return std::vector<std::string>{name, Table::Dur(h.P50()),
                                    Table::Dur(static_cast<int64_t>(h.Mean())),
                                    Table::Dur(h.P99()), note};
  };
  Table t("E2a: FE procedure latency (backbone one-way 15ms; target: 10ms avg "
          "for local indexed queries)",
          {"procedure", "p50", "mean", "p99", "note"});
  t.AddRow(row("authenticate @home (1 read)", h_read_local, "local PoA + SE"));
  t.AddRow(row("authenticate @roaming (1 read)", h_read_roam,
               "served by co-located slave copy"));
  t.AddRow(row("call setup SRI @home (2 reads)", h_sri, "still < 10ms"));
  t.AddRow(row("location update @home (read+write)", h_write_local,
               "master is local"));
  t.AddRow(row("location update @roaming (read+write)", h_write_roam,
               "write crosses the backbone to the master"));
  t.Print();

  // Remote reads WITHOUT slave reads: what §3.3.2 decision 2 saves.
  workload::TestbedOptions no_slave = opts;
  no_slave.udr.fe_slave_reads = false;
  workload::Testbed bed2(no_slave);
  bed2.clock().Advance(Seconds(1));
  telecom::HlrFe fe2(2, &bed2.udr());
  Histogram h_master_read;
  for (uint64_t i = 0; i < 300; i += 3) {
    auto r = fe2.Authenticate(bed2.factory().Make(i).ImsiId());
    if (r.ok()) h_master_read.Record(r.latency);
  }
  Table t2("E2b: slave reads on/off for a roaming FE (the F gain of §3.3.2)",
           {"configuration", "read p50", "read mean"});
  t2.AddRow({"slave reads allowed (paper decision)", Table::Dur(h_read_roam.P50()),
             Table::Dur(static_cast<int64_t>(h_read_roam.Mean()))});
  t2.AddRow({"master-only reads", Table::Dur(h_master_read.P50()),
             Table::Dur(static_cast<int64_t>(h_master_read.Mean()))});
  t2.Print();

  Table t3("E2c: 10ms requirement check", {"check", "result"});
  bool meets = h_read_local.Mean() < Millis(10) && h_sri.Mean() < Millis(10);
  t3.AddRow({"local indexed query mean < 10ms", meets ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_LocalAuthenticateProcedure(benchmark::State& state) {
  workload::TestbedOptions opts;
  opts.sites = 3;
  opts.subscribers = 100;
  opts.pin_home_sites = true;
  workload::Testbed bed(opts);
  telecom::HlrFe fe(0, &bed.udr());
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = fe.Authenticate(bed.factory().Make((i * 3) % 99).ImsiId());
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalAuthenticateProcedure);

}  // namespace

int main(int argc, char** argv) {
  PrintLatencyTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
