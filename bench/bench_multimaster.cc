// E11 — the §5 evolution: multi-master writes on a partition plus the
// consistency-restoration process that must run once the partition heals.
//
// Measures, for a partition of growing length with provisioning writes
// arriving on both sides:
//   * write availability in PC vs PA mode (PA keeps ~100%);
//   * how much divergence accumulates (entries to merge);
//   * restoration outcome per merge policy: auto-merged, LWW-dropped, and
//     conflicts left for manual resolution;
//   * the convergence guarantee: all replicas identical after restoration.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"

using namespace udr;
using replication::MergePolicy;
using replication::PartitionMode;
using replication::ReplicaSet;
using replication::ReplicaSetConfig;
using replication::RestorationReport;
using replication::WriteBuilder;

namespace {

struct Harness {
  sim::SimClock clock;
  std::unique_ptr<sim::Network> network;
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::unique_ptr<ReplicaSet> rs;

  explicit Harness(ReplicaSetConfig cfg) {
    network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
    std::vector<storage::StorageElement*> ptrs;
    for (uint32_t s = 0; s < 3; ++s) {
      storage::StorageElementConfig se_cfg;
      se_cfg.site = s;
      ses.push_back(
          std::make_unique<storage::StorageElement>(se_cfg, &clock, s));
      ptrs.push_back(ses.back().get());
    }
    rs = std::make_unique<ReplicaSet>(cfg, ptrs, network.get());
  }
};

struct PartitionEpisode {
  int64_t attempted = 0;
  int64_t accepted = 0;
  int64_t diverged = 0;
  RestorationReport restoration;
  bool converged = true;

  double availability() const {
    return attempted == 0
               ? 1.0
               : static_cast<double>(accepted) / static_cast<double>(attempted);
  }
};

PartitionEpisode RunEpisode(PartitionMode mode, MergePolicy policy,
                            MicroDuration partition_len, uint64_t seed) {
  ReplicaSetConfig cfg;
  cfg.partition_mode = mode;
  cfg.merge_policy = policy;
  Harness h(cfg);
  Rng rng(seed);
  const int kKeys = 50;

  h.clock.AdvanceTo(Seconds(1));
  for (int k = 0; k < kKeys; ++k) {
    WriteBuilder wb;
    wb.Set(static_cast<storage::RecordKey>(k), "cfu", std::string("+0"));
    h.rs->Write(0, std::move(wb).Build());
  }
  h.clock.Advance(Seconds(1));
  h.rs->CatchUpAll();

  // Partition site 2 away; clients on both sides write for the duration.
  MicroTime cut = h.clock.Now();
  h.network->partitions().IsolateSite(2, 3, cut, cut + partition_len);
  PartitionEpisode ep;
  MicroDuration gap = Millis(100);
  while (h.clock.Now() < cut + partition_len) {
    h.clock.Advance(gap);
    sim::SiteId side = rng.Bernoulli(0.5) ? 0 : 2;  // Both sides write.
    WriteBuilder wb;
    wb.Set(static_cast<storage::RecordKey>(rng.Uniform(kKeys)), "cfu",
           std::string("+") + std::to_string(rng.Uniform(1000000)));
    auto w = h.rs->Write(side, std::move(wb).Build());
    ++ep.attempted;
    if (w.status.ok()) ++ep.accepted;
    if (w.diverged) ++ep.diverged;
  }
  // Heal + restore.
  h.clock.AdvanceTo(cut + partition_len + Seconds(1));
  ep.restoration = h.rs->RestoreConsistency();
  h.rs->ForceSyncAll();
  // Convergence check.
  for (int k = 0; k < kKeys; ++k) {
    const storage::Record* r0 = h.rs->replica_store(0).Find(k);
    for (uint32_t rep = 1; rep < 3; ++rep) {
      const storage::Record* rr = h.rs->replica_store(rep).Find(k);
      if ((r0 == nullptr) != (rr == nullptr) ||
          (r0 != nullptr && !(*r0 == *rr))) {
        ep.converged = false;
      }
    }
  }
  return ep;
}

void PrintMultiMasterTables() {
  Table t("E11a: write availability during a partition, PC vs PA "
          "(writes from both sides, site 2 isolated)",
          {"partition", "PC availability", "PA availability",
           "PA divergent writes"});
  for (MicroDuration len : {Seconds(10), Seconds(30), Minutes(2)}) {
    auto pc = RunEpisode(PartitionMode::kPreferConsistency,
                         MergePolicy::kFieldMergeLww, len, 5);
    auto pa = RunEpisode(PartitionMode::kPreferAvailability,
                         MergePolicy::kFieldMergeLww, len, 5);
    t.AddRow({FormatDuration(len), Table::Pct(pc.availability(), 1),
              Table::Pct(pa.availability(), 1), Table::Num(pa.diverged)});
  }
  t.Print();

  Table t2("E11b: consistency restoration after a 2-min split, by merge "
           "policy (50 hot records, writes on both sides)",
           {"policy", "divergent entries", "auto-applied", "conflicts",
            "dropped (LWW loser)", "manual", "converged"});
  for (auto policy : {MergePolicy::kFieldMergeLww,
                      MergePolicy::kLastWriterWinsRecord,
                      MergePolicy::kPreferMaster}) {
    auto ep = RunEpisode(PartitionMode::kPreferAvailability, policy,
                         Minutes(2), 7);
    const char* name =
        policy == MergePolicy::kFieldMergeLww
            ? "field-level LWW"
            : (policy == MergePolicy::kLastWriterWinsRecord
                   ? "record-level LWW"
                   : "prefer master (manual queue)");
    t2.AddRow({name, Table::Num(ep.restoration.divergent_entries),
               Table::Num(ep.restoration.applied_ops),
               Table::Num(ep.restoration.conflicting_ops),
               Table::Num(ep.restoration.dropped_ops),
               Table::Num(ep.restoration.manual_ops),
               ep.converged ? "YES" : "NO"});
  }
  t2.Print();

  Table t3("E11c: expected shape", {"check", "result"});
  auto pc = RunEpisode(PartitionMode::kPreferConsistency,
                       MergePolicy::kFieldMergeLww, Minutes(2), 9);
  auto pa = RunEpisode(PartitionMode::kPreferAvailability,
                       MergePolicy::kFieldMergeLww, Minutes(2), 9);
  t3.AddRow({"PA keeps write availability ~100% during the split",
             pa.availability() > 0.99 ? "PASS" : "FAIL"});
  t3.AddRow({"PC loses roughly the minority side's writes",
             pc.availability() < 0.75 ? "PASS" : "FAIL"});
  t3.AddRow({"PA pays with divergence to merge",
             pa.restoration.divergent_entries > 0 ? "PASS" : "FAIL"});
  t3.AddRow({"restoration converges all replicas",
             pa.converged ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_ConsistencyRestoration(benchmark::State& state) {
  for (auto _ : state) {
    auto ep = RunEpisode(PartitionMode::kPreferAvailability,
                         MergePolicy::kFieldMergeLww, Minutes(1), 21);
    benchmark::DoNotOptimize(ep);
  }
}
BENCHMARK(BM_ConsistencyRestoration)->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  PrintMultiMasterTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
