// E4 — C vs A&P on a network partition (Figure 6 / §3.2 / §4.1).
//
// The paper's complaint, measured: with the UDR favoring Consistency on a
// partition (master/slave, writes only at the master copy),
//   * FE traffic — mostly reads, served by co-located slave copies — keeps
//     high availability through the outage;
//   * PS traffic — almost all writes — fails whenever the master copy is on
//     the far side, so provisioning availability collapses with partition
//     duration.
// Sweep the partition duration inside a fixed observation window and print
// availability per traffic class.

#include <benchmark/benchmark.h>

#include "common/table.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

using namespace udr;

namespace {

workload::TestbedOptions BedOptions(
    replication::PartitionMode mode =
        replication::PartitionMode::kPreferConsistency) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 300;
  o.pin_home_sites = true;
  o.udr.partition_mode = mode;
  return o;
}

workload::TrafficReport RunWindow(replication::PartitionMode mode,
                                  MicroDuration partition_len) {
  workload::Testbed bed(BedOptions(mode));
  MicroTime t0 = bed.clock().Now();
  const MicroDuration window = Minutes(5);
  if (partition_len > 0) {
    MicroTime cut = t0 + (window - partition_len) / 2;
    bed.network().partitions().CutBetween({0}, {1, 2}, cut,
                                          cut + partition_len);
  }
  workload::TrafficOptions t;
  t.duration = window;
  t.fe_rate_per_sec = 60;
  t.ps_rate_per_sec = 10;
  t.subscriber_count = 300;
  t.ps_site = 0;  // PS co-located with the site-0 PoA (§3.3.3).
  return workload::RunTraffic(bed, t);
}

void PrintAvailabilityTables() {
  Table t("E4a: availability vs partition duration (site 0 cut from sites "
          "1-2; 5-min window; CP mode = paper default)",
          {"partition", "FE read avail", "FE write avail", "PS avail",
           "PS failed ops"});
  const MicroDuration durations[] = {0,          Seconds(5),  Seconds(30),
                                     Minutes(1), Minutes(2)};
  for (MicroDuration d : durations) {
    auto rep = RunWindow(replication::PartitionMode::kPreferConsistency, d);
    t.AddRow({d == 0 ? "none" : FormatDuration(d),
              Table::Pct(rep.fe_read.availability()),
              Table::Pct(rep.fe_write.availability()),
              Table::Pct(rep.ps.availability()), Table::Num(rep.ps.failed)});
  }
  t.Print();

  Table t2("E4b: same 30s glitch, CP vs AP (the §5 evolution)",
           {"mode", "FE read avail", "FE write avail", "PS avail",
            "divergent writes to merge"});
  for (auto mode : {replication::PartitionMode::kPreferConsistency,
                    replication::PartitionMode::kPreferAvailability}) {
    workload::Testbed bed(BedOptions(mode));
    MicroTime t0 = bed.clock().Now();
    bed.network().partitions().CutBetween({0}, {1, 2}, t0 + Minutes(2),
                                          t0 + Minutes(2) + Seconds(30));
    workload::TrafficOptions opt;
    opt.duration = Minutes(5);
    opt.fe_rate_per_sec = 60;
    opt.ps_rate_per_sec = 10;
    opt.subscriber_count = 300;
    auto rep = workload::RunTraffic(bed, opt);
    int64_t diverged = 0;
    for (size_t p = 0; p < bed.udr().partition_count(); ++p) {
      diverged += bed.udr().partition(static_cast<uint32_t>(p))
                      ->diverged_writes();
    }
    t2.AddRow({mode == replication::PartitionMode::kPreferConsistency
                   ? "PC (favor consistency, paper default)"
                   : "PA (multi-master on partition)",
               Table::Pct(rep.fe_read.availability()),
               Table::Pct(rep.fe_write.availability()),
               Table::Pct(rep.ps.availability()), Table::Num(diverged)});
  }
  t2.Print();

  Table t3("E4c: expected shape", {"check", "result"});
  auto none = RunWindow(replication::PartitionMode::kPreferConsistency, 0);
  auto cut = RunWindow(replication::PartitionMode::kPreferConsistency,
                       Minutes(2));
  t3.AddRow({"no partition => all classes 100%",
             none.ps.availability() >= 0.999 &&
                     none.fe_read.availability() >= 0.999
                 ? "PASS"
                 : "FAIL"});
  t3.AddRow({"FE reads ride out a 2-min partition (>99%)",
             cut.fe_read.availability() > 0.99 ? "PASS" : "FAIL"});
  t3.AddRow({"PS availability collapses below FE reads",
             cut.ps.availability() < cut.fe_read.availability() - 0.05
                 ? "PASS"
                 : "FAIL"});
  t3.Print();
}

void BM_TrafficWindowWithPartition(benchmark::State& state) {
  for (auto _ : state) {
    auto rep = RunWindow(replication::PartitionMode::kPreferConsistency,
                         Seconds(30));
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_TrafficWindowWithPartition)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  PrintAvailabilityTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
