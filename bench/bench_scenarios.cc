// Scenario-harness benchmark (self-checking, plain main): runs the five
// standard disaster / mass-event scenarios end to end and gates on their
// SLO rows — the ci smoke's proof that site loss, network partition, attach
// storm, roaming wave and SE decommission all hold the harness invariants
// (zero acked-write loss, per-key order, stale-serve policy) plus each
// scenario's own bounds.
//
//   S1  per-scenario headline: availability, p99, stale fraction, audit.
//   S2  every SLO row of every scenario ("any FAIL row breaks the smoke").
//
// Emits BENCH_scenarios.json (to $UDR_BENCH_SCENARIOS_JSON, or
// ./BENCH_scenarios.json) with one entry per scenario carrying its SLO rows.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "scenario/scenarios.h"

using namespace udr;

namespace {

void WriteJson(const std::vector<scenario::ScenarioReport>& reports,
               bool pass) {
  std::string path =
      bench::JsonPath("UDR_BENCH_SCENARIOS_JSON", "BENCH_scenarios.json");
  const std::vector<scenario::ScenarioSpec> specs =
      scenario::StandardScenarios();
  bench::RunMeta meta;
  meta.seed = specs.empty() ? 0 : specs.front().testbed.seed;
  for (const scenario::ScenarioSpec& spec : specs) {
    meta.sim_duration_us += spec.duration;
  }
  meta.knobs = {{"scenario_count", std::to_string(specs.size())}};
  FILE* f = bench::OpenJson(path, "bench_scenarios", meta);
  if (f == nullptr) return;
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const scenario::ScenarioReport& r = reports[i];
    workload::ClassStats fe = r.stats.FeAll();
    std::fprintf(f,
                 "    {\"name\": \"%s\",\n"
                 "     \"fe_attempted\": %lld, \"fe_availability\": %.4f, "
                 "\"fe_p99_us\": %lld, \"ps_availability\": %.4f,\n"
                 "     \"acked_writes\": %lld, \"lost_writes\": %lld, "
                 "\"unreadable\": %lld, \"order_violations\": %lld,\n"
                 "     \"slos\": [\n",
                 r.name.c_str(), static_cast<long long>(fe.attempted),
                 fe.availability(), static_cast<long long>(fe.latency.P99()),
                 r.stats.ps.availability(),
                 static_cast<long long>(r.audit.acked_writes),
                 static_cast<long long>(r.audit.lost_writes),
                 static_cast<long long>(r.audit.unreadable),
                 static_cast<long long>(r.audit.order_violations));
    for (size_t s = 0; s < r.slos.size(); ++s) {
      const scenario::SloResult& slo = r.slos[s];
      std::fprintf(f,
                   "       {\"label\": \"%s\", \"kind\": \"%s\", "
                   "\"bound\": %.6g, \"actual\": %.6g, \"pass\": %s}%s\n",
                   slo.check.label.c_str(),
                   scenario::SloKindName(slo.check.kind), slo.check.bound,
                   slo.actual, slo.pass ? "true" : "false",
                   s + 1 < r.slos.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n     \"pass\": %s}%s\n",
                 r.Passed() ? "true" : "false",
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  bench::CloseJson(f, path, "bench_scenarios", pass);
}

}  // namespace

int main() {
  std::vector<scenario::ScenarioReport> reports;
  for (const scenario::ScenarioSpec& spec : scenario::StandardScenarios()) {
    std::printf("bench_scenarios: running %s...\n", spec.name.c_str());
    reports.push_back(scenario::RunScenario(spec));
  }

  Table t1("S1: five compound scenarios (FE = front-end procedures, "
           "PS = provisioning)",
           {"scenario", "fe ops", "fe avail", "fe p99", "ps avail",
            "acked", "lost", "order viol"});
  for (const scenario::ScenarioReport& r : reports) {
    workload::ClassStats fe = r.stats.FeAll();
    t1.AddRow({r.name, Table::Num(fe.attempted),
               Table::Pct(fe.availability()), Table::Dur(fe.latency.P99()),
               Table::Pct(r.stats.ps.availability()),
               Table::Num(r.audit.acked_writes),
               Table::Num(r.audit.lost_writes + r.audit.unreadable),
               Table::Num(r.audit.order_violations)});
  }
  t1.Print();
  std::printf("\n");

  bool pass = true;
  Table t2("S2: SLO rows (a failed row breaks the CI smoke)",
           {"scenario", "slo", "bound", "actual", "verdict"});
  for (const scenario::ScenarioReport& r : reports) {
    if (!r.Passed()) pass = false;
    for (const scenario::SloResult& slo : r.slos) {
      t2.AddRow({r.name, slo.check.label, Table::Dbl(slo.check.bound, 4),
                 Table::Dbl(slo.actual, 4), slo.pass ? "PASS" : "FAIL"});
    }
  }
  t2.Print();

  WriteJson(reports, pass);
  return pass ? 0 : 1;
}
