// Observability-overhead benchmark (self-checking, plain main): the proof
// that the tracing/sampling instrumentation cannot shift the modelled data
// path. The tracer closes spans at modelled completion times and never
// touches an Rng stream, so a traced run's modelled numbers are bit-equal to
// the untraced run's — the 1.05x gate below therefore measures exactly 1.00x
// unless someone breaks that contract.
//
// Two compound scenarios — an attach storm over a scale-out rebalance
// (coalescer + migration stages live) and a roaming wave — each run three
// ways:
//
//   row 1  untraced      tracing off, sampler off
//   row 2  traced 1%     trace_sample_rate 0.01 + 100ms sampler (the
//                        production-shaped configuration the gate is on)
//   row 3  traced 100%   full-rate tracing; the merged trace is exported to
//                        $UDR_OBS_TRACE_JSON for ci.sh's Perfetto parse
//
//   O1  modelled FE p99 / availability per row, plus wall-clock run time
//       (the real instrumentation cost, reported for the record — the gate
//       is on the modelled numbers, which are host-independent).
//   O2  gates: traced-1% p99 <= 1.05x untraced and availability unchanged,
//       per scenario; the exported trace is non-empty and covers every
//       major data-path stage.
//
// Emits BENCH_obs_overhead.json (to $UDR_BENCH_OBS_OVERHEAD_JSON, or
// ./BENCH_obs_overhead.json) and the Perfetto trace (to $UDR_OBS_TRACE_JSON,
// or ./obs_trace.json).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "obs/trace.h"
#include "scenario/engine.h"

using namespace udr;
using scenario::ScenarioSpec;
using scenario::SloCheck;
using scenario::SloKind;

namespace {

/// Wall clock (legal in bench/): the reported-only instrumentation cost.
int64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

constexpr int kSubscribers = 150;
constexpr double kTracedRate = 0.01;
constexpr MicroDuration kSampleInterval = Millis(100);
constexpr double kP99RatioBound = 1.05;

/// Shared deployment: small 2-site cluster with coalescing on, sized so the
/// storm variant's rebalance ships real chunks within the 4s run.
ScenarioSpec BaseSpec(const char* name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.testbed.sites = 2;
  spec.testbed.seed = 7;
  spec.testbed.subscribers = kSubscribers;
  spec.testbed.pin_home_sites = true;
  spec.testbed.udr.replication_factor = 2;
  spec.testbed.udr.se_per_cluster = 1;
  spec.testbed.udr.partitions_per_se = 2;
  spec.testbed.udr.fe_slave_reads = true;
  spec.testbed.udr.coalesce_window_us = Micros(200);
  spec.testbed.udr.coalesce_max_ops = 64;
  spec.testbed.udr.migration_bandwidth_bps = 4 * 1024 * 1024;
  spec.testbed.udr.migration_chunk_bytes = 32 * 1024;
  spec.duration = Seconds(4);
  spec.fe_rate_per_sec = 200.0;
  spec.ps_rate_per_sec = 10.0;
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kZeroAckedWriteLoss,
                                 "zero-acked-write-loss", 0.0, -1});
  return spec;
}

ScenarioSpec StormRebalance() {
  ScenarioSpec spec = BaseSpec("storm-rebalance");
  spec.script.AttachStorm(Seconds(1), Seconds(1), /*events_per_tick=*/4);
  spec.script.ScaleOut(Seconds(2), /*site=*/1);
  spec.script.StartRebalance(Seconds(2) + Millis(100));
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kMigrationComplete,
                                 "migration-complete", 0.0, -1});
  return spec;
}

ScenarioSpec RoamingWave() {
  ScenarioSpec spec = BaseSpec("roaming-wave");
  spec.script.RoamingWave(Seconds(1), Seconds(2), /*to_site=*/1,
                          /*fraction=*/0.3);
  return spec;
}

struct RunRow {
  int64_t fe_p99 = 0;       ///< Modelled FE p99, µs.
  double fe_avail = 0.0;    ///< Modelled FE availability.
  double wall_ms = 0.0;     ///< Real run time of this variant.
  int64_t spans = 0;        ///< Spans retained by the run's tracer.
  bool scenario_pass = false;
};

/// Runs one variant; at full rate the run's trace is merged into `export_to`
/// (the Perfetto artifact must outlive the engine).
RunRow RunVariant(ScenarioSpec spec, double trace_rate,
                  MicroDuration sample_interval, obs::Tracer* export_to) {
  spec.testbed.udr.trace_sample_rate = trace_rate;
  spec.testbed.udr.obs_sample_interval_us = sample_interval;
  scenario::Engine engine(spec);
  const int64_t t0 = NowNs();
  const scenario::ScenarioReport report = engine.Run();
  const int64_t t1 = NowNs();
  RunRow row;
  workload::ClassStats fe = report.stats.FeAll();
  row.fe_p99 = fe.latency.P99();
  row.fe_avail = fe.availability();
  row.wall_ms = static_cast<double>(t1 - t0) / 1e6;
  row.scenario_pass = report.Passed();
  const obs::Tracer* tracer = engine.testbed().udr().tracer();
  if (tracer != nullptr) {
    row.spans = static_cast<int64_t>(tracer->spans().size());
    if (export_to != nullptr) export_to->MergeFrom(*tracer);
  }
  return row;
}

void WriteTraceJson(const std::string& path, const obs::Tracer& merged) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_obs_overhead: cannot write %s\n",
                 path.c_str());
    return;
  }
  const std::string json = merged.ExportChromeJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("bench_obs_overhead: wrote %s (%lld spans)\n", path.c_str(),
              static_cast<long long>(merged.spans().size()));
}

}  // namespace

int main() {
  const std::vector<ScenarioSpec> specs = {StormRebalance(), RoamingWave()};

  // Merge target for the full-rate traces; only Merge/Export are used, so
  // the clock and sampling options are inert.
  sim::SimClock merge_clock;
  obs::Tracer merged(obs::Tracer::Options{}, &merge_clock);

  struct ScenarioRows {
    std::string name;
    RunRow untraced, traced, full;
    double ratio = 0.0;
  };
  std::vector<ScenarioRows> results;
  for (const ScenarioSpec& spec : specs) {
    std::printf("bench_obs_overhead: running %s...\n", spec.name.c_str());
    ScenarioRows r;
    r.name = spec.name;
    r.untraced = RunVariant(spec, 0.0, 0, nullptr);
    r.traced = RunVariant(spec, kTracedRate, kSampleInterval, nullptr);
    r.full = RunVariant(spec, 1.0, kSampleInterval, &merged);
    r.ratio = r.untraced.fe_p99 > 0 ? static_cast<double>(r.traced.fe_p99) /
                                          static_cast<double>(r.untraced.fe_p99)
                                    : 1.0;
    results.push_back(r);
  }

  Table t1("O1: modelled FE p99 / availability per tracing mode "
           "(wall = real run time, reported only)",
           {"scenario", "mode", "fe p99", "fe avail", "wall", "spans"});
  for (const ScenarioRows& r : results) {
    auto row = [&](const char* mode, const RunRow& v) {
      t1.AddRow({r.name, mode, Table::Dur(v.fe_p99), Table::Pct(v.fe_avail),
                 Table::Dbl(v.wall_ms, 1) + "ms", Table::Num(v.spans)});
    };
    row("untraced", r.untraced);
    row("traced 1% + sampler", r.traced);
    row("traced 100%", r.full);
  }
  t1.Print();
  std::printf("\n");

  // The stages ci.sh's trace parse requires; checked here too so a missing
  // stage fails at the bench, with the span inventory in hand.
  const std::string trace_json = merged.ExportChromeJson();
  const std::vector<const char*> required_stages = {
      "event",         "route.batch",   "resolve",        "dispatch",
      "replica.write", "coalesce.park", "coalesce.flush", "migration.chunk"};

  bool pass = true;
  Table t2("O2: gates", {"check", "bound", "actual", "verdict"});
  auto gate = [&](const std::string& check, const std::string& bound,
                  const std::string& actual, bool ok) {
    if (!ok) pass = false;
    t2.AddRow({check, bound, actual, ok ? "PASS" : "FAIL"});
  };
  for (const ScenarioRows& r : results) {
    gate(r.name + ": traced-1% p99 vs untraced",
         "<= " + Table::Dbl(kP99RatioBound, 2) + "x",
         Table::Dbl(r.ratio, 4) + "x", r.ratio <= kP99RatioBound);
    gate(r.name + ": availability unchanged", "exact",
         Table::Pct(r.traced.fe_avail),
         r.traced.fe_avail == r.untraced.fe_avail);
    gate(r.name + ": scenario SLOs", "all pass",
         r.traced.scenario_pass ? "pass" : "fail",
         r.untraced.scenario_pass && r.traced.scenario_pass &&
             r.full.scenario_pass);
  }
  gate("exported trace spans", "> 0", Table::Num(merged.spans().size()),
       !merged.spans().empty());
  for (const char* stage : required_stages) {
    const std::string needle = std::string("\"name\":\"") + stage + "\"";
    gate(std::string("trace covers ") + stage, "present",
         trace_json.find(needle) != std::string::npos ? "yes" : "MISSING",
         trace_json.find(needle) != std::string::npos);
  }
  t2.Print();

  WriteTraceJson(bench::JsonPath("UDR_OBS_TRACE_JSON", "obs_trace.json"),
                 merged);

  const std::string path = bench::JsonPath("UDR_BENCH_OBS_OVERHEAD_JSON",
                                           "BENCH_obs_overhead.json");
  bench::RunMeta meta;
  meta.seed = specs.front().testbed.seed;
  for (const ScenarioSpec& spec : specs) meta.sim_duration_us += spec.duration;
  meta.knobs = {{"subscribers", std::to_string(kSubscribers)},
                {"trace_sample_rate", std::to_string(kTracedRate)},
                {"obs_sample_interval_us", std::to_string(kSampleInterval)},
                {"p99_ratio_bound", std::to_string(kP99RatioBound)}};
  FILE* f = bench::OpenJson(path, "bench_obs_overhead", meta);
  if (f != nullptr) {
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ScenarioRows& r = results[i];
      std::fprintf(
          f,
          "    {\"scenario\": \"%s\", \"untraced_p99_us\": %lld, "
          "\"traced_p99_us\": %lld, \"p99_ratio\": %.4f, "
          "\"untraced_wall_ms\": %.1f, \"traced_wall_ms\": %.1f, "
          "\"full_wall_ms\": %.1f, \"full_spans\": %lld}%s\n",
          r.name.c_str(), static_cast<long long>(r.untraced.fe_p99),
          static_cast<long long>(r.traced.fe_p99), r.ratio,
          r.untraced.wall_ms, r.traced.wall_ms, r.full.wall_ms,
          static_cast<long long>(r.full.spans),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"exported_spans\": %lld,\n",
                 static_cast<long long>(merged.spans().size()));
    bench::CloseJson(f, path, "bench_obs_overhead", pass);
  }
  return pass ? 0 : 1;
}
