// Packed-record layout benchmark (self-checking, plain main):
//
//   L1  bytes/subscriber at 1M records — the packed (interned-name + sorted
//       vector) layout's modelled footprint against what the legacy
//       std::map<std::string, Attribute> layout costs for the SAME profiles,
//       plus the process's real RSS growth as a cross-check. GATE: >= 40%
//       reduction.
//   L2  attribute-lookup hot path — ns/op for packed Record::Find (pool
//       lookup + binary search, zero per-call std::string construction)
//       against the legacy map lookup that builds a std::string key per
//       call. GATE: 0 heap allocations per packed lookup, proven by a global
//       operator new counter around the timed loop.
//
// Emits BENCH_record_layout.json (to $UDR_BENCH_RECORD_LAYOUT_JSON, or
// ./BENCH_record_layout.json) for the bench trajectory.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <unistd.h>
#include <new>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "storage/attr_pool.h"
#include "storage/record.h"
#include "telecom/subscriber.h"

using namespace udr;
using storage::Attribute;
using storage::Record;

// ---------------------------------------------------------------------------
// Global allocation counter: proves the packed lookup path is allocation-free.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr int64_t kSubscribers = 1'000'000;
constexpr int64_t kMapSample = 200'000;  ///< Real-RSS sample of the map layout.
constexpr int64_t kLookups = 2'000'000;

/// Resident set size from /proc/self/statm, in bytes.
int64_t RssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long pages_total = 0, pages_resident = 0;
  int n = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return 0;
  return pages_resident * sysconf(_SC_PAGESIZE);
}

int64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

struct LayoutResult {
  int64_t packed_model_per_sub = 0;
  int64_t map_model_per_sub = 0;
  int64_t packed_rss_per_sub = 0;
  int64_t map_rss_per_sub = 0;
  double reduction = 0.0;
  double attrs_per_record = 0.0;
};

LayoutResult MeasureLayout(const std::vector<Record>& records,
                           int64_t packed_rss_delta) {
  LayoutResult r;
  int64_t packed_model = 0, map_model = 0, attrs = 0;
  for (const Record& rec : records) {
    packed_model += rec.ApproxBytes();
    map_model += rec.MapLayoutBytes();
    attrs += static_cast<int64_t>(rec.attribute_count());
  }
  const int64_t n = static_cast<int64_t>(records.size());
  r.packed_model_per_sub = packed_model / n;
  r.map_model_per_sub = map_model / n;
  r.packed_rss_per_sub = packed_rss_delta / n;
  r.attrs_per_record = static_cast<double>(attrs) / static_cast<double>(n);
  r.reduction =
      1.0 - static_cast<double>(packed_model) / static_cast<double>(map_model);

  // Real-RSS cross-check of the map layout on a sample (the full map copy of
  // 1M records would double the bench's footprint for no extra signal).
  {
    const int64_t before = RssBytes();
    std::vector<std::map<std::string, Attribute>> maps;
    maps.reserve(kMapSample);
    for (int64_t i = 0; i < kMapSample; ++i) {
      maps.push_back(records[static_cast<size_t>(i)].ToMap());
    }
    r.map_rss_per_sub = (RssBytes() - before) / kMapSample;
  }
  return r;
}

struct LookupResult {
  double packed_ns_per_op = 0.0;
  double by_id_ns_per_op = 0.0;
  double map_ns_per_op = 0.0;
  uint64_t packed_allocs = 0;
  int64_t checksum = 0;  ///< Defeats dead-code elimination.
};

LookupResult MeasureLookup(const std::vector<Record>& records) {
  // Name universe of the profile schema, as raw C strings — the form a
  // protocol layer hands the storage layer (LDAP attribute descriptions).
  std::vector<const char*> names;
  for (const auto& e : records.front().entries()) {
    names.push_back(storage::AttrNameOf(e.name_id).data());
  }

  LookupResult r;
  const size_t sample = 1024;  // Rotate over records to beat the cache a bit.

  // Packed path: Record::Find(string_view) — pool probe + binary search.
  {
    const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
    const int64_t t0 = NowNs();
    for (int64_t i = 0; i < kLookups; ++i) {
      const Record& rec = records[static_cast<size_t>(i) % sample];
      const char* name = names[static_cast<size_t>(i) % names.size()];
      const Attribute* a = rec.Find(name);
      if (a != nullptr) r.checksum += a->writer + 1;
    }
    r.packed_ns_per_op =
        static_cast<double>(NowNs() - t0) / static_cast<double>(kLookups);
    r.packed_allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
  }

  // Pre-interned path: Record::FindById — what the data path itself runs
  // (WriteOps and the store's inner loops carry AttrIds, not names).
  {
    std::vector<storage::AttrId> ids;
    for (const char* name : names) ids.push_back(storage::LookupAttr(name));
    const int64_t t0 = NowNs();
    for (int64_t i = 0; i < kLookups; ++i) {
      const Record& rec = records[static_cast<size_t>(i) % sample];
      const Attribute* a =
          rec.FindById(ids[static_cast<size_t>(i) % ids.size()]);
      if (a != nullptr) r.checksum += a->writer + 1;
    }
    r.by_id_ns_per_op =
        static_cast<double>(NowNs() - t0) / static_cast<double>(kLookups);
  }

  // Legacy path: std::map keyed by std::string; every call pays the key
  // construction the old layout forced on the hot path.
  {
    std::vector<std::map<std::string, Attribute>> maps;
    maps.reserve(sample);
    for (size_t i = 0; i < sample; ++i) maps.push_back(records[i].ToMap());
    const int64_t t0 = NowNs();
    for (int64_t i = 0; i < kLookups; ++i) {
      const auto& m = maps[static_cast<size_t>(i) % sample];
      auto it = m.find(std::string(names[static_cast<size_t>(i) % names.size()]));
      if (it != m.end()) r.checksum += it->second.writer + 1;
    }
    r.map_ns_per_op =
        static_cast<double>(NowNs() - t0) / static_cast<double>(kLookups);
  }
  return r;
}

void WriteJson(const LayoutResult& layout, const LookupResult& lookup,
               bool pass) {
  std::string path = bench::JsonPath("UDR_BENCH_RECORD_LAYOUT_JSON",
                                     "BENCH_record_layout.json");
  bench::RunMeta meta;  // Wall-measured layout/lookup bench: no seed/sim time.
  meta.knobs = {{"subscribers", std::to_string(kSubscribers)},
                {"map_sample", std::to_string(kMapSample)},
                {"lookups", std::to_string(kLookups)}};
  FILE* f = bench::OpenJson(path, "bench_record_layout", meta);
  if (f == nullptr) return;
  std::fprintf(
      f,
      "  \"layout\": {\"packed_model_bytes_per_sub\": %lld, "
      "\"map_model_bytes_per_sub\": %lld, \"packed_rss_bytes_per_sub\": %lld, "
      "\"map_rss_bytes_per_sub\": %lld, \"reduction\": %.4f},\n",
      static_cast<long long>(layout.packed_model_per_sub),
      static_cast<long long>(layout.map_model_per_sub),
      static_cast<long long>(layout.packed_rss_per_sub),
      static_cast<long long>(layout.map_rss_per_sub), layout.reduction);
  std::fprintf(f,
               "  \"lookup\": {\"packed_ns_per_op\": %.2f, "
               "\"by_id_ns_per_op\": %.2f, \"map_ns_per_op\": "
               "%.2f, \"packed_allocs_per_%lld_lookups\": %llu},\n",
               lookup.packed_ns_per_op, lookup.by_id_ns_per_op,
               lookup.map_ns_per_op, static_cast<long long>(kLookups),
               static_cast<unsigned long long>(lookup.packed_allocs));
  bench::CloseJson(f, path, "bench_record_layout", pass);
}

}  // namespace

int main() {
  std::printf("bench_record_layout: building %lld subscriber profiles...\n",
              static_cast<long long>(kSubscribers));
  telecom::SubscriberFactory factory(42);
  const int64_t rss_before = RssBytes();
  std::vector<Record> records;
  records.reserve(kSubscribers);
  for (int64_t i = 0; i < kSubscribers; ++i) {
    records.push_back(factory.Make(static_cast<uint64_t>(i)).profile);
  }
  const int64_t packed_rss_delta = RssBytes() - rss_before;

  LayoutResult layout = MeasureLayout(records, packed_rss_delta);
  LookupResult lookup = MeasureLookup(records);

  Table t1("L1: bytes/subscriber at 1M records (packed vs map layout)",
           {"layout", "model B/sub", "real RSS B/sub"});
  t1.AddRow({"map<string,Attribute>", Table::Num(layout.map_model_per_sub),
             Table::Num(layout.map_rss_per_sub) + " (200k sample)"});
  t1.AddRow({"packed (interned ids)", Table::Num(layout.packed_model_per_sub),
             Table::Num(layout.packed_rss_per_sub)});
  t1.AddRow({"attrs/record", Table::Dbl(layout.attrs_per_record, 1), "-"});
  t1.Print();
  std::printf("\n");

  Table t2("L2: attribute lookup hot path (2M lookups)",
           {"path", "ns/op", "heap allocs"});
  t2.AddRow({"map + per-call std::string", Table::Dbl(lookup.map_ns_per_op, 1),
             "per-call key"});
  t2.AddRow({"packed Find(string_view)", Table::Dbl(lookup.packed_ns_per_op, 1),
             Table::Num(static_cast<int64_t>(lookup.packed_allocs))});
  t2.AddRow({"packed FindById (data path)",
             Table::Dbl(lookup.by_id_ns_per_op, 1), "0"});
  t2.Print();
  std::printf("\n");

  const bool reduction_ok = layout.reduction >= 0.40;
  const bool alloc_ok = lookup.packed_allocs == 0;
  const bool pass = reduction_ok && alloc_ok;

  Table t3("L3: self-check (any failed row breaks the CI smoke)",
           {"check", "value", "target", "verdict"});
  t3.AddRow({"bytes/sub reduction", Table::Pct(layout.reduction, 1), ">= 40%",
             reduction_ok ? "PASS" : "FAIL"});
  t3.AddRow({"packed lookup allocations",
             Table::Num(static_cast<int64_t>(lookup.packed_allocs)), "0",
             alloc_ok ? "PASS" : "FAIL"});
  t3.Print();

  WriteJson(layout, lookup, pass);
  (void)lookup.checksum;
  return pass ? 0 : 1;
}
