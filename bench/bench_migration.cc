// M — the throttled background migration subsystem: foreground impact,
// bandwidth scaling and the zero-loss cutover invariant.
//
// M1 compares foreground probe latency (p99) against subscribers living on
// the partitions a scale-out rebalance moves: with no migration (baseline),
// during a bandwidth-throttled background move (chunks interleave with the
// probes), and right after an unthrottled bulk move (the whole handoff's
// engine load lands at one instant and foreground ops queue behind it). M2
// sweeps the bandwidth cap and checks total move time scales inversely with
// it, and that the bytes actually moved match the planner's estimate. M3
// interleaves acknowledged writes with every pacing step of a throttled
// move and verifies every one of them reads back after the cutover (zero
// acknowledged-write loss), including subscribers created mid-migration.
// M4 is the self-checking expected-shape table the CI smoke gates on.
//
// The run also emits a machine-readable BENCH_migration.json (to
// $UDR_BENCH_JSON_PATH, or ./BENCH_migration.json) so the bench trajectory
// can be tracked across commits.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "ldap/dn.h"
#include "migration/planner.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

constexpr int kSubscribers = 1200;
constexpr int kModifyRounds = 3;  // Fattens the logs the move must ship.
constexpr MicroDuration kProbeGap = Micros(250);
constexpr int64_t kThrottleBps = 256 * 1024;  // 256 KiB/s.
constexpr int64_t kChunkBytes = 2 * 1024;

/// 3-site testbed with a populated UDR (plus modifies to fatten the logs).
workload::Testbed MakeBed(int64_t bandwidth_bps, int64_t chunk_bytes) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = kSubscribers;
  o.udr.partitions_per_se = 2;
  o.udr.migration_bandwidth_bps = bandwidth_bps;
  o.udr.migration_chunk_bytes = chunk_bytes;
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  for (int round = 0; round < kModifyRounds; ++round) {
    for (uint64_t i = 0; i < kSubscribers; ++i) {
      ldap::LdapRequest mod;
      mod.op = ldap::LdapOp::kModify;
      mod.dn = ldap::SubscriberDn("imsi", bed.factory().ImsiOf(i));
      mod.mods.push_back({ldap::ModType::kReplace, "serving-vlr",
                          std::string("vlr") + std::to_string(i % 7 + round)});
      udr.Submit(mod, 0);
    }
  }
  bed.clock().Advance(Seconds(2));
  bed.udr().CatchUpAllPartitions();
  return bed;
}

/// Subscribers whose partition the pending rebalance plan will move (the
/// foreground population that actually feels the migration).
std::vector<uint64_t> AffectedSubscribers(workload::Testbed& bed, int want) {
  auto plan = migration::MigrationPlanner::PlanRebalance(
      bed.udr().partition_map());
  std::unordered_set<uint32_t> moved;
  for (const auto& task : plan.tasks) moved.insert(task.partition);
  std::vector<uint64_t> picks;
  for (uint64_t i = 0; i < kSubscribers && static_cast<int>(picks.size()) < want;
       ++i) {
    auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(i).ImsiId());
    if (loc.ok() && moved.count(loc->partition) > 0) picks.push_back(i);
  }
  return picks;
}

/// One foreground probe: alternating master read / location-update write
/// against a subscriber on a moved partition. Returns the probe latency.
MicroDuration Probe(workload::Testbed& bed, uint64_t subscriber, bool write) {
  ldap::LdapRequest req;
  req.dn = ldap::SubscriberDn("imsi", bed.factory().ImsiOf(subscriber));
  if (write) {
    req.op = ldap::LdapOp::kModify;
    req.mods.push_back(
        {ldap::ModType::kReplace, "serving-vlr", std::string("vlr-probe")});
  } else {
    req.op = ldap::LdapOp::kSearch;
    req.master_only = true;
  }
  return bed.udr().Submit(req, 0).latency;
}

/// Probes every kProbeGap for `ticks` ticks, pumping migration when asked.
Histogram RunProbes(workload::Testbed& bed, const std::vector<uint64_t>& subs,
                    int ticks, bool pump) {
  Histogram h;
  for (int t = 0; t < ticks; ++t) {
    bed.clock().Advance(kProbeGap);
    if (pump) bed.udr().PumpMigration();
    h.Record(Probe(bed, subs[t % subs.size()], (t & 1) != 0));
  }
  return h;
}

struct M1Result {
  int64_t baseline_p99 = 0;
  int64_t throttled_p99 = 0;
  int64_t unthrottled_p99 = 0;
  int throttled_ticks = 0;
  MicroDuration throttled_duration = 0;
};

M1Result RunM1() {
  M1Result r;

  // Throttled run: probe while the background scheduler drains the move.
  {
    workload::Testbed bed = MakeBed(kThrottleBps, kChunkBytes);
    if (!bed.udr().AddCluster(0).ok()) return r;
    std::vector<uint64_t> subs = AffectedSubscribers(bed, 8);
    if (subs.empty()) return r;

    // Baseline: the same probes before any migration starts.
    r.baseline_p99 = RunProbes(bed, subs, 1000, false).P99();

    bed.udr().StartMigration();
    const MicroTime start = bed.clock().Now();
    Histogram during;
    int ticks = 0;
    while (bed.udr().MigrationActive() && ticks < 100000) {
      bed.clock().Advance(kProbeGap);
      bed.udr().PumpMigration();
      during.Record(Probe(bed, subs[ticks % subs.size()], (ticks & 1) != 0));
      ++ticks;
    }
    r.throttled_p99 = during.P99();
    r.throttled_ticks = ticks;
    r.throttled_duration = bed.clock().Now() - start;
  }

  // Unthrottled run: the bulk move lands at one instant; probe the same
  // number of ticks right after it — the stall the paper wants gone.
  {
    workload::Testbed bed = MakeBed(0, kChunkBytes);
    if (!bed.udr().AddCluster(0).ok()) return r;
    std::vector<uint64_t> subs = AffectedSubscribers(bed, 8);
    if (subs.empty()) return r;
    auto report = bed.udr().Rebalance();
    if (!report.ok()) return r;
    r.unthrottled_p99 = RunProbes(bed, subs, 1000, false).P99();
  }
  return r;
}

struct M2Row {
  int64_t bps = 0;
  MicroDuration move_time = 0;
  int64_t bytes_moved = 0;
  int64_t bytes_estimated = 0;
  int64_t tasks_failed = 0;
};

M2Row RunM2(int64_t bps) {
  M2Row row;
  row.bps = bps;
  workload::Testbed bed = MakeBed(bps, kChunkBytes);
  if (!bed.udr().AddCluster(0).ok()) return row;
  auto progress = bed.udr().StartMigration();
  row.bytes_estimated = progress.bytes_estimated;
  const MicroTime start = bed.clock().Now();
  int guard = 0;
  while (bed.udr().MigrationActive() && guard++ < 200000) {
    MicroTime at = bed.udr().NextMigrationDeadline();
    if (at == kTimeInfinity) break;
    bed.clock().AdvanceTo(std::max(at, bed.clock().Now()));
    bed.udr().PumpMigration();
  }
  auto done = bed.udr().MigrationStatus();
  row.move_time = bed.clock().Now() - start;
  row.bytes_moved = done.bytes_moved;
  row.tasks_failed = done.tasks_failed;
  return row;
}

struct M3Result {
  int64_t acked = 0;
  int64_t verified = 0;
  int64_t lost = 0;
  int64_t created = 0;
  int64_t tasks_failed = 0;
};

M3Result RunM3() {
  M3Result r;
  workload::Testbed bed = MakeBed(kThrottleBps, kChunkBytes);
  auto& udr = bed.udr();
  if (!udr.AddCluster(0).ok()) return r;
  udr.StartMigration();

  std::unordered_map<uint64_t, std::string> acked_value;
  std::vector<location::Identity> created;
  telecom::SubscriberFactory extra(997);
  int step = 0;
  while (udr.MigrationActive() && step < 100000) {
    MicroTime at = udr.NextMigrationDeadline();
    if (at == kTimeInfinity) break;
    bed.clock().AdvanceTo(std::max(at, bed.clock().Now()));
    udr.PumpMigration();

    // One acknowledged write per pacing step, cycling the population so
    // plenty land on partitions that are mid-copy or mid-catch-up.
    uint64_t index = static_cast<uint64_t>(step) % kSubscribers;
    std::string value = "+49" + std::to_string(step);
    ldap::LdapRequest mod;
    mod.op = ldap::LdapOp::kModify;
    mod.dn = ldap::SubscriberDn("imsi", bed.factory().ImsiOf(index));
    mod.mods.push_back({ldap::ModType::kReplace, "cfu-number", value});
    if (udr.Submit(mod, 0).code == ldap::LdapResultCode::kSuccess) {
      acked_value[index] = value;
    }
    if (step % 11 == 0) {
      auto spec =
          extra.MakeSpec(500000 + static_cast<uint64_t>(step), std::nullopt);
      if (udr.CreateSubscriber(spec, 0).ok()) {
        created.push_back(spec.identities.front());
      }
    }
    ++step;
  }
  r.tasks_failed = udr.MigrationStatus().tasks_failed;

  for (const auto& [index, value] : acked_value) {
    ++r.acked;
    auto loc = udr.AuthoritativeLookup(bed.factory().Make(index).ImsiId());
    if (!loc.ok()) {
      ++r.lost;
      continue;
    }
    auto record = udr.partition(loc->partition)
                      ->ReadRecord(0, loc->key,
                                   replication::ReadPreference::kMasterOnly);
    if (record.ok() && record->Has("cfu-number") &&
        storage::ValueToString(*record->Get("cfu-number")) == value) {
      ++r.verified;
    } else {
      ++r.lost;
    }
  }
  for (const location::Identity& id : created) {
    ++r.acked;
    ++r.created;
    auto loc = udr.AuthoritativeLookup(id);
    bool ok = false;
    if (loc.ok()) {
      ok = udr.partition(loc->partition)
               ->ReadRecord(0, loc->key,
                            replication::ReadPreference::kMasterOnly)
               .ok();
    }
    if (ok) {
      ++r.verified;
    } else {
      ++r.lost;
    }
  }
  return r;
}

void WriteJson(const M1Result& m1, const std::vector<M2Row>& m2,
               const M3Result& m3, bool pass) {
  std::string path =
      bench::JsonPath("UDR_BENCH_JSON_PATH", "BENCH_migration.json");
  bench::RunMeta meta;
  meta.seed = workload::TestbedOptions{}.seed;
  meta.knobs = {{"subscribers", std::to_string(kSubscribers)},
                {"throttle_bps", std::to_string(kThrottleBps)},
                {"chunk_bytes", std::to_string(kChunkBytes)},
                {"probe_gap_us", std::to_string(kProbeGap)}};
  FILE* f = bench::OpenJson(path, "bench_migration", meta);
  if (f == nullptr) return;
  std::fprintf(f,
               "  \"m1\": {\"baseline_p99_us\": %lld, \"throttled_p99_us\": "
               "%lld, \"unthrottled_p99_us\": %lld, \"throttled_move_us\": "
               "%lld},\n",
               static_cast<long long>(m1.baseline_p99),
               static_cast<long long>(m1.throttled_p99),
               static_cast<long long>(m1.unthrottled_p99),
               static_cast<long long>(m1.throttled_duration));
  std::fprintf(f, "  \"m2\": [\n");
  for (size_t i = 0; i < m2.size(); ++i) {
    std::fprintf(f,
                 "    {\"bandwidth_bps\": %lld, \"move_time_us\": %lld, "
                 "\"bytes_moved\": %lld, \"bytes_estimated\": %lld}%s\n",
                 static_cast<long long>(m2[i].bps),
                 static_cast<long long>(m2[i].move_time),
                 static_cast<long long>(m2[i].bytes_moved),
                 static_cast<long long>(m2[i].bytes_estimated),
                 i + 1 < m2.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"m3\": {\"acked_writes\": %lld, \"verified\": %lld, "
               "\"lost\": %lld, \"created_during\": %lld},\n",
               static_cast<long long>(m3.acked),
               static_cast<long long>(m3.verified),
               static_cast<long long>(m3.lost),
               static_cast<long long>(m3.created));
  bench::CloseJson(f, path, "bench_migration", pass);
}

void PrintMigrationTables() {
  M1Result m1 = RunM1();
  Table t1("M1: foreground probe p99 against moved partitions "
           "(250us probes, 256KiB/s throttle, 2KiB chunks)",
           {"mode", "p99", "vs baseline"});
  auto ratio = [&](int64_t v) {
    return m1.baseline_p99 > 0
               ? static_cast<double>(v) / static_cast<double>(m1.baseline_p99)
               : 0.0;
  };
  t1.AddRow({"no migration (baseline)", Table::Dur(m1.baseline_p99), "1.00x"});
  t1.AddRow({"throttled background move", Table::Dur(m1.throttled_p99),
             Table::Dbl(ratio(m1.throttled_p99), 2) + "x"});
  t1.AddRow({"unthrottled bulk move", Table::Dur(m1.unthrottled_p99),
             Table::Dbl(ratio(m1.unthrottled_p99), 2) + "x"});
  t1.Print();

  std::vector<M2Row> m2;
  for (int64_t bps : {64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024}) {
    m2.push_back(RunM2(bps));
  }
  Table t2("M2: total move time vs bandwidth cap (same delta each run)",
           {"bandwidth", "move time", "bytes moved", "planner estimate",
            "estimate err"});
  for (const M2Row& row : m2) {
    double err = row.bytes_estimated > 0
                     ? std::abs(static_cast<double>(row.bytes_moved -
                                                    row.bytes_estimated)) /
                           static_cast<double>(row.bytes_estimated)
                     : 1.0;
    t2.AddRow({Table::Bytes(row.bps) + "/s", Table::Dur(row.move_time),
               Table::Bytes(row.bytes_moved), Table::Bytes(row.bytes_estimated),
               Table::Pct(err, 2)});
  }
  t2.Print();

  M3Result m3 = RunM3();
  Table t3("M3: acknowledged writes across a throttled migration",
           {"metric", "value"});
  t3.AddRow({"writes acknowledged during move", Table::Num(m3.acked)});
  t3.AddRow({"  of which new activations", Table::Num(m3.created)});
  t3.AddRow({"verified readable after cutover", Table::Num(m3.verified)});
  t3.AddRow({"lost", Table::Num(m3.lost)});
  t3.Print();

  // M4: the self-checking expected shape (CI smoke fails on any FAIL row).
  bool m1_throttled_ok =
      m1.baseline_p99 > 0 && m1.throttled_p99 <= 2 * m1.baseline_p99;
  bool m1_contrast_ok = m1.unthrottled_p99 > m1.throttled_p99;
  bool m2_estimate_ok = !m2.empty();
  bool m2_scaling_ok = true;
  for (const M2Row& row : m2) {
    if (row.tasks_failed != 0 || row.bytes_estimated <= 0 ||
        std::abs(static_cast<double>(row.bytes_moved - row.bytes_estimated)) >
            0.05 * static_cast<double>(row.bytes_estimated)) {
      m2_estimate_ok = false;
    }
  }
  for (size_t i = 1; i < m2.size(); ++i) {
    // Doubling the cap should roughly halve the move time.
    double speedup = m2[i].move_time > 0
                         ? static_cast<double>(m2[i - 1].move_time) /
                               static_cast<double>(m2[i].move_time)
                         : 0.0;
    if (speedup < 1.5 || speedup > 2.5) m2_scaling_ok = false;
  }
  bool m3_ok = m3.acked > 0 && m3.lost == 0 && m3.tasks_failed == 0;

  Table t4("M4: expected shape", {"check", "result"});
  t4.AddRow({"throttled foreground p99 <= 2x no-migration baseline",
             m1_throttled_ok ? "PASS" : "FAIL"});
  t4.AddRow({"unthrottled bulk move stalls foreground harder than throttled",
             m1_contrast_ok ? "PASS" : "FAIL"});
  t4.AddRow({"bytes moved within 5% of planner estimate (all caps)",
             m2_estimate_ok ? "PASS" : "FAIL"});
  t4.AddRow({"move time scales ~inversely with the bandwidth cap",
             m2_scaling_ok ? "PASS" : "FAIL"});
  t4.AddRow({"zero acknowledged-write loss across cutover",
             m3_ok ? "PASS" : "FAIL"});
  t4.Print();

  WriteJson(m1, m2, m3,
            m1_throttled_ok && m1_contrast_ok && m2_estimate_ok &&
                m2_scaling_ok && m3_ok);
}

void BM_ThrottledMigrationPump(benchmark::State& state) {
  workload::Testbed bed = MakeBed(kThrottleBps, kChunkBytes);
  (void)bed.udr().AddCluster(0);
  bed.udr().StartMigration();
  for (auto _ : state) {
    MicroTime at = bed.udr().NextMigrationDeadline();
    if (at == kTimeInfinity) {
      state.SkipWithError("migration drained before the timing loop ended");
      break;
    }
    bed.clock().AdvanceTo(std::max(at, bed.clock().Now()));
    bed.udr().PumpMigration();
    benchmark::DoNotOptimize(bed.udr().MigrationStatus().bytes_moved);
  }
}
BENCHMARK(BM_ThrottledMigrationPump)->Unit(benchmark::kMicrosecond)->Iterations(50);

}  // namespace

int main(int argc, char** argv) {
  PrintMigrationTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
