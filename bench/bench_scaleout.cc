// E9 — scale-out and the S-R link (§3.4.2), plus live rebalancing.
//
// Deploying an additional blade cluster auto-creates a data location stage
// instance that must copy all provisioned identity-location maps from a
// peer; during that sync window the new PoA cannot serve (availability
// hit). The window grows linearly with the provisioned subscriber base. The
// cached-map alternative (§3.5) has no window but pays the E8 broadcast
// cost per miss — the F-R-S triangle the paper calls "likely to change".
//
// E9d measures the routing layer's Rebalance(): primary-copy spread across
// storage elements before/after a scale-out migration, and the migration
// cost (entries replayed, bytes moved, modelled bulk-resync time).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/table.h"
#include "workload/testbed.h"

using namespace udr;
using location::IdentityType;

namespace {

void PrintScaleoutTables() {
  Table t("E9a: scale-out identity-map sync window vs provisioned base "
          "(provisioned location stage; ~5 identities per subscriber)",
          {"subscribers", "map entries", "sync window",
           "new-PoA ops lost @1000 ops/s"});
  for (int64_t subs : {1'000LL, 5'000LL, 20'000LL}) {
    workload::TestbedOptions o;
    o.sites = 4;
    o.subscribers = 0;
    workload::Testbed bed(o);
    // Deploy 3 clusters' worth of population, then scale out to site 3.
    bed.ProvisionDirect(0, subs);
    int64_t entries =
        bed.udr().cluster(0)->location_stage()->EntryCount();
    auto cluster = bed.udr().AddCluster(3);
    if (!cluster.ok()) continue;
    MicroDuration window = static_cast<MicroDuration>(
        bed.udr().metrics().HistOrEmpty("scaleout.sync_window_us").max());
    int64_t lost_ops = window * 1000 / Seconds(1);
    t.AddRow({Table::Num(subs), Table::Num(entries), Table::Dur(window),
              Table::Num(lost_ops)});
  }
  t.Print();

  Table t2("E9b: provisioned vs cached stage at scale-out (5,000 subscribers)",
           {"stage kind", "sync window", "first lookup at new PoA",
            "lookup cost"});
  for (auto kind : {udrnf::LocationKind::kProvisioned,
                    udrnf::LocationKind::kCached}) {
    workload::TestbedOptions o;
    o.sites = 4;
    o.udr.location_kind = kind;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, 5000);
    auto cluster = bed.udr().AddCluster(3);
    if (!cluster.ok()) continue;
    auto r = (*cluster)->location_stage()->Resolve(
        {IdentityType::kImsi, bed.factory().ImsiOf(42)}, bed.clock().Now());
    MicroDuration window = static_cast<MicroDuration>(
        bed.udr().metrics().HistOrEmpty("scaleout.sync_window_us").max());
    t2.AddRow({kind == udrnf::LocationKind::kProvisioned ? "provisioned maps"
                                                         : "cached maps",
               kind == udrnf::LocationKind::kProvisioned ? Table::Dur(window)
                                                         : "none",
               r.status.ok() ? "serves immediately"
                             : "unavailable (syncing)",
               r.status.ok() ? Table::Dur(r.cost) : "-"});
  }
  t2.Print();

  Table t3("E9c: expected shape", {"check", "result"});
  {
    workload::TestbedOptions o;
    o.sites = 4;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, 1000);
    bed.udr().AddCluster(3).ok();
    MicroDuration w1 = static_cast<MicroDuration>(
        bed.udr().metrics().HistOrEmpty("scaleout.sync_window_us").max());

    workload::TestbedOptions o2 = o;
    workload::Testbed bed2(o2);
    bed2.ProvisionDirect(0, 10000);
    (void)bed2.udr().AddCluster(3);
    MicroDuration w2 = static_cast<MicroDuration>(
        bed2.udr().metrics().HistOrEmpty("scaleout.sync_window_us").max());
    t3.AddRow({"window scales ~10x for 10x subscribers",
               w2 > 8 * w1 && w2 < 12 * w1 ? "PASS" : "FAIL"});
  }
  t3.Print();

  Table t4("E9d: live rebalancing on scale-out (4 clusters -> 5, "
           "2 partitions per SE)",
           {"subscribers", "spread before", "spread after", "moves",
            "entries replayed", "bytes moved", "migration time"});
  for (int64_t subs : {1'000LL, 5'000LL, 20'000LL}) {
    workload::TestbedOptions o;
    o.sites = 4;
    o.udr.partitions_per_se = 2;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, subs);
    auto report = bed.ScaleOut(0);  // Fifth cluster; fresh SEs, 0 primaries.
    if (!report.ok()) continue;
    t4.AddRow({Table::Num(subs), Table::Num(report->spread_before),
               Table::Num(report->spread_after),
               Table::Num(static_cast<int64_t>(report->moves.size())),
               Table::Num(report->entries_replayed),
               Table::Num(report->bytes_moved), Table::Dur(report->duration)});
  }
  t4.Print();

  Table t5("E9e: post-rebalance primary-copy distribution sanity",
           {"check", "result"});
  {
    workload::TestbedOptions o;
    o.sites = 4;
    o.udr.partitions_per_se = 2;
    o.subscribers = 2'000;
    workload::Testbed bed(o);
    auto report = bed.ScaleOut(1);
    bool balanced = report.ok() &&
                    bed.udr().partition_map().PrimarySpread() <= 1;
    std::vector<int> primaries = bed.udr().partition_map().PrimariesPerSe();
    int on_new = 0;
    for (size_t i = primaries.size() - 2; i < primaries.size(); ++i) {
      on_new += primaries[i];
    }
    t5.AddRow({"per-SE primary spread <= 1 after Rebalance()",
               balanced ? "PASS" : "FAIL"});
    t5.AddRow({"new SEs received primary copies",
               on_new >= 2 ? "PASS" : "FAIL"});
    t5.AddRow({"no subscriber lost",
               bed.udr().SubscriberCount() == 2'000 ? "PASS" : "FAIL"});
  }
  t5.Print();

  Table t6("E9f: population-weighted rebalancing (all subscribers pinned to "
           "site 0; primary counts start balanced, population does not)",
           {"weight mode", "pop spread before", "pop spread after", "moves",
            "bytes moved", "migration time"});
  for (auto weight : {routing::RebalanceWeight::kPrimaryCount,
                      routing::RebalanceWeight::kPopulation}) {
    workload::TestbedOptions o;
    o.sites = 3;
    o.udr.partitions_per_se = 2;
    o.udr.rebalance_weight = weight;
    workload::Testbed bed(o);
    for (uint64_t i = 0; i < 3'000; ++i) {
      auto spec = bed.factory().MakeSpec(i, sim::SiteId{0});
      (void)bed.udr().CreateSubscriber(spec, 0);
    }
    auto report = bed.udr().Rebalance();
    if (!report.ok()) continue;
    t6.AddRow({weight == routing::RebalanceWeight::kPopulation
                   ? "population"
                   : "primary count",
               Table::Num(report->population_spread_before),
               Table::Num(report->population_spread_after),
               Table::Num(static_cast<int64_t>(report->moves.size())),
               Table::Bytes(report->bytes_moved),
               Table::Dur(report->duration)});
  }
  t6.Print();
}

void BM_ScaleOutCluster(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    workload::TestbedOptions o;
    o.sites = 4;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, 500);
    state.ResumeTiming();
    auto c = bed.udr().AddCluster(3);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ScaleOutCluster)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_RebalanceAfterScaleOut(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    workload::TestbedOptions o;
    o.sites = 4;
    o.udr.partitions_per_se = 2;
    workload::Testbed bed(o);
    bed.ProvisionDirect(0, 1000);
    (void)bed.udr().AddCluster(0);
    state.ResumeTiming();
    auto r = bed.udr().Rebalance();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RebalanceAfterScaleOut)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  PrintScaleoutTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
