// E12 — UDC vs pre-UDC provisioning (Figures 3 and 4, §2.4).
//
// Pre-UDC: every provisioning procedure writes the owning HLR silo plus
// every SLF instance, with no cross-node transactionality — node failures
// leave partial states that demand manual repair. UDC: one transaction
// against the UDR; it lands atomically or fails cleanly. Sweep the node
// failure probability and count writes, partial states and manual repairs.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "telecom/pre_udc.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

struct BaselineTrial {
  int64_t provisionings = 0;
  int64_t writes = 0;
  int64_t complete = 0;
  int64_t partial = 0;
  int64_t failed_clean = 0;
  int64_t manual_repairs = 0;
  bool consistent = true;
};

BaselineTrial RunPreUdc(double node_down_probability, uint64_t seed) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  telecom::PreUdcConfig cfg;
  telecom::PreUdcNetwork net(cfg, network.get());
  telecom::SubscriberFactory factory(42);
  Rng rng(seed);

  BaselineTrial trial;
  for (uint64_t i = 0; i < 300; ++i) {
    // Random node outages for the duration of this provisioning.
    for (size_t h = 0; h < net.hlr_count(); ++h) {
      net.SetHlrUp(h, !rng.Bernoulli(node_down_probability));
    }
    for (size_t s = 0; s < net.slf_count(); ++s) {
      net.SetSlfUp(s, !rng.Bernoulli(node_down_probability));
    }
    auto out = net.Provision(factory.Make(i), /*ps_site=*/0);
    ++trial.provisionings;
    trial.writes += out.writes_attempted;
    if (out.status.ok()) ++trial.complete;
    else if (out.partial) ++trial.partial;
    else ++trial.failed_clean;
    clock.Advance(Millis(100));
  }
  trial.manual_repairs = net.manual_repairs();
  trial.consistent = net.GloballyConsistent();
  return trial;
}

struct UdcTrial {
  int64_t provisionings = 0;
  int64_t writes = 0;  ///< LDAP operations issued (1 per provisioning).
  int64_t complete = 0;
  int64_t failed_clean = 0;
  int64_t partial = 0;  ///< Always 0: the transaction is atomic.
};

UdcTrial RunUdc(double se_down_probability, uint64_t seed) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  Rng rng(seed);
  UdcTrial trial;
  for (uint64_t i = 0; i < 300; ++i) {
    // Random partition of some remote site for this operation, with the
    // same per-op failure probability as the baseline's nodes.
    if (rng.Bernoulli(se_down_probability)) {
      sim::SiteId victim = 1 + static_cast<sim::SiteId>(rng.Uniform(2));
      bed.network().partitions().IsolateSite(victim, 3, bed.clock().Now(),
                                             bed.clock().Now() + Millis(90));
    }
    auto r = ps.Provision(i);
    ++trial.provisionings;
    trial.writes += r.ldap_ops;
    if (r.ok()) {
      ++trial.complete;
    } else {
      ++trial.failed_clean;
      // Verify atomicity: nothing half-provisioned.
      if (bed.udr()
              .AuthoritativeLookup(bed.factory().Make(i).ImsiId())
              .ok()) {
        ++trial.partial;
      }
    }
    bed.clock().Advance(Millis(100));
  }
  return trial;
}

void PrintPreUdcTables() {
  Table t("E12a: provisioning in the pre-UDC node network (1 HLR + 3 SLF "
          "writes per subscription; 300 subscriptions)",
          {"node down prob", "writes issued", "complete", "partial",
           "manual repairs", "network consistent"});
  for (double p : {0.0, 0.01, 0.05, 0.2}) {
    auto trial = RunPreUdc(p, 31);
    t.AddRow({Table::Pct(p, 0), Table::Num(trial.writes),
              Table::Num(trial.complete), Table::Num(trial.partial),
              Table::Num(trial.manual_repairs),
              trial.consistent ? "yes" : "NO (needs repair)"});
  }
  t.Print();

  Table t2("E12b: provisioning through the UDC UDR (one LDAP Add = one "
           "ACID transaction; comparable failure injection)",
           {"failure prob", "ops issued", "complete", "failed CLEAN",
            "partial states"});
  for (double p : {0.0, 0.01, 0.05, 0.2}) {
    auto trial = RunUdc(p, 31);
    t2.AddRow({Table::Pct(p, 0), Table::Num(trial.writes),
               Table::Num(trial.complete), Table::Num(trial.failed_clean),
               Table::Num(trial.partial)});
  }
  t2.Print();

  Table t3("E12c: expected shape", {"check", "result"});
  auto pre = RunPreUdc(0.05, 77);
  auto udc = RunUdc(0.05, 77);
  t3.AddRow({"pre-UDC needs 4x the writes per provisioning",
             pre.writes == 4 * pre.provisionings ? "PASS" : "FAIL"});
  t3.AddRow({"UDC needs exactly 1 op per provisioning",
             udc.writes >= udc.provisionings ? "PASS" : "FAIL"});
  t3.AddRow({"pre-UDC leaves partial states under failures",
             pre.partial > 0 ? "PASS" : "FAIL"});
  t3.AddRow({"UDC never leaves a partial state",
             udc.partial == 0 ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_PreUdcProvision(benchmark::State& state) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  telecom::PreUdcConfig cfg;
  telecom::PreUdcNetwork net(cfg, network.get());
  telecom::SubscriberFactory factory(42);
  uint64_t i = 0;
  for (auto _ : state) {
    auto out = net.Provision(factory.Make(i++), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreUdcProvision);

}  // namespace

int main(int argc, char** argv) {
  PrintPreUdcTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
