// E6 — stale slave reads (§3.3.2 decision 2: the EL price of PA/EL).
//
// Asynchronous replication means a slave copy lags the master by roughly
// one backbone one-way latency. A read served by a co-located slave within
// that window after a write observes the old value. Sweep the write rate
// and the replication distance: stale-read probability grows with
// write_rate x lag, and is exactly zero for master-only (PS-style) reads.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"

using namespace udr;

namespace {

struct StaleTrial {
  int64_t reads = 0;
  int64_t stale = 0;
  double StaleFraction() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(stale) / static_cast<double>(reads);
  }
};

StaleTrial RunTrial(double writes_per_sec, MicroDuration backbone_one_way,
                    replication::ReadPreference pref, uint64_t seed) {
  sim::SimClock clock;
  sim::LatencyConfig lc;
  lc.backbone_one_way = backbone_one_way;
  auto network = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (uint32_t s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = s;
    ses.push_back(std::make_unique<storage::StorageElement>(cfg, &clock, s));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSet rs(replication::ReplicaSetConfig(), ptrs,
                             network.get());
  Rng rng(seed);
  const int kKeys = 20;

  clock.AdvanceTo(Seconds(1));
  // Seed all keys.
  for (int k = 0; k < kKeys; ++k) {
    replication::WriteBuilder wb;
    wb.Set(static_cast<storage::RecordKey>(k), "v", int64_t{0});
    rs.Write(0, std::move(wb).Build());
  }
  clock.Advance(Seconds(1));
  rs.CatchUpAll();

  // Interleave writes (at the master site) and reads (from site 2, served by
  // its local slave copy under kNearest).
  StaleTrial trial;
  const double reads_per_sec = 500.0;
  MicroDuration read_gap = static_cast<MicroDuration>(1e6 / reads_per_sec);
  MicroDuration write_gap =
      writes_per_sec > 0 ? static_cast<MicroDuration>(1e6 / writes_per_sec)
                         : kTimeInfinity;
  MicroTime next_write = clock.Now() + write_gap;
  MicroTime horizon = clock.Now() + Seconds(30);
  int64_t version = 1;
  while (clock.Now() < horizon) {
    clock.Advance(read_gap);
    while (next_write <= clock.Now()) {
      replication::WriteBuilder wb;
      wb.Set(static_cast<storage::RecordKey>(rng.Uniform(kKeys)), "v",
             version++);
      rs.Write(0, std::move(wb).Build());
      next_write += write_gap;
    }
    auto r = rs.ReadAttribute(/*client_site=*/2,
                              static_cast<storage::RecordKey>(rng.Uniform(kKeys)),
                              "v", pref);
    if (r.status.ok()) {
      ++trial.reads;
      if (r.stale) ++trial.stale;
    }
  }
  return trial;
}

void PrintStaleTables() {
  Table t("E6a: stale-read probability at a slave copy vs write rate "
          "(20 hot records, 500 reads/s from the remote site, 30s)",
          {"writes/s", "lag 5ms", "lag 15ms", "lag 50ms"});
  for (double wps : {1.0, 10.0, 50.0, 200.0}) {
    std::vector<std::string> row = {Table::Dbl(wps, 0)};
    for (MicroDuration ow : {Millis(5), Millis(15), Millis(50)}) {
      row.push_back(Table::Pct(
          RunTrial(wps, ow, replication::ReadPreference::kNearest, 11)
              .StaleFraction(),
          2));
    }
    t.AddRow(row);
  }
  t.Print();

  Table t2("E6b: read preference (write rate 50/s, lag 15ms)",
           {"read preference", "stale fraction", "who uses it"});
  auto nearest =
      RunTrial(50, Millis(15), replication::ReadPreference::kNearest, 13);
  auto master =
      RunTrial(50, Millis(15), replication::ReadPreference::kMasterOnly, 13);
  t2.AddRow({"nearest replica (slave reads)",
             Table::Pct(nearest.StaleFraction(), 2),
             "application FEs (§3.3.2)"});
  t2.AddRow({"master only", Table::Pct(master.StaleFraction(), 2),
             "Provisioning System (§3.3.3)"});
  t2.Print();

  Table t3("E6c: expected shape", {"check", "result"});
  auto lo = RunTrial(10, Millis(15), replication::ReadPreference::kNearest, 17);
  auto hi = RunTrial(200, Millis(15), replication::ReadPreference::kNearest, 17);
  auto far = RunTrial(50, Millis(50), replication::ReadPreference::kNearest, 19);
  auto near = RunTrial(50, Millis(5), replication::ReadPreference::kNearest, 19);
  t3.AddRow({"staleness grows with write rate",
             hi.StaleFraction() > lo.StaleFraction() ? "PASS" : "FAIL"});
  t3.AddRow({"staleness grows with replication lag",
             far.StaleFraction() > near.StaleFraction() ? "PASS" : "FAIL"});
  t3.AddRow({"master-only reads never stale",
             master.stale == 0 ? "PASS" : "FAIL"});
  t3.Print();
}

void BM_SlaveRead(benchmark::State& state) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(3), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (uint32_t s = 0; s < 3; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = s;
    ses.push_back(std::make_unique<storage::StorageElement>(cfg, &clock, s));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSet rs(replication::ReplicaSetConfig(), ptrs,
                             network.get());
  replication::WriteBuilder wb;
  wb.Set(1, "v", int64_t{1});
  rs.Write(0, std::move(wb).Build());
  clock.Advance(Seconds(1));
  rs.CatchUpAll();
  for (auto _ : state) {
    auto r = rs.ReadAttribute(2, 1, "v", replication::ReadPreference::kNearest);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlaveRead);

}  // namespace

int main(int argc, char** argv) {
  PrintStaleTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
