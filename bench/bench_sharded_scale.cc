// Sharded execution-mode scaling benchmark (self-checking, plain main):
// runs the same operation stream over 1/2/4/8 shard threads
// (workload::RunShardedTraffic -> exec::ShardRuntime) and reports throughput
// per shard count.
//
// Core accounting: throughput is measured on per-shard CPU time
// (CLOCK_THREAD_CPUTIME_ID around Execute, idle polling excluded), and the
// aggregate is the sum of per-shard service rates — the capacity the fleet
// sustains given one core per shard. This is deliberately NOT wall-clock
// speedup: on a host with fewer cores than shards the workers time-share and
// wall time cannot scale, but the CPU-time basis still exposes any
// cross-shard contention (a shared lock or allocator raises busy-ns/op and
// drags the aggregate down). Wall ops/sec is reported alongside for honesty.
//
//   S1  throughput per shard count: wall ops/s, aggregate (CPU basis),
//       ops/s/core.
//   S2  gates: aggregate speedup at 4 shards >= 2.5x over 1 shard; zero
//       per-key order violations; zero failed ops; zero end-state sequence
//       mismatches.
//
// Emits BENCH_sharded_scale.json (to $UDR_BENCH_SHARDED_SCALE_JSON, or
// ./BENCH_sharded_scale.json).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "workload/sharded_traffic.h"

using namespace udr;

namespace {

struct ScaleRow {
  int shards = 0;
  double wall_ops_per_sec = 0.0;
  double aggregate_ops_per_sec = 0.0;
  double ops_per_sec_per_core = 0.0;
  int64_t ops_done = 0;
  int64_t failed = 0;
  int64_t order_violations = 0;
  int64_t seq_mismatches = 0;
};

workload::TrafficOptions RunOptions(int shards) {
  workload::TrafficOptions opts;
  opts.subscriber_count = 4000;
  opts.seed = 42;
  opts.num_shards = shards;
  opts.sharded_total_ops = 60000;
  opts.sharded_write_fraction = 0.3;
  opts.sharded_batch_ops = 8;
  return opts;
}

ScaleRow RunOne(int shards) {
  auto report = workload::RunShardedTraffic(RunOptions(shards));
  ScaleRow row;
  row.shards = shards;
  row.wall_ops_per_sec = report.runtime.wall_ops_per_sec;
  row.aggregate_ops_per_sec = report.runtime.aggregate_ops_per_sec;
  row.ops_per_sec_per_core = report.runtime.ops_per_sec_per_core;
  row.ops_done = report.runtime.ops_done;
  row.failed = report.runtime.ops_failed;
  row.order_violations = report.runtime.order_violations;
  row.seq_mismatches = report.seq_mismatches;
  return row;
}

void WriteJson(const std::vector<ScaleRow>& rows, double speedup4, bool pass) {
  std::string path = bench::JsonPath("UDR_BENCH_SHARDED_SCALE_JSON",
                                     "BENCH_sharded_scale.json");
  const workload::TrafficOptions opts = RunOptions(/*shards=*/1);
  bench::RunMeta meta;
  meta.seed = opts.seed;
  meta.knobs = {{"subscribers", std::to_string(opts.subscriber_count)},
                {"total_ops", std::to_string(opts.sharded_total_ops)},
                {"write_fraction", std::to_string(opts.sharded_write_fraction)},
                {"batch_ops", std::to_string(opts.sharded_batch_ops)}};
  FILE* f = bench::OpenJson(path, "bench_sharded_scale", meta);
  if (f == nullptr) return;
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"wall_ops_per_sec\": %.0f, "
                 "\"aggregate_ops_per_sec\": %.0f, \"ops_per_sec_per_core\": "
                 "%.0f, \"ops\": %lld, \"failed\": %lld, "
                 "\"order_violations\": %lld, \"seq_mismatches\": %lld}%s\n",
                 r.shards, r.wall_ops_per_sec, r.aggregate_ops_per_sec,
                 r.ops_per_sec_per_core, static_cast<long long>(r.ops_done),
                 static_cast<long long>(r.failed),
                 static_cast<long long>(r.order_violations),
                 static_cast<long long>(r.seq_mismatches),
                 i + 1 < rows.size() ? "," : "");
  }
  // Basis-tagged throughput rows: the CPU-time basis is machine-portable
  // (per-shard service rate, cores-per-shard assumed), the wall basis is what
  // this host actually sustained while time-sharing. Trajectory comparisons
  // across machines must read the basis, not guess it.
  const ScaleRow& base = rows.front();
  std::fprintf(f, "  ],\n  \"throughput\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"basis\": \"cpu\", \"ops_per_sec\": "
                 "%.0f, \"speedup\": %.2f},\n",
                 r.shards, r.aggregate_ops_per_sec,
                 base.aggregate_ops_per_sec > 0
                     ? r.aggregate_ops_per_sec / base.aggregate_ops_per_sec
                     : 0.0);
    std::fprintf(f,
                 "    {\"shards\": %d, \"basis\": \"wall\", \"ops_per_sec\": "
                 "%.0f, \"speedup\": %.2f}%s\n",
                 r.shards, r.wall_ops_per_sec,
                 base.wall_ops_per_sec > 0
                     ? r.wall_ops_per_sec / base.wall_ops_per_sec
                     : 0.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"aggregate_speedup_at_4_shards\": %.2f,\n",
               speedup4);
  bench::CloseJson(f, path, "bench_sharded_scale", pass);
}

}  // namespace

int main() {
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  std::vector<ScaleRow> rows;
  for (int shards : shard_counts) {
    std::printf("bench_sharded_scale: running %d shard(s)...\n", shards);
    rows.push_back(RunOne(shards));
  }

  const ScaleRow& base = rows[0];
  Table t1("S1: sharded throughput, 60k ops over 4k subscribers "
           "(aggregate = sum of per-shard CPU-time service rates)",
           {"shards", "wall ops/s", "aggregate ops/s", "ops/s/core",
            "speedup"});
  for (const ScaleRow& r : rows) {
    t1.AddRow({Table::Num(r.shards), Table::Dbl(r.wall_ops_per_sec, 0),
               Table::Dbl(r.aggregate_ops_per_sec, 0),
               Table::Dbl(r.ops_per_sec_per_core, 0),
               Table::Dbl(r.aggregate_ops_per_sec / base.aggregate_ops_per_sec,
                          2) +
                   "x"});
  }
  t1.Print();
  std::printf("\n");

  double speedup4 = 0.0;
  int64_t violations = 0, failed = 0, mismatches = 0;
  for (const ScaleRow& r : rows) {
    if (r.shards == 4) {
      speedup4 = r.aggregate_ops_per_sec / base.aggregate_ops_per_sec;
    }
    violations += r.order_violations;
    failed += r.failed;
    mismatches += r.seq_mismatches;
  }

  const bool speedup_ok = speedup4 >= 2.5;
  const bool order_ok = violations == 0;
  const bool failed_ok = failed == 0;
  const bool state_ok = mismatches == 0;
  const bool pass = speedup_ok && order_ok && failed_ok && state_ok;

  Table t2("S2: self-check (any failed row breaks the CI smoke)",
           {"check", "value", "target", "verdict"});
  t2.AddRow({"aggregate speedup @ 4 shards", Table::Dbl(speedup4, 2) + "x",
             ">= 2.5x", speedup_ok ? "PASS" : "FAIL"});
  t2.AddRow({"per-key order violations", Table::Num(violations), "0",
             order_ok ? "PASS" : "FAIL"});
  t2.AddRow({"failed ops", Table::Num(failed), "0",
             failed_ok ? "PASS" : "FAIL"});
  t2.AddRow({"end-state seq mismatches", Table::Num(mismatches), "0",
             state_ok ? "PASS" : "FAIL"});
  t2.Print();

  WriteJson(rows, speedup4, pass);
  return pass ? 0 : 1;
}
