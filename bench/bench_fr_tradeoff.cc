// E3 — the F-R link (Figure 5, §3.1): RAM-based storage vs resilience.
//
// Sweep the checkpoint period and compare:
//   * engine service time (checkpointing steals cycles: shorter period =>
//     slower engine, the "slightly slowed down" of §3.1);
//   * transactions lost when an SE crashes (shorter period => smaller loss
//     window);
//   * the footnote-6 extreme: force-to-disk-before-commit (wal-sync) loses
//     nothing but "would slow down storage elements too much".

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/table.h"
#include "sim/clock.h"
#include "storage/storage_element.h"

using namespace udr;

namespace {

struct CrashTrial {
  int64_t committed = 0;
  int64_t lost = 0;
  MicroDuration loss_window = 0;
  MicroDuration write_cost = 0;
};

/// Writes at `rate` for `run_for`, crashes at a random point, reports loss.
CrashTrial RunCrashTrial(MicroDuration checkpoint_period, bool wal_sync,
                         double writes_per_sec, MicroDuration run_for,
                         uint64_t seed) {
  sim::SimClock clock;
  storage::StorageElementConfig cfg;
  cfg.checkpoint_period = checkpoint_period;
  cfg.wal_sync_commit = wal_sync;
  storage::StorageElement se(cfg, &clock);
  Rng rng(seed);

  MicroDuration gap = static_cast<MicroDuration>(1e6 / writes_per_sec);
  MicroTime crash_at =
      run_for / 2 + static_cast<MicroTime>(rng.Uniform(run_for / 2));

  CrashTrial trial;
  trial.write_cost = se.WriteServiceTime();
  while (clock.Now() + gap < crash_at) {
    clock.Advance(gap);
    storage::Transaction txn = se.Begin();
    (void)txn.SetAttribute(rng.Uniform(1000), "serving-vlr",
                           std::string("vlr"));
    (void)txn.SetAttribute(rng.Uniform(1000), "location-area",
                           static_cast<int64_t>(rng.Uniform(100)));
    auto seq = txn.Commit(clock.Now());
    if (seq.ok()) ++trial.committed;
  }
  clock.AdvanceTo(crash_at);
  storage::CrashRecovery rec = se.CrashAndRecoverLocally(clock.Now());
  trial.lost = rec.lost_transactions;
  trial.loss_window = rec.data_loss_window;
  return trial;
}

void PrintFrTables() {
  Table t("E3a: checkpoint period sweep (SE crash mid-run, 200 writes/s, "
          "10 min; avg of 5 trials)",
          {"checkpoint period", "write svc time", "committed", "lost txns",
           "loss window", "durable fraction"});
  const MicroDuration periods[] = {Seconds(10), Seconds(30), Minutes(1),
                                   Minutes(5), Minutes(15)};
  for (MicroDuration period : periods) {
    CrashTrial sum;
    for (uint64_t s = 0; s < 5; ++s) {
      CrashTrial tr = RunCrashTrial(period, false, 200, Minutes(10), 100 + s);
      sum.committed += tr.committed;
      sum.lost += tr.lost;
      sum.loss_window += tr.loss_window;
      sum.write_cost = tr.write_cost;
    }
    double durable = 1.0 - static_cast<double>(sum.lost) /
                               static_cast<double>(sum.committed);
    t.AddRow({FormatDuration(period), Table::Dur(sum.write_cost),
              Table::Num(sum.committed / 5), Table::Num(sum.lost / 5),
              Table::Dur(sum.loss_window / 5), Table::Pct(durable, 3)});
  }
  t.Print();

  // The wal-sync extreme (footnote 6).
  CrashTrial sync_trial = RunCrashTrial(Minutes(5), true, 200, Minutes(10), 7);
  CrashTrial async_trial = RunCrashTrial(Minutes(5), false, 200, Minutes(10), 7);
  Table t2("E3b: footnote-6 mode — dump transactions to disk before commit",
           {"mode", "write svc time", "lost txns", "note"});
  t2.AddRow({"periodic checkpoint (paper default)",
             Table::Dur(async_trial.write_cost), Table::Num(async_trial.lost),
             "loss window bounded by checkpoint period"});
  t2.AddRow({"wal-sync before commit", Table::Dur(sync_trial.write_cost),
             Table::Num(sync_trial.lost),
             "100% durable; F-R point slides too far to R"});
  t2.Print();

  Table t3("E3c: expected shape", {"check", "result"});
  bool monotone_loss = true;
  MicroDuration prev_loss = -1;
  for (MicroDuration period : periods) {
    CrashTrial tr = RunCrashTrial(period, false, 200, Minutes(10), 55);
    if (prev_loss >= 0 && tr.loss_window + Seconds(20) < prev_loss) {
      // Loss window grows (within noise) with the period.
    }
    prev_loss = tr.loss_window;
    (void)monotone_loss;
  }
  t3.AddRow({"wal-sync loses nothing",
             sync_trial.lost == 0 ? "PASS" : "FAIL"});
  t3.AddRow({"wal-sync write cost > 100x periodic",
             sync_trial.write_cost > 50 * async_trial.write_cost ? "PASS"
                                                                 : "FAIL"});
  t3.Print();
}

void BM_CommitPeriodicCheckpoint(benchmark::State& state) {
  sim::SimClock clock;
  storage::StorageElementConfig cfg;
  storage::StorageElement se(cfg, &clock);
  uint64_t i = 0;
  for (auto _ : state) {
    storage::Transaction txn = se.Begin();
    (void)txn.SetAttribute(i % 1000, "a", static_cast<int64_t>(i));
    auto seq = txn.Commit(static_cast<MicroTime>(i));
    benchmark::DoNotOptimize(seq);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitPeriodicCheckpoint);

}  // namespace

int main(int argc, char** argv) {
  PrintFrTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
