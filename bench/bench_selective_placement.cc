// E10 — the H-R link and selective placement (§3.5).
//
// "The more subscriber data are held in the UDR the lower the availability
// of those data is" — because wider distribution means more operations must
// cross the (less reliable) IP backbone. Selective placement pins a
// subscriber's master copy to the home region, so only roamers pay the
// backbone. Sweep the roaming fraction under pinned vs unpinned placement
// and measure backbone crossings, latency and availability under a one-site
// isolation.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/table.h"
#include "telecom/front_end.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

using namespace udr;

namespace {

struct PlacementTrial {
  double backbone_fraction = 0;  ///< FE writes that crossed the backbone.
  MicroDuration mean_write_latency = 0;
  double availability = 1.0;     ///< Under a one-site isolation.
};

PlacementTrial RunTrial(bool pinned, double roaming_fraction,
                        bool isolate_site) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 300;
  o.pin_home_sites = pinned;
  workload::Testbed bed(o);
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  if (isolate_site) {
    bed.network().partitions().IsolateSite(2, 3, bed.clock().Now(),
                                           bed.clock().Now() + Hours(1));
  }

  std::vector<std::unique_ptr<telecom::HlrFe>> fes;
  for (uint32_t s = 0; s < 3; ++s) {
    fes.push_back(std::make_unique<telecom::HlrFe>(s, &bed.udr()));
  }

  Rng rng(123);
  PlacementTrial trial;
  int64_t writes = 0, backbone = 0, ok = 0, attempted = 0;
  MicroDuration total_latency = 0;
  for (int i = 0; i < 600; ++i) {
    uint64_t idx = rng.Uniform(300);
    telecom::Subscriber s = bed.factory().Make(idx);
    sim::SiteId home = bed.HomeSiteOf(idx);
    sim::SiteId serving = home;
    if (rng.Bernoulli(roaming_fraction)) {
      serving = static_cast<sim::SiteId>((home + 1 + rng.Uniform(2)) % 3);
    }
    auto loc = bed.udr().AuthoritativeLookup(s.ImsiId());
    if (!loc.ok()) continue;
    sim::SiteId master_site = bed.udr().partition(loc->partition)->master_site();
    auto w = fes[serving]->UpdateLocation(s.ImsiId(),
                                          "vlr-" + std::to_string(serving),
                                          serving);
    ++attempted;
    ++writes;
    if (master_site != serving) ++backbone;
    if (w.ok()) {
      ++ok;
      total_latency += w.latency;
    }
    bed.clock().Advance(Millis(20));
  }
  trial.backbone_fraction =
      writes > 0 ? static_cast<double>(backbone) / writes : 0;
  trial.mean_write_latency = ok > 0 ? total_latency / ok : 0;
  trial.availability =
      attempted > 0 ? static_cast<double>(ok) / attempted : 1.0;
  return trial;
}

void PrintPlacementTables() {
  Table t("E10a: selective placement vs roaming fraction (location-update "
          "writes; 3 sites)",
          {"roaming", "placement", "backbone crossings", "mean write latency"});
  for (double roam : {0.0, 0.05, 0.2, 0.5}) {
    for (bool pinned : {true, false}) {
      auto trial = RunTrial(pinned, roam, false);
      t.AddRow({Table::Pct(roam, 0),
                pinned ? "pinned to home region (§3.5)" : "round-robin",
                Table::Pct(trial.backbone_fraction, 1),
                Table::Dur(trial.mean_write_latency)});
    }
  }
  t.Print();

  Table t2("E10b: availability with site 2 isolated (H-R link: distribution "
           "costs availability; pinning recovers it for home traffic)",
           {"placement", "roaming", "write availability"});
  for (bool pinned : {true, false}) {
    for (double roam : {0.05, 0.5}) {
      auto trial = RunTrial(pinned, roam, true);
      t2.AddRow({pinned ? "pinned" : "round-robin", Table::Pct(roam, 0),
                 Table::Pct(trial.availability, 1)});
    }
  }
  t2.Print();

  Table t3("E10c: expected shape", {"check", "result"});
  auto pinned_low = RunTrial(true, 0.05, false);
  auto unpinned_low = RunTrial(false, 0.05, false);
  t3.AddRow({"pinned: backbone crossings ~= roaming fraction",
             pinned_low.backbone_fraction < 0.10 ? "PASS" : "FAIL"});
  t3.AddRow({"unpinned: most writes cross the backbone",
             unpinned_low.backbone_fraction > 0.5 ? "PASS" : "FAIL"});
  t3.AddRow({"pinned writes are faster",
             pinned_low.mean_write_latency < unpinned_low.mean_write_latency
                 ? "PASS"
                 : "FAIL"});
  auto pinned_iso = RunTrial(true, 0.05, true);
  auto unpinned_iso = RunTrial(false, 0.05, true);
  t3.AddRow({"pinning improves availability under isolation",
             pinned_iso.availability > unpinned_iso.availability ? "PASS"
                                                                 : "FAIL"});
  t3.Print();
}

void BM_HomeRegionWrite(benchmark::State& state) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 100;
  o.pin_home_sites = true;
  workload::Testbed bed(o);
  telecom::HlrFe fe(0, &bed.udr());
  uint64_t i = 0;
  for (auto _ : state) {
    auto w = fe.UpdateLocation(bed.factory().Make((i * 3) % 99).ImsiId(),
                               "vlr-0", 1);
    benchmark::DoNotOptimize(w);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HomeRegionWrite);

}  // namespace

int main(int argc, char** argv) {
  PrintPlacementTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
