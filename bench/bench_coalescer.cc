// C — the PoA cross-event dispatch window: ops from different concurrent
// signaling events coalesced into one partition-group dispatch vs the PR 2
// per-event pipeline.
//
// C1 sweeps concurrency: E single-subscriber events (4 ops each) arrive
// inside one window; uncoalesced each event pays its own grouped dispatch
// (one partition group per event), coalesced the window flushes one batch
// whose fan-out is capped by the partition count — grouped dispatches per op
// drop as E grows. C2 reports the latency accounting split: the queueing
// delay an event pays for waiting (bounded by the window) vs the shared
// dispatch's service share. C3 verifies per-event results are byte-identical
// to serial execution and that the knobs at 0 reproduce the inline path
// exactly. C4 is the self-checking expected-shape table (acceptance: >= 2x
// fewer grouped dispatches per op at 8+ concurrent events, p99 queueing
// delay <= the configured window).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/table.h"
#include "ldap/dn.h"
#include "routing/coalescer.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

constexpr MicroDuration kWindow = Millis(1);
constexpr int kRounds = 25;
constexpr int kSubscribers = 64;

workload::Testbed MakeBed(MicroDuration window) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = kSubscribers;
  // One partition per site: the fan-out cap the coalesced window converges
  // to (the amortization lever: E event-dispatches -> <= 3 group-dispatches).
  o.udr.se_per_cluster = 1;
  o.udr.partitions_per_se = 1;
  o.udr.coalesce_window_us = window;
  workload::Testbed bed(o);
  bed.clock().Advance(Seconds(120));
  bed.udr().CatchUpAllPartitions();
  return bed;
}

/// One signaling event on one subscriber: 3 reads + 1 write (§2.2 shape).
std::vector<ldap::LdapRequest> EventOf(const telecom::Subscriber& sub) {
  std::vector<ldap::LdapRequest> event;
  ldap::LdapRequest read;
  read.op = ldap::LdapOp::kSearch;
  read.dn = ldap::SubscriberDn("imsi", sub.imsi);
  event.push_back(read);
  event.push_back(read);
  ldap::LdapRequest write;
  write.op = ldap::LdapOp::kModify;
  write.dn = read.dn;
  write.mods.push_back(
      {ldap::ModType::kReplace, "serving-vlr", std::string("vlr1")});
  event.push_back(write);
  ldap::LdapRequest verify = read;
  verify.master_only = true;
  event.push_back(verify);
  return event;
}

struct RunStats {
  int64_t ops = 0;
  int64_t dispatch_groups = 0;  ///< Grouped partition dispatches paid.
  int64_t flushes = 0;
  double events_per_flush = 0;
  Histogram queue_delay;
  Histogram service_latency;
  std::vector<ldap::LdapBatchResult> results;  ///< Per event, issue order.

  double groups_per_op() const {
    return ops > 0 ? static_cast<double>(dispatch_groups) /
                         static_cast<double>(ops)
                   : 0.0;
  }
};

/// Drives `rounds` bursts of `concurrency` concurrent events through the
/// enqueue path. With the window off every event flushes alone at enqueue;
/// with it on, arrivals stagger inside one window and flush together at the
/// deadline.
RunStats RunEvents(workload::Testbed& bed, int concurrency, int rounds,
                   bool coalesced) {
  RunStats stats;
  auto& udr = bed.udr();
  for (int round = 0; round < rounds; ++round) {
    std::vector<uint64_t> handles;
    for (int e = 0; e < concurrency; ++e) {
      uint64_t index =
          static_cast<uint64_t>((round * concurrency + e) % kSubscribers);
      auto event = EventOf(bed.factory().Make(index));
      stats.ops += static_cast<int64_t>(event.size());
      auto handle = udr.SubmitEvent(event, 0);
      if (!handle.ok()) continue;
      handles.push_back(*handle);
      bed.clock().Advance(Micros(10));  // Staggered arrivals in the window.
    }
    if (coalesced) {
      MicroTime deadline = udr.NextEventDeadline();
      if (deadline != kTimeInfinity) bed.clock().AdvanceTo(deadline);
      udr.PumpEvents();
    }
    bool first_of_flush = true;
    for (uint64_t handle : handles) {
      auto result = udr.TakeEvent(handle);
      if (!result.has_value()) continue;
      stats.queue_delay.Record(result->queue_delay);
      stats.service_latency.Record(result->latency - result->queue_delay);
      if (coalesced) {
        // Every event of the flush reports the shared fan-out: count once.
        if (first_of_flush) {
          stats.dispatch_groups += result->partition_groups;
          ++stats.flushes;
          first_of_flush = false;
        }
      } else {
        stats.dispatch_groups += result->partition_groups;
        ++stats.flushes;
      }
      stats.results.push_back(std::move(*result));
    }
  }
  stats.events_per_flush =
      stats.flushes > 0 ? static_cast<double>(stats.results.size()) /
                              static_cast<double>(stats.flushes)
                        : 0.0;
  return stats;
}

/// Payload equality (codes, entry counts, staleness) ignoring latencies —
/// coalescing redistributes time, never results.
bool SamePayload(const ldap::LdapBatchResult& a,
                 const ldap::LdapBatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const ldap::LdapResult& ra = a.results[i];
    const ldap::LdapResult& rb = b.results[i];
    if (ra.code != rb.code || ra.stale != rb.stale ||
        ra.entries.size() != rb.entries.size()) {
      return false;
    }
    for (size_t j = 0; j < ra.entries.size(); ++j) {
      for (const storage::PackedAttr& e : ra.entries[j].record.entries()) {
        auto v = rb.entries[j].record.Get(storage::AttrNameOf(e.name_id));
        if (!v.has_value() ||
            storage::ValueToString(e.attr.value) != storage::ValueToString(*v)) {
          return false;
        }
      }
    }
  }
  return true;
}

void PrintCoalescerTables() {
  Table t1("C1: grouped dispatches per op vs concurrency (3 partitions, "
           "4-op single-subscriber events, window 1ms)",
           {"concurrent events", "uncoalesced groups/op",
            "coalesced groups/op", "reduction", "events/flush"});
  double reduction8 = 0, reduction16 = 0;
  Histogram queue_delay8;
  MicroDuration service_mean8 = 0;
  for (int concurrency : {1, 2, 4, 8, 16}) {
    workload::Testbed plain = MakeBed(0);
    workload::Testbed coal = MakeBed(kWindow);
    RunStats uncoalesced = RunEvents(plain, concurrency, kRounds, false);
    RunStats coalesced = RunEvents(coal, concurrency, kRounds, true);
    double reduction = coalesced.groups_per_op() > 0
                           ? uncoalesced.groups_per_op() /
                                 coalesced.groups_per_op()
                           : 0.0;
    if (concurrency == 8) {
      reduction8 = reduction;
      queue_delay8 = coalesced.queue_delay;
      service_mean8 =
          static_cast<MicroDuration>(coalesced.service_latency.Mean());
    }
    if (concurrency == 16) reduction16 = reduction;
    t1.AddRow({Table::Num(concurrency),
               Table::Dbl(uncoalesced.groups_per_op(), 3),
               Table::Dbl(coalesced.groups_per_op(), 3),
               Table::Dbl(reduction, 2) + "x",
               Table::Dbl(coalesced.events_per_flush, 1)});
  }
  t1.Print();

  Table t2("C2: latency accounting split at 8 concurrent events "
           "(queueing delay vs shared-dispatch service)",
           {"metric", "value"});
  t2.AddRow({"configured window", Table::Dur(kWindow)});
  t2.AddRow({"queueing delay mean",
             Table::Dur(static_cast<MicroDuration>(queue_delay8.Mean()))});
  t2.AddRow({"queueing delay p99", Table::Dur(queue_delay8.P99())});
  t2.AddRow({"queueing delay max", Table::Dur(queue_delay8.max())});
  t2.AddRow({"service latency mean", Table::Dur(service_mean8)});
  t2.Print();

  // C3: per-event results must be byte-identical to serial execution, and
  // the knobs at 0 must reproduce the inline SubmitBatch path exactly.
  bool serial_equivalent = true;
  bool passthrough_equivalent = true;
  {
    workload::Testbed coal = MakeBed(kWindow);
    workload::Testbed serial = MakeBed(0);
    RunStats coalesced = RunEvents(coal, 8, 4, true);
    size_t taken = 0;
    for (int round = 0; round < 4; ++round) {
      for (int e = 0; e < 8; ++e) {
        uint64_t index = static_cast<uint64_t>((round * 8 + e) % kSubscribers);
        auto event = EventOf(serial.factory().Make(index));
        ldap::LdapBatchResult inline_result =
            serial.udr().SubmitBatch(event, 0);
        if (taken >= coalesced.results.size() ||
            !SamePayload(coalesced.results[taken++], inline_result)) {
          serial_equivalent = false;
        }
      }
    }

    workload::Testbed zero = MakeBed(0);
    workload::Testbed twin = MakeBed(0);
    for (uint64_t i = 0; i < 8; ++i) {
      auto event = EventOf(zero.factory().Make(i));
      auto handle = zero.udr().SubmitEvent(event, 0);
      std::optional<ldap::LdapBatchResult> deferred;
      if (handle.ok()) deferred = zero.udr().TakeEvent(*handle);
      ldap::LdapBatchResult inline_result = twin.udr().SubmitBatch(event, 0);
      if (!deferred.has_value() || !SamePayload(*deferred, inline_result) ||
          deferred->latency != inline_result.latency ||
          deferred->queue_delay != 0) {
        passthrough_equivalent = false;
      }
    }
  }
  Table t3("C3: equivalence", {"check", "result"});
  t3.AddRow({"coalesced per-event results == serial execution (32 events)",
             serial_equivalent ? "PASS" : "FAIL"});
  t3.AddRow({"knobs at 0: enqueue path == inline SubmitBatch",
             passthrough_equivalent ? "PASS" : "FAIL"});
  t3.Print();

  Table t4("C4: expected shape", {"check", "result"});
  t4.AddRow({">=2x fewer grouped dispatches per op at 8 concurrent events",
             reduction8 >= 2.0 ? "PASS" : "FAIL"});
  t4.AddRow({">=2x fewer grouped dispatches per op at 16 concurrent events",
             reduction16 >= 2.0 ? "PASS" : "FAIL"});
  t4.AddRow({"max added queueing delay <= configured window",
             queue_delay8.max() <= kWindow ? "PASS" : "FAIL"});
  t4.AddRow({"per-event results byte-identical to serial",
             serial_equivalent && passthrough_equivalent ? "PASS" : "FAIL"});
  t4.Print();
}

void BM_UncoalescedEvents8(benchmark::State& state) {
  workload::Testbed bed = MakeBed(0);
  for (auto _ : state) {
    RunStats stats = RunEvents(bed, 8, 1, false);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_UncoalescedEvents8)->Unit(benchmark::kMicrosecond)->Iterations(100);

void BM_CoalescedEvents8(benchmark::State& state) {
  workload::Testbed bed = MakeBed(kWindow);
  for (auto _ : state) {
    RunStats stats = RunEvents(bed, 8, 1, true);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_CoalescedEvents8)->Unit(benchmark::kMicrosecond)->Iterations(100);

}  // namespace

int main(int argc, char** argv) {
  PrintCoalescerTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
