#!/usr/bin/env python3
"""Repo-specific invariant linter (ci.sh "invariant-lint" stage).

Enforces the invariants that keep this codebase deterministic and its
concurrency statically checkable — the ones a generic linter can't know:

  wall-clock         src/ must not consult wall time (time(), std::time,
                     gettimeofday, clock_gettime, std::chrono system/steady/
                     high_resolution clocks). Every simulated behavior runs on
                     sim::SimClock; that discipline is what makes scenario
                     replay byte-identical (scenario_test's seeded-replay
                     gate). Real-time measurement for *reporting* is allowed
                     only with an inline justification marker.

  storage-string-map src/storage/ must not declare std::map<std::string, ...>
                     — the PR 6 packed-layout regression guard. The legacy
                     map form exists only as an explicitly-marked boundary
                     shim on Record::ToMap/FromMap.

  raw-mutex          std::mutex / lock_guard / unique_lock / scoped_lock /
                     condition_variable (and #include <mutex>) are banned
                     outside src/common/ — all locking goes through the
                     annotated common::Mutex layer (thread-safety analysis +
                     the UDR_DEADLOCK_CHECK lock-order checker see only what
                     flows through the wrappers).

  tsa-escape         NO_THREAD_SAFETY_ANALYSIS requires an adjacent
                     justification comment (no blanket escape hatches).

  bench-coverage     every bench/bench_*.cc must appear in ci.sh's
                     REQUIRED_BENCHES list, so a bench falling out of the
                     build fails CI instead of being silently skipped.

  metric-name        every dotted metric-name string literal passed to
                     Add/Observe/RegisterCounter/RegisterHist in src/ must
                     appear (backticked) in the docs/METRICS.md table, and
                     every name the table documents must still be emitted
                     somewhere — the metric reference can neither lag nor
                     lead the code.

Escape hatch: a line (or the line directly above it) carrying
    // lint:allow(<rule>): <non-empty reason>
is exempt from <rule>. Every marker must also be documented in
tools/LINT_ALLOWLIST.md (rule + file on one table row) — the rationale table
reviewers audit.

Usage: tools/lint_invariants.py [repo-root]   (exit 0 = clean, 1 = violations)
"""

import os
import re
import sys

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)(?::\s*(\S.*))?")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "std::chrono wall/steady clock"),
    (re.compile(r"std::time\s*\("), "std::time()"),
    # Bare time( — not preceded by an identifier char, scope/member access.
    (re.compile(r"(?<![A-Za-z0-9_:.>])time\s*\("), "time()"),
]

STORAGE_MAP_RE = re.compile(r"std::map<\s*std::string\s*,")

RAW_MUTEX_PATTERNS = [
    (re.compile(r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
                r"shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
                r"condition_variable_any|condition_variable)\b"),
     "raw std synchronization primitive (use common::Mutex/MutexLock/CondVar)"),
    (re.compile(r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"),
     "raw sync header include (use common/mutex.h)"),
]

TSA_ESCAPE_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")

# Metric registry call sites and the dotted-name shape they must use.
METRIC_CALL_RE = re.compile(
    r"\b(?:Add|Observe|RegisterCounter|RegisterHist)\s*\(")
METRIC_NAME_RE = re.compile(r'"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)"')
METRIC_DOC_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")


def code_part(line: str) -> str:
    """Line with string-literal contents blanked and // comments stripped."""
    return STRING_RE.sub('""', line).split("//")[0]


def lint_file(path: str, rel: str, allowlist_doc: str, violations: list):
    in_common = rel.startswith("src/common/")
    in_storage = rel.startswith("src/storage/")
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    # Markers on comment-only lines accumulate and bind to the NEXT code
    # line (so a multi-line justification comment covers the statement it
    # precedes); a marker on a code line covers that line.
    pending = set()
    for lineno, line in enumerate(lines, 1):
        allows_here = set()
        for m in ALLOW_RE.finditer(line):
            rule, reason = m.group(1), m.group(2)
            if not reason:
                violations.append(
                    f"{rel}:{lineno}: [marker] lint:allow({rule}) has no "
                    f"justification text — write lint:allow({rule}): <why>")
            if not any(rule in doc_line and rel in doc_line
                       for doc_line in allowlist_doc.splitlines()):
                violations.append(
                    f"{rel}:{lineno}: [marker] lint:allow({rule}) is not "
                    f"documented in tools/LINT_ALLOWLIST.md (add a table row "
                    f"naming both the rule and {rel})")
            allows_here.add(rule)

        code = code_part(line)
        if not code.strip():
            pending |= allows_here
            continue
        active = allows_here | pending
        pending = set()

        if "wall-clock" not in active:
            for pat, what in WALL_CLOCK_PATTERNS:
                if pat.search(code):
                    violations.append(
                        f"{rel}:{lineno}: [wall-clock] {what} — simulated "
                        f"behavior must use sim::SimClock (deterministic "
                        f"replay); measurement-only uses need "
                        f"lint:allow(wall-clock)")
                    break

        if in_storage and "storage-string-map" not in active:
            if STORAGE_MAP_RE.search(code):
                violations.append(
                    f"{rel}:{lineno}: [storage-string-map] "
                    f"std::map<std::string, ...> in src/storage/ — the packed "
                    f"record layout (PR 6) exists to avoid this; use AttrId "
                    f"keys or mark an explicit boundary shim")

        if not in_common and "raw-mutex" not in active:
            for pat, what in RAW_MUTEX_PATTERNS:
                if pat.search(code):
                    violations.append(f"{rel}:{lineno}: [raw-mutex] {what}")
                    break

        if TSA_ESCAPE_RE.search(code) and "tsa-escape" not in active:
            context = lines[max(0, lineno - 6):lineno]
            if not any("//" in c for c in context):
                violations.append(
                    f"{rel}:{lineno}: [tsa-escape] NO_THREAD_SAFETY_ANALYSIS "
                    f"without an adjacent justification comment")


def lint_bench_coverage(root: str, violations: list):
    ci_path = os.path.join(root, "ci.sh")
    with open(ci_path, encoding="utf-8") as f:
        ci = f.read()
    m = re.search(r"REQUIRED_BENCHES=\(([^)]*)\)", ci, re.S)
    if not m:
        violations.append(
            "ci.sh: [bench-coverage] no REQUIRED_BENCHES=( ... ) list found")
        return
    required = set(m.group(1).split())
    bench_dir = os.path.join(root, "bench")
    on_disk = {fn[:-3] for fn in os.listdir(bench_dir)
               if fn.startswith("bench_") and fn.endswith(".cc")}
    for missing in sorted(on_disk - required):
        violations.append(
            f"bench/{missing}.cc: [bench-coverage] not in ci.sh "
            f"REQUIRED_BENCHES — its smoke run could silently disappear")
    for stale in sorted(required - on_disk):
        violations.append(
            f"ci.sh: [bench-coverage] REQUIRED_BENCHES lists {stale} but "
            f"bench/{stale}.cc does not exist")


def lint_metric_names(root: str, violations: list):
    doc_path = os.path.join(root, "docs", "METRICS.md")
    if not os.path.exists(doc_path):
        violations.append(
            "docs/METRICS.md: [metric-name] missing — the metric-name "
            "reference table is required")
        return
    with open(doc_path, encoding="utf-8") as f:
        documented = set(METRIC_DOC_RE.findall(f.read()))

    emitted = {}  # name -> first src location emitting it.
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for fn in sorted(filenames):
            if not (fn.endswith(".h") or fn.endswith(".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            for lineno, line in enumerate(lines, 1):
                # The call must be in real code; the literal is then taken
                # from the raw line (code_part blanks string contents). A
                # wrapped call may carry the name on the following line.
                if not METRIC_CALL_RE.search(code_part(line)):
                    continue
                names = METRIC_NAME_RE.findall(line)
                if not names and lineno < len(lines):
                    names = METRIC_NAME_RE.findall(lines[lineno])
                for name in names:
                    emitted.setdefault(name, f"{rel}:{lineno}")

    for name in sorted(set(emitted) - documented):
        violations.append(
            f"{emitted[name]}: [metric-name] metric \"{name}\" is not in "
            f"the docs/METRICS.md table — document it (name backticked)")
    for name in sorted(documented - set(emitted)):
        violations.append(
            f"docs/METRICS.md: [metric-name] documents \"{name}\" but no "
            f"Add/Observe/RegisterCounter/RegisterHist site in src/ emits "
            f"it — remove the row or restore the metric")


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1
                           else os.path.join(os.path.dirname(__file__), ".."))
    allowlist_path = os.path.join(root, "tools", "LINT_ALLOWLIST.md")
    allowlist_doc = ""
    if os.path.exists(allowlist_path):
        with open(allowlist_path, encoding="utf-8") as f:
            allowlist_doc = f.read()

    violations: list = []
    files = 0
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for fn in sorted(filenames):
            if not (fn.endswith(".h") or fn.endswith(".cc")):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            files += 1
            lint_file(path, rel, allowlist_doc, violations)
    lint_bench_coverage(root, violations)
    lint_metric_names(root, violations)

    if violations:
        for v in violations:
            print(v)
        print(f"\nlint_invariants: {len(violations)} violation(s) "
              f"across {files} files", file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({files} files, 0 violations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
