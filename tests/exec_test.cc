// Tests for the sharded multi-threaded execution mode (src/exec/): SPSC ring
// ordering under a real producer/consumer thread pair, Metrics registry
// thread safety, shard confinement + per-key order through the runtime, and
// sharded-vs-single-shard end-state equivalence. This file is the TSan
// target of ci.sh: every test here must be race-free under
// -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "exec/shard.h"
#include "exec/shard_runtime.h"
#include "exec/spsc_queue.h"
#include "location/identity.h"
#include "routing/partition_map.h"
#include "telecom/subscriber.h"
#include "workload/sharded_traffic.h"
#include "workload/testbed.h"

namespace udr::exec {
namespace {

// ---------------------------------------------------------------------------
// SPSC handoff ring
// ---------------------------------------------------------------------------

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  SpscQueue<int> one(1);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(SpscQueueTest, RejectsPushWhenFullAndPopWhenEmpty) {
  SpscQueue<int> q(2);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // Full.
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(3));  // Slot freed.
}

TEST(SpscQueueTest, FifoAcrossThreadsUnderStress) {
  // One producer, one consumer, a deliberately tiny ring so wraparound and
  // full/empty transitions happen constantly. The consumer must observe
  // 0..N-1 in exact order — any reordering or loss is a memory-ordering bug.
  constexpr int kItems = 200000;
  SpscQueue<int> q(64);
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!q.TryPush(std::move(v))) std::this_thread::yield();
    }
  });
  int expected = 0;
  int out = 0;
  while (expected < kItems) {
    if (q.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(q.TryPop(&out));
}

// ---------------------------------------------------------------------------
// Thread-safe metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsConcurrencyTest, CountersAndHistogramsAreExactUnderContention) {
  Metrics metrics;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kIters; ++i) {
        metrics.Add("shared.counter");
        metrics.Observe("shared.hist", i % 100);
        if (i % 64 == 0) (void)metrics.Get("shared.counter");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(metrics.Get("shared.counter"), kThreads * kIters);
  EXPECT_EQ(metrics.HistOrEmpty("shared.hist").count(), kThreads * kIters);
}

TEST(MetricsConcurrencyTest, MergeFromWhileSourcesMutate) {
  // The per-shard pattern: shard registries mutate on their own threads
  // while a reader repeatedly merges them into a scratch registry.
  constexpr int kShards = 3;
  constexpr int kIters = 10000;
  std::vector<std::unique_ptr<Metrics>> shards;
  for (int i = 0; i < kShards; ++i) shards.push_back(std::make_unique<Metrics>());
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Metrics merged;
      for (auto& s : shards) merged.MergeFrom(*s);
      // A snapshot mid-run can be anything <= total; just must not race.
      EXPECT_LE(merged.Get("ops"), kShards * kIters);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kShards; ++t) {
    writers.emplace_back([&shards, t] {
      for (int i = 0; i < kIters; ++i) shards[t]->Add("ops");
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  Metrics merged;
  for (auto& s : shards) merged.MergeFrom(*s);
  EXPECT_EQ(merged.Get("ops"), kShards * kIters);
}

// ---------------------------------------------------------------------------
// Shard hashing
// ---------------------------------------------------------------------------

TEST(ShardTest, SubscriberShardingIsTotalAndBalanced) {
  constexpr int kShards = 4;
  constexpr uint64_t kSubs = 10000;
  std::vector<int64_t> per_shard(kShards, 0);
  for (uint64_t s = 0; s < kSubs; ++s) {
    const int shard = Shard::ShardOfSubscriber(s, kShards);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    ++per_shard[shard];
  }
  for (int i = 0; i < kShards; ++i) {
    // splitmix64 spreads sequential indices near-uniformly.
    EXPECT_GT(per_shard[i], kSubs / kShards / 2) << "shard " << i;
    EXPECT_LT(per_shard[i], kSubs * 2 / kShards) << "shard " << i;
  }
  EXPECT_EQ(Shard::ShardOfSubscriber(123, 1), 0);
}

TEST(ShardSlicerTest, PartitionAlignedShardOwnsWholePartitions) {
  // The scenario-harness contract: sliced against a real PartitionMap, a
  // shard's subscriber set is a union of whole partitions — every subscriber
  // maps to the shard that owns its actual partition, never across it.
  workload::TestbedOptions to;
  to.sites = 2;
  to.subscribers = 300;
  to.udr.se_per_cluster = 2;
  to.udr.partitions_per_se = 2;
  workload::Testbed bed(to);
  const routing::PartitionMap& map = bed.udr().partition_map();
  constexpr int kShards = 3;
  ShardSlicer slicer(&map, kShards);
  EXPECT_TRUE(slicer.partition_aligned());

  telecom::SubscriberFactory factory(0);
  for (uint64_t sub = 0; sub < 300; ++sub) {
    const location::Identity id{location::IdentityType::kImsi,
                                factory.ImsiOf(sub)};
    EXPECT_EQ(slicer.ShardOf(sub),
              slicer.ShardOfPartition(map.PartitionOfIdentity(id)))
        << "subscriber " << sub << " crossed its partition's shard";
  }

  // Round-robin deal: 2 sites x 2 SEs x 2 partitions = 8 live partitions
  // spread over 3 shards, so every shard owns at least two.
  std::vector<int> owned(kShards, 0);
  for (uint32_t p = 0; p < map.partition_count(); ++p) {
    if (map.partition_retired(p)) continue;
    const int shard = slicer.ShardOfPartition(p);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    ++owned[shard];
  }
  for (int s = 0; s < kShards; ++s) EXPECT_GE(owned[s], 2) << "shard " << s;
}

// ---------------------------------------------------------------------------
// Sharded runtime end to end
// ---------------------------------------------------------------------------

workload::TrafficOptions SmallShardedRun(int num_shards) {
  workload::TrafficOptions opts;
  opts.subscriber_count = 200;
  opts.seed = 11;
  opts.num_shards = num_shards;
  opts.sharded_total_ops = 4000;
  opts.sharded_write_fraction = 0.4;
  opts.sharded_batch_ops = 8;
  return opts;
}

TEST(ShardRuntimeTest, TwoShardsExecuteEverythingInOrder) {
  auto report = workload::RunShardedTraffic(SmallShardedRun(2));
  EXPECT_EQ(report.runtime.shards.size(), 2u);
  EXPECT_EQ(report.runtime.ops_done, 4000);
  EXPECT_EQ(report.runtime.ops_done, report.runtime.ops_submitted);
  EXPECT_EQ(report.runtime.ops_failed, 0);
  EXPECT_EQ(report.runtime.order_violations, 0);
  EXPECT_GT(report.verified_subscribers, 0);
  EXPECT_EQ(report.seq_mismatches, 0);
  EXPECT_TRUE(report.ok());
  // Both shards got real work and real provisioned populations.
  int64_t provisioned = 0;
  for (const auto& shard : report.runtime.shards) {
    EXPECT_GT(shard.ops, 0);
    EXPECT_GT(shard.provisioned, 0);
    EXPECT_GT(shard.busy_ns, 0);
    provisioned += shard.provisioned;
  }
  EXPECT_EQ(provisioned, 200);
  EXPECT_GT(report.runtime.aggregate_ops_per_sec, 0.0);
}

TEST(ShardRuntimeTest, ShardedMatchesSingleShardFinalState) {
  // The same op stream must leave every subscriber's master copy in the same
  // final state whether it ran on 1 shard or 4 — sharding changes WHERE work
  // runs, never WHAT it computes.
  auto single = workload::RunShardedTraffic(SmallShardedRun(1));
  auto sharded = workload::RunShardedTraffic(SmallShardedRun(4));
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(single.runtime.ops_done, sharded.runtime.ops_done);
  EXPECT_EQ(single.verified_subscribers, sharded.verified_subscribers);
  // Both verified against the same driver-side expected sequence, so equal
  // verified counts with zero mismatches IS state equivalence.
}

TEST(ShardRuntimeTest, PartitionAlignedShardingRunsUnderScenarioMap) {
  // Regression for the scenario-harness integration: sharded mode sliced
  // from a real PartitionMap (the same substrate scenario::Engine drives)
  // must execute a full run with zero order violations and the exact same
  // end-state guarantee as hash slicing. Workers share one read-only slicer.
  workload::TestbedOptions to;
  to.sites = 2;
  to.seed = 11;
  to.subscribers = 200;
  to.udr.se_per_cluster = 2;
  to.udr.partitions_per_se = 2;
  workload::Testbed bed(to);

  auto report = workload::RunShardedTraffic(SmallShardedRun(3),
                                            &bed.udr().partition_map());
  EXPECT_EQ(report.runtime.shards.size(), 3u);
  EXPECT_EQ(report.runtime.ops_done, 4000);
  EXPECT_EQ(report.runtime.ops_failed, 0);
  EXPECT_EQ(report.runtime.order_violations, 0);
  EXPECT_EQ(report.seq_mismatches, 0);
  EXPECT_TRUE(report.ok());
  // The whole population is provisioned exactly once across the slices: the
  // shards agreed on partition-aligned ownership with no gap or overlap.
  int64_t provisioned = 0;
  for (const auto& shard : report.runtime.shards) {
    EXPECT_GT(shard.provisioned, 0) << "a shard got no partitions";
    provisioned += shard.provisioned;
  }
  EXPECT_EQ(provisioned, 200);
}

TEST(ShardRuntimeTest, BackpressureSurvivesTinyRings) {
  // A 2-slot ring forces the driver to spin on a full ring constantly; the
  // run must still complete exactly, proving the blocking Submit path.
  exec::ShardRuntimeOptions ro;
  ro.num_shards = 2;
  ro.queue_capacity = 2;
  ro.shard.total_subscribers = 50;
  exec::ShardRuntime runtime(ro);
  runtime.Start();
  uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    ShardBatch batch;
    ShardOp op;
    op.subscriber = static_cast<uint64_t>(i) % 50;
    op.seq = ++seq;  // Globally increasing => per-subscriber increasing.
    op.write = (i % 3 == 0);
    batch.ops.push_back(op);
    runtime.Submit(std::move(batch), runtime.ShardOf(op.subscriber));
  }
  const auto& report = runtime.Finish();
  EXPECT_EQ(report.ops_done, 500);
  EXPECT_EQ(report.ops_failed, 0);
  EXPECT_EQ(report.order_violations, 0);
}

}  // namespace
}  // namespace udr::exec
