// Failure-injection tests across the full stack: drained LDAP farms,
// storage capacity exhaustion, architectural limits, slow/flappy links and
// cascaded failures. Complements the per-module suites with "what actually
// happens when X dies" coverage.

#include <gtest/gtest.h>

#include "ldap/dn.h"
#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "udr/oam.h"
#include "workload/testbed.h"

namespace udr {
namespace {

using workload::Testbed;
using workload::TestbedOptions;

TestbedOptions SmallBed() {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 20;
  o.pin_home_sites = true;
  return o;
}

// ---------------------------------------------------------------------------
// LDAP farm failures
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, DrainedLocalPoaFallsBackToRemotePoa) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  // Kill every LDAP server at site 0.
  auto* cluster = bed.udr().cluster(0);
  for (size_t i = 0; i < cluster->ldap_count(); ++i) {
    auto s = cluster->balancer().Pick();
    ASSERT_TRUE(s.ok());
    (*s)->set_healthy(false);
  }
  // A client at site 0 is still served: Submit routes to the nearest PoA,
  // and when the local farm answers Unavailable the caller sees it -- the
  // balancer rejects, but remote PoAs remain reachable for retries.
  telecom::HlrFe fe(0, &bed.udr());
  auto r = fe.Authenticate(bed.factory().Make(0).ImsiId());
  // The local PoA is drained: the request through it fails...
  EXPECT_FALSE(r.ok());
  // ...but the FE can reach the site-1 PoA explicitly (stateless servers:
  // any instance can serve any user, §2.2).
  telecom::HlrFe remote_fe(1, &bed.udr());
  auto r2 = remote_fe.Authenticate(bed.factory().Make(0).ImsiId());
  EXPECT_TRUE(r2.ok());
}

TEST(FailureInjectionTest, SingleServerFailureInvisibleBehindBalancer) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  auto* cluster = bed.udr().cluster(0);
  auto first = cluster->balancer().Pick();
  ASSERT_TRUE(first.ok());
  (*first)->set_healthy(false);  // One of two servers dies.
  telecom::HlrFe fe(0, &bed.udr());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fe.Authenticate(bed.factory().Make(0).ImsiId()).ok()) << i;
  }
}

// ---------------------------------------------------------------------------
// Storage capacity exhaustion
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, FullStorageElementRejectsProvisioning) {
  TestbedOptions o;
  o.sites = 1;
  o.udr.se_per_cluster = 1;
  o.udr.replication_factor = 1;
  // Tiny SE: fits only a couple of profiles (~1.1 KB each).
  o.udr.se_template.ram_budget_bytes = 4 * 1024;
  Testbed bed(o);
  telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  int ok = 0, rejected = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    auto r = ps.Provision(i);
    if (r.ok()) ++ok;
    else ++rejected;
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);  // Budget hit: unwillingToPerform, not a crash.
  EXPECT_EQ(bed.udr().SubscriberCount(), ok);
}

TEST(FailureInjectionTest, ClusterLimitEnforcedAt256) {
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(sim::Topology(2), &clock);
  udrnf::UdrConfig cfg;
  cfg.se_per_cluster = 0;  // Keep it cheap: no SEs, just the limit check.
  cfg.ldap_per_cluster = 0;
  udrnf::UdrNf udr(cfg, network.get());
  for (int i = 0; i < udrnf::kMaxClustersPerNf; ++i) {
    ASSERT_TRUE(udr.AddCluster(i % 2 == 0 ? 0 : 1).ok()) << i;
  }
  EXPECT_TRUE(udr.AddCluster(0).status().IsResourceExhausted());
}

// ---------------------------------------------------------------------------
// Cascades
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, DoubleReplicaLossStillServesFromLastCopy) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
  ASSERT_TRUE(loc.ok());
  auto* rs = bed.udr().partition(loc->partition);
  ASSERT_EQ(rs->replica_count(), 3u);
  // Two of three copies die (a real catastrophe).
  rs->CrashReplica(rs->master_id());
  rs->CrashReplica((rs->master_id() + 1) % 3);
  bed.clock().Advance(Seconds(10));
  // The last copy still serves reads and, after failover, writes.
  telecom::HlrFe fe(0, &bed.udr());
  auto read = fe.Authenticate(bed.factory().Make(0).ImsiId());
  EXPECT_TRUE(read.ok());
  telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  auto write = ps.SetPremiumBarring(0, true);
  EXPECT_TRUE(write.ok());
  // The OSS sees the redundancy exhaustion.
  udrnf::OamSystem oam(&bed.udr());
  oam.Scan();
  bool exhausted = false;
  for (const auto& [key, alarm] : oam.active_alarms()) {
    if (alarm.text.find("one copy left") != std::string::npos) {
      exhausted = true;
    }
  }
  EXPECT_TRUE(exhausted);
}

TEST(FailureInjectionTest, TotalPartitionLossIsCleanlyUnavailable) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
  ASSERT_TRUE(loc.ok());
  auto* rs = bed.udr().partition(loc->partition);
  for (uint32_t r = 0; r < rs->replica_count(); ++r) rs->CrashReplica(r);
  bed.clock().Advance(Seconds(10));
  telecom::HlrFe fe(0, &bed.udr());
  auto read = fe.Authenticate(bed.factory().Make(0).ImsiId());
  EXPECT_FALSE(read.ok());
  // Other subscribers (other partitions) are untouched: the paper's "when
  // one node fails [only] the subscribers whose data are held in the
  // failing node lose access".
  int other_ok = 0;
  for (uint64_t i = 1; i < 20; ++i) {
    if (fe.Authenticate(bed.factory().Make(i).ImsiId()).ok()) ++other_ok;
  }
  EXPECT_GT(other_ok, 10);
}

TEST(FailureInjectionTest, FlappingLinkDeliversEverythingEventually) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  // Flap the 0-1 link: 10 cycles of 1s down / 1s up.
  MicroTime t0 = bed.clock().Now();
  for (int i = 0; i < 10; ++i) {
    bed.network().partitions().CutLink(0, 1, t0 + Seconds(2 * i),
                                       t0 + Seconds(2 * i + 1));
  }
  telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  int ok = 0;
  for (int i = 0; i < 40; ++i) {
    if (ps.SetPremiumBarring(static_cast<uint64_t>(i % 20), i % 2 == 0).ok()) {
      ++ok;
    }
    bed.clock().Advance(Millis(500));
  }
  EXPECT_GT(ok, 20);  // Writes to reachable masters keep landing.
  // After the flapping ends, every replica converges.
  bed.clock().AdvanceTo(t0 + Seconds(30));
  bed.udr().CatchUpAllPartitions();
  for (size_t p = 0; p < bed.udr().partition_count(); ++p) {
    auto* rs = bed.udr().partition(static_cast<uint32_t>(p));
    for (uint32_t r = 0; r < rs->replica_count(); ++r) {
      EXPECT_EQ(rs->applied_seq(r), rs->log().LastSeq())
          << "partition " << p << " replica " << r;
    }
  }
}

TEST(FailureInjectionTest, CrashDuringScaleOutSyncRecovers) {
  Testbed bed(SmallBed());
  bed.clock().Advance(Seconds(1));
  auto cluster = bed.udr().AddCluster(2);
  ASSERT_TRUE(cluster.ok());
  // While the new stage is syncing, a partition hits: existing PoAs serve.
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutLink(0, 2, t0, t0 + Seconds(5));
  telecom::HlrFe fe(1, &bed.udr());
  EXPECT_TRUE(fe.Authenticate(bed.factory().Make(1).ImsiId()).ok());
  // After sync + heal the new stage resolves too.
  bed.clock().Advance(Seconds(10));
  auto r = (*cluster)->location_stage()->Resolve(
      bed.factory().Make(1).ImsiId(), bed.clock().Now());
  EXPECT_TRUE(r.status.ok());
}

}  // namespace
}  // namespace udr
