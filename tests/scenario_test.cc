// Tests for the scenario harness (src/scenario/): script builder ordering,
// the seeded replay-determinism contract (same script + seed => byte-
// identical report), the partition-heal reconciliation convergence property,
// SLO gating, and per-scenario invariants for the five standard disaster /
// mass-event scenarios. The ScenarioFullTest suite runs the full standard
// scenarios and is registered with ctest LABELS slow; everything else is the
// fast subset in the default run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/scenarios.h"

namespace udr::scenario {
namespace {

// ---------------------------------------------------------------------------
// Script builder
// ---------------------------------------------------------------------------

TEST(ScriptTest, SortedOrdersByTimeStableOnTies) {
  Script script;
  script.KillSite(Seconds(5), 1);
  script.RestoreSite(Seconds(2), 1);
  script.AssertSlo(Seconds(5), SloCheck{SloKind::kConverged, "converged",
                                        0.0, -1});
  const std::vector<Step> steps = script.Sorted();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, StepKind::kRestoreSite);
  EXPECT_EQ(steps[1].kind, StepKind::kKillSite);  // 5s tie: built first.
  EXPECT_EQ(steps[2].kind, StepKind::kAssertSlo);
  // The builder's own list keeps construction order untouched.
  EXPECT_EQ(script.steps()[0].kind, StepKind::kKillSite);
}

TEST(ScriptTest, StepAndSloKindsHaveStableNames) {
  EXPECT_STREQ(StepKindName(StepKind::kKillSite), "kill-site");
  EXPECT_STREQ(StepKindName(StepKind::kAssertSlo), "assert-slo");
  EXPECT_STREQ(SloKindName(SloKind::kZeroAckedWriteLoss),
               "zero-acked-write-loss");
  EXPECT_STREQ(SloKindName(SloKind::kSeDrained), "se-drained");
}

// ---------------------------------------------------------------------------
// Smoke scenarios (shrunk deployments, short horizons)
// ---------------------------------------------------------------------------

/// Two sites, one SE each, 150 pinned subscribers, 4 s of traffic — the
/// smallest deployment on which site loss still forces a cross-site failover.
ScenarioSpec SmokeBase(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.testbed.sites = 2;
  spec.testbed.seed = 7;
  spec.testbed.subscribers = 150;
  spec.testbed.pin_home_sites = true;
  spec.testbed.udr.replication_factor = 2;
  spec.testbed.udr.se_per_cluster = 1;
  spec.testbed.udr.partitions_per_se = 2;
  spec.testbed.udr.fe_slave_reads = true;
  spec.duration = Seconds(4);
  spec.fe_rate_per_sec = 200.0;
  spec.ps_rate_per_sec = 10.0;
  return spec;
}

void AddCoreSlos(ScenarioSpec* spec) {
  const MicroTime at = spec->duration + Millis(1);
  spec->script.AssertSlo(at, SloCheck{SloKind::kZeroAckedWriteLoss,
                                      "zero-acked-write-loss", 0.0, -1});
  spec->script.AssertSlo(at,
                         SloCheck{SloKind::kPerKeyOrder, "per-key-order",
                                  0.0, -1});
  spec->script.AssertSlo(at, SloCheck{SloKind::kPsStaleZero, "ps-stale-zero",
                                      0.0, -1});
}

ScenarioSpec SiteLossSmoke() {
  ScenarioSpec spec = SmokeBase("site-loss-smoke");
  spec.testbed.udr.sync_mode = replication::SyncMode::kDualSequence;
  spec.testbed.udr.failover_detection = Millis(300);
  spec.script.KillSite(Seconds(1), 1);
  spec.script.RestoreSite(Seconds(3), 1);
  AddCoreSlos(&spec);
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kFailoversMin, "failovers-min",
                                 1.0, -1});
  return spec;
}

TEST(ScenarioSmokeTest, SiteLossHoldsCoreInvariants) {
  const ScenarioReport report = RunScenario(SiteLossSmoke());
  EXPECT_GT(report.audit.acked_writes, 0);
  EXPECT_EQ(report.audit.lost_writes, 0);
  EXPECT_EQ(report.audit.unreadable, 0);
  EXPECT_EQ(report.audit.order_violations, 0);
  ASSERT_EQ(report.slos.size(), 4u);
  for (const SloResult& slo : report.slos) {
    EXPECT_TRUE(slo.pass) << slo.check.label << " actual " << slo.actual;
  }
  EXPECT_TRUE(report.Passed());
  // The kill + restore both fired, plus the four SLO rows.
  EXPECT_EQ(report.steps_executed, 6);
}

TEST(ScenarioSmokeTest, UnmeetableSloGatesTheReport) {
  // The gate must actually gate: an impossible bound produces a FAIL row and
  // a failed report while the run itself still completes.
  ScenarioSpec spec = SmokeBase("unmeetable");
  AddCoreSlos(&spec);
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kFeAvailabilityMin,
                                 "fe-availability-min", 1.01, -1});
  const ScenarioReport report = RunScenario(spec);
  EXPECT_FALSE(report.Passed());
  ASSERT_EQ(report.slos.size(), 4u);
  EXPECT_FALSE(report.slos.back().pass);
  EXPECT_TRUE(report.slos.front().pass);  // Core rows still held.
}

TEST(ScenarioSmokeTest, ReportWithoutSloRowsDoesNotPass) {
  ScenarioReport empty;
  EXPECT_FALSE(empty.Passed());
}

// ---------------------------------------------------------------------------
// Seeded replay determinism
// ---------------------------------------------------------------------------

TEST(ScenarioSmokeTest, SameScriptAndSeedReplaysByteIdentically) {
  const ScenarioSpec spec = SiteLossSmoke();
  const std::string first = RunScenario(spec).Serialize();
  const std::string second = RunScenario(spec).Serialize();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ScenarioSmokeTest, DifferentSeedProducesADifferentRun) {
  // Guards the determinism test against a vacuous pass (a report that
  // ignores the traffic entirely would also be "byte-identical").
  ScenarioSpec a = SiteLossSmoke();
  ScenarioSpec b = SiteLossSmoke();
  b.testbed.seed = 8;
  EXPECT_NE(RunScenario(a).Serialize(), RunScenario(b).Serialize());
}

// ---------------------------------------------------------------------------
// Partition-heal reconciliation convergence property
// ---------------------------------------------------------------------------

/// AP-mode inter-site partition with the provisioning writer placed at
/// `ps_site`: varying the writer's side varies which side accepts the
/// divergent writes during the outage.
ScenarioSpec HealPropertySpec(sim::SiteId ps_site) {
  ScenarioSpec spec;
  spec.name = "heal-property-ps" + std::to_string(ps_site);
  spec.testbed.sites = 3;
  spec.testbed.seed = 13;
  spec.testbed.subscribers = 210;
  spec.testbed.pin_home_sites = true;
  spec.testbed.udr.replication_factor = 3;
  spec.testbed.udr.se_per_cluster = 1;
  spec.testbed.udr.partitions_per_se = 2;
  spec.testbed.udr.fe_slave_reads = true;
  spec.testbed.udr.partition_mode =
      replication::PartitionMode::kPreferAvailability;
  spec.testbed.udr.merge_policy = replication::MergePolicy::kFieldMergeLww;
  spec.duration = Seconds(5);
  spec.fe_rate_per_sec = 200.0;
  spec.ps_rate_per_sec = 40.0;
  spec.ps_site = ps_site;
  spec.script.PartitionLink(Seconds(1), Seconds(3), {0}, {1, 2});
  spec.script.HealLink(Seconds(3) + Millis(50));
  AddCoreSlos(&spec);
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kConverged, "converged", 0.0, -1});
  return spec;
}

TEST(ScenarioPropertyTest, HealReconciliationConvergesFromEitherSide) {
  // The property: after the partition heals and reconciliation runs, the
  // committed master state holds every acknowledged write and no partition
  // retains divergence — REGARDLESS of which side of the partition the
  // writer was on. The ledger audit is exactly that check: the last acked
  // stamp of every subscriber channel must be the durable master value.
  for (sim::SiteId ps_site : {sim::SiteId{0}, sim::SiteId{1}, sim::SiteId{2}}) {
    const ScenarioReport report = RunScenario(HealPropertySpec(ps_site));
    SCOPED_TRACE("ps_site=" + std::to_string(ps_site));
    EXPECT_GT(report.audit.acked_writes, 0);
    EXPECT_EQ(report.audit.lost_writes, 0);
    EXPECT_EQ(report.audit.unreadable, 0);
    EXPECT_EQ(report.audit.order_violations, 0);
    EXPECT_EQ(report.heal_reconciliations, 1);
    EXPECT_TRUE(report.Passed());
  }
}

TEST(ScenarioPropertyTest, MinoritySideWriterActuallyDiverges) {
  // Sharpens the property test: with the writer on the minority side, the
  // outage must force divergent (locally accepted, unreplicated) writes that
  // the heal then reconciles — otherwise the convergence assertions above
  // never exercised a real merge.
  const ScenarioReport report = RunScenario(HealPropertySpec(0));
  EXPECT_GT(report.restoration.divergent_entries, 0);
  EXPECT_GT(report.restoration.applied_ops, 0);
  EXPECT_EQ(report.audit.lost_writes, 0);
}

// ---------------------------------------------------------------------------
// Full standard scenarios (ctest LABELS slow)
// ---------------------------------------------------------------------------

void ExpectAllSlosPass(const ScenarioReport& report) {
  for (const SloResult& slo : report.slos) {
    EXPECT_TRUE(slo.pass) << report.name << " " << slo.check.label
                          << " bound " << slo.check.bound << " actual "
                          << slo.actual;
  }
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.audit.lost_writes, 0);
  EXPECT_EQ(report.audit.unreadable, 0);
  EXPECT_EQ(report.audit.order_violations, 0);
}

TEST(ScenarioFullTest, SiteLossFailover) {
  const ScenarioReport report = RunScenario(SiteLossFailover());
  ExpectAllSlosPass(report);
  EXPECT_GT(report.audit.acked_writes, 0);
}

TEST(ScenarioFullTest, IntersitePartition) {
  const ScenarioReport report = RunScenario(IntersitePartition());
  ExpectAllSlosPass(report);
  EXPECT_EQ(report.heal_reconciliations, 1);
  EXPECT_GT(report.restoration.divergent_entries, 0);
}

TEST(ScenarioFullTest, AttachStorm) {
  const ScenarioReport report = RunScenario(AttachStorm());
  ExpectAllSlosPass(report);
  EXPECT_GT(report.stats.fe_storm.attempted, 0);
}

TEST(ScenarioFullTest, RoamingWave) {
  const ScenarioReport report = RunScenario(RoamingWave());
  ExpectAllSlosPass(report);
}

TEST(ScenarioFullTest, SeDecommission) {
  const ScenarioReport report = RunScenario(SeDecommission());
  ExpectAllSlosPass(report);
}

TEST(ScenarioFullTest, StandardScenarioReplaysByteIdentically) {
  const ScenarioSpec spec = SiteLossFailover();
  EXPECT_EQ(RunScenario(spec).Serialize(), RunScenario(spec).Serialize());
}

}  // namespace
}  // namespace udr::scenario
