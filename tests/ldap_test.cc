// Unit tests for src/ldap: DN parsing, filters, result-code mapping, the
// stateless server farm and the L4 balancer.

#include <gtest/gtest.h>

#include "ldap/dn.h"
#include "ldap/filter.h"
#include "ldap/message.h"
#include "ldap/server.h"

namespace udr::ldap {
namespace {

// ---------------------------------------------------------------------------
// Dn
// ---------------------------------------------------------------------------

TEST(DnTest, ParseSimple) {
  auto dn = Dn::Parse("imsi=214050000000001,ou=subscribers,dc=udr");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->depth(), 3u);
  EXPECT_EQ(dn->leaf().attr, "imsi");
  EXPECT_EQ(dn->leaf().value, "214050000000001");
  EXPECT_EQ(dn->rdns()[2].attr, "dc");
}

TEST(DnTest, ParseNormalizesAttrCaseOnly) {
  auto dn = Dn::Parse("MSISDN=+34Abc, OU=Subscribers");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->leaf().attr, "msisdn");
  EXPECT_EQ(dn->leaf().value, "+34Abc");  // Value case preserved.
  EXPECT_EQ(dn->rdns()[1].value, "Subscribers");
}

TEST(DnTest, ParseEscapedComma) {
  auto dn = Dn::Parse("cn=Doe\\, John,ou=people");
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->leaf().value, "Doe, John");
  EXPECT_EQ(dn->ToString(), "cn=Doe\\, John,ou=people");
}

TEST(DnTest, ParseErrors) {
  EXPECT_FALSE(Dn::Parse("nocomma=ok,").ok());   // Empty trailing RDN.
  EXPECT_FALSE(Dn::Parse("=value,ou=x").ok());   // Missing attr.
  EXPECT_FALSE(Dn::Parse("attrnovalue,ou=x").ok());
  EXPECT_FALSE(Dn::Parse("a=,ou=x").ok());       // Empty value.
}

TEST(DnTest, EmptyDnParses) {
  auto dn = Dn::Parse("");
  ASSERT_TRUE(dn.ok());
  EXPECT_TRUE(dn->empty());
}

TEST(DnTest, RoundTrip) {
  const std::string text = "impu=sip:+34600@ims.example,ou=subscribers,dc=udr";
  auto dn = Dn::Parse(text);
  ASSERT_TRUE(dn.ok());
  EXPECT_EQ(dn->ToString(), text);
}

TEST(DnTest, ParentAndChild) {
  Dn base = SubscribersBase();
  EXPECT_EQ(base.ToString(), "ou=subscribers,dc=udr");
  Dn sub = base.Child("imsi", "214");
  EXPECT_EQ(sub.ToString(), "imsi=214,ou=subscribers,dc=udr");
  EXPECT_EQ(sub.Parent(), base);
  EXPECT_TRUE(sub.IsWithin(base));
  EXPECT_FALSE(base.IsWithin(sub));
}

TEST(DnTest, SubscriberDnHelper) {
  Dn dn = SubscriberDn("msisdn", "+34600000001");
  EXPECT_EQ(dn.leaf().attr, "msisdn");
  EXPECT_TRUE(dn.IsWithin(SubscribersBase()));
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

storage::Record MakeRecord() {
  storage::Record r;
  r.Set("msisdn", std::string("+34600000001"), 0, 0);
  r.Set("barred", false, 0, 0);
  r.Set("charging-profile", int64_t{5}, 0, 0);
  r.Set("impu", std::vector<std::string>{"sip:a@x", "tel:+34600000001"}, 0, 0);
  return r;
}

TEST(FilterTest, EqualityMatch) {
  auto f = Filter::Parse("(msisdn=+34600000001)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Matches(MakeRecord()));
  auto f2 = Filter::Parse("(msisdn=+34999999999)");
  ASSERT_TRUE(f2.ok());
  EXPECT_FALSE(f2->Matches(MakeRecord()));
}

TEST(FilterTest, EqualityOnBoolAndInt) {
  ASSERT_TRUE(Filter::Parse("(barred=false)")->Matches(MakeRecord()));
  ASSERT_FALSE(Filter::Parse("(barred=true)")->Matches(MakeRecord()));
  ASSERT_TRUE(Filter::Parse("(charging-profile=5)")->Matches(MakeRecord()));
}

TEST(FilterTest, MultiValuedMatchesAnyValue) {
  ASSERT_TRUE(Filter::Parse("(impu=tel:+34600000001)")->Matches(MakeRecord()));
  ASSERT_TRUE(Filter::Parse("(impu=sip:a@x)")->Matches(MakeRecord()));
  ASSERT_FALSE(Filter::Parse("(impu=sip:b@x)")->Matches(MakeRecord()));
}

TEST(FilterTest, Presence) {
  ASSERT_TRUE(Filter::Parse("(msisdn=*)")->Matches(MakeRecord()));
  ASSERT_FALSE(Filter::Parse("(ghost=*)")->Matches(MakeRecord()));
}

TEST(FilterTest, AndOrNot) {
  auto f = Filter::Parse("(&(msisdn=+34600000001)(barred=false))");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Matches(MakeRecord()));
  auto f2 = Filter::Parse("(&(msisdn=+34600000001)(barred=true))");
  EXPECT_FALSE(f2->Matches(MakeRecord()));
  auto f3 = Filter::Parse("(|(msisdn=bad)(charging-profile=5))");
  EXPECT_TRUE(f3->Matches(MakeRecord()));
  auto f4 = Filter::Parse("(!(barred=true))");
  EXPECT_TRUE(f4->Matches(MakeRecord()));
}

TEST(FilterTest, NestedComposite) {
  auto f = Filter::Parse("(&(|(msisdn=bad)(msisdn=+34600000001))(!(ghost=*)))");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Matches(MakeRecord()));
}

TEST(FilterTest, RangeOperatorsOnInt) {
  EXPECT_TRUE(Filter::Parse("(charging-profile>=5)")->Matches(MakeRecord()));
  EXPECT_TRUE(Filter::Parse("(charging-profile<=5)")->Matches(MakeRecord()));
  EXPECT_FALSE(Filter::Parse("(charging-profile>=6)")->Matches(MakeRecord()));
  EXPECT_FALSE(Filter::Parse("(charging-profile<=4)")->Matches(MakeRecord()));
}

TEST(FilterTest, ParseErrors) {
  EXPECT_FALSE(Filter::Parse("msisdn=+34").ok());     // No parens.
  EXPECT_FALSE(Filter::Parse("(msisdn=+34").ok());    // Unclosed.
  EXPECT_FALSE(Filter::Parse("(&)").ok());            // Empty composite.
  EXPECT_FALSE(Filter::Parse("(=value)").ok());       // Empty attr.
  EXPECT_FALSE(Filter::Parse("(a=b)(c=d)").ok());     // Trailing junk.
}

TEST(FilterTest, ToStringRoundTrip) {
  const std::string text = "(&(msisdn=+34600000001)(!(barred=true)))";
  auto f = Filter::Parse(text);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ToString(), text);
}

TEST(FilterTest, ConvenienceConstructors) {
  EXPECT_TRUE(Filter::Eq("msisdn", "+34600000001").Matches(MakeRecord()));
  EXPECT_TRUE(Filter::Present("barred").Matches(MakeRecord()));
}

// ---------------------------------------------------------------------------
// Result codes
// ---------------------------------------------------------------------------

TEST(MessageTest, StatusToLdapCodeMapping) {
  EXPECT_EQ(StatusToLdapCode(Status::Ok()), LdapResultCode::kSuccess);
  EXPECT_EQ(StatusToLdapCode(Status::NotFound()), LdapResultCode::kNoSuchObject);
  EXPECT_EQ(StatusToLdapCode(Status::AlreadyExists()),
            LdapResultCode::kEntryAlreadyExists);
  EXPECT_EQ(StatusToLdapCode(Status::Unavailable()),
            LdapResultCode::kUnavailable);
  EXPECT_EQ(StatusToLdapCode(Status::Aborted()), LdapResultCode::kBusy);
  EXPECT_EQ(StatusToLdapCode(Status::InvalidArgument()),
            LdapResultCode::kProtocolError);
  EXPECT_EQ(StatusToLdapCode(Status::Internal()), LdapResultCode::kOther);
}

TEST(MessageTest, ResultOkSemantics) {
  LdapResult r;
  r.code = LdapResultCode::kCompareTrue;
  EXPECT_TRUE(r.ok());
  r.code = LdapResultCode::kCompareFalse;
  EXPECT_TRUE(r.ok());
  r.code = LdapResultCode::kUnavailable;
  EXPECT_FALSE(r.ok());
}

TEST(MessageTest, Names) {
  EXPECT_STREQ(LdapOpName(LdapOp::kModify), "Modify");
  EXPECT_STREQ(LdapResultCodeName(LdapResultCode::kNoSuchObject),
               "noSuchObject");
}

// ---------------------------------------------------------------------------
// Server + balancer
// ---------------------------------------------------------------------------

/// Backend that records calls and returns success.
class FakeBackend : public LdapBackend {
 public:
  LdapResult Process(const LdapRequest& request, uint32_t client_site) override {
    ++calls;
    last_site = client_site;
    last_op = request.op;
    LdapResult r;
    r.latency = Micros(10);
    return r;
  }
  int calls = 0;
  uint32_t last_site = 0;
  LdapOp last_op = LdapOp::kSearch;
};

TEST(LdapServerTest, ServeAddsProtocolCost) {
  FakeBackend backend;
  LdapServerConfig cfg;
  cfg.per_op_cost = Micros(1);
  LdapServer server(cfg, &backend);
  LdapRequest req;
  LdapResult r = server.Serve(req, 2);
  EXPECT_EQ(r.latency, Micros(11));
  EXPECT_EQ(backend.calls, 1);
  EXPECT_EQ(backend.last_site, 2u);
  EXPECT_EQ(server.ops_served(), 1);
}

TEST(LdapServerTest, CapacityFromPerOpCost) {
  FakeBackend backend;
  LdapServerConfig cfg;
  cfg.per_op_cost = Micros(1);
  LdapServer server(cfg, &backend);
  // 1 µs per op == the paper's 1e6 indexed ops/s per server.
  EXPECT_EQ(server.OpsPerSecondCapacity(), 1'000'000);
}

TEST(BalancerTest, RoundRobinSpreadsLoad) {
  FakeBackend backend;
  LdapServerConfig cfg;
  L4Balancer balancer(0);
  LdapServer s1(cfg, &backend), s2(cfg, &backend), s3(cfg, &backend);
  balancer.AddServer(&s1);
  balancer.AddServer(&s2);
  balancer.AddServer(&s3);
  LdapRequest req;
  for (int i = 0; i < 9; ++i) balancer.Serve(req, 0);
  EXPECT_EQ(s1.ops_served(), 3);
  EXPECT_EQ(s2.ops_served(), 3);
  EXPECT_EQ(s3.ops_served(), 3);
}

TEST(BalancerTest, SkipsUnhealthyServers) {
  FakeBackend backend;
  LdapServerConfig cfg;
  L4Balancer balancer(0);
  LdapServer s1(cfg, &backend), s2(cfg, &backend);
  balancer.AddServer(&s1);
  balancer.AddServer(&s2);
  s1.set_healthy(false);
  LdapRequest req;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(balancer.Serve(req, 0).ok());
  }
  EXPECT_EQ(s1.ops_served(), 0);
  EXPECT_EQ(s2.ops_served(), 4);
  EXPECT_EQ(balancer.healthy_count(), 1u);
}

TEST(BalancerTest, UnavailableWhenNoHealthyServer) {
  L4Balancer balancer(0);
  LdapRequest req;
  EXPECT_EQ(balancer.Serve(req, 0).code, LdapResultCode::kUnavailable);
  FakeBackend backend;
  LdapServerConfig cfg;
  LdapServer s1(cfg, &backend);
  balancer.AddServer(&s1);
  s1.set_healthy(false);
  EXPECT_EQ(balancer.Serve(req, 0).code, LdapResultCode::kUnavailable);
}

TEST(BalancerTest, AggregateCapacityCountsHealthyOnly) {
  FakeBackend backend;
  LdapServerConfig cfg;
  cfg.per_op_cost = Micros(1);
  L4Balancer balancer(0);
  LdapServer s1(cfg, &backend), s2(cfg, &backend);
  balancer.AddServer(&s1);
  balancer.AddServer(&s2);
  EXPECT_EQ(balancer.OpsPerSecondCapacity(), 2'000'000);
  s2.set_healthy(false);
  EXPECT_EQ(balancer.OpsPerSecondCapacity(), 1'000'000);
}

}  // namespace
}  // namespace udr::ldap
