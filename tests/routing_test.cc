// Unit and property tests for the src/routing layer: consistent-hash ring
// stability, PartitionMap commissioning and key resolution, placement-policy
// invariants, primary-copy migration, and the scale-out-then-rebalance
// scenario (per-SE primary-count spread <= 1, zero acknowledged-write loss).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/hash_ring.h"
#include "ldap/dn.h"
#include "routing/partition_map.h"
#include "routing/placement_policy.h"
#include "routing/router.h"
#include "workload/testbed.h"

namespace udr::routing {
namespace {

using location::Identity;
using location::IdentityType;

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(64), b(64);
  for (uint32_t n = 0; n < 8; ++n) {
    a.AddNode(n);
    b.AddNode(n);
  }
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t h = k * 0x9E3779B97F4A7C15ULL;
    EXPECT_EQ(a.NodeOfHash(h), b.NodeOfHash(h));
  }
}

TEST(HashRingTest, GrowthMovesOnlyAFractionOfKeys) {
  constexpr int kKeys = 20000;
  constexpr uint32_t kNodes = 10;
  HashRing ring(128);
  for (uint32_t n = 0; n < kNodes; ++n) ring.AddNode(n);

  std::vector<uint32_t> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[k] = ring.NodeOfHash(static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ULL);
  }
  ring.AddNode(kNodes);  // Grow the map by one node.
  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    uint32_t after =
        ring.NodeOfHash(static_cast<uint64_t>(k) * 0x9E3779B97F4A7C15ULL);
    if (after != before[k]) {
      // Every moved key must land on the new node: consistent hashing never
      // reshuffles keys between pre-existing nodes.
      EXPECT_EQ(after, kNodes);
      ++moved;
    }
  }
  // Expected movement is K/(N+1) ~ 1818; allow a generous vnode-variance
  // band but stay far below the K*N/(N+1) a mod-N scheme would move.
  EXPECT_GT(moved, kKeys / (kNodes + 1) / 3);
  EXPECT_LT(moved, 3 * kKeys / (kNodes + 1));
}

TEST(HashRingTest, BulkAddMatchesIncrementalAdd) {
  HashRing a(64), b(64);
  a.AddNodes(0, 10);
  for (uint32_t n = 0; n < 10; ++n) b.AddNode(n);
  EXPECT_EQ(a.point_count(), b.point_count());
  EXPECT_EQ(a.node_count(), 10u);
  for (uint64_t k = 0; k < 2000; ++k) {
    uint64_t h = k * 0x9E3779B97F4A7C15ULL;
    EXPECT_EQ(a.NodeOfHash(h), b.NodeOfHash(h));
  }
}

TEST(HashRingTest, RemoveNodeRestoresPriorOwnership) {
  HashRing ring(64);
  for (uint32_t n = 0; n < 6; ++n) ring.AddNode(n);
  std::vector<uint32_t> before;
  for (uint64_t k = 0; k < 500; ++k) {
    before.push_back(ring.NodeOfHash(k * 0x9E3779B97F4A7C15ULL));
  }
  ring.AddNode(6);
  ring.RemoveNode(6);
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(ring.NodeOfHash(k * 0x9E3779B97F4A7C15ULL), before[k]);
  }
}

// ---------------------------------------------------------------------------
// PartitionMap on a deployed testbed
// ---------------------------------------------------------------------------

TEST(PartitionMapDeployTest, CommissionsPartitionsPerSe) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.udr.partitions_per_se = 2;
  workload::Testbed bed(o);
  // 3 clusters x 2 SEs x 2 partitions each.
  EXPECT_EQ(bed.udr().partition_count(), 12u);
  EXPECT_EQ(bed.udr().partition_map().PrimarySpread(), 0);
}

TEST(PartitionMapDeployTest, CommissionIsIdempotent) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  size_t before = bed.udr().partition_count();
  bed.udr().CommissionPartitions();
  bed.udr().CommissionPartitions();
  EXPECT_EQ(bed.udr().partition_count(), before);
}

TEST(PartitionMapDeployTest, KeyResolutionIsStableUnderGrowth) {
  workload::TestbedOptions o;
  o.sites = 4;
  workload::Testbed bed(o);  // 4 clusters, 8 partitions.
  auto& map = bed.udr().partition_map();
  size_t partitions_before = map.partition_count();

  std::vector<uint32_t> before;
  for (uint64_t k = 0; k < 5000; ++k) {
    before.push_back(map.PartitionOfKey(k * 0x9E3779B97F4A7C15ULL));
  }
  // Scale out: new cluster at an existing site, then commission its SEs.
  ASSERT_TRUE(bed.udr().AddCluster(0).ok());
  bed.udr().CommissionPartitions();
  ASSERT_GT(map.partition_count(), partitions_before);

  int moved = 0;
  for (uint64_t k = 0; k < 5000; ++k) {
    uint32_t after = map.PartitionOfKey(k * 0x9E3779B97F4A7C15ULL);
    if (after != before[k]) {
      EXPECT_GE(after, partitions_before);  // Moves only onto new partitions.
      ++moved;
    }
  }
  // 2 new partitions over 10 total: ~20% of keys move, never the ~80% a
  // mod-N scheme would reshuffle.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 5000 * 2 / 5);
}

// ---------------------------------------------------------------------------
// PlacementPolicy invariants
// ---------------------------------------------------------------------------

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : bed_(MakeOptions()) {}

  static workload::TestbedOptions MakeOptions() {
    workload::TestbedOptions o;
    o.sites = 3;
    return o;
  }

  PartitionMap& map() { return bed_.udr().partition_map(); }
  workload::Testbed bed_;
};

TEST_F(PlacementTest, LeastLoadedPicksSmallestPopulation) {
  LeastLoadedPolicy policy;
  map().AddPopulation(0, 5);
  map().AddPopulation(1, 3);
  // All others are 0; lowest id wins ties.
  auto pick = policy.PickPartition(map(), PlacementRequest{});
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 2u);
  map().AddPopulation(2, 9);
  map().AddPopulation(3, 9);
  map().AddPopulation(4, 9);
  map().AddPopulation(5, 1);
  pick = policy.PickPartition(map(), PlacementRequest{});
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 5u);
}

TEST_F(PlacementTest, RoundRobinCyclesThroughAllPartitions) {
  RoundRobinPolicy policy;
  std::map<uint32_t, int> seen;
  size_t n = map().partition_count();
  for (size_t i = 0; i < 2 * n; ++i) {
    auto pick = policy.PickPartition(map(), PlacementRequest{});
    ASSERT_TRUE(pick.ok());
    ++seen[*pick];
  }
  EXPECT_EQ(seen.size(), n);
  for (const auto& [p, count] : seen) EXPECT_EQ(count, 2) << "partition " << p;
}

TEST_F(PlacementTest, HashPolicyMatchesRingAndIsDeterministic) {
  HashPolicy policy;
  Identity id{IdentityType::kImsi, "214070000000042"};
  PlacementRequest req;
  req.identity = &id;
  auto a = policy.PickPartition(map(), req);
  auto b = policy.PickPartition(map(), req);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, map().PartitionOfIdentity(id));
  // No identity: InvalidArgument.
  EXPECT_TRUE(policy.PickPartition(map(), PlacementRequest{})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PlacementTest, SelectivePinsHomeSiteElseFallsBack) {
  auto policy = MakePlacementPolicy(PlacementKind::kLeastLoaded);
  PlacementRequest req;
  req.home_site = 2;
  auto pick = policy->PickPartition(map(), req);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(map().master_site(*pick), 2u);
  // A site with no master copies falls back to global least-loaded.
  req.home_site = 77;
  pick = policy->PickPartition(map(), req);
  ASSERT_TRUE(pick.ok());
}

TEST(PlacementEmptyMapTest, EmptyMapIsFailedPrecondition) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(2, sim::LatencyConfig()), &clock);
  PartitionMap map(PartitionMapConfig(), &network);
  LeastLoadedPolicy policy;
  EXPECT_TRUE(policy.PickPartition(map, PlacementRequest{})
                  .status()
                  .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Primary-copy migration (ReplicaSet::MigratePrimaryTo via the map)
// ---------------------------------------------------------------------------

TEST(MigrationTest, FreshTargetReceivesFullPartitionState) {
  workload::TestbedOptions o;
  o.sites = 4;
  o.subscribers = 60;
  workload::Testbed bed(o);  // 4 clusters over sites 0..3.
  auto& udr = bed.udr();
  auto& map = udr.partition_map();

  // Pick a populated partition and a storage element that hosts no copy of
  // it (guaranteed to exist: replication factor 3 < 8 SEs).
  replication::ReplicaSet* rs = map.partition(0);
  storage::StorageElement* target = nullptr;
  for (size_t i = 0; i < map.se_count(); ++i) {
    storage::StorageElement* se = map.se_info(i).se;
    bool member = false;
    for (uint32_t r = 0; r < rs->replica_count(); ++r) {
      if (rs->replica_se(r) == se) member = true;
    }
    if (!member) target = se;
  }
  ASSERT_NE(target, nullptr);

  int64_t log_size = static_cast<int64_t>(rs->log().size());
  ASSERT_GT(log_size, 0);
  auto report = rs->MigratePrimaryTo(target);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted_existing);
  EXPECT_EQ(report->entries_replayed, log_size);
  EXPECT_GT(report->bytes_moved, 0);
  EXPECT_GT(report->duration, 0);
  EXPECT_EQ(rs->replica_se(rs->master_id()), target);
  EXPECT_EQ(rs->master_site(), target->site());
}

TEST(MigrationTest, ExistingSecondaryIsPromotedInPlace) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 30;
  workload::Testbed bed(o);
  auto& map = bed.udr().partition_map();
  replication::ReplicaSet* rs = map.partition(0);
  ASSERT_EQ(rs->replica_count(), 3u);
  uint32_t old_master = rs->master_id();
  uint32_t secondary = old_master == 0 ? 1 : 0;
  storage::StorageElement* target = rs->replica_se(secondary);

  auto report = rs->MigratePrimaryTo(target);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->promoted_existing);
  EXPECT_EQ(rs->master_id(), secondary);
  EXPECT_EQ(rs->replica_count(), 3u);  // Membership unchanged.
  // The demoted primary still hosts a fully caught-up secondary copy.
  EXPECT_EQ(rs->applied_seq(old_master), rs->log().LastSeq());
  EXPECT_GT(rs->replica_store(old_master).Count(), 0);
}

TEST(MigrationTest, MigrateToCurrentMasterIsANoOp) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 10;
  workload::Testbed bed(o);
  replication::ReplicaSet* rs = bed.udr().partition(0);
  auto report = rs->MigratePrimaryTo(rs->replica_se(rs->master_id()));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_replayed, 0);
  EXPECT_EQ(report->bytes_moved, 0);
}

// ---------------------------------------------------------------------------
// Scale-out then rebalance: the acceptance scenario
// ---------------------------------------------------------------------------

TEST(RebalanceTest, ScaleOutRebalanceBalancesPrimariesWithoutLosingWrites) {
  workload::TestbedOptions o;
  o.sites = 4;
  o.udr.partitions_per_se = 2;  // Finer migration units: 12 partitions, 6 SEs.
  // Build a 4-site topology but deploy clusters on sites 0..2 only, so site
  // 3 is the scale-out target.
  sim::LatencyConfig lc;
  sim::SimClock clock;
  sim::Network network(sim::Topology(4, lc), &clock);
  udrnf::UdrNf udr(o.udr, &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  ASSERT_EQ(udr.partition_count(), 12u);

  // Provision a population and capture every acknowledged write.
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(7);
  std::vector<Identity> acknowledged;
  for (int i = 0; i < 200; ++i) {
    auto spec = factory.MakeSpec(static_cast<uint64_t>(i), std::nullopt);
    auto outcome = udr.CreateSubscriber(spec, 0);
    ASSERT_TRUE(outcome.ok()) << i << ": " << outcome.status();
    acknowledged.push_back(spec.identities.front());
  }
  // A few post-provisioning modifies so the logs have non-create entries.
  for (int i = 0; i < 20; ++i) {
    ldap::LdapRequest mod;
    mod.op = ldap::LdapOp::kModify;
    mod.dn = ldap::SubscriberDn("imsi", factory.ImsiOf(static_cast<uint64_t>(i)));
    mod.mods.push_back(
        {ldap::ModType::kReplace, "cfu-number", std::string("+4912345")});
    ASSERT_EQ(udr.Submit(mod, 0).code, ldap::LdapResultCode::kSuccess);
  }

  // Scale out to site 3: two fresh SEs with zero primaries.
  clock.Advance(Seconds(30));
  ASSERT_TRUE(udr.AddCluster(3).ok());
  int spread_before = udr.partition_map().PrimarySpread();
  ASSERT_GT(spread_before, 1);  // 2 primaries on old SEs, 0 on new ones.

  auto report = udr.Rebalance();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->spread_before, spread_before);
  EXPECT_LE(report->spread_after, 1);
  EXPECT_LE(udr.partition_map().PrimarySpread(), 1);
  EXPECT_FALSE(report->moves.empty());
  EXPECT_GT(report->entries_replayed, 0);
  EXPECT_GT(report->bytes_moved, 0);

  // The new SEs now hold primary copies.
  std::vector<int> primaries = udr.partition_map().PrimariesPerSe();
  ASSERT_EQ(primaries.size(), 8u);
  EXPECT_GE(primaries[6], 1);
  EXPECT_GE(primaries[7], 1);

  // Zero acknowledged-write loss: every subscriber resolves and its profile
  // (including post-create modifies) reads back through the master copy.
  for (size_t i = 0; i < acknowledged.size(); ++i) {
    auto loc = udr.AuthoritativeLookup(acknowledged[i]);
    ASSERT_TRUE(loc.ok()) << acknowledged[i].ToString();
    auto* rs = udr.partition(loc->partition);
    auto record = rs->ReadRecord(0, loc->key,
                                 replication::ReadPreference::kMasterOnly,
                                 nullptr);
    ASSERT_TRUE(record.ok())
        << "acknowledged write lost for " << acknowledged[i].ToString();
    if (i < 20) {
      ASSERT_TRUE(record->Has("cfu-number")) << i;
      EXPECT_EQ(storage::ValueToString(*record->Get("cfu-number")), "+4912345");
    }
  }

  // Location entries survived the migration (partition ids are stable), so
  // resolution at the pre-existing PoAs still routes every identity.
  for (const Identity& id : acknowledged) {
    auto resolved = udr.Locate(id, 0);
    ASSERT_TRUE(resolved.status.ok());
    auto route = udr.router().Route(id, 1);
    ASSERT_TRUE(route.status.ok());
    EXPECT_NE(route.rs, nullptr);
  }

  // A second pass is a no-op: already balanced.
  auto again = udr.Rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->moves.empty());

  // A later lazy Commission() (any create triggers it) must not re-create
  // partitions on the SEs the rebalance drained — that would churn the ring
  // and undo the balance. It may only top up the new SEs to their quota:
  // the 2 new SEs each received 1 of their 2-partition quota, so exactly 2
  // fresh partitions appear, both primary-hosted on the new SEs.
  auto extra = factory.MakeSpec(500, std::nullopt);
  ASSERT_TRUE(udr.CreateSubscriber(extra, 0).ok());
  EXPECT_EQ(udr.partition_count(), 14u);
  EXPECT_LE(udr.partition_map().PrimarySpread(), 1);
  std::vector<int> after_create = udr.partition_map().PrimariesPerSe();
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_LE(after_create[i], 2) << "drained SE " << i << " re-commissioned";
  }
}

// ---------------------------------------------------------------------------
// Population-weighted rebalancing
// ---------------------------------------------------------------------------

/// Deploys 3 sites (12 partitions over 6 SEs) and pins every subscriber to
/// site 0, so the two site-0 SEs primary-host the whole population while the
/// per-SE primary *count* stays perfectly balanced.
workload::Testbed SkewedPopulationBed(RebalanceWeight weight) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.udr.partitions_per_se = 2;
  o.udr.rebalance_weight = weight;
  workload::Testbed bed(o);
  for (uint64_t i = 0; i < 200; ++i) {
    auto spec = bed.factory().MakeSpec(i, sim::SiteId{0});
    EXPECT_TRUE(bed.udr().CreateSubscriber(spec, 0).ok()) << i;
  }
  return bed;
}

TEST(RebalanceTest, CountWeightedRebalanceIgnoresPopulationSkew) {
  workload::Testbed bed = SkewedPopulationBed(RebalanceWeight::kPrimaryCount);
  auto& map = bed.udr().partition_map();
  ASSERT_EQ(map.PrimarySpread(), 0);       // Counts are already balanced...
  ASSERT_GT(map.PopulationSpread(), 0);    // ... but the population is not.
  auto report = bed.udr().Rebalance();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->moves.empty());      // Count mode sees nothing to do.
}

TEST(RebalanceTest, PopulationWeightedRebalanceSpreadsSubscribers) {
  workload::Testbed bed = SkewedPopulationBed(RebalanceWeight::kPopulation);
  auto& udr = bed.udr();
  auto& map = udr.partition_map();
  int64_t skew_before = map.PopulationSpread();
  ASSERT_GT(skew_before, 0);

  auto report = udr.Rebalance();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->moves.empty());
  EXPECT_EQ(report->population_spread_before, skew_before);
  EXPECT_LT(report->population_spread_after, skew_before);
  EXPECT_EQ(map.PopulationSpread(), report->population_spread_after);
  // With 4 equally filled partitions on the hot SEs the greedy pass halves
  // the spread at worst.
  EXPECT_LE(report->population_spread_after, skew_before / 2);

  // No acknowledged write lost: every subscriber still resolves and reads.
  for (uint64_t i = 0; i < 200; ++i) {
    location::Identity id = bed.factory().Make(i).ImsiId();
    auto loc = udr.AuthoritativeLookup(id);
    ASSERT_TRUE(loc.ok()) << id.ToString();
    auto record =
        udr.partition(loc->partition)
            ->ReadRecord(0, loc->key, replication::ReadPreference::kMasterOnly);
    ASSERT_TRUE(record.ok()) << id.ToString();
  }

  // A second pass finds no improving move: the greedy rebalance converged.
  auto again = udr.Rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->moves.empty());
}

TEST(RebalanceTest, TestbedScaleOutHelper) {
  workload::TestbedOptions o;
  o.sites = 4;
  o.udr.partitions_per_se = 2;
  o.subscribers = 50;
  workload::Testbed bed(o);  // Clusters on all 4 sites already.
  // Add a fifth cluster at site 0 and rebalance onto it.
  auto report = bed.ScaleOut(0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LE(bed.udr().partition_map().PrimarySpread(), 1);
  EXPECT_EQ(bed.udr().SubscriberCount(), 50);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(RouterTest, RoutesIdentityToOwningReplicaSet) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 10;
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(3).ImsiId();
  auto loc = udr.AuthoritativeLookup(id);
  ASSERT_TRUE(loc.ok());
  auto route = udr.router().Route(id, 0);
  ASSERT_TRUE(route.status.ok());
  EXPECT_EQ(route.partition, loc->partition);
  EXPECT_EQ(route.key, loc->key);
  EXPECT_EQ(route.rs, udr.partition(loc->partition));
  EXPECT_GT(route.resolve_cost, 0);
}

TEST(RouterTest, UnknownIdentityFailsToRoute) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  auto route =
      bed.udr().router().Route(Identity{IdentityType::kImsi, "000"}, 0);
  EXPECT_TRUE(route.status.IsNotFound());
  EXPECT_EQ(route.rs, nullptr);
}

TEST(RouterTest, NoPoaAtSiteIsUnavailable) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  auto resolved =
      bed.udr().router().ResolveAt(Identity{IdentityType::kImsi, "1"}, 9);
  EXPECT_TRUE(resolved.status.IsUnavailable());
}

TEST(RouterTest, FindPoaPrefersNearestReachable) {
  workload::TestbedOptions o;
  o.sites = 3;
  workload::Testbed bed(o);
  auto poa = bed.udr().router().FindPoaCluster(1);
  ASSERT_TRUE(poa.ok());
  EXPECT_EQ(bed.udr().cluster(*poa)->site(), 1u);  // Co-located PoA wins.
  // Cut site 1 off from everything: no PoA reachable... except its own LAN.
  bed.network().partitions().IsolateSite(1, 3, bed.clock().Now(),
                                         bed.clock().Now() + Seconds(60));
  poa = bed.udr().router().FindPoaCluster(1);
  ASSERT_TRUE(poa.ok());  // Same-site PoA is never partitioned away.
  EXPECT_EQ(bed.udr().cluster(*poa)->site(), 1u);
}

}  // namespace
}  // namespace udr::routing
