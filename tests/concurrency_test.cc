// Tests for the annotated locking layer (common/mutex.h): the
// UDR_DEADLOCK_CHECK lock-order checker must fire on a seeded ABBA
// inversion, MutexLock must release on every exit path (exceptions
// included), CondVar must wake waiters through the checker's bookkeeping,
// and the SpscQueue owner-thread asserts must catch SPSC contract
// violations. The death tests are gated on UDR_DEADLOCK_CHECK (on by
// default outside Release builds — see the top-level CMakeLists).

#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "exec/spsc_queue.h"

namespace udr {
namespace {

using common::CondVar;
using common::Mutex;
using common::MutexLock;

// ---------------------------------------------------------------------------
// Lock-order (deadlock) checker
// ---------------------------------------------------------------------------

#if defined(UDR_DEADLOCK_CHECK)

TEST(LockOrderCheckTest, ConsistentNestingDoesNotFire) {
  // A -> B nested repeatedly in one consistent order is a valid hierarchy;
  // the checker must stay quiet and the held stack must drain to empty.
  Mutex a("lockorder.consistent.A");
  Mutex b("lockorder.consistent.B");
  for (int i = 0; i < 100; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {  // Acquiring the outer lock alone is fine too.
    MutexLock la(a);
  }
  EXPECT_EQ(common::lockorder::HeldCount(), 0);
}

TEST(LockOrderCheckTest, AbbaInversionAborts) {
  // The seeded ABBA pattern: establish A -> B, then acquire B -> A. A real
  // deadlock needs two threads to interleave, but the ORDER inversion is
  // visible from one thread — which is the checker's whole value: it fires
  // on the first inverted acquisition, not on the unlucky schedule.
  EXPECT_DEATH(
      {
        Mutex a("lockorder.abba.A");
        Mutex b("lockorder.abba.B");
        {
          MutexLock la(a);
          MutexLock lb(b);  // Establishes A -> B.
        }
        MutexLock lb(b);
        MutexLock la(a);  // B -> A closes the cycle: abort.
      },
      "lock-order inversion.*lockorder\\.abba\\.A");
}

TEST(LockOrderCheckTest, SameNameNestingIsFlagged) {
  // Two instances of the same named class nested = a self-cycle in the
  // per-class order graph (the Metrics::MergeFrom pattern snapshots instead
  // of nesting for exactly this reason).
  EXPECT_DEATH(
      {
        Mutex first("lockorder.same.X");
        Mutex second("lockorder.same.X");
        MutexLock l1(first);
        MutexLock l2(second);
      },
      "lock-order inversion");
}

TEST(LockOrderCheckTest, InversionReportNamesBothStacks) {
  // The report must carry the acquiring thread's held stack AND the stack
  // recorded when the conflicting edge was established.
  EXPECT_DEATH(
      {
        Mutex outer("lockorder.report.OUTER");
        Mutex inner("lockorder.report.INNER");
        {
          MutexLock lo(outer);
          MutexLock li(inner);
        }
        MutexLock li(inner);
        MutexLock lo(outer);
      },
      "while holding \\[lockorder\\.report\\.INNER\\].*"
      "established earlier with held stack "
      "\\[lockorder\\.report\\.OUTER -> lockorder\\.report\\.INNER\\]");
}

#else

TEST(LockOrderCheckTest, DisabledInThisBuild) {
  GTEST_SKIP() << "UDR_DEADLOCK_CHECK is off (Release build?); the "
                  "lock-order checker tests need it compiled in.";
}

#endif  // UDR_DEADLOCK_CHECK

// ---------------------------------------------------------------------------
// MutexLock RAII
// ---------------------------------------------------------------------------

TEST(MutexLockTest, ReleasesOnException) {
  Mutex mu("raii.exception");
  try {
    MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The throw unwound the scope; the mutex must be free again (TryLock on a
  // still-held std::mutex from the owning thread would be UB/deadlock).
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
#if defined(UDR_DEADLOCK_CHECK)
  EXPECT_EQ(common::lockorder::HeldCount(), 0);
#endif
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu("raii.trylock");
  mu.Lock();
  std::thread other([&mu] {
    // Held by the main thread: a try from another thread must fail without
    // blocking and without touching the order graph.
    EXPECT_FALSE(mu.TryLock());
  });
  other.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST(CondVarTest, PredicateWaitHandshake) {
  Mutex mu("condvar.handshake");
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
#if defined(UDR_DEADLOCK_CHECK)
  EXPECT_EQ(common::lockorder::HeldCount(), 0);
#endif
}

// ---------------------------------------------------------------------------
// SpscQueue owner-thread asserts
// ---------------------------------------------------------------------------

#if defined(UDR_DEADLOCK_CHECK)

TEST(SpscOwnerCheckTest, WrongThreadProducerAborts) {
  // Death tests that spawn threads need the exec-based style.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        exec::SpscQueue<int> q(8);
        ASSERT_TRUE(q.TryPush(1));  // Binds the producer role to this thread.
        std::thread intruder([&q] { (void)q.TryPush(2); });
        intruder.join();
      },
      "SpscQueue producer.*two threads");
}

TEST(SpscOwnerCheckTest, WrongThreadConsumerAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        exec::SpscQueue<int> q(8);
        int out = 0;
        (void)q.TryPop(&out);  // Binds the consumer role to this thread.
        std::thread intruder([&q] {
          int v = 0;
          (void)q.TryPop(&v);
        });
        intruder.join();
      },
      "SpscQueue consumer.*two threads");
}

TEST(SpscOwnerCheckTest, DistinctProducerAndConsumerThreadsAreFine) {
  exec::SpscQueue<int> q(64);
  std::thread producer([&q] {
    for (int i = 0; i < 1000; ++i) {
      int v = i;
      while (!q.TryPush(std::move(v))) std::this_thread::yield();
    }
  });
  int expected = 0;
  int out = 0;
  while (expected < 1000) {
    if (q.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

#endif  // UDR_DEADLOCK_CHECK

}  // namespace
}  // namespace udr
