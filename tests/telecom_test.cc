// Unit tests for src/telecom: subscriber generation, front-end procedures
// (op counts and latency behaviour), the Provisioning System (single
// transaction, batch, backlog) and the pre-UDC baseline.

#include <gtest/gtest.h>

#include "telecom/front_end.h"
#include "telecom/pre_udc.h"
#include "telecom/provisioning.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"

namespace udr::telecom {
namespace {

using workload::Testbed;
using workload::TestbedOptions;

// ---------------------------------------------------------------------------
// SubscriberFactory
// ---------------------------------------------------------------------------

TEST(SubscriberFactoryTest, DeterministicByIndex) {
  SubscriberFactory f1(42), f2(42);
  Subscriber a = f1.Make(7);
  Subscriber b = f2.Make(7);
  EXPECT_EQ(a.imsi, b.imsi);
  EXPECT_EQ(a.msisdn, b.msisdn);
  EXPECT_TRUE(a.profile == b.profile);
}

TEST(SubscriberFactoryTest, IdentitiesFollowNumberingPlans) {
  SubscriberFactory f(42, /*mcc=*/214, /*mnc=*/5, /*cc=*/34);
  Subscriber s = f.Make(0);
  EXPECT_EQ(s.imsi, "214050000000001");
  EXPECT_EQ(s.imsi.size(), 15u);  // E.212: 15 digits.
  EXPECT_EQ(s.msisdn.substr(0, 3), "+34");
  EXPECT_NE(s.impi.find("ims.mnc005.mcc214"), std::string::npos);
  ASSERT_EQ(s.impus.size(), 2u);
  EXPECT_EQ(s.impus[0].substr(0, 4), "sip:");
  EXPECT_EQ(s.impus[1].substr(0, 4), "tel:");
}

TEST(SubscriberFactoryTest, UniqueAcrossIndices) {
  SubscriberFactory f(42);
  EXPECT_NE(f.ImsiOf(1), f.ImsiOf(2));
  EXPECT_NE(f.MsisdnOf(1), f.MsisdnOf(2));
}

TEST(SubscriberFactoryTest, ProfileHasServiceData) {
  SubscriberFactory f(42);
  Subscriber s = f.Make(3);
  EXPECT_TRUE(s.profile.Has(attr::kAuthKey));
  EXPECT_TRUE(s.profile.Has(attr::kOdbPremium));
  EXPECT_TRUE(s.profile.Has(attr::kTeleservices));
  EXPECT_TRUE(s.profile.Has(attr::kRegistrationState));
  // 32 hex chars of Ki.
  auto ki = s.profile.Get(attr::kAuthKey);
  ASSERT_TRUE(ki.has_value());
  EXPECT_EQ(std::get<std::string>(*ki).size(), 32u);
}

TEST(SubscriberFactoryTest, SpecCarriesAllIdentities) {
  SubscriberFactory f(42);
  auto spec = f.MakeSpec(5, /*home_site=*/2);
  // IMSI + MSISDN + IMPI + 2 IMPUs.
  EXPECT_EQ(spec.identities.size(), 5u);
  ASSERT_TRUE(spec.home_site.has_value());
  EXPECT_EQ(*spec.home_site, 2u);
  EXPECT_TRUE(spec.profile.Has(attr::kHomeSite));
}

// ---------------------------------------------------------------------------
// Front-end procedures: op counts match the paper's 1-3 (GSM) and 5-6 (IMS)
// ---------------------------------------------------------------------------

class FeTest : public ::testing::Test {
 protected:
  FeTest() : bed_(MakeOptions()) {
    bed_.ProvisionDirect(0, 10);
    bed_.clock().Advance(Seconds(1));
    bed_.udr().CatchUpAllPartitions();
  }
  static TestbedOptions MakeOptions() {
    TestbedOptions o;
    o.sites = 3;
    return o;
  }
  Subscriber Sub(uint64_t i) { return bed_.factory().Make(i); }
  Testbed bed_;
};

TEST_F(FeTest, GsmProceduresUse1To3Ops) {
  HlrFe fe(0, &bed_.udr());
  Subscriber s = Sub(0);
  auto auth = fe.Authenticate(s.ImsiId());
  EXPECT_TRUE(auth.ok());
  EXPECT_EQ(auth.ldap_ops, 1);
  auto ul = fe.UpdateLocation(s.ImsiId(), "vlr-1", 100);
  EXPECT_TRUE(ul.ok());
  EXPECT_EQ(ul.ldap_ops, 2);
  auto sri = fe.SendRoutingInfo(s.MsisdnId());
  EXPECT_TRUE(sri.ok());
  EXPECT_EQ(sri.ldap_ops, 2);
  auto sms = fe.SmsRouting(s.MsisdnId());
  EXPECT_TRUE(sms.ok());
  EXPECT_EQ(sms.ldap_ops, 1);
  EXPECT_EQ(fe.procedures_ok(), 4);
}

TEST_F(FeTest, ImsProceduresUse5To6Ops) {
  HssFe fe(0, &bed_.udr());
  Subscriber s = Sub(1);
  auto reg = fe.ImsRegister(s.ImpuId(), "scscf-0");
  EXPECT_TRUE(reg.ok());
  EXPECT_EQ(reg.ldap_ops, 6);  // "5 or 6 LDAP read/write operations".
  auto loc = fe.ImsLocate(s.ImpuId());
  EXPECT_TRUE(loc.ok());
  EXPECT_EQ(loc.ldap_ops, 2);
}

TEST_F(FeTest, ProcedureLatencyMeetsResponsivenessTarget) {
  // Req. 4: 10 ms average for index-based single-subscriber queries; a whole
  // local procedure stays well within it.
  HlrFe fe(0, &bed_.udr());
  Subscriber s = Sub(2);
  auto r = fe.Authenticate(s.ImsiId());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.latency, Millis(10));
}

TEST_F(FeTest, UnknownSubscriberFailsCleanly) {
  HlrFe fe(0, &bed_.udr());
  location::Identity ghost{location::IdentityType::kImsi, "999999"};
  auto r = fe.Authenticate(ghost);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fe.procedures_failed(), 1);
}

TEST_F(FeTest, WriteFailureMarksProcedureFailed) {
  Subscriber s = Sub(3);
  auto loc = bed_.udr().AuthoritativeLookup(s.ImsiId());
  ASSERT_TRUE(loc.ok());
  sim::SiteId master_site =
      bed_.udr().partition(loc->partition)->master_site();
  // FE on a different site, partitioned from the master: UL write fails.
  sim::SiteId fe_site = (master_site + 1) % 3;
  bed_.network().partitions().CutLink(fe_site, master_site, bed_.clock().Now(),
                                      bed_.clock().Now() + Seconds(30));
  HlrFe fe(fe_site, &bed_.udr());
  auto ul = fe.UpdateLocation(s.ImsiId(), "vlr-x", 1);
  EXPECT_FALSE(ul.ok());
  EXPECT_GE(ul.failed_ops, 1);
}

// ---------------------------------------------------------------------------
// ProvisioningSystem
// ---------------------------------------------------------------------------

class PsTest : public ::testing::Test {
 protected:
  PsTest() : bed_(MakeOptions()), ps_({0, 0}, &bed_.udr(), &bed_.factory()) {}
  static TestbedOptions MakeOptions() {
    TestbedOptions o;
    o.sites = 3;
    return o;
  }
  Testbed bed_;
  ProvisioningSystem ps_;
};

TEST_F(PsTest, ProvisionIsOneLdapOperation) {
  auto r = ps_.Provision(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ldap_ops, 1);  // One transaction: the UDC simplification.
  EXPECT_EQ(ps_.provisioned(), 1);
  EXPECT_EQ(bed_.udr().SubscriberCount(), 1);
}

TEST_F(PsTest, ProvisionDuplicateFails) {
  ASSERT_TRUE(ps_.Provision(0).ok());
  auto dup = ps_.Provision(0);
  EXPECT_TRUE(dup.status.IsAlreadyExists());
}

TEST_F(PsTest, DeprovisionRemovesSubscriber) {
  ASSERT_TRUE(ps_.Provision(0).ok());
  ASSERT_TRUE(ps_.Deprovision(0).ok());
  EXPECT_EQ(bed_.udr().SubscriberCount(), 0);
}

TEST_F(PsTest, ServiceManagementWrites) {
  ASSERT_TRUE(ps_.Provision(0).ok());
  EXPECT_TRUE(ps_.SetPremiumBarring(0, true).ok());
  auto cfu = ps_.SetCallForwarding(0, "+34911111111");
  EXPECT_TRUE(cfu.ok());
  EXPECT_EQ(cfu.ldap_ops, 2);  // Master-only read + write.
}

TEST_F(PsTest, BatchCompletesCleanly) {
  auto report = ps_.RunBatch(0, 50, /*rate=*/100.0, /*stop_on_failure=*/true);
  EXPECT_EQ(report.attempted, 50);
  EXPECT_EQ(report.succeeded, 50);
  EXPECT_EQ(report.failed, 0);
  EXPECT_FALSE(report.aborted);
  EXPECT_GE(report.duration(), Millis(490));  // >= 49 x 10ms pacing.
}

TEST_F(PsTest, ThirtySecondGlitchKillsLongBatch) {
  // §4.1: "a network glitch as short as 30 seconds may cause a batch that's
  // been running for hours to fail". PS at site 0, partition cuts site 0
  // from the rest mid-batch; subscribers place round-robin so most masters
  // sit on remote sites.
  MicroTime glitch_start = bed_.clock().Now() + Seconds(5);
  bed_.network().partitions().CutBetween({0}, {1, 2}, glitch_start,
                                         glitch_start + Seconds(30));
  auto report = ps_.RunBatch(0, 100000, /*rate=*/20.0, /*stop_on_failure=*/true);
  EXPECT_TRUE(report.aborted);
  EXPECT_GT(report.skipped, 0);
  EXPECT_LT(report.succeeded, 200);  // Died within the first seconds.
  EXPECT_GT(report.manual_interventions(), 0);
}

TEST_F(PsTest, RetryRidesOutFailuresWithoutAbort) {
  MicroTime glitch_start = bed_.clock().Now() + Seconds(2);
  bed_.network().partitions().CutBetween({0}, {1, 2}, glitch_start,
                                         glitch_start + Seconds(5));
  auto report = ps_.RunBatch(0, 200, /*rate=*/20.0, /*stop_on_failure=*/false);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.attempted, 200);
  EXPECT_GT(report.failed, 0);        // Ops during the glitch failed...
  EXPECT_GT(report.succeeded, 100);   // ...but the batch finished.
}

TEST_F(PsTest, BacklogStableWhenServiceFasterThanArrivals) {
  // Provisioning writes that land on a remote master take ~30ms; 10/s
  // arrivals (100ms gap) keep the queue empty.
  auto report = ps_.RunBacklog(Seconds(10), /*arrival_rate=*/10.0,
                               /*capacity=*/1000);
  EXPECT_GT(report.arrivals, 80);
  EXPECT_EQ(report.dropped, 0);
  EXPECT_LE(report.max_depth, 3);
  EXPECT_EQ(report.final_depth, 0);
}

TEST_F(PsTest, BacklogOverflowsUnderSlowService) {
  // Slow every provisioning transaction down by forcing WAL-sync commits
  // with a large penalty: service time ~54ms, arrivals at 100/s.
  TestbedOptions o;
  o.sites = 3;
  o.udr.se_template.wal_sync_commit = true;
  o.udr.se_template.wal_sync_penalty = Millis(50);
  Testbed slow_bed(o);
  ProvisioningSystem slow_ps({0, 0}, &slow_bed.udr(), &slow_bed.factory());
  auto report = slow_ps.RunBacklog(Seconds(20), /*arrival_rate=*/100.0,
                                   /*capacity=*/50);
  EXPECT_GT(report.max_depth, 40);
  EXPECT_GT(report.dropped, 0);  // "If this back-log overflows ... fatal."
}

// ---------------------------------------------------------------------------
// Pre-UDC baseline
// ---------------------------------------------------------------------------

class PreUdcTest : public ::testing::Test {
 protected:
  PreUdcTest() {
    sim::LatencyConfig lc;
    network_ = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock_);
    PreUdcConfig cfg;
    cfg.hlr_sites = {0, 1, 2};
    cfg.slf_sites = {0, 1, 2};
    net_ = std::make_unique<PreUdcNetwork>(cfg, network_.get());
  }
  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<PreUdcNetwork> net_;
  SubscriberFactory factory_{42};
};

TEST_F(PreUdcTest, ProvisioningWritesEveryNode) {
  auto outcome = net_->Provision(factory_.Make(0), /*ps_site=*/0);
  ASSERT_TRUE(outcome.status.ok());
  // 1 HLR write + 3 SLF writes vs UDC's single transaction.
  EXPECT_EQ(outcome.writes_attempted, 4);
  EXPECT_EQ(outcome.writes_succeeded, 4);
  EXPECT_FALSE(outcome.partial);
  EXPECT_TRUE(net_->GloballyConsistent());
}

TEST_F(PreUdcTest, NodeFailureLeavesPartialState) {
  net_->SetSlfUp(2, false);
  auto outcome = net_->Provision(factory_.Make(0), 0);
  EXPECT_TRUE(outcome.partial);
  EXPECT_EQ(outcome.writes_succeeded, 3);
  EXPECT_EQ(net_->partial_states(), 1);
  EXPECT_EQ(net_->manual_repairs(), 1);
  EXPECT_FALSE(net_->GloballyConsistent());
}

TEST_F(PreUdcTest, PartitionDuringProvisioningLeavesPartialState) {
  // PS at site 0, HLR of this subscriber may be anywhere; cut site 2 off.
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(1));
  auto outcome = net_->Provision(factory_.Make(0), 0);
  EXPECT_TRUE(outcome.partial);           // SLF at site 2 unreachable.
  EXPECT_FALSE(net_->GloballyConsistent());
}

TEST_F(PreUdcTest, FeReadResolvesThroughSlf) {
  ASSERT_TRUE(net_->Provision(factory_.Make(0), 0).status.ok());
  Subscriber s = factory_.Make(0);
  auto read = net_->FeRead(s.ImsiId(), /*fe_site=*/1);
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.hops, 2);  // SLF resolve + HLR read.
}

TEST_F(PreUdcTest, HlrSiloFailureTakesSubscribersDown) {
  ASSERT_TRUE(net_->Provision(factory_.Make(0), 0).status.ok());
  Subscriber s = factory_.Make(0);
  // Find and fail the owning HLR: the subscriber loses service even though
  // two perfectly healthy HLR nodes remain (the silo property, §1).
  for (size_t h = 0; h < net_->hlr_count(); ++h) net_->SetHlrUp(h, false);
  auto read = net_->FeRead(s.ImsiId(), 1);
  EXPECT_TRUE(read.status.IsUnavailable());
}

TEST_F(PreUdcTest, CleanFailureIsNotPartial) {
  // Everything unreachable: no write lands, network stays consistent.
  network_->partitions().IsolateSite(0, 3, clock_.Now(),
                                     clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(1));
  net_->SetHlrUp(0, false);
  net_->SetSlfUp(0, false);
  auto outcome = net_->Provision(factory_.Make(0), 0);
  EXPECT_FALSE(outcome.partial);
  EXPECT_TRUE(outcome.status.IsUnavailable());
  EXPECT_EQ(net_->partial_states(), 0);
  EXPECT_TRUE(net_->GloballyConsistent());
}

}  // namespace
}  // namespace udr::telecom
