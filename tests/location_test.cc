// Unit tests for src/location: identities, the three location stage
// realizations and their cost/availability models.

#include <gtest/gtest.h>

#include <set>

#include "location/identity.h"
#include "location/location_stage.h"

namespace udr::location {
namespace {

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

TEST(IdentityTest, TypeNames) {
  EXPECT_STREQ(IdentityTypeName(IdentityType::kImsi), "IMSI");
  EXPECT_STREQ(IdentityTypeName(IdentityType::kMsisdn), "MSISDN");
  EXPECT_STREQ(IdentityTypeName(IdentityType::kImpu), "IMPU");
  EXPECT_STREQ(IdentityTypeName(IdentityType::kImpi), "IMPI");
}

TEST(IdentityTest, EqualityAndOrdering) {
  Identity a{IdentityType::kImsi, "214"};
  Identity b{IdentityType::kImsi, "214"};
  Identity c{IdentityType::kMsisdn, "214"};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);  // Type ordering.
}

TEST(IdentityTest, HashDistinguishesTypeAndValue) {
  Identity a{IdentityType::kImsi, "214"};
  Identity b{IdentityType::kMsisdn, "214"};
  Identity c{IdentityType::kImsi, "215"};
  EXPECT_NE(HashIdentity(a), HashIdentity(b));
  EXPECT_NE(HashIdentity(a), HashIdentity(c));
  EXPECT_EQ(HashIdentity(a), HashIdentity(Identity{IdentityType::kImsi, "214"}));
}

TEST(IdentityTest, ToStringIncludesType) {
  Identity a{IdentityType::kImpu, "sip:x"};
  EXPECT_EQ(a.ToString(), "IMPU:sip:x");
}

// ---------------------------------------------------------------------------
// ProvisionedLocationStage
// ---------------------------------------------------------------------------

TEST(ProvisionedStageTest, BindResolveUnbind) {
  ProvisionedLocationStage stage;
  Identity id{IdentityType::kImsi, "214050000000001"};
  LocationEntry entry{42, 3};
  ASSERT_TRUE(stage.Bind(id, entry).ok());
  ResolveResult r = stage.Resolve(id, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.entry, entry);
  EXPECT_GT(r.cost, 0);
  ASSERT_TRUE(stage.Unbind(id).ok());
  EXPECT_TRUE(stage.Resolve(id, 0).status.IsNotFound());
  EXPECT_TRUE(stage.Unbind(id).IsNotFound());
}

TEST(ProvisionedStageTest, SupportsAllIdentityIndexes) {
  ProvisionedLocationStage stage;
  LocationEntry e{1, 0};
  ASSERT_TRUE(stage.Bind({IdentityType::kImsi, "214"}, e).ok());
  ASSERT_TRUE(stage.Bind({IdentityType::kMsisdn, "+34600"}, e).ok());
  ASSERT_TRUE(stage.Bind({IdentityType::kImpu, "sip:a"}, e).ok());
  ASSERT_TRUE(stage.Bind({IdentityType::kImpi, "a@realm"}, e).ok());
  EXPECT_EQ(stage.EntryCount(), 4);
  // Same value under different types resolves independently.
  EXPECT_TRUE(stage.Resolve({IdentityType::kImsi, "214"}, 0).status.ok());
  EXPECT_TRUE(
      stage.Resolve({IdentityType::kMsisdn, "214"}, 0).status.IsNotFound());
}

TEST(ProvisionedStageTest, LookupCostGrowsLogarithmically) {
  LocationCostModel model;
  model.map_base = Micros(2);
  model.map_per_log2 = Micros(1);
  ProvisionedLocationStage stage(model);
  LocationEntry e{1, 0};
  for (int i = 0; i < 1024; ++i) {
    stage.Bind({IdentityType::kImsi, "s" + std::to_string(i)}, e);
  }
  MicroDuration cost_1k = stage.Resolve({IdentityType::kImsi, "s5"}, 0).cost;
  for (int i = 1024; i < 65536; ++i) {
    stage.Bind({IdentityType::kImsi, "s" + std::to_string(i)}, e);
  }
  MicroDuration cost_64k = stage.Resolve({IdentityType::kImsi, "s5"}, 0).cost;
  // log2(64k)=16 vs log2(1k)=10: +6 comparisons at 1us each.
  EXPECT_EQ(cost_64k - cost_1k, Micros(6));
}

TEST(ProvisionedStageTest, MemoryGrowsPerEntry) {
  ProvisionedLocationStage stage;
  EXPECT_EQ(stage.ApproxBytes(), 0);
  stage.Bind({IdentityType::kImsi, "214050000000001"}, {1, 0});
  int64_t one = stage.ApproxBytes();
  EXPECT_GT(one, 64);
  stage.Bind({IdentityType::kMsisdn, "+34600000001"}, {1, 0});
  EXPECT_GT(stage.ApproxBytes(), one);
}

TEST(ProvisionedStageTest, ScaleOutSyncWindowBlocksResolution) {
  LocationCostModel model;
  model.sync_per_entry = Micros(2);
  ProvisionedLocationStage peer(model);
  for (int i = 0; i < 1000; ++i) {
    peer.Bind({IdentityType::kImsi, "s" + std::to_string(i)}, {1, 0});
  }
  ProvisionedLocationStage fresh(model);
  MicroDuration window = fresh.BeginSyncFrom(peer, /*now=*/Seconds(10));
  EXPECT_EQ(window, 1000 * Micros(2));
  EXPECT_TRUE(fresh.Syncing(Seconds(10)));
  // During the window: Unavailable (the §3.4.2 R hit).
  EXPECT_TRUE(fresh.Resolve({IdentityType::kImsi, "s5"}, Seconds(10))
                  .status.IsUnavailable());
  // After: fully synced.
  MicroTime done = Seconds(10) + window;
  EXPECT_FALSE(fresh.Syncing(done));
  EXPECT_TRUE(fresh.Resolve({IdentityType::kImsi, "s5"}, done).status.ok());
  EXPECT_EQ(fresh.EntryCount(), 1000);
}

TEST(ProvisionedStageTest, SyncWindowScalesWithEntries) {
  ProvisionedLocationStage small, big, fresh1, fresh2;
  for (int i = 0; i < 100; ++i) {
    small.Bind({IdentityType::kImsi, "s" + std::to_string(i)}, {1, 0});
  }
  for (int i = 0; i < 10000; ++i) {
    big.Bind({IdentityType::kImsi, "b" + std::to_string(i)}, {1, 0});
  }
  EXPECT_EQ(fresh2.BeginSyncFrom(big, 0) / fresh1.BeginSyncFrom(small, 0), 100);
}

// ---------------------------------------------------------------------------
// CachedLocationStage
// ---------------------------------------------------------------------------

class CachedStageTest : public ::testing::Test {
 protected:
  CachedStageTest()
      : stage_(
            [this](const Identity& id) -> StatusOr<LocationEntry> {
              auto it = truth_.find(id.value);
              if (it == truth_.end()) return Status::NotFound("no");
              return it->second;
            },
            [this]() { return se_count_; }, model_) {}

  LocationCostModel model_;
  std::map<std::string, LocationEntry> truth_;
  int se_count_ = 8;
  CachedLocationStage stage_;
};

TEST_F(CachedStageTest, MissBroadcastsThenCaches) {
  truth_["214"] = {7, 2};
  ResolveResult miss = stage_.Resolve({IdentityType::kImsi, "214"}, 0);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_TRUE(miss.cache_miss);
  EXPECT_EQ(miss.entry.key, 7u);
  EXPECT_EQ(miss.cost, model_.broadcast_rtt + 8 * model_.broadcast_per_se);
  ResolveResult hit = stage_.Resolve({IdentityType::kImsi, "214"}, 0);
  EXPECT_FALSE(hit.cache_miss);
  EXPECT_EQ(hit.cost, model_.map_base);
  EXPECT_EQ(stage_.cache_hits(), 1);
  EXPECT_EQ(stage_.cache_misses(), 1);
}

TEST_F(CachedStageTest, MissCostGrowsWithSeCount) {
  truth_["a"] = {1, 0};
  MicroDuration cost8 = stage_.Resolve({IdentityType::kImsi, "a"}, 0).cost;
  stage_.InvalidateAll();
  se_count_ = 256;
  MicroDuration cost256 = stage_.Resolve({IdentityType::kImsi, "a"}, 0).cost;
  EXPECT_EQ(cost256 - cost8, 248 * model_.broadcast_per_se);
}

TEST_F(CachedStageTest, UnknownIdentityStaysUncached) {
  ResolveResult r = stage_.Resolve({IdentityType::kImsi, "ghost"}, 0);
  EXPECT_TRUE(r.status.IsNotFound());
  EXPECT_EQ(stage_.EntryCount(), 0);
}

TEST_F(CachedStageTest, InvalidateAllEmptiesCache) {
  truth_["a"] = {1, 0};
  stage_.Resolve({IdentityType::kImsi, "a"}, 0);
  EXPECT_EQ(stage_.EntryCount(), 1);
  stage_.InvalidateAll();
  EXPECT_EQ(stage_.EntryCount(), 0);
  ResolveResult r = stage_.Resolve({IdentityType::kImsi, "a"}, 0);
  EXPECT_TRUE(r.cache_miss);
}

TEST_F(CachedStageTest, BindSeedsCache) {
  ASSERT_TRUE(stage_.Bind({IdentityType::kImsi, "x"}, {5, 1}).ok());
  ResolveResult r = stage_.Resolve({IdentityType::kImsi, "x"}, 0);
  EXPECT_FALSE(r.cache_miss);
  EXPECT_EQ(r.entry.key, 5u);
}

// ---------------------------------------------------------------------------
// ConsistentHashLocationStage
// ---------------------------------------------------------------------------

TEST(ConsistentHashStageTest, ResolveIsConstantCostAndStateless) {
  LocationCostModel model;
  ConsistentHashLocationStage stage(16, 64, model);
  ResolveResult r = stage.Resolve({IdentityType::kImsi, "214"}, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.cost, model.hash_lookup);
  EXPECT_EQ(stage.EntryCount(), 0);  // No per-subscriber state.
  EXPECT_LT(r.entry.partition, 16u);
}

TEST(ConsistentHashStageTest, DeterministicPlacement) {
  ConsistentHashLocationStage a(16), b(16);
  Identity id{IdentityType::kImsi, "214050000000042"};
  EXPECT_EQ(a.PartitionOf(id), b.PartitionOf(id));
}

TEST(ConsistentHashStageTest, SpreadsLoadAcrossPartitions) {
  ConsistentHashLocationStage stage(8, 128);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[stage.PartitionOf({IdentityType::kImsi, "s" + std::to_string(i)})];
  }
  for (int c : counts) {
    EXPECT_GT(c, 8000 / 8 / 3) << "partition starved";
    EXPECT_LT(c, 8000 / 8 * 3) << "partition overloaded";
  }
}

TEST(ConsistentHashStageTest, DifferentIdentityTypesHashDifferently) {
  // The paper's objection: each identity of a subscriber lands somewhere
  // else, so the data would need one full replica per identity type.
  ConsistentHashLocationStage stage(64, 128);
  int diverging = 0;
  for (int i = 0; i < 200; ++i) {
    std::string v = std::to_string(1000000 + i);
    if (stage.PartitionOf({IdentityType::kImsi, v}) !=
        stage.PartitionOf({IdentityType::kMsisdn, v})) {
      ++diverging;
    }
  }
  EXPECT_GT(diverging, 150);
  EXPECT_EQ(stage.RequiredDataReplicas(), kIdentityTypeCount);
}

TEST(ConsistentHashStageTest, RejectsSelectivePlacement) {
  ConsistentHashLocationStage stage(16);
  Identity id{IdentityType::kImsi, "214"};
  uint32_t natural = stage.PartitionOf(id);
  LocationEntry wrong{1, (natural + 1) % 16};
  EXPECT_TRUE(stage.Bind(id, wrong).IsFailedPrecondition());
  LocationEntry right{1, natural};
  EXPECT_TRUE(stage.Bind(id, right).ok());
  EXPECT_FALSE(stage.SupportsSelectivePlacement());
}

TEST(ConsistentHashStageTest, MemoryIsRingOnly) {
  ConsistentHashLocationStage small(4, 16), large(256, 128);
  EXPECT_EQ(small.ApproxBytes(), 4 * 16 * 12);
  EXPECT_EQ(large.ApproxBytes(), 256 * 128 * 12);
}

}  // namespace
}  // namespace udr::location
