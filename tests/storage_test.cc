// Unit tests for src/storage: records, the store, the commit log,
// transactions (isolation anomalies included) and the storage element's
// durability/capacity model.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "storage/commit_log.h"
#include "storage/record.h"
#include "storage/record_store.h"
#include "storage/storage_element.h"
#include "storage/transaction.h"

namespace udr::storage {
namespace {

// ---------------------------------------------------------------------------
// Record / Value
// ---------------------------------------------------------------------------

TEST(ValueTest, ToStringRendersAllAlternatives) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(true)), "true");
  EXPECT_EQ(ValueToString(Value(std::string("x"))), "x");
  EXPECT_EQ(ValueToString(Value(std::vector<std::string>{"a", "b"})), "[a, b]");
}

TEST(ValueTest, BytesScaleWithContent) {
  EXPECT_EQ(ValueBytes(Value(int64_t{1})), 8);
  EXPECT_GT(ValueBytes(Value(std::string(100, 'x'))), 100);
  EXPECT_GT(ValueBytes(Value(std::vector<std::string>{"aaa", "bbb"})),
            ValueBytes(Value(std::vector<std::string>{"a"})));
}

TEST(RecordTest, SetGetRemove) {
  Record r;
  r.Set("msisdn", std::string("+34600"), 100, 1);
  EXPECT_TRUE(r.Has("msisdn"));
  auto v = r.Get("msisdn");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(ValueToString(*v), "+34600");
  const Attribute* a = r.Find("msisdn");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->modified_at, 100);
  EXPECT_EQ(a->writer, 1u);
  EXPECT_TRUE(r.Remove("msisdn"));
  EXPECT_FALSE(r.Has("msisdn"));
  EXPECT_FALSE(r.Remove("msisdn"));
}

TEST(RecordTest, LastModifiedIsMaxOverAttributes) {
  Record r;
  r.Set("a", int64_t{1}, 100, 0);
  r.Set("b", int64_t{2}, 300, 0);
  r.Set("c", int64_t{3}, 200, 0);
  EXPECT_EQ(r.LastModified(), 300);
}

TEST(RecordTest, ApproxBytesGrowsWithAttributes) {
  Record r;
  int64_t empty = r.ApproxBytes();
  r.Set("authkey", std::string(32, 'f'), 0, 0);
  EXPECT_GT(r.ApproxBytes(), empty + 32);
}

TEST(RecordTest, ContentEqualityIgnoresVersion) {
  Record a, b;
  a.Set("x", int64_t{1}, 5, 0);
  b.Set("x", int64_t{1}, 5, 0);
  b.set_version(99);
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// RecordStore
// ---------------------------------------------------------------------------

TEST(RecordStoreTest, SetAttributeCreatesRecord) {
  RecordStore s;
  EXPECT_FALSE(s.Contains(7));
  s.SetAttribute(7, "imsi", std::string("214"), 10, 0);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_EQ(s.Count(), 1);
  const Record* r = s.Find(7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->version(), 1u);
}

TEST(RecordStoreTest, VersionBumpsOnEveryWrite) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  s.SetAttribute(1, "a", int64_t{2}, 1, 0);
  s.RemoveAttribute(1, "a");
  EXPECT_EQ(s.Find(1)->version(), 3u);
}

TEST(RecordStoreTest, ByteAccountingTracksMutations) {
  RecordStore s;
  EXPECT_EQ(s.ApproxBytes(), 0);
  s.SetAttribute(1, "blob", std::string(1000, 'x'), 0, 0);
  int64_t with = s.ApproxBytes();
  EXPECT_GT(with, 1000);
  s.RemoveAttribute(1, "blob");
  EXPECT_LT(s.ApproxBytes(), with - 900);
  s.DeleteRecord(1);
  EXPECT_EQ(s.ApproxBytes(), 0);
}

TEST(RecordStoreTest, MutateRecordKeepsByteAccountingInSync) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  int64_t small = s.ApproxBytes();
  // Grow the record behind the store's back — the scoped re-accounting in
  // MutateRecord must still see the delta.
  ASSERT_TRUE(s.MutateRecord(
      1, [](Record& r) { r.Set("blob", std::string(1000, 'x'), 1, 0); }));
  EXPECT_GT(s.ApproxBytes(), small + 1000);
  ASSERT_TRUE(s.MutateRecord(1, [](Record& r) { r.Remove("blob"); }));
  EXPECT_EQ(s.ApproxBytes(), small);
  // Absent key: fn not invoked, false returned.
  EXPECT_FALSE(s.MutateRecord(99, [](Record&) { FAIL(); }));
}

TEST(RecordStoreTest, MutateRecordBumpsVersion) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  uint64_t v = s.Find(1)->version();
  ASSERT_TRUE(s.MutateRecord(1, [](Record& r) { r.Set("b", int64_t{2}, 1, 0); }));
  EXPECT_GT(s.Find(1)->version(), v);
}

TEST(RecordStoreTest, DeleteRecord) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  EXPECT_TRUE(s.DeleteRecord(1));
  EXPECT_FALSE(s.DeleteRecord(1));
  EXPECT_EQ(s.Count(), 0);
}

TEST(RecordStoreTest, PutRecordReplaces) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  Record r;
  r.Set("b", int64_t{2}, 0, 0);
  s.PutRecord(1, r);
  EXPECT_FALSE(s.Find(1)->Has("a"));
  EXPECT_TRUE(s.Find(1)->Has("b"));
}

TEST(RecordStoreTest, ForEachVisitsAll) {
  RecordStore s;
  for (RecordKey k = 0; k < 10; ++k) {
    s.SetAttribute(k, "a", static_cast<int64_t>(k), 0, 0);
  }
  int64_t visited = 0;
  s.ForEach([&](RecordKey, const Record&) { ++visited; });
  EXPECT_EQ(visited, 10);
}

// ---------------------------------------------------------------------------
// CommitLog
// ---------------------------------------------------------------------------

WriteOp Upsert(RecordKey key, const std::string& attr, Value v, MicroTime t) {
  WriteOp op;
  op.kind = WriteKind::kUpsertAttr;
  op.key = key;
  op.attr_id = InternAttr(attr);
  op.attribute = {std::move(v), t, 0};
  return op;
}

TEST(CommitLogTest, AppendAssignsMonotonicSeq) {
  CommitLog log;
  EXPECT_EQ(log.LastSeq(), 0u);
  EXPECT_EQ(log.Append(10, 0, {Upsert(1, "a", int64_t{1}, 10)}), 1u);
  EXPECT_EQ(log.Append(20, 0, {Upsert(1, "a", int64_t{2}, 20)}), 2u);
  EXPECT_EQ(log.LastSeq(), 2u);
  EXPECT_EQ(log.At(1).commit_time, 10);
}

TEST(CommitLogTest, SeqAtTimeBinarySearch) {
  CommitLog log;
  log.Append(10, 0, {});
  log.Append(20, 0, {});
  log.Append(30, 0, {});
  EXPECT_EQ(log.SeqAtTime(5), 0u);
  EXPECT_EQ(log.SeqAtTime(10), 1u);
  EXPECT_EQ(log.SeqAtTime(25), 2u);
  EXPECT_EQ(log.SeqAtTime(1000), 3u);
}

TEST(CommitLogTest, ReplayRangeAppliesInOrder) {
  CommitLog log;
  log.Append(10, 0, {Upsert(1, "a", int64_t{1}, 10)});
  log.Append(20, 0, {Upsert(1, "a", int64_t{2}, 20)});
  log.Append(30, 0, {Upsert(2, "b", int64_t{3}, 30)});
  RecordStore s;
  log.ReplayRange(&s, 0, 2);
  EXPECT_EQ(ValueToString(*s.Find(1)->Get("a")), "2");
  EXPECT_FALSE(s.Contains(2));
  log.ReplayRange(&s, 2, 3);
  EXPECT_TRUE(s.Contains(2));
}

TEST(CommitLogTest, TruncateAfterDiscardsSuffix) {
  CommitLog log;
  log.Append(10, 0, {});
  log.Append(20, 0, {});
  log.Append(30, 0, {});
  log.TruncateAfter(1);
  EXPECT_EQ(log.LastSeq(), 1u);
  log.TruncateAfter(5);  // No-op beyond head.
  EXPECT_EQ(log.LastSeq(), 1u);
}

TEST(CommitLogTest, ApplyDeleteOp) {
  RecordStore s;
  s.SetAttribute(1, "a", int64_t{1}, 0, 0);
  WriteOp del;
  del.kind = WriteKind::kDeleteRecord;
  del.key = 1;
  ApplyWriteOp(&s, del);
  EXPECT_FALSE(s.Contains(1));
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

class TxnTest : public ::testing::Test {
 protected:
  RecordStore store_;
  CommitLog log_;
  TransactionManager mgr_{&store_, &log_, /*replica_id=*/3};
};

TEST_F(TxnTest, CommitAppliesAtomically) {
  Transaction txn = mgr_.Begin();
  ASSERT_TRUE(txn.SetAttribute(1, "imsi", std::string("214")).ok());
  ASSERT_TRUE(txn.SetAttribute(1, "msisdn", std::string("+34")).ok());
  ASSERT_TRUE(txn.SetAttribute(2, "imsi", std::string("215")).ok());
  EXPECT_FALSE(store_.Contains(1));  // Nothing visible before commit.
  auto seq = txn.Commit(100);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 1u);
  EXPECT_TRUE(store_.Contains(1));
  EXPECT_TRUE(store_.Contains(2));
  EXPECT_EQ(store_.Find(1)->Find("imsi")->modified_at, 100);
  EXPECT_EQ(store_.Find(1)->Find("imsi")->writer, 3u);
  EXPECT_EQ(log_.At(1).ops.size(), 3u);
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  Transaction txn = mgr_.Begin();
  ASSERT_TRUE(txn.SetAttribute(1, "a", int64_t{1}).ok());
  txn.Abort();
  EXPECT_FALSE(store_.Contains(1));
  EXPECT_EQ(log_.LastSeq(), 0u);
  EXPECT_EQ(mgr_.aborts(), 1);
}

TEST_F(TxnTest, DestructorAborts) {
  {
    Transaction txn = mgr_.Begin();
    ASSERT_TRUE(txn.SetAttribute(1, "a", int64_t{1}).ok());
  }
  EXPECT_FALSE(store_.Contains(1));
  EXPECT_EQ(mgr_.aborts(), 1);
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  Transaction txn = mgr_.Begin();
  ASSERT_TRUE(txn.SetAttribute(1, "a", int64_t{7}).ok());
  auto v = txn.GetAttribute(1, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ValueToString(*v), "7");
  txn.Abort();
}

TEST_F(TxnTest, ReadCommittedDoesNotSeeDirtyWrites) {
  store_.SetAttribute(1, "a", int64_t{1}, 0, 0);
  Transaction writer = mgr_.Begin();
  ASSERT_TRUE(writer.SetAttribute(1, "a", int64_t{99}).ok());

  Transaction reader = mgr_.Begin(IsolationLevel::kReadCommitted);
  auto v = reader.GetAttribute(1, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ValueToString(*v), "1");  // Committed value, not the dirty 99.
  reader.Abort();
  writer.Abort();
}

TEST_F(TxnTest, ReadUncommittedSeesDirtyWrites) {
  store_.SetAttribute(1, "a", int64_t{1}, 0, 0);
  Transaction writer = mgr_.Begin();
  ASSERT_TRUE(writer.SetAttribute(1, "a", int64_t{99}).ok());

  Transaction reader = mgr_.Begin(IsolationLevel::kReadUncommitted);
  auto v = reader.GetAttribute(1, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ValueToString(*v), "99");  // The dirty-read anomaly (§3.2).
  reader.Abort();
  writer.Abort();
}

TEST_F(TxnTest, DirtyReadCanObserveAbortedData) {
  // The canonical READ_UNCOMMITTED anomaly: the reader acted on data that
  // never committed.
  store_.SetAttribute(1, "barred", false, 0, 0);
  Transaction writer = mgr_.Begin();
  ASSERT_TRUE(writer.SetAttribute(1, "barred", true).ok());
  Transaction reader = mgr_.Begin(IsolationLevel::kReadUncommitted);
  auto dirty = reader.GetAttribute(1, "barred");
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(ValueToString(*dirty), "true");
  writer.Abort();  // The write never happened.
  auto after = reader.GetAttribute(1, "barred");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ValueToString(*after), "false");
  reader.Abort();
}

TEST_F(TxnTest, WriteWriteConflictAbortsSecondWriter) {
  Transaction a = mgr_.Begin();
  Transaction b = mgr_.Begin();
  ASSERT_TRUE(a.SetAttribute(1, "x", int64_t{1}).ok());
  Status st = b.SetAttribute(1, "x", int64_t{2});
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(mgr_.conflicts(), 1);
  // Different record: no conflict.
  EXPECT_TRUE(b.SetAttribute(2, "x", int64_t{2}).ok());
  a.Abort();
  // Lock released: b can now write record 1.
  EXPECT_TRUE(b.SetAttribute(1, "x", int64_t{3}).ok());
  ASSERT_TRUE(b.Commit(10).ok());
  EXPECT_EQ(ValueToString(*store_.Find(1)->Get("x")), "3");
}

TEST_F(TxnTest, ReadsNeverBlockOnWriteLocks) {
  // READ_COMMITTED chosen "to prevent locking from delaying reads" (§3.2).
  Transaction writer = mgr_.Begin();
  store_.SetAttribute(1, "a", int64_t{5}, 0, 0);
  ASSERT_TRUE(writer.SetAttribute(1, "a", int64_t{6}).ok());
  Transaction reader = mgr_.Begin();
  EXPECT_TRUE(reader.GetAttribute(1, "a").ok());  // Succeeds immediately.
  reader.Abort();
  writer.Abort();
}

TEST_F(TxnTest, EmptyCommitAppendsNothing) {
  Transaction txn = mgr_.Begin();
  auto seq = txn.Commit(5);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 0u);
  EXPECT_EQ(log_.LastSeq(), 0u);
}

TEST_F(TxnTest, DeleteRecordInTransaction) {
  store_.SetAttribute(1, "a", int64_t{1}, 0, 0);
  Transaction txn = mgr_.Begin();
  ASSERT_TRUE(txn.DeleteRecord(1).ok());
  EXPECT_FALSE(txn.RecordExists(1));     // Gone in own view.
  EXPECT_TRUE(store_.Contains(1));       // Still committed.
  ASSERT_TRUE(txn.Commit(10).ok());
  EXPECT_FALSE(store_.Contains(1));
}

TEST_F(TxnTest, SerializationOrderMatchesCommitOrder) {
  Transaction a = mgr_.Begin();
  Transaction b = mgr_.Begin();
  ASSERT_TRUE(a.SetAttribute(1, "x", int64_t{1}).ok());
  ASSERT_TRUE(b.SetAttribute(2, "y", int64_t{2}).ok());
  ASSERT_TRUE(b.Commit(10).ok());   // b commits first.
  ASSERT_TRUE(a.Commit(20).ok());
  EXPECT_EQ(log_.At(1).ops[0].key, 2u);
  EXPECT_EQ(log_.At(2).ops[0].key, 1u);
}

TEST_F(TxnTest, MoveTransfersOwnership) {
  Transaction a = mgr_.Begin();
  ASSERT_TRUE(a.SetAttribute(1, "x", int64_t{1}).ok());
  Transaction b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.active());
  ASSERT_TRUE(b.Commit(10).ok());
  EXPECT_TRUE(store_.Contains(1));
}

// ---------------------------------------------------------------------------
// StorageElement durability model
// ---------------------------------------------------------------------------

StorageElementConfig SmallSe() {
  StorageElementConfig cfg;
  cfg.name = "test-se";
  cfg.ram_budget_bytes = 1 << 20;
  cfg.checkpoint_period = Seconds(60);
  return cfg;
}

TEST(StorageElementTest, CheckpointTimesQuantized) {
  sim::SimClock clock;
  StorageElement se(SmallSe(), &clock);
  EXPECT_EQ(se.LastCheckpointTime(Seconds(59)), 0);
  EXPECT_EQ(se.LastCheckpointTime(Seconds(60)), Seconds(60));
  EXPECT_EQ(se.LastCheckpointTime(Seconds(185)), Seconds(180));
}

TEST(StorageElementTest, CrashLosesPostCheckpointCommits) {
  sim::SimClock clock;
  StorageElement se(SmallSe(), &clock);
  // Commit at t=10s (before checkpoint at 60s) and t=70s (after).
  clock.AdvanceTo(Seconds(10));
  {
    Transaction txn = se.Begin();
    ASSERT_TRUE(txn.SetAttribute(1, "a", int64_t{1}).ok());
    ASSERT_TRUE(txn.Commit(clock.Now()).ok());
  }
  clock.AdvanceTo(Seconds(70));
  {
    Transaction txn = se.Begin();
    ASSERT_TRUE(txn.SetAttribute(2, "b", int64_t{2}).ok());
    ASSERT_TRUE(txn.Commit(clock.Now()).ok());
  }
  clock.AdvanceTo(Seconds(90));
  CrashRecovery rec = se.CrashAndRecoverLocally(clock.Now());
  EXPECT_EQ(rec.last_seq_before_crash, 2u);
  EXPECT_EQ(rec.recovered_seq, 1u);  // Checkpoint at 60s captured seq 1 only.
  EXPECT_EQ(rec.lost_transactions, 1);
  EXPECT_EQ(rec.data_loss_window, Seconds(20));
  EXPECT_TRUE(se.store().Contains(1));
  EXPECT_FALSE(se.store().Contains(2));
  EXPECT_EQ(se.log().LastSeq(), 1u);
}

TEST(StorageElementTest, WalSyncModeLosesNothing) {
  sim::SimClock clock;
  StorageElementConfig cfg = SmallSe();
  cfg.wal_sync_commit = true;
  StorageElement se(cfg, &clock);
  clock.AdvanceTo(Seconds(10));
  {
    Transaction txn = se.Begin();
    ASSERT_TRUE(txn.SetAttribute(1, "a", int64_t{1}).ok());
    ASSERT_TRUE(txn.Commit(clock.Now()).ok());
  }
  clock.AdvanceTo(Seconds(30));
  CrashRecovery rec = se.CrashAndRecoverLocally(clock.Now());
  EXPECT_EQ(rec.lost_transactions, 0);
  EXPECT_TRUE(se.store().Contains(1));
}

TEST(StorageElementTest, WalSyncCostsLatency) {
  sim::SimClock clock;
  StorageElementConfig plain = SmallSe();
  StorageElementConfig synced = SmallSe();
  synced.wal_sync_commit = true;
  StorageElement a(plain, &clock), b(synced, &clock);
  EXPECT_GT(b.WriteServiceTime(), a.WriteServiceTime() + Millis(3));
  EXPECT_EQ(a.ReadServiceTime(), b.ReadServiceTime());  // Reads unaffected.
}

TEST(StorageElementTest, ShorterCheckpointPeriodSlowsEngine) {
  sim::SimClock clock;
  StorageElementConfig fast = SmallSe();
  fast.checkpoint_period = Minutes(5);
  StorageElementConfig busy = SmallSe();
  busy.checkpoint_period = Seconds(10);
  StorageElement a(fast, &clock), b(busy, &clock);
  EXPECT_GT(b.ReadServiceTime(), a.ReadServiceTime());
  EXPECT_GT(b.WriteServiceTime(), a.WriteServiceTime());
}

TEST(StorageElementTest, CapacityAdmission) {
  sim::SimClock clock;
  StorageElementConfig cfg = SmallSe();
  cfg.ram_budget_bytes = 4096;
  StorageElement se(cfg, &clock);
  EXPECT_TRUE(se.CheckCapacity(1000).ok());
  {
    Transaction txn = se.Begin();
    ASSERT_TRUE(txn.SetAttribute(1, "blob", std::string(3000, 'x')).ok());
    ASSERT_TRUE(txn.Commit(0).ok());
  }
  EXPECT_TRUE(se.CheckCapacity(2000).IsResourceExhausted());
  EXPECT_LT(se.FreeBytes(), 4096 - 3000);
}

TEST(StorageElementTest, SubscriberCapacityArithmetic) {
  sim::SimClock clock;
  StorageElementConfig cfg = SmallSe();
  cfg.ram_budget_bytes = 200LL * 1000 * 1000 * 1000;
  StorageElement se(cfg, &clock);
  // 200 GB / 100 KB per average profile = 2e6 subscribers (paper §3.5).
  EXPECT_EQ(se.SubscriberCapacity(100 * 1000), 2'000'000);
}

// ---------------------------------------------------------------------------
// Packed-layout properties: pack/unpack round trips and byte accounting
// ---------------------------------------------------------------------------

/// Random value spanning every alternative, with string sizes straddling the
/// SSO boundary (the interesting edge of the heap-byte model).
Value RandomValue(Rng& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return Value(static_cast<int64_t>(rng.Next()));
    case 1:
      return Value(rng.Uniform(2) == 0);
    case 2:
      return Value(std::string(rng.Uniform(40), 'a' + rng.Uniform(26)));
    default: {
      std::vector<std::string> items(rng.Uniform(4) + 1);
      for (auto& s : items) s.assign(rng.Uniform(30), 'x');
      return Value(items);
    }
  }
}

/// Random record over a bounded attribute universe (collisions on purpose:
/// overwrites exercise the in-place update path).
Record RandomRecord(Rng& rng) {
  Record r;
  const uint64_t attrs = rng.Uniform(12) + 1;
  for (uint64_t a = 0; a < attrs; ++a) {
    const std::string name = "attr-" + std::to_string(rng.Uniform(16));
    r.Set(name, RandomValue(rng), static_cast<MicroTime>(rng.Uniform(1u << 30)),
          static_cast<uint32_t>(rng.Uniform(4)));
  }
  return r;
}

TEST(PackedLayoutPropertyTest, MapRoundTripPreservesEveryRecord) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    Record original = RandomRecord(rng);
    Record round = Record::FromMap(original.ToMap());
    EXPECT_EQ(original, round) << "trial " << trial;
    // The unpacked view resolves the same names to the same attributes.
    for (const auto& [name, attr] : original.ToMap()) {
      const Attribute* found = round.Find(name);
      ASSERT_NE(found, nullptr) << name;
      EXPECT_EQ(*found, attr);
    }
    // Entries stay strictly sorted by interned id (binary-search invariant).
    const auto& entries = round.entries();
    for (size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LT(entries[i - 1].name_id, entries[i].name_id);
    }
  }
}

TEST(PackedLayoutPropertyTest, ByteAccountingSurvivesGrowShrink) {
  Rng rng(7777);
  RecordStore store;
  const auto recompute = [&store] {
    int64_t total = 0;
    store.ForEach([&total](RecordKey, const Record& r) {
      total += r.ApproxBytes();
    });
    return total;
  };
  for (int step = 0; step < 3000; ++step) {
    const RecordKey key = rng.Uniform(20) + 1;
    const std::string name = "attr-" + std::to_string(rng.Uniform(16));
    switch (rng.Uniform(5)) {
      case 0:
      case 1:  // Grow (or overwrite with a differently-sized value).
        store.SetAttribute(key, name, RandomValue(rng),
                           static_cast<MicroTime>(step), 0);
        break;
      case 2:  // Shrink.
        store.RemoveAttribute(key, name);
        break;
      case 3:  // Arbitrary in-place mutation through the accounting guard.
        store.MutateRecord(key, [&](Record& r) {
          r.Set(name, RandomValue(rng), static_cast<MicroTime>(step), 1);
          r.Remove("attr-" + std::to_string(rng.Uniform(16)));
        });
        break;
      default:
        if (rng.Uniform(10) == 0) store.DeleteRecord(key);
        break;
    }
    if (step % 100 == 0) {
      EXPECT_EQ(store.ApproxBytes(), recompute()) << "step " << step;
    }
  }
  EXPECT_EQ(store.ApproxBytes(), recompute());
}

TEST(PackedLayoutPropertyTest, RecordsSurviveMigrationStreamChunks) {
  // Packed records, serialized as interned-id WriteOps through the commit
  // log, must reassemble identically on the far side of a chunked
  // MigrationStream (the background-migration wire path).
  sim::SimClock clock;
  auto network =
      std::make_unique<sim::Network>(sim::Topology(4, sim::LatencyConfig()),
                                     &clock);
  std::vector<std::unique_ptr<StorageElement>> ses;
  for (uint32_t s = 0; s < 4; ++s) {
    StorageElementConfig cfg;
    cfg.name = "se-" + std::to_string(s);
    cfg.site = s;
    ses.push_back(std::make_unique<StorageElement>(cfg, &clock, s));
  }
  replication::ReplicaSet rs(
      replication::ReplicaSetConfig(),
      {ses[0].get(), ses[1].get(), ses[2].get()}, network.get());

  Rng rng(31337);
  std::map<RecordKey, Record> originals;
  for (RecordKey key = 1; key <= 25; ++key) {
    Record r = RandomRecord(rng);
    replication::WriteBuilder wb;
    for (const auto& e : r.entries()) {
      wb.Set(key, e.name_id, e.attr.value);
    }
    ASSERT_TRUE(rs.Write(0, std::move(wb).Build()).status.ok());
    originals[key] = *rs.replica_store(rs.master_id()).Find(key);
  }

  auto stream = rs.BeginPrimaryMigration(ses[3].get());
  ASSERT_TRUE(stream.ok());
  int chunks = 0;
  while (!stream.value().copy_done()) {
    auto shipped = rs.ShipMigrationChunk(&stream.value(), 512);
    ASSERT_TRUE(shipped.ok());
    ++chunks;
    ASSERT_LT(chunks, 100000);
  }
  EXPECT_GT(chunks, 1) << "chunk size too large to exercise chunking";
  ASSERT_TRUE(rs.CompleteMigration(&stream.value()).ok());

  const RecordStore& migrated = ses[3]->store();
  for (const auto& [key, original] : originals) {
    const Record* got = migrated.Find(key);
    ASSERT_NE(got, nullptr) << "record " << key << " lost in migration";
    EXPECT_EQ(*got, original) << "record " << key;
  }
}

}  // namespace
}  // namespace udr::storage
