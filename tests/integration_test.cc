// End-to-end integration tests across all modules: the full UDR stack under
// the paper's headline scenarios — partitions, failovers with data loss,
// multi-master evolution with consistency restoration, durability modes,
// selective placement, and UDC-vs-pre-UDC provisioning.

#include <gtest/gtest.h>

#include "telecom/front_end.h"
#include "telecom/pre_udc.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

namespace udr {
namespace {

using telecom::HlrFe;
using telecom::ProvisioningSystem;
using telecom::Subscriber;
using workload::Testbed;
using workload::TestbedOptions;

TestbedOptions BaseOptions() {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 60;
  o.pin_home_sites = true;
  return o;
}

// ---------------------------------------------------------------------------
// Scenario: CAP default (PC) — §3.2 / §4.1
// ---------------------------------------------------------------------------

TEST(IntegrationTest, CpPartitionStory) {
  Testbed bed(BaseOptions());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  Subscriber alice = bed.factory().Make(0);  // Home: site 0.

  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0, t0 + Seconds(30));
  bed.clock().Advance(Seconds(1));

  // 1) FE at Alice's home side: everything works.
  HlrFe home_fe(0, &bed.udr());
  EXPECT_TRUE(home_fe.Authenticate(alice.ImsiId()).ok());
  EXPECT_TRUE(home_fe.UpdateLocation(alice.ImsiId(), "vlr-0", 1).ok());

  // 2) FE on the far side: reads from the local slave copy still work...
  HlrFe far_fe(1, &bed.udr());
  EXPECT_TRUE(far_fe.Authenticate(alice.ImsiId()).ok());
  // ...but the write leg of a procedure fails (master unreachable).
  EXPECT_FALSE(far_fe.UpdateLocation(alice.ImsiId(), "vlr-1", 2).ok());

  // 3) PS on the far side: provisioning (pinned to site 0) fails entirely.
  ProvisioningSystem far_ps({1, 0}, &bed.udr(), &bed.factory());
  EXPECT_FALSE(far_ps.Provision(1000, /*home_site=*/0).ok());

  // 4) After healing, the same provisioning succeeds.
  bed.clock().AdvanceTo(t0 + Seconds(31));
  EXPECT_TRUE(far_ps.Provision(1000, /*home_site=*/0).ok());
}

// ---------------------------------------------------------------------------
// Scenario: SE failure, failover, async data loss — §3.3.1 / §4.2
// ---------------------------------------------------------------------------

TEST(IntegrationTest, MasterCrashLosesLastAsyncWrites) {
  Testbed bed(BaseOptions());
  bed.clock().Advance(Seconds(1));
  Subscriber alice = bed.factory().Make(0);
  auto loc = bed.udr().AuthoritativeLookup(alice.ImsiId());
  ASSERT_TRUE(loc.ok());
  replication::ReplicaSet* rs = bed.udr().partition(loc->partition);

  // Everything replicated so far.
  bed.clock().Advance(Seconds(1));
  rs->CatchUpAll();

  // A provisioning write lands on the master and is acked...
  ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  ASSERT_TRUE(ps.SetPremiumBarring(0, true).ok());

  // ...and the master SE fails before the entry ships to any slave.
  uint32_t old_master = rs->master_id();
  rs->CrashReplica(old_master);
  bed.clock().Advance(Seconds(10));

  HlrFe fe(0, &bed.udr());
  auto after = fe.SendRoutingInfo(alice.MsisdnId());
  ASSERT_TRUE(after.ok());  // Reads keep working off the surviving slaves.

  // The next master-path access triggers the failover...
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", alice.imsi);
  req.master_only = true;
  auto r = bed.udr().Submit(req, 0);
  ASSERT_EQ(r.code, ldap::LdapResultCode::kSuccess);
  EXPECT_NE(rs->master_id(), old_master);
  ASSERT_EQ(r.entries.size(), 1u);
  // ...and the acknowledged barring write is gone (durability gap).
  EXPECT_EQ(storage::ValueToString(
                *r.entries[0].record.Get(telecom::attr::kOdbPremium)),
            "false");
}

TEST(IntegrationTest, DualSequenceSurvivesTheSameCrash) {
  TestbedOptions o = BaseOptions();
  o.udr.sync_mode = replication::SyncMode::kDualSequence;
  Testbed bed(o);
  bed.clock().Advance(Seconds(1));
  Subscriber alice = bed.factory().Make(0);
  auto loc = bed.udr().AuthoritativeLookup(alice.ImsiId());
  ASSERT_TRUE(loc.ok());
  replication::ReplicaSet* rs = bed.udr().partition(loc->partition);
  rs->CatchUpAll();

  ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  ASSERT_TRUE(ps.SetPremiumBarring(0, true).ok());
  rs->CrashReplica(rs->master_id());
  bed.clock().Advance(Seconds(10));

  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", alice.imsi);
  req.master_only = true;
  auto r = bed.udr().Submit(req, 0);
  ASSERT_EQ(r.code, ldap::LdapResultCode::kSuccess);
  ASSERT_EQ(r.entries.size(), 1u);
  // The dual-in-sequence commit reached a slave before acking: no loss.
  EXPECT_EQ(storage::ValueToString(
                *r.entries[0].record.Get(telecom::attr::kOdbPremium)),
            "true");
}

// ---------------------------------------------------------------------------
// Scenario: §5 evolution — multi-master + consistency restoration
// ---------------------------------------------------------------------------

TEST(IntegrationTest, ApModeKeepsProvisioningAliveAndRestores) {
  TestbedOptions o = BaseOptions();
  o.udr.partition_mode = replication::PartitionMode::kPreferAvailability;
  Testbed bed(o);
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();

  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0, t0 + Seconds(30));
  bed.clock().Advance(Seconds(1));

  // PS on the minority side can now write (divergently).
  ProvisioningSystem far_ps({1, 0}, &bed.udr(), &bed.factory());
  auto w = far_ps.SetPremiumBarring(0, true);  // Alice's master is at site 0.
  EXPECT_TRUE(w.ok());

  // Conflicting write on the majority side.
  ProvisioningSystem home_ps({0, 0}, &bed.udr(), &bed.factory());
  bed.clock().Advance(Seconds(1));
  EXPECT_TRUE(home_ps.SetCallForwarding(0, "+34911234567").ok());

  // Heal; restoration merges the divergent writes.
  bed.clock().AdvanceTo(t0 + Seconds(40));
  auto report = bed.udr().RestoreAllPartitions();
  EXPECT_GE(report.divergent_entries, 1);
  EXPECT_GE(report.applied_ops, 1);

  // Alice's profile now carries both updates.
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", bed.factory().Make(0).imsi);
  req.master_only = true;
  auto r = bed.udr().Submit(req, 0);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(storage::ValueToString(
                *r.entries[0].record.Get(telecom::attr::kOdbPremium)),
            "true");
  EXPECT_EQ(storage::ValueToString(
                *r.entries[0].record.Get(telecom::attr::kCallForwardingUncond)),
            "+34911234567");
}

// ---------------------------------------------------------------------------
// Scenario: selective placement (§3.5)
// ---------------------------------------------------------------------------

TEST(IntegrationTest, SelectivePlacementKeepsHomeTrafficLocal) {
  Testbed bed(BaseOptions());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  // Subscriber 1 is pinned to site 1.
  Subscriber bob = bed.factory().Make(1);
  HlrFe home_fe(1, &bed.udr());
  HlrFe roam_fe(2, &bed.udr());
  auto home_write = home_fe.UpdateLocation(bob.ImsiId(), "vlr-h", 1);
  auto roam_write = roam_fe.UpdateLocation(bob.ImsiId(), "vlr-r", 2);
  ASSERT_TRUE(home_write.ok());
  ASSERT_TRUE(roam_write.ok());
  // Home-region write stays on the LAN; roaming pays the backbone.
  EXPECT_LT(home_write.latency, Millis(5));
  EXPECT_GT(roam_write.latency, Millis(25));
}

// ---------------------------------------------------------------------------
// Scenario: UDC vs pre-UDC provisioning (Figures 3/4)
// ---------------------------------------------------------------------------

TEST(IntegrationTest, UdcProvisioningAtomicWherePreUdcIsPartial) {
  // Shared network conditions: site 2 unreachable.
  sim::SimClock clock;
  sim::LatencyConfig lc;
  auto network = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock);
  network->partitions().IsolateSite(2, 3, 0, Seconds(100));

  telecom::SubscriberFactory factory(42);

  // Pre-UDC: partial state, manual repair required.
  telecom::PreUdcConfig pre_cfg;
  telecom::PreUdcNetwork pre(pre_cfg, network.get());
  auto pre_out = pre.Provision(factory.Make(0), /*ps_site=*/0);
  EXPECT_TRUE(pre_out.partial);
  EXPECT_FALSE(pre.GloballyConsistent());

  // UDC: same conditions, the single transaction either lands or fails
  // atomically — never half-applied. (Master for the pinned subscriber is
  // at site 0; the PoA and master are reachable, so it lands.)
  TestbedOptions o;
  o.sites = 3;
  Testbed bed(o);
  bed.network().partitions().IsolateSite(2, 3, 0, Seconds(100));
  ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
  auto udc_out = ps.Provision(0, /*home_site=*/0);
  EXPECT_TRUE(udc_out.ok());
  // And a provisioning that CANNOT reach its master fails with no residue.
  auto failed = ps.Provision(1, /*home_site=*/2);
  if (!failed.ok()) {
    EXPECT_TRUE(bed.udr()
                    .AuthoritativeLookup(bed.factory().Make(1).ImsiId())
                    .status()
                    .IsNotFound());
  }
}

// ---------------------------------------------------------------------------
// Scenario: five-nines accounting over a year-with-one-glitch (§2.5)
// ---------------------------------------------------------------------------

TEST(IntegrationTest, AvailabilityAccountingAcrossGlitch) {
  TestbedOptions o = BaseOptions();
  o.subscribers = 90;
  Testbed bed(o);
  MicroTime t0 = bed.clock().Now();
  // 60s run with a 2s glitch: FE availability should stay >= 99%, i.e. the
  // glitch shows up in PS numbers first (the paper's asymmetry).
  bed.network().partitions().CutBetween({0}, {1, 2}, t0 + Seconds(20),
                                        t0 + Seconds(22));
  workload::TrafficOptions t;
  t.duration = Seconds(60);
  t.fe_rate_per_sec = 100;
  t.ps_rate_per_sec = 10;
  t.subscriber_count = 90;
  auto rep = workload::RunTraffic(bed, t);
  EXPECT_GT(rep.fe_read.availability(), 0.99);
  EXPECT_LT(rep.ps.availability(), rep.fe_read.availability());
  EXPECT_GT(rep.ps.availability(), 0.90);  // Only the glitch window failed.
}

}  // namespace
}  // namespace udr
