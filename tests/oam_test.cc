// Tests for the OSS/OaM view (§2.4): inventory, alarms and the footnote-4
// availability KPI, plus failure-injection paths across the NF.

#include <gtest/gtest.h>

#include "replication/write_builder.h"
#include "telecom/subscriber.h"
#include "udr/oam.h"
#include "workload/testbed.h"

namespace udr::udrnf {
namespace {

using workload::Testbed;
using workload::TestbedOptions;

class OamTest : public ::testing::Test {
 protected:
  OamTest() : bed_(Options()), oam_(&bed_.udr()) {
    bed_.clock().Advance(Seconds(1));
    bed_.udr().CatchUpAllPartitions();
  }
  static TestbedOptions Options() {
    TestbedOptions o;
    o.sites = 3;
    o.subscribers = 30;
    o.pin_home_sites = true;
    return o;
  }
  std::vector<location::Identity> AllImsis() {
    std::vector<location::Identity> out;
    for (uint64_t i = 0; i < 30; ++i) {
      out.push_back(bed_.factory().Make(i).ImsiId());
    }
    return out;
  }
  Testbed bed_;
  OamSystem oam_;
};

TEST_F(OamTest, InventoryMatchesDeployment) {
  Inventory inv = oam_.GetInventory();
  EXPECT_EQ(inv.clusters, 3);
  EXPECT_EQ(inv.storage_elements, 6);
  EXPECT_EQ(inv.ldap_servers, 6);
  EXPECT_EQ(inv.partitions, 6);
  EXPECT_EQ(inv.subscribers, 30);
}

TEST_F(OamTest, HealthyNetworkRaisesNoAlarms) {
  EXPECT_EQ(oam_.Scan(), 0);
  EXPECT_TRUE(oam_.active_alarms().empty());
}

TEST_F(OamTest, ReplicaCrashRaisesMajorAlarm) {
  bed_.udr().partition(0)->CrashReplica(1);  // A slave copy.
  EXPECT_GE(oam_.Scan(), 1);
  bool found = false;
  for (const auto& [key, alarm] : oam_.active_alarms()) {
    if (alarm.source == "partition-0" &&
        alarm.severity == AlarmSeverity::kMajor) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(OamTest, MasterCrashRaisesCriticalAlarm) {
  auto* rs = bed_.udr().partition(0);
  rs->CrashReplica(rs->master_id());
  oam_.Scan();
  bool critical = false;
  for (const auto& [key, alarm] : oam_.active_alarms()) {
    if (alarm.severity == AlarmSeverity::kCritical) critical = true;
  }
  EXPECT_TRUE(critical);
}

TEST_F(OamTest, PartitionRaisesLinkAlarmAndClears) {
  MicroTime t0 = bed_.clock().Now();
  bed_.network().partitions().CutLink(0, 1, t0, t0 + Seconds(10));
  EXPECT_GE(oam_.Scan(), 1);
  EXPECT_FALSE(oam_.active_alarms().empty());
  // After healing, the condition clears but history remains.
  bed_.clock().Advance(Seconds(11));
  oam_.Scan();
  EXPECT_TRUE(oam_.active_alarms().empty());
  EXPECT_FALSE(oam_.alarm_history().empty());
}

TEST_F(OamTest, RepeatedScanDoesNotDuplicateAlarms) {
  bed_.udr().partition(0)->CrashReplica(1);
  int first = oam_.Scan();
  int second = oam_.Scan();
  EXPECT_GE(first, 1);
  EXPECT_EQ(second, 0);  // Same condition, no new alarm.
  EXPECT_EQ(oam_.alarm_history().size(), static_cast<size_t>(first));
}

TEST_F(OamTest, DivergenceRaisesAlarmUntilRestored) {
  TestbedOptions o = Options();
  o.udr.partition_mode = replication::PartitionMode::kPreferAvailability;
  Testbed bed(o);
  OamSystem oam(&bed.udr());
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0, t0 + Seconds(10));
  bed.clock().Advance(Seconds(1));
  // Divergent write from the minority side (subscriber 0's master = site 0).
  auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
  ASSERT_TRUE(loc.ok());
  replication::WriteBuilder wb;
  wb.Set(loc->key, "cfu-number", std::string("+34999"));
  auto w = bed.udr().partition(loc->partition)->Write(1, std::move(wb).Build());
  ASSERT_TRUE(w.diverged);
  oam.Scan();
  bool diverged_alarm = false;
  for (const auto& [key, alarm] : oam.active_alarms()) {
    if (alarm.text.find("divergent") != std::string::npos) {
      diverged_alarm = true;
    }
  }
  EXPECT_TRUE(diverged_alarm);
  // Heal + restore clears it.
  bed.clock().AdvanceTo(t0 + Seconds(20));
  bed.udr().RestoreAllPartitions();
  oam.Scan();
  for (const auto& [key, alarm] : oam.active_alarms()) {
    EXPECT_EQ(alarm.text.find("divergent"), std::string::npos);
  }
}

TEST_F(OamTest, DrainedPoaRaisesCritical) {
  auto* cluster = bed_.udr().cluster(0);
  // Take every LDAP server at cluster 0 out of rotation.
  for (size_t i = 0; i < cluster->ldap_count(); ++i) {
    // Access through the balancer pick cycle.
    auto s = cluster->balancer().Pick();
    ASSERT_TRUE(s.ok());
    (*s)->set_healthy(false);
  }
  oam_.Scan();
  bool drained = false;
  for (const auto& [key, alarm] : oam_.active_alarms()) {
    if (alarm.text.find("PoA drained") != std::string::npos) drained = true;
  }
  EXPECT_TRUE(drained);
}

TEST_F(OamTest, ScaleOutSyncRaisesWarning) {
  (void)bed_.udr().AddCluster(2);
  oam_.Scan();
  bool syncing = false;
  for (const auto& [key, alarm] : oam_.active_alarms()) {
    if (alarm.text.find("syncing") != std::string::npos) {
      syncing = true;
      EXPECT_EQ(alarm.severity, AlarmSeverity::kWarning);
    }
  }
  EXPECT_TRUE(syncing);
}

// ---------------------------------------------------------------------------
// Footnote-4 availability KPI
// ---------------------------------------------------------------------------

TEST_F(OamTest, KpiFullWhenHealthy) {
  auto kpi = oam_.SampleAvailability(AllImsis(), {0, 1, 2});
  EXPECT_EQ(kpi.subscribers_sampled, 30);
  EXPECT_EQ(kpi.reachable, 30);
  EXPECT_TRUE(kpi.MeetsFiveNines());
}

TEST_F(OamTest, KpiIsPerSubscriberAverage) {
  // Take down every replica of one subscriber's partition: that subscriber
  // is dark, the other 29 are fine => availability 29/30 (the footnote-4
  // averaging, far below five nines for this tiny base).
  auto loc = bed_.udr().AuthoritativeLookup(bed_.factory().Make(0).ImsiId());
  ASSERT_TRUE(loc.ok());
  auto* rs = bed_.udr().partition(loc->partition);
  for (uint32_t r = 0; r < rs->replica_count(); ++r) rs->CrashReplica(r);
  auto kpi = oam_.SampleAvailability(AllImsis(), {0, 1, 2});
  EXPECT_LT(kpi.reachable, 30);
  EXPECT_GT(kpi.reachable, 20);
  EXPECT_FALSE(kpi.MeetsFiveNines());
}

TEST_F(OamTest, KpiSurvivesBackbonePartitionViaLocalReplicas) {
  MicroTime t0 = bed_.clock().Now();
  bed_.network().partitions().CutBetween({0}, {1, 2}, t0, t0 + Seconds(60));
  bed_.clock().Advance(Seconds(1));
  // Reads fall back to whatever replica is locally reachable: still 100%.
  auto kpi = oam_.SampleAvailability(AllImsis(), {0, 1, 2});
  EXPECT_EQ(kpi.reachable, 30);
}

}  // namespace
}  // namespace udr::udrnf
