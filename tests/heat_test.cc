// Tests for the heat-aware data path: the Zipf workload generator
// (distribution shape + determinism + uniform passthrough), the HeatTracker
// EWMA/space-saving sketch, the PoaCache byte-LRU and epoch policy, the
// router's read-through cache (populate on miss, synchronous invalidation on
// writes/deletes — read-your-writes never violated), a property test that
// cache-served reads always equal committed master state under concurrent
// writes/deletes/split/merge churn, and the runtime split/merge controller
// end to end (population conservation, zero acked-write loss).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "routing/batch.h"
#include "routing/heat_tracker.h"
#include "routing/poa_cache.h"
#include "routing/router.h"
#include "storage/record.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"
#include "workload/zipf.h"

namespace udr::routing {
namespace {

using location::Identity;
using replication::ReadPreference;

workload::TestbedOptions BaseOptions(int64_t subscribers = 0) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = subscribers;
  return o;
}

/// Hash placement plus the PoA record cache: every subscriber record is
/// hot enough to admit after one access (admit_min = 1) unless a test
/// overrides it.
workload::TestbedOptions HeatOptions(int64_t subscribers) {
  workload::TestbedOptions o = BaseOptions(subscribers);
  o.udr.placement = PlacementKind::kHash;
  o.udr.heat_tracking = true;
  o.udr.poa_cache_bytes = 256 * 1024;
  o.udr.poa_cache_admit_min = 1;
  return o;
}

/// Lets asynchronous replication drain so nearest-replica reads see the
/// provisioned population (slave copies apply on delivery, not at commit).
void Settle(workload::Testbed& bed) {
  bed.clock().Advance(Seconds(120));
  bed.udr().CatchUpAllPartitions();
}

// ---------------------------------------------------------------------------
// Zipf generator
// ---------------------------------------------------------------------------

TEST(ZipfGeneratorTest, ThetaZeroIsAnExactUniformPassthrough) {
  // theta <= 0 must be byte-identical to rng.Uniform(n): every pre-existing
  // uniform workload keeps its historical key stream.
  workload::ZipfGenerator gen(1000, 0.0);
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(gen.Next(a), b.Uniform(1000)) << "draw " << i;
  }
}

TEST(ZipfGeneratorTest, SameSeedReproducesTheKeySequence) {
  workload::ZipfGenerator gen1(1000, 0.99);
  workload::ZipfGenerator gen2(1000, 0.99);
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(gen1.Next(a), gen2.Next(b)) << "draw " << i;
  }
}

TEST(ZipfGeneratorTest, SkewedDrawMatchesTheDiscreteDistribution) {
  const uint64_t n = 1000;
  const int64_t draws = 200000;
  workload::ZipfGenerator gen(n, 0.99);
  Rng rng(7);
  std::vector<int64_t> counts(n, 0);
  for (int64_t i = 0; i < draws; ++i) {
    uint64_t k = gen.Next(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Rank 0 frequency within 15% of the exact P(0) (sampling noise at 200k
  // draws is well under 1%).
  const double p0 = gen.ProbabilityOfRank(0);
  const double f0 = static_cast<double>(counts[0]) / draws;
  EXPECT_GT(f0, 0.85 * p0);
  EXPECT_LT(f0, 1.15 * p0);
  // The head carries the mass: at theta 0.99 the ten hottest of 1000 keys
  // draw over 30% of accesses (uniform would give them 1%).
  int64_t top10 = 0;
  for (int k = 0; k < 10; ++k) top10 += counts[k];
  EXPECT_GT(static_cast<double>(top10) / draws, 0.30);
  // Monotone head: rank 0 beats deep ranks decisively.
  EXPECT_GT(counts[0], 2 * counts[50]);
}

// ---------------------------------------------------------------------------
// HeatTracker
// ---------------------------------------------------------------------------

TEST(HeatTrackerTest, PartitionHeatDecaysWithTheConfiguredHalflife) {
  HeatTrackerConfig cfg;
  cfg.halflife_us = Millis(100);
  HeatTracker tracker(cfg);
  const MicroTime t0 = Seconds(1);
  for (int i = 0; i < 10; ++i) tracker.RecordAccess(3, 42, t0);
  EXPECT_DOUBLE_EQ(tracker.PartitionHeat(3, t0), 10.0);
  // One half-life later the count has halved; two, quartered.
  EXPECT_NEAR(tracker.PartitionHeat(3, t0 + Millis(100)), 5.0, 1e-9);
  EXPECT_NEAR(tracker.PartitionHeat(3, t0 + Millis(200)), 2.5, 1e-9);
  // Partitions never seen read as cold, not as an error.
  EXPECT_DOUBLE_EQ(tracker.PartitionHeat(99, t0), 0.0);
  EXPECT_EQ(tracker.total_accesses(), 10);
}

TEST(HeatTrackerTest, SpaceSavingSketchKeepsTheHotKeys) {
  HeatTrackerConfig cfg;
  cfg.top_k = 2;
  HeatTracker tracker(cfg);
  for (int i = 0; i < 5; ++i) tracker.RecordAccess(0, 10, 0);
  for (int i = 0; i < 3; ++i) tracker.RecordAccess(0, 20, 0);
  EXPECT_EQ(tracker.KeyCount(10), 5);
  EXPECT_EQ(tracker.KeyCount(20), 3);

  // A new key on a full sketch replaces the coldest slot and inherits its
  // count as the overestimate bound (classic space-saving).
  tracker.RecordAccess(0, 30, 0);
  EXPECT_EQ(tracker.KeyCount(20), 0);
  EXPECT_EQ(tracker.KeyCount(30), 4);

  auto top = tracker.TopKeys(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 10u);
  EXPECT_EQ(top[0].count, 5);
  EXPECT_EQ(top[0].error, 0);
  EXPECT_EQ(top[1].key, 30u);
  EXPECT_EQ(top[1].error, 3);
}

// ---------------------------------------------------------------------------
// PoaCache
// ---------------------------------------------------------------------------

storage::Record CacheRecord(const std::string& value) {
  storage::Record r;
  r.Set("cfu-number", value, 0, 0);
  return r;
}

TEST(PoaCacheTest, EvictsLeastRecentlyUsedWhenOverTheByteBudget) {
  storage::Record r = CacheRecord("payload");
  const int64_t fp = r.CacheFootprintBytes();
  PoaCacheConfig cfg;
  cfg.capacity_bytes = 2 * fp;  // Room for exactly two entries.
  PoaCache cache(cfg);

  cache.Insert(1, 0, 0, r);
  cache.Insert(2, 0, 0, r);
  EXPECT_EQ(cache.size(), 2u);
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(1, 0, 0), nullptr);
  cache.Insert(3, 0, 0, r);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_LE(cache.bytes(), cfg.capacity_bytes);
  EXPECT_NE(cache.Lookup(1, 0, 0), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0, 0), nullptr);
}

TEST(PoaCacheTest, RecordBiggerThanTheBudgetIsNotAdmitted) {
  PoaCacheConfig cfg;
  cfg.capacity_bytes = 8;
  PoaCache cache(cfg);
  cache.Insert(1, 0, 0, CacheRecord("too-big-to-cache"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0);
}

TEST(PoaCacheTest, EpochOrPartitionMismatchDropsTheEntry) {
  PoaCache cache(PoaCacheConfig{});
  cache.Insert(7, /*partition=*/1, /*epoch=*/0, CacheRecord("v"));

  // Same key resolved under a newer epoch: the stale entry is dropped, not
  // served — exactly the migration-cutover defense.
  EXPECT_EQ(cache.Lookup(7, 1, 1), nullptr);
  EXPECT_EQ(cache.epoch_drops(), 1);
  EXPECT_EQ(cache.size(), 0u);

  // Same story when the key now resolves to a different partition.
  cache.Insert(7, 1, 0, CacheRecord("v"));
  EXPECT_EQ(cache.Lookup(7, 2, 0), nullptr);
  EXPECT_EQ(cache.epoch_drops(), 2);

  // Matching tag serves.
  cache.Insert(7, 1, 0, CacheRecord("v"));
  EXPECT_NE(cache.Lookup(7, 1, 0), nullptr);
}

TEST(PoaCacheTest, InvalidateDropsTheKeySynchronously) {
  PoaCache cache(PoaCacheConfig{});
  cache.Insert(5, 0, 0, CacheRecord("v"));
  EXPECT_TRUE(cache.Invalidate(5));
  EXPECT_EQ(cache.Lookup(5, 0, 0), nullptr);
  EXPECT_FALSE(cache.Invalidate(5));
  EXPECT_EQ(cache.invalidations(), 1);
}

// ---------------------------------------------------------------------------
// Router read-through cache
// ---------------------------------------------------------------------------

TEST(PoaCacheIntegrationTest, ReadThroughPopulatesOnMissAndServesHits) {
  workload::Testbed bed(HeatOptions(10));
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(4).ImsiId();

  // Seed an attribute so attribute reads have something to find.
  BatchRequest seed;
  seed.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("cached-town")}}));
  ASSERT_TRUE(udr.router().RouteBatch(seed, 0).ok());
  Settle(bed);

  // Miss populates.
  BatchRequest first;
  first.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  BatchResult r1 = udr.router().RouteBatch(first, 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.outcomes[0].from_cache);
  EXPECT_EQ(r1.cache_hits, 0);

  // Second whole-record read is a hit at PoA-local cost.
  BatchRequest second;
  second.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  BatchResult r2 = udr.router().RouteBatch(second, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.outcomes[0].from_cache);
  EXPECT_FALSE(r2.outcomes[0].stale);
  EXPECT_EQ(r2.cache_hits, 1);
  ASSERT_TRUE(r2.outcomes[0].record.has_value());

  // Attribute reads serve from the cached record with exact replica-set
  // semantics: present attr -> value, absent attr -> NotFound.
  BatchRequest attr;
  attr.Add(Operation::ReadAttribute(id, "cfu-number", ReadPreference::kNearest));
  attr.Add(Operation::ReadAttribute(id, "no-such-attr",
                                    ReadPreference::kNearest));
  BatchResult r3 = udr.router().RouteBatch(attr, 0);
  ASSERT_EQ(r3.outcomes.size(), 2u);
  EXPECT_TRUE(r3.outcomes[0].from_cache);
  ASSERT_TRUE(r3.outcomes[0].value.has_value());
  EXPECT_EQ(storage::ValueToString(*r3.outcomes[0].value), "cached-town");
  EXPECT_TRUE(r3.outcomes[1].from_cache);
  EXPECT_FALSE(r3.outcomes[1].ok());

  // Master-only reads never touch the cache (provisioning semantics).
  BatchRequest master;
  master.Add(Operation::ReadRecord(id, ReadPreference::kMasterOnly));
  BatchResult r4 = udr.router().RouteBatch(master, 0);
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4.outcomes[0].from_cache);

  EXPECT_GT(udr.metrics().Get("router.cache.hits"), 0);
  EXPECT_GT(udr.metrics().Get("router.cache.insertions"), 0);
}

TEST(PoaCacheIntegrationTest, AdmissionFilterRequiresSketchHeat) {
  workload::TestbedOptions o = HeatOptions(10);
  o.udr.poa_cache_admit_min = 3;  // Cache only keys seen >= 3 times.
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(2).ImsiId();
  Settle(bed);

  for (int read = 1; read <= 4; ++read) {
    BatchRequest b;
    b.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
    BatchResult r = udr.router().RouteBatch(b, 0);
    ASSERT_TRUE(r.ok()) << "read " << read;
    // Reads 1 and 2 leave the sketch below the admission bar; read 3 is the
    // first whose flush populates, so read 4 is the first hit.
    EXPECT_EQ(r.outcomes[0].from_cache, read >= 4) << "read " << read;
  }
}

TEST(PoaCacheIntegrationTest, CommittedWritesInvalidateSynchronously) {
  workload::Testbed bed(HeatOptions(10));
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(1).ImsiId();

  BatchRequest seed;
  seed.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("before")}}));
  ASSERT_TRUE(udr.router().RouteBatch(seed, 0).ok());
  Settle(bed);

  // Populate, then verify the hit serves the pre-write value.
  BatchRequest warm;
  warm.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  warm.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  BatchResult w = udr.router().RouteBatch(warm, 0);
  ASSERT_TRUE(w.ok());

  // Write + read in ONE batch: the write's flush invalidates before the read
  // flush runs, so the read can never see the cached pre-write record.
  BatchRequest rw;
  rw.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("after")}}));
  rw.Add(Operation::ReadAttribute(id, "cfu-number",
                                  ReadPreference::kMasterOnly));
  BatchResult r = udr.router().RouteBatch(rw, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.outcomes[1].value.has_value());
  EXPECT_EQ(storage::ValueToString(*r.outcomes[1].value), "after");

  // The next nearest read must re-populate (miss), not serve "before".
  Settle(bed);
  BatchRequest again;
  again.Add(Operation::ReadAttribute(id, "cfu-number",
                                     ReadPreference::kNearest));
  BatchResult r2 = udr.router().RouteBatch(again, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.outcomes[0].from_cache);
  ASSERT_TRUE(r2.outcomes[0].value.has_value());
  EXPECT_EQ(storage::ValueToString(*r2.outcomes[0].value), "after");
  EXPECT_GT(udr.metrics().Get("router.cache.invalidations"), 0);
}

TEST(PoaCacheIntegrationTest, DeleteInvalidatesBeforeTheNextRead) {
  // Under hash placement a read of a deleted subscriber still RESOLVES (the
  // ring is oblivious to deletion), so serving its cached record would
  // resurrect deleted state. The delete path must invalidate synchronously.
  workload::Testbed bed(HeatOptions(10));
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(6).ImsiId();
  Settle(bed);

  // Two batches: reads within one batch share a single read flush, so the
  // populate lands between batches, not between ops.
  BatchRequest miss;
  miss.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  ASSERT_TRUE(udr.router().RouteBatch(miss, 0).ok());
  BatchRequest hit;
  hit.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  BatchResult w = udr.router().RouteBatch(hit, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.outcomes[0].from_cache);

  ASSERT_TRUE(udr.DeleteSubscriber(id, 0).ok());

  BatchRequest after;
  after.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
  BatchResult r = udr.router().RouteBatch(after, 0);
  EXPECT_FALSE(r.outcomes[0].ok());
  EXPECT_FALSE(r.outcomes[0].from_cache);
}

// ---------------------------------------------------------------------------
// Property test: cache consistency under churn
// ---------------------------------------------------------------------------

// Random interleaving of writes, reads, deletes/recreates and runtime
// split/merge churn. Invariant under test (the cache staleness policy): a
// cache-served read ALWAYS equals the latest committed master state — the
// cache may never be staler than a fresh non-stale kNearest read. Non-cache
// slave reads may be stale (that window belongs to the replica set, not the
// cache) and are only checked when the outcome reports itself fresh.
TEST(CacheConsistencyPropertyTest, CacheNeverServesStaleUnderChurn) {
  const int64_t kSubs = 60;
  workload::Testbed bed(HeatOptions(kSubs));
  auto& udr = bed.udr();
  Settle(bed);

  Rng rng(11);
  // Oracle: committed value of the test attribute per subscriber (absent =>
  // a fresh read must be attribute-NotFound), plus liveness.
  std::unordered_map<uint64_t, std::string> oracle;
  std::unordered_set<uint64_t> dead;
  std::vector<uint32_t> merge_candidates;
  int64_t cache_checked = 0;

  for (int iter = 0; iter < 600; ++iter) {
    bed.clock().Advance(Millis(1));

    // Churn injections at fixed points: two runtime splits, one merge.
    if (iter == 150 || iter == 300) {
      uint32_t hottest = 0;
      int64_t best = -1;
      auto& map = udr.partition_map();
      for (uint32_t p = 0; p < map.partition_count(); ++p) {
        if (map.partition_retired(p) || map.partition_draining(p)) continue;
        if (map.population(p) > best) {
          best = map.population(p);
          hottest = p;
        }
      }
      auto sibling = udr.StartSplit(hottest);
      ASSERT_TRUE(sibling.ok()) << sibling.status().ToString();
      merge_candidates.push_back(*sibling);
      Settle(bed);
    }
    if (iter == 450) {
      ASSERT_FALSE(merge_candidates.empty());
      ASSERT_TRUE(udr.StartMerge(merge_candidates.front()).ok());
      udr.PumpEvents();  // Retires the drained sibling.
      Settle(bed);
    }

    const uint64_t s = rng.Uniform(kSubs);
    Identity id = bed.factory().Make(s).ImsiId();
    const double pick = rng.NextDouble();

    if (pick < 0.40) {
      // Write + immediate nearest read: read-your-writes through the cache.
      const std::string v = "v" + std::to_string(iter);
      BatchRequest b;
      b.Add(Operation::Write(
          id, {{Mutation::Kind::kSet, "heat-prop", v}}));
      b.Add(Operation::ReadAttribute(id, "heat-prop",
                                     ReadPreference::kNearest));
      BatchResult r = udr.router().RouteBatch(b, 0);
      if (dead.count(s)) {
        EXPECT_FALSE(r.outcomes[0].ok());
        continue;
      }
      ASSERT_TRUE(r.outcomes[0].ok()) << "acked-write loss at iter " << iter;
      oracle[s] = v;
      // The kNearest follow-up may land on a lagging slave — that staleness
      // belongs to the replica-set policy. But a cache-served or fresh
      // outcome MUST observe the write just committed in this batch.
      const OpOutcome& rr = r.outcomes[1];
      if (rr.from_cache || !rr.stale) {
        ASSERT_TRUE(rr.ok()) << "iter " << iter << ": "
                             << rr.status.ToString();
        EXPECT_EQ(storage::ValueToString(*rr.value), v)
            << "read-your-writes violated at iter " << iter
            << (rr.from_cache ? " (from cache)" : " (fresh replica)");
      }
    } else if (pick < 0.90) {
      // Whole-record read (populates) + attribute read (may hit).
      BatchRequest b;
      b.Add(Operation::ReadRecord(id, ReadPreference::kNearest));
      b.Add(Operation::ReadAttribute(id, "heat-prop",
                                     ReadPreference::kNearest));
      BatchResult r = udr.router().RouteBatch(b, 0);
      if (dead.count(s)) {
        // A lagging slave may still serve the deleted record — but only
        // flagged stale, and NEVER from the cache (the delete invalidated
        // it synchronously).
        for (const OpOutcome& out : r.outcomes) {
          EXPECT_FALSE(out.from_cache) << "cache resurrected a deleted "
                                          "record at iter " << iter;
          if (out.ok()) EXPECT_TRUE(out.stale) << "iter " << iter;
        }
        continue;
      }
      const OpOutcome& attr = r.outcomes[1];
      auto want = oracle.find(s);
      if (attr.from_cache) ++cache_checked;
      if (attr.from_cache || !attr.stale) {
        // Fresh (or cache-served, which must behave fresh): exact match.
        if (want == oracle.end()) {
          EXPECT_FALSE(attr.ok()) << "iter " << iter;
        } else {
          ASSERT_TRUE(attr.ok()) << "iter " << iter << ": "
                                 << attr.status.ToString();
          EXPECT_EQ(storage::ValueToString(*attr.value), want->second)
              << "stale read at iter " << iter
              << (attr.from_cache ? " (from cache)" : " (fresh replica)");
        }
      }
    } else {
      // Delete, then recreate on a later iteration (keeps population flat
      // across the run apart from the churn windows).
      if (dead.count(s) == 0) {
        ASSERT_TRUE(udr.DeleteSubscriber(id, 0).ok()) << "iter " << iter;
        oracle.erase(s);
        dead.insert(s);
      } else {
        ASSERT_TRUE(
            udr.CreateSubscriber(bed.factory().MakeSpec(s), 0).ok());
        dead.erase(s);
        bed.udr().CatchUpAllPartitions();
      }
    }
  }

  EXPECT_EQ(udr.runtime_splits(), 2);
  EXPECT_EQ(udr.runtime_merges(), 1);
  EXPECT_GT(cache_checked, 0) << "churn run never exercised a cache hit";
  EXPECT_GT(udr.metrics().Get("router.cache.hits"), 0);
}

// ---------------------------------------------------------------------------
// Runtime split / merge
// ---------------------------------------------------------------------------

int64_t TotalPopulation(workload::Testbed& bed) {
  auto& map = bed.udr().partition_map();
  int64_t total = 0;
  for (uint32_t p = 0; p < map.partition_count(); ++p) {
    total += map.population(p);
  }
  return total;
}

TEST(RuntimeSplitMergeTest, SplitConservesPopulationAndAckedWrites) {
  const int64_t kSubs = 200;
  workload::Testbed bed(HeatOptions(kSubs));
  auto& udr = bed.udr();
  auto& map = udr.partition_map();
  Settle(bed);

  // Ack a marker write on every subscriber BEFORE the split: the acceptance
  // bar is zero acked-write loss across the move.
  for (int64_t i = 0; i < kSubs; ++i) {
    BatchRequest b;
    b.Add(Operation::Write(
        bed.factory().Make(i).ImsiId(),
        {{Mutation::Kind::kSet, "split-marker",
          std::string("m") + std::to_string(i)}}));
    ASSERT_TRUE(udr.router().RouteBatch(b, 0).ok()) << "subscriber " << i;
  }

  const int64_t total_before = TotalPopulation(bed);
  EXPECT_EQ(total_before, kSubs);

  uint32_t parent = 0;
  int64_t best = -1;
  for (uint32_t p = 0; p < map.partition_count(); ++p) {
    if (map.population(p) > best) {
      best = map.population(p);
      parent = p;
    }
  }
  const int64_t parent_before = map.population(parent);

  auto sibling_or = udr.StartSplit(parent);
  ASSERT_TRUE(sibling_or.ok()) << sibling_or.status().ToString();
  const uint32_t sibling = *sibling_or;

  // Half the parent's ring arcs moved: population is conserved exactly and
  // the sibling actually received subscribers.
  EXPECT_EQ(TotalPopulation(bed), total_before);
  EXPECT_EQ(map.population(parent) + map.population(sibling), parent_before);
  EXPECT_GE(map.population(sibling), 1);
  EXPECT_EQ(map.parent_of(sibling), static_cast<int>(parent));
  EXPECT_EQ(udr.runtime_splits(), 1);
  Settle(bed);

  // Every subscriber still resolves, routes to its authoritative partition
  // and reads back its acked marker.
  for (int64_t i = 0; i < kSubs; ++i) {
    Identity id = bed.factory().Make(i).ImsiId();
    RouteResult route = udr.router().Route(id, 0, RouteIntent::kRead);
    ASSERT_TRUE(route.status.ok()) << id.ToString();
    auto loc = udr.AuthoritativeLookup(id);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(route.partition, loc->partition) << id.ToString();

    BatchRequest b;
    b.Add(Operation::ReadAttribute(id, "split-marker",
                                   ReadPreference::kMasterOnly));
    BatchResult r = udr.router().RouteBatch(b, 0);
    ASSERT_TRUE(r.ok()) << "subscriber " << i;
    EXPECT_EQ(storage::ValueToString(*r.outcomes[0].value),
              "m" + std::to_string(i))
        << "acked write lost across split, subscriber " << i;
  }

  // ---- Merge the sibling back: drain, retire, nothing lost. ----
  ASSERT_TRUE(udr.StartMerge(sibling).ok());
  udr.PumpEvents();  // Unthrottled drain emptied it; this retires it.

  EXPECT_TRUE(map.partition_retired(sibling));
  EXPECT_EQ(map.population(sibling), 0);
  EXPECT_EQ(TotalPopulation(bed), total_before);
  EXPECT_EQ(udr.runtime_merges(), 1);
  Settle(bed);

  for (int64_t i = 0; i < kSubs; ++i) {
    Identity id = bed.factory().Make(i).ImsiId();
    RouteResult route = udr.router().Route(id, 0, RouteIntent::kRead);
    ASSERT_TRUE(route.status.ok()) << id.ToString();
    EXPECT_NE(route.partition, sibling) << id.ToString();

    BatchRequest b;
    b.Add(Operation::ReadAttribute(id, "split-marker",
                                   ReadPreference::kMasterOnly));
    BatchResult r = udr.router().RouteBatch(b, 0);
    ASSERT_TRUE(r.ok()) << "subscriber " << i;
    EXPECT_EQ(storage::ValueToString(*r.outcomes[0].value),
              "m" + std::to_string(i))
        << "acked write lost across merge, subscriber " << i;
  }
}

TEST(RuntimeSplitMergeTest, SplitRequiresHashPlacement) {
  workload::Testbed bed(BaseOptions(10));  // Default least-loaded placement.
  auto result = bed.udr().StartSplit(0);
  EXPECT_FALSE(result.ok());
}

TEST(RuntimeSplitMergeTest, ControllerSplitsHotAndMergesCold) {
  workload::TestbedOptions o = HeatOptions(120);
  o.udr.heat_halflife_us = Millis(5);
  o.udr.heat_split_threshold = 30.0;
  o.udr.heat_merge_threshold = 2.0;
  o.udr.heat_split_cooldown_us = Millis(1);
  o.udr.heat_max_splits = 1;
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  Settle(bed);

  // Hammer one subscriber: its partition's EWMA blows past the split
  // threshold well inside one half-life.
  Identity hot = bed.factory().Make(0).ImsiId();
  for (int i = 0; i < 100; ++i) {
    RouteResult r = udr.router().Route(hot, 0, RouteIntent::kRead);
    ASSERT_TRUE(r.status.ok());
  }
  udr.PumpEvents();
  EXPECT_EQ(udr.runtime_splits(), 1);
  ASSERT_EQ(udr.heat_siblings().size(), 1u);
  const uint32_t sibling = udr.heat_siblings()[0].sibling;

  // Traffic stops; a second of idle sim-time is 200 half-lives, so the
  // sibling reads stone cold and past its cooldown.
  bed.clock().Advance(Seconds(1));
  udr.PumpEvents();  // Begins the merge (and drains it, unthrottled).
  udr.PumpEvents();  // Retires the drained sibling.
  EXPECT_EQ(udr.runtime_merges(), 1);
  EXPECT_TRUE(udr.partition_map().partition_retired(sibling));
  EXPECT_GT(udr.metrics().Get("udr.heat.splits"), 0);
  EXPECT_GT(udr.metrics().Get("udr.heat.merges"), 0);
}

}  // namespace
}  // namespace udr::routing
