// Tests for the observability layer (src/obs/): deterministic trace-span
// sampling and nesting, Chrome/Perfetto export stability, the sim-time
// time-series sampler (ring wrap, rate/quantile window math), the flight
// recorder (per-component ring eviction, SLO-failure dumps), the
// pre-registered Metrics handle API, and the end-to-end contracts — a traced
// scenario replays byte-identically, tracing never perturbs the modelled
// run, and per-shard tracers merge race-free after the workers join (this
// file runs under TSan in ci.sh alongside exec_test).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/shard.h"
#include "exec/shard_runtime.h"
#include "obs/flight_recorder.h"
#include "obs/time_series.h"
#include "obs/trace.h"
#include "scenario/engine.h"
#include "scenario/script.h"
#include "sim/clock.h"
#include "workload/testbed.h"

namespace udr {
namespace {

using obs::FlightRecorder;
using obs::SamplePoint;
using obs::SpanRecord;
using obs::TimeSeriesConfig;
using obs::TimeSeriesSampler;
using obs::TraceContext;
using obs::Tracer;
using scenario::RunScenario;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;
using scenario::SloCheck;
using scenario::SloKind;

// ---------------------------------------------------------------------------
// Sampling decision
// ---------------------------------------------------------------------------

TEST(TraceSamplingTest, DecisionIsAPureFunctionOfSeedAndId) {
  for (uint64_t id = 1; id <= 200; ++id) {
    EXPECT_EQ(Tracer::SampleDecision(7, id, 0.3),
              Tracer::SampleDecision(7, id, 0.3));
  }
  // A different seed must flip at least one decision over a few hundred ids
  // (otherwise the seed is dead).
  bool any_differ = false;
  for (uint64_t id = 1; id <= 400 && !any_differ; ++id) {
    any_differ = Tracer::SampleDecision(7, id, 0.3) !=
                 Tracer::SampleDecision(8, id, 0.3);
  }
  EXPECT_TRUE(any_differ);
}

TEST(TraceSamplingTest, RateBoundsAreExact) {
  for (uint64_t id = 1; id <= 100; ++id) {
    EXPECT_FALSE(Tracer::SampleDecision(42, id, 0.0));
    EXPECT_TRUE(Tracer::SampleDecision(42, id, 1.0));
  }
}

TEST(TraceSamplingTest, FractionTracksTheRate) {
  int sampled = 0;
  const int kIds = 10000;
  for (uint64_t id = 1; id <= kIds; ++id) {
    if (Tracer::SampleDecision(42, id, 0.01)) ++sampled;
  }
  // Expected 100 of 10000; the mixer should land well inside [50, 200].
  EXPECT_GT(sampled, 50);
  EXPECT_LT(sampled, 200);
}

// ---------------------------------------------------------------------------
// Tracer spans
// ---------------------------------------------------------------------------

Tracer::Options AlwaysOn() {
  Tracer::Options o;
  o.sample_rate = 1.0;
  return o;
}

TEST(TracerTest, NestedSpansRecordParentageAndModelledTimes) {
  sim::SimClock clock;
  Tracer tracer(AlwaysOn(), &clock);

  const TraceContext root = tracer.StartTrace();
  EXPECT_TRUE(root.active());
  EXPECT_EQ(root.span_id, 0u);  // Root context: children are trace roots.

  clock.Advance(Micros(100));
  obs::Span outer = tracer.StartSpan("route.batch", root);
  const TraceContext outer_ctx = outer.context();
  EXPECT_TRUE(outer_ctx.active());

  // Modelled stage: starts later than Now(), ends at start + modelled cost,
  // all while the clock stays parked at 100.
  obs::Span inner = tracer.StartSpanAt("dispatch", outer_ctx, Micros(130));
  inner.EndAt(Micros(180));
  const uint64_t rec =
      tracer.RecordSpan("replica.write", outer_ctx, Micros(140), Micros(170));
  EXPECT_NE(rec, 0u);
  outer.EndAt(Micros(200));

  const std::vector<SpanRecord>& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "route.batch");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].start, Micros(100));
  EXPECT_EQ(spans[0].end, Micros(200));
  EXPECT_STREQ(spans[1].name, "dispatch");
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_EQ(spans[1].start, Micros(130));
  EXPECT_EQ(spans[1].end, Micros(180));
  EXPECT_STREQ(spans[2].name, "replica.write");
  EXPECT_EQ(spans[2].parent_id, spans[0].span_id);
  for (const SpanRecord& s : spans) EXPECT_EQ(s.trace_id, root.trace_id);
}

TEST(TracerTest, UnsampledParentMakesEveryDownstreamSpanFree) {
  sim::SimClock clock;
  Tracer::Options off;
  off.sample_rate = 0.0;
  Tracer tracer(off, &clock);
  const TraceContext root = tracer.StartTrace();
  EXPECT_FALSE(root.active());
  obs::Span s = tracer.StartSpan("route.batch", root);
  EXPECT_FALSE(s.context().active());
  EXPECT_EQ(tracer.RecordSpan("resolve", root, 0, 10), 0u);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.traces_sampled(), 0);
  EXPECT_EQ(tracer.traces_started(), 1);
}

TEST(TracerTest, CapDropsExcessSpansButCountsThem) {
  sim::SimClock clock;
  Tracer::Options o = AlwaysOn();
  o.max_spans = 2;
  Tracer tracer(o, &clock);
  const TraceContext root = tracer.StartTrace();
  (void)tracer.RecordSpan("a", root, 0, 1);
  (void)tracer.RecordSpan("b", root, 1, 2);
  EXPECT_EQ(tracer.RecordSpan("c", root, 2, 3), 0u);
  obs::Span dropped = tracer.StartSpan("d", root);
  EXPECT_FALSE(dropped.context().active());
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2);
}

TEST(TracerTest, IdenticalCallSequencesExportIdenticalJson) {
  auto run = [] {
    sim::SimClock clock;
    Tracer tracer(AlwaysOn(), &clock);
    for (int i = 0; i < 5; ++i) {
      const TraceContext root = tracer.StartTrace();
      obs::Span top = tracer.StartSpan("event", root);
      (void)tracer.RecordSpan("resolve", top.context(), clock.Now(),
                              clock.Now() + Micros(30));
      top.EndAt(clock.Now() + Micros(90));
      clock.Advance(Micros(250));
    }
    return tracer.ExportChromeJson();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"event\""), std::string::npos);
  EXPECT_NE(first.find("\"resolve\""), std::string::npos);
}

TEST(TracerTest, MergeFromCombinesLanesDeterministically) {
  sim::SimClock clock;
  Tracer::Options lane0 = AlwaysOn();
  Tracer::Options lane1 = AlwaysOn();
  lane1.lane = 1;
  Tracer a(lane0, &clock);
  Tracer b(lane1, &clock);
  (void)a.RecordSpan("shard.execute", a.StartTrace(), 0, 10);
  (void)b.RecordSpan("shard.execute", b.StartTrace(), 0, 10);

  Tracer merged(Tracer::Options{}, &clock);
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  ASSERT_EQ(merged.spans().size(), 2u);
  // Same start time: export orders by lane next, so the merged JSON is
  // stable regardless of merge order.
  Tracer merged_rev(Tracer::Options{}, &clock);
  merged_rev.MergeFrom(b);
  merged_rev.MergeFrom(a);
  EXPECT_EQ(merged.ExportChromeJson(), merged_rev.ExportChromeJson());
  EXPECT_NE(merged.ExportChromeJson().find("\"tid\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, RingWrapKeepsTheNewestPoints) {
  Metrics metrics;
  sim::SimClock clock;
  TimeSeriesConfig cfg;
  cfg.interval = Millis(10);
  cfg.ring_capacity = 4;
  TimeSeriesSampler sampler(cfg, &metrics, &clock);
  sampler.TrackCounter("ops");
  sampler.TrackQuantile("lat", 99);

  EXPECT_FALSE(sampler.MaybeSample());  // Not due yet.
  for (int i = 1; i <= 10; ++i) {
    metrics.Add("ops", 10);
    metrics.Observe("lat", i);
    clock.Advance(Millis(10));
    EXPECT_TRUE(sampler.MaybeSample());
  }
  EXPECT_EQ(sampler.samples_taken(), 10);

  // Capacity 4: samples at t=70..100ms survive, earlier ones fell off.
  const std::vector<SamplePoint> series = sampler.CounterSeries("ops");
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.front().t, Millis(70));
  EXPECT_EQ(series.front().value, 70.0);
  EXPECT_EQ(series.back().t, Millis(100));
  EXPECT_EQ(series.back().value, 100.0);
}

TEST(TimeSeriesTest, RateOverAndQuantileAtWindowMath) {
  Metrics metrics;
  sim::SimClock clock;
  TimeSeriesConfig cfg;
  cfg.interval = Millis(10);
  cfg.ring_capacity = 4;
  TimeSeriesSampler sampler(cfg, &metrics, &clock);
  sampler.TrackCounter("ops");
  sampler.TrackQuantile("lat", 99);
  for (int i = 1; i <= 10; ++i) {
    metrics.Add("ops", 10);
    metrics.Observe("lat", i);
    clock.Advance(Millis(10));
    ASSERT_TRUE(sampler.MaybeSample());
  }

  // Newest sample <= now: t=100 (value 100); oldest in the 30ms window:
  // t=70 (value 70). Delta 30 over 30ms = 1000/s.
  EXPECT_DOUBLE_EQ(sampler.RateOver("ops", Millis(30), Millis(100)), 1000.0);
  // A window too narrow to span two samples yields no rate.
  EXPECT_DOUBLE_EQ(sampler.RateOver("ops", Millis(5), Millis(100)), 0.0);
  // Quantile as of the final sample equals the registry's current view
  // (every observation predated the last tick).
  EXPECT_DOUBLE_EQ(sampler.QuantileAt("lat", 99, Millis(100)),
                   static_cast<double>(
                       metrics.HistOrEmpty("lat").Percentile(99)));
  // Before any retained sample: 0.
  EXPECT_DOUBLE_EQ(sampler.QuantileAt("lat", 99, Millis(5)), 0.0);
}

TEST(TimeSeriesTest, LateWakeTakesOneSampleAndCatchesUp) {
  Metrics metrics;
  sim::SimClock clock;
  TimeSeriesConfig cfg;
  cfg.interval = Millis(10);
  TimeSeriesSampler sampler(cfg, &metrics, &clock);
  sampler.TrackCounter("ops");
  // Sleep through three boundaries: one sample is taken (stamped at the
  // first missed boundary) and the schedule realigns past now.
  clock.Advance(Millis(35));
  EXPECT_TRUE(sampler.MaybeSample());
  EXPECT_EQ(sampler.samples_taken(), 1);
  EXPECT_GT(sampler.NextSampleDue(), clock.Now());
  const std::vector<SamplePoint> series = sampler.CounterSeries("ops");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.front().t, Millis(10));
}

TEST(TimeSeriesTest, SerializeIsDeterministic) {
  auto run = [] {
    Metrics metrics;
    sim::SimClock clock;
    TimeSeriesConfig cfg;
    cfg.interval = Millis(10);
    TimeSeriesSampler sampler(cfg, &metrics, &clock);
    sampler.TrackCounter("ops");
    sampler.TrackQuantile("lat", 50);
    for (int i = 0; i < 6; ++i) {
      metrics.Add("ops", 3);
      metrics.Observe("lat", 7);
      clock.Advance(Millis(10));
      sampler.MaybeSample();
    }
    return sampler.Serialize();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("series counter ops"), std::string::npos);
  EXPECT_NE(first.find("series quantile lat p50"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, PerComponentRingsEvictIndependently) {
  FlightRecorder flight(3);
  for (int i = 1; i <= 5; ++i) {
    flight.Record(Micros(i), "chatty", "tick", "n=" + std::to_string(i));
  }
  flight.Record(Micros(9), "quiet", "once", "only");

  const auto chatty = flight.Events("chatty");
  ASSERT_EQ(chatty.size(), 3u);
  EXPECT_EQ(chatty.front().t, Micros(3));  // 1 and 2 evicted.
  EXPECT_EQ(chatty.back().t, Micros(5));
  // The chatty component could not evict the quiet one's history.
  ASSERT_EQ(flight.Events("quiet").size(), 1u);
  EXPECT_EQ(flight.total_recorded(), 6);
  EXPECT_EQ(flight.total_evicted(), 2);
  EXPECT_EQ(flight.retained(), 4u);
}

TEST(FlightRecorderTest, DumpIsSortedAndStable) {
  FlightRecorder flight(8);
  flight.Record(Micros(2), "zeta", "b", "later");
  flight.Record(Micros(1), "alpha", "a", "first");
  const std::string dump = flight.Dump();
  EXPECT_EQ(dump,
            "[alpha] t=1 a first\n"
            "[zeta] t=2 b later\n");
  EXPECT_EQ(dump, flight.Dump());
}

TEST(FlightRecorderTest, ZeroCapacityDropsEverything) {
  FlightRecorder flight(0);
  flight.Record(Micros(1), "x", "k", "d");
  EXPECT_TRUE(flight.Events("x").empty());
  EXPECT_EQ(flight.retained(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics handles (hot-path API parity with the string API)
// ---------------------------------------------------------------------------

TEST(MetricsHandleTest, HandleAndStringApisShareOneSlot) {
  Metrics metrics;
  Metrics::Counter c = metrics.RegisterCounter("x.y");
  c.Add();
  c.Add(4);
  metrics.Add("x.y", 2);
  EXPECT_EQ(metrics.Get("x.y"), 7);
  EXPECT_EQ(c.value(), 7);

  Metrics::HistHandle h = metrics.RegisterHist("x.h");
  h.Observe(5);
  metrics.Observe("x.h", 9);
  EXPECT_EQ(metrics.HistOrEmpty("x.h").count(), 2);
}

TEST(MetricsHandleTest, HandlesSurviveReset) {
  Metrics metrics;
  Metrics::Counter c = metrics.RegisterCounter("x.y");
  Metrics::HistHandle h = metrics.RegisterHist("x.h");
  c.Add(10);
  h.Observe(3);
  metrics.Reset();
  EXPECT_EQ(metrics.Get("x.y"), 0);
  EXPECT_EQ(metrics.HistOrEmpty("x.h").count(), 0);
  c.Add();  // The slot must still be live after Reset.
  h.Observe(4);
  EXPECT_EQ(metrics.Get("x.y"), 1);
  EXPECT_EQ(metrics.HistOrEmpty("x.h").count(), 1);
}

TEST(MetricsHandleTest, DefaultHandleIsANoOp) {
  Metrics::Counter c;
  c.Add(100);
  EXPECT_EQ(c.value(), 0);
  Metrics::HistHandle h;
  h.Observe(7);  // Must not crash.
}

TEST(MetricsDumpTest, HistogramLinesCarryConsistentFields) {
  Metrics metrics;
  metrics.Add("b.counter", 2);
  metrics.Observe("a.hist", 5);
  (void)metrics.RegisterHist("z.empty");  // Registered but never observed.
  const std::string dump = metrics.Dump();
  EXPECT_NE(dump.find("b.counter = 2\n"), std::string::npos);
  EXPECT_NE(dump.find("a.hist : count=1 p50="), std::string::npos);
  // Empty histograms get the same fields, not a different shape.
  EXPECT_NE(dump.find("z.empty : count=0 p50=0 p99=0\n"), std::string::npos);
  // Deterministic bytes: dumping twice is identical.
  EXPECT_EQ(dump, metrics.Dump());
}

// ---------------------------------------------------------------------------
// Scenario integration: replay determinism, zero perturbation, stage
// coverage and the SLO-failure flight dump
// ---------------------------------------------------------------------------

/// Small smoke deployment exercising every traced stage: coalesced storm
/// writes (park/flush), a scale-out + throttled rebalance (migration
/// chunks/cutovers) and steady FE/PS traffic (resolve/dispatch/replica).
ScenarioSpec ObsSmoke(double trace_rate, MicroDuration sample_interval) {
  ScenarioSpec spec;
  spec.name = "obs-smoke";
  spec.testbed.sites = 2;
  spec.testbed.seed = 7;
  spec.testbed.subscribers = 150;
  spec.testbed.pin_home_sites = true;
  spec.testbed.udr.replication_factor = 2;
  spec.testbed.udr.se_per_cluster = 1;
  spec.testbed.udr.partitions_per_se = 2;
  spec.testbed.udr.fe_slave_reads = true;
  spec.testbed.udr.coalesce_window_us = Micros(200);
  spec.testbed.udr.coalesce_max_ops = 64;
  spec.testbed.udr.migration_bandwidth_bps = 4 * 1024 * 1024;
  spec.testbed.udr.migration_chunk_bytes = 32 * 1024;
  spec.testbed.udr.trace_sample_rate = trace_rate;
  spec.testbed.udr.obs_sample_interval_us = sample_interval;
  spec.duration = Seconds(4);
  spec.fe_rate_per_sec = 200.0;
  spec.ps_rate_per_sec = 10.0;
  spec.script.AttachStorm(Seconds(1), Seconds(1), /*events_per_tick=*/4);
  spec.script.ScaleOut(Seconds(2), /*site=*/1);
  spec.script.StartRebalance(Seconds(2) + Millis(100));
  const MicroTime at = spec.duration + Millis(1);
  spec.script.AssertSlo(at, SloCheck{SloKind::kZeroAckedWriteLoss,
                                     "zero-acked-write-loss", 0.0, -1});
  spec.script.AssertSlo(at, SloCheck{SloKind::kMigrationComplete,
                                     "migration-complete", 0.0, -1});
  return spec;
}

TEST(ObsScenarioTest, TracedReplayIsByteIdentical) {
  const ScenarioSpec spec = ObsSmoke(1.0, Millis(100));
  scenario::Engine first(spec);
  const std::string report1 = first.Run().Serialize();
  const std::string trace1 =
      first.testbed().udr().tracer()->ExportChromeJson();
  scenario::Engine second(spec);
  const std::string report2 = second.Run().Serialize();
  const std::string trace2 =
      second.testbed().udr().tracer()->ExportChromeJson();
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(report1, report2);
  EXPECT_EQ(trace1, trace2);
  // The sampler section made it into the serialized report.
  EXPECT_NE(report1.find("obs-series-begin"), std::string::npos);
  EXPECT_NE(report1.find("series counter router.routed"), std::string::npos);
}

TEST(ObsScenarioTest, TracingDoesNotPerturbTheModelledRun) {
  // Same spec, sampler off in both; one traced at 100%, one untraced. The
  // serialized reports (latencies, stats, SLOs) must be byte-identical —
  // the overhead gate of bench_obs_overhead relies on exactly this.
  const std::string traced =
      RunScenario(ObsSmoke(1.0, /*sample_interval=*/0)).Serialize();
  const std::string untraced =
      RunScenario(ObsSmoke(0.0, /*sample_interval=*/0)).Serialize();
  EXPECT_EQ(traced, untraced);
}

TEST(ObsScenarioTest, TraceCoversEveryMajorStage) {
  const ScenarioSpec spec = ObsSmoke(1.0, Millis(100));
  scenario::Engine engine(spec);
  const ScenarioReport report = engine.Run();
  EXPECT_TRUE(report.Passed());
  ASSERT_NE(engine.testbed().udr().tracer(), nullptr);
  const std::string json =
      engine.testbed().udr().tracer()->ExportChromeJson();
  for (const char* stage :
       {"\"event\"", "\"route.batch\"", "\"resolve\"", "\"dispatch\"",
        "\"replica.write\"", "\"replica.read\"", "\"coalesce.park\"",
        "\"coalesce.flush\"", "\"migration.chunk\"", "\"migration.cutover\""}) {
    EXPECT_NE(json.find(stage), std::string::npos) << "missing " << stage;
  }
}

TEST(ObsScenarioTest, FailingSloDumpsTheFlightRecorder) {
  ScenarioSpec spec = ObsSmoke(0.0, /*sample_interval=*/0);
  spec.script.KillSite(Seconds(1), 1);
  spec.script.RestoreSite(Seconds(3), 1);
  // An impossible bound forces the breach that triggers the dump.
  spec.script.AssertSlo(spec.duration + Millis(1),
                        SloCheck{SloKind::kFeAvailabilityMin,
                                 "fe-availability-min", 1.01, -1});
  const ScenarioReport report = RunScenario(spec);
  EXPECT_FALSE(report.Passed());
  ASSERT_FALSE(report.flight_dump.empty());
  // The dump carries the control-plane history leading to the breach: the
  // injected fault steps, the cluster flips and the failed evaluation.
  EXPECT_NE(report.flight_dump.find("kill-site"), std::string::npos);
  EXPECT_NE(report.flight_dump.find("[cluster]"), std::string::npos);
  EXPECT_NE(report.flight_dump.find("fail fe-availability-min"),
            std::string::npos);
  EXPECT_NE(report.Serialize().find("flight-recorder-begin"),
            std::string::npos);
}

TEST(ObsScenarioTest, PassingRunWithoutObsKeepsLegacySerialization) {
  const ScenarioReport report = RunScenario(ObsSmoke(0.0, 0));
  EXPECT_TRUE(report.Passed());
  const std::string s = report.Serialize();
  EXPECT_EQ(s.find("obs-series-begin"), std::string::npos);
  EXPECT_EQ(s.find("flight-recorder-begin"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharded: per-shard tracers, driver-stamped sampling, race-free merge
// (TSan target)
// ---------------------------------------------------------------------------

TEST(ObsShardedTest, PerShardTracersMergeRaceFreeAfterJoin) {
  exec::ShardRuntimeOptions ro;
  ro.num_shards = 2;
  ro.shard.total_subscribers = 50;
  ro.shard.trace_sample_rate = 1.0;
  exec::ShardRuntime runtime(ro);
  runtime.Start();
  uint64_t seq = 0;
  int per_shard[2] = {0, 0};
  for (int i = 0; i < 300; ++i) {
    exec::ShardBatch batch;
    exec::ShardOp op;
    op.subscriber = static_cast<uint64_t>(i) % 50;
    op.seq = ++seq;
    op.write = (i % 3 == 0);
    batch.ops.push_back(op);
    const int shard = runtime.ShardOf(op.subscriber);
    ++per_shard[shard];
    runtime.Submit(std::move(batch), shard);
  }
  const auto& report = runtime.Finish();
  EXPECT_EQ(report.ops_done, 300);
  EXPECT_EQ(report.order_violations, 0);

  sim::SimClock scratch;
  Tracer merged(Tracer::Options{}, &scratch);
  runtime.MergeTracersInto(&merged);
  // Every handed-off batch (rate 1.0) opened exactly one shard.execute span
  // on its owning shard's tracer, lane = shard index.
  int execute_spans = 0;
  int lane_spans[2] = {0, 0};
  for (const SpanRecord& s : merged.spans()) {
    if (std::string(s.name) == "shard.execute") {
      ++execute_spans;
      ASSERT_LT(s.lane, 2u);
      ++lane_spans[s.lane];
    }
  }
  EXPECT_EQ(execute_spans, 300);
  EXPECT_EQ(lane_spans[0], per_shard[0]);
  EXPECT_EQ(lane_spans[1], per_shard[1]);
  // The merged export is well-formed and mentions both lanes.
  const std::string json = merged.ExportChromeJson();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(ObsShardedTest, DriverStampingIsDeterministicAcrossRuns) {
  auto run = [] {
    exec::ShardRuntimeOptions ro;
    ro.num_shards = 2;
    ro.shard.total_subscribers = 40;
    ro.shard.trace_sample_rate = 0.25;
    exec::ShardRuntime runtime(ro);
    runtime.Start();
    uint64_t seq = 0;
    for (int i = 0; i < 200; ++i) {
      exec::ShardBatch batch;
      exec::ShardOp op;
      op.subscriber = static_cast<uint64_t>(i) % 40;
      op.seq = ++seq;
      op.write = (i % 2 == 0);
      batch.ops.push_back(op);
      runtime.Submit(std::move(batch), runtime.ShardOf(op.subscriber));
    }
    runtime.Finish();
    sim::SimClock scratch;
    Tracer merged(Tracer::Options{}, &scratch);
    runtime.MergeTracersInto(&merged);
    return merged.ExportChromeJson();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // At 25% some batches are sampled and some are not (the decision rode the
  // handoff, it was not re-rolled per shard).
  EXPECT_NE(first.find("shard.execute"), std::string::npos);
}

}  // namespace
}  // namespace udr
