// Tests for the PoA cross-event dispatch window: routing::Coalescer window
// mechanics (deadline close, size-cap close, passthrough), demultiplexed
// per-event results with per-event error isolation and the queueing-delay /
// service-latency split, the enqueue path through the LDAP layers
// (UdrNf::SubmitEvent / PumpEvents / TakeEvent), the deferred front-end
// mode, and the concurrent-event traffic driver.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "routing/coalescer.h"
#include "routing/router.h"
#include "telecom/front_end.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

namespace udr::routing {
namespace {

using location::Identity;
using location::IdentityType;

workload::TestbedOptions CoalesceOptions(int64_t subscribers,
                                         MicroDuration window,
                                         int max_ops = 0) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = subscribers;
  o.udr.coalesce_window_us = window;
  o.udr.coalesce_max_ops = max_ops;
  return o;
}

void Settle(workload::Testbed& bed) {
  bed.clock().Advance(Seconds(120));
  bed.udr().CatchUpAllPartitions();
}

ldap::LdapRequest ReadOf(const telecom::Subscriber& sub,
                         bool master_only = false) {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", sub.imsi);
  req.master_only = master_only;
  return req;
}

ldap::LdapRequest ModifyOf(const telecom::Subscriber& sub,
                           const std::string& attr, std::string value) {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = ldap::SubscriberDn("imsi", sub.imsi);
  req.mods.push_back(
      {ldap::ModType::kReplace, attr, storage::Value(std::move(value))});
  return req;
}

/// Payload equality of two LDAP results (codes, entries, staleness), with
/// latencies excluded — the coalesced path redistributes time on purpose.
void ExpectSamePayload(const ldap::LdapResult& a, const ldap::LdapResult& b) {
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.stale, b.stale);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const storage::Record& ra = a.entries[i].record;
    const storage::Record& rb = b.entries[i].record;
    ASSERT_EQ(ra.entries().size(), rb.entries().size());
    for (const storage::PackedAttr& e : ra.entries()) {
      std::string_view name = storage::AttrNameOf(e.name_id);
      auto v = rb.Get(name);
      ASSERT_TRUE(v.has_value()) << name;
      EXPECT_EQ(storage::ValueToString(e.attr.value),
                storage::ValueToString(*v));
    }
  }
}

// ---------------------------------------------------------------------------
// Coalescer window mechanics (routing layer)
// ---------------------------------------------------------------------------

TEST(CoalescerTest, DeadlineClosesTheWindow) {
  workload::Testbed bed(CoalesceOptions(10, Millis(2)));
  Settle(bed);
  Coalescer* window = bed.udr().coalescer(0);
  ASSERT_NE(window, nullptr);

  BatchRequest a;
  a.Add(Operation::ReadRecord(bed.factory().Make(1).ImsiId()));
  EventId ev_a = window->Submit(std::move(a));
  const MicroTime deadline = window->deadline();
  EXPECT_EQ(deadline, bed.clock().Now() + Millis(2));

  bed.clock().Advance(Millis(1));
  BatchRequest b;
  b.Add(Operation::ReadRecord(bed.factory().Make(2).ImsiId()));
  EventId ev_b = window->Submit(std::move(b));
  // A later arrival does not extend the open window's deadline.
  EXPECT_EQ(window->deadline(), deadline);

  // Before the deadline nothing flushes.
  EXPECT_FALSE(window->FlushIfDue());
  EXPECT_FALSE(window->Take(ev_a).has_value());
  EXPECT_EQ(window->pending_events(), 2u);

  bed.clock().AdvanceTo(deadline);
  EXPECT_TRUE(window->FlushIfDue());
  auto out_a = window->Take(ev_a);
  auto out_b = window->Take(ev_b);
  ASSERT_TRUE(out_a.has_value());
  ASSERT_TRUE(out_b.has_value());
  EXPECT_TRUE(out_a->ok());
  EXPECT_TRUE(out_b->ok());
  EXPECT_EQ(out_a->coalesced_events, 2);
  // Queueing-delay split: the opener waited the whole window, the later
  // arrival only the remainder; both share the same service latency.
  EXPECT_EQ(out_a->queue_delay, Millis(2));
  EXPECT_EQ(out_b->queue_delay, Millis(1));
  EXPECT_EQ(out_a->service_latency, out_b->service_latency);
  EXPECT_GT(out_a->service_latency, 0);
}

TEST(CoalescerTest, SizeCapClosesTheWindowEarly) {
  workload::Testbed bed(CoalesceOptions(10, Seconds(10), /*max_ops=*/3));
  Settle(bed);
  Coalescer* window = bed.udr().coalescer(0);

  BatchRequest a;
  a.Add(Operation::ReadRecord(bed.factory().Make(1).ImsiId()));
  a.Add(Operation::ReadRecord(bed.factory().Make(2).ImsiId()));
  EventId ev_a = window->Submit(std::move(a));
  EXPECT_FALSE(window->Take(ev_a).has_value());

  BatchRequest b;
  b.Add(Operation::ReadRecord(bed.factory().Make(3).ImsiId()));
  EventId ev_b = window->Submit(std::move(b));  // 3 ops >= cap: flush now.
  auto out_a = window->Take(ev_a);
  auto out_b = window->Take(ev_b);
  ASSERT_TRUE(out_a.has_value());
  ASSERT_TRUE(out_b.has_value());
  // No clock advance happened: the cap close adds zero queueing delay.
  EXPECT_EQ(out_a->queue_delay, 0);
  EXPECT_EQ(out_b->queue_delay, 0);
  EXPECT_FALSE(window->HasPending());
}

TEST(CoalescerTest, PerEventErrorIsolation) {
  workload::Testbed bed(CoalesceOptions(10, Millis(1)));
  Settle(bed);
  Coalescer* window = bed.udr().coalescer(0);

  BatchRequest bad;
  bad.Add(Operation::ReadRecord(
      Identity{IdentityType::kImsi, "999999999999999"}));
  EventId ev_bad = window->Submit(std::move(bad));
  BatchRequest good;
  good.Add(Operation::ReadRecord(bed.factory().Make(4).ImsiId()));
  EventId ev_good = window->Submit(std::move(good));

  bed.clock().Advance(Millis(1));
  ASSERT_TRUE(window->FlushIfDue());
  auto out_bad = window->Take(ev_bad);
  auto out_good = window->Take(ev_good);
  ASSERT_TRUE(out_bad.has_value());
  ASSERT_TRUE(out_good.has_value());
  EXPECT_EQ(out_bad->failed_ops, 1);
  EXPECT_TRUE(out_good->ok());
  ASSERT_EQ(out_good->outcomes.size(), 1u);
  EXPECT_TRUE(out_good->outcomes[0].record.has_value());
}

TEST(CoalescerTest, CrossEventPerKeyOrderIsArrivalOrder) {
  workload::Testbed bed(CoalesceOptions(10, Millis(1)));
  Settle(bed);
  Coalescer* window = bed.udr().coalescer(0);
  Identity id = bed.factory().Make(6).ImsiId();

  BatchRequest writer;
  writer.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("coalesced")}}));
  EventId ev_w = window->Submit(std::move(writer));
  BatchRequest reader;  // A different event, same subscriber, arrives later.
  reader.Add(Operation::ReadAttribute(id, "cfu-number",
                                      replication::ReadPreference::kMasterOnly));
  EventId ev_r = window->Submit(std::move(reader));

  bed.clock().Advance(Millis(1));
  ASSERT_TRUE(window->FlushIfDue());
  auto out_w = window->Take(ev_w);
  auto out_r = window->Take(ev_r);
  ASSERT_TRUE(out_w.has_value() && out_w->ok());
  ASSERT_TRUE(out_r.has_value() && out_r->ok());
  // Both events shared one partition-group dispatch...
  EXPECT_EQ(out_r->partition_groups, 1);
  // ...and the later event's read observed the earlier event's write.
  ASSERT_TRUE(out_r->outcomes[0].value.has_value());
  EXPECT_EQ(storage::ValueToString(*out_r->outcomes[0].value), "coalesced");
}

// ---------------------------------------------------------------------------
// Enqueue path through the LDAP layers
// ---------------------------------------------------------------------------

TEST(SubmitEventTest, ZeroWindowIsPassthroughIdenticalToSubmitBatch) {
  workload::TestbedOptions o = CoalesceOptions(10, /*window=*/0);
  workload::Testbed bed(o);
  workload::Testbed twin(o);
  Settle(bed);
  Settle(twin);

  telecom::Subscriber sub = bed.factory().Make(3);
  std::vector<ldap::LdapRequest> requests{
      ReadOf(sub), ModifyOf(sub, "serving-vlr", "vlr7"),
      ReadOf(sub, /*master_only=*/true)};

  auto handle = bed.udr().SubmitEvent(requests, 0);
  ASSERT_TRUE(handle.ok());
  // No window: the event completed at enqueue, no pumping needed.
  auto deferred = bed.udr().TakeEvent(*handle);
  ASSERT_TRUE(deferred.has_value());
  EXPECT_EQ(deferred->queue_delay, 0);

  ldap::LdapBatchResult inline_result = twin.udr().SubmitBatch(requests, 0);
  ASSERT_EQ(deferred->results.size(), inline_result.results.size());
  for (size_t i = 0; i < deferred->results.size(); ++i) {
    ExpectSamePayload(deferred->results[i], inline_result.results[i]);
  }
  EXPECT_EQ(deferred->latency, inline_result.latency);
  EXPECT_EQ(deferred->partition_groups, inline_result.partition_groups);
}

TEST(SubmitEventTest, CoalescedResultsMatchSerialExecution) {
  workload::TestbedOptions o = CoalesceOptions(24, Millis(2));
  workload::Testbed bed(o);
  workload::TestbedOptions serial_o = CoalesceOptions(24, /*window=*/0);
  workload::Testbed twin(serial_o);
  Settle(bed);
  Settle(twin);

  // Eight concurrent events, each one subscriber's read + modify + read.
  std::vector<std::vector<ldap::LdapRequest>> events;
  for (uint64_t i = 0; i < 8; ++i) {
    telecom::Subscriber sub = bed.factory().Make(i);
    events.push_back({ReadOf(sub),
                      ModifyOf(sub, "serving-vlr", "vlr" + std::to_string(i)),
                      ReadOf(sub, /*master_only=*/true)});
  }

  std::vector<uint64_t> handles;
  for (const auto& event : events) {
    auto h = bed.udr().SubmitEvent(event, 0);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
    bed.clock().Advance(Micros(100));  // Staggered arrivals inside the window.
    bed.udr().PumpEvents();
  }
  bed.clock().AdvanceTo(bed.udr().NextEventDeadline());
  bed.udr().PumpEvents();

  for (size_t e = 0; e < events.size(); ++e) {
    auto coalesced = bed.udr().TakeEvent(handles[e]);
    ASSERT_TRUE(coalesced.has_value()) << e;
    // Per-event demux must reproduce serial execution byte for byte.
    ldap::LdapBatchResult serial = twin.udr().SubmitBatch(events[e], 0);
    ASSERT_EQ(coalesced->results.size(), serial.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
      ExpectSamePayload(coalesced->results[i], serial.results[i]);
    }
    // Events that shared the window report the shared flush.
    EXPECT_GT(coalesced->coalesced_events, 1) << e;
    // Added queueing delay is bounded by the window.
    EXPECT_LE(coalesced->queue_delay, Millis(2)) << e;
  }
  // Identical state effects on both testbeds.
  for (uint64_t i = 0; i < 8; ++i) {
    for (auto* which : {&bed, &twin}) {
      auto loc =
          which->udr().AuthoritativeLookup(which->factory().Make(i).ImsiId());
      ASSERT_TRUE(loc.ok());
      auto record =
          which->udr().partition(loc->partition)
              ->ReadRecord(0, loc->key, replication::ReadPreference::kMasterOnly);
      ASSERT_TRUE(record.ok());
      EXPECT_EQ(storage::ValueToString(*record->Get("serving-vlr")),
                "vlr" + std::to_string(i));
    }
  }
}

TEST(SubmitEventTest, AddEventClosesTheWindowAndExecutesInline) {
  workload::Testbed bed(CoalesceOptions(5, Millis(1)));
  Settle(bed);
  telecom::Subscriber fresh = bed.factory().Make(50);
  int64_t before = bed.udr().SubscriberCount();

  // An earlier event parks in the window...
  auto parked = bed.udr().SubmitEvent({ReadOf(bed.factory().Make(1))}, 0);
  ASSERT_TRUE(parked.ok());
  EXPECT_FALSE(bed.udr().TakeEvent(*parked).has_value());

  // ...then an Add-carrying event arrives: it must not reorder against the
  // parked ops, so the window closes (the parked event dispatches first)
  // and the whole Add event executes inline, as serial execution would.
  ldap::LdapRequest add;
  add.op = ldap::LdapOp::kAdd;
  add.dn = ldap::SubscriberDn("imsi", fresh.imsi);
  add.add_entry = fresh.profile;
  auto handle =
      bed.udr().SubmitEvent({add, ReadOf(fresh, /*master_only=*/true)}, 0);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(bed.udr().SubscriberCount(), before + 1);

  auto earlier = bed.udr().TakeEvent(*parked);
  ASSERT_TRUE(earlier.has_value());
  EXPECT_TRUE(earlier->ok());
  auto out = bed.udr().TakeEvent(*handle);  // No pump needed: ran inline.
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->ok()) << out->results[0].diagnostic << " / "
                         << out->results[1].diagnostic;
  ASSERT_EQ(out->results[1].entries.size(), 1u);
  EXPECT_EQ(out->queue_delay, 0);
}

TEST(SubmitEventTest, AddAfterParkedDeleteKeepsArrivalOrder) {
  workload::Testbed bed(CoalesceOptions(6, Millis(1)));
  Settle(bed);
  telecom::Subscriber sub = bed.factory().Make(2);
  const int64_t before = bed.udr().SubscriberCount();

  // Event A parks a delete of X; event B re-adds X. Serial order is
  // delete-then-add, so B must observe A's delete — an Add running ahead of
  // the parked window would fail with entryAlreadyExists instead.
  ldap::LdapRequest del;
  del.op = ldap::LdapOp::kDelete;
  del.dn = ldap::SubscriberDn("imsi", sub.imsi);
  del.master_only = true;
  auto a = bed.udr().SubmitEvent({del}, 0);
  ASSERT_TRUE(a.ok());
  ldap::LdapRequest add;
  add.op = ldap::LdapOp::kAdd;
  add.dn = ldap::SubscriberDn("imsi", sub.imsi);
  add.add_entry = sub.profile;
  auto b = bed.udr().SubmitEvent({add}, 0);
  ASSERT_TRUE(b.ok());

  auto out_a = bed.udr().TakeEvent(*a);
  auto out_b = bed.udr().TakeEvent(*b);
  ASSERT_TRUE(out_a.has_value());
  ASSERT_TRUE(out_b.has_value());
  EXPECT_EQ(out_a->results[0].code, ldap::LdapResultCode::kSuccess);
  EXPECT_EQ(out_b->results[0].code, ldap::LdapResultCode::kSuccess)
      << out_b->results[0].diagnostic;
  EXPECT_EQ(bed.udr().SubscriberCount(), before);  // Deleted, then re-added.
}

TEST(SubmitEventTest, FlushEventsIsAnEndOfRunBarrier) {
  workload::Testbed bed(CoalesceOptions(10, Seconds(30)));
  Settle(bed);
  auto handle = bed.udr().SubmitEvent({ReadOf(bed.factory().Make(1))}, 0);
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(bed.udr().TakeEvent(*handle).has_value());
  bed.udr().FlushEvents();  // No clock advance: barrier close.
  auto out = bed.udr().TakeEvent(*handle);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->ok());
  EXPECT_EQ(out->queue_delay, 0);
}

// ---------------------------------------------------------------------------
// Deferred front-end procedures and the concurrent-event traffic driver
// ---------------------------------------------------------------------------

TEST(DeferredFrontEndTest, ProcedureCompletesWhenTheWindowFlushes) {
  workload::Testbed bed(CoalesceOptions(20, Millis(2)));
  Settle(bed);
  telecom::HlrFe fe(0, &bed.udr(), /*batched=*/false);
  fe.set_deferred(true);

  telecom::ProcedureResult first = fe.Authenticate(bed.factory().Make(2).ImsiId());
  telecom::ProcedureResult second =
      fe.UpdateLocation(bed.factory().Make(3).ImsiId(), "vlr1", 101);
  ASSERT_TRUE(first.deferred());
  ASSERT_TRUE(second.deferred());
  EXPECT_EQ(fe.procedures_ok(), 0);  // Scored at collection, not enqueue.
  EXPECT_FALSE(fe.TakeDeferred(*first.pending).has_value());

  bed.clock().AdvanceTo(bed.udr().NextEventDeadline());
  bed.udr().PumpEvents();
  auto done_first = fe.TakeDeferred(*first.pending);
  auto done_second = fe.TakeDeferred(*second.pending);
  ASSERT_TRUE(done_first.has_value());
  ASSERT_TRUE(done_second.has_value());
  EXPECT_TRUE(done_first->ok());
  EXPECT_TRUE(done_second->ok());
  EXPECT_EQ(done_first->ldap_ops, 1);
  EXPECT_EQ(done_second->ldap_ops, 2);
  EXPECT_LE(done_first->queue_delay, Millis(2));
  EXPECT_GT(done_first->latency, done_first->queue_delay);
  EXPECT_EQ(fe.procedures_ok(), 2);
}

TEST(ConcurrentTrafficTest, CoalescedTrafficStaysAvailableWithBoundedDelay) {
  workload::TestbedOptions o = CoalesceOptions(200, Millis(5));
  o.udr.coalesce_max_ops = 64;
  workload::Testbed bed(o);
  Settle(bed);

  workload::TrafficOptions t;
  t.duration = Seconds(5);
  t.fe_rate_per_sec = 100.0;
  t.ps_rate_per_sec = 2.0;
  t.subscriber_count = 200;
  t.concurrent_events = 8;
  workload::TrafficReport report = workload::RunTraffic(bed, t);

  workload::ClassStats fe = report.FeAll();
  EXPECT_GT(fe.attempted, 0);
  // Eight events per arrival tick: the driver really multiplied the load.
  EXPECT_GE(fe.attempted, 8 * 400);
  EXPECT_DOUBLE_EQ(fe.availability(), 1.0);
  EXPECT_DOUBLE_EQ(report.ps.availability(), 1.0);
  // Every deferred event was collected and its wait stayed inside the window.
  EXPECT_EQ(report.fe_queue_delay.count(), fe.attempted);
  EXPECT_LE(report.fe_queue_delay.max(), Millis(5));
  // Windows really coalesced events across arrivals.
  EXPECT_GT(bed.udr().metrics().HistOrEmpty("coalescer.flush.events").Mean(),
            1.5);
}

}  // namespace
}  // namespace udr::routing
