// Background migration subsystem: planner determinism/idempotency, the
// throttled copy -> catch-up -> cutover state machine, zero acknowledged-
// write loss under concurrent traffic, destination-failure abort semantics,
// the re-home bypass-exception lifecycle, and the traffic-driver coupling.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "ldap/dn.h"
#include "migration/planner.h"
#include "migration/scheduler.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

using namespace udr;
using location::Identity;

namespace {

/// UDR config with a bandwidth-throttled migration scheduler.
udrnf::UdrConfig ThrottledConfig(int64_t bps, int64_t chunk) {
  udrnf::UdrConfig c;
  c.partitions_per_se = 2;
  c.migration_bandwidth_bps = bps;
  c.migration_chunk_bytes = chunk;
  return c;
}

/// Provisions `n` subscribers (plus a few modifies so logs carry non-create
/// entries) into a UDR whose PoA serves site 0.
void Provision(udrnf::UdrNf& udr, telecom::SubscriberFactory& factory, int n) {
  for (int i = 0; i < n; ++i) {
    auto spec = factory.MakeSpec(static_cast<uint64_t>(i), std::nullopt);
    ASSERT_TRUE(udr.CreateSubscriber(spec, 0).ok()) << i;
  }
  for (int i = 0; i < n / 5; ++i) {
    ldap::LdapRequest mod;
    mod.op = ldap::LdapOp::kModify;
    mod.dn = ldap::SubscriberDn("imsi", factory.ImsiOf(static_cast<uint64_t>(i)));
    mod.mods.push_back(
        {ldap::ModType::kReplace, "cfu-number", std::string("+4900000")});
    ASSERT_EQ(udr.Submit(mod, 0).code, ldap::LdapResultCode::kSuccess);
  }
}

/// Drives the scheduler to completion by advancing the clock to each chunk
/// deadline; returns the number of pump iterations.
int DrainByDeadlines(udrnf::UdrNf& udr, sim::SimClock& clock,
                     int max_iters = 200000) {
  int iters = 0;
  while (udr.MigrationActive() && iters < max_iters) {
    MicroTime at = udr.NextMigrationDeadline();
    EXPECT_NE(at, kTimeInfinity);
    if (at == kTimeInfinity) break;
    clock.AdvanceTo(std::max(at, clock.Now()));
    udr.PumpMigration();
    ++iters;
  }
  return iters;
}

/// Master-only read-back of one provisioned identity's record.
StatusOr<storage::Record> MasterRead(udrnf::UdrNf& udr, const Identity& id) {
  auto loc = udr.AuthoritativeLookup(id);
  if (!loc.ok()) return loc.status();
  return udr.partition(loc->partition)
      ->ReadRecord(0, loc->key, replication::ReadPreference::kMasterOnly);
}

// ---------------------------------------------------------------------------
// Throttled pacing mechanics
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, ThrottledMoveIsPacedByTheBandwidthModel) {
  const int64_t kBps = 1 << 20;  // 1 MiB/s.
  sim::SimClock clock;
  sim::Network network(sim::Topology(4), &clock);
  udrnf::UdrNf udr(ThrottledConfig(kBps, 1024), &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(7);
  Provision(udr, factory, 200);

  clock.Advance(Seconds(5));
  ASSERT_TRUE(udr.AddCluster(3).ok());
  ASSERT_GT(udr.partition_map().PrimarySpread(), 1);

  auto progress = udr.StartMigration();
  ASSERT_GT(progress.tasks_pending, 0);
  ASSERT_GT(progress.bytes_estimated, 0);
  EXPECT_TRUE(udr.MigrationActive());

  // A pump at a frozen clock moves at most one burst, never the whole plan.
  udr.PumpMigration();
  EXPECT_TRUE(udr.MigrationActive());
  EXPECT_LT(udr.MigrationStatus().bytes_moved, progress.bytes_estimated);

  const MicroTime start = clock.Now();
  DrainByDeadlines(udr, clock);
  ASSERT_FALSE(udr.MigrationActive());

  auto done = udr.MigrationStatus();
  EXPECT_EQ(done.tasks_failed, 0);
  EXPECT_EQ(done.tasks_done, progress.tasks_total);
  EXPECT_LE(udr.partition_map().PrimarySpread(), 1);

  // Total bytes match the planner's estimate (no concurrent writes here).
  EXPECT_NEAR(static_cast<double>(done.bytes_moved),
              static_cast<double>(done.bytes_estimated),
              0.05 * static_cast<double>(done.bytes_estimated) + 1.0);

  // Pacing: moving B bytes at kBps takes ~B/kBps of sim time.
  const double expected_us =
      static_cast<double>(done.bytes_moved) * 1e6 / static_cast<double>(kBps);
  const double took_us = static_cast<double>(clock.Now() - start);
  EXPECT_GT(took_us, 0.5 * expected_us);
  EXPECT_LT(took_us, 2.0 * expected_us + Millis(10));
}

// ---------------------------------------------------------------------------
// Zero acknowledged-write loss under concurrent traffic (property test)
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, AckedWritesDuringCopyAndCatchUpSurviveCutover) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(4), &clock);
  udrnf::UdrNf udr(ThrottledConfig(256 * 1024, 512), &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(11);
  Provision(udr, factory, 160);

  clock.Advance(Seconds(5));
  ASSERT_TRUE(udr.AddCluster(3).ok());
  auto progress = udr.StartMigration();
  ASSERT_GT(progress.tasks_pending, 0);

  // Interleave acknowledged writes with every pacing step: modifies against
  // existing subscribers (some of whose partitions are mid-copy) and fresh
  // activations. Track the last acknowledged value per identity.
  std::unordered_map<uint64_t, std::string> acked_cfu;
  std::vector<Identity> created;
  int step = 0;
  while (udr.MigrationActive() && step < 100000) {
    MicroTime at = udr.NextMigrationDeadline();
    ASSERT_NE(at, kTimeInfinity);
    clock.AdvanceTo(std::max(at, clock.Now()));
    udr.PumpMigration();

    uint64_t index = static_cast<uint64_t>(step % 160);
    std::string value = "+49" + std::to_string(step);
    ldap::LdapRequest mod;
    mod.op = ldap::LdapOp::kModify;
    mod.dn = ldap::SubscriberDn("imsi", factory.ImsiOf(index));
    mod.mods.push_back({ldap::ModType::kReplace, "cfu-number", value});
    if (udr.Submit(mod, 0).code == ldap::LdapResultCode::kSuccess) {
      acked_cfu[index] = value;  // Acknowledged: must survive the cutover.
    }
    if (step % 7 == 0) {
      auto spec = factory.MakeSpec(10000 + static_cast<uint64_t>(step),
                                   std::nullopt);
      if (udr.CreateSubscriber(spec, 0).ok()) {
        created.push_back(spec.identities.front());
      }
    }
    ++step;
  }
  ASSERT_FALSE(udr.MigrationActive());
  ASSERT_FALSE(acked_cfu.empty());
  auto done = udr.MigrationStatus();
  EXPECT_EQ(done.tasks_failed, 0);

  // Every acknowledged write is readable after cutover, at its final value.
  for (const auto& [index, value] : acked_cfu) {
    auto record = MasterRead(udr, factory.Make(index).ImsiId());
    ASSERT_TRUE(record.ok()) << "acked write lost for subscriber " << index;
    ASSERT_TRUE(record->Has("cfu-number")) << index;
    EXPECT_EQ(storage::ValueToString(*record->Get("cfu-number")), value);
  }
  for (const Identity& id : created) {
    EXPECT_TRUE(MasterRead(udr, id).ok()) << id.ToString();
  }
}

// ---------------------------------------------------------------------------
// Destination failure mid-copy: abort, no map flip
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, KilledDestinationLeavesSourceAuthoritative) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(4), &clock);
  udrnf::UdrNf udr(ThrottledConfig(128 * 1024, 512), &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(23);
  Provision(udr, factory, 160);

  clock.Advance(Seconds(5));
  ASSERT_TRUE(udr.AddCluster(3).ok());
  const size_t se_count = udr.partition_map().se_count();
  std::vector<const storage::StorageElement*> masters_before;
  for (uint32_t p = 0; p < udr.partition_count(); ++p) {
    masters_before.push_back(udr.partition_map().primary_se(p));
  }

  auto progress = udr.StartMigration();
  ASSERT_GT(progress.tasks_pending, 0);

  // Two pacing steps: the first copy is in flight but nowhere near done.
  for (int i = 0; i < 2; ++i) {
    clock.AdvanceTo(std::max(udr.NextMigrationDeadline(), clock.Now()));
    udr.PumpMigration();
  }
  auto mid = udr.MigrationStatus();
  ASSERT_GT(mid.bytes_moved, 0);
  ASSERT_EQ(mid.tasks_done, 0) << "copy finished too fast for this test";

  // Kill the destination: site 3 drops off the backbone for good.
  network.partitions().CutBetween({0, 1, 2}, {3}, clock.Now(),
                                  clock.Now() + Seconds(3600));
  for (int i = 0; i < 64 && udr.MigrationActive(); ++i) {
    clock.AdvanceTo(std::max(udr.NextMigrationDeadline(), clock.Now()));
    udr.PumpMigration();
  }
  ASSERT_FALSE(udr.MigrationActive());

  auto done = udr.MigrationStatus();
  EXPECT_EQ(done.tasks_done, 0);
  EXPECT_EQ(done.tasks_failed, progress.tasks_total);

  // No map flip: every partition's primary copy is exactly where it was.
  for (uint32_t p = 0; p < udr.partition_count(); ++p) {
    EXPECT_EQ(udr.partition_map().primary_se(p), masters_before[p]) << p;
  }
  // The aborted copies were discarded: the dead cluster's SEs hold nothing.
  for (size_t i = 6; i < se_count; ++i) {
    EXPECT_EQ(udr.partition_map().se_info(i).se->store().Count(), 0) << i;
  }
  // The source still serves every acknowledged write.
  for (uint64_t i = 0; i < 160; ++i) {
    EXPECT_TRUE(MasterRead(udr, factory.Make(i).ImsiId()).ok()) << i;
  }
}

// ---------------------------------------------------------------------------
// Idempotent planning (satellite: stable move count across repeated calls)
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, RepeatedPlanningIsIdempotent) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(4), &clock);
  udrnf::UdrNf udr(ThrottledConfig(1 << 20, 1024), &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(31);
  Provision(udr, factory, 120);

  clock.Advance(Seconds(5));
  ASSERT_TRUE(udr.AddCluster(3).ok());

  // Planning is pure: two plans over the same state are identical.
  auto plan_a = migration::MigrationPlanner::PlanRebalance(udr.partition_map());
  auto plan_b = migration::MigrationPlanner::PlanRebalance(udr.partition_map());
  ASSERT_EQ(plan_a.tasks.size(), plan_b.tasks.size());
  for (size_t i = 0; i < plan_a.tasks.size(); ++i) {
    EXPECT_EQ(plan_a.tasks[i].partition, plan_b.tasks[i].partition);
    EXPECT_EQ(plan_a.tasks[i].to_se, plan_b.tasks[i].to_se);
  }

  // Starting twice does not duplicate in-flight tasks.
  auto p1 = udr.StartMigration();
  auto p2 = udr.StartMigration();
  EXPECT_EQ(p1.tasks_total, p2.tasks_total);
  EXPECT_EQ(p1.tasks_total, static_cast<int64_t>(plan_a.tasks.size()));

  // Rebalance() over the in-flight plan drains it — the move count equals
  // the one plan, not a re-planned superset.
  auto report = udr.Rebalance();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(static_cast<int64_t>(report->moves.size()), p1.tasks_total);
  EXPECT_LE(udr.partition_map().PrimarySpread(), 1);

  // And a second pass over the balanced map is a stable no-op.
  auto again = udr.Rebalance();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->moves.empty());
  EXPECT_TRUE(udr.partition_map().PlanRebalance().empty());
}

// ---------------------------------------------------------------------------
// Re-home bypass-exception lifecycle (satellite: cleared on cutover)
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, RehomeExceptionsAreClearedOnCutover) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 0;
  o.udr.placement = routing::PlacementKind::kHash;
  o.udr.partitions_per_se = 1;
  o.udr.migration_bandwidth_bps = 64 * 1024;
  o.udr.migration_chunk_bytes = 512;
  workload::Testbed bed(o);
  auto& udr = bed.udr();
  for (int64_t i = 0; i < 120; ++i) {
    auto spec = bed.factory().MakeSpec(static_cast<uint64_t>(i), std::nullopt);
    ASSERT_TRUE(udr.CreateSubscriber(spec, 0).ok()) << i;
  }
  const size_t partitions_before = udr.partition_count();

  // Scale out: the ring grows, ~K/N subscribers now hash to new partitions.
  bed.clock().Advance(Seconds(2));
  ASSERT_TRUE(udr.AddCluster(0).ok());
  udr.CommissionPartitions();
  ASSERT_GT(udr.partition_count(), partitions_before);

  // Throttled: the re-homes are parked as background tasks, and every moving
  // identity carries a bypass exception for its migration window.
  ASSERT_TRUE(udr.MigrationActive());
  const size_t exceptions_during = udr.router().bypass_exception_count();
  ASSERT_GT(exceptions_during, 0u);

  // Mid-window reads resolve via the location stage — correct, just slow.
  ldap::LdapRequest read;
  read.op = ldap::LdapOp::kSearch;
  read.dn = ldap::SubscriberDn("imsi", bed.factory().ImsiOf(0));
  EXPECT_EQ(udr.Submit(read, 0).code, ldap::LdapResultCode::kSuccess);

  DrainByDeadlines(udr, bed.clock());
  ASSERT_FALSE(udr.MigrationActive());
  auto done = udr.MigrationStatus();
  EXPECT_EQ(done.tasks_failed, 0);

  // Cutover cleared every exception — none wait for the next re-home pass.
  EXPECT_EQ(udr.router().bypass_exception_count(), 0u);

  // And every subscriber still reads back correctly (bypass or not).
  for (uint64_t i = 0; i < 120; ++i) {
    ldap::LdapRequest r;
    r.op = ldap::LdapOp::kSearch;
    r.dn = ldap::SubscriberDn("imsi", bed.factory().ImsiOf(i));
    EXPECT_EQ(udr.Submit(r, 0).code, ldap::LdapResultCode::kSuccess) << i;
  }
}

// ---------------------------------------------------------------------------
// Decommissioning: drain one SE's primaries through the same scheduler
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, DecommissionPlanDrainsOneStorageElement) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(3), &clock);
  udrnf::UdrNf udr(ThrottledConfig(1 << 20, 1024), &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(53);
  Provision(udr, factory, 120);
  clock.Advance(Seconds(2));

  auto& map = udr.partition_map();
  const int victim = 0;
  ASSERT_GT(map.PrimariesPerSe()[victim], 0);

  auto plan = migration::MigrationPlanner::PlanDecommission(map, victim);
  ASSERT_EQ(static_cast<int>(plan.tasks.size()), map.PrimariesPerSe()[victim]);
  udr.migration_scheduler().EnqueuePlan(plan);
  DrainByDeadlines(udr, clock);

  auto done = udr.MigrationStatus();
  EXPECT_EQ(done.tasks_failed, 0);
  EXPECT_EQ(map.PrimariesPerSe()[victim], 0);  // Fully drained.
  // The drained load spread instead of piling onto one receiver.
  std::vector<int> counts = map.PrimariesPerSe();
  auto [mn, mx] = std::minmax_element(counts.begin() + 1, counts.end());
  EXPECT_LE(*mx - *mn, 1);
  // Zero loss, as ever.
  for (uint64_t i = 0; i < 120; ++i) {
    EXPECT_TRUE(MasterRead(udr, factory.Make(i).ImsiId()).ok()) << i;
  }
}

// ---------------------------------------------------------------------------
// Priority knob: foreground load displaces migration budget
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, ForegroundLoadDisplacesMigrationBudget) {
  sim::SimClock clock;
  sim::Network network(sim::Topology(4), &clock);
  udrnf::UdrConfig cfg = ThrottledConfig(256 * 1024, 1024);
  cfg.migration_foreground_cost_bytes = 4096;
  udrnf::UdrNf udr(cfg, &network);
  for (uint32_t s = 0; s < 3; ++s) ASSERT_TRUE(udr.AddCluster(s).ok());
  udr.CommissionPartitions();
  clock.AdvanceTo(Seconds(1));
  telecom::SubscriberFactory factory(43);
  Provision(udr, factory, 120);

  clock.Advance(Seconds(5));
  ASSERT_TRUE(udr.AddCluster(3).ok());
  udr.StartMigration();
  udr.PumpMigration();  // Spend the initial burst; deadlines now track tokens.
  ASSERT_TRUE(udr.MigrationActive());

  MicroTime before = udr.NextMigrationDeadline();
  udr.migration_scheduler().OnForegroundOps(32);
  MicroTime after = udr.NextMigrationDeadline();
  EXPECT_GT(after, before) << "foreground ops did not displace budget";
}

// ---------------------------------------------------------------------------
// Traffic driver coupling: procedures run concurrently with a migration
// ---------------------------------------------------------------------------

TEST(BackgroundMigrationTest, TrafficRunsConcurrentlyWithMigration) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 300;
  o.udr.partitions_per_se = 2;
  o.udr.migration_bandwidth_bps = 256 * 1024;
  o.udr.migration_chunk_bytes = 4096;
  workload::Testbed bed(o);
  bed.clock().Advance(Seconds(2));
  ASSERT_TRUE(bed.udr().AddCluster(0).ok());
  auto progress = bed.udr().StartMigration();
  ASSERT_GT(progress.tasks_pending, 0);

  workload::TrafficOptions t;
  t.duration = Seconds(20);
  t.subscriber_count = 300;
  t.pump_migration = true;
  workload::TrafficReport report = workload::RunTraffic(bed, t);

  // The move completed inside the run, foreground traffic flowed throughout,
  // and some procedures overlapped the migration window.
  EXPECT_FALSE(bed.udr().MigrationActive());
  EXPECT_EQ(bed.udr().MigrationStatus().tasks_failed, 0);
  EXPECT_GT(report.fe_during_migration.attempted, 0);
  EXPECT_GT(report.FeAll().availability(), 0.99);
  EXPECT_LE(bed.udr().partition_map().PrimarySpread(), 1);
}

}  // namespace
