// Unit tests for src/sim: clock, topology latency model, interval sets,
// partition/crash schedules, network facade, deterministic scheduler.

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/network.h"
#include "sim/partition_schedule.h"
#include "sim/scheduler.h"
#include "sim/topology.h"

namespace udr::sim {
namespace {

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock c;
  EXPECT_EQ(c.Now(), 0);
  c.Advance(Millis(5));
  EXPECT_EQ(c.Now(), Millis(5));
  c.AdvanceTo(Seconds(1));
  EXPECT_EQ(c.Now(), Seconds(1));
}

TEST(SimClockTest, ResetReturnsToZero) {
  SimClock c;
  c.Advance(100);
  c.Reset();
  EXPECT_EQ(c.Now(), 0);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(TopologyTest, LanVsBackboneLatency) {
  LatencyConfig cfg;
  cfg.lan_one_way = Micros(100);
  cfg.backbone_one_way = Millis(20);
  Topology t(3, cfg);
  EXPECT_EQ(t.OneWayLatency(0, 0), Micros(100));
  EXPECT_EQ(t.OneWayLatency(0, 1), Millis(20));
  EXPECT_EQ(t.Rtt(0, 2), Millis(40));
}

TEST(TopologyTest, LinkOverrideSymmetric) {
  Topology t(3);
  t.SetLinkLatency(0, 2, Millis(50));
  EXPECT_EQ(t.OneWayLatency(0, 2), Millis(50));
  EXPECT_EQ(t.OneWayLatency(2, 0), Millis(50));
  EXPECT_EQ(t.OneWayLatency(0, 1), LatencyConfig().backbone_one_way);
}

TEST(TopologyTest, SiteNames) {
  Topology t(2);
  EXPECT_EQ(t.SiteName(0), "site-0");
  t.SetSiteName(0, "madrid");
  EXPECT_EQ(t.SiteName(0), "madrid");
}

// ---------------------------------------------------------------------------
// IntervalSet
// ---------------------------------------------------------------------------

TEST(IntervalSetTest, EmptyCoversNothing) {
  IntervalSet s;
  EXPECT_FALSE(s.Covers(0));
  EXPECT_EQ(s.NextClear(5), 5);
  EXPECT_EQ(s.OutageWithin(0, 100), 0);
}

TEST(IntervalSetTest, SingleInterval) {
  IntervalSet s;
  s.Add(10, 20);
  EXPECT_FALSE(s.Covers(9));
  EXPECT_TRUE(s.Covers(10));
  EXPECT_TRUE(s.Covers(19));
  EXPECT_FALSE(s.Covers(20));
  EXPECT_EQ(s.NextClear(15), 20);
  EXPECT_EQ(s.NextClear(5), 5);
}

TEST(IntervalSetTest, MergesOverlappingAndAdjacent) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(15, 30);
  EXPECT_EQ(s.intervals().size(), 1u);
  s.Add(30, 40);  // Adjacent: coalesced into one outage.
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_TRUE(s.Covers(25));
  EXPECT_TRUE(s.Covers(35));
  s.Add(50, 60);  // Disjoint: second interval.
  EXPECT_EQ(s.intervals().size(), 2u);
  s.Add(5, 70);
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0].begin, 5);
  EXPECT_EQ(s.intervals()[0].end, 70);
}

TEST(IntervalSetTest, KeepsDisjointSorted) {
  IntervalSet s;
  s.Add(100, 200);
  s.Add(10, 20);
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0].begin, 10);
  EXPECT_EQ(s.intervals()[1].begin, 100);
}

TEST(IntervalSetTest, IgnoresEmptyInterval) {
  IntervalSet s;
  s.Add(10, 10);
  s.Add(20, 15);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, OutageWithinClips) {
  IntervalSet s;
  s.Add(10, 30);
  EXPECT_EQ(s.OutageWithin(0, 100), 20);
  EXPECT_EQ(s.OutageWithin(20, 100), 10);
  EXPECT_EQ(s.OutageWithin(15, 25), 10);
  EXPECT_EQ(s.OutageWithin(40, 50), 0);
}

// ---------------------------------------------------------------------------
// PartitionSchedule
// ---------------------------------------------------------------------------

TEST(PartitionScheduleTest, ReachableByDefault) {
  PartitionSchedule p;
  EXPECT_TRUE(p.Reachable(0, 1, 0));
  EXPECT_FALSE(p.HasAnyPartition());
}

TEST(PartitionScheduleTest, CutLinkIsSymmetricAndTimed) {
  PartitionSchedule p;
  p.CutLink(0, 1, Seconds(10), Seconds(40));
  EXPECT_TRUE(p.Reachable(0, 1, Seconds(9)));
  EXPECT_FALSE(p.Reachable(0, 1, Seconds(10)));
  EXPECT_FALSE(p.Reachable(1, 0, Seconds(39)));
  EXPECT_TRUE(p.Reachable(0, 1, Seconds(40)));
}

TEST(PartitionScheduleTest, SameSiteNeverPartitioned) {
  PartitionSchedule p;
  p.CutLink(0, 0, 0, kTimeInfinity);
  EXPECT_TRUE(p.Reachable(0, 0, Seconds(5)));
}

TEST(PartitionScheduleTest, CutBetweenGroups) {
  PartitionSchedule p;
  p.CutBetween({0, 1}, {2, 3}, 100, 200);
  EXPECT_FALSE(p.Reachable(0, 2, 150));
  EXPECT_FALSE(p.Reachable(1, 3, 150));
  EXPECT_TRUE(p.Reachable(0, 1, 150));  // Same side unaffected.
  EXPECT_TRUE(p.Reachable(2, 3, 150));
}

TEST(PartitionScheduleTest, IsolateSite) {
  PartitionSchedule p;
  p.IsolateSite(1, 4, 10, 20);
  EXPECT_FALSE(p.Reachable(1, 0, 15));
  EXPECT_FALSE(p.Reachable(3, 1, 15));
  EXPECT_TRUE(p.Reachable(0, 2, 15));
}

TEST(PartitionScheduleTest, HealTime) {
  PartitionSchedule p;
  p.CutLink(0, 1, 100, 200);
  EXPECT_EQ(p.HealTime(0, 1, 50), 50);
  EXPECT_EQ(p.HealTime(0, 1, 150), 200);
  EXPECT_EQ(p.HealTime(0, 1, 250), 250);
}

TEST(PartitionScheduleTest, StreamDeliveryDeferredAcrossOutage) {
  PartitionSchedule p;
  p.CutLink(0, 1, Seconds(10), Seconds(40));
  // Sent before the cut: normal latency.
  EXPECT_EQ(p.DeliveryTime(0, 1, Seconds(5), Millis(15)),
            Seconds(5) + Millis(15));
  // Sent during the cut: waits for heal, then takes the latency.
  EXPECT_EQ(p.DeliveryTime(0, 1, Seconds(20), Millis(15)),
            Seconds(40) + Millis(15));
}

TEST(PartitionScheduleTest, OutageWithinPerLink) {
  PartitionSchedule p;
  p.CutLink(0, 1, 100, 300);
  EXPECT_EQ(p.OutageWithin(0, 1, 0, 1000), 200);
  EXPECT_EQ(p.OutageWithin(0, 2, 0, 1000), 0);
}

// ---------------------------------------------------------------------------
// CrashSchedule
// ---------------------------------------------------------------------------

TEST(CrashScheduleTest, UpByDefault) {
  CrashSchedule c;
  EXPECT_TRUE(c.IsUp("se-0", 123));
}

TEST(CrashScheduleTest, OutageWindow) {
  CrashSchedule c;
  c.AddOutage("se-0", Seconds(10), Seconds(20));
  EXPECT_TRUE(c.IsUp("se-0", Seconds(9)));
  EXPECT_FALSE(c.IsUp("se-0", Seconds(15)));
  EXPECT_TRUE(c.IsUp("se-0", Seconds(20)));
  EXPECT_EQ(c.RecoveryTime("se-0", Seconds(15)), Seconds(20));
}

TEST(CrashScheduleTest, FailForever) {
  CrashSchedule c;
  c.FailForever("se-1", Seconds(5));
  EXPECT_FALSE(c.IsUp("se-1", Hours(10)));
  EXPECT_EQ(c.RecoveryTime("se-1", Seconds(6)), kTimeInfinity);
}

// ---------------------------------------------------------------------------
// Network facade
// ---------------------------------------------------------------------------

TEST(NetworkTest, RpcCheckLatencyAndPartition) {
  SimClock clock;
  LatencyConfig lc;
  lc.lan_one_way = Micros(100);
  lc.backbone_one_way = Millis(10);
  lc.hop_overhead = Micros(50);
  Network net(Topology(2, lc), &clock);

  RpcCheck local = net.CheckRpc(0, 0);
  EXPECT_TRUE(local.status.ok());
  EXPECT_EQ(local.latency, Micros(250));  // 2x100 + 50.

  RpcCheck remote = net.CheckRpc(0, 1);
  EXPECT_TRUE(remote.status.ok());
  EXPECT_EQ(remote.latency, Millis(20) + Micros(50));

  net.partitions().CutLink(0, 1, 0, Seconds(10));
  RpcCheck cut = net.CheckRpc(0, 1);
  EXPECT_TRUE(cut.status.IsUnavailable());
  EXPECT_EQ(cut.latency, net.rpc_timeout());

  clock.AdvanceTo(Seconds(10));
  EXPECT_TRUE(net.CheckRpc(0, 1).status.ok());
}

TEST(NetworkTest, StreamDeliveryUsesClockIndependentSchedule) {
  SimClock clock;
  Network net(Topology(2), &clock);
  net.partitions().CutLink(0, 1, Seconds(1), Seconds(2));
  MicroTime d = net.StreamDeliveryTime(0, 1, Seconds(1) + 1);
  EXPECT_EQ(d, Seconds(2) + LatencyConfig().backbone_one_way);
}

// ---------------------------------------------------------------------------
// Topology link bandwidth (kill / heal of modelled capacity)
// ---------------------------------------------------------------------------

TEST(TopologyTest, LinkBandwidthSetSymmetricAndRewritable) {
  Topology topo(3);
  // Unmodelled by default.
  EXPECT_EQ(topo.LinkBandwidthBps(0, 1), 0);
  topo.SetLinkBandwidth(0, 1, 8 * 1024 * 1024);
  // Symmetric: either endpoint order reads the same capacity, and the other
  // links stay unmodelled.
  EXPECT_EQ(topo.LinkBandwidthBps(0, 1), 8 * 1024 * 1024);
  EXPECT_EQ(topo.LinkBandwidthBps(1, 0), 8 * 1024 * 1024);
  EXPECT_EQ(topo.LinkBandwidthBps(0, 2), 0);
  EXPECT_EQ(topo.LinkBandwidthBps(1, 2), 0);
  // Re-set = degraded link (kill to a trickle, heal back to full).
  topo.SetLinkBandwidth(0, 1, 1024);
  EXPECT_EQ(topo.LinkBandwidthBps(1, 0), 1024);
  topo.SetLinkBandwidth(0, 1, 8 * 1024 * 1024);
  EXPECT_EQ(topo.LinkBandwidthBps(0, 1), 8 * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// PartitionSchedule under site loss
// ---------------------------------------------------------------------------

TEST(PartitionScheduleTest, IsolateSiteCutsEveryLinkOfThatSiteOnly) {
  // The scenario harness models site loss as total isolation: the dead
  // site's links all sever for [begin, end) while survivor links stay up.
  PartitionSchedule sched;
  sched.IsolateSite(1, /*site_count=*/3, Seconds(3), Seconds(9));

  EXPECT_TRUE(sched.Reachable(0, 1, Seconds(3) - 1));
  EXPECT_FALSE(sched.Reachable(0, 1, Seconds(3)));  // Half-open: begin cut.
  EXPECT_FALSE(sched.Reachable(1, 0, Seconds(5)));  // Symmetric.
  EXPECT_FALSE(sched.Reachable(2, 1, Seconds(5)));
  EXPECT_TRUE(sched.Reachable(0, 2, Seconds(5)));   // Survivors unaffected.
  EXPECT_TRUE(sched.Reachable(1, 1, Seconds(5)));   // Site LAN never cut.
  EXPECT_TRUE(sched.Reachable(0, 1, Seconds(9)));   // Half-open: end heals.

  EXPECT_EQ(sched.HealTime(0, 1, Seconds(5)), Seconds(9));
  EXPECT_EQ(sched.OutageWithin(0, 1, Seconds(0), Seconds(12)), Seconds(6));
}

TEST(PartitionScheduleTest, DeliveryDefersAcrossSiteLossAndHeals) {
  // Stream transport (replication log shipping) sent into a dead site is
  // delivered at heal + latency, not dropped — the basis of the harness's
  // zero-acked-write-loss audit after RestoreSite.
  PartitionSchedule sched;
  sched.IsolateSite(1, 3, Seconds(3), Seconds(9));
  const MicroDuration lat = Millis(10);
  EXPECT_EQ(sched.DeliveryTime(0, 1, Seconds(1), lat), Seconds(1) + lat);
  EXPECT_EQ(sched.DeliveryTime(0, 1, Seconds(4), lat), Seconds(9) + lat);
  EXPECT_EQ(sched.DeliveryTime(0, 1, Seconds(9), lat), Seconds(9) + lat);
  EXPECT_EQ(sched.DeliveryTime(0, 2, Seconds(4), lat), Seconds(4) + lat);
}

TEST(PartitionScheduleTest, CutBetweenSeversGroupPairsLikeTheHarness) {
  // scenario::Engine installs inter-site partitions as CutBetween({0},{1,2}):
  // the minority side loses both backbone links, the majority pair keeps its
  // own.
  PartitionSchedule sched;
  sched.CutBetween({0}, {1, 2}, Seconds(3), Seconds(8));
  EXPECT_FALSE(sched.Reachable(0, 1, Seconds(4)));
  EXPECT_FALSE(sched.Reachable(0, 2, Seconds(4)));
  EXPECT_TRUE(sched.Reachable(1, 2, Seconds(4)));
  EXPECT_TRUE(sched.Reachable(0, 1, Seconds(8)));
  EXPECT_EQ(sched.HealTime(0, 2, Seconds(4)), Seconds(8));
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  SimClock clock;
  Scheduler sched(&clock);
  std::vector<int> order;
  sched.At(30, [&] { order.push_back(3); });
  sched.At(10, [&] { order.push_back(1); });
  sched.At(20, [&] { order.push_back(2); });
  EXPECT_EQ(sched.RunUntil(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 30);
}

TEST(SchedulerTest, EqualTimesRunInInsertionOrder) {
  SimClock clock;
  Scheduler sched(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.At(100, [&order, i] { order.push_back(i); });
  }
  sched.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, HorizonStopsExecution) {
  SimClock clock;
  Scheduler sched(&clock);
  int ran = 0;
  sched.At(10, [&] { ++ran; });
  sched.At(100, [&] { ++ran; });
  EXPECT_EQ(sched.RunUntil(50), 1);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.Now(), 50);  // Advanced to horizon.
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  SimClock clock;
  Scheduler sched(&clock);
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sched.After(10, step);
  };
  sched.After(10, step);
  sched.RunUntil();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(clock.Now(), 50);
}

}  // namespace
}  // namespace udr::sim
