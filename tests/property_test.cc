// Property-based tests: invariants that must hold across randomized inputs
// and configuration sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P).
//
// Covered invariants:
//   * IntervalSet behaves exactly like a naive reference implementation
//     under random insertions;
//   * Histogram percentiles stay within the bucket resolution of exact
//     order statistics for arbitrary distributions;
//   * DN and Filter string forms round-trip;
//   * replicated state converges: after any partition/crash episode heals,
//     every up replica equals the master copy (CP mode), for every sync
//     mode and replication factor;
//   * the UDR data path keeps the identity indexes consistent: every
//     provisioned identity resolves to a record that contains it, from
//     every PoA, under every deployment shape;
//   * traffic conservation: attempted == ok + failed for every class.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/histogram.h"
#include "common/rng.h"
#include "ldap/dn.h"
#include "ldap/filter.h"
#include "replication/replica_set.h"
#include "replication/write_builder.h"
#include "sim/partition_schedule.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

namespace udr {
namespace {

// ---------------------------------------------------------------------------
// IntervalSet vs naive reference
// ---------------------------------------------------------------------------

class IntervalSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetProperty, MatchesNaiveReference) {
  Rng rng(GetParam());
  sim::IntervalSet set;
  std::set<int64_t> covered;  // Naive: every covered microsecond.
  for (int i = 0; i < 60; ++i) {
    int64_t begin = static_cast<int64_t>(rng.Uniform(500));
    int64_t len = static_cast<int64_t>(rng.Uniform(40));
    set.Add(begin, begin + len);
    for (int64_t t = begin; t < begin + len; ++t) covered.insert(t);
  }
  for (int64_t t = 0; t < 560; ++t) {
    EXPECT_EQ(set.Covers(t), covered.count(t) > 0) << "t=" << t;
  }
  // NextClear agrees with the naive forward scan.
  for (int64_t t = 0; t < 560; t += 7) {
    int64_t expect = t;
    while (covered.count(expect) > 0) ++expect;
    EXPECT_EQ(set.NextClear(t), expect) << "t=" << t;
  }
  // OutageWithin agrees with counting.
  int64_t total = set.OutageWithin(0, 600);
  EXPECT_EQ(total, static_cast<int64_t>(covered.size()));
  // Intervals are sorted and disjoint.
  const auto& ivs = set.intervals();
  for (size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_GT(ivs[i].begin, ivs[i - 1].end);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Histogram percentile accuracy
// ---------------------------------------------------------------------------

class HistogramProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramProperty, PercentilesWithinBucketResolution) {
  Rng rng(GetParam() * 977);
  Histogram h;
  std::vector<int64_t> values;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    int64_t v = 0;
    switch (GetParam() % 3) {
      case 0:
        v = static_cast<int64_t>(rng.Uniform(1000000));
        break;
      case 1:
        v = static_cast<int64_t>(rng.Exponential(5000.0));
        break;
      default:
        v = static_cast<int64_t>(std::max(0.0, rng.Normal(100000, 20000)));
        break;
    }
    h.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    int64_t exact = values[static_cast<size_t>(p / 100.0 * (n - 1))];
    int64_t approx = h.Percentile(p);
    // Log-bucketed storage: <= 12.5% relative error plus one bucket slack.
    EXPECT_LE(approx, exact + exact / 4 + 16) << "p=" << p;
    EXPECT_GE(approx, exact - exact / 4 - 16) << "p=" << p;
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramProperty,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// DN / Filter round-trips
// ---------------------------------------------------------------------------

class DnRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DnRoundTrip, ParseToStringIdentity) {
  auto dn = ldap::Dn::Parse(GetParam());
  ASSERT_TRUE(dn.ok()) << GetParam();
  auto again = ldap::Dn::Parse(dn->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*dn, *again);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DnRoundTrip,
    ::testing::Values("imsi=214050000000001,ou=subscribers,dc=udr",
                      "msisdn=+34600000001,ou=subscribers,dc=udr",
                      "impu=sip:alice@ims.example,ou=subscribers,dc=udr",
                      "cn=Doe\\, John,ou=people,dc=udr", "dc=udr",
                      "impi=user@realm,ou=subscribers,dc=udr"));

class FilterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterRoundTrip, ParseToStringStable) {
  auto f = ldap::Filter::Parse(GetParam());
  ASSERT_TRUE(f.ok()) << GetParam();
  auto again = ldap::Filter::Parse(f->ToString());
  ASSERT_TRUE(again.ok()) << f->ToString();
  EXPECT_EQ(f->ToString(), again->ToString());
  // Both parse trees agree on a sample record.
  storage::Record r;
  r.Set("msisdn", std::string("+34600000001"), 0, 0);
  r.Set("barred", false, 0, 0);
  r.Set("sqn", int64_t{41}, 0, 0);
  EXPECT_EQ(f->Matches(r), again->Matches(r));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FilterRoundTrip,
    ::testing::Values("(msisdn=+34600000001)", "(barred=*)",
                      "(&(msisdn=+34600000001)(barred=false))",
                      "(|(a=1)(b=2)(c=3))", "(!(barred=true))",
                      "(sqn>=40)", "(sqn<=42)",
                      "(&(|(a=1)(msisdn=+34600000001))(!(ghost=*)))"));

// ---------------------------------------------------------------------------
// Replication convergence under random partition/crash episodes
// ---------------------------------------------------------------------------

struct ConvergenceParam {
  int replicas;
  replication::SyncMode sync;
  uint64_t seed;
};

class ReplicationConvergence
    : public ::testing::TestWithParam<ConvergenceParam> {};

TEST_P(ReplicationConvergence, UpReplicasEqualMasterAfterQuiescence) {
  const ConvergenceParam param = GetParam();
  sim::SimClock clock;
  auto network = std::make_unique<sim::Network>(
      sim::Topology(static_cast<uint32_t>(param.replicas)), &clock);
  std::vector<std::unique_ptr<storage::StorageElement>> ses;
  std::vector<storage::StorageElement*> ptrs;
  for (int s = 0; s < param.replicas; ++s) {
    storage::StorageElementConfig cfg;
    cfg.site = static_cast<sim::SiteId>(s);
    ses.push_back(std::make_unique<storage::StorageElement>(
        cfg, &clock, static_cast<uint32_t>(s)));
    ptrs.push_back(ses.back().get());
  }
  replication::ReplicaSetConfig cfg;
  cfg.sync_mode = param.sync;
  replication::ReplicaSet rs(cfg, ptrs, network.get());
  Rng rng(param.seed);

  clock.AdvanceTo(Seconds(1));
  int accepted = 0;
  for (int step = 0; step < 120; ++step) {
    clock.Advance(Millis(200));
    // Random partition episodes between random site pairs.
    if (rng.Bernoulli(0.08) && param.replicas > 1) {
      sim::SiteId a = static_cast<sim::SiteId>(rng.Uniform(param.replicas));
      sim::SiteId b = static_cast<sim::SiteId>(rng.Uniform(param.replicas));
      network->partitions().CutLink(a, b, clock.Now(),
                                    clock.Now() + Seconds(2));
    }
    replication::WriteBuilder wb;
    wb.Set(rng.Uniform(10), "v", static_cast<int64_t>(step));
    auto w = rs.Write(static_cast<sim::SiteId>(rng.Uniform(param.replicas)),
                      std::move(wb).Build());
    if (w.status.ok()) ++accepted;
  }
  EXPECT_GT(accepted, 0);
  // Quiesce: all partitions heal, everyone catches up.
  clock.Advance(Seconds(30));
  rs.CatchUpAll();
  const storage::RecordStore& master = rs.replica_store(rs.master_id());
  for (uint32_t id = 0; id < rs.replica_count(); ++id) {
    if (!rs.replica_up(id)) continue;
    EXPECT_EQ(rs.applied_seq(id), rs.log().LastSeq()) << "replica " << id;
    for (storage::RecordKey k = 0; k < 10; ++k) {
      const storage::Record* m = master.Find(k);
      const storage::Record* r = rs.replica_store(id).Find(k);
      ASSERT_EQ(m == nullptr, r == nullptr) << "replica " << id << " key " << k;
      if (m != nullptr) {
        EXPECT_TRUE(*m == *r) << "replica " << id << " key " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplicationConvergence,
    ::testing::Values(
        ConvergenceParam{2, replication::SyncMode::kAsync, 101},
        ConvergenceParam{3, replication::SyncMode::kAsync, 102},
        ConvergenceParam{3, replication::SyncMode::kAsync, 103},
        ConvergenceParam{3, replication::SyncMode::kDualSequence, 104},
        ConvergenceParam{5, replication::SyncMode::kAsync, 105},
        ConvergenceParam{5, replication::SyncMode::kQuorum, 106},
        ConvergenceParam{4, replication::SyncMode::kDualSequence, 107}));

// ---------------------------------------------------------------------------
// UDR identity-index consistency across deployment shapes
// ---------------------------------------------------------------------------

struct DeployParam {
  uint32_t sites;
  int se_per_cluster;
  int replication_factor;
  bool pinned;
};

class UdrDeploymentProperty : public ::testing::TestWithParam<DeployParam> {};

TEST_P(UdrDeploymentProperty, EveryIdentityResolvesEverywhere) {
  const DeployParam p = GetParam();
  workload::TestbedOptions o;
  o.sites = p.sites;
  o.udr.se_per_cluster = p.se_per_cluster;
  o.udr.replication_factor = p.replication_factor;
  o.subscribers = 40;
  o.pin_home_sites = p.pinned;
  workload::Testbed bed(o);
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();

  for (uint64_t i = 0; i < 40; ++i) {
    telecom::Subscriber s = bed.factory().Make(i);
    location::LocationEntry first{};
    bool have_first = false;
    for (uint32_t site = 0; site < p.sites; ++site) {
      for (const auto& id :
           {s.ImsiId(), s.MsisdnId(), s.ImpuId(),
            location::Identity{location::IdentityType::kImpi, s.impi}}) {
        auto r = bed.udr().Locate(id, site);
        ASSERT_TRUE(r.status.ok())
            << id.ToString() << " at site " << site;
        if (!have_first) {
          first = r.entry;
          have_first = true;
        } else {
          // All identities of one subscriber map to one record everywhere.
          EXPECT_EQ(r.entry, first) << id.ToString() << " site " << site;
        }
      }
    }
    // The record actually holds the identity attributes.
    auto* rs = bed.udr().partition(first.partition);
    auto rec = rs->ReadRecord(0, first.key,
                              replication::ReadPreference::kMasterOnly);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(storage::ValueToString(*rec->Get("imsi")), s.imsi);
    // Replica count honors the configured factor (capped by SE count).
    EXPECT_LE(rs->replica_count(),
              static_cast<size_t>(p.replication_factor));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UdrDeploymentProperty,
    ::testing::Values(DeployParam{1, 2, 2, false}, DeployParam{2, 1, 2, false},
                      DeployParam{3, 2, 3, true}, DeployParam{4, 2, 3, true},
                      DeployParam{5, 1, 3, false}, DeployParam{3, 4, 2, true}));

// ---------------------------------------------------------------------------
// Storage durability: crash recovery == replay of the durable prefix
// ---------------------------------------------------------------------------

class CrashRecoveryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRecoveryProperty, RecoveredStateEqualsDurablePrefixReplay) {
  Rng rng(GetParam());
  sim::SimClock clock;
  storage::StorageElementConfig cfg;
  cfg.checkpoint_period = Seconds(30);
  storage::StorageElement se(cfg, &clock);

  // Shadow log of committed operations for the reference replay.
  storage::CommitLog shadow;
  for (int i = 0; i < 200; ++i) {
    clock.Advance(Millis(static_cast<int64_t>(rng.Uniform(2000)) + 1));
    storage::Transaction txn = se.Begin();
    std::vector<storage::WriteOp> ops;
    int writes = 1 + static_cast<int>(rng.Uniform(3));
    bool all_ok = true;
    for (int w = 0; w < writes; ++w) {
      storage::RecordKey key = rng.Uniform(30);
      if (rng.Bernoulli(0.1)) {
        if (!txn.DeleteRecord(key).ok()) all_ok = false;
        storage::WriteOp op;
        op.kind = storage::WriteKind::kDeleteRecord;
        op.key = key;
        ops.push_back(op);
      } else {
        storage::Value v = static_cast<int64_t>(rng.Uniform(1000));
        if (!txn.SetAttribute(key, "v", v).ok()) all_ok = false;
        storage::WriteOp op;
        op.kind = storage::WriteKind::kUpsertAttr;
        op.key = key;
        op.attr_id = storage::InternAttr("v");
        op.attribute = {v, clock.Now(), 0};
        ops.push_back(op);
      }
    }
    if (!all_ok || rng.Bernoulli(0.1)) {
      txn.Abort();  // Aborted transactions must leave no trace.
      continue;
    }
    auto seq = txn.Commit(clock.Now());
    ASSERT_TRUE(seq.ok());
    // Mirror committed ops (with identical stamps) into the shadow log.
    for (auto& op : ops) {
      if (op.kind == storage::WriteKind::kUpsertAttr) {
        op.attribute.modified_at = clock.Now();
      }
    }
    shadow.Append(clock.Now(), 0, std::move(ops));
  }

  // Crash at a random instant; the recovered store must equal the shadow
  // replayed up to the checkpointed prefix.
  clock.Advance(Millis(static_cast<int64_t>(rng.Uniform(60000))));
  storage::CommitSeq durable = se.DurableSeqAt(clock.Now());
  storage::CrashRecovery rec = se.CrashAndRecoverLocally(clock.Now());
  EXPECT_EQ(rec.recovered_seq, durable);

  storage::RecordStore reference;
  shadow.ReplayRange(&reference, 0, durable);
  EXPECT_EQ(se.store().Count(), reference.Count());
  reference.ForEach([&](storage::RecordKey key, const storage::Record& want) {
    const storage::Record* got = se.store().Find(key);
    ASSERT_NE(got, nullptr) << "key " << key;
    auto wv = want.Get("v");
    auto gv = got->Get("v");
    ASSERT_EQ(wv.has_value(), gv.has_value()) << "key " << key;
    if (wv.has_value()) {
      EXPECT_TRUE(storage::ValueEquals(*wv, *gv)) << "key " << key;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryProperty,
                         ::testing::Range<uint64_t>(301, 309));

// ---------------------------------------------------------------------------
// Traffic accounting conservation
// ---------------------------------------------------------------------------

class TrafficConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrafficConservation, AttemptedEqualsOkPlusFailed) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 100;
  o.pin_home_sites = true;
  workload::Testbed bed(o);
  // Random partition schedule per seed.
  Rng rng(GetParam());
  MicroTime t0 = bed.clock().Now();
  for (int i = 0; i < 3; ++i) {
    MicroTime cut = t0 + Seconds(rng.UniformRange(1, 25));
    bed.network().partitions().CutLink(
        static_cast<sim::SiteId>(rng.Uniform(3)),
        static_cast<sim::SiteId>(rng.Uniform(3)), cut,
        cut + Seconds(rng.UniformRange(1, 10)));
  }
  workload::TrafficOptions t;
  t.duration = Seconds(30);
  t.fe_rate_per_sec = 80;
  t.ps_rate_per_sec = 10;
  t.subscriber_count = 100;
  t.seed = GetParam();
  auto rep = workload::RunTraffic(bed, t);
  for (const auto* cls : {&rep.fe_read, &rep.fe_write, &rep.ps}) {
    EXPECT_EQ(cls->attempted, cls->ok + cls->failed);
    EXPECT_EQ(cls->latency.count(), cls->ok);
    EXPECT_GE(cls->availability(), 0.0);
    EXPECT_LE(cls->availability(), 1.0);
  }
  // Rates respected: ~30s * 80/s FE procedures.
  auto fe = rep.FeAll();
  EXPECT_NEAR(static_cast<double>(fe.attempted), 30.0 * 80, 81);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficConservation,
                         ::testing::Range<uint64_t>(201, 207));

}  // namespace
}  // namespace udr
