// Unit tests for src/common: Status/StatusOr, Rng, Histogram, strings,
// time intervals, table formatting.

#include <gtest/gtest.h>

#include <set>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/time.h"

namespace udr {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructorsSetCodes) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::DeadlineExceeded().IsDeadlineExceeded());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(StatusTest, MessageIsPreserved) {
  Status s = Status::NotFound("subscriber 42");
  EXPECT_EQ(s.message(), "subscriber 42");
  EXPECT_EQ(s.ToString(), "NotFound: subscriber 42");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Unavailable("down");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsUnavailable());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  UDR_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(3, &out).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) lo = true;
    if (v == 3) hi = true;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = rng.Zipf(1000, 1.0);
    EXPECT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(23);
  int64_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 10000.0, 0.5, 0.05);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.P50(), 42);
  EXPECT_EQ(h.P99(), 42);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  EXPECT_EQ(h.Percentile(10), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1000000)));
  }
  int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(i);
  // p50 of 1..100000 is ~50000; bucket resolution is 1/8 relative.
  int64_t p50 = h.P50();
  EXPECT_GT(p50, 50000 * 0.85);
  EXPECT_LT(p50, 50000 * 1.15);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, RecordMany) {
  Histogram h;
  h.RecordMany(7, 100);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 700);
  EXPECT_EQ(h.P50(), 7);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(1LL << 40);
  EXPECT_EQ(h.max(), 1LL << 40);
  EXPECT_GE(h.P99(), (1LL << 40) * 7 / 8);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmpty) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("MsIsDn=+34"), "msisdn=+34");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("sip:+34600", "sip:"));
  EXPECT_FALSE(StartsWith("tel:+34600", "sip:"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%03d-%s", 7, "x"), "007-x");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Millis(1), 1000);
  EXPECT_EQ(Seconds(1), 1000000);
  EXPECT_EQ(Minutes(1), 60000000);
  EXPECT_EQ(Hours(1), 3600000000LL);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
}

TEST(TimeTest, FormatDurationAdaptive) {
  EXPECT_EQ(FormatDuration(Micros(500)), "500us");
  EXPECT_EQ(FormatDuration(Millis(12)), "12.00ms");
  EXPECT_EQ(FormatDuration(Seconds(3)), "3.00s");
  EXPECT_EQ(FormatDuration(Minutes(2)), "2.0min");
}

TEST(TimeTest, IntervalContains) {
  TimeInterval iv{10, 20};
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_EQ(iv.length(), 10);
}

TEST(TimeTest, IntervalOverlaps) {
  TimeInterval a{10, 20};
  EXPECT_TRUE(a.Overlaps({15, 25}));
  EXPECT_TRUE(a.Overlaps({0, 11}));
  EXPECT_FALSE(a.Overlaps({20, 30}));
  EXPECT_FALSE(a.Overlaps({0, 10}));
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, FormattersProduceReadableCells) {
  EXPECT_EQ(Table::Num(1234567), "1,234,567");
  EXPECT_EQ(Table::Num(-42), "-42");
  EXPECT_EQ(Table::Num(0), "0");
  EXPECT_EQ(Table::Dbl(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.99999, 3), "99.999%");
  EXPECT_EQ(Table::Bytes(1536), "1.5 KB");
  EXPECT_EQ(Table::Bytes(200), "200 B");
}

TEST(TableTest, PrintAlignsColumns) {
  Table t("test", {"col-a", "b"});
  t.AddRow({"1", "22"});
  t.AddRow({"333", "4"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("== test =="), std::string::npos);
  EXPECT_NE(out.find("col-a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace udr
