// Unit tests for src/udr: blade cluster limits, UDR NF deployment,
// partition commissioning, the LDAP data path (add/search/modify/delete/
// compare), selective placement, scale-out sync windows and capacity
// aggregation.

#include <gtest/gtest.h>

#include "ldap/dn.h"
#include "sim/network.h"
#include "udr/capacity_model.h"
#include "udr/udr_nf.h"

namespace udr::udrnf {
namespace {

using ldap::LdapOp;
using ldap::LdapRequest;
using ldap::LdapResult;
using ldap::LdapResultCode;
using location::Identity;
using location::IdentityType;

// ---------------------------------------------------------------------------
// BladeCluster
// ---------------------------------------------------------------------------

TEST(BladeClusterTest, EnforcesSeLimit) {
  sim::SimClock clock;
  BladeCluster cluster(0, 0, &clock);
  storage::StorageElementConfig cfg;
  for (int i = 0; i < kMaxStorageElementsPerCluster; ++i) {
    ASSERT_TRUE(cluster.AddStorageElement(cfg, i).ok());
  }
  EXPECT_TRUE(cluster.AddStorageElement(cfg, 99).status().IsResourceExhausted());
  EXPECT_EQ(cluster.se_count(), 16u);
}

TEST(BladeClusterTest, NamesElementsAfterCluster) {
  sim::SimClock clock;
  BladeCluster cluster(3, 1, &clock);
  storage::StorageElementConfig cfg;
  auto se = cluster.AddStorageElement(cfg, 0);
  ASSERT_TRUE(se.ok());
  EXPECT_EQ((*se)->name(), "c3-se0");
  EXPECT_EQ((*se)->site(), 1u);
}

class NullBackend : public ldap::LdapBackend {
 public:
  ldap::LdapResult Process(const LdapRequest&, uint32_t) override {
    return ldap::LdapResult();
  }
};

TEST(BladeClusterTest, EnforcesLdapLimitAndAutoRegisters) {
  sim::SimClock clock;
  NullBackend backend;
  BladeCluster cluster(0, 0, &clock);
  ldap::LdapServerConfig cfg;
  for (int i = 0; i < kMaxLdapServersPerCluster; ++i) {
    ASSERT_TRUE(cluster.AddLdapServer(cfg, &backend).ok());
  }
  EXPECT_TRUE(cluster.AddLdapServer(cfg, &backend).status().IsResourceExhausted());
  EXPECT_EQ(cluster.balancer().server_count(), 32u);
  // 32 servers x 1e6 ops/s each.
  EXPECT_EQ(cluster.LdapOpsPerSecond(), 32'000'000);
}

// ---------------------------------------------------------------------------
// UdrNf deployment
// ---------------------------------------------------------------------------

class UdrNfTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(UdrConfig()); }

  void Build(UdrConfig cfg) {
    cfg.se_per_cluster = 2;
    cfg.ldap_per_cluster = 2;
    sim::LatencyConfig lc;
    lc.lan_one_way = Micros(100);
    lc.backbone_one_way = Millis(15);
    network_ = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock_);
    udr_ = std::make_unique<UdrNf>(cfg, network_.get());
    for (uint32_t s = 0; s < 3; ++s) {
      ASSERT_TRUE(udr_->AddCluster(s).ok());
    }
    udr_->CommissionPartitions();
  }

  UdrNf::CreateSpec SpecFor(const std::string& imsi, const std::string& msisdn) {
    UdrNf::CreateSpec spec;
    spec.identities.push_back({IdentityType::kImsi, imsi});
    spec.identities.push_back({IdentityType::kMsisdn, msisdn});
    spec.profile.Set("imsi", imsi, 0, 0);
    spec.profile.Set("msisdn", msisdn, 0, 0);
    spec.profile.Set("authkey", std::string("deadbeef"), 0, 0);
    spec.profile.Set("odb-premium-barred", false, 0, 0);
    return spec;
  }

  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<UdrNf> udr_;
};

TEST_F(UdrNfTest, DeploymentShape) {
  EXPECT_EQ(udr_->cluster_count(), 3u);
  EXPECT_EQ(udr_->TotalStorageElements(), 6);
  EXPECT_EQ(udr_->partition_count(), 6u);  // One primary per SE.
  EXPECT_NE(udr_->ClusterAtSite(1), nullptr);
  EXPECT_EQ(udr_->ClusterAtSite(9), nullptr);
}

TEST_F(UdrNfTest, PartitionsHaveGeodisperseSecondaries) {
  for (size_t p = 0; p < udr_->partition_count(); ++p) {
    replication::ReplicaSet* rs = udr_->partition(static_cast<uint32_t>(p));
    ASSERT_EQ(rs->replica_count(), 3u);
    // All three copies on distinct sites.
    std::set<sim::SiteId> sites;
    for (uint32_t r = 0; r < 3; ++r) sites.insert(rs->replica_site(r));
    EXPECT_EQ(sites.size(), 3u) << "partition " << p;
  }
}

TEST_F(UdrNfTest, CreateSubscriberBindsAllIdentities) {
  auto outcome = udr_->CreateSubscriber(SpecFor("214", "+34600"), 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(udr_->AuthoritativeLookup({IdentityType::kImsi, "214"}).ok());
  EXPECT_TRUE(udr_->AuthoritativeLookup({IdentityType::kMsisdn, "+34600"}).ok());
  // Both identities resolve to the same record everywhere.
  for (uint32_t s = 0; s < 3; ++s) {
    auto a = udr_->Locate({IdentityType::kImsi, "214"}, s);
    auto b = udr_->Locate({IdentityType::kMsisdn, "+34600"}, s);
    ASSERT_TRUE(a.status.ok()) << s;
    ASSERT_TRUE(b.status.ok()) << s;
    EXPECT_EQ(a.entry.key, b.entry.key);
  }
  EXPECT_EQ(udr_->SubscriberCount(), 1);
}

TEST_F(UdrNfTest, DuplicateIdentityRejected) {
  ASSERT_TRUE(udr_->CreateSubscriber(SpecFor("214", "+34600"), 0).ok());
  auto dup = udr_->CreateSubscriber(SpecFor("214", "+34601"), 0);
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST_F(UdrNfTest, SelectivePlacementPinsMaster) {
  UdrNf::CreateSpec spec = SpecFor("214", "+34600");
  spec.home_site = 2;
  auto outcome = udr_->CreateSubscriber(spec, 0);
  ASSERT_TRUE(outcome.ok());
  replication::ReplicaSet* rs = udr_->partition(outcome->entry.partition);
  EXPECT_EQ(rs->master_site(), 2u);
}

TEST_F(UdrNfTest, RoundRobinPlacementBalances) {
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(udr_
                    ->CreateSubscriber(SpecFor("i" + std::to_string(i),
                                               "m" + std::to_string(i)),
                                       0)
                    .ok());
  }
  // 12 subscribers over 6 partitions: 2 each under least-loaded placement.
  std::map<uint32_t, int> per_partition;
  for (int i = 0; i < 12; ++i) {
    auto loc = udr_->AuthoritativeLookup({IdentityType::kImsi,
                                          "i" + std::to_string(i)});
    ASSERT_TRUE(loc.ok());
    ++per_partition[loc->partition];
  }
  EXPECT_EQ(per_partition.size(), 6u);
  for (const auto& [p, n] : per_partition) EXPECT_EQ(n, 2) << "partition " << p;
}

TEST_F(UdrNfTest, DeleteSubscriberUnbindsEverything) {
  ASSERT_TRUE(udr_->CreateSubscriber(SpecFor("214", "+34600"), 0).ok());
  ASSERT_TRUE(udr_->DeleteSubscriber({IdentityType::kImsi, "214"}, 0).ok());
  EXPECT_TRUE(udr_->AuthoritativeLookup({IdentityType::kImsi, "214"})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(udr_->AuthoritativeLookup({IdentityType::kMsisdn, "+34600"})
                  .status()
                  .IsNotFound());
  EXPECT_EQ(udr_->SubscriberCount(), 0);
}

// ---------------------------------------------------------------------------
// LDAP data path
// ---------------------------------------------------------------------------

class UdrLdapTest : public UdrNfTest {
 protected:
  void SetUp() override {
    UdrNfTest::SetUp();
    clock_.AdvanceTo(Seconds(1));
    ASSERT_TRUE(udr_->CreateSubscriber(SpecFor("214", "+34600"), 0).ok());
    clock_.Advance(Seconds(1));
    udr_->CatchUpAllPartitions();
  }

  LdapResult Search(const std::string& dn_attr, const std::string& dn_value,
                    sim::SiteId site, bool master_only = false) {
    LdapRequest req;
    req.op = LdapOp::kSearch;
    req.dn = ldap::SubscriberDn(dn_attr, dn_value);
    req.master_only = master_only;
    return udr_->Submit(req, site);
  }
};

TEST_F(UdrLdapTest, BaseObjectSearchReturnsEntry) {
  LdapResult r = Search("imsi", "214", 0);
  ASSERT_EQ(r.code, LdapResultCode::kSuccess);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_TRUE(r.entries[0].record.Has("authkey"));
  EXPECT_GT(r.latency, 0);
  EXPECT_LT(r.latency, Millis(10));  // The paper's responsiveness target.
}

TEST_F(UdrLdapTest, SearchByAnyIdentityIndex) {
  EXPECT_EQ(Search("msisdn", "+34600", 1).code, LdapResultCode::kSuccess);
  EXPECT_EQ(Search("imsi", "214", 2).code, LdapResultCode::kSuccess);
}

TEST_F(UdrLdapTest, SearchUnknownSubscriberIsNoSuchObject) {
  EXPECT_EQ(Search("imsi", "999", 0).code, LdapResultCode::kNoSuchObject);
}

TEST_F(UdrLdapTest, SingleLevelSearchWithIdentityFilter) {
  LdapRequest req;
  req.op = LdapOp::kSearch;
  req.dn = ldap::SubscribersBase();
  req.scope = ldap::SearchScope::kSingleLevel;
  req.filter = "(msisdn=+34600)";
  LdapResult r = udr_->Submit(req, 0);
  ASSERT_EQ(r.code, LdapResultCode::kSuccess);
  EXPECT_EQ(r.entries.size(), 1u);
}

TEST_F(UdrLdapTest, RequestedAttrsProjection) {
  LdapRequest req;
  req.op = LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", "214");
  req.requested_attrs = {"msisdn"};
  LdapResult r = udr_->Submit(req, 0);
  ASSERT_EQ(r.code, LdapResultCode::kSuccess);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_TRUE(r.entries[0].record.Has("msisdn"));
  EXPECT_FALSE(r.entries[0].record.Has("authkey"));
}

TEST_F(UdrLdapTest, FilterCanExcludeEntry) {
  LdapRequest req;
  req.op = LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", "214");
  req.filter = "(odb-premium-barred=true)";
  LdapResult r = udr_->Submit(req, 0);
  EXPECT_EQ(r.code, LdapResultCode::kSuccess);
  EXPECT_TRUE(r.entries.empty());
}

TEST_F(UdrLdapTest, ModifyThenRead) {
  LdapRequest mod;
  mod.op = LdapOp::kModify;
  mod.dn = ldap::SubscriberDn("imsi", "214");
  mod.mods.push_back(
      {ldap::ModType::kReplace, "odb-premium-barred", true});
  ASSERT_EQ(udr_->Submit(mod, 0).code, LdapResultCode::kSuccess);
  LdapResult r = Search("imsi", "214", 0, /*master_only=*/true);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(storage::ValueToString(*r.entries[0].record.Get("odb-premium-barred")),
            "true");
}

TEST_F(UdrLdapTest, ModifyIdentityAttributeRejected) {
  LdapRequest mod;
  mod.op = LdapOp::kModify;
  mod.dn = ldap::SubscriberDn("imsi", "214");
  mod.mods.push_back({ldap::ModType::kReplace, "msisdn", std::string("+1")});
  EXPECT_EQ(udr_->Submit(mod, 0).code, LdapResultCode::kUnwillingToPerform);
}

TEST_F(UdrLdapTest, AddViaLdap) {
  LdapRequest add;
  add.op = LdapOp::kAdd;
  add.dn = ldap::SubscriberDn("imsi", "215");
  add.add_entry.Set("imsi", std::string("215"), 0, 0);
  add.add_entry.Set("msisdn", std::string("+34601"), 0, 0);
  ASSERT_EQ(udr_->Submit(add, 1).code, LdapResultCode::kSuccess);
  // Read through the master copy: the local slave may not have applied the
  // entry yet (async replication).
  EXPECT_EQ(Search("msisdn", "+34601", 1, /*master_only=*/true).code,
            LdapResultCode::kSuccess);
  // Adding the same DN again: entryAlreadyExists.
  EXPECT_EQ(udr_->Submit(add, 1).code, LdapResultCode::kEntryAlreadyExists);
}

TEST_F(UdrLdapTest, AddWithHomesitePinsPlacement) {
  LdapRequest add;
  add.op = LdapOp::kAdd;
  add.dn = ldap::SubscriberDn("imsi", "216");
  add.add_entry.Set("imsi", std::string("216"), 0, 0);
  add.add_entry.Set("homesite", int64_t{1}, 0, 0);
  ASSERT_EQ(udr_->Submit(add, 0).code, LdapResultCode::kSuccess);
  auto loc = udr_->AuthoritativeLookup({IdentityType::kImsi, "216"});
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(udr_->partition(loc->partition)->master_site(), 1u);
}

TEST_F(UdrLdapTest, DeleteViaLdap) {
  LdapRequest del;
  del.op = LdapOp::kDelete;
  del.dn = ldap::SubscriberDn("imsi", "214");
  ASSERT_EQ(udr_->Submit(del, 0).code, LdapResultCode::kSuccess);
  EXPECT_EQ(Search("imsi", "214", 0).code, LdapResultCode::kNoSuchObject);
  EXPECT_EQ(udr_->Submit(del, 0).code, LdapResultCode::kNoSuchObject);
}

TEST_F(UdrLdapTest, CompareTrueFalse) {
  LdapRequest cmp;
  cmp.op = LdapOp::kCompare;
  cmp.dn = ldap::SubscriberDn("imsi", "214");
  cmp.compare_attr = "msisdn";
  cmp.compare_value = "+34600";
  EXPECT_EQ(udr_->Submit(cmp, 0).code, LdapResultCode::kCompareTrue);
  cmp.compare_value = "+39999";
  EXPECT_EQ(udr_->Submit(cmp, 0).code, LdapResultCode::kCompareFalse);
}

TEST_F(UdrLdapTest, RemoteSubmitPaysBackboneWhenNoLocalPoa) {
  // Client at a site with a PoA: LAN leg. (All 3 sites have PoAs here, so
  // compare against a request that must reach a remote master instead.)
  LdapResult local_read = Search("imsi", "214", 0);
  LdapRequest mod;
  mod.op = LdapOp::kModify;
  mod.dn = ldap::SubscriberDn("imsi", "214");
  mod.mods.push_back({ldap::ModType::kReplace, "cfu-number", std::string("+1")});
  // The write must travel to the master copy's site from site 2.
  LdapResult remote_write = udr_->Submit(mod, 2);
  EXPECT_EQ(remote_write.code, LdapResultCode::kSuccess);
  EXPECT_GT(remote_write.latency, local_read.latency);
}

TEST_F(UdrLdapTest, SubmitUnreachableEverythingIsUnavailable) {
  // Isolate a site that has no cluster? All sites have clusters; instead cut
  // client site 2 from ALL sites and route from site 2: the local PoA still
  // serves (same-site LAN is never partitioned).
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(60));
  LdapResult r = Search("imsi", "214", 2);  // Local slave read still works.
  EXPECT_EQ(r.code, LdapResultCode::kSuccess);
}

// ---------------------------------------------------------------------------
// Scale-out (§3.4.2)
// ---------------------------------------------------------------------------

TEST_F(UdrNfTest, ScaleOutSyncWindowBlocksNewPoa) {
  clock_.AdvanceTo(Seconds(1));
  // Provision some subscribers so the identity maps are non-trivial.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(udr_
                    ->CreateSubscriber(SpecFor("i" + std::to_string(i),
                                               "m" + std::to_string(i)),
                                       0)
                    .ok());
  }
  // Scale out: deploy another cluster (site 2 gets a second one). The new
  // provisioned location stage must copy all identity-map entries from a
  // peer, and the copy duration is recorded as the §3.4.2 sync window.
  auto before = udr_->metrics().HistOrEmpty("scaleout.sync_window_us").count();
  auto cluster = udr_->AddCluster(2);
  ASSERT_TRUE(cluster.ok());
  auto& hist = udr_->metrics().HistOrEmpty("scaleout.sync_window_us");
  EXPECT_EQ(hist.count(), before + 1);
  // 500 subscribers x 2 identities each = 1000 entries; window scales with
  // the provisioned base (2 µs per entry by default).
  EXPECT_GE(hist.max(), 1000 * Micros(2));
  // During the window the new PoA's stage refuses to resolve.
  auto r = (*cluster)->location_stage()->Resolve({IdentityType::kImsi, "i0"},
                                                 clock_.Now());
  EXPECT_TRUE(r.status.IsUnavailable());
}

TEST_F(UdrNfTest, CachedLocationStageHasNoSyncWindow) {
  UdrConfig cfg;
  cfg.location_kind = LocationKind::kCached;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  ASSERT_TRUE(udr_->CreateSubscriber(SpecFor("214", "+34600"), 0).ok());
  auto cluster = udr_->AddCluster(1);  // Second cluster at an existing site.
  ASSERT_TRUE(cluster.ok());
  // New cluster's stage can resolve immediately (via broadcast).
  auto r = (*cluster)->location_stage()->Resolve({IdentityType::kImsi, "214"},
                                                 clock_.Now());
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.cache_miss);
  EXPECT_EQ(udr_->metrics().HistOrEmpty("scaleout.sync_window_us").count(), 0);
}

// ---------------------------------------------------------------------------
// Capacity model (§3.5 figures)
// ---------------------------------------------------------------------------

TEST(CapacityModelTest, PaperFigures) {
  CapacityModel m;
  EXPECT_EQ(m.BytesPerSubscriber(), 100'000);  // 200 GB / 2e6.
  EXPECT_EQ(m.SubscribersPerCluster(), 32'000'000);
  EXPECT_EQ(m.SubscribersPerNf(), 512'000'000);
  EXPECT_EQ(m.LdapOpsPerClusterStrict(), 32'000'000);
  EXPECT_EQ(m.LdapOpsPerClusterPaper(), 36'000'000);
  EXPECT_EQ(m.LdapOpsPerNfPaper(), 9'216'000'000);
  EXPECT_NEAR(m.OpsPerSubscriberPaper(), 18.0, 0.01);
}

TEST_F(UdrNfTest, AggregateCapacityReflectsDeployment) {
  // 6 SEs x default 200 GiB, 6 LDAP servers x 1e6 ops/s.
  EXPECT_EQ(udr_->TotalLdapOpsPerSecond(), 6'000'000);
  int64_t capacity = udr_->TotalSubscriberCapacity(100 * 1000);
  EXPECT_GT(capacity, 6LL * 2'000'000);  // GiB vs GB rounding.
}

}  // namespace
}  // namespace udr::udrnf
