// Tests for the batched data path: the routing::Router::RouteBatch staged
// pipeline (per-key op-order preservation, partition grouping, per-op error
// isolation), the replication-layer grouped entry points, the hash-routed
// location bypass (equivalence with the location-stage path), and the LDAP
// multi-op adapter end to end.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "routing/batch.h"
#include "routing/router.h"
#include "telecom/front_end.h"
#include "telecom/subscriber.h"
#include "workload/testbed.h"

namespace udr::routing {
namespace {

using location::Identity;
using location::IdentityType;
using replication::ReadPreference;

workload::TestbedOptions BaseOptions(int64_t subscribers = 0) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = subscribers;
  return o;
}

/// Lets asynchronous replication drain so nearest-replica reads see the
/// provisioned population (slave copies apply on delivery, not at commit).
void Settle(workload::Testbed& bed) {
  bed.clock().Advance(Seconds(120));
  bed.udr().CatchUpAllPartitions();
}

// ---------------------------------------------------------------------------
// Pipeline: order, grouping, isolation
// ---------------------------------------------------------------------------

TEST(RouteBatchTest, PerKeyOpOrderIsPreservedWithinABatch) {
  workload::Testbed bed(BaseOptions(5));
  Identity id = bed.factory().Make(2).ImsiId();

  // write cfu=first, read it, write cfu=second, read it again: each read
  // must observe exactly the write preceding it in the batch.
  BatchRequest batch;
  batch.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("first")}}));
  batch.Add(Operation::ReadAttribute(id, "cfu-number",
                                     ReadPreference::kMasterOnly));
  batch.Add(Operation::Write(
      id, {{Mutation::Kind::kSet, "cfu-number", std::string("second")}}));
  batch.Add(Operation::ReadAttribute(id, "cfu-number",
                                     ReadPreference::kMasterOnly));

  BatchResult result = bed.udr().router().RouteBatch(batch, 0);
  ASSERT_EQ(result.outcomes.size(), 4u);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.partition_groups, 1);
  ASSERT_TRUE(result.outcomes[1].value.has_value());
  EXPECT_EQ(storage::ValueToString(*result.outcomes[1].value), "first");
  ASSERT_TRUE(result.outcomes[3].value.has_value());
  EXPECT_EQ(storage::ValueToString(*result.outcomes[3].value), "second");
  // The two writes appended in batch order.
  EXPECT_LT(result.outcomes[0].seq, result.outcomes[2].seq);
}

TEST(RouteBatchTest, GroupsOpsByOwningPartition) {
  workload::Testbed bed(BaseOptions(40));
  Settle(bed);
  auto& udr = bed.udr();

  BatchRequest batch;
  std::vector<Identity> ids;
  for (uint64_t i = 0; i < 12; ++i) {
    ids.push_back(bed.factory().Make(i).ImsiId());
    batch.Add(Operation::ReadRecord(ids.back()));
  }
  BatchResult result = udr.router().RouteBatch(batch, 0);
  ASSERT_TRUE(result.ok());

  std::set<uint32_t> distinct;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto loc = udr.AuthoritativeLookup(ids[i]);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(result.outcomes[i].partition, loc->partition) << i;
    EXPECT_EQ(result.outcomes[i].key, loc->key) << i;
    ASSERT_TRUE(result.outcomes[i].record.has_value()) << i;
    distinct.insert(loc->partition);
  }
  EXPECT_EQ(result.partition_groups, static_cast<int>(distinct.size()));
  EXPECT_GT(result.partition_groups, 1);  // 40 subs over 6 partitions.
}

TEST(RouteBatchTest, FailedOpDoesNotPoisonTheBatch) {
  workload::Testbed bed(BaseOptions(10));
  Identity good_a = bed.factory().Make(1).ImsiId();
  Identity good_b = bed.factory().Make(2).ImsiId();
  Identity unknown{IdentityType::kImsi, "000000000000000"};

  BatchRequest batch;
  batch.Add(Operation::ReadRecord(good_a));
  batch.Add(Operation::ReadRecord(unknown));  // Fails resolution.
  batch.Add(Operation::Write(
      good_b, {{Mutation::Kind::kSet, "cfu-number", std::string("+34600")}}));

  BatchResult result = bed.udr().router().RouteBatch(batch, 0);
  EXPECT_EQ(result.failed_ops, 1);
  EXPECT_TRUE(result.outcomes[0].ok());
  EXPECT_TRUE(result.outcomes[0].record.has_value());
  EXPECT_TRUE(result.outcomes[1].status.IsNotFound());
  EXPECT_TRUE(result.outcomes[2].ok());
  EXPECT_GT(result.outcomes[2].seq, 0u);

  // The isolated write really committed.
  auto loc = bed.udr().AuthoritativeLookup(good_b);
  ASSERT_TRUE(loc.ok());
  auto record = bed.udr().partition(loc->partition)
                    ->ReadRecord(0, loc->key, ReadPreference::kMasterOnly);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(storage::ValueToString(*record->Get("cfu-number")), "+34600");
}

TEST(RouteBatchTest, BatchIsCheaperThanPerOpRouting) {
  workload::Testbed bed(BaseOptions(32));
  Settle(bed);
  auto& router = bed.udr().router();

  BatchRequest batch;
  std::vector<Identity> ids;
  for (uint64_t i = 0; i < 16; ++i) {
    ids.push_back(bed.factory().Make(i).ImsiId());
    batch.Add(Operation::ReadRecord(ids.back()));
  }
  BatchResult batched = router.RouteBatch(batch, 0);
  ASSERT_TRUE(batched.ok());

  MicroDuration per_op = 0;
  for (const Identity& id : ids) {
    RouteResult route = router.Route(id, 0, RouteIntent::kRead);
    ASSERT_TRUE(route.status.ok());
    replication::ReadResult meta;
    auto record = route.rs->ReadRecord(0, route.key,
                                       ReadPreference::kNearest, &meta);
    ASSERT_TRUE(record.ok());
    per_op += route.resolve_cost + meta.latency;
  }
  // The grouped dispatch pays one transit per partition group (concurrent),
  // not one per op: the modelled batch must be at least 2x cheaper.
  EXPECT_LT(2 * batched.latency, per_op);
}

// ---------------------------------------------------------------------------
// Replication-layer grouped entry points
// ---------------------------------------------------------------------------

TEST(GroupWriteTest, CommitsOneLogEntryPerTransactionInOneWindow) {
  workload::Testbed bed(BaseOptions(6));
  auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
  ASSERT_TRUE(loc.ok());
  replication::ReplicaSet* rs = bed.udr().partition(loc->partition);
  const storage::CommitSeq before = rs->log().LastSeq();

  // Per-op baseline for the same shape of transaction.
  replication::WriteResult single = rs->Write(
      0, {storage::WriteOp{storage::WriteKind::kUpsertAttr, loc->key,
                           storage::InternAttr("sqn"),
                           storage::Attribute{int64_t{1}, 0, 0}}});
  ASSERT_TRUE(single.status.ok());

  std::vector<std::vector<storage::WriteOp>> txns;
  for (int64_t i = 2; i <= 9; ++i) {
    txns.push_back({storage::WriteOp{storage::WriteKind::kUpsertAttr,
                                     loc->key, storage::InternAttr("sqn"),
                                     storage::Attribute{i, 0, 0}}});
  }
  replication::GroupWriteResult group = rs->WriteBatch(0, std::move(txns));
  ASSERT_TRUE(group.status.ok());
  ASSERT_EQ(group.per_op.size(), 8u);
  // One log entry per transaction, in order.
  EXPECT_EQ(rs->log().LastSeq(), before + 9);
  for (size_t i = 1; i < group.per_op.size(); ++i) {
    EXPECT_EQ(group.per_op[i].seq, group.per_op[i - 1].seq + 1);
  }
  // The group paid one transit for 8 commits: cheaper than 8 singles.
  EXPECT_LT(group.latency, 8 * single.latency);
}

TEST(GroupReadTest, MixedPreferencesAndMissingKeysAreIsolated) {
  workload::Testbed bed(BaseOptions(6));
  Settle(bed);
  auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(3).ImsiId());
  ASSERT_TRUE(loc.ok());
  replication::ReplicaSet* rs = bed.udr().partition(loc->partition);

  std::vector<replication::BatchReadOp> ops;
  ops.push_back({loc->key, "", ReadPreference::kNearest});        // Record.
  ops.push_back({loc->key, "imsi", ReadPreference::kMasterOnly}); // Attr.
  ops.push_back({9999999, "", ReadPreference::kNearest});         // Missing.
  replication::GroupReadResult group = rs->ReadBatch(0, ops);
  ASSERT_EQ(group.per_op.size(), 3u);
  EXPECT_TRUE(group.per_op[0].status.ok());
  EXPECT_TRUE(group.records[0].has_value());
  EXPECT_TRUE(group.per_op[1].status.ok());
  EXPECT_TRUE(group.per_op[1].value.has_value());
  EXPECT_TRUE(group.per_op[2].status.IsNotFound());
  EXPECT_GT(group.latency, 0);
}

// ---------------------------------------------------------------------------
// Hash-routed location bypass
// ---------------------------------------------------------------------------

workload::TestbedOptions HashOptions(int64_t subscribers) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = subscribers;
  o.udr.placement = PlacementKind::kHash;
  return o;
}

TEST(HashBypassTest, BypassedReadsMatchTheLocationStagePath) {
  workload::Testbed bed(HashOptions(50));
  auto& udr = bed.udr();
  for (uint64_t i = 0; i < 50; ++i) {
    Identity id = bed.factory().Make(i).ImsiId();
    // The hash fast path must reproduce the provisioned location exactly.
    RouteResult fast = udr.router().Route(id, 0, RouteIntent::kRead);
    ASSERT_TRUE(fast.status.ok()) << id.ToString();
    EXPECT_TRUE(fast.bypassed_location);
    auto loc = udr.AuthoritativeLookup(id);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(fast.partition, loc->partition) << id.ToString();
    EXPECT_EQ(fast.key, loc->key) << id.ToString();
    // The location-stage path (write intent never bypasses) agrees too.
    RouteResult slow = udr.router().Route(id, 0, RouteIntent::kWrite);
    ASSERT_TRUE(slow.status.ok());
    EXPECT_FALSE(slow.bypassed_location);
    EXPECT_EQ(slow.partition, fast.partition);
    EXPECT_EQ(slow.key, fast.key);
  }
  EXPECT_EQ(udr.metrics().Get("router.bypass.hits"), 50);
}

TEST(HashBypassTest, OtherIdentityTypesStillUseTheLocationStage) {
  workload::Testbed bed(HashOptions(20));
  // MSISDN hashes onto a different ring position than the IMSI that placed
  // the record, so it must resolve through the location stage.
  Identity msisdn = bed.factory().Make(7).MsisdnId();
  RouteResult route = bed.udr().router().Route(msisdn, 0, RouteIntent::kRead);
  ASSERT_TRUE(route.status.ok());
  EXPECT_FALSE(route.bypassed_location);
  auto loc = bed.udr().AuthoritativeLookup(msisdn);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(route.partition, loc->partition);
}

TEST(HashBypassTest, DisabledBypassFallsBackToLocationStage) {
  workload::TestbedOptions o = HashOptions(10);
  o.udr.hash_routed_reads = false;
  workload::Testbed bed(o);
  Identity id = bed.factory().Make(1).ImsiId();
  RouteResult route = bed.udr().router().Route(id, 0, RouteIntent::kRead);
  ASSERT_TRUE(route.status.ok());
  EXPECT_FALSE(route.bypassed_location);
  EXPECT_EQ(bed.udr().metrics().Get("router.bypass.hits"), 0);
}

TEST(HashBypassTest, BypassSurvivesScaleOutCommissioning) {
  workload::Testbed bed(HashOptions(60));
  auto& udr = bed.udr();
  // Scale out: new SEs join and commissioning grows the ring, so ~K/N
  // subscribers hash to a new owner. They must be re-homed (record shipped,
  // identities rebound) or bypassed reads would route into empty partitions.
  ASSERT_TRUE(udr.AddCluster(0).ok());
  size_t before = udr.partition_count();
  udr.CommissionPartitions();
  ASSERT_GT(udr.partition_count(), before);
  EXPECT_GT(udr.metrics().Get("hash.rehome.moved"), 0);

  for (uint64_t i = 0; i < 60; ++i) {
    Identity id = bed.factory().Make(i).ImsiId();
    RouteResult fast = udr.router().Route(id, 0, RouteIntent::kRead);
    ASSERT_TRUE(fast.status.ok()) << id.ToString();
    EXPECT_TRUE(fast.bypassed_location);
    auto loc = udr.AuthoritativeLookup(id);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(fast.partition, loc->partition) << id.ToString();
    EXPECT_EQ(fast.key, loc->key) << id.ToString();
    auto record = fast.rs->ReadRecord(0, fast.key,
                                      ReadPreference::kMasterOnly);
    ASSERT_TRUE(record.ok()) << "bypassed read lost " << id.ToString();
  }
}

TEST(HashBypassTest, ExceptedIdentityFallsBackToLocationStage) {
  workload::Testbed bed(HashOptions(10));
  Identity id = bed.factory().Make(4).ImsiId();
  auto& router = bed.udr().router();
  ASSERT_TRUE(router.Route(id, 0, RouteIntent::kRead).bypassed_location);

  // A subscriber whose re-home failed is excluded from the bypass: reads
  // resolve through the location stage (which knows the true location).
  router.AddBypassException(id);
  RouteResult route = router.Route(id, 0, RouteIntent::kRead);
  ASSERT_TRUE(route.status.ok());
  EXPECT_FALSE(route.bypassed_location);
  auto loc = bed.udr().AuthoritativeLookup(id);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(route.partition, loc->partition);

  router.ClearBypassException(id);
  EXPECT_TRUE(router.Route(id, 0, RouteIntent::kRead).bypassed_location);
}

TEST(HashBypassTest, RejectsSecondHashTypeIdentityPerSubscription) {
  workload::Testbed bed(HashOptions(0));
  udrnf::UdrNf::CreateSpec spec = bed.factory().MakeSpec(0, std::nullopt);
  spec.identities.push_back(Identity{IdentityType::kImsi, "214079999999999"});
  auto outcome = bed.udr().CreateSubscriber(spec, 0);
  EXPECT_TRUE(outcome.status().IsInvalidArgument());
}

TEST(HashBypassTest, SequentialImsiBlocksSpreadAcrossPartitions) {
  // Real numbering plans hand out sequential IMSI blocks; the identity hash
  // must still spread them over the ring instead of clustering on one arc.
  workload::Testbed bed(HashOptions(0));
  auto& map = bed.udr().partition_map();
  bed.udr().CommissionPartitions();
  std::set<uint32_t> hit;
  for (uint64_t i = 0; i < 200; ++i) {
    hit.insert(map.PartitionOfIdentity(bed.factory().Make(i).ImsiId()));
  }
  // 200 sequential subscribers over 6 partitions: expect most partitions hit.
  EXPECT_GE(hit.size(), map.partition_count() - 1);
}

TEST(HashBypassTest, BatchReadsCountBypassHits) {
  workload::Testbed bed(HashOptions(20));
  Settle(bed);
  BatchRequest batch;
  for (uint64_t i = 0; i < 8; ++i) {
    batch.Add(Operation::ReadRecord(bed.factory().Make(i).ImsiId()));
  }
  BatchResult result = bed.udr().router().RouteBatch(batch, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.bypass_hits, 8);
  for (const OpOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.bypassed_location);
    EXPECT_TRUE(o.record.has_value());
  }
}

// ---------------------------------------------------------------------------
// Subscriber delete lifecycle under hash placement (bypass-path fixes)
// ---------------------------------------------------------------------------

ldap::LdapRequest DeleteOf(const std::string& imsi) {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kDelete;
  req.dn = ldap::SubscriberDn("imsi", imsi);
  req.master_only = true;
  return req;
}

TEST(HashDeleteLifecycleTest, DeleteClearsBypassExceptionEntries) {
  workload::Testbed bed(HashOptions(12));
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(5).ImsiId();
  // Simulate a failed re-home: the subscriber is pinned to the slow path.
  udr.router().AddBypassException(id);
  ASSERT_EQ(udr.router().bypass_exception_count(), 1u);

  ASSERT_TRUE(udr.DeleteSubscriber(id, 0).ok());
  // The deleted identity must not leak an exception entry forever...
  EXPECT_EQ(udr.router().bypass_exception_count(), 0u);
  // ...and a bypassed read after the delete misses cleanly: the hash still
  // routes to the ring owner, where both the record and the binding are gone.
  RouteResult fast = udr.router().Route(id, 0, RouteIntent::kRead);
  ASSERT_TRUE(fast.status.ok());
  EXPECT_TRUE(fast.bypassed_location);
  auto record = fast.rs->ReadRecord(0, fast.key, ReadPreference::kMasterOnly);
  EXPECT_TRUE(record.status().IsNotFound());
  EXPECT_TRUE(udr.AuthoritativeLookup(id).status().IsNotFound());
}

TEST(HashDeleteLifecycleTest, RehomeAgreementDropsStaleException) {
  workload::Testbed bed(HashOptions(15));
  auto& udr = bed.udr();
  Identity id = bed.factory().Make(3).ImsiId();
  // An exception whose identity already agrees with its ring owner (as after
  // a ring change that undid the stranding move) is obsolete; the next
  // re-home pass must drop it instead of pinning the slow path forever.
  udr.router().AddBypassException(id);
  ASSERT_TRUE(udr.AddCluster(1).ok());
  udr.CommissionPartitions();  // Runs the re-home pass over all bindings.
  EXPECT_EQ(udr.router().bypass_exception_count(), 0u);
  EXPECT_TRUE(udr.router().Route(id, 0, RouteIntent::kRead).bypassed_location);
}

TEST(HashDeleteLifecycleTest, BatchedDeletesRideTheGroupedPipeline) {
  workload::Testbed bed(HashOptions(20));
  Settle(bed);
  auto& udr = bed.udr();
  const int64_t before = udr.SubscriberCount();
  const int64_t deletes_before = udr.metrics().Get("udr.delete.ok");

  std::vector<ldap::LdapRequest> requests;
  for (uint64_t i = 0; i < 4; ++i) {
    requests.push_back(DeleteOf(bed.factory().Make(i).imsi));
  }
  // A modify of a live subscriber shares the same window...
  ldap::LdapRequest mod;
  mod.op = ldap::LdapOp::kModify;
  mod.dn = ldap::SubscriberDn("imsi", bed.factory().Make(10).imsi);
  mod.mods.push_back(
      {ldap::ModType::kReplace, "serving-vlr", std::string("vlr3")});
  requests.push_back(mod);
  // ...and a later read of a deleted subscriber observes the deletion
  // (per-key order holds across the whole batch, no flush between verbs).
  ldap::LdapRequest read;
  read.op = ldap::LdapOp::kSearch;
  read.dn = ldap::SubscriberDn("imsi", bed.factory().Make(0).imsi);
  read.master_only = true;
  requests.push_back(read);

  ldap::LdapBatchResult out = udr.SubmitBatch(requests, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out.results[i].code, ldap::LdapResultCode::kSuccess) << i;
  }
  EXPECT_EQ(out.results[4].code, ldap::LdapResultCode::kSuccess);
  EXPECT_EQ(out.results[5].code, ldap::LdapResultCode::kNoSuchObject);
  EXPECT_EQ(udr.SubscriberCount(), before - 4);
  EXPECT_EQ(udr.metrics().Get("udr.delete.ok"), deletes_before + 4);
  // The deletes rode the grouped pipeline: one batch, no per-op flushes.
  EXPECT_EQ(udr.metrics().Get("router.batch.count"), 1);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(udr.router().IsBound(bed.factory().Make(i).ImsiId())) << i;
    EXPECT_FALSE(udr.router().IsBound(bed.factory().Make(i).MsisdnId())) << i;
  }
}

TEST(HashDeleteLifecycleTest, DeleteOfUnknownSubscriberIsIsolated) {
  workload::Testbed bed(HashOptions(8));
  Settle(bed);
  std::vector<ldap::LdapRequest> requests;
  requests.push_back(DeleteOf("000000000000000"));  // Never provisioned.
  requests.push_back(DeleteOf(bed.factory().Make(1).imsi));
  ldap::LdapBatchResult out = bed.udr().SubmitBatch(requests, 0);
  EXPECT_EQ(out.results[0].code, ldap::LdapResultCode::kNoSuchObject);
  EXPECT_EQ(out.results[1].code, ldap::LdapResultCode::kSuccess);
  EXPECT_EQ(bed.udr().SubscriberCount(), 7);
}

TEST(HashDeleteLifecycleTest, PopulationMatchesLiveCountAfterChurn) {
  workload::Testbed bed(HashOptions(30));
  Settle(bed);
  auto& udr = bed.udr();

  // Delete 10 through the batched LDAP path (two multi-delete messages).
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<ldap::LdapRequest> deletes;
    for (uint64_t i = 0; i < 5; ++i) {
      deletes.push_back(
          DeleteOf(bed.factory().Make(wave * 5 + i).imsi));
    }
    ldap::LdapBatchResult out = udr.SubmitBatch(deletes, 0);
    EXPECT_TRUE(out.ok());
  }
  // Re-provision 6 fresh subscribers and delete 2 of them per-op again.
  EXPECT_EQ(bed.ProvisionDirect(100, 6), 6);
  for (uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        udr.DeleteSubscriber(bed.factory().Make(100 + i).ImsiId(), 0).ok());
  }

  const int64_t live = udr.SubscriberCount();
  EXPECT_EQ(live, 30 - 10 + 6 - 2);
  int64_t population_total = 0;
  for (int64_t p : udr.partition_map().PopulationPerSe()) population_total += p;
  EXPECT_EQ(population_total, live);
  EXPECT_EQ(udr.router().bypass_exception_count(), 0u);
  // Live subscribers still bypass; deleted ones miss cleanly.
  EXPECT_TRUE(udr.router()
                  .Route(bed.factory().Make(20).ImsiId(), 0, RouteIntent::kRead)
                  .bypassed_location);
  EXPECT_TRUE(udr.AuthoritativeLookup(bed.factory().Make(3).ImsiId())
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// LDAP multi-op adapter and batched front ends
// ---------------------------------------------------------------------------

TEST(LdapBatchTest, MultiOpMessageMatchesSequentialSubmits) {
  workload::Testbed bed(BaseOptions(10));
  Settle(bed);
  telecom::Subscriber sub = bed.factory().Make(4);
  ldap::Dn dn = ldap::SubscriberDn("imsi", sub.imsi);

  std::vector<ldap::LdapRequest> requests;
  ldap::LdapRequest read;
  read.op = ldap::LdapOp::kSearch;
  read.dn = dn;
  read.requested_attrs = {"authkey", "sqn"};
  requests.push_back(read);
  ldap::LdapRequest mod;
  mod.op = ldap::LdapOp::kModify;
  mod.dn = dn;
  mod.mods.push_back(
      {ldap::ModType::kReplace, "serving-vlr", std::string("vlr9")});
  requests.push_back(mod);
  ldap::LdapRequest compare;
  compare.op = ldap::LdapOp::kCompare;
  compare.dn = dn;
  compare.compare_attr = "serving-vlr";
  compare.compare_value = "vlr9";
  compare.master_only = true;  // Must observe the same-batch write.
  requests.push_back(compare);

  ldap::LdapBatchResult batch = bed.udr().SubmitBatch(requests, 0);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_TRUE(batch.ok());
  EXPECT_EQ(batch.results[0].code, ldap::LdapResultCode::kSuccess);
  ASSERT_EQ(batch.results[0].entries.size(), 1u);
  EXPECT_TRUE(batch.results[0].entries[0].record.Has("authkey"));
  EXPECT_EQ(batch.results[2].code, ldap::LdapResultCode::kCompareTrue);
  EXPECT_EQ(batch.partition_groups, 1);

  // One round trip for the whole event: cheaper than the sequential path.
  MicroDuration sequential = 0;
  for (const auto& req : requests) {
    ldap::LdapResult r = bed.udr().Submit(req, 0);
    ASSERT_TRUE(r.ok());
    sequential += r.latency;
  }
  EXPECT_LT(batch.latency, sequential);
}

TEST(LdapBatchTest, UnbatchableVerbsExecuteInPlace) {
  workload::Testbed bed(BaseOptions(5));
  Settle(bed);
  telecom::Subscriber fresh = bed.factory().Make(100);
  int64_t before = bed.udr().SubscriberCount();

  std::vector<ldap::LdapRequest> requests;
  ldap::LdapRequest add;
  add.op = ldap::LdapOp::kAdd;
  add.dn = ldap::SubscriberDn("imsi", fresh.imsi);
  add.add_entry = fresh.profile;
  requests.push_back(add);
  ldap::LdapRequest read;  // Reads the just-added subscriber: order matters.
  read.op = ldap::LdapOp::kSearch;
  read.dn = ldap::SubscriberDn("imsi", fresh.imsi);
  read.master_only = true;  // Slave copies apply the Add asynchronously.
  requests.push_back(read);

  ldap::LdapBatchResult batch = bed.udr().SubmitBatch(requests, 0);
  ASSERT_EQ(batch.results.size(), 2u);
  EXPECT_TRUE(batch.ok()) << batch.results[0].diagnostic << " / "
                          << batch.results[1].diagnostic;
  EXPECT_EQ(bed.udr().SubscriberCount(), before + 1);
  ASSERT_EQ(batch.results[1].entries.size(), 1u);
}

TEST(LdapBatchTest, BadOpInBatchIsIsolated) {
  workload::Testbed bed(BaseOptions(5));
  telecom::Subscriber sub = bed.factory().Make(1);
  ldap::Dn dn = ldap::SubscriberDn("imsi", sub.imsi);

  std::vector<ldap::LdapRequest> requests;
  ldap::LdapRequest bad;  // Identity attributes are immutable.
  bad.op = ldap::LdapOp::kModify;
  bad.dn = dn;
  bad.mods.push_back({ldap::ModType::kReplace, "imsi", std::string("x")});
  requests.push_back(bad);
  ldap::LdapRequest good;
  good.op = ldap::LdapOp::kSearch;
  good.dn = dn;
  requests.push_back(good);

  ldap::LdapBatchResult batch = bed.udr().SubmitBatch(requests, 0);
  EXPECT_EQ(batch.results[0].code, ldap::LdapResultCode::kUnwillingToPerform);
  EXPECT_EQ(batch.results[1].code, ldap::LdapResultCode::kSuccess);
  EXPECT_EQ(batch.failed_ops(), 1);
}

TEST(FrontEndBatchTest, BatchedProcedureMatchesSequentialEffects) {
  workload::Testbed bed_seq(BaseOptions(10));
  workload::Testbed bed_bat(BaseOptions(10));
  Settle(bed_seq);
  Settle(bed_bat);
  Identity impu_seq = bed_seq.factory().Make(3).ImpuId();
  Identity impu_bat = bed_bat.factory().Make(3).ImpuId();

  telecom::HssFe seq_fe(0, &bed_seq.udr(), /*batched=*/false);
  telecom::HssFe bat_fe(0, &bed_bat.udr(), /*batched=*/true);
  telecom::ProcedureResult seq = seq_fe.ImsRegister(impu_seq, "scscf1");
  telecom::ProcedureResult bat = bat_fe.ImsRegister(impu_bat, "scscf1");
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(seq.ldap_ops, bat.ldap_ops);
  // Identical state effects on both testbeds.
  for (auto* bed : {&bed_seq, &bed_bat}) {
    auto loc = bed->udr().AuthoritativeLookup(bed->factory().Make(3).ImpuId());
    ASSERT_TRUE(loc.ok());
    auto record = bed->udr().partition(loc->partition)
                      ->ReadRecord(0, loc->key, ReadPreference::kMasterOnly);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(storage::ValueToString(*record->Get("s-cscf")), "scscf1");
    EXPECT_EQ(storage::ValueToString(*record->Get("registration-state")),
              "registered");
  }
  // The multi-op message is cheaper end to end.
  EXPECT_LT(bat.latency, seq.latency);
}

}  // namespace
}  // namespace udr::routing
