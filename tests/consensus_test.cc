// Tests for the §6 future-work consensus replication alternative.

#include <gtest/gtest.h>

#include <memory>

#include "replication/consensus.h"
#include "replication/write_builder.h"

namespace udr::replication {
namespace {

using storage::ValueToString;

class ConsensusTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(5); }

  void Build(int n) {
    network_ = std::make_unique<sim::Network>(
        sim::Topology(static_cast<uint32_t>(n)), &clock_);
    ses_.clear();
    std::vector<storage::StorageElement*> ptrs;
    for (int s = 0; s < n; ++s) {
      storage::StorageElementConfig cfg;
      cfg.site = static_cast<sim::SiteId>(s);
      cfg.name = "se-" + std::to_string(s);
      ses_.push_back(std::make_unique<storage::StorageElement>(
          cfg, &clock_, static_cast<uint32_t>(s)));
      ptrs.push_back(ses_.back().get());
    }
    group_ = std::make_unique<ConsensusReplicaSet>(ConsensusConfig(), ptrs,
                                                   network_.get());
  }

  ConsensusWriteResult Put(sim::SiteId from, storage::RecordKey key,
                           int64_t v) {
    WriteBuilder wb;
    wb.Set(key, "v", v);
    return group_->Write(from, std::move(wb).Build());
  }

  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<storage::StorageElement>> ses_;
  std::unique_ptr<ConsensusReplicaSet> group_;
};

TEST_F(ConsensusTest, WriteCommitsOnMajority) {
  clock_.AdvanceTo(Seconds(1));
  auto w = Put(0, 1, 42);
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(w.seq, 1u);
  EXPECT_EQ(w.leader, 0u);
  // Leader + 2 fastest followers (majority of 5) applied synchronously.
  int applied = 0;
  for (uint32_t id = 0; id < 5; ++id) {
    if (group_->applied_seq(id) == 1) ++applied;
  }
  EXPECT_GE(applied, 3);
}

TEST_F(ConsensusTest, CommitLatencyIncludesMajorityRoundTrip) {
  clock_.AdvanceTo(Seconds(1));
  auto w = Put(0, 1, 1);
  ASSERT_TRUE(w.status.ok());
  EXPECT_GT(w.latency, Millis(30));  // Backbone RTT to followers.
}

TEST_F(ConsensusTest, LeaderCrashLosesNothing) {
  clock_.AdvanceTo(Seconds(1));
  for (int i = 1; i <= 20; ++i) Put(0, 1, i);
  group_->CrashReplica(group_->leader_id());
  clock_.Advance(Seconds(5));
  // Next write elects a new leader and the full history survives.
  auto w = Put(1, 1, 21);
  ASSERT_TRUE(w.status.ok());
  EXPECT_TRUE(w.triggered_election);
  EXPECT_EQ(w.seq, 21u);
  auto r = group_->ReadAttribute(1, 1, "v");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "21");
  EXPECT_GE(group_->term(), 2u);
}

TEST_F(ConsensusTest, MajoritySideKeepsWritingDuringPartition) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, 1);
  // Leader (site 0) + site 1 cut from sites 2,3,4: majority is {2,3,4}.
  network_->partitions().CutBetween({0, 1}, {2, 3, 4}, clock_.Now(),
                                    clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(3));
  // Client on the majority side: election + commit succeed.
  auto w = Put(3, 1, 2);
  ASSERT_TRUE(w.status.ok());
  EXPECT_TRUE(w.triggered_election);
  EXPECT_GE(w.leader, 2u);
  // Client on the minority side: refused (no divergence, unlike AP mode).
  auto rejected = Put(0, 1, 3);
  EXPECT_TRUE(rejected.status.IsUnavailable());
  EXPECT_EQ(group_->writes_rejected(), 1);
}

TEST_F(ConsensusTest, NoMajorityAnywhereMeansUnavailable) {
  Build(3);
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, 1);
  // Full three-way split.
  network_->partitions().CutLink(0, 1, clock_.Now(), clock_.Now() + Seconds(60));
  network_->partitions().CutLink(0, 2, clock_.Now(), clock_.Now() + Seconds(60));
  network_->partitions().CutLink(1, 2, clock_.Now(), clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(1));
  for (sim::SiteId s = 0; s < 3; ++s) {
    EXPECT_TRUE(Put(s, 1, 9).status.IsUnavailable()) << s;
  }
}

TEST_F(ConsensusTest, ElectionPicksMostUpToDateReplica) {
  clock_.AdvanceTo(Seconds(1));
  for (int i = 1; i <= 10; ++i) Put(0, 1, i);
  // Find a replica that has everything and one that is behind.
  group_->CatchUpAll();  // Everyone applies all 10 now.
  Put(0, 2, 99);         // Majority applies seq 11; some follower may lag.
  uint32_t old_leader = group_->leader_id();
  group_->CrashReplica(old_leader);
  clock_.Advance(Seconds(5));
  auto w = Put(1, 3, 1);
  ASSERT_TRUE(w.status.ok());
  // New leader must hold seq 11 (committed data survives by quorum overlap).
  EXPECT_GE(group_->applied_seq(group_->leader_id()), 11u);
  auto r = group_->ReadAttribute(1, 2, "v");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "99");
}

TEST_F(ConsensusTest, RecoveredReplicaRejoinsAndCatchesUp) {
  clock_.AdvanceTo(Seconds(1));
  for (int i = 1; i <= 5; ++i) Put(0, 1, i);
  group_->CrashReplica(4);
  for (int i = 6; i <= 10; ++i) Put(0, 1, i);
  group_->RecoverReplica(4);
  EXPECT_EQ(group_->applied_seq(4), 10u);
  EXPECT_EQ(ValueToString(*group_->replica_store(4).Find(1)->Get("v")), "10");
}

TEST_F(ConsensusTest, LinearizableReadAfterWrite) {
  clock_.AdvanceTo(Seconds(1));
  Put(2, 7, 123);
  auto r = group_->ReadAttribute(4, 7, "v");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "123");  // No staleness window.
}

TEST_F(ConsensusTest, ReadTriggersElectionWhenLeaderDead) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, 5);
  group_->CrashReplica(group_->leader_id());
  clock_.Advance(Seconds(5));
  auto r = group_->ReadAttribute(1, 1, "v");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "5");
  EXPECT_EQ(group_->elections(), 1);
  EXPECT_GT(r.latency, Seconds(2));  // Paid the election timeout.
}

}  // namespace
}  // namespace udr::replication
