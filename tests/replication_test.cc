// Unit + property tests for src/replication: async delivery horizons, the
// serialization-order invariant, sync modes, failover data loss, read
// preferences / staleness, multi-master divergence and consistency
// restoration.

#include <gtest/gtest.h>

#include <memory>

#include "replication/replica_set.h"
#include "replication/write_builder.h"
#include "sim/network.h"

namespace udr::replication {
namespace {

using storage::Record;
using storage::StorageElement;
using storage::StorageElementConfig;
using storage::ValueToString;

/// Three-site harness: one SE per site, replica set mastered at site 0.
class ReplicaSetTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(ReplicaSetConfig()); }

  void Build(ReplicaSetConfig cfg) {
    sim::LatencyConfig lc;
    lc.lan_one_way = Micros(100);
    lc.backbone_one_way = Millis(15);
    network_ = std::make_unique<sim::Network>(sim::Topology(3, lc), &clock_);
    ses_.clear();
    for (uint32_t s = 0; s < 3; ++s) {
      StorageElementConfig se_cfg;
      se_cfg.name = "se-" + std::to_string(s);
      se_cfg.site = s;
      ses_.push_back(std::make_unique<StorageElement>(se_cfg, &clock_, s));
    }
    rs_ = std::make_unique<ReplicaSet>(
        cfg,
        std::vector<StorageElement*>{ses_[0].get(), ses_[1].get(),
                                     ses_[2].get()},
        network_.get());
  }

  WriteResult Put(sim::SiteId from, storage::RecordKey key,
                  const std::string& attr, storage::Value v) {
    WriteBuilder wb;
    wb.Set(key, attr, std::move(v));
    return rs_->Write(from, std::move(wb).Build());
  }

  std::string ValueAt(uint32_t replica, storage::RecordKey key,
                      const std::string& attr) {
    const Record* r = rs_->replica_store(replica).Find(key);
    if (r == nullptr) return "<norec>";
    auto v = r->Get(attr);
    return v.has_value() ? ValueToString(*v) : "<noattr>";
  }

  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<StorageElement>> ses_;
  std::unique_ptr<ReplicaSet> rs_;
};

// ---------------------------------------------------------------------------
// Basic write/read + async visibility
// ---------------------------------------------------------------------------

TEST_F(ReplicaSetTest, WriteAppliesOnMasterImmediately) {
  clock_.AdvanceTo(Seconds(1));
  WriteResult w = Put(0, 1, "a", int64_t{42});
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(w.seq, 1u);
  EXPECT_EQ(w.served_by, 0u);
  EXPECT_EQ(ValueAt(0, 1, "a"), "42");
  // Slaves have not applied yet (no catch-up, no time).
  EXPECT_EQ(ValueAt(1, 1, "a"), "<norec>");
}

TEST_F(ReplicaSetTest, AsyncDeliveryHonorsLatencyHorizon) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  // Before one backbone one-way (15ms) the entry must not be visible.
  clock_.Advance(Millis(10));
  rs_->CatchUpAll();
  EXPECT_EQ(ValueAt(1, 1, "a"), "<norec>");
  // After 15ms it is.
  clock_.Advance(Millis(6));
  rs_->CatchUpAll();
  EXPECT_EQ(ValueAt(1, 1, "a"), "1");
  EXPECT_EQ(rs_->applied_seq(1), 1u);
}

TEST_F(ReplicaSetTest, SlaveAppliesInSerializationOrder) {
  // The §3.2 invariant: slave apply order == master commit order.
  clock_.AdvanceTo(Seconds(1));
  for (int i = 1; i <= 20; ++i) {
    Put(0, 1, "a", static_cast<int64_t>(i));
    clock_.Advance(Millis(1));
  }
  clock_.Advance(Seconds(1));
  rs_->CatchUp(1);
  // Final value must be the last committed one; intermediate states applied
  // in order mean version count equals entry count.
  EXPECT_EQ(ValueAt(1, 1, "a"), "20");
  EXPECT_EQ(rs_->applied_seq(1), 20u);
}

TEST_F(ReplicaSetTest, PartialCatchUpStopsAtHorizon) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Millis(20));
  Put(0, 1, "a", int64_t{2});  // Second write at t=1.020s.
  clock_.Advance(Millis(10));  // Now t=1.030s: first delivered, second not.
  rs_->CatchUp(1);
  EXPECT_EQ(ValueAt(1, 1, "a"), "1");
  EXPECT_EQ(rs_->applied_seq(1), 1u);
}

TEST_F(ReplicaSetTest, WriteLatencyIncludesClientLeg) {
  clock_.AdvanceTo(Seconds(1));
  WriteResult local = Put(0, 1, "a", int64_t{1});
  WriteResult remote = Put(2, 1, "a", int64_t{2});
  // Client at site 2 pays a backbone round trip to the master at site 0.
  EXPECT_GT(remote.latency, local.latency + Millis(25));
}

// ---------------------------------------------------------------------------
// Reads: preferences and staleness
// ---------------------------------------------------------------------------

TEST_F(ReplicaSetTest, NearestReadServedByLocalSlave) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{5});
  clock_.Advance(Seconds(1));
  ReadResult r = rs_->ReadAttribute(2, 1, "a", ReadPreference::kNearest);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.served_by, 2u);
  EXPECT_FALSE(r.stale);
  EXPECT_LT(r.latency, Millis(2));  // LAN, not backbone.
}

TEST_F(ReplicaSetTest, MasterOnlyReadCrossesBackbone) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{5});
  ReadResult r = rs_->ReadAttribute(2, 1, "a", ReadPreference::kMasterOnly);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.served_by, 0u);
  EXPECT_GT(r.latency, Millis(29));
}

TEST_F(ReplicaSetTest, SlaveReadIsStaleUntilDelivery) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  Put(0, 1, "a", int64_t{2});  // Not yet delivered anywhere.
  ReadResult r = rs_->ReadAttribute(2, 1, "a", ReadPreference::kNearest);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.stale);
  EXPECT_EQ(ValueToString(*r.value), "1");  // Old value.
  EXPECT_EQ(rs_->stale_reads(), 1);
  // Master read is never stale.
  ReadResult m = rs_->ReadAttribute(2, 1, "a", ReadPreference::kMasterOnly);
  EXPECT_FALSE(m.stale);
  EXPECT_EQ(ValueToString(*m.value), "2");
}

TEST_F(ReplicaSetTest, ReadMissingAttributeIsNotFound) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  ReadResult r = rs_->ReadAttribute(0, 1, "zzz", ReadPreference::kMasterOnly);
  EXPECT_TRUE(r.status.IsNotFound());
  ReadResult r2 = rs_->ReadAttribute(0, 99, "a", ReadPreference::kMasterOnly);
  EXPECT_TRUE(r2.status.IsNotFound());
}

// ---------------------------------------------------------------------------
// CAP behaviour on partition: CP mode (paper default)
// ---------------------------------------------------------------------------

TEST_F(ReplicaSetTest, CpModeRejectsWritesFromMinoritySide) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  // Site 2 is cut off from the master's site 0.
  network_->partitions().CutLink(0, 2, Seconds(2), Seconds(60));
  clock_.AdvanceTo(Seconds(5));
  WriteResult w = Put(2, 1, "a", int64_t{2});
  EXPECT_TRUE(w.status.IsUnavailable());
  EXPECT_EQ(rs_->writes_rejected(), 1);
  // Writes from the master side still proceed.
  WriteResult w2 = Put(1, 1, "a", int64_t{3});
  EXPECT_TRUE(w2.status.ok());
}

TEST_F(ReplicaSetTest, CpModeServesLocalReadsDuringPartition) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().CutLink(0, 2, clock_.Now(), clock_.Now() + Seconds(60));
  network_->partitions().CutLink(1, 2, clock_.Now(), clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(5));
  // FE at site 2 reads its co-located slave copy: still available.
  ReadResult r = rs_->ReadAttribute(2, 1, "a", ReadPreference::kNearest);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.served_by, 2u);
  // Master-only reads from site 2 fail: the PS side of §4.1.
  ReadResult m = rs_->ReadAttribute(2, 1, "a", ReadPreference::kMasterOnly);
  EXPECT_TRUE(m.status.IsUnavailable());
}

TEST_F(ReplicaSetTest, WritesBlockedDeliverAfterHeal) {
  clock_.AdvanceTo(Seconds(1));
  network_->partitions().CutLink(0, 1, Seconds(1), Seconds(10));
  Put(0, 1, "a", int64_t{7});
  clock_.AdvanceTo(Seconds(5));
  rs_->CatchUpAll();
  EXPECT_EQ(ValueAt(1, 1, "a"), "<norec>");  // Still partitioned.
  clock_.AdvanceTo(Seconds(10) + Millis(16));
  rs_->CatchUpAll();
  EXPECT_EQ(ValueAt(1, 1, "a"), "7");  // Delivered after heal + latency.
}

// ---------------------------------------------------------------------------
// Failover and the async durability gap
// ---------------------------------------------------------------------------

TEST_F(ReplicaSetTest, FailoverLosesUnreplicatedSuffix) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();  // Seq 1 everywhere.
  Put(0, 1, "a", int64_t{2});
  Put(0, 2, "b", int64_t{3});  // Seqs 2,3 acked but not yet delivered.
  rs_->CrashReplica(0);
  clock_.Advance(Seconds(10));  // Past failover detection.
  auto report = rs_->FailOver();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->old_master, 0u);
  EXPECT_EQ(report->acknowledged_seq, 3u);
  EXPECT_EQ(report->promoted_seq, 1u);
  EXPECT_EQ(report->lost_transactions, 2);
  EXPECT_EQ(rs_->master_id(), report->new_master);
  // The acked-but-lost write is gone.
  ReadResult r = rs_->ReadAttribute(1, 1, "a", ReadPreference::kMasterOnly);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "1");
}

TEST_F(ReplicaSetTest, WriteTriggersFailoverAfterDetectionTimeout) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  rs_->CrashReplica(0);
  // Before detection timeout: Unavailable.
  clock_.Advance(Seconds(1));
  WriteResult early = Put(1, 1, "a", int64_t{2});
  EXPECT_TRUE(early.status.IsUnavailable());
  // After detection timeout: write triggers failover and succeeds.
  clock_.Advance(Seconds(10));
  WriteResult late = Put(1, 1, "a", int64_t{3});
  EXPECT_TRUE(late.status.ok());
  EXPECT_NE(rs_->master_id(), 0u);
}

TEST_F(ReplicaSetTest, RecoveredReplicaResyncsFromStream) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  rs_->CrashReplica(2);
  Put(0, 1, "a", int64_t{2});
  clock_.Advance(Seconds(30));
  rs_->RecoverReplica(2);
  EXPECT_EQ(ValueAt(2, 1, "a"), "2");
  EXPECT_EQ(rs_->applied_seq(2), 2u);
}

TEST_F(ReplicaSetTest, FailoverFailsWhenNoSurvivor) {
  rs_->CrashReplica(0);
  rs_->CrashReplica(1);
  rs_->CrashReplica(2);
  auto report = rs_->FailOver();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable());
}

TEST_F(ReplicaSetTest, AsyncShipDelayWidensLossWindow) {
  ReplicaSetConfig cfg;
  cfg.async_ship_delay = Millis(10);
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();  // Seq 1 everywhere.
  // Two commits 2ms apart, crash 5ms after the second: both are still in
  // the 10ms shipper batch and die with the master.
  Put(0, 1, "a", int64_t{2});
  clock_.Advance(Millis(2));
  Put(0, 1, "a", int64_t{3});
  clock_.Advance(Millis(5));
  rs_->CrashReplica(0);
  clock_.Advance(Seconds(10));
  auto report = rs_->FailOver();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->lost_transactions, 2);
  ReadResult r = rs_->ReadAttribute(1, 1, "a", ReadPreference::kMasterOnly);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(ValueToString(*r.value), "1");
}

TEST_F(ReplicaSetTest, ShippedEntriesSurviveTheCrash) {
  ReplicaSetConfig cfg;
  cfg.async_ship_delay = Millis(10);
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  // Wait past ship delay + flight time before the crash: the entry left.
  clock_.Advance(Millis(30));
  rs_->CrashReplica(0);
  clock_.Advance(Seconds(10));
  auto report = rs_->FailOver();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->lost_transactions, 0);
}

// ---------------------------------------------------------------------------
// Sync modes (§5 durability tuning)
// ---------------------------------------------------------------------------

TEST_F(ReplicaSetTest, DualSequenceAppliesSynchronouslyToOneSlave) {
  ReplicaSetConfig cfg;
  cfg.sync_mode = SyncMode::kDualSequence;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  WriteResult w = Put(0, 1, "a", int64_t{1});
  ASSERT_TRUE(w.status.ok());
  EXPECT_FALSE(w.degraded);
  // First slave already has the entry without any clock advance.
  EXPECT_EQ(ValueAt(1, 1, "a"), "1");
  // Commit latency grew by a backbone round trip.
  EXPECT_GT(w.latency, Millis(30));
}

TEST_F(ReplicaSetTest, DualSequenceDegradesWhenNoSlaveReachable) {
  ReplicaSetConfig cfg;
  cfg.sync_mode = SyncMode::kDualSequence;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  network_->partitions().IsolateSite(0, 3, 0, Seconds(100));
  WriteResult w = Put(0, 1, "a", int64_t{1});
  // §5: "leaving just one of the replicas updated is acceptable".
  ASSERT_TRUE(w.status.ok());
  EXPECT_TRUE(w.degraded);
  EXPECT_EQ(rs_->degraded_commits(), 1);
}

TEST_F(ReplicaSetTest, DualSequenceSurvivesMasterCrashWithoutLoss) {
  ReplicaSetConfig cfg;
  cfg.sync_mode = SyncMode::kDualSequence;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  Put(0, 1, "a", int64_t{2});
  rs_->CrashReplica(0);
  clock_.Advance(Seconds(10));
  auto report = rs_->FailOver();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->lost_transactions, 0);
}

TEST_F(ReplicaSetTest, QuorumRequiresMajority) {
  ReplicaSetConfig cfg;
  cfg.sync_mode = SyncMode::kQuorum;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  WriteResult ok = Put(0, 1, "a", int64_t{1});
  ASSERT_TRUE(ok.status.ok());
  // Isolate the master from both slaves: majority (2 of 3) unreachable.
  network_->partitions().IsolateSite(0, 3, clock_.Now(),
                                     clock_.Now() + Seconds(100));
  WriteResult rejected = Put(0, 1, "a", int64_t{2});
  EXPECT_TRUE(rejected.status.IsUnavailable());
  // Nothing was committed: master value unchanged.
  EXPECT_EQ(ValueAt(0, 1, "a"), "1");
}

TEST_F(ReplicaSetTest, QuorumToleratesMinorityLoss) {
  ReplicaSetConfig cfg;
  cfg.sync_mode = SyncMode::kQuorum;
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  network_->partitions().CutLink(0, 2, 0, Seconds(100));  // One slave away.
  WriteResult w = Put(0, 1, "a", int64_t{1});
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(ValueAt(1, 1, "a"), "1");  // Ack slave has it.
}

/// Latency ordering property across sync modes: ASYNC < DUAL_SEQ <= QUORUM
/// for a single write from the master's site.
TEST_F(ReplicaSetTest, SyncModeLatencyOrdering) {
  MicroDuration lat[3];
  SyncMode modes[3] = {SyncMode::kAsync, SyncMode::kDualSequence,
                       SyncMode::kQuorum};
  for (int i = 0; i < 3; ++i) {
    ReplicaSetConfig cfg;
    cfg.sync_mode = modes[i];
    Build(cfg);
    clock_.AdvanceTo(Seconds(1));
    WriteResult w = Put(0, 1, "a", int64_t{1});
    ASSERT_TRUE(w.status.ok());
    lat[i] = w.latency;
  }
  EXPECT_LT(lat[0], lat[1]);
  EXPECT_LE(lat[1], lat[2]);
}

// ---------------------------------------------------------------------------
// Multi-master (AP) mode and consistency restoration (§5)
// ---------------------------------------------------------------------------

class MultiMasterTest : public ReplicaSetTest {
 protected:
  void SetUp() override {
    ReplicaSetConfig cfg;
    cfg.partition_mode = PartitionMode::kPreferAvailability;
    cfg.merge_policy = MergePolicy::kFieldMergeLww;
    Build(cfg);
  }
};

TEST_F(MultiMasterTest, ApModeAcceptsWritesOnMinoritySide) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(60));
  clock_.Advance(Seconds(5));
  WriteResult w = Put(2, 1, "b", int64_t{9});
  ASSERT_TRUE(w.status.ok());
  EXPECT_TRUE(w.diverged);
  EXPECT_EQ(w.served_by, 2u);
  EXPECT_TRUE(rs_->HasDivergence());
  EXPECT_EQ(rs_->diverged_writes(), 1);
  // Locally visible on the divergent side.
  EXPECT_EQ(ValueAt(2, 1, "b"), "9");
  // Not visible on the master side.
  EXPECT_EQ(ValueAt(0, 1, "b"), "<noattr>");
}

TEST_F(MultiMasterTest, RestorationMergesNonConflictingWrites) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "a", int64_t{1});
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(5));
  Put(2, 1, "b", int64_t{9});       // Divergent, different attribute.
  Put(0, 1, "c", int64_t{7});       // Majority side, different attribute.
  clock_.Advance(Seconds(60));      // Heal.
  RestorationReport rep = rs_->RestoreConsistency();
  EXPECT_EQ(rep.divergent_entries, 1);
  EXPECT_EQ(rep.applied_ops, 1);
  EXPECT_EQ(rep.conflicting_ops, 0);
  // All replicas converge to the union.
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueAt(i, 1, "a"), "1") << i;
    EXPECT_EQ(ValueAt(i, 1, "b"), "9") << i;
    EXPECT_EQ(ValueAt(i, 1, "c"), "7") << i;
  }
  EXPECT_FALSE(rs_->HasDivergence());
}

TEST_F(MultiMasterTest, LwwResolvesConflictingAttribute) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "cfu", std::string("+1111"));
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(2));
  Put(0, 1, "cfu", std::string("+2222"));  // Majority write at t+2.
  clock_.Advance(Seconds(3));
  Put(2, 1, "cfu", std::string("+3333"));  // Divergent write at t+5 (later).
  clock_.Advance(Seconds(60));
  RestorationReport rep = rs_->RestoreConsistency();
  EXPECT_EQ(rep.conflicting_ops, 1);
  EXPECT_EQ(rep.applied_ops, 1);  // Divergent one wins on timestamp.
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueAt(i, 1, "cfu"), "+3333") << i;
  }
}

TEST_F(MultiMasterTest, LwwKeepsMajorityWriteWhenNewer) {
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "cfu", std::string("+1111"));
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(2));
  Put(2, 1, "cfu", std::string("+3333"));  // Divergent write at t+2.
  clock_.Advance(Seconds(3));
  Put(0, 1, "cfu", std::string("+2222"));  // Majority write at t+5 (later).
  clock_.Advance(Seconds(60));
  RestorationReport rep = rs_->RestoreConsistency();
  EXPECT_EQ(rep.conflicting_ops, 1);
  EXPECT_EQ(rep.dropped_ops, 1);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueAt(i, 1, "cfu"), "+2222") << i;
  }
}

TEST_F(MultiMasterTest, PreferMasterPolicyFlagsManualConflicts) {
  rs_->mutable_config().merge_policy = MergePolicy::kPreferMaster;
  clock_.AdvanceTo(Seconds(1));
  Put(0, 1, "cfu", std::string("+1111"));
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(2));
  Put(0, 1, "cfu", std::string("+2222"));
  clock_.Advance(Seconds(1));
  Put(2, 1, "cfu", std::string("+3333"));
  clock_.Advance(Seconds(60));
  RestorationReport rep = rs_->RestoreConsistency();
  EXPECT_EQ(rep.manual_ops, 1);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueAt(i, 1, "cfu"), "+2222") << i;  // Master retained.
  }
}

TEST_F(MultiMasterTest, SameValueBothSidesIsNotAConflict) {
  clock_.AdvanceTo(Seconds(1));
  rs_->CatchUpAll();
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(2));
  Put(0, 1, "flag", true);
  clock_.Advance(Seconds(1));
  Put(2, 1, "flag", true);
  clock_.Advance(Seconds(60));
  RestorationReport rep = rs_->RestoreConsistency();
  EXPECT_EQ(rep.conflicting_ops, 0);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ValueAt(i, 1, "flag"), "true") << i;
  }
}

// Property: after any AP-mode partition episode + restoration + full sync,
// every up replica's store is identical (convergence), for every policy.
class MergePolicyConvergence
    : public ReplicaSetTest,
      public ::testing::WithParamInterface<MergePolicy> {};

TEST_P(MergePolicyConvergence, AllReplicasConvergeAfterRestoration) {
  ReplicaSetConfig cfg;
  cfg.partition_mode = PartitionMode::kPreferAvailability;
  cfg.merge_policy = GetParam();
  Build(cfg);
  clock_.AdvanceTo(Seconds(1));
  // Seed records.
  for (int k = 1; k <= 5; ++k) {
    Put(0, k, "v", static_cast<int64_t>(k));
    clock_.Advance(Millis(1));
  }
  clock_.Advance(Seconds(1));
  rs_->CatchUpAll();
  // Partition site 2 and write on both sides, overlapping keys and attrs.
  network_->partitions().IsolateSite(2, 3, clock_.Now(),
                                     clock_.Now() + Seconds(30));
  clock_.Advance(Seconds(1));
  for (int k = 1; k <= 5; ++k) {
    Put(0, k, "v", static_cast<int64_t>(100 + k));
    clock_.Advance(Millis(7));
    Put(2, k, "v", static_cast<int64_t>(200 + k));
    Put(2, k, "w", static_cast<int64_t>(300 + k));
    clock_.Advance(Millis(7));
  }
  clock_.Advance(Seconds(60));  // Heal.
  rs_->RestoreConsistency();
  rs_->ForceSyncAll();
  for (int k = 1; k <= 5; ++k) {
    std::string v0 = ValueAt(0, k, "v");
    std::string w0 = ValueAt(0, k, "w");
    for (uint32_t i = 1; i < 3; ++i) {
      EXPECT_EQ(ValueAt(i, k, "v"), v0) << "key " << k << " replica " << i;
      EXPECT_EQ(ValueAt(i, k, "w"), w0) << "key " << k << " replica " << i;
    }
  }
  EXPECT_FALSE(rs_->HasDivergence());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MergePolicyConvergence,
                         ::testing::Values(MergePolicy::kFieldMergeLww,
                                           MergePolicy::kLastWriterWinsRecord,
                                           MergePolicy::kPreferMaster));

// Property: in CP mode, for any partition placement, a write either succeeds
// at the master or fails — no replica ever applies entries out of order.
class OrderInvariant : public ReplicaSetTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(OrderInvariant, AppliedPrefixNeverSkipsEntries) {
  Build(ReplicaSetConfig());
  clock_.AdvanceTo(Seconds(1));
  int scenario = GetParam();
  // Cut a different link per scenario, mid-stream.
  for (int i = 1; i <= 30; ++i) {
    if (i == 10) {
      sim::SiteId a = scenario % 3;
      sim::SiteId b = (scenario + 1) % 3;
      network_->partitions().CutLink(a, b, clock_.Now(),
                                     clock_.Now() + Seconds(5));
    }
    Put(0, 1, "n", static_cast<int64_t>(i));
    clock_.Advance(Millis(500));
    rs_->CatchUpAll();
    // Invariant: each replica's applied seq content matches a log prefix.
    for (uint32_t rid = 1; rid < 3; ++rid) {
      storage::CommitSeq applied = rs_->applied_seq(rid);
      if (applied == 0) continue;
      const Record* rec = rs_->replica_store(rid).Find(1);
      ASSERT_NE(rec, nullptr);
      // Value must equal exactly the value in log entry `applied`.
      auto v = rec->Get("n");
      ASSERT_TRUE(v.has_value());
      const auto& entry = rs_->log().At(applied);
      EXPECT_EQ(ValueToString(*v),
                ValueToString(entry.ops.back().attribute.value));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, OrderInvariant, ::testing::Range(0, 6));

}  // namespace
}  // namespace udr::replication
