// Tests for src/workload: testbed construction and the traffic-mix runner,
// including the paper's partition-availability asymmetry (FE vs PS).

#include <gtest/gtest.h>

#include "workload/testbed.h"
#include "workload/traffic.h"

namespace udr::workload {
namespace {

TEST(TestbedTest, BuildsRequestedDeployment) {
  TestbedOptions o;
  o.sites = 4;
  o.udr.se_per_cluster = 3;
  Testbed bed(o);
  EXPECT_EQ(bed.udr().cluster_count(), 4u);
  EXPECT_EQ(bed.udr().TotalStorageElements(), 12);
  EXPECT_EQ(bed.udr().partition_count(), 12u);
}

TEST(TestbedTest, PreProvisionsPopulation) {
  TestbedOptions o;
  o.sites = 2;
  o.subscribers = 100;
  Testbed bed(o);
  EXPECT_EQ(bed.udr().SubscriberCount(), 100);
  EXPECT_TRUE(bed.udr()
                  .AuthoritativeLookup(bed.factory().Make(50).ImsiId())
                  .ok());
}

TEST(TestbedTest, PinningPlacesSubscribersAtHomeSites) {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 30;
  o.pin_home_sites = true;
  Testbed bed(o);
  for (uint64_t i = 0; i < 30; ++i) {
    auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(i).ImsiId());
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(bed.udr().partition(loc->partition)->master_site(),
              bed.HomeSiteOf(i))
        << "subscriber " << i;
  }
}

TEST(TestbedTest, DeterministicAcrossInstances) {
  TestbedOptions o;
  o.sites = 2;
  o.subscribers = 10;
  Testbed a(o), b(o);
  EXPECT_EQ(a.factory().Make(3).imsi, b.factory().Make(3).imsi);
  auto la = a.udr().AuthoritativeLookup(a.factory().Make(3).ImsiId());
  auto lb = b.udr().AuthoritativeLookup(b.factory().Make(3).ImsiId());
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(la->partition, lb->partition);
}

TEST(TrafficTest, HealthyNetworkGivesFullAvailability) {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 200;
  o.pin_home_sites = true;
  Testbed bed(o);
  TrafficOptions t;
  t.duration = Seconds(20);
  t.fe_rate_per_sec = 100;
  t.ps_rate_per_sec = 5;
  t.subscriber_count = 200;
  TrafficReport rep = RunTraffic(bed, t);
  EXPECT_GT(rep.fe_read.attempted, 1000);
  EXPECT_GT(rep.ps.attempted, 50);
  EXPECT_DOUBLE_EQ(rep.fe_read.availability(), 1.0);
  EXPECT_DOUBLE_EQ(rep.fe_write.availability(), 1.0);
  EXPECT_DOUBLE_EQ(rep.ps.availability(), 1.0);
  // FE procedures are mostly reads (the §4.1 premise).
  EXPECT_GT(rep.fe_read.attempted, rep.fe_write.attempted);
}

TEST(TrafficTest, PartitionHurtsPsMoreThanFeReads) {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 200;
  o.pin_home_sites = true;
  Testbed bed(o);
  // PS at site 0; cut site 0 from sites 1-2 for the middle of the run.
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0 + Seconds(5),
                                        t0 + Seconds(15));
  TrafficOptions t;
  t.duration = Seconds(20);
  t.fe_rate_per_sec = 100;
  t.ps_rate_per_sec = 20;
  t.subscriber_count = 200;
  TrafficReport rep = RunTraffic(bed, t);
  // FE reads: nearly always served (local replicas).
  EXPECT_GT(rep.fe_read.availability(), 0.95);
  // PS: roughly 2/3 of targets have masters on the far side during 50% of
  // the run => availability clearly below FE reads.
  EXPECT_LT(rep.ps.availability(), 0.85);
  EXPECT_LT(rep.ps.availability(), rep.fe_read.availability());
  // Some writes from FEs also fail (UpdateLocation to remote masters).
  EXPECT_LT(rep.fe_write.availability(), 1.0);
}

TEST(TrafficTest, StaleReadsAppearWithSlaveReads) {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 100;
  o.pin_home_sites = true;
  o.udr.fe_slave_reads = true;
  Testbed bed(o);
  TrafficOptions t;
  t.duration = Seconds(10);
  t.fe_rate_per_sec = 200;
  t.ps_rate_per_sec = 50;   // Heavy write rate to create lag windows.
  t.roaming_fraction = 0.5; // Many reads served away from the master.
  t.subscriber_count = 100;
  TrafficReport rep = RunTraffic(bed, t);
  ClassStats fe = rep.FeAll();
  EXPECT_GT(fe.stale_procedures, 0);  // PA/EL: staleness is the price.
}

TEST(TrafficTest, MasterOnlyReadsNeverStale) {
  TestbedOptions o;
  o.sites = 3;
  o.subscribers = 100;
  o.pin_home_sites = true;
  o.udr.fe_slave_reads = false;  // Force master reads for everything.
  Testbed bed(o);
  TrafficOptions t;
  t.duration = Seconds(10);
  t.fe_rate_per_sec = 200;
  t.ps_rate_per_sec = 50;
  t.roaming_fraction = 0.5;
  t.subscriber_count = 100;
  TrafficReport rep = RunTraffic(bed, t);
  EXPECT_EQ(rep.FeAll().stale_procedures, 0);
  EXPECT_EQ(rep.ps.stale_procedures, 0);
}

TEST(TrafficTest, DeterministicGivenSeed) {
  for (int run = 0; run < 2; ++run) {
    TestbedOptions o;
    o.sites = 2;
    o.subscribers = 50;
    static int64_t first_ok = -1;
    Testbed bed(o);
    TrafficOptions t;
    t.duration = Seconds(5);
    t.subscriber_count = 50;
    t.seed = 99;
    TrafficReport rep = RunTraffic(bed, t);
    if (first_ok < 0) {
      first_ok = rep.FeAll().ok;
    } else {
      EXPECT_EQ(rep.FeAll().ok, first_ok);
    }
  }
}

}  // namespace
}  // namespace udr::workload
