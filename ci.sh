#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest), a Release (-O2) build that
# smoke-runs every benchmark (1 timing iteration + the self-checking tables,
# so benches can't silently rot), an ASan/UBSan build of the test suite, and
# a TSan build that runs the sharded-execution tests (exec_test).
# Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== Release (-O2): configure + build benches =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"

echo "== Release: benchmark smoke (1 iteration each) =="
# The loop globs every bench target, but the self-checking ones the
# acceptance gates ride on must exist (a glob would silently skip a bench
# that fell out of the build).
for required in bench_batch_pipeline bench_coalescer bench_heat_tier \
                bench_migration bench_record_layout bench_scenarios \
                bench_sharded_scale; do
  if [[ ! -x "build-release/bench/${required}" ]]; then
    echo "SMOKE FAILED: required benchmark ${required} was not built"
    exit 1
  fi
done
# The self-checking benches emit machine-readable result files for the bench
# trajectory; point them into the build tree and verify they appear.
export UDR_BENCH_JSON_PATH="${PWD}/build-release/BENCH_migration.json"
export UDR_BENCH_RECORD_LAYOUT_JSON="${PWD}/build-release/BENCH_record_layout.json"
export UDR_BENCH_SHARDED_SCALE_JSON="${PWD}/build-release/BENCH_sharded_scale.json"
export UDR_BENCH_HEAT_TIER_JSON="${PWD}/build-release/BENCH_heat_tier.json"
export UDR_BENCH_SCENARIOS_JSON="${PWD}/build-release/BENCH_scenarios.json"
rm -f "${UDR_BENCH_JSON_PATH}" "${UDR_BENCH_RECORD_LAYOUT_JSON}" \
      "${UDR_BENCH_SHARDED_SCALE_JSON}" "${UDR_BENCH_HEAT_TIER_JSON}" \
      "${UDR_BENCH_SCENARIOS_JSON}"
bench_failed=0
for bench in build-release/bench/bench_*; do
  [[ -x "${bench}" ]] || continue
  echo "-- ${bench}"
  out="$("${bench}" --benchmark_min_time=0 2>&1)" || {
    echo "${out}"
    echo "SMOKE FAILED: ${bench} exited non-zero"
    bench_failed=1
    continue
  }
  # The tables are self-checking: any FAIL row is a regression even when the
  # binary exits 0.
  if grep -q " FAIL " <<< "${out}"; then
    echo "${out}" | grep -B2 -A2 " FAIL "
    echo "SMOKE FAILED: ${bench} printed a FAIL row"
    bench_failed=1
  fi
done
if [[ "${bench_failed}" != 0 ]]; then
  echo "== benchmark smoke: FAILED =="
  exit 1
fi
for json in "${UDR_BENCH_JSON_PATH}" "${UDR_BENCH_RECORD_LAYOUT_JSON}" \
            "${UDR_BENCH_SHARDED_SCALE_JSON}" "${UDR_BENCH_HEAT_TIER_JSON}" \
            "${UDR_BENCH_SCENARIOS_JSON}"; do
  if [[ ! -s "${json}" ]]; then
    echo "SMOKE FAILED: benchmark did not emit ${json}"
    exit 1
  fi
done
echo "== benchmark smoke: all green (bench JSON files emitted) =="

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== ASan/UBSan: configure + build =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DUDR_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"

echo "== ASan/UBSan: ctest (fast subset: -LE slow) =="
# Covers the whole suite, in particular the batched data path + coalescing
# window tests (batch_test, coalescer_test) whose enqueue/demux paths move
# the most state around. The full standard scenarios (LABELS slow) run in
# the un-instrumented tier-1 stage; the scenario smoke subset stays in here.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -LE slow

echo "== TSan: configure + build =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUDR_TSAN=ON
cmake --build build-tsan -j "${JOBS}"

echo "== TSan: sharded execution tests =="
# The multi-threaded surface: SPSC handoff queues, the lock-free AttrPool
# read path, per-shard metrics merging, and the shard runtime itself.
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan -R exec_test --output-on-failure

echo "== ci.sh: all green =="
