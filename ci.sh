#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest) followed by an ASan/UBSan
# build of the test suite. Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== ASan/UBSan: configure + build =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DUDR_SANITIZE=ON
cmake --build build-asan -j "${JOBS}"

echo "== ASan/UBSan: ctest =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== ci.sh: all green =="
