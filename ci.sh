#!/usr/bin/env bash
# CI entry point. Stages:
#   invariant-lint     repo invariant linter (tools/lint_invariants.py)
#   tier1-build/ctest  RelWithDebInfo build + full test suite (includes the
#                      UDR_DEADLOCK_CHECK lock-order checker + its death test)
#   thread-safety      clang -Wthread-safety -Werror build of the whole tree
#                      (the annotated locking layer's compile-time gate)
#   clang-tidy         bugprone/concurrency/performance checks over src/
#   bench-smoke        Release (-O2) build, every benchmark 1 iteration, all
#                      self-checking tables must pass, bench JSONs must be
#                      emitted, tracked top-level BENCH_*.json refreshed; the
#                      obs-overhead bench must also emit a Perfetto trace that
#                      parses as JSON and covers the major data-path stages
#   asan-ubsan         Debug+ASan/UBSan ctest (-LE slow)
#   tsan               ThreadSanitizer over the concurrent surface: exec_test,
#                      obs_test, scenario_smoke, heat_test, migration_test
#
# Usage: ./ci.sh [--skip-sanitizers] [--skip-clang]
#   --skip-clang       skip the two clang-only stages (gcc-only hosts). They
#                      are also auto-skipped, loudly, when clang/clang-tidy
#                      are not installed — every other gate still runs.
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || echo 4)"

SKIP_SANITIZERS=0
SKIP_CLANG=0
for arg in "$@"; do
  case "${arg}" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --skip-clang) SKIP_CLANG=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

# ---- per-stage summary ------------------------------------------------------
# Every stage reports one line at exit so a failed run is attributable at a
# glance. A stage in state "RUN " at exit time is the one that failed.
STAGE_NAMES=()
STAGE_STATES=()
CURRENT_STAGE=""
begin_stage() {
  CURRENT_STAGE="$1"
  STAGE_NAMES+=("$1")
  STAGE_STATES+=("FAIL")  # Overwritten by pass_stage/skip_stage.
  echo ""
  echo "== ${1} =="
}
mark_stage() {  # $1 = state
  local i=$((${#STAGE_STATES[@]} - 1))
  STAGE_STATES[i]="$1"
}
pass_stage() { mark_stage "PASS"; }
skip_stage() { mark_stage "SKIP"; echo "-- skipped: $1"; }
print_summary() {
  echo ""
  echo "== ci.sh stage summary =="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-18s %s\n' "${STAGE_NAMES[i]}" "${STAGE_STATES[i]}"
  done
}
trap print_summary EXIT

# Every bench target the smoke stage requires to exist (the glob below runs
# whatever is built, but a bench silently falling out of the build is a CI
# failure — and tools/lint_invariants.py cross-checks this list against
# bench/bench_*.cc, so adding a bench without listing it here fails the lint).
REQUIRED_BENCHES=(
  bench_ablation
  bench_batch_pipeline
  bench_capacity
  bench_coalescer
  bench_fr_tradeoff
  bench_frash_summary
  bench_heat_tier
  bench_latency
  bench_location_stage
  bench_migration
  bench_multimaster
  bench_obs_overhead
  bench_partition_availability
  bench_pre_udc
  bench_ps_backlog
  bench_record_layout
  bench_replication_modes
  bench_scaleout
  bench_scenarios
  bench_selective_placement
  bench_sharded_scale
  bench_stale_reads
)

# ---- invariant-lint ---------------------------------------------------------
begin_stage "invariant-lint"
python3 tools/lint_invariants.py .
pass_stage

# ---- tier-1 -----------------------------------------------------------------
begin_stage "tier1-build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"
pass_stage

begin_stage "tier1-ctest"
ctest --test-dir build --output-on-failure -j "${JOBS}"
pass_stage

# ---- clang gates ------------------------------------------------------------
CLANGXX="$(command -v clang++ || true)"
CLANG_TIDY="$(command -v clang-tidy || true)"

begin_stage "thread-safety"
if [[ "${SKIP_CLANG}" == 1 ]]; then
  skip_stage "--skip-clang"
elif [[ -z "${CLANGXX}" ]]; then
  skip_stage "clang++ not installed (install clang or pass --skip-clang to silence)"
else
  # Whole tree under clang with the thread-safety analysis promoted to
  # errors: any GUARDED_BY/REQUIRES/ACQUIRE violation fails the build.
  cmake -B build-clang-tsafe -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER="${CLANGXX}" -DUDR_WTHREAD_SAFETY=ON
  cmake --build build-clang-tsafe -j "${JOBS}"
  pass_stage
fi

begin_stage "clang-tidy"
if [[ "${SKIP_CLANG}" == 1 ]]; then
  skip_stage "--skip-clang"
elif [[ -z "${CLANG_TIDY}" ]]; then
  skip_stage "clang-tidy not installed (install clang-tidy or pass --skip-clang to silence)"
else
  # Use the clang build's compile_commands.json when present (exact flags),
  # else the tier-1 build's (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
  TIDY_BUILD="build-clang-tsafe"
  [[ -f "${TIDY_BUILD}/compile_commands.json" ]] || TIDY_BUILD="build"
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  "${CLANG_TIDY}" -p "${TIDY_BUILD}" --quiet "${TIDY_SOURCES[@]}"
  pass_stage
fi

# ---- bench smoke (Release) --------------------------------------------------
begin_stage "bench-build"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
pass_stage

begin_stage "bench-smoke"
for required in "${REQUIRED_BENCHES[@]}"; do
  if [[ ! -x "build-release/bench/${required}" ]]; then
    echo "SMOKE FAILED: required benchmark ${required} was not built"
    exit 1
  fi
done
# The self-checking benches emit machine-readable result files for the bench
# trajectory; point them into the build tree and verify they appear.
export UDR_BENCH_JSON_PATH="${PWD}/build-release/BENCH_migration.json"
export UDR_BENCH_RECORD_LAYOUT_JSON="${PWD}/build-release/BENCH_record_layout.json"
export UDR_BENCH_SHARDED_SCALE_JSON="${PWD}/build-release/BENCH_sharded_scale.json"
export UDR_BENCH_HEAT_TIER_JSON="${PWD}/build-release/BENCH_heat_tier.json"
export UDR_BENCH_SCENARIOS_JSON="${PWD}/build-release/BENCH_scenarios.json"
export UDR_BENCH_OBS_OVERHEAD_JSON="${PWD}/build-release/BENCH_obs_overhead.json"
export UDR_OBS_TRACE_JSON="${PWD}/build-release/obs_trace.json"
rm -f "${UDR_BENCH_JSON_PATH}" "${UDR_BENCH_RECORD_LAYOUT_JSON}" \
      "${UDR_BENCH_SHARDED_SCALE_JSON}" "${UDR_BENCH_HEAT_TIER_JSON}" \
      "${UDR_BENCH_SCENARIOS_JSON}" "${UDR_BENCH_OBS_OVERHEAD_JSON}" \
      "${UDR_OBS_TRACE_JSON}"
bench_failed=0
for bench in build-release/bench/bench_*; do
  [[ -x "${bench}" ]] || continue
  echo "-- ${bench}"
  out="$("${bench}" --benchmark_min_time=0 2>&1)" || {
    echo "${out}"
    echo "SMOKE FAILED: ${bench} exited non-zero"
    bench_failed=1
    continue
  }
  # The tables are self-checking: any FAIL row is a regression even when the
  # binary exits 0.
  if grep -q " FAIL " <<< "${out}"; then
    echo "${out}" | grep -B2 -A2 " FAIL "
    echo "SMOKE FAILED: ${bench} printed a FAIL row"
    bench_failed=1
  fi
done
if [[ "${bench_failed}" != 0 ]]; then
  echo "== benchmark smoke: FAILED =="
  exit 1
fi
for json in "${UDR_BENCH_JSON_PATH}" "${UDR_BENCH_RECORD_LAYOUT_JSON}" \
            "${UDR_BENCH_SHARDED_SCALE_JSON}" "${UDR_BENCH_HEAT_TIER_JSON}" \
            "${UDR_BENCH_SCENARIOS_JSON}" "${UDR_BENCH_OBS_OVERHEAD_JSON}"; do
  if [[ ! -s "${json}" ]]; then
    echo "SMOKE FAILED: benchmark did not emit ${json}"
    exit 1
  fi
done
# The exported trace must be loadable by Perfetto (valid Chrome trace JSON)
# and cover the major data-path stages end to end.
python3 - "${UDR_OBS_TRACE_JSON}" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no traceEvents"
names = {e.get("name") for e in events}
required = {"event", "route.batch", "resolve", "dispatch", "replica.write",
            "coalesce.park", "coalesce.flush", "migration.chunk"}
missing = required - names
assert not missing, f"trace is missing stages: {sorted(missing)}"
print(f"-- obs trace OK: {len(events)} events, "
      f"{len(names)} distinct span names")
PYEOF
# Refresh the tracked top-level copies from the fresh run so they can never
# drift stale relative to the code (git diff surfaces the delta for review).
for tracked in BENCH_*.json; do
  [[ -f "${tracked}" ]] || continue
  if [[ -s "build-release/${tracked}" ]]; then
    if ! cmp -s "build-release/${tracked}" "${tracked}"; then
      echo "-- refreshing tracked ${tracked} from this run"
      cp "build-release/${tracked}" "${tracked}"
    fi
  fi
done
echo "== benchmark smoke: all green (bench JSON files emitted) =="
pass_stage

# ---- sanitizers -------------------------------------------------------------
begin_stage "asan-ubsan"
if [[ "${SKIP_SANITIZERS}" == 1 ]]; then
  skip_stage "--skip-sanitizers"
else
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DUDR_SANITIZE=ON
  cmake --build build-asan -j "${JOBS}"
  # Fast subset (-LE slow): covers the whole suite, in particular the batched
  # data path + coalescing window tests (batch_test, coalescer_test) whose
  # enqueue/demux paths move the most state around. The full standard
  # scenarios (LABELS slow) run in the un-instrumented tier-1 stage.
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -LE slow
  pass_stage
fi

begin_stage "tsan"
if [[ "${SKIP_SANITIZERS}" == 1 ]]; then
  skip_stage "--skip-sanitizers"
else
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DUDR_TSAN=ON
  cmake --build build-tsan -j "${JOBS}"
  # The dynamic checker runs over every layer the thread-safety annotations
  # describe: the sharded execution mode (exec_test: SPSC handoff, lock-free
  # AttrPool reads, metrics merging), the per-shard tracer handoff/merge
  # (obs_test), plus the scenario/heat/migration layers whose structures now
  # carry annotated guards.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'exec_test|obs_test|scenario_smoke|heat_test|migration_test' -LE slow
  pass_stage
fi

echo ""
echo "== ci.sh: all green =="
