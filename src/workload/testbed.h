// Testbed: standard multi-site UDR deployment used by examples, tests and
// the benchmark harness. One call builds the topology, network, UDR NF with
// one blade cluster per site, commissions partitions and (optionally)
// pre-provisions a subscriber population.

#ifndef UDR_WORKLOAD_TESTBED_H_
#define UDR_WORKLOAD_TESTBED_H_

#include <memory>
#include <optional>

#include "sim/network.h"
#include "telecom/subscriber.h"
#include "udr/udr_nf.h"

namespace udr::workload {

/// Testbed construction parameters.
struct TestbedOptions {
  uint32_t sites = 3;
  uint64_t seed = 42;
  sim::LatencyConfig latency;
  udrnf::UdrConfig udr;
  /// Subscribers to create up-front (0 = none).
  int64_t subscribers = 0;
  /// Selective placement: subscriber i is pinned to site (i % sites).
  bool pin_home_sites = false;
};

/// A fully deployed simulated UDR network.
class Testbed {
 public:
  explicit Testbed(TestbedOptions opts);

  sim::SimClock& clock() { return clock_; }
  sim::Network& network() { return *network_; }
  udrnf::UdrNf& udr() { return *udr_; }
  const telecom::SubscriberFactory& factory() const { return factory_; }
  const TestbedOptions& options() const { return opts_; }

  /// Home site of subscriber `index` under the pinning policy (site 0 when
  /// pinning is disabled).
  sim::SiteId HomeSiteOf(uint64_t index) const {
    return opts_.pin_home_sites
               ? static_cast<sim::SiteId>(index % opts_.sites)
               : 0;
  }

  /// Bulk-creates subscribers [first, first+count) directly through the UDR
  /// admin API (no pacing; used to reach a target population quickly).
  /// Returns the number actually created.
  int64_t ProvisionDirect(uint64_t first, int64_t count);

  /// Scale-out: deploys a new blade cluster at `site` and rebalances primary
  /// copies onto its storage elements (per-SE primary-count spread <= 1, no
  /// acknowledged write lost). Returns the migration report.
  StatusOr<routing::RebalanceReport> ScaleOut(sim::SiteId site);

 private:
  TestbedOptions opts_;
  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<udrnf::UdrNf> udr_;
  telecom::SubscriberFactory factory_;
};

}  // namespace udr::workload

#endif  // UDR_WORKLOAD_TESTBED_H_
