// Driver for the sharded multi-threaded execution mode: splits the
// subscriber space over TrafficOptions::num_shards shards (src/exec/), feeds
// each through its SPSC handoff ring from one producer thread, then verifies
// per-key order end to end — every subscriber's master copy must hold the
// LAST sequence number the driver wrote to it.

#ifndef UDR_WORKLOAD_SHARDED_TRAFFIC_H_
#define UDR_WORKLOAD_SHARDED_TRAFFIC_H_

#include <cstdint>

#include "exec/shard_runtime.h"
#include "workload/traffic.h"

namespace udr::workload {

/// Outcome of one sharded run.
struct ShardedTrafficReport {
  exec::ShardRuntimeReport runtime;
  /// Subscribers whose final master-copy "shard-seq" was checked against the
  /// driver's last written sequence.
  int64_t verified_subscribers = 0;
  /// Checked subscribers whose stored sequence disagreed (must be 0: per-key
  /// order survived the handoff, the dispatch window and replication).
  int64_t seq_mismatches = 0;

  bool ok() const {
    return runtime.order_violations == 0 && seq_mismatches == 0 &&
           runtime.ops_failed == 0;
  }
};

/// Runs `opts.sharded_total_ops` operations over `opts.num_shards` shard
/// threads and verifies final per-subscriber state. Uses subscriber_count,
/// seed, num_shards and the sharded_* knobs of `opts`.
///
/// `slice_map` (optional) switches the slicer to partition-aligned mode:
/// shard slices follow that real routing::PartitionMap — a shard owns whole
/// partitions — which is how the scenario harness runs its storm sharded
/// against the same placement as its single-threaded data path. The map must
/// stay structurally unmutated for the duration of the run.
ShardedTrafficReport RunShardedTraffic(
    const TrafficOptions& opts,
    const routing::PartitionMap* slice_map = nullptr);

}  // namespace udr::workload

#endif  // UDR_WORKLOAD_SHARDED_TRAFFIC_H_
