// Traffic-mix runner: drives a deterministic blend of front-end network
// procedures and PS service-management operations against a Testbed while
// the network experiences whatever partition/crash schedule the scenario
// installed. Produces the per-class availability and latency statistics the
// paper reasons about (FE traffic is mostly reads and survives partitions;
// PS traffic is mostly writes and fails on the minority side — §4.1).

#ifndef UDR_WORKLOAD_TRAFFIC_H_
#define UDR_WORKLOAD_TRAFFIC_H_

#include <cstdint>

#include "common/histogram.h"
#include "common/time.h"
#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

namespace udr::workload {

/// Parameters of one traffic run.
struct TrafficOptions {
  MicroDuration duration = Seconds(60);
  double fe_rate_per_sec = 200.0;   ///< FE network procedures per second.
  double ps_rate_per_sec = 5.0;     ///< PS service-management ops per second.
  double ims_fraction = 0.15;       ///< Share of FE procedures that are IMS.
  double roaming_fraction = 0.05;   ///< FE procedures served away from home.
  uint64_t subscriber_count = 1000; ///< Population to draw subscribers from.
  /// Skew of the subscriber draw: 0 = uniform (the historical stream,
  /// byte-identical to before the knob existed); 0 < theta < 1 draws from a
  /// Zipf(theta) distribution over the population, rank 0 hottest — the
  /// YCSB-style skewed workload the heat tier is judged against.
  /// Deterministic given `seed`.
  double zipf_theta = 0.0;
  uint64_t seed = 7;
  sim::SiteId ps_site = 0;          ///< PS is co-located with this PoA.
  /// Ship each procedure's ops as ONE multi-op message through the batched
  /// data-path pipeline (FE procedures and PS read-modify-writes) instead of
  /// one northbound round trip per op.
  bool batched = false;
  /// Cross-event coalescing driver: > 1 issues this many concurrent FE
  /// signaling events per arrival tick, each enqueued into the PoA's
  /// dispatch window (FrontEnd deferred mode) instead of executing inline;
  /// the driver advances the clock to each window's deadline, pumps the
  /// flush and collects the demuxed per-event results. Only meaningful when
  /// the UDR deploys `coalesce_window_us > 0`; 1 = the inline drivers above.
  int concurrent_events = 1;
  /// Drive background migration concurrently with the traffic: the run loop
  /// wakes at the scheduler's chunk deadlines (NextMigrationDeadline) and
  /// pumps it, so throttled moves interleave with foreground procedures.
  /// Foreground procedures issued while a migration is in flight are
  /// additionally folded into TrafficReport::fe_during_migration and the
  /// `migration.foreground_latency_during` metrics histogram.
  bool pump_migration = false;
  /// Sharded multi-threaded execution mode (RunShardedTraffic, src/exec/):
  /// split the subscriber space over this many shards, each a complete
  /// data-path slice on its own worker thread behind an SPSC handoff ring.
  /// 1 = single shard (still threaded, for apples-to-apples scaling runs).
  int num_shards = 1;
  /// Total operations the sharded driver submits across all shards.
  int64_t sharded_total_ops = 20000;
  /// Fraction of sharded ops that are writes (seq-stamping modifies).
  double sharded_write_fraction = 0.3;
  /// Ops the driver accumulates per shard before handing off one batch.
  int sharded_batch_ops = 8;
};

/// Aggregated statistics for one traffic class.
struct ClassStats {
  int64_t attempted = 0;
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t ldap_ops = 0;
  int64_t stale_procedures = 0;
  Histogram latency;  ///< Procedure latency (µs), successful procedures only.

  double availability() const {
    return attempted == 0
               ? 1.0
               : static_cast<double>(ok) / static_cast<double>(attempted);
  }
  void Fold(const telecom::ProcedureResult& r) {
    ++attempted;
    ldap_ops += r.ldap_ops;
    if (r.any_stale) ++stale_procedures;
    if (r.ok()) {
      ++ok;
      latency.Record(r.latency);
    } else {
      ++failed;
    }
  }
  void Merge(const ClassStats& o) {
    attempted += o.attempted;
    ok += o.ok;
    failed += o.failed;
    ldap_ops += o.ldap_ops;
    stale_procedures += o.stale_procedures;
    latency.Merge(o.latency);
  }
};

/// Results of a traffic run, split by class.
struct TrafficReport {
  ClassStats fe_read;   ///< Read-only FE procedures.
  ClassStats fe_write;  ///< FE procedures containing writes.
  ClassStats ps;        ///< Provisioning-system operations.
  /// FE procedures that ran while a background migration was in flight
  /// (also counted in fe_read/fe_write) — the foreground-impact view the
  /// bandwidth model is judged by. Empty unless pump_migration drove one.
  ClassStats fe_during_migration;
  /// Queueing delay of deferred FE events (time parked in the PoA dispatch
  /// window, µs) — empty unless the concurrent-event driver ran.
  Histogram fe_queue_delay;

  ClassStats FeAll() const {
    ClassStats all = fe_read;
    all.Merge(fe_write);
    return all;
  }
};

/// Runs the mix against `bed` for `opts.duration`, advancing the testbed
/// clock. Subscribers must already be provisioned ([0, subscriber_count)).
TrafficReport RunTraffic(Testbed& bed, const TrafficOptions& opts);

}  // namespace udr::workload

#endif  // UDR_WORKLOAD_TRAFFIC_H_
