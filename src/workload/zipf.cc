#include "workload/zipf.h"

#include <cassert>
#include <cmath>

namespace udr::workload {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  assert(theta < 1.0 && "YCSB zipfian requires theta < 1");
  if (theta_ <= 0.0 || n_ == 1) {
    theta_ = 0.0;  // Uniform; Next() short-circuits to rng.Uniform.
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ <= 0.0) return rng.Uniform(n_);

  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t k = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

double ZipfGenerator::ProbabilityOfRank(uint64_t k) const {
  if (k >= n_) return 0.0;
  if (theta_ <= 0.0) return 1.0 / static_cast<double>(n_);
  return 1.0 / std::pow(static_cast<double>(k + 1), theta_) / zetan_;
}

}  // namespace udr::workload
