// Zipfian key-popularity generator (the YCSB construction: Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases"). Unlike the crude
// continuous-power-law approximation in Rng::Zipf, this samples the exact
// discrete Zipf(theta) distribution over [0, n): P(k) proportional to
// 1/(k+1)^theta, with rank 0 the most popular key.
//
// Determinism: the generator itself is pure state computed from (n, theta);
// all randomness comes from the caller's Rng, so a fixed seed reproduces the
// key sequence exactly. theta <= 0 degenerates to a literal rng.Uniform(n)
// call — byte-identical key streams for every pre-existing uniform workload.

#ifndef UDR_WORKLOAD_ZIPF_H_
#define UDR_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace udr::workload {

class ZipfGenerator {
 public:
  /// Precomputes the harmonic normalizer zeta(n, theta) — O(n) once, so the
  /// per-sample path is loop-free. `theta` is the skew (YCSB default 0.99;
  /// must be < 1 for this construction); values <= 0 mean uniform.
  ZipfGenerator(uint64_t n, double theta);

  /// Next key in [0, n). Skew falls on the low ranks: key 0 is hottest.
  uint64_t Next(Rng& rng);

  /// Exact probability of rank `k` under the discrete distribution (for
  /// shape tests and bench reporting).
  double ProbabilityOfRank(uint64_t k) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_ = 1;
  double theta_ = 0.0;
  double alpha_ = 0.0;  ///< 1 / (1 - theta).
  double zetan_ = 0.0;  ///< zeta(n, theta).
  double eta_ = 0.0;
};

}  // namespace udr::workload

#endif  // UDR_WORKLOAD_ZIPF_H_
