#include "workload/testbed.h"

#include <cassert>

namespace udr::workload {

Testbed::Testbed(TestbedOptions opts)
    : opts_(opts), factory_(opts.seed) {
  sim::Topology topology(opts_.sites, opts_.latency);
  network_ = std::make_unique<sim::Network>(std::move(topology), &clock_);
  udr_ = std::make_unique<udrnf::UdrNf>(opts_.udr, network_.get());
  for (uint32_t s = 0; s < opts_.sites; ++s) {
    auto cluster = udr_->AddCluster(s);
    assert(cluster.ok());
    (void)cluster;
  }
  udr_->CommissionPartitions();
  if (opts_.subscribers > 0) {
    ProvisionDirect(0, opts_.subscribers);
  }
}

StatusOr<routing::RebalanceReport> Testbed::ScaleOut(sim::SiteId site) {
  auto cluster = udr_->AddCluster(site);
  if (!cluster.ok()) return cluster.status();
  return udr_->Rebalance();
}

int64_t Testbed::ProvisionDirect(uint64_t first, int64_t count) {
  int64_t created = 0;
  for (int64_t i = 0; i < count; ++i) {
    uint64_t index = first + static_cast<uint64_t>(i);
    std::optional<sim::SiteId> home;
    if (opts_.pin_home_sites) home = HomeSiteOf(index);
    auto spec = factory_.MakeSpec(index, home);
    auto outcome = udr_->CreateSubscriber(spec, home.value_or(0));
    if (outcome.ok()) ++created;
  }
  return created;
}

}  // namespace udr::workload
