#include "workload/traffic.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "workload/zipf.h"

namespace udr::workload {

using telecom::HlrFe;
using telecom::HssFe;
using telecom::ProcedureResult;

TrafficReport RunTraffic(Testbed& bed, const TrafficOptions& opts) {
  TrafficReport report;
  Rng rng(opts.seed);
  // Subscriber draw: theta <= 0 is an exact rng.Uniform passthrough, so the
  // historical uniform stream is byte-identical with the knob at its default.
  ZipfGenerator subscriber_pick(opts.subscriber_count, opts.zipf_theta);
  sim::SimClock& clock = bed.clock();
  const MicroTime horizon = clock.Now() + opts.duration;
  const bool coalesced = opts.concurrent_events > 1;
  const int burst = std::max(1, opts.concurrent_events);

  // One FE pair per site.
  std::vector<std::unique_ptr<HlrFe>> hlr_fes;
  std::vector<std::unique_ptr<HssFe>> hss_fes;
  for (uint32_t s = 0; s < bed.options().sites; ++s) {
    hlr_fes.push_back(std::make_unique<HlrFe>(s, &bed.udr(), opts.batched));
    hss_fes.push_back(std::make_unique<HssFe>(s, &bed.udr(), opts.batched));
    if (coalesced) {
      hlr_fes.back()->set_deferred(true);
      hss_fes.back()->set_deferred(true);
    }
  }
  telecom::ProvisioningSystem ps({opts.ps_site, 0, opts.batched}, &bed.udr(),
                                 &bed.factory());

  // FE procedures parked in a PoA dispatch window, awaiting their flush.
  struct InFlight {
    uint64_t handle = 0;
    telecom::FrontEnd* fe = nullptr;
    ClassStats* cls = nullptr;
  };
  std::vector<InFlight> in_flight;
  // Scores one FE outcome, tagging it as migration-concurrent when the
  // background scheduler still holds work at fold time.
  auto fold_fe = [&](ClassStats& cls, const ProcedureResult& r) {
    cls.Fold(r);
    if (opts.pump_migration && bed.udr().MigrationActive()) {
      report.fe_during_migration.Fold(r);
      if (r.ok()) {
        bed.udr().metrics().Observe("migration.foreground_latency_during",
                                    r.latency);
      }
    }
  };
  auto collect = [&]() {
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      std::optional<ProcedureResult> done = it->fe->TakeDeferred(it->handle);
      if (!done.has_value()) {
        ++it;
        continue;
      }
      report.fe_queue_delay.Record(done->queue_delay);
      fold_fe(*it->cls, *done);
      it = in_flight.erase(it);
    }
  };
  // Folds an FE procedure outcome: inline results score immediately,
  // deferred ones are tracked until their window flushes.
  auto dispatch = [&](ClassStats& cls, telecom::FrontEnd& fe,
                      ProcedureResult r) {
    if (r.deferred()) {
      in_flight.push_back({*r.pending, &fe, &cls});
    } else {
      fold_fe(cls, r);
    }
  };

  const MicroDuration fe_gap =
      opts.fe_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / opts.fe_rate_per_sec)
          : kTimeInfinity;
  const MicroDuration ps_gap =
      opts.ps_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / opts.ps_rate_per_sec)
          : kTimeInfinity;

  MicroTime next_fe = clock.Now() + fe_gap;
  MicroTime next_ps = clock.Now() + ps_gap;

  while (true) {
    MicroTime next = std::min(next_fe, next_ps);
    if (coalesced) {
      // Wake exactly at the earliest open window's deadline so flushes
      // happen on time (queueing delay stays bounded by the window).
      MicroTime flush_at = bed.udr().NextEventDeadline();
      if (flush_at <= std::min(next, horizon)) {
        clock.AdvanceTo(std::max(flush_at, clock.Now()));
        bed.udr().PumpEvents();
        collect();
        continue;
      }
    }
    if (opts.pump_migration) {
      // Wake at the scheduler's next chunk deadline: throttled background
      // moves make exactly the progress the bandwidth budget matured.
      MicroTime mig_at = bed.udr().NextMigrationDeadline();
      if (mig_at <= std::min(next, horizon)) {
        clock.AdvanceTo(std::max(mig_at, clock.Now()));
        bed.udr().PumpMigration();
        continue;
      }
    }
    if (next > horizon) break;
    clock.AdvanceTo(next);

    if (next == next_fe) {
      next_fe += fe_gap;
      for (int b = 0; b < burst; ++b) {
        uint64_t index = subscriber_pick.Next(rng);
        telecom::Subscriber sub = bed.factory().Make(index);
        sim::SiteId home = bed.HomeSiteOf(index);
        sim::SiteId serving = home;
        if (bed.options().sites > 1 && rng.Bernoulli(opts.roaming_fraction)) {
          serving = static_cast<sim::SiteId>(
              (home + 1 + rng.Uniform(bed.options().sites - 1)) %
              bed.options().sites);
        }
        if (rng.Bernoulli(opts.ims_fraction)) {
          HssFe& fe = *hss_fes[serving];
          double pick = rng.NextDouble();
          if (pick < 0.55) {
            dispatch(report.fe_read, fe, fe.ImsLocate(sub.ImpuId()));
          } else if (pick < 0.80) {
            dispatch(report.fe_write, fe,
                     fe.ImsRegister(sub.ImpuId(),
                                    "scscf" + std::to_string(serving)));
          } else {
            dispatch(report.fe_write, fe, fe.ImsDeregister(sub.ImpuId()));
          }
        } else {
          HlrFe& fe = *hlr_fes[serving];
          double pick = rng.NextDouble();
          if (pick < 0.35) {
            dispatch(report.fe_read, fe, fe.Authenticate(sub.ImsiId()));
          } else if (pick < 0.55) {
            dispatch(report.fe_read, fe, fe.SendRoutingInfo(sub.MsisdnId()));
          } else if (pick < 0.70) {
            dispatch(report.fe_read, fe, fe.SmsRouting(sub.MsisdnId()));
          } else if (pick < 0.80) {
            dispatch(report.fe_read, fe, fe.InterrogateSs(sub.MsisdnId()));
          } else {
            dispatch(report.fe_write, fe,
                     fe.UpdateLocation(
                         sub.ImsiId(), "vlr" + std::to_string(serving),
                         static_cast<int64_t>(serving * 100 + rng.Uniform(100))));
          }
        }
      }
      // A burst may have closed a window via the size cap (or coalescing is
      // off and events completed at enqueue): score what is ready.
      if (coalesced) collect();
    } else {
      next_ps += ps_gap;
      uint64_t index = subscriber_pick.Next(rng);
      double pick = rng.NextDouble();
      if (pick < 0.5) {
        report.ps.Fold(
            ps.SetCallForwarding(index, "+3460000" + std::to_string(index % 100)));
      } else if (pick < 0.85) {
        report.ps.Fold(ps.SetPremiumBarring(index, rng.Bernoulli(0.5)));
      } else {
        // New activation: walks out of the phone shop (§4.1).
        uint64_t new_index = opts.subscriber_count + 1000000 +
                             static_cast<uint64_t>(report.ps.attempted);
        report.ps.Fold(ps.Provision(new_index));
      }
    }
  }
  clock.AdvanceTo(horizon);
  if (coalesced) {
    // End-of-run barrier: close every still-open window and score the rest.
    bed.udr().FlushEvents();
    collect();
  }
  if (opts.pump_migration && report.fe_during_migration.ok > 0) {
    // The foreground-impact headline figure of the bandwidth model.
    bed.udr().metrics().Observe("migration.foreground_p99_during",
                                report.fe_during_migration.latency.P99());
  }
  return report;
}

}  // namespace udr::workload
