#include "workload/traffic.h"

#include <memory>
#include <vector>

#include "common/rng.h"

namespace udr::workload {

using telecom::HlrFe;
using telecom::HssFe;
using telecom::ProcedureResult;

TrafficReport RunTraffic(Testbed& bed, const TrafficOptions& opts) {
  TrafficReport report;
  Rng rng(opts.seed);
  sim::SimClock& clock = bed.clock();
  const MicroTime horizon = clock.Now() + opts.duration;

  // One FE pair per site.
  std::vector<std::unique_ptr<HlrFe>> hlr_fes;
  std::vector<std::unique_ptr<HssFe>> hss_fes;
  for (uint32_t s = 0; s < bed.options().sites; ++s) {
    hlr_fes.push_back(std::make_unique<HlrFe>(s, &bed.udr(), opts.batched));
    hss_fes.push_back(std::make_unique<HssFe>(s, &bed.udr(), opts.batched));
  }
  telecom::ProvisioningSystem ps({opts.ps_site, 0, opts.batched}, &bed.udr(),
                                 &bed.factory());

  const MicroDuration fe_gap =
      opts.fe_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / opts.fe_rate_per_sec)
          : kTimeInfinity;
  const MicroDuration ps_gap =
      opts.ps_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / opts.ps_rate_per_sec)
          : kTimeInfinity;

  MicroTime next_fe = clock.Now() + fe_gap;
  MicroTime next_ps = clock.Now() + ps_gap;

  while (true) {
    MicroTime next = std::min(next_fe, next_ps);
    if (next > horizon) break;
    clock.AdvanceTo(next);

    if (next == next_fe) {
      next_fe += fe_gap;
      uint64_t index = rng.Uniform(opts.subscriber_count);
      telecom::Subscriber sub = bed.factory().Make(index);
      sim::SiteId home = bed.HomeSiteOf(index);
      sim::SiteId serving = home;
      if (bed.options().sites > 1 && rng.Bernoulli(opts.roaming_fraction)) {
        serving = static_cast<sim::SiteId>(
            (home + 1 + rng.Uniform(bed.options().sites - 1)) %
            bed.options().sites);
      }
      if (rng.Bernoulli(opts.ims_fraction)) {
        HssFe& fe = *hss_fes[serving];
        double pick = rng.NextDouble();
        if (pick < 0.55) {
          report.fe_read.Fold(fe.ImsLocate(sub.ImpuId()));
        } else if (pick < 0.80) {
          report.fe_write.Fold(
              fe.ImsRegister(sub.ImpuId(), "scscf" + std::to_string(serving)));
        } else {
          report.fe_write.Fold(fe.ImsDeregister(sub.ImpuId()));
        }
      } else {
        HlrFe& fe = *hlr_fes[serving];
        double pick = rng.NextDouble();
        if (pick < 0.35) {
          report.fe_read.Fold(fe.Authenticate(sub.ImsiId()));
        } else if (pick < 0.55) {
          report.fe_read.Fold(fe.SendRoutingInfo(sub.MsisdnId()));
        } else if (pick < 0.70) {
          report.fe_read.Fold(fe.SmsRouting(sub.MsisdnId()));
        } else if (pick < 0.80) {
          report.fe_read.Fold(fe.InterrogateSs(sub.MsisdnId()));
        } else {
          report.fe_write.Fold(fe.UpdateLocation(
              sub.ImsiId(), "vlr" + std::to_string(serving),
              static_cast<int64_t>(serving * 100 + rng.Uniform(100))));
        }
      }
    } else {
      next_ps += ps_gap;
      uint64_t index = rng.Uniform(opts.subscriber_count);
      double pick = rng.NextDouble();
      if (pick < 0.5) {
        report.ps.Fold(
            ps.SetCallForwarding(index, "+3460000" + std::to_string(index % 100)));
      } else if (pick < 0.85) {
        report.ps.Fold(ps.SetPremiumBarring(index, rng.Bernoulli(0.5)));
      } else {
        // New activation: walks out of the phone shop (§4.1).
        uint64_t new_index = opts.subscriber_count + 1000000 +
                             static_cast<uint64_t>(report.ps.attempted);
        report.ps.Fold(ps.Provision(new_index));
      }
    }
  }
  clock.AdvanceTo(horizon);
  return report;
}

}  // namespace udr::workload
