#include "workload/sharded_traffic.h"

#include <utility>
#include <vector>

#include "common/rng.h"

namespace udr::workload {

ShardedTrafficReport RunShardedTraffic(const TrafficOptions& opts,
                                       const routing::PartitionMap* slice_map) {
  exec::ShardRuntimeOptions ro;
  ro.num_shards = opts.num_shards;
  ro.shard.total_subscribers = opts.subscriber_count;
  ro.shard.seed = opts.seed;
  ro.slice_map = slice_map;

  exec::ShardRuntime runtime(ro);
  runtime.Start();

  // Per-subscriber sequence stamping: next_seq feeds the shard's order
  // check (monotonic per key across reads and writes); last_write remembers
  // what the master copy must hold at the end.
  std::vector<uint64_t> next_seq(opts.subscriber_count, 0);
  std::vector<uint64_t> last_write(opts.subscriber_count, 0);
  std::vector<exec::ShardBatch> buffers(
      static_cast<size_t>(ro.num_shards < 1 ? 1 : ro.num_shards));
  const size_t batch_ops =
      opts.sharded_batch_ops < 1 ? 1 : static_cast<size_t>(opts.sharded_batch_ops);

  Rng rng(opts.seed ^ 0x5ca1ab1eULL);
  for (int64_t i = 0; i < opts.sharded_total_ops; ++i) {
    exec::ShardOp op;
    op.subscriber = rng.Uniform(opts.subscriber_count);
    op.seq = ++next_seq[op.subscriber];
    op.write = rng.Uniform(1000) <
               static_cast<uint64_t>(opts.sharded_write_fraction * 1000.0);
    if (op.write) last_write[op.subscriber] = op.seq;
    const int shard = runtime.ShardOf(op.subscriber);
    exec::ShardBatch& buf = buffers[shard];
    buf.ops.push_back(op);
    if (buf.ops.size() >= batch_ops) {
      runtime.Submit(std::move(buf), shard);
      buf = exec::ShardBatch{};
    }
  }
  for (int shard = 0; shard < ro.num_shards; ++shard) {
    if (!buffers[shard].ops.empty()) {
      runtime.Submit(std::move(buffers[shard]), shard);
    }
  }

  ShardedTrafficReport report;
  report.runtime = runtime.Finish();

  // End-state verification: the master copy of every written subscriber must
  // hold the driver's LAST write — per-key order survived the ring, the
  // dispatch window and the replica set.
  for (uint64_t sub = 0; sub < opts.subscriber_count; ++sub) {
    if (last_write[sub] == 0) continue;
    auto stored = runtime.shard(runtime.ShardOf(sub)).ReadSeq(sub);
    ++report.verified_subscribers;
    if (!stored || static_cast<uint64_t>(*stored) != last_write[sub]) {
      ++report.seq_mismatches;
    }
  }
  return report;
}

}  // namespace udr::workload
