// Network topology model: geographic sites joined by a multi-national IP
// backbone, with fast local LANs inside each site. This reproduces the
// latency structure that drives every CAP/PACELC trade-off in the paper
// (local access ≪ backbone access).

#ifndef UDR_SIM_TOPOLOGY_H_
#define UDR_SIM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace udr::sim {

/// Identifier of a geographic site (data-center / country region).
using SiteId = uint32_t;

/// Latency parameters of the simulated IP network.
struct LatencyConfig {
  /// One-way latency between two processes on the same site's LAN.
  MicroDuration lan_one_way = Micros(150);
  /// Default one-way latency across the IP backbone between two sites.
  MicroDuration backbone_one_way = Millis(15);
  /// Fixed per-hop processing overhead (balancer, LDAP server, stack).
  MicroDuration hop_overhead = Micros(30);
  /// Sustained bulk-transfer bandwidth of a LAN link, bytes/second
  /// (0 = unmodelled: bulk transfers complete in latency alone).
  int64_t lan_bandwidth_bps = 0;
  /// Sustained bulk-transfer bandwidth of a backbone link, bytes/second.
  int64_t backbone_bandwidth_bps = 0;
};

/// Static description of sites and pairwise backbone latencies.
class Topology {
 public:
  /// Creates `site_count` sites with uniform backbone latency.
  Topology(uint32_t site_count, LatencyConfig config = LatencyConfig());

  uint32_t site_count() const { return site_count_; }
  const LatencyConfig& config() const { return config_; }

  /// Names a site (for reports); default names are "site-N".
  void SetSiteName(SiteId site, std::string name);
  const std::string& SiteName(SiteId site) const { return names_[site]; }

  /// Overrides the one-way backbone latency between two sites (symmetric).
  void SetLinkLatency(SiteId a, SiteId b, MicroDuration one_way);

  /// Overrides the bulk-transfer bandwidth between two sites (symmetric,
  /// bytes/second; 0 = unmodelled). Streaming workloads — background
  /// migration in particular — pace their chunk transfers against this.
  void SetLinkBandwidth(SiteId a, SiteId b, int64_t bytes_per_sec);

  /// Bulk-transfer bandwidth between two sites, bytes/second (0 = unmodelled).
  int64_t LinkBandwidthBps(SiteId a, SiteId b) const;

  /// One-way message latency between two sites (LAN latency when a == b).
  MicroDuration OneWayLatency(SiteId a, SiteId b) const;

  /// Round-trip latency between two sites.
  MicroDuration Rtt(SiteId a, SiteId b) const { return 2 * OneWayLatency(a, b); }

  /// Per-hop fixed processing overhead.
  MicroDuration HopOverhead() const { return config_.hop_overhead; }

 private:
  size_t LinkIndex(SiteId a, SiteId b) const {
    return static_cast<size_t>(a) * site_count_ + b;
  }

  uint32_t site_count_;
  LatencyConfig config_;
  std::vector<std::string> names_;
  std::vector<MicroDuration> link_latency_;  // site_count^2 matrix, one-way.
  std::vector<int64_t> link_bandwidth_;      // site_count^2 matrix, bytes/sec.
};

}  // namespace udr::sim

#endif  // UDR_SIM_TOPOLOGY_H_
