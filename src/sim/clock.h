// Virtual clock driving the whole simulation. Components never consult wall
// time; they read and advance a shared SimClock, which keeps runs
// deterministic and lets scenario drivers compress hours of telecom traffic
// into milliseconds of CPU.

#ifndef UDR_SIM_CLOCK_H_
#define UDR_SIM_CLOCK_H_

#include <cassert>

#include "common/time.h"

namespace udr::sim {

/// Monotonic virtual clock (microsecond resolution).
class SimClock {
 public:
  /// Current virtual time.
  MicroTime Now() const { return now_; }

  /// Advances the clock by a non-negative duration.
  void Advance(MicroDuration d) {
    assert(d >= 0);
    now_ += d;
  }

  /// Advances the clock to an absolute time (must not move backwards).
  void AdvanceTo(MicroTime t) {
    assert(t >= now_);
    now_ = t;
  }

  /// Resets to zero (only scenario drivers should do this, between runs).
  void Reset() { now_ = 0; }

 private:
  MicroTime now_ = 0;
};

}  // namespace udr::sim

#endif  // UDR_SIM_CLOCK_H_
