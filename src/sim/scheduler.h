// Minimal deterministic discrete-event scheduler. Most of the library uses
// lazy time accounting instead of events, but queued-work models (the
// Provisioning System backlog, batch runners) need ordered future callbacks.

#ifndef UDR_SIM_SCHEDULER_H_
#define UDR_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"
#include "sim/clock.h"

namespace udr::sim {

/// Deterministic event loop over a SimClock. Events at equal times run in
/// insertion order (stable), which keeps runs reproducible.
class Scheduler {
 public:
  explicit Scheduler(SimClock* clock) : clock_(clock) {}

  /// Schedules `fn` to run at absolute time `when` (>= now).
  void At(MicroTime when, std::function<void()> fn) {
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` to run `delay` after now.
  void After(MicroDuration delay, std::function<void()> fn) {
    At(clock_->Now() + delay, std::move(fn));
  }

  /// Runs events until the queue empties or the time horizon is passed.
  /// Returns the number of events executed.
  int64_t RunUntil(MicroTime horizon = kTimeInfinity) {
    int64_t executed = 0;
    while (!events_.empty()) {
      const Event& top = events_.top();
      if (top.when > horizon) break;
      Event ev = top;
      events_.pop();
      if (ev.when > clock_->Now()) clock_->AdvanceTo(ev.when);
      ev.fn();
      ++executed;
    }
    if (horizon != kTimeInfinity && clock_->Now() < horizon) {
      clock_->AdvanceTo(horizon);
    }
    return executed;
  }

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }
  SimClock* clock() const { return clock_; }

 private:
  struct Event {
    MicroTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace udr::sim

#endif  // UDR_SIM_SCHEDULER_H_
