// Partition and crash schedules: time-interval sets describing when backbone
// links between site pairs are severed and when nodes are down. Replication
// links consult DeliveryTime() to defer log shipping across an outage, which
// is what produces honest CAP behaviour (stale slaves, failed writes on the
// minority side) without threads or sockets.

#ifndef UDR_SIM_PARTITION_SCHEDULE_H_
#define UDR_SIM_PARTITION_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/topology.h"

namespace udr::sim {

/// An ordered, merged set of half-open outage intervals.
class IntervalSet {
 public:
  /// Adds [begin, end), merging with overlapping/adjacent intervals.
  void Add(MicroTime begin, MicroTime end);

  /// True if `t` falls inside an outage interval.
  bool Covers(MicroTime t) const;

  /// Earliest time >= t that is outside every interval (t itself if clear).
  MicroTime NextClear(MicroTime t) const;

  /// Total outage duration overlapping [begin, end).
  MicroDuration OutageWithin(MicroTime begin, MicroTime end) const;

  const std::vector<TimeInterval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

 private:
  std::vector<TimeInterval> intervals_;  // Sorted, non-overlapping.
};

/// Time-varying reachability between sites.
class PartitionSchedule {
 public:
  /// Severs the (symmetric) backbone link between sites a and b for
  /// [begin, end).
  void CutLink(SiteId a, SiteId b, MicroTime begin, MicroTime end);

  /// Severs every link between the two site groups (a full network
  /// partition separating `group_a` from `group_b`).
  void CutBetween(const std::vector<SiteId>& group_a,
                  const std::vector<SiteId>& group_b, MicroTime begin,
                  MicroTime end);

  /// Isolates one site from all others for [begin, end).
  void IsolateSite(SiteId site, uint32_t site_count, MicroTime begin,
                   MicroTime end);

  /// True if a message can be sent from a to b at time t (same-site traffic
  /// is never partitioned: the paper treats site LANs as reliable).
  bool Reachable(SiteId a, SiteId b, MicroTime t) const;

  /// Earliest time >= t at which a->b traffic flows again.
  MicroTime HealTime(SiteId a, SiteId b, MicroTime t) const;

  /// Delivery time of a message sent at `send_time` with one-way latency
  /// `latency`, for stream-style transport (replication): if the link is down
  /// at send time, delivery is deferred until heal + latency.
  MicroTime DeliveryTime(SiteId a, SiteId b, MicroTime send_time,
                         MicroDuration latency) const;

  /// Total severed duration for the a-b link inside [begin, end).
  MicroDuration OutageWithin(SiteId a, SiteId b, MicroTime begin,
                             MicroTime end) const;

  bool HasAnyPartition() const { return !links_.empty(); }

 private:
  static uint64_t Key(SiteId a, SiteId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::map<uint64_t, IntervalSet> links_;
};

/// Time-varying up/down state of named nodes (storage elements, servers).
class CrashSchedule {
 public:
  /// Marks the node down for [begin, end). A crash destroys RAM contents;
  /// recovery semantics live in the storage layer.
  void AddOutage(const std::string& node, MicroTime begin, MicroTime end);

  /// Permanently fails the node from `begin` on.
  void FailForever(const std::string& node, MicroTime begin);

  bool IsUp(const std::string& node, MicroTime t) const;

  /// Earliest time >= t when the node is up again (kTimeInfinity if never).
  MicroTime RecoveryTime(const std::string& node, MicroTime t) const;

  /// Outage intervals for the node (empty set when none).
  const IntervalSet& Outages(const std::string& node) const;

 private:
  std::map<std::string, IntervalSet> nodes_;
};

}  // namespace udr::sim

#endif  // UDR_SIM_PARTITION_SCHEDULE_H_
