// The simulated IP network facade: topology (latency) + partition schedule
// (reachability) + clock. Higher layers ask it two questions:
//   * "can I RPC from site A to site B right now, and at what cost?"
//   * "when would a streamed message sent at T actually arrive?"

#ifndef UDR_SIM_NETWORK_H_
#define UDR_SIM_NETWORK_H_

#include <memory>

#include "common/status.h"
#include "common/time.h"
#include "sim/clock.h"
#include "sim/partition_schedule.h"
#include "sim/topology.h"

namespace udr::sim {

/// Outcome of an RPC admission check.
struct RpcCheck {
  Status status;          ///< Ok, or Unavailable when partitioned.
  MicroDuration latency;  ///< Round-trip cost when Ok; detection timeout when not.
};

/// Simulated network. Owns nothing mutable besides the partition schedule;
/// the clock is shared with the rest of the simulation.
class Network {
 public:
  Network(Topology topology, SimClock* clock)
      : topology_(std::move(topology)), clock_(clock) {}

  const Topology& topology() const { return topology_; }
  Topology& mutable_topology() { return topology_; }
  PartitionSchedule& partitions() { return partitions_; }
  const PartitionSchedule& partitions() const { return partitions_; }
  CrashSchedule& crashes() { return crashes_; }
  const CrashSchedule& crashes() const { return crashes_; }
  SimClock* clock() const { return clock_; }
  MicroTime Now() const { return clock_->Now(); }

  /// Timeout after which a non-responding peer is declared unreachable.
  void set_rpc_timeout(MicroDuration t) { rpc_timeout_ = t; }
  MicroDuration rpc_timeout() const { return rpc_timeout_; }

  /// Checks whether an RPC from `from` to `to` can complete now. On success
  /// the latency is a full round trip plus hop overhead; on partition it is
  /// the failure-detection timeout (fast when both ends are on one LAN).
  RpcCheck CheckRpc(SiteId from, SiteId to) const {
    if (partitions_.Reachable(from, to, Now())) {
      return {Status::Ok(), topology_.Rtt(from, to) + topology_.HopOverhead()};
    }
    return {Status::Unavailable("network partition between " +
                                topology_.SiteName(from) + " and " +
                                topology_.SiteName(to)),
            rpc_timeout_};
  }

  /// One-way latency between sites, ignoring partitions.
  MicroDuration OneWay(SiteId from, SiteId to) const {
    return topology_.OneWayLatency(from, to);
  }

  /// Stream delivery time (replication): messages wait out a partition.
  MicroTime StreamDeliveryTime(SiteId from, SiteId to, MicroTime send_time) const {
    return partitions_.DeliveryTime(from, to, send_time,
                                    topology_.OneWayLatency(from, to));
  }

  bool Reachable(SiteId from, SiteId to) const {
    return partitions_.Reachable(from, to, Now());
  }

 private:
  Topology topology_;
  PartitionSchedule partitions_;
  CrashSchedule crashes_;
  SimClock* clock_;
  MicroDuration rpc_timeout_ = Millis(500);
};

}  // namespace udr::sim

#endif  // UDR_SIM_NETWORK_H_
