#include "sim/partition_schedule.h"

#include <algorithm>
#include <cassert>

namespace udr::sim {

void IntervalSet::Add(MicroTime begin, MicroTime end) {
  if (end <= begin) return;
  TimeInterval nv{begin, end};
  std::vector<TimeInterval> merged;
  merged.reserve(intervals_.size() + 1);
  bool inserted = false;
  for (const auto& iv : intervals_) {
    if (iv.end < nv.begin) {
      merged.push_back(iv);
    } else if (nv.end < iv.begin) {
      if (!inserted) {
        merged.push_back(nv);
        inserted = true;
      }
      merged.push_back(iv);
    } else {
      nv.begin = std::min(nv.begin, iv.begin);
      nv.end = std::max(nv.end, iv.end);
    }
  }
  if (!inserted) merged.push_back(nv);
  intervals_ = std::move(merged);
}

bool IntervalSet::Covers(MicroTime t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](MicroTime v, const TimeInterval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

MicroTime IntervalSet::NextClear(MicroTime t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](MicroTime v, const TimeInterval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return t;
  --it;
  return it->Contains(t) ? it->end : t;
}

MicroDuration IntervalSet::OutageWithin(MicroTime begin, MicroTime end) const {
  MicroDuration total = 0;
  for (const auto& iv : intervals_) {
    MicroTime b = std::max(begin, iv.begin);
    MicroTime e = std::min(end, iv.end);
    if (e > b) total += e - b;
  }
  return total;
}

void PartitionSchedule::CutLink(SiteId a, SiteId b, MicroTime begin,
                                MicroTime end) {
  if (a == b) return;  // Site LANs are never partitioned.
  links_[Key(a, b)].Add(begin, end);
}

void PartitionSchedule::CutBetween(const std::vector<SiteId>& group_a,
                                   const std::vector<SiteId>& group_b,
                                   MicroTime begin, MicroTime end) {
  for (SiteId a : group_a) {
    for (SiteId b : group_b) CutLink(a, b, begin, end);
  }
}

void PartitionSchedule::IsolateSite(SiteId site, uint32_t site_count,
                                    MicroTime begin, MicroTime end) {
  for (SiteId other = 0; other < site_count; ++other) {
    if (other != site) CutLink(site, other, begin, end);
  }
}

bool PartitionSchedule::Reachable(SiteId a, SiteId b, MicroTime t) const {
  if (a == b) return true;
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) return true;
  return !it->second.Covers(t);
}

MicroTime PartitionSchedule::HealTime(SiteId a, SiteId b, MicroTime t) const {
  if (a == b) return t;
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) return t;
  return it->second.NextClear(t);
}

MicroTime PartitionSchedule::DeliveryTime(SiteId a, SiteId b,
                                          MicroTime send_time,
                                          MicroDuration latency) const {
  MicroTime effective_send = HealTime(a, b, send_time);
  return effective_send + latency;
}

MicroDuration PartitionSchedule::OutageWithin(SiteId a, SiteId b,
                                              MicroTime begin,
                                              MicroTime end) const {
  if (a == b) return 0;
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) return 0;
  return it->second.OutageWithin(begin, end);
}

void CrashSchedule::AddOutage(const std::string& node, MicroTime begin,
                              MicroTime end) {
  nodes_[node].Add(begin, end);
}

void CrashSchedule::FailForever(const std::string& node, MicroTime begin) {
  nodes_[node].Add(begin, kTimeInfinity);
}

bool CrashSchedule::IsUp(const std::string& node, MicroTime t) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return true;
  return !it->second.Covers(t);
}

MicroTime CrashSchedule::RecoveryTime(const std::string& node,
                                      MicroTime t) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return t;
  return it->second.NextClear(t);
}

const IntervalSet& CrashSchedule::Outages(const std::string& node) const {
  static const IntervalSet kEmpty;
  auto it = nodes_.find(node);
  return it == nodes_.end() ? kEmpty : it->second;
}

}  // namespace udr::sim
