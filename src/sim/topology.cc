#include "sim/topology.h"

#include <cassert>

namespace udr::sim {

Topology::Topology(uint32_t site_count, LatencyConfig config)
    : site_count_(site_count), config_(config) {
  assert(site_count > 0);
  names_.reserve(site_count);
  for (uint32_t i = 0; i < site_count; ++i) {
    names_.push_back("site-" + std::to_string(i));
  }
  link_latency_.assign(static_cast<size_t>(site_count) * site_count,
                       config_.backbone_one_way);
  link_bandwidth_.assign(static_cast<size_t>(site_count) * site_count,
                         config_.backbone_bandwidth_bps);
  for (uint32_t i = 0; i < site_count; ++i) {
    link_latency_[LinkIndex(i, i)] = config_.lan_one_way;
    link_bandwidth_[LinkIndex(i, i)] = config_.lan_bandwidth_bps;
  }
}

void Topology::SetSiteName(SiteId site, std::string name) {
  assert(site < site_count_);
  names_[site] = std::move(name);
}

void Topology::SetLinkLatency(SiteId a, SiteId b, MicroDuration one_way) {
  assert(a < site_count_ && b < site_count_);
  link_latency_[LinkIndex(a, b)] = one_way;
  link_latency_[LinkIndex(b, a)] = one_way;
}

void Topology::SetLinkBandwidth(SiteId a, SiteId b, int64_t bytes_per_sec) {
  assert(a < site_count_ && b < site_count_);
  link_bandwidth_[LinkIndex(a, b)] = bytes_per_sec;
  link_bandwidth_[LinkIndex(b, a)] = bytes_per_sec;
}

int64_t Topology::LinkBandwidthBps(SiteId a, SiteId b) const {
  assert(a < site_count_ && b < site_count_);
  return link_bandwidth_[LinkIndex(a, b)];
}

MicroDuration Topology::OneWayLatency(SiteId a, SiteId b) const {
  assert(a < site_count_ && b < site_count_);
  return link_latency_[LinkIndex(a, b)];
}

}  // namespace udr::sim
