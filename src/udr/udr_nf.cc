#include "udr/udr_nf.h"

#include <algorithm>
#include <cassert>

#include "ldap/filter.h"
#include "replication/write_builder.h"

namespace udr::udrnf {

using ldap::LdapRequest;
using ldap::LdapResult;
using ldap::LdapResultCode;
using ldap::StatusToLdapCode;
using location::Identity;
using location::IdentityType;
using location::LocationEntry;
using replication::ReadPreference;
using replication::ReplicaSet;
using replication::ReplicaSetConfig;
using replication::WriteBuilder;
using storage::Record;

UdrNf::UdrNf(UdrConfig config, sim::Network* network)
    : config_(std::move(config)), network_(network) {}

UdrNf::~UdrNf() = default;

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

std::unique_ptr<location::LocationStage> UdrNf::MakeLocationStage() {
  if (config_.location_kind == LocationKind::kProvisioned) {
    return std::make_unique<location::ProvisionedLocationStage>(
        config_.location_model);
  }
  return std::make_unique<location::CachedLocationStage>(
      [this](const Identity& id) { return AuthoritativeLookup(id); },
      [this]() { return TotalStorageElements(); }, config_.location_model);
}

StatusOr<BladeCluster*> UdrNf::AddCluster(sim::SiteId site) {
  if (clusters_.size() >= kMaxClustersPerNf) {
    return Status::ResourceExhausted("UDR NF already at 256 blade clusters");
  }
  auto cluster = std::make_unique<BladeCluster>(
      static_cast<uint32_t>(clusters_.size()), site, network_->clock());

  for (int i = 0; i < config_.se_per_cluster; ++i) {
    storage::StorageElementConfig se_cfg = config_.se_template;
    auto se = cluster->AddStorageElement(
        se_cfg, static_cast<uint32_t>(all_ses_.size()));
    if (!se.ok()) return se.status();
    SeRef ref;
    ref.se = *se;
    ref.cluster = cluster->id();
    all_ses_.push_back(ref);
  }
  for (int i = 0; i < config_.ldap_per_cluster; ++i) {
    auto server = cluster->AddLdapServer(config_.ldap_template, this);
    if (!server.ok()) return server.status();
  }

  auto stage = MakeLocationStage();
  if (config_.location_kind == LocationKind::kProvisioned && !clusters_.empty()) {
    // §3.4.2: the new data location stage instance syncs its identity maps
    // from a peer; the new PoA cannot serve until the copy completes.
    auto* self = static_cast<location::ProvisionedLocationStage*>(stage.get());
    auto* peer = static_cast<location::ProvisionedLocationStage*>(
        clusters_.front()->location_stage());
    if (peer != nullptr) {
      MicroDuration window = self->BeginSyncFrom(*peer, Now());
      metrics_.Observe("scaleout.sync_window_us", window);
    }
  }
  cluster->SetLocationStage(std::move(stage));

  clusters_.push_back(std::move(cluster));
  return clusters_.back().get();
}

void UdrNf::CommissionPartitions() {
  for (size_t i = 0; i < all_ses_.size(); ++i) {
    SeRef& primary = all_ses_[i];
    if (primary.has_partition) continue;

    // Secondary copies: prefer SEs in other clusters (geographic dispersion,
    // §3.1 decision 2), least-loaded first; fall back to same-cluster SEs.
    std::vector<size_t> candidates;
    for (size_t j = 0; j < all_ses_.size(); ++j) {
      if (j != i) candidates.push_back(j);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](size_t a, size_t b) {
                       bool a_other = all_ses_[a].cluster != primary.cluster;
                       bool b_other = all_ses_[b].cluster != primary.cluster;
                       if (a_other != b_other) return a_other;
                       if (all_ses_[a].secondary_load !=
                           all_ses_[b].secondary_load) {
                         return all_ses_[a].secondary_load <
                                all_ses_[b].secondary_load;
                       }
                       return a < b;
                     });

    std::vector<storage::StorageElement*> members;
    members.push_back(primary.se);
    std::vector<uint32_t> used_clusters = {primary.cluster};
    for (size_t j : candidates) {
      if (static_cast<int>(members.size()) >= config_.replication_factor) break;
      // First pass: one copy per cluster where possible.
      if (std::count(used_clusters.begin(), used_clusters.end(),
                     all_ses_[j].cluster) > 0 &&
          candidates.size() + 1 >
              static_cast<size_t>(config_.replication_factor)) {
        bool can_still_fill = false;
        int remaining = config_.replication_factor -
                        static_cast<int>(members.size());
        int distinct_left = 0;
        for (size_t k : candidates) {
          if (std::count(used_clusters.begin(), used_clusters.end(),
                         all_ses_[k].cluster) == 0) {
            ++distinct_left;
          }
        }
        can_still_fill = distinct_left >= remaining;
        if (can_still_fill) continue;
      }
      members.push_back(all_ses_[j].se);
      used_clusters.push_back(all_ses_[j].cluster);
      ++all_ses_[j].secondary_load;
    }

    ReplicaSetConfig rs_cfg;
    rs_cfg.name = "partition-" + std::to_string(partitions_.size());
    rs_cfg.sync_mode = config_.sync_mode;
    rs_cfg.partition_mode = config_.partition_mode;
    rs_cfg.merge_policy = config_.merge_policy;
    rs_cfg.failover_detection = config_.failover_detection;
    rs_cfg.async_ship_delay = config_.async_ship_delay;
    partitions_.push_back(
        std::make_unique<ReplicaSet>(rs_cfg, std::move(members), network_));
    partition_population_.push_back(0);
    primary.has_partition = true;
  }
}

BladeCluster* UdrNf::ClusterAtSite(sim::SiteId site) {
  for (auto& c : clusters_) {
    if (c->site() == site) return c.get();
  }
  return nullptr;
}

int UdrNf::TotalStorageElements() const {
  int total = 0;
  for (const auto& c : clusters_) total += static_cast<int>(c->se_count());
  return total;
}

int64_t UdrNf::TotalLdapOpsPerSecond() const {
  int64_t total = 0;
  for (const auto& c : clusters_) total += c->LdapOpsPerSecond();
  return total;
}

int64_t UdrNf::TotalSubscriberCapacity(int64_t avg_record_bytes) const {
  int64_t total = 0;
  for (const auto& c : clusters_) {
    total += c->SubscriberCapacity(avg_record_bytes);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Identity helpers
// ---------------------------------------------------------------------------

bool UdrNf::IsIdentityAttr(const std::string& attr) {
  return IdentityTypeForAttr(attr).has_value();
}

std::optional<IdentityType> UdrNf::IdentityTypeForAttr(const std::string& attr) {
  if (attr == "imsi") return IdentityType::kImsi;
  if (attr == "msisdn") return IdentityType::kMsisdn;
  if (attr == "impu") return IdentityType::kImpu;
  if (attr == "impi") return IdentityType::kImpi;
  return std::nullopt;
}

StatusOr<LocationEntry> UdrNf::AuthoritativeLookup(const Identity& id) const {
  auto it = authoritative_.find(id);
  if (it == authoritative_.end()) {
    return Status::NotFound("identity " + id.ToString() + " not provisioned");
  }
  return it->second;
}

void UdrNf::BindEverywhere(const Identity& id, const LocationEntry& entry) {
  authoritative_[id] = entry;
  for (auto& c : clusters_) {
    if (c->location_stage() != nullptr) {
      (void)c->location_stage()->Bind(id, entry);
    }
  }
}

void UdrNf::UnbindEverywhere(const Identity& id) {
  authoritative_.erase(id);
  for (auto& c : clusters_) {
    if (c->location_stage() != nullptr) {
      (void)c->location_stage()->Unbind(id);
    }
  }
}

location::ResolveResult UdrNf::Locate(const Identity& id, sim::SiteId poa_site) {
  BladeCluster* cluster = ClusterAtSite(poa_site);
  if (cluster == nullptr || cluster->location_stage() == nullptr) {
    location::ResolveResult out;
    out.status = Status::Unavailable("no location stage at site " +
                                     std::to_string(poa_site));
    return out;
  }
  return cluster->location_stage()->Resolve(id, Now());
}

std::vector<Identity> UdrNf::IdentitiesOfRecord(const Record& record) const {
  std::vector<Identity> out;
  for (const char* attr : {"imsi", "msisdn", "impi"}) {
    auto v = record.Get(attr);
    if (v.has_value()) {
      if (const auto* s = std::get_if<std::string>(&*v)) {
        out.push_back(Identity{*IdentityTypeForAttr(attr), *s});
      }
    }
  }
  auto impus = record.Get("impu");
  if (impus.has_value()) {
    if (const auto* xs = std::get_if<std::vector<std::string>>(&*impus)) {
      for (const auto& x : *xs) {
        out.push_back(Identity{IdentityType::kImpu, x});
      }
    } else if (const auto* s = std::get_if<std::string>(&*impus)) {
      out.push_back(Identity{IdentityType::kImpu, *s});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Subscriber administration
// ---------------------------------------------------------------------------

StatusOr<uint32_t> UdrNf::PickPartitionForCreate(
    std::optional<sim::SiteId> home_site) {
  CommissionPartitions();
  if (partitions_.empty()) {
    return Status::FailedPrecondition("no storage deployed in the UDR NF");
  }
  int best = -1;
  if (home_site.has_value()) {
    // Selective placement (§3.5): pin to a partition whose master copy sits
    // at the requested site.
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if (partitions_[p]->master_site() != *home_site) continue;
      if (best < 0 ||
          partition_population_[p] < partition_population_[best]) {
        best = static_cast<int>(p);
      }
    }
    if (best >= 0) return static_cast<uint32_t>(best);
    // Fall through to global placement when no partition lives there.
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (best < 0 || partition_population_[p] < partition_population_[best]) {
      best = static_cast<int>(p);
    }
  }
  return static_cast<uint32_t>(best);
}

StatusOr<UdrNf::CreateOutcome> UdrNf::CreateSubscriber(const CreateSpec& spec,
                                                       sim::SiteId origin_site) {
  if (spec.identities.empty()) {
    return Status::InvalidArgument("subscription needs at least one identity");
  }
  for (const Identity& id : spec.identities) {
    if (authoritative_.count(id) > 0) {
      return Status::AlreadyExists("identity " + id.ToString() +
                                   " already provisioned");
    }
  }
  UDR_ASSIGN_OR_RETURN(uint32_t pidx, PickPartitionForCreate(spec.home_site));
  ReplicaSet* rs = partitions_[pidx].get();

  // Capacity admission on the primary copy's storage element.
  int64_t bytes = spec.profile.ApproxBytes();
  const storage::RecordStore& mstore = rs->replica_store(rs->master_id());
  (void)mstore;
  // All copies grow by the same amount; admission uses the primary.
  // (Each ReplicaSet member may host several partitions on one SE.)
  storage::StorageElement* primary_se = nullptr;
  for (auto& ref : all_ses_) {
    if (&ref.se->store() == &rs->replica_store(rs->master_id())) {
      primary_se = ref.se;
      break;
    }
  }
  if (primary_se != nullptr) {
    UDR_RETURN_IF_ERROR(primary_se->CheckCapacity(bytes));
  }

  storage::RecordKey key = next_key_++;
  WriteBuilder wb;
  wb.PutRecord(key, spec.profile);
  replication::WriteResult write = rs->Write(origin_site, std::move(wb).Build());
  if (!write.status.ok()) {
    metrics_.Add("udr.create.rejected");
    return write.status;
  }

  LocationEntry entry;
  entry.key = key;
  entry.partition = pidx;
  for (const Identity& id : spec.identities) {
    BindEverywhere(id, entry);
  }
  ++partition_population_[pidx];
  ++subscriber_count_;
  metrics_.Add("udr.create.ok");

  CreateOutcome out;
  out.entry = entry;
  out.write = write;
  return out;
}

Status UdrNf::DeleteSubscriber(const Identity& id, sim::SiteId origin_site) {
  UDR_ASSIGN_OR_RETURN(LocationEntry entry, AuthoritativeLookup(id));
  ReplicaSet* rs = partitions_[entry.partition].get();
  auto record = rs->ReadRecord(origin_site, entry.key,
                               ReadPreference::kMasterOnly, nullptr);
  if (!record.ok()) return record.status();

  WriteBuilder wb;
  wb.Delete(entry.key);
  replication::WriteResult write = rs->Write(origin_site, std::move(wb).Build());
  if (!write.status.ok()) return write.status;

  for (const Identity& sub_id : IdentitiesOfRecord(*record)) {
    UnbindEverywhere(sub_id);
  }
  UnbindEverywhere(id);  // Defensive: DN identity may not appear in attrs.
  --partition_population_[entry.partition];
  --subscriber_count_;
  metrics_.Add("udr.delete.ok");
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// LDAP front door
// ---------------------------------------------------------------------------

StatusOr<uint32_t> UdrNf::FindPoaCluster(sim::SiteId client_site) const {
  int best = -1;
  MicroDuration best_rtt = 0;
  for (size_t i = 0; i < clusters_.size(); ++i) {
    sim::SiteId s = clusters_[i]->site();
    if (!network_->Reachable(client_site, s)) continue;
    MicroDuration rtt = network_->topology().Rtt(client_site, s);
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(i);
      best_rtt = rtt;
    }
  }
  if (best < 0) {
    return Status::Unavailable("no reachable Point of Access from site " +
                               std::to_string(client_site));
  }
  return static_cast<uint32_t>(best);
}

LdapResult UdrNf::Submit(const LdapRequest& request, sim::SiteId client_site) {
  auto poa = FindPoaCluster(client_site);
  if (!poa.ok()) {
    LdapResult r;
    r.code = LdapResultCode::kUnavailable;
    r.diagnostic = poa.status().message();
    r.latency = network_->rpc_timeout();
    metrics_.Add("udr.submit.unavailable");
    return r;
  }
  BladeCluster* cluster = clusters_[*poa].get();
  LdapResult result = cluster->balancer().Serve(request, cluster->site());
  // Client <-> PoA leg (LAN when the client is co-located, §3.3.2 measure 1).
  result.latency += network_->topology().Rtt(client_site, cluster->site()) +
                    network_->topology().HopOverhead();
  metrics_.Add(result.ok() ? "udr.submit.ok" : "udr.submit.failed");
  return result;
}

StatusOr<Identity> UdrNf::RequestIdentity(const LdapRequest& request) const {
  // Base-object operations name the subscriber in the DN leaf.
  if (!request.dn.empty()) {
    const ldap::Rdn& leaf = request.dn.leaf();
    auto type = IdentityTypeForAttr(leaf.attr);
    if (type.has_value()) {
      return Identity{*type, leaf.value};
    }
  }
  // Single-level searches under ou=subscribers use an equality filter on an
  // identity attribute (the SLF-style lookup pattern).
  if (request.op == ldap::LdapOp::kSearch &&
      request.scope == ldap::SearchScope::kSingleLevel) {
    auto filter = ldap::Filter::Parse(request.filter);
    if (filter.ok() && filter->kind() == ldap::Filter::Kind::kEquality) {
      auto type = IdentityTypeForAttr(filter->attr());
      if (type.has_value()) {
        return Identity{*type, filter->value()};
      }
    }
  }
  return Status::InvalidArgument(
      "request does not address a subscriber identity (dn=" +
      request.dn.ToString() + ")");
}

ReadPreference UdrNf::ReadPrefFor(const LdapRequest& request) const {
  if (request.master_only || !config_.fe_slave_reads) {
    return ReadPreference::kMasterOnly;
  }
  return ReadPreference::kNearest;
}

LdapResult UdrNf::Process(const LdapRequest& request, uint32_t poa_site) {
  switch (request.op) {
    case ldap::LdapOp::kSearch:
      return DoSearch(request, poa_site);
    case ldap::LdapOp::kAdd:
      return DoAdd(request, poa_site);
    case ldap::LdapOp::kModify:
      return DoModify(request, poa_site);
    case ldap::LdapOp::kDelete:
      return DoDelete(request, poa_site);
    case ldap::LdapOp::kCompare:
      return DoCompare(request, poa_site);
  }
  LdapResult r;
  r.code = LdapResultCode::kProtocolError;
  r.diagnostic = "unsupported operation";
  return r;
}

LdapResult UdrNf::DoSearch(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  location::ResolveResult loc = Locate(*identity, poa_site);
  r.latency += loc.cost;
  if (!loc.status.ok()) {
    r.code = StatusToLdapCode(loc.status);
    r.diagnostic = loc.status.message();
    return r;
  }
  ReplicaSet* rs = partitions_[loc.entry.partition].get();
  replication::ReadResult meta;
  auto record =
      rs->ReadRecord(poa_site, loc.entry.key, ReadPrefFor(request), &meta);
  r.latency += meta.latency;
  r.stale = meta.stale;
  if (!record.ok()) {
    r.code = StatusToLdapCode(record.status());
    r.diagnostic = record.status().message();
    return r;
  }
  auto filter = ldap::Filter::Parse(request.filter);
  if (!filter.ok()) {
    r.code = LdapResultCode::kProtocolError;
    r.diagnostic = filter.status().message();
    return r;
  }
  bool matches = filter->kind() == ldap::Filter::Kind::kPresence &&
                         filter->attr() == "objectclass"
                     ? true
                     : filter->Matches(*record);
  if (matches) {
    ldap::SearchEntry entry;
    entry.dn = request.dn;
    if (request.requested_attrs.empty()) {
      entry.record = *record;
    } else {
      for (const std::string& attr : request.requested_attrs) {
        const storage::Attribute* a = record->Find(attr);
        if (a != nullptr) {
          entry.record.Set(attr, a->value, a->modified_at, a->writer);
        }
      }
    }
    r.entries.push_back(std::move(entry));
  }
  r.code = LdapResultCode::kSuccess;
  metrics_.Add("udr.search.ok");
  return r;
}

LdapResult UdrNf::DoAdd(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  if (request.dn.empty() || !IsIdentityAttr(request.dn.leaf().attr)) {
    r.code = LdapResultCode::kUnwillingToPerform;
    r.diagnostic = "Add must target an identity-keyed subscriber DN";
    return r;
  }
  CreateSpec spec;
  spec.profile = request.add_entry;
  // The DN leaf identity plus any identity attributes in the entry.
  spec.identities.push_back(Identity{
      *IdentityTypeForAttr(request.dn.leaf().attr), request.dn.leaf().value});
  for (const Identity& id : IdentitiesOfRecord(request.add_entry)) {
    if (!(id == spec.identities.front())) spec.identities.push_back(id);
  }
  auto home = request.add_entry.Get("homesite");
  if (home.has_value()) {
    if (const auto* v = std::get_if<int64_t>(&*home)) {
      spec.home_site = static_cast<sim::SiteId>(*v);
    }
  }
  auto outcome = CreateSubscriber(spec, poa_site);
  if (!outcome.ok()) {
    r.code = StatusToLdapCode(outcome.status());
    r.diagnostic = outcome.status().message();
    r.latency += network_->rpc_timeout() / 100;  // Admission-failure handling.
    if (outcome.status().IsUnavailable()) r.latency = network_->rpc_timeout();
    return r;
  }
  r.latency += outcome->write.latency;
  r.code = LdapResultCode::kSuccess;
  return r;
}

LdapResult UdrNf::DoModify(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  location::ResolveResult loc = Locate(*identity, poa_site);
  r.latency += loc.cost;
  if (!loc.status.ok()) {
    r.code = StatusToLdapCode(loc.status);
    r.diagnostic = loc.status.message();
    return r;
  }
  WriteBuilder wb;
  for (const ldap::Modification& mod : request.mods) {
    if (IsIdentityAttr(mod.attr)) {
      r.code = LdapResultCode::kUnwillingToPerform;
      r.diagnostic = "identity attributes are immutable; delete and re-add";
      return r;
    }
    switch (mod.type) {
      case ldap::ModType::kAdd:
      case ldap::ModType::kReplace:
        wb.Set(loc.entry.key, mod.attr, mod.value);
        break;
      case ldap::ModType::kDelete:
        wb.Remove(loc.entry.key, mod.attr);
        break;
    }
  }
  ReplicaSet* rs = partitions_[loc.entry.partition].get();
  replication::WriteResult write = rs->Write(poa_site, std::move(wb).Build());
  r.latency += write.latency;
  if (!write.status.ok()) {
    r.code = StatusToLdapCode(write.status);
    r.diagnostic = write.status.message();
    metrics_.Add("udr.modify.failed");
    return r;
  }
  r.code = LdapResultCode::kSuccess;
  metrics_.Add("udr.modify.ok");
  return r;
}

LdapResult UdrNf::DoDelete(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  location::ResolveResult loc = Locate(*identity, poa_site);
  r.latency += loc.cost;
  if (!loc.status.ok()) {
    r.code = StatusToLdapCode(loc.status);
    r.diagnostic = loc.status.message();
    return r;
  }
  Status st = DeleteSubscriber(*identity, poa_site);
  if (!st.ok()) {
    r.code = StatusToLdapCode(st);
    r.diagnostic = st.message();
    return r;
  }
  // Latency: one master read + one replicated delete, both at the partition.
  ReplicaSet* rs = partitions_[loc.entry.partition].get();
  (void)rs;
  r.latency += network_->topology().Rtt(poa_site,
                                        partitions_[loc.entry.partition]
                                            ->master_site()) +
               config_.se_template.write_service_time;
  r.code = LdapResultCode::kSuccess;
  return r;
}

LdapResult UdrNf::DoCompare(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  location::ResolveResult loc = Locate(*identity, poa_site);
  r.latency += loc.cost;
  if (!loc.status.ok()) {
    r.code = StatusToLdapCode(loc.status);
    r.diagnostic = loc.status.message();
    return r;
  }
  ReplicaSet* rs = partitions_[loc.entry.partition].get();
  replication::ReadResult read = rs->ReadAttribute(
      poa_site, loc.entry.key, request.compare_attr, ReadPrefFor(request));
  r.latency += read.latency;
  r.stale = read.stale;
  if (!read.status.ok()) {
    r.code = StatusToLdapCode(read.status);
    r.diagnostic = read.status.message();
    return r;
  }
  r.code = storage::ValueToString(*read.value) == request.compare_value
               ? LdapResultCode::kCompareTrue
               : LdapResultCode::kCompareFalse;
  return r;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void UdrNf::CatchUpAllPartitions() {
  for (auto& p : partitions_) p->CatchUpAll();
}

replication::RestorationReport UdrNf::RestoreAllPartitions() {
  replication::RestorationReport agg;
  for (auto& p : partitions_) {
    replication::RestorationReport r = p->RestoreConsistency();
    agg.divergent_entries += r.divergent_entries;
    agg.applied_ops += r.applied_ops;
    agg.conflicting_ops += r.conflicting_ops;
    agg.dropped_ops += r.dropped_ops;
    agg.manual_ops += r.manual_ops;
  }
  return agg;
}

}  // namespace udr::udrnf
