#include "udr/udr_nf.h"

#include <algorithm>
#include <cassert>

#include "ldap/filter.h"
#include "replication/write_builder.h"

namespace udr::udrnf {

using ldap::LdapBatchResult;
using ldap::LdapRequest;
using ldap::LdapResult;
using ldap::LdapResultCode;
using ldap::StatusToLdapCode;
using location::Identity;
using location::IdentityType;
using location::LocationEntry;
using replication::ReadPreference;
using replication::ReplicaSet;
using replication::WriteBuilder;
using routing::RouteResult;
using storage::Record;

namespace {

routing::PartitionMapConfig MapConfigFrom(const UdrConfig& config) {
  routing::PartitionMapConfig mc;
  mc.replication_factor = config.replication_factor;
  mc.partitions_per_se = config.partitions_per_se;
  mc.rebalance_weight = config.rebalance_weight;
  mc.replica_template.sync_mode = config.sync_mode;
  mc.replica_template.partition_mode = config.partition_mode;
  mc.replica_template.merge_policy = config.merge_policy;
  mc.replica_template.failover_detection = config.failover_detection;
  mc.replica_template.async_ship_delay = config.async_ship_delay;
  return mc;
}

}  // namespace

UdrNf::UdrNf(UdrConfig config, sim::Network* network)
    : config_(std::move(config)),
      network_(network),
      map_(MapConfigFrom(config_), network),
      router_(&map_, network, &metrics_),
      placement_(routing::MakePlacementPolicy(config_.placement)),
      bandwidth_model_(
          migration::BandwidthModelConfig{config_.migration_bandwidth_bps,
                                          config_.migration_chunk_bytes},
          &network->topology()),
      migration_(std::make_unique<migration::MigrationScheduler>(
          migration::MigrationSchedulerConfig{
              config_.migration_window_us,
              config_.migration_foreground_cost_bytes},
          &map_, &router_, &bandwidth_model_, network, &metrics_)) {
  migration_->set_rehome_executor(
      [this](const migration::MigrationTaskSpec& spec) {
        return RehomeOne(spec);
      });
  if (config_.placement == routing::PlacementKind::kHash &&
      config_.hash_routed_reads) {
    routing::HashBypassConfig bypass;
    bypass.enabled = true;
    bypass.identity_type = config_.hash_identity_type;
    bypass.lookup_cost = config_.location_model.hash_lookup;
    router_.SetHashBypass(bypass);
  }
  if (config_.heat_tracking || config_.poa_cache_bytes > 0 ||
      config_.heat_split_threshold > 0) {
    routing::HeatConfig heat;
    heat.track = true;
    heat.tracker.halflife_us = config_.heat_halflife_us;
    heat.tracker.top_k = config_.heat_top_k;
    heat.poa_cache_bytes = config_.poa_cache_bytes;
    heat.cache_hit_cost = config_.poa_cache_hit_cost;
    heat.cache_admit_min_count = config_.poa_cache_admit_min;
    router_.ConfigureHeat(heat);
  }
  if (config_.trace_sample_rate > 0) {
    obs::Tracer::Options topt;
    topt.sample_rate = config_.trace_sample_rate;
    topt.seed = config_.trace_seed;
    topt.max_spans = config_.trace_max_spans > 0
                         ? static_cast<size_t>(config_.trace_max_spans)
                         : 0;
    topt.lane = config_.trace_lane;
    tracer_ = std::make_unique<obs::Tracer>(topt, network_->clock());
    router_.set_tracer(tracer_.get());
    migration_->set_tracer(tracer_.get());
  }
  if (config_.flight_recorder_capacity > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        static_cast<size_t>(config_.flight_recorder_capacity));
    router_.set_flight_recorder(flight_.get());
    migration_->set_flight_recorder(flight_.get());
  }
  if (config_.obs_sample_interval_us > 0) {
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        obs::TimeSeriesConfig{
            config_.obs_sample_interval_us,
            config_.obs_ring_capacity > 0
                ? static_cast<size_t>(config_.obs_ring_capacity)
                : 0},
        &metrics_, network_->clock());
    // Default series: the signals the ROADMAP control-plane loop consumes —
    // arrival/throughput rates for window sizing, queueing/batch quantiles
    // for the latency budget.
    sampler_->TrackCounter("router.routed");
    sampler_->TrackCounter("router.cache.hits");
    sampler_->TrackCounter("udr.batch.ops");
    sampler_->TrackCounter("coalescer.events");
    sampler_->TrackQuantile("router.batch.size", 50);
    sampler_->TrackQuantile("coalescer.queue_delay_us", 99);
  }
}

UdrNf::~UdrNf() = default;

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

std::unique_ptr<location::LocationStage> UdrNf::MakeLocationStage() {
  if (config_.location_kind == LocationKind::kProvisioned) {
    return std::make_unique<location::ProvisionedLocationStage>(
        config_.location_model);
  }
  return std::make_unique<location::CachedLocationStage>(
      [this](const Identity& id) { return router_.AuthoritativeLookup(id); },
      [this]() { return TotalStorageElements(); }, config_.location_model);
}

StatusOr<BladeCluster*> UdrNf::AddCluster(sim::SiteId site) {
  if (clusters_.size() >= kMaxClustersPerNf) {
    return Status::ResourceExhausted("UDR NF already at 256 blade clusters");
  }
  auto cluster = std::make_unique<BladeCluster>(
      static_cast<uint32_t>(clusters_.size()), site, network_->clock());

  // Build every fallible piece before registering anything with the routing
  // layer: an early return destroys the cluster, and the map must never be
  // left holding pointers into it.
  std::vector<storage::StorageElement*> new_ses;
  for (int i = 0; i < config_.se_per_cluster; ++i) {
    storage::StorageElementConfig se_cfg = config_.se_template;
    auto se = cluster->AddStorageElement(
        se_cfg, static_cast<uint32_t>(map_.se_count() + new_ses.size()));
    if (!se.ok()) return se.status();
    new_ses.push_back(*se);
  }
  for (int i = 0; i < config_.ldap_per_cluster; ++i) {
    auto server = cluster->AddLdapServer(config_.ldap_template, this);
    if (!server.ok()) return server.status();
  }
  for (storage::StorageElement* se : new_ses) {
    map_.RegisterStorageElement(se, cluster->id());
  }

  auto stage = MakeLocationStage();
  if (config_.location_kind == LocationKind::kProvisioned && !clusters_.empty()) {
    // §3.4.2: the new data location stage instance syncs its identity maps
    // from a peer; the new PoA cannot serve until the copy completes.
    auto* self = static_cast<location::ProvisionedLocationStage*>(stage.get());
    auto* peer = static_cast<location::ProvisionedLocationStage*>(
        clusters_.front()->location_stage());
    if (peer != nullptr) {
      MicroDuration window = self->BeginSyncFrom(*peer, Now());
      metrics_.Observe("scaleout.sync_window_us", window);
    }
  }
  cluster->SetLocationStage(std::move(stage));
  router_.RegisterPoa(cluster->id(), site, cluster->location_stage());

  // The PoA's cross-event dispatch window. With coalesce_window_us == 0 the
  // coalescer is a passthrough and the enqueue path short-circuits to
  // ProcessBatch, so deployments without the knob pay nothing.
  routing::CoalescerConfig cc;
  cc.window = config_.coalesce_window_us;
  cc.max_ops = config_.coalesce_max_ops > 0
                   ? static_cast<size_t>(config_.coalesce_max_ops)
                   : 0;
  cc.poa_site = site;
  coalescers_.push_back(std::make_unique<routing::Coalescer>(
      cc, &router_, network_->clock(), &metrics_));

  clusters_.push_back(std::move(cluster));
  return clusters_.back().get();
}

StatusOr<routing::RebalanceReport> UdrNf::Rebalance() {
  routing::RebalanceReport report;
  report.spread_before = map_.PrimarySpread();
  report.spread_after = report.spread_before;
  report.population_spread_before = map_.PopulationSpread();
  report.population_spread_after = report.population_spread_before;

  // Plan (unless a rebalance is already in flight — repeated calls drain the
  // existing delta instead of recomputing placement from scratch), then run
  // the primary moves to completion through the one migration scheduler.
  // Queued re-home tasks keep their throttle: the synchronous barrier is for
  // the rebalance delta only.
  StartMigration();
  const auto& tasks = migration_->tasks();
  std::vector<size_t> live;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].terminal() &&
        tasks[i].spec.kind == migration::TaskKind::kPrimaryMove) {
      live.push_back(i);
    }
  }
  migration_->DrainPrimaryMoves();

  for (size_t i : live) {
    const migration::MigrationTask& task = tasks[i];
    if (task.state == migration::TaskState::kFailed) {
      metrics_.Add("rebalance.failed");
      return task.error;
    }
    routing::PartitionMove move;
    move.partition = task.spec.partition;
    move.from_site =
        map_.se_info(static_cast<size_t>(task.spec.from_se)).se->site();
    move.to_site =
        map_.se_info(static_cast<size_t>(task.spec.to_se)).se->site();
    move.migration = task.report;
    report.entries_replayed += task.report.entries_replayed;
    report.bytes_moved += task.report.bytes_moved;
    report.duration += task.report.duration;
    report.moves.push_back(std::move(move));
  }
  report.spread_after = map_.PrimarySpread();
  report.population_spread_after = map_.PopulationSpread();

  metrics_.Add("rebalance.passes");
  metrics_.Add("rebalance.moves", static_cast<int64_t>(report.moves.size()));
  metrics_.Observe("rebalance.duration_us", report.duration);
  metrics_.Observe("rebalance.bytes_moved", report.bytes_moved);
  metrics_.Observe("rebalance.population_spread_after",
                   report.population_spread_after);
  return report;
}

migration::MigrationProgress UdrNf::StartMigration() {
  if (!migration_->RebalanceInFlight()) {
    migration::MigrationPlan plan =
        migration::MigrationPlanner::PlanRebalance(map_);
    if (!plan.empty()) {
      migration_->EnqueuePlan(plan);
      metrics_.Add("migration.plans");
      if (flight_ != nullptr) {
        flight_->Record(Now(), "migration", "plan.rebalance",
                        "tasks=" + std::to_string(plan.tasks.size()));
      }
    }
  }
  return migration_->Progress();
}

void UdrNf::PumpMigration() { migration_->Pump(); }

migration::MigrationProgress UdrNf::StartDecommission(int se_index) {
  migration::MigrationPlan plan =
      migration::MigrationPlanner::PlanDecommission(map_, se_index);
  if (!plan.empty()) {
    migration_->EnqueuePlan(plan);
    metrics_.Add("migration.decommission_plans");
    if (flight_ != nullptr) {
      flight_->Record(Now(), "migration", "plan.decommission",
                      "se=" + std::to_string(se_index) +
                          " tasks=" + std::to_string(plan.tasks.size()));
    }
  }
  return migration_->Progress();
}

void UdrNf::SetClusterServing(uint32_t cluster_id, bool serving) {
  if (cluster_id >= clusters_.size()) return;
  router_.SetPoaServing(cluster_id, serving);
  for (ldap::LdapServer* server : clusters_[cluster_id]->balancer().servers()) {
    server->set_healthy(serving);
  }
  metrics_.Add(serving ? "cluster.restored" : "cluster.drained");
  if (flight_ != nullptr) {
    flight_->Record(Now(), "cluster", serving ? "restored" : "drained",
                    "cluster=" + std::to_string(cluster_id));
  }
}

// ---------------------------------------------------------------------------
// Heat tier: runtime partition split / merge
// ---------------------------------------------------------------------------

StatusOr<uint32_t> UdrNf::StartSplit(uint32_t parent) {
  if (config_.placement != routing::PlacementKind::kHash) {
    // Splitting moves subscribers by ring arc; without hash placement
    // {partition, key} is not a function of the ring and nothing would move.
    return Status::FailedPrecondition(
        "runtime partition split requires hash placement");
  }
  UDR_ASSIGN_OR_RETURN(uint32_t sibling, map_.CommissionSplitSibling(parent));
  // The ring now names the sibling for half of the parent's arcs: every
  // PoA-cached record tagged with the parent's old resolution is suspect.
  router_.BumpPartitionEpoch(parent);
  heat_siblings_.push_back(HeatSibling{parent, sibling, Now()});
  ++runtime_splits_;
  metrics_.Add("udr.heat.splits");
  if (flight_ != nullptr) {
    flight_->Record(Now(), "heat", "split",
                    "parent=" + std::to_string(parent) +
                        " sibling=" + std::to_string(sibling));
  }

  migration::MigrationPlan plan = migration::MigrationPlanner::PlanSplit(
      router_, map_, config_.hash_identity_type, parent, sibling);
  if (!plan.empty()) {
    migration_->EnqueuePlan(plan);
    if (config_.migration_bandwidth_bps <= 0) migration_->DrainAll();
  }
  return sibling;
}

Status UdrNf::StartMerge(uint32_t sibling) {
  if (config_.placement != routing::PlacementKind::kHash) {
    return Status::FailedPrecondition(
        "runtime partition merge requires hash placement");
  }
  const int parent = map_.parent_of(sibling);
  UDR_RETURN_IF_ERROR(map_.BeginMerge(sibling));
  // Reads and writes route to the arc successors from this point on; cached
  // copies tagged with either side of the merge are suspect.
  router_.BumpPartitionEpoch(sibling);
  if (parent >= 0) router_.BumpPartitionEpoch(static_cast<uint32_t>(parent));
  metrics_.Add("udr.heat.merge_begun");
  if (flight_ != nullptr) {
    flight_->Record(Now(), "heat", "merge.begin",
                    "sibling=" + std::to_string(sibling) +
                        " parent=" + std::to_string(parent));
  }

  migration::MigrationPlan plan = migration::MigrationPlanner::PlanMerge(
      router_, map_, config_.hash_identity_type, sibling);
  if (!plan.empty()) {
    migration_->EnqueuePlan(plan);
    if (config_.migration_bandwidth_bps <= 0) migration_->DrainAll();
  }
  // Unthrottled drains empty the sibling inline; PumpHeat retires it then
  // (or later, once a throttled drain lands the last re-home).
  return Status::Ok();
}

void UdrNf::PumpHeat() {
  routing::HeatTracker* tracker = router_.heat_tracker();
  if (tracker == nullptr) return;

  // Phase out: a draining merge sibling retires once its population drained.
  for (auto it = heat_siblings_.begin(); it != heat_siblings_.end();) {
    if (map_.partition_draining(it->sibling) &&
        map_.population(it->sibling) == 0 &&
        map_.RetirePartition(it->sibling).ok()) {
      ++runtime_merges_;
      metrics_.Add("udr.heat.merges");
      if (flight_ != nullptr) {
        flight_->Record(Now(), "heat", "merge.retired",
                        "sibling=" + std::to_string(it->sibling));
      }
      it = heat_siblings_.erase(it);
      continue;
    }
    ++it;
  }

  const MicroTime now = Now();

  // Split: hottest live partition at or past the threshold.
  if (config_.heat_split_threshold > 0 &&
      runtime_splits_ < config_.heat_max_splits &&
      config_.placement == routing::PlacementKind::kHash) {
    int hottest = -1;
    double best = 0;
    for (uint32_t p = 0; p < map_.partition_count(); ++p) {
      if (map_.partition_retired(p) || map_.partition_draining(p)) continue;
      const double heat = tracker->PartitionHeat(p, now);
      if (heat >= config_.heat_split_threshold && heat > best) {
        best = heat;
        hottest = static_cast<int>(p);
      }
    }
    if (hottest >= 0) (void)StartSplit(static_cast<uint32_t>(hottest));
  }

  // Merge: cooled siblings past their cooldown, one batch per pump. The
  // migration queue must be idle so a sibling still receiving its split
  // half-slice is never judged cold on arrival.
  if (config_.heat_merge_threshold > 0 && !migration_->HasWork()) {
    const MicroDuration cooldown = config_.heat_split_cooldown_us > 0
                                       ? config_.heat_split_cooldown_us
                                       : 4 * config_.heat_halflife_us;
    std::vector<uint32_t> cold;
    for (const HeatSibling& sib : heat_siblings_) {
      if (map_.partition_draining(sib.sibling) ||
          map_.partition_retired(sib.sibling)) {
        continue;  // Already merging.
      }
      if (now - sib.split_at < cooldown) continue;
      if (tracker->PartitionHeat(sib.sibling, now) <
          config_.heat_merge_threshold) {
        cold.push_back(sib.sibling);
      }
    }
    for (uint32_t sibling : cold) (void)StartMerge(sibling);
  }
}

BladeCluster* UdrNf::ClusterAtSite(sim::SiteId site) {
  for (auto& c : clusters_) {
    if (c->site() == site) return c.get();
  }
  return nullptr;
}

int UdrNf::TotalStorageElements() const {
  int total = 0;
  for (const auto& c : clusters_) total += static_cast<int>(c->se_count());
  return total;
}

int64_t UdrNf::TotalLdapOpsPerSecond() const {
  int64_t total = 0;
  for (const auto& c : clusters_) total += c->LdapOpsPerSecond();
  return total;
}

int64_t UdrNf::TotalSubscriberCapacity(int64_t avg_record_bytes) const {
  int64_t total = 0;
  for (const auto& c : clusters_) {
    total += c->SubscriberCapacity(avg_record_bytes);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Identity helpers
// ---------------------------------------------------------------------------

bool UdrNf::IsIdentityAttr(const std::string& attr) {
  return IdentityTypeForAttr(attr).has_value();
}

std::optional<IdentityType> UdrNf::IdentityTypeForAttr(const std::string& attr) {
  if (attr == "imsi") return IdentityType::kImsi;
  if (attr == "msisdn") return IdentityType::kMsisdn;
  if (attr == "impu") return IdentityType::kImpu;
  if (attr == "impi") return IdentityType::kImpi;
  return std::nullopt;
}

std::vector<Identity> UdrNf::IdentitiesOfRecord(const Record& record) const {
  std::vector<Identity> out;
  for (const char* attr : {"imsi", "msisdn", "impi"}) {
    auto v = record.Get(attr);
    if (v.has_value()) {
      if (const auto* s = std::get_if<std::string>(&*v)) {
        out.push_back(Identity{*IdentityTypeForAttr(attr), *s});
      }
    }
  }
  auto impus = record.Get("impu");
  if (impus.has_value()) {
    if (const auto* xs = std::get_if<std::vector<std::string>>(&*impus)) {
      for (const auto& x : *xs) {
        out.push_back(Identity{IdentityType::kImpu, x});
      }
    } else if (const auto* s = std::get_if<std::string>(&*impus)) {
      out.push_back(Identity{IdentityType::kImpu, *s});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Subscriber administration
// ---------------------------------------------------------------------------

void UdrNf::Commission() {
  const size_t before = map_.partition_count();
  map_.Commission();
  if (config_.placement == routing::PlacementKind::kHash &&
      map_.partition_count() > before) {
    RehomeHashKeyed();
  }
}

void UdrNf::RehomeHashKeyed() {
  // The ring grew: ~K/N hash-keyed subscribers now hash to a new partition.
  // Each one becomes a re-home task through the migration scheduler; its
  // identity resolves through the location stage (bypass exception, added at
  // enqueue) for the whole migration window and goes back to the fast path
  // at cutover. Unthrottled deployments drain inline — the pre-subsystem
  // synchronous behavior; throttled ones drain through PumpMigration.
  migration::MigrationPlan plan = migration::MigrationPlanner::PlanRehome(
      router_, map_, config_.hash_identity_type);
  for (const Identity& id : plan.already_homed) {
    // The ring owner agrees with the provisioned location again (e.g. a
    // later ring change undid the split that once stranded this subscriber):
    // any bypass exception left from a failed re-home is obsolete and would
    // pin the slow path forever.
    router_.ClearBypassException(id);
  }
  if (plan.empty()) return;
  migration_->EnqueuePlan(plan);
  if (config_.migration_bandwidth_bps <= 0) migration_->DrainAll();
}

StatusOr<int64_t> UdrNf::RehomeOne(const migration::MigrationTaskSpec& spec) {
  // Revalidate against live state: the binding may have moved, vanished, or
  // been re-homed by a later ring change while the task sat in the queue.
  auto lookup = router_.AuthoritativeLookup(spec.identity);
  if (!lookup.ok()) return int64_t{0};  // Deleted meanwhile; nothing to move.
  const LocationEntry from_entry = *lookup;
  uint32_t owner = map_.PartitionOfIdentity(spec.identity);
  if (owner == from_entry.partition) return int64_t{0};  // Already homed.

  ReplicaSet* from = map_.partition(from_entry.partition);
  ReplicaSet* to = map_.partition(owner);
  auto record = from->ReadRecord(from->master_site(), from_entry.key,
                                 ReadPreference::kMasterOnly);
  replication::WriteResult write;
  if (record.ok()) {
    WriteBuilder put;
    put.PutRecord(from_entry.key, *record);
    write = to->Write(to->master_site(), std::move(put).Build());
  }
  if (!record.ok() || !write.status.ok()) {
    // The move failed; the old partition keeps the record and the binding,
    // and the enqueue-time bypass exception keeps routing this identity
    // through the location stage until a later ring change re-plans it.
    metrics_.Add("hash.rehome.failed");
    return record.ok() ? write.status : record.status();
  }
  // Partitions overlay a shared SE fleet (a runtime split sibling lands on
  // existing SEs), and each SE keeps ONE physical row per record key. A
  // replicated delete through the old partition would therefore race the new
  // partition's put on every SE hosting copies of BOTH sides, erasing the
  // row the move just landed once the delete stream applies. Remove the old
  // copies surgically instead, and only from SEs exclusive to the old
  // partition — on shared SEs the row simply changes owners (the
  // destination's replication stream overwrites it in place).
  for (uint32_t r = 0; r < from->replica_count(); ++r) {
    storage::StorageElement* se = from->replica_se(r);
    bool shared = false;
    for (uint32_t d = 0; d < to->replica_count(); ++d) {
      if (to->replica_se(d) == se) {
        shared = true;
        break;
      }
    }
    if (!shared) se->store().DeleteRecord(from_entry.key);
  }
  // The record changed homes: any PoA-cached copy carries the old partition
  // tag and must not serve another read.
  router_.InvalidateCached(from_entry.key);

  LocationEntry entry;
  entry.key = from_entry.key;
  entry.partition = owner;
  for (const Identity& sub_id : IdentitiesOfRecord(*record)) {
    router_.Bind(sub_id, entry);
  }
  router_.Bind(spec.identity, entry);
  map_.AddPopulation(from_entry.partition, -1);
  map_.AddPopulation(owner, 1);
  metrics_.Add("hash.rehome.moved");
  return record->ApproxBytes();
}

StatusOr<UdrNf::CreateOutcome> UdrNf::CreateSubscriber(const CreateSpec& spec,
                                                       sim::SiteId origin_site) {
  if (spec.identities.empty()) {
    return Status::InvalidArgument("subscription needs at least one identity");
  }
  for (const Identity& id : spec.identities) {
    if (router_.IsBound(id)) {
      return Status::AlreadyExists("identity " + id.ToString() +
                                   " already provisioned");
    }
  }
  Commission();
  routing::PlacementRequest preq;
  preq.home_site = spec.home_site;
  preq.identity = &spec.identities.front();

  // Hash placement keys the record by identity hash, making {partition, key}
  // a pure function of the hash identity — that is what lets the router's
  // location bypass resolve reads without the location stage. The hash
  // identity is the first identity of the configured bypass type, so bypass
  // routing and placement always agree.
  const bool hash_keyed = config_.placement == routing::PlacementKind::kHash;
  if (hash_keyed) {
    const Identity* hash_id = nullptr;
    for (const Identity& id : spec.identities) {
      if (id.type != config_.hash_identity_type) continue;
      if (hash_id != nullptr) {
        // Two identities of the bypass type would each hash-route to their
        // own ring position while only one can key the record — bypassed
        // reads on the other would miss. Keep the placement function total.
        return Status::InvalidArgument(
            "hash placement allows one " +
            std::string(location::IdentityTypeName(
                config_.hash_identity_type)) +
            " per subscription");
      }
      hash_id = &id;
    }
    if (hash_id != nullptr) preq.identity = hash_id;
  }
  UDR_ASSIGN_OR_RETURN(uint32_t pidx, placement_->PickPartition(map_, preq));
  ReplicaSet* rs = map_.partition(pidx);

  // Capacity admission on the primary copy's storage element. (All copies
  // grow by the same amount; admission uses the primary.)
  int64_t bytes = spec.profile.ApproxBytes();
  UDR_RETURN_IF_ERROR(map_.primary_se(pidx)->CheckCapacity(bytes));

  storage::RecordKey key =
      hash_keyed ? location::HashIdentity(*preq.identity) : next_key_++;
  WriteBuilder wb;
  wb.PutRecord(key, spec.profile);
  replication::WriteResult write = rs->Write(origin_site, std::move(wb).Build());
  if (!write.status.ok()) {
    metrics_.Add("udr.create.rejected");
    return write.status;
  }

  // Defensive vs delete-recreate: a cached copy of a previous tenant of this
  // key must not outlive its re-creation.
  router_.InvalidateCached(key);

  LocationEntry entry;
  entry.key = key;
  entry.partition = pidx;
  for (const Identity& id : spec.identities) {
    router_.Bind(id, entry);
  }
  map_.AddPopulation(pidx, 1);
  ++subscriber_count_;
  metrics_.Add("udr.create.ok");

  CreateOutcome out;
  out.entry = entry;
  out.write = write;
  return out;
}

Status UdrNf::DeleteSubscriber(const Identity& id, sim::SiteId origin_site) {
  UDR_ASSIGN_OR_RETURN(LocationEntry entry, router_.AuthoritativeLookup(id));
  ReplicaSet* rs = map_.partition(entry.partition);
  auto record = rs->ReadRecord(origin_site, entry.key,
                               ReadPreference::kMasterOnly, nullptr);
  if (!record.ok()) return record.status();

  WriteBuilder wb;
  wb.Delete(entry.key);
  replication::WriteResult write = rs->Write(origin_site, std::move(wb).Build());
  if (!write.status.ok()) return write.status;
  router_.InvalidateCached(entry.key);

  // Unbind drops every identity's bypass exception too, so a subscriber that
  // landed on the exception list during a failed re-home does not leak an
  // entry past its own deletion.
  for (const Identity& sub_id : IdentitiesOfRecord(*record)) {
    router_.Unbind(sub_id);
  }
  router_.Unbind(id);  // Defensive: DN identity may not appear in attrs.
  map_.AddPopulation(entry.partition, -1);
  --subscriber_count_;
  metrics_.Add("udr.delete.ok");
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// LDAP front door
// ---------------------------------------------------------------------------

LdapResult UdrNf::Submit(const LdapRequest& request, sim::SiteId client_site) {
  auto poa = router_.FindPoaCluster(client_site);
  if (!poa.ok()) {
    LdapResult r;
    r.code = LdapResultCode::kUnavailable;
    r.diagnostic = poa.status().message();
    r.latency = network_->rpc_timeout();
    metrics_.Add("udr.submit.unavailable");
    return r;
  }
  BladeCluster* cluster = clusters_[*poa].get();
  LdapResult result = cluster->balancer().Serve(request, cluster->site());
  // Client <-> PoA leg (LAN when the client is co-located, §3.3.2 measure 1).
  result.latency += network_->topology().Rtt(client_site, cluster->site()) +
                    network_->topology().HopOverhead();
  metrics_.Add(result.ok() ? "udr.submit.ok" : "udr.submit.failed");
  return result;
}

StatusOr<Identity> UdrNf::RequestIdentity(const LdapRequest& request) const {
  // Base-object operations name the subscriber in the DN leaf.
  if (!request.dn.empty()) {
    const ldap::Rdn& leaf = request.dn.leaf();
    auto type = IdentityTypeForAttr(leaf.attr);
    if (type.has_value()) {
      return Identity{*type, leaf.value};
    }
  }
  // Single-level searches under ou=subscribers use an equality filter on an
  // identity attribute (the SLF-style lookup pattern).
  if (request.op == ldap::LdapOp::kSearch &&
      request.scope == ldap::SearchScope::kSingleLevel) {
    auto filter = ldap::Filter::Parse(request.filter);
    if (filter.ok() && filter->kind() == ldap::Filter::Kind::kEquality) {
      auto type = IdentityTypeForAttr(filter->attr());
      if (type.has_value()) {
        return Identity{*type, filter->value()};
      }
    }
  }
  return Status::InvalidArgument(
      "request does not address a subscriber identity (dn=" +
      request.dn.ToString() + ")");
}

ReadPreference UdrNf::ReadPrefFor(const LdapRequest& request) const {
  if (request.master_only || !config_.fe_slave_reads) {
    return ReadPreference::kMasterOnly;
  }
  return ReadPreference::kNearest;
}

LdapResult UdrNf::Process(const LdapRequest& request, uint32_t poa_site) {
  migration_->OnForegroundOps(1);
  auto dispatch = [&]() -> LdapResult {
    switch (request.op) {
      case ldap::LdapOp::kSearch:
        return DoSearch(request, poa_site);
      case ldap::LdapOp::kAdd:
        return DoAdd(request, poa_site);
      case ldap::LdapOp::kModify:
        return DoModify(request, poa_site);
      case ldap::LdapOp::kDelete:
        return DoDelete(request, poa_site);
      case ldap::LdapOp::kCompare:
        return DoCompare(request, poa_site);
    }
    LdapResult r;
    r.code = LdapResultCode::kProtocolError;
    r.diagnostic = "unsupported operation";
    return r;
  };
  LdapResult result = dispatch();
  // Root "event" span for the single-op path, spanning the op's whole
  // modelled latency — unbatched deployments trace their signaling events
  // too (the batched path opens its root in ProcessBatch instead).
  if (tracer_ != nullptr) {
    const obs::TraceContext trace = tracer_->StartTrace();
    if (trace.active()) {
      tracer_->RecordSpan("event", trace, Now(), Now() + result.latency);
    }
  }
  return result;
}

LdapResult UdrNf::SearchResultFor(const LdapRequest& request,
                                  const storage::Record& record) const {
  LdapResult r;
  auto filter = ldap::Filter::Parse(request.filter);
  if (!filter.ok()) {
    r.code = LdapResultCode::kProtocolError;
    r.diagnostic = filter.status().message();
    return r;
  }
  bool matches = filter->kind() == ldap::Filter::Kind::kPresence &&
                         filter->attr() == "objectclass"
                     ? true
                     : filter->Matches(record);
  if (matches) {
    ldap::SearchEntry entry;
    entry.dn = request.dn;
    if (request.requested_attrs.empty()) {
      entry.record = record;
    } else {
      for (const std::string& attr : request.requested_attrs) {
        const storage::Attribute* a = record.Find(attr);
        if (a != nullptr) {
          entry.record.Set(attr, a->value, a->modified_at, a->writer);
        }
      }
    }
    r.entries.push_back(std::move(entry));
  }
  r.code = LdapResultCode::kSuccess;
  return r;
}

LdapResult UdrNf::DoSearch(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  RouteResult route =
      router_.Route(*identity, poa_site, routing::RouteIntent::kRead);
  r.latency += route.resolve_cost;
  if (!route.status.ok()) {
    r.code = StatusToLdapCode(route.status);
    r.diagnostic = route.status.message();
    return r;
  }
  replication::ReadResult meta;
  auto record =
      route.rs->ReadRecord(poa_site, route.key, ReadPrefFor(request), &meta);
  if (!record.ok()) {
    r.latency += meta.latency;
    r.stale = meta.stale;
    r.code = StatusToLdapCode(record.status());
    r.diagnostic = record.status().message();
    return r;
  }
  MicroDuration resolve_and_read = r.latency + meta.latency;
  r = SearchResultFor(request, *record);
  r.latency += resolve_and_read;
  r.stale = meta.stale;
  if (r.ok()) metrics_.Add("udr.search.ok");
  return r;
}

LdapResult UdrNf::DoAdd(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  if (request.dn.empty() || !IsIdentityAttr(request.dn.leaf().attr)) {
    r.code = LdapResultCode::kUnwillingToPerform;
    r.diagnostic = "Add must target an identity-keyed subscriber DN";
    return r;
  }
  CreateSpec spec;
  spec.profile = request.add_entry;
  // The DN leaf identity plus any identity attributes in the entry.
  spec.identities.push_back(Identity{
      *IdentityTypeForAttr(request.dn.leaf().attr), request.dn.leaf().value});
  for (const Identity& id : IdentitiesOfRecord(request.add_entry)) {
    if (!(id == spec.identities.front())) spec.identities.push_back(id);
  }
  auto home = request.add_entry.Get("homesite");
  if (home.has_value()) {
    if (const auto* v = std::get_if<int64_t>(&*home)) {
      spec.home_site = static_cast<sim::SiteId>(*v);
    }
  }
  auto outcome = CreateSubscriber(spec, poa_site);
  if (!outcome.ok()) {
    r.code = StatusToLdapCode(outcome.status());
    r.diagnostic = outcome.status().message();
    r.latency += network_->rpc_timeout() / 100;  // Admission-failure handling.
    if (outcome.status().IsUnavailable()) r.latency = network_->rpc_timeout();
    return r;
  }
  r.latency += outcome->write.latency;
  r.code = LdapResultCode::kSuccess;
  return r;
}

StatusOr<std::vector<routing::Mutation>> UdrNf::MutationsFrom(
    const LdapRequest& request) const {
  std::vector<routing::Mutation> muts;
  muts.reserve(request.mods.size());
  for (const ldap::Modification& mod : request.mods) {
    if (IsIdentityAttr(mod.attr)) {
      return Status::FailedPrecondition(
          "identity attributes are immutable; delete and re-add");
    }
    routing::Mutation m;
    switch (mod.type) {
      case ldap::ModType::kAdd:
      case ldap::ModType::kReplace:
        m.kind = routing::Mutation::Kind::kSet;
        m.attr = mod.attr;
        m.value = mod.value;
        break;
      case ldap::ModType::kDelete:
        m.kind = routing::Mutation::Kind::kRemove;
        m.attr = mod.attr;
        break;
    }
    muts.push_back(std::move(m));
  }
  return muts;
}

LdapResult UdrNf::DoModify(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  auto muts = MutationsFrom(request);
  if (!muts.ok()) {
    r.code = StatusToLdapCode(muts.status());
    r.diagnostic = muts.status().message();
    return r;
  }
  RouteResult route = router_.Route(*identity, poa_site);
  r.latency += route.resolve_cost;
  if (!route.status.ok()) {
    r.code = StatusToLdapCode(route.status);
    r.diagnostic = route.status.message();
    return r;
  }
  WriteBuilder wb;
  for (const routing::Mutation& m : *muts) {
    switch (m.kind) {
      case routing::Mutation::Kind::kSet:
        wb.Set(route.key, m.attr, m.value);
        break;
      case routing::Mutation::Kind::kRemove:
        wb.Remove(route.key, m.attr);
        break;
      case routing::Mutation::Kind::kDeleteRecord:
        wb.Delete(route.key);
        break;
    }
  }
  replication::WriteResult write =
      route.rs->Write(poa_site, std::move(wb).Build());
  r.latency += write.latency;
  if (!write.status.ok()) {
    r.code = StatusToLdapCode(write.status);
    r.diagnostic = write.status.message();
    metrics_.Add("udr.modify.failed");
    return r;
  }
  // Same synchronous invalidation the batched write path does in its flush:
  // a committed write must never leave a stale PoA-cached copy behind.
  router_.InvalidateCached(route.key);
  r.code = LdapResultCode::kSuccess;
  metrics_.Add("udr.modify.ok");
  return r;
}

LdapResult UdrNf::DoDelete(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  RouteResult route = router_.Route(*identity, poa_site);
  r.latency += route.resolve_cost;
  if (!route.status.ok()) {
    r.code = StatusToLdapCode(route.status);
    r.diagnostic = route.status.message();
    return r;
  }
  Status st = DeleteSubscriber(*identity, poa_site);
  if (!st.ok()) {
    r.code = StatusToLdapCode(st);
    r.diagnostic = st.message();
    return r;
  }
  // Latency: one master read + one replicated delete, both at the partition.
  r.latency += network_->topology().Rtt(poa_site, route.rs->master_site()) +
               config_.se_template.write_service_time;
  r.code = LdapResultCode::kSuccess;
  return r;
}

LdapResult UdrNf::DoCompare(const LdapRequest& request, uint32_t poa_site) {
  LdapResult r;
  auto identity = RequestIdentity(request);
  if (!identity.ok()) {
    r.code = StatusToLdapCode(identity.status());
    r.diagnostic = identity.status().message();
    return r;
  }
  RouteResult route =
      router_.Route(*identity, poa_site, routing::RouteIntent::kRead);
  r.latency += route.resolve_cost;
  if (!route.status.ok()) {
    r.code = StatusToLdapCode(route.status);
    r.diagnostic = route.status.message();
    return r;
  }
  replication::ReadResult read = route.rs->ReadAttribute(
      poa_site, route.key, request.compare_attr, ReadPrefFor(request));
  r.latency += read.latency;
  r.stale = read.stale;
  if (!read.status.ok()) {
    r.code = StatusToLdapCode(read.status);
    r.diagnostic = read.status.message();
    return r;
  }
  r.code = storage::ValueToString(*read.value) == request.compare_value
               ? LdapResultCode::kCompareTrue
               : LdapResultCode::kCompareFalse;
  return r;
}

// ---------------------------------------------------------------------------
// Batched data path (multi-op LDAP messages)
// ---------------------------------------------------------------------------

StatusOr<routing::Operation> UdrNf::OperationFrom(
    const LdapRequest& request) const {
  UDR_ASSIGN_OR_RETURN(Identity identity, RequestIdentity(request));
  switch (request.op) {
    case ldap::LdapOp::kSearch:
      return routing::Operation::ReadRecord(std::move(identity),
                                            ReadPrefFor(request));
    case ldap::LdapOp::kCompare:
      return routing::Operation::ReadAttribute(
          std::move(identity), request.compare_attr, ReadPrefFor(request));
    case ldap::LdapOp::kModify: {
      UDR_ASSIGN_OR_RETURN(std::vector<routing::Mutation> muts,
                           MutationsFrom(request));
      return routing::Operation::Write(std::move(identity), std::move(muts));
    }
    default:
      return Status::Unimplemented(
          std::string(ldap::LdapOpName(request.op)) +
          " does not ride the batch pipeline");
  }
}

LdapResult UdrNf::ResultFromOutcome(const LdapRequest& request,
                                    const routing::OpOutcome& outcome) {
  LdapResult r;
  r.latency = outcome.latency;
  r.stale = outcome.stale;
  if (!outcome.ok()) {
    if (request.op == ldap::LdapOp::kModify) metrics_.Add("udr.modify.failed");
    r.code = StatusToLdapCode(outcome.status);
    r.diagnostic = outcome.status.message();
    return r;
  }
  switch (request.op) {
    case ldap::LdapOp::kSearch: {
      if (!outcome.record.has_value()) {
        r.code = LdapResultCode::kNoSuchObject;
        r.diagnostic = "record missing from batch outcome";
        return r;
      }
      MicroDuration latency = r.latency;
      r = SearchResultFor(request, *outcome.record);
      r.latency = latency;
      r.stale = outcome.stale;
      if (r.ok()) metrics_.Add("udr.search.ok");
      return r;
    }
    case ldap::LdapOp::kCompare:
      r.code = outcome.value.has_value() &&
                       storage::ValueToString(*outcome.value) ==
                           request.compare_value
                   ? LdapResultCode::kCompareTrue
                   : LdapResultCode::kCompareFalse;
      return r;
    case ldap::LdapOp::kModify:
      r.code = LdapResultCode::kSuccess;
      metrics_.Add("udr.modify.ok");
      return r;
    default:
      r.code = LdapResultCode::kOperationsError;
      r.diagnostic = "unbatchable op in batch outcome";
      return r;
  }
}

ldap::LdapResult UdrNf::FinishBatchedDelete(const Identity& id,
                                            const routing::OpOutcome& read,
                                            const routing::OpOutcome& write) {
  LdapResult r;
  r.latency = read.latency + write.latency;
  if (!read.ok()) {
    r.code = StatusToLdapCode(read.status);
    r.diagnostic = read.status.message();
    return r;
  }
  if (!write.ok()) {
    r.code = StatusToLdapCode(write.status);
    r.diagnostic = write.status.message();
    return r;
  }
  // Same bookkeeping as DeleteSubscriber; Unbind also drops any bypass
  // exception each identity held, so delete churn cannot leak entries.
  for (const Identity& sub_id : IdentitiesOfRecord(*read.record)) {
    router_.Unbind(sub_id);
  }
  router_.Unbind(id);
  map_.AddPopulation(write.partition, -1);
  --subscriber_count_;
  metrics_.Add("udr.delete.ok");
  r.code = LdapResultCode::kSuccess;
  return r;
}

template <typename InlineExec>
UdrNf::RequestSlot UdrNf::SlotFor(const LdapRequest& request,
                                  routing::BatchRequest* batch,
                                  InlineExec&& inline_exec) {
  RequestSlot slot;
  switch (request.op) {
    case ldap::LdapOp::kSearch:
    case ldap::LdapOp::kCompare:
    case ldap::LdapOp::kModify: {
      auto op = OperationFrom(request);
      if (!op.ok()) {
        slot.inline_result.code = StatusToLdapCode(op.status());
        slot.inline_result.diagnostic = op.status().message();
        return slot;
      }
      slot.kind = RequestSlot::Kind::kPipeline;
      slot.op = batch->size();
      batch->Add(*std::move(op));
      return slot;
    }
    case ldap::LdapOp::kDelete: {
      auto identity = RequestIdentity(request);
      if (!identity.ok()) {
        slot.inline_result.code = StatusToLdapCode(identity.status());
        slot.inline_result.diagnostic = identity.status().message();
        return slot;
      }
      // A Delete rides the grouped windows as a master-only whole-record
      // read (existence check + the identity set to unbind) followed by a
      // delete-record write; per-key order makes the read observe the
      // record exactly as a solo DeleteSubscriber would.
      slot.kind = RequestSlot::Kind::kDelete;
      slot.identity = *identity;
      slot.op = batch->size();
      batch->Add(routing::Operation::ReadRecord(*identity,
                                                ReadPreference::kMasterOnly));
      slot.write_op = batch->size();
      batch->Add(routing::Operation::Write(
          *std::move(identity),
          {{routing::Mutation::Kind::kDeleteRecord, "", storage::Value{}}}));
      return slot;
    }
    default:
      // Add (and anything unknown) carries placement side effects the
      // pipeline does not model; the caller decides when it executes.
      slot.inline_result = inline_exec(request);
      return slot;
  }
}

ldap::LdapBatchResult UdrNf::ProcessBatch(
    const std::vector<LdapRequest>& requests, uint32_t poa_site) {
  ldap::LdapBatchResult out;
  out.results.resize(requests.size());

  // One trace per signaling event; the root "event" span covers the whole
  // modelled latency and the pipeline spans hang off it.
  const MicroTime event_start = Now();
  routing::BatchRequest batch;
  obs::Span event_span;
  if (tracer_ != nullptr) {
    event_span = tracer_->StartSpan("event", tracer_->StartTrace());
    batch.trace = event_span.context();
  }
  std::vector<std::pair<size_t, RequestSlot>> slots;  // request idx -> slot.
  int64_t pipeline_requests = 0;  // Inline ops count via Process() instead.
  auto flush = [&]() {
    if (batch.empty()) return;
    routing::BatchResult br = router_.RouteBatch(batch, poa_site);
    out.latency += br.latency;
    out.partition_groups += br.partition_groups;
    out.bypass_hits += br.bypass_hits;
    for (auto& [idx, slot] : slots) {
      out.results[idx] =
          slot.kind == RequestSlot::Kind::kDelete
              ? FinishBatchedDelete(slot.identity, br.outcomes[slot.op],
                                    br.outcomes[slot.write_op])
              : ResultFromOutcome(requests[idx], br.outcomes[slot.op]);
    }
    batch.ops.clear();
    slots.clear();
  };

  for (size_t i = 0; i < requests.size(); ++i) {
    bool executed_inline = false;
    RequestSlot slot = SlotFor(requests[i], &batch,
                               [&](const LdapRequest& req) {
                                 // Flush the pending run so per-key order
                                 // holds, then execute in place.
                                 flush();
                                 executed_inline = true;
                                 return Process(req, poa_site);
                               });
    if (slot.kind == RequestSlot::Kind::kInline) {
      if (executed_inline) out.latency += slot.inline_result.latency;
      out.results[i] = std::move(slot.inline_result);
    } else {
      ++pipeline_requests;
      slots.emplace_back(i, std::move(slot));
    }
  }
  flush();
  event_span.EndAt(event_start + out.latency);

  metrics_.Add("udr.batch.count");
  metrics_.Add("udr.batch.ops", static_cast<int64_t>(requests.size()));
  if (!out.ok()) metrics_.Add("udr.batch.failed_ops", out.failed_ops());
  // Priority coupling: foreground ops displace migration budget from the
  // scheduler's pacing window (no-op unless the knob is configured).
  migration_->OnForegroundOps(pipeline_requests);
  return out;
}

// ---------------------------------------------------------------------------
// Cross-event coalescing (PoA dispatch window)
// ---------------------------------------------------------------------------

uint64_t UdrNf::EnqueueBatch(const std::vector<LdapRequest>& requests,
                             uint32_t poa_site) {
  const uint64_t handle = NextEnqueueHandle();
  BladeCluster* cluster = ClusterAtSite(poa_site);
  if (config_.coalesce_window_us <= 0 || cluster == nullptr) {
    // Coalescing off: the enqueue path degenerates to the inline pipeline,
    // byte-identical to ProcessBatch (the PR 2 behavior).
    ready_events_.emplace(handle, ProcessBatch(requests, poa_site));
    return handle;
  }

  routing::Coalescer& window = *coalescers_[cluster->id()];
  for (const LdapRequest& req : requests) {
    if (req.op == ldap::LdapOp::kAdd) {
      // An Add cannot wait in the window (its placement/binding side effects
      // must not be reordered against parked ops on the same keys), and its
      // event's internal order must hold too. Close the window — everything
      // that arrived earlier dispatches first, preserving arrival order —
      // then run the whole event inline, exactly as serial execution would.
      window.FlushNow();
      DrainCoalescer(cluster->id());
      metrics_.Add("udr.event.inline_add");
      ready_events_.emplace(handle, ProcessBatch(requests, poa_site));
      return handle;
    }
  }

  PendingEvent event;
  event.cluster = cluster->id();
  event.requests = requests;
  routing::BatchRequest batch;
  event.slots.reserve(requests.size());
  for (const LdapRequest& req : requests) {
    event.slots.push_back(SlotFor(req, &batch, [&](const LdapRequest& r) {
      // Unreachable for Add (handled above); anything else landing here is
      // an unsupported verb whose error resolves at enqueue.
      LdapResult res = Process(r, poa_site);
      event.inline_latency += res.latency;
      return res;
    }));
  }

  if (batch.empty()) {
    // Every request resolved inline; the event never enters the window.
    LdapBatchResult out;
    out.results.reserve(event.slots.size());
    for (RequestSlot& slot : event.slots) {
      out.results.push_back(std::move(slot.inline_result));
    }
    out.latency = event.inline_latency;
    ready_events_.emplace(handle, std::move(out));
    return handle;
  }

  // A parked event carries its own trace into the window: the coalescer
  // records its park wait and hangs the shared flush's pipeline spans off
  // the first sampled trace of the window.
  if (tracer_ != nullptr) batch.trace = tracer_->StartTrace();
  event.event = window.Submit(std::move(batch));
  pending_events_.emplace(handle, std::move(event));
  metrics_.Add("udr.event.enqueued");
  // Drain only when the submit itself closed the window (size cap hit) —
  // the common parked submit leaves nothing to take.
  if (!window.HasPending()) DrainCoalescer(cluster->id());
  return handle;
}

std::optional<ldap::LdapBatchResult> UdrNf::TakeBatchResult(uint64_t handle) {
  auto it = ready_events_.find(handle);
  if (it == ready_events_.end()) return std::nullopt;
  LdapBatchResult out = std::move(it->second);
  ready_events_.erase(it);
  return out;
}

ldap::LdapBatchResult UdrNf::FinalizeEvent(PendingEvent& event,
                                           routing::EventOutcome& outcome) {
  LdapBatchResult out;
  out.results.resize(event.requests.size());
  for (size_t i = 0; i < event.slots.size(); ++i) {
    RequestSlot& slot = event.slots[i];
    switch (slot.kind) {
      case RequestSlot::Kind::kInline:
        out.results[i] = std::move(slot.inline_result);
        break;
      case RequestSlot::Kind::kPipeline:
        out.results[i] =
            ResultFromOutcome(event.requests[i], outcome.outcomes[slot.op]);
        break;
      case RequestSlot::Kind::kDelete:
        out.results[i] =
            FinishBatchedDelete(slot.identity, outcome.outcomes[slot.op],
                                outcome.outcomes[slot.write_op]);
        break;
    }
  }
  // Latency split: time parked in the window is reported apart from the
  // shared dispatch's service share (plus any enqueue-time inline work).
  out.queue_delay = outcome.queue_delay;
  out.latency = event.inline_latency + outcome.queue_delay +
                outcome.service_latency;
  out.partition_groups = outcome.partition_groups;
  out.bypass_hits = outcome.bypass_hits;
  out.coalesced_events = outcome.coalesced_events;
  metrics_.Add("udr.batch.count");
  metrics_.Add("udr.batch.ops", static_cast<int64_t>(event.requests.size()));
  if (!out.ok()) metrics_.Add("udr.batch.failed_ops", out.failed_ops());
  int64_t pipeline_requests = 0;  // Inline ops counted via Process() already.
  for (const RequestSlot& slot : event.slots) {
    if (slot.kind != RequestSlot::Kind::kInline) ++pipeline_requests;
  }
  migration_->OnForegroundOps(pipeline_requests);
  return out;
}

void UdrNf::DrainCoalescer(uint32_t cluster_id) {
  routing::Coalescer& window = *coalescers_[cluster_id];
  for (auto it = pending_events_.begin(); it != pending_events_.end();) {
    if (it->second.cluster != cluster_id) {
      ++it;
      continue;
    }
    auto outcome = window.Take(it->second.event);
    if (!outcome.has_value()) {
      ++it;
      continue;
    }
    ready_events_.emplace(it->first, FinalizeEvent(it->second, *outcome));
    it = pending_events_.erase(it);
  }
}

StatusOr<uint64_t> UdrNf::SubmitEvent(const std::vector<LdapRequest>& requests,
                                      sim::SiteId client_site) {
  auto poa = router_.FindPoaCluster(client_site);
  if (!poa.ok()) {
    metrics_.Add("udr.submit.unavailable");
    return poa.status();
  }
  BladeCluster* cluster = clusters_[*poa].get();
  auto handle = cluster->balancer().EnqueueBatch(requests, cluster->site());
  if (!handle.ok()) {
    metrics_.Add("udr.submit.unavailable");
    return handle.status();
  }
  event_clients_.emplace(*handle, std::make_pair(client_site, cluster->id()));
  return *handle;
}

void UdrNf::PumpEvents() {
  for (uint32_t c = 0; c < coalescers_.size(); ++c) {
    if (coalescers_[c]->FlushIfDue()) DrainCoalescer(c);
  }
  // One sim loop drives all the background primitives: the PoA dispatch
  // windows, the migration scheduler, the heat-tier control loop, and the
  // time-series sampler's tick.
  PumpMigration();
  PumpHeat();
  if (sampler_ != nullptr) sampler_->MaybeSample();
}

void UdrNf::FlushEvents() {
  for (uint32_t c = 0; c < coalescers_.size(); ++c) {
    coalescers_[c]->FlushNow();
    DrainCoalescer(c);
  }
}

MicroTime UdrNf::NextEventDeadline() const {
  MicroTime next = kTimeInfinity;
  for (const auto& window : coalescers_) {
    next = std::min(next, window->deadline());
  }
  return next;
}

std::optional<ldap::LdapBatchResult> UdrNf::TakeEvent(uint64_t handle) {
  auto it = event_clients_.find(handle);
  if (it == event_clients_.end()) return std::nullopt;
  BladeCluster* cluster = clusters_[it->second.second].get();
  auto result = cluster->balancer().TakeBatch(handle);
  if (!result.has_value()) return std::nullopt;
  // One client <-> PoA round trip for the whole event, as on SubmitBatch.
  result->latency +=
      network_->topology().Rtt(it->second.first, cluster->site()) +
      network_->topology().HopOverhead();
  metrics_.Add(result->ok() ? "udr.submit.ok" : "udr.submit.failed");
  event_clients_.erase(it);
  return result;
}

LdapBatchResult UdrNf::SubmitBatch(const std::vector<LdapRequest>& requests,
                                   sim::SiteId client_site) {
  auto poa = router_.FindPoaCluster(client_site);
  if (!poa.ok()) {
    LdapBatchResult out;
    out.results.resize(requests.size());
    for (LdapResult& r : out.results) {
      r.code = LdapResultCode::kUnavailable;
      r.diagnostic = poa.status().message();
    }
    out.latency = network_->rpc_timeout();
    metrics_.Add("udr.submit.unavailable");
    return out;
  }
  BladeCluster* cluster = clusters_[*poa].get();
  LdapBatchResult result =
      cluster->balancer().ServeBatch(requests, cluster->site());
  // One client <-> PoA round trip for the whole multi-op message — the
  // per-request transit the batch saves over Submit-per-op.
  result.latency += network_->topology().Rtt(client_site, cluster->site()) +
                    network_->topology().HopOverhead();
  metrics_.Add(result.ok() ? "udr.submit.ok" : "udr.submit.failed");
  return result;
}

}  // namespace udr::udrnf
