// UdrNf: the complete User Data Repository network function (paper §2.3).
//
// Composition — a layered data path:
//   * blade clusters at geographic sites (scale-out unit), each with storage
//     elements, stateless LDAP servers behind an L4 balancer (the PoA), and
//     a data location stage instance;
//   * routing::PartitionMap — partition -> replica-set assignment,
//     commissioning, population accounting and live rebalancing;
//   * routing::PlacementPolicy — where a new subscription's primary copy
//     goes (least-loaded, round-robin, hash, selective/home-site §3.5);
//   * routing::Router — PoA selection, identity resolution and the hop to
//     the owning replication::ReplicaSet;
//   * the northbound LDAP interface (UDC-mandated), implemented by this
//     class as an ldap::LdapBackend over the router.
//
// UdrNf itself is deployment orchestration (AddCluster / Rebalance /
// maintenance fan-out) plus the LDAP verb adapter; all placement and
// partition-selection logic lives in src/routing/.

#ifndef UDR_UDR_UDR_NF_H_
#define UDR_UDR_UDR_NF_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "ldap/message.h"
#include "location/identity.h"
#include "location/location_stage.h"
#include "replication/replica_set.h"
#include "routing/partition_map.h"
#include "routing/placement_policy.h"
#include "routing/router.h"
#include "sim/network.h"
#include "udr/blade_cluster.h"

namespace udr::udrnf {

/// Which data location stage realization the NF deploys (§3.5).
enum class LocationKind { kProvisioned, kCached };

/// NF-wide configuration.
struct UdrConfig {
  /// Copies per partition (1 primary + N-1 geographically disperse
  /// secondaries; the paper uses 2-3).
  int replication_factor = 3;
  replication::SyncMode sync_mode = replication::SyncMode::kAsync;
  replication::PartitionMode partition_mode =
      replication::PartitionMode::kPreferConsistency;
  replication::MergePolicy merge_policy = replication::MergePolicy::kFieldMergeLww;
  MicroDuration failover_detection = Seconds(5);
  /// Async log-shipper batching window (see ReplicaSetConfig).
  MicroDuration async_ship_delay = 0;
  /// §3.3.2 decision 2: front-end reads may be served by slave copies.
  bool fe_slave_reads = true;
  LocationKind location_kind = LocationKind::kProvisioned;
  int se_per_cluster = 2;
  int ldap_per_cluster = 2;
  /// Partitions commissioned per storage element; > 1 gives the rebalancer
  /// finer-grained migration units on scale-out.
  int partitions_per_se = 1;
  /// What Rebalance() balances: primary-copy count (default) or primary-
  /// hosted subscriber population per storage element.
  routing::RebalanceWeight rebalance_weight =
      routing::RebalanceWeight::kPrimaryCount;
  /// Fallback placement policy under selective placement. kHash disables the
  /// selective wrapper (§3.5: hashing cannot honor a home site) and keys
  /// records by identity hash, enabling the router's location bypass.
  routing::PlacementKind placement = routing::PlacementKind::kLeastLoaded;
  /// Under kHash placement: let reads skip the location stage via the
  /// router's hash bypass (ROADMAP: hash-routed reads).
  bool hash_routed_reads = true;
  /// Identity type hash placement keys records by (and the only type the
  /// bypass may route — any other type would hash onto the wrong ring).
  location::IdentityType hash_identity_type = location::IdentityType::kImsi;
  storage::StorageElementConfig se_template;
  ldap::LdapServerConfig ldap_template;
  location::LocationCostModel location_model;
};

/// The UDR network function.
class UdrNf : public ldap::LdapBackend {
 public:
  UdrNf(UdrConfig config, sim::Network* network);
  ~UdrNf() override;

  const UdrConfig& config() const { return config_; }
  sim::Network* network() const { return network_; }
  MicroTime Now() const { return network_->Now(); }
  Metrics& metrics() { return metrics_; }

  routing::PartitionMap& partition_map() { return map_; }
  routing::Router& router() { return router_; }

  // -- Deployment / scale-out (§3.4) -------------------------------------------

  /// Deploys a new blade cluster at `site` with the configured number of SEs
  /// and LDAP servers. For the provisioned location stage, scale-out incurs
  /// the identity-map sync window of §3.4.2 during which the new PoA cannot
  /// serve.
  StatusOr<BladeCluster*> AddCluster(sim::SiteId site);

  /// Creates replica sets until every storage element primary-hosts the
  /// configured number of partitions. Called lazily by CreateSubscriber;
  /// call explicitly after initial deployment for deterministic layouts.
  /// Under hash placement a grown ring re-homes the ~K/N subscribers whose
  /// ring owner changed, keeping the location bypass correct.
  void CommissionPartitions() { Commission(); }

  /// Live rebalancing after scale-out: migrates primary copies onto
  /// under-loaded storage elements (per-SE primary-count spread <= 1) via
  /// the commit-log resync machinery. No acknowledged write is lost.
  StatusOr<routing::RebalanceReport> Rebalance();

  size_t cluster_count() const { return clusters_.size(); }
  BladeCluster* cluster(uint32_t id) { return clusters_[id].get(); }
  /// Cluster whose PoA serves `site`, nullptr when none is deployed there.
  BladeCluster* ClusterAtSite(sim::SiteId site);

  size_t partition_count() const { return map_.partition_count(); }
  replication::ReplicaSet* partition(uint32_t id) { return map_.partition(id); }

  int TotalStorageElements() const;
  int64_t TotalLdapOpsPerSecond() const;
  int64_t TotalSubscriberCapacity(int64_t avg_record_bytes) const;
  int64_t SubscriberCount() const { return subscriber_count_; }

  // -- Client entry point --------------------------------------------------------

  /// Submits an LDAP request from a client at `client_site`: routes to the
  /// nearest reachable PoA, through its balancer and a stateless LDAP
  /// server, into the data path. The returned latency covers the whole
  /// client-observed path.
  ldap::LdapResult Submit(const ldap::LdapRequest& request,
                          sim::SiteId client_site);

  /// Submits a multi-op request (one signaling event's LDAP ops) as a single
  /// northbound message: one client<->PoA round trip, then the staged batch
  /// pipeline (resolve all, group by partition, grouped dispatch).
  ldap::LdapBatchResult SubmitBatch(const std::vector<ldap::LdapRequest>& requests,
                                    sim::SiteId client_site);

  // -- ldap::LdapBackend ----------------------------------------------------------

  /// Request semantics, entered at the PoA of `poa_site`.
  ldap::LdapResult Process(const ldap::LdapRequest& request,
                           uint32_t poa_site) override;

  /// Multi-op request semantics: batchable verbs (search, compare, modify)
  /// ride the routing::Router::RouteBatch pipeline; Add/Delete flush the
  /// pending run and execute per-op in place, preserving request order.
  ldap::LdapBatchResult ProcessBatch(const std::vector<ldap::LdapRequest>& requests,
                                     uint32_t poa_site) override;

  // -- Internal administration -----------------------------------------------------

  /// Specification of a new subscription.
  struct CreateSpec {
    std::vector<location::Identity> identities;
    storage::Record profile;
    /// Selective placement: pin the primary copy to this site (§3.5).
    std::optional<sim::SiteId> home_site;
  };
  struct CreateOutcome {
    location::LocationEntry entry;
    replication::WriteResult write;
  };

  /// Creates a subscription: places the record via the placement policy,
  /// writes the profile through the replication layer and provisions the
  /// identity-location maps.
  StatusOr<CreateOutcome> CreateSubscriber(const CreateSpec& spec,
                                           sim::SiteId origin_site);

  /// Removes a subscription and all its identity bindings.
  Status DeleteSubscriber(const location::Identity& id, sim::SiteId origin_site);

  /// Resolves an identity at the location stage local to `poa_site`
  /// (§3.3.1 decision 1: resolution never leaves the PoA).
  location::ResolveResult Locate(const location::Identity& id,
                                 sim::SiteId poa_site) {
    return router_.ResolveAt(id, poa_site);
  }

  /// Authoritative identity lookup (what a broadcast over all SEs returns).
  StatusOr<location::LocationEntry> AuthoritativeLookup(
      const location::Identity& id) const {
    return router_.AuthoritativeLookup(id);
  }

  // -- Maintenance ------------------------------------------------------------------

  /// Lets every slave copy apply all deliverable replication entries.
  void CatchUpAllPartitions() { map_.CatchUpAll(); }

  /// Runs the §5 consistency-restoration process on every partition,
  /// aggregating the merge report.
  replication::RestorationReport RestoreAllPartitions() {
    return map_.RestoreAll();
  }

 private:
  static bool IsIdentityAttr(const std::string& attr);
  static std::optional<location::IdentityType> IdentityTypeForAttr(
      const std::string& attr);

  std::vector<location::Identity> IdentitiesOfRecord(
      const storage::Record& record) const;
  std::unique_ptr<location::LocationStage> MakeLocationStage();

  /// Commission() plus, under PlacementKind::kHash, re-homing of every
  /// subscriber whose ring owner changed when new partitions joined — the
  /// consistent-hashing data migration that keeps {partition, key} a pure
  /// function of the identity (and so the location bypass correct).
  void Commission();
  void RehomeHashKeyed();

  ldap::LdapResult DoSearch(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoAdd(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoModify(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoDelete(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoCompare(const ldap::LdapRequest& request, uint32_t poa_site);

  /// Resolves the identity named by a request's DN (or filter) at the PoA.
  StatusOr<location::Identity> RequestIdentity(
      const ldap::LdapRequest& request) const;

  replication::ReadPreference ReadPrefFor(const ldap::LdapRequest& request) const;

  /// Filter match + attribute projection over a fetched record (the verb
  /// semantics of Search after the data path returned the record). Latency
  /// and staleness are the caller's to fill.
  ldap::LdapResult SearchResultFor(const ldap::LdapRequest& request,
                                   const storage::Record& record) const;

  /// Translates a Modify request into pipeline mutations; FailedPrecondition
  /// when it touches an immutable identity attribute.
  StatusOr<std::vector<routing::Mutation>> MutationsFrom(
      const ldap::LdapRequest& request) const;

  /// Translates one batchable request into a pipeline operation.
  StatusOr<routing::Operation> OperationFrom(
      const ldap::LdapRequest& request) const;

  /// Maps one pipeline outcome back onto the request's LDAP result,
  /// keeping the per-verb metrics in parity with the per-op path.
  ldap::LdapResult ResultFromOutcome(const ldap::LdapRequest& request,
                                     const routing::OpOutcome& outcome);

  UdrConfig config_;
  sim::Network* network_;
  Metrics metrics_;

  routing::PartitionMap map_;
  routing::Router router_;
  std::unique_ptr<routing::PlacementPolicy> placement_;

  std::vector<std::unique_ptr<BladeCluster>> clusters_;
  storage::RecordKey next_key_ = 1;
  int64_t subscriber_count_ = 0;
};

}  // namespace udr::udrnf

#endif  // UDR_UDR_UDR_NF_H_
