// UdrNf: the complete User Data Repository network function (paper §2.3).
//
// Composition — a layered data path:
//   * blade clusters at geographic sites (scale-out unit), each with storage
//     elements, stateless LDAP servers behind an L4 balancer (the PoA), and
//     a data location stage instance;
//   * routing::PartitionMap — partition -> replica-set assignment,
//     commissioning, population accounting and live rebalancing;
//   * routing::PlacementPolicy — where a new subscription's primary copy
//     goes (least-loaded, round-robin, hash, selective/home-site §3.5);
//   * routing::Router — PoA selection, identity resolution and the hop to
//     the owning replication::ReplicaSet;
//   * the northbound LDAP interface (UDC-mandated), implemented by this
//     class as an ldap::LdapBackend over the router.
//
// UdrNf itself is deployment orchestration (AddCluster / Rebalance /
// maintenance fan-out) plus the LDAP verb adapter; all placement and
// partition-selection logic lives in src/routing/.

#ifndef UDR_UDR_UDR_NF_H_
#define UDR_UDR_UDR_NF_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "ldap/message.h"
#include "location/identity.h"
#include "location/location_stage.h"
#include "migration/bandwidth_model.h"
#include "migration/planner.h"
#include "migration/scheduler.h"
#include "obs/flight_recorder.h"
#include "obs/time_series.h"
#include "obs/trace.h"
#include "replication/replica_set.h"
#include "routing/coalescer.h"
#include "routing/partition_map.h"
#include "routing/placement_policy.h"
#include "routing/router.h"
#include "sim/network.h"
#include "udr/blade_cluster.h"

namespace udr::udrnf {

/// Which data location stage realization the NF deploys (§3.5).
enum class LocationKind { kProvisioned, kCached };

/// NF-wide configuration.
struct UdrConfig {
  /// Copies per partition (1 primary + N-1 geographically disperse
  /// secondaries; the paper uses 2-3).
  int replication_factor = 3;
  replication::SyncMode sync_mode = replication::SyncMode::kAsync;
  replication::PartitionMode partition_mode =
      replication::PartitionMode::kPreferConsistency;
  replication::MergePolicy merge_policy = replication::MergePolicy::kFieldMergeLww;
  MicroDuration failover_detection = Seconds(5);
  /// Async log-shipper batching window (see ReplicaSetConfig).
  MicroDuration async_ship_delay = 0;
  /// §3.3.2 decision 2: front-end reads may be served by slave copies.
  bool fe_slave_reads = true;
  LocationKind location_kind = LocationKind::kProvisioned;
  int se_per_cluster = 2;
  int ldap_per_cluster = 2;
  /// Partitions commissioned per storage element; > 1 gives the rebalancer
  /// finer-grained migration units on scale-out.
  int partitions_per_se = 1;
  /// What Rebalance() balances: primary-copy count (default) or primary-
  /// hosted subscriber population per storage element.
  routing::RebalanceWeight rebalance_weight =
      routing::RebalanceWeight::kPrimaryCount;
  /// Fallback placement policy under selective placement. kHash disables the
  /// selective wrapper (§3.5: hashing cannot honor a home site) and keys
  /// records by identity hash, enabling the router's location bypass.
  routing::PlacementKind placement = routing::PlacementKind::kLeastLoaded;
  /// Under kHash placement: let reads skip the location stage via the
  /// router's hash bypass (ROADMAP: hash-routed reads).
  bool hash_routed_reads = true;
  /// Identity type hash placement keys records by (and the only type the
  /// bypass may route — any other type would hash onto the wrong ring).
  location::IdentityType hash_identity_type = location::IdentityType::kImsi;
  /// Cross-event coalescing at the PoA: events enqueued via SubmitEvent are
  /// parked in a per-cluster dispatch window and flushed as ONE grouped
  /// pipeline batch when this window elapses on the sim clock (or the size
  /// cap below fills). 0 = disabled: enqueued events execute immediately,
  /// byte-identical to the inline SubmitBatch path.
  MicroDuration coalesce_window_us = 0;
  /// Closes an open window early once this many ops are parked across the
  /// in-flight events (0 = deadline-only close).
  int coalesce_max_ops = 0;
  /// Background migration: cap on migration traffic per SE-pair link,
  /// bytes/second. 0 = unthrottled — every planned move (scale-out
  /// rebalance, weighted rebalance, hash re-homing) drains inline, the
  /// pre-subsystem behavior. > 0 turns those moves into background tasks
  /// paced by the migration scheduler's token bucket and drained by
  /// PumpMigration / PumpEvents.
  int64_t migration_bandwidth_bps = 0;
  /// Transfer unit of the background scheduler: a migration step ships at
  /// most this many bytes before yielding to foreground traffic.
  int64_t migration_chunk_bytes = 64 * 1024;
  /// Token-bucket burst window of the migration scheduler (the bucket holds
  /// at most one window's worth of bytes at the effective link rate).
  MicroDuration migration_window_us = Millis(1);
  /// Priority knob: each foreground operation displaces this many bytes of
  /// migration budget from the window, so foreground load shrinks
  /// background throughput (0 = no displacement).
  int64_t migration_foreground_cost_bytes = 0;
  /// Heat tier: sample every routed access into the router's per-partition
  /// EWMA rates and top-K hot-key sketch. Enabled implicitly by any heat
  /// consumer below (PoA cache, split threshold).
  bool heat_tracking = false;
  /// EWMA half-life of the partition heat signal: a partition's heat halves
  /// after this much idle sim time.
  MicroDuration heat_halflife_us = Millis(500);
  /// Size of the space-saving hot-key sketch.
  int heat_top_k = 128;
  /// PoA read-through cache budget, bytes per PoA (0 = no cache). Serves
  /// kNearest reads PoA-locally; the write path invalidates synchronously,
  /// so read-your-writes is never violated.
  int64_t poa_cache_bytes = 0;
  /// Modelled service time of a PoA cache hit (replaces the whole partition
  /// round trip for that op).
  MicroDuration poa_cache_hit_cost = Micros(2);
  /// Admission filter: a key enters the cache only once the sketch has seen
  /// it at least this often, keeping one-shot scans from thrashing hot keys.
  int64_t poa_cache_admit_min = 4;
  /// Runtime split trigger: a live partition whose heat reaches this splits
  /// into itself + a sibling claiming half of each of its ring arcs
  /// (0 = never split). Requires hash placement.
  double heat_split_threshold = 0.0;
  /// Runtime merge trigger: a split sibling whose heat falls below this —
  /// after the cooldown — drains back to its ring successors and retires
  /// (0 = never merge).
  double heat_merge_threshold = 0.0;
  /// Cap on runtime splits per NF lifetime (bounds partition growth).
  int heat_max_splits = 4;
  /// Minimum sibling age before it is merge-eligible: a fresh sibling starts
  /// at heat zero and needs time to prove itself cold. 0 picks 4x the
  /// half-life.
  MicroDuration heat_split_cooldown_us = 0;
  // -- Observability (src/obs) -------------------------------------------------
  /// Fraction of signaling events traced end to end, in [0, 1]. The decision
  /// is a pure function of (trace_seed, trace id), so the same seed traces
  /// the same events on every replay. 0 = tracing off (no tracer allocated,
  /// zero data-path overhead).
  double trace_sample_rate = 0.0;
  uint64_t trace_seed = 42;
  /// Hard cap on retained spans (the excess is counted, not stored).
  int64_t trace_max_spans = 1 << 20;
  /// Perfetto lane (tid) of this NF's spans; the sharded execution mode sets
  /// it to the shard index so merged traces keep one row per shard.
  uint32_t trace_lane = 0;
  /// Time-series sampler tick: snapshot registered counters / histogram
  /// quantiles every this much sim time. 0 = sampler off.
  MicroDuration obs_sample_interval_us = 0;
  /// Points retained per sampled series.
  int obs_ring_capacity = 256;
  /// Control-plane events retained per component by the flight recorder
  /// (0 = recorder off).
  int flight_recorder_capacity = 256;
  storage::StorageElementConfig se_template;
  ldap::LdapServerConfig ldap_template;
  location::LocationCostModel location_model;
};

/// The UDR network function.
class UdrNf : public ldap::LdapBackend {
 public:
  UdrNf(UdrConfig config, sim::Network* network);
  ~UdrNf() override;

  const UdrConfig& config() const { return config_; }
  sim::Network* network() const { return network_; }
  MicroTime Now() const { return network_->Now(); }
  Metrics& metrics() { return metrics_; }

  routing::PartitionMap& partition_map() { return map_; }
  routing::Router& router() { return router_; }

  // -- Observability -----------------------------------------------------------

  /// The NF's tracer; nullptr when trace_sample_rate == 0.
  obs::Tracer* tracer() { return tracer_.get(); }
  /// The control-plane flight recorder; nullptr when its capacity is 0.
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }
  /// The time-series sampler; nullptr when obs_sample_interval_us == 0.
  obs::TimeSeriesSampler* sampler() { return sampler_.get(); }

  /// When the sampler's next tick is due (kTimeInfinity when off) — drivers
  /// advance the clock here like NextEventDeadline / NextMigrationDeadline.
  MicroTime NextObsSampleDue() const {
    return sampler_ != nullptr ? sampler_->NextSampleDue() : kTimeInfinity;
  }

  // -- Deployment / scale-out (§3.4) -------------------------------------------

  /// Deploys a new blade cluster at `site` with the configured number of SEs
  /// and LDAP servers. For the provisioned location stage, scale-out incurs
  /// the identity-map sync window of §3.4.2 during which the new PoA cannot
  /// serve.
  StatusOr<BladeCluster*> AddCluster(sim::SiteId site);

  /// Creates replica sets until every storage element primary-hosts the
  /// configured number of partitions. Called lazily by CreateSubscriber;
  /// call explicitly after initial deployment for deterministic layouts.
  /// Under hash placement a grown ring re-homes the ~K/N subscribers whose
  /// ring owner changed, keeping the location bypass correct.
  void CommissionPartitions() { Commission(); }

  /// Live rebalancing after scale-out: plans the primary-copy delta via the
  /// migration planner and drains it synchronously through the background
  /// scheduler (chunked copy -> catch-up -> atomic cutover per partition).
  /// No acknowledged write is lost. Idempotent: a rebalance already in
  /// flight is drained instead of re-planned, and a balanced map plans an
  /// empty delta.
  StatusOr<routing::RebalanceReport> Rebalance();

  // -- Background migration (src/migration) -------------------------------------

  /// Plans the current rebalancing delta and enqueues it for background,
  /// bandwidth-throttled execution (no-op when a rebalance is already in
  /// flight). The move proceeds as PumpMigration drains it; foreground
  /// traffic keeps flowing, protected by the bandwidth model. Returns the
  /// scheduler's progress snapshot after planning.
  migration::MigrationProgress StartMigration();

  /// Performs whatever migration steps the bandwidth budget affords at the
  /// current sim time. PumpEvents() calls this too, so one sim loop drives
  /// both the PoA dispatch windows and background migration.
  void PumpMigration();

  /// Decommissions one storage element's primary copies in ONE planner call:
  /// every partition it primary-hosts becomes a background migration task
  /// toward the least-loaded remaining SE (spread-aware). The drain proceeds
  /// as PumpMigration affords it — throttled under a bandwidth cap, inline
  /// when unthrottled — and no acknowledged write is lost at any cutover.
  /// The SE keeps its secondary copies (replica-membership changes are a
  /// follow-on). Returns the scheduler's progress snapshot after planning.
  migration::MigrationProgress StartDecommission(int se_index);

  /// Progress snapshot of the background migration scheduler.
  migration::MigrationProgress MigrationStatus() const {
    return migration_->Progress();
  }
  /// Any migration task still pending (copy, catch-up, or queued).
  bool MigrationActive() const { return migration_->HasWork(); }

  /// When the next migration chunk's byte budget matures (kTimeInfinity
  /// when idle; "now" when work is ready) — lets drivers advance the clock
  /// to exactly the next pacing step, like NextEventDeadline for windows.
  MicroTime NextMigrationDeadline() const { return migration_->NextDeadline(); }

  /// The background scheduler (introspection for tests and benches).
  migration::MigrationScheduler& migration_scheduler() { return *migration_; }

  // -- Heat tier (hot-key tracking, PoA cache, runtime split/merge) --------------

  /// One runtime split still alive: `sibling` was carved out of `parent`.
  struct HeatSibling {
    uint32_t parent = 0;
    uint32_t sibling = 0;
    MicroTime split_at = 0;  ///< When the split fired (cooldown anchor).
  };

  /// Splits `parent` at runtime: commissions a sibling partition claiming
  /// the midpoint half of each of the parent's ring arcs, bumps the parent's
  /// cache epoch, and enqueues the half-slice re-home plan through the
  /// throttled migration scheduler (drained inline when unthrottled). Only
  /// the parent's subscribers move; no acknowledged write is lost. Requires
  /// hash placement. Returns the sibling's partition id.
  StatusOr<uint32_t> StartSplit(uint32_t parent);

  /// Merges a runtime split sibling back: takes its points off the ring
  /// (reads/writes immediately route to the arc successors), bumps cache
  /// epochs, and drains its population to the new ring owners through the
  /// scheduler. The emptied sibling retires in PumpHeat (immediately when
  /// the drain ran inline).
  Status StartMerge(uint32_t sibling);

  /// Heat-tier control loop, called from PumpEvents: retires drained merge
  /// siblings, splits the hottest partition past the configured threshold,
  /// and merges cooled siblings past their cooldown.
  void PumpHeat();

  int runtime_splits() const { return runtime_splits_; }
  int runtime_merges() const { return runtime_merges_; }
  /// Runtime splits not yet merged away (introspection for tests/benches).
  const std::vector<HeatSibling>& heat_siblings() const {
    return heat_siblings_;
  }

  size_t cluster_count() const { return clusters_.size(); }
  BladeCluster* cluster(uint32_t id) { return clusters_[id].get(); }
  /// Cluster whose PoA serves `site`, nullptr when none is deployed there.
  BladeCluster* ClusterAtSite(sim::SiteId site);

  size_t partition_count() const { return map_.partition_count(); }
  replication::ReplicaSet* partition(uint32_t id) { return map_.partition(id); }

  int TotalStorageElements() const;
  int64_t TotalLdapOpsPerSecond() const;
  int64_t TotalSubscriberCapacity(int64_t avg_record_bytes) const;
  int64_t SubscriberCount() const { return subscriber_count_; }

  // -- Client entry point --------------------------------------------------------

  /// Submits an LDAP request from a client at `client_site`: routes to the
  /// nearest reachable PoA, through its balancer and a stateless LDAP
  /// server, into the data path. The returned latency covers the whole
  /// client-observed path.
  ldap::LdapResult Submit(const ldap::LdapRequest& request,
                          sim::SiteId client_site);

  /// Submits a multi-op request (one signaling event's LDAP ops) as a single
  /// northbound message: one client<->PoA round trip, then the staged batch
  /// pipeline (resolve all, group by partition, grouped dispatch).
  ldap::LdapBatchResult SubmitBatch(const std::vector<ldap::LdapRequest>& requests,
                                    sim::SiteId client_site);

  // -- Cross-event coalescing (PoA dispatch window) ------------------------------

  /// Enqueues one signaling event into the PoA's cross-event dispatch
  /// window: client -> balancer -> stateless server, then the event parks in
  /// the cluster's routing::Coalescer instead of executing inline. The
  /// result is collected with TakeEvent once the window flushes (PumpEvents
  /// when the sim clock passes the deadline, FlushEvents as a barrier). With
  /// `coalesce_window_us == 0` the event executes immediately and TakeEvent
  /// succeeds right away with a result identical to SubmitBatch.
  StatusOr<uint64_t> SubmitEvent(const std::vector<ldap::LdapRequest>& requests,
                                 sim::SiteId client_site);

  /// Flushes every PoA dispatch window whose sim-clock deadline has passed,
  /// completing the affected events. Drivers call this after advancing the
  /// clock.
  void PumpEvents();

  /// Closes all open windows now (end-of-run barrier).
  void FlushEvents();

  /// Earliest close deadline over all open PoA windows (kTimeInfinity when
  /// none is open) — lets drivers advance the clock to exactly the flush.
  MicroTime NextEventDeadline() const;

  /// Claims a completed event's result (client RTT included); nullopt while
  /// the event is still parked in its window.
  std::optional<ldap::LdapBatchResult> TakeEvent(uint64_t handle);

  /// The dispatch window of one cluster's PoA (introspection for tests and
  /// benches); nullptr for an unknown cluster.
  routing::Coalescer* coalescer(uint32_t cluster_id) {
    return cluster_id < coalescers_.size() ? coalescers_[cluster_id].get()
                                           : nullptr;
  }

  // -- ldap::LdapBackend ----------------------------------------------------------

  /// Request semantics, entered at the PoA of `poa_site`.
  ldap::LdapResult Process(const ldap::LdapRequest& request,
                           uint32_t poa_site) override;

  /// Multi-op request semantics: batchable verbs (search, compare, modify)
  /// ride the routing::Router::RouteBatch pipeline; Delete rides it too, as
  /// a master-only read plus a delete-record write sharing the grouped
  /// windows (population/bind bookkeeping applied from the outcomes); Add
  /// flushes the pending run and executes per-op in place, preserving
  /// request order.
  ldap::LdapBatchResult ProcessBatch(const std::vector<ldap::LdapRequest>& requests,
                                     uint32_t poa_site) override;

  /// Parks a multi-op request in this PoA's cross-event dispatch window
  /// (Adds and untranslatable requests resolve inline at enqueue time).
  /// With coalescing disabled this is ProcessBatch plus a stashed result.
  uint64_t EnqueueBatch(const std::vector<ldap::LdapRequest>& requests,
                        uint32_t poa_site) override;

  /// Claims a completed enqueued request; nullopt while its window is open.
  std::optional<ldap::LdapBatchResult> TakeBatchResult(uint64_t handle) override;

  // -- Internal administration -----------------------------------------------------

  /// Specification of a new subscription.
  struct CreateSpec {
    std::vector<location::Identity> identities;
    storage::Record profile;
    /// Selective placement: pin the primary copy to this site (§3.5).
    std::optional<sim::SiteId> home_site;
  };
  struct CreateOutcome {
    location::LocationEntry entry;
    replication::WriteResult write;
  };

  /// Creates a subscription: places the record via the placement policy,
  /// writes the profile through the replication layer and provisions the
  /// identity-location maps.
  StatusOr<CreateOutcome> CreateSubscriber(const CreateSpec& spec,
                                           sim::SiteId origin_site);

  /// Removes a subscription and all its identity bindings.
  Status DeleteSubscriber(const location::Identity& id, sim::SiteId origin_site);

  /// Resolves an identity at the location stage local to `poa_site`
  /// (§3.3.1 decision 1: resolution never leaves the PoA).
  location::ResolveResult Locate(const location::Identity& id,
                                 sim::SiteId poa_site) {
    return router_.ResolveAt(id, poa_site);
  }

  /// Authoritative identity lookup (what a broadcast over all SEs returns).
  StatusOr<location::LocationEntry> AuthoritativeLookup(
      const location::Identity& id) const {
    return router_.AuthoritativeLookup(id);
  }

  // -- Maintenance ------------------------------------------------------------------

  /// Takes a whole cluster's front end out of (or back into) service: its
  /// PoA leaves the router's client rotation and its LDAP farm goes
  /// unhealthy, so clients transparently fail over to the next-nearest PoA.
  /// Storage replica state is untouched — a full site loss pairs this with
  /// CrashReplica on every copy the cluster's SEs host (and the replica
  /// sets' own failover detection promotes surviving secondaries).
  void SetClusterServing(uint32_t cluster_id, bool serving);

  /// Lets every slave copy apply all deliverable replication entries.
  void CatchUpAllPartitions() { map_.CatchUpAll(); }

  /// Runs the §5 consistency-restoration process on every partition,
  /// aggregating the merge report.
  replication::RestorationReport RestoreAllPartitions() {
    return map_.RestoreAll();
  }

 private:
  static bool IsIdentityAttr(const std::string& attr);
  static std::optional<location::IdentityType> IdentityTypeForAttr(
      const std::string& attr);

  std::vector<location::Identity> IdentitiesOfRecord(
      const storage::Record& record) const;
  std::unique_ptr<location::LocationStage> MakeLocationStage();

  /// Commission() plus, under PlacementKind::kHash, re-homing of every
  /// subscriber whose ring owner changed when new partitions joined — the
  /// consistent-hashing data migration that keeps {partition, key} a pure
  /// function of the identity (and so the location bypass correct).
  /// Re-homes ride the migration scheduler: inline when unthrottled,
  /// as paced background tasks (each identity bypass-excepted for its
  /// migration window) when a bandwidth cap is configured.
  void Commission();
  void RehomeHashKeyed();

  /// Executes one re-home task for the scheduler: ships the record to its
  /// live ring owner, rebinds every identity, keeps population bookkeeping.
  /// Returns the bytes moved (0 when the binding vanished or already
  /// agrees — the task is then a successful no-op).
  StatusOr<int64_t> RehomeOne(const migration::MigrationTaskSpec& spec);

  ldap::LdapResult DoSearch(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoAdd(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoModify(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoDelete(const ldap::LdapRequest& request, uint32_t poa_site);
  ldap::LdapResult DoCompare(const ldap::LdapRequest& request, uint32_t poa_site);

  /// Resolves the identity named by a request's DN (or filter) at the PoA.
  StatusOr<location::Identity> RequestIdentity(
      const ldap::LdapRequest& request) const;

  replication::ReadPreference ReadPrefFor(const ldap::LdapRequest& request) const;

  /// Filter match + attribute projection over a fetched record (the verb
  /// semantics of Search after the data path returned the record). Latency
  /// and staleness are the caller's to fill.
  ldap::LdapResult SearchResultFor(const ldap::LdapRequest& request,
                                   const storage::Record& record) const;

  /// Translates a Modify request into pipeline mutations; FailedPrecondition
  /// when it touches an immutable identity attribute.
  StatusOr<std::vector<routing::Mutation>> MutationsFrom(
      const ldap::LdapRequest& request) const;

  /// Translates one batchable request into a pipeline operation.
  StatusOr<routing::Operation> OperationFrom(
      const ldap::LdapRequest& request) const;

  /// Maps one pipeline outcome back onto the request's LDAP result,
  /// keeping the per-verb metrics in parity with the per-op path.
  ldap::LdapResult ResultFromOutcome(const ldap::LdapRequest& request,
                                     const routing::OpOutcome& outcome);

  /// How one request of a multi-op event maps onto the pipeline batch.
  struct RequestSlot {
    enum class Kind {
      kPipeline,  ///< One batchable op at index `op`.
      kDelete,    ///< Master-only read at `op` + delete-record write at `write_op`.
      kInline,    ///< Resolved without the pipeline; result already final.
    };
    Kind kind = Kind::kInline;
    size_t op = 0;
    size_t write_op = 0;
    location::Identity identity;     ///< kDelete: DN identity to unbind.
    ldap::LdapResult inline_result;  ///< kInline.
  };

  /// Completes a pipeline-routed Delete from its two outcomes: maps failures
  /// per op and, on success, applies the same population/bind bookkeeping as
  /// DeleteSubscriber (unbind every identity, which also drops any bypass
  /// exception; decrement population and the subscriber count).
  ldap::LdapResult FinishBatchedDelete(const location::Identity& id,
                                       const routing::OpOutcome& read,
                                       const routing::OpOutcome& write);

  /// Translates one request of an event into a slot, appending pipeline ops
  /// to `batch`. Batchable verbs map 1:1; Delete maps to its read + write
  /// pair; anything else (or a translation failure) resolves inline via
  /// `inline_exec` — ProcessBatch uses it to flush-then-execute, the enqueue
  /// path to execute immediately.
  template <typename InlineExec>
  RequestSlot SlotFor(const ldap::LdapRequest& request,
                      routing::BatchRequest* batch, InlineExec&& inline_exec);

  /// One event parked in a cluster's dispatch window, waiting for its flush.
  struct PendingEvent {
    uint32_t cluster = 0;
    routing::EventId event = 0;
    std::vector<ldap::LdapRequest> requests;
    std::vector<RequestSlot> slots;    ///< 1:1 with `requests`.
    MicroDuration inline_latency = 0;  ///< Latency of enqueue-time inline ops.
  };

  /// Builds the LdapBatchResult of a flushed event from its demuxed outcome.
  ldap::LdapBatchResult FinalizeEvent(PendingEvent& event,
                                      routing::EventOutcome& outcome);

  /// Moves every completed event of one cluster's coalescer into the
  /// ready-result map.
  void DrainCoalescer(uint32_t cluster_id);

  UdrConfig config_;
  sim::Network* network_;
  Metrics metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;

  routing::PartitionMap map_;
  routing::Router router_;
  std::unique_ptr<routing::PlacementPolicy> placement_;
  migration::BandwidthModel bandwidth_model_;
  std::unique_ptr<migration::MigrationScheduler> migration_;

  std::vector<std::unique_ptr<BladeCluster>> clusters_;
  /// One cross-event dispatch window per cluster's PoA (1:1 with clusters_).
  std::vector<std::unique_ptr<routing::Coalescer>> coalescers_;
  /// Events parked in a window, keyed by enqueue handle.
  std::unordered_map<uint64_t, PendingEvent> pending_events_;
  /// Flushed events awaiting TakeBatchResult.
  std::unordered_map<uint64_t, ldap::LdapBatchResult> ready_events_;
  /// Client leg of each in-flight SubmitEvent: {client_site, cluster id}.
  std::unordered_map<uint64_t, std::pair<sim::SiteId, uint32_t>> event_clients_;
  storage::RecordKey next_key_ = 1;
  int64_t subscriber_count_ = 0;
  /// Live runtime splits, oldest first; StartMerge keeps the entry until the
  /// drained sibling actually retires.
  std::vector<HeatSibling> heat_siblings_;
  int runtime_splits_ = 0;
  int runtime_merges_ = 0;
};

}  // namespace udr::udrnf

#endif  // UDR_UDR_UDR_NF_H_
