#include "udr/blade_cluster.h"

namespace udr::udrnf {

StatusOr<storage::StorageElement*> BladeCluster::AddStorageElement(
    storage::StorageElementConfig config, uint32_t replica_id) {
  if (storage_elements_.size() >= kMaxStorageElementsPerCluster) {
    return Status::ResourceExhausted(
        "cluster " + std::to_string(id_) + " already hosts " +
        std::to_string(storage_elements_.size()) + " storage elements");
  }
  config.site = site_;
  if (config.name == "se") {
    config.name = "c" + std::to_string(id_) + "-se" +
                  std::to_string(storage_elements_.size());
  }
  storage_elements_.push_back(
      std::make_unique<storage::StorageElement>(std::move(config), clock_,
                                                replica_id));
  return storage_elements_.back().get();
}

StatusOr<ldap::LdapServer*> BladeCluster::AddLdapServer(
    ldap::LdapServerConfig config, ldap::LdapBackend* backend) {
  if (ldap_servers_.size() >= kMaxLdapServersPerCluster) {
    return Status::ResourceExhausted(
        "cluster " + std::to_string(id_) + " already hosts " +
        std::to_string(ldap_servers_.size()) + " LDAP servers");
  }
  config.site = site_;
  if (config.name == "ldap") {
    config.name = "c" + std::to_string(id_) + "-ldap" +
                  std::to_string(ldap_servers_.size());
  }
  ldap_servers_.push_back(
      std::make_unique<ldap::LdapServer>(std::move(config), backend));
  balancer_.AddServer(ldap_servers_.back().get());
  return ldap_servers_.back().get();
}

}  // namespace udr::udrnf
