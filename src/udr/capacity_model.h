// The paper's §3.5 capacity arithmetic as an explicit, testable model.
// All published figures derive from four primitives:
//   * a 2-blade SE holds 2e6 average-profile subscribers (200 GB RAM);
//   * <= 16 SE per blade cluster  =>  32e6 subscribers per cluster;
//   * <= 256 SE per UDR NF        =>  512e6 subscribers per NF;
//   * one LDAP server sustains 1e6 indexed ops/s; <= 32 per cluster and
//     <= 256 clusters  =>  36e6 ops/s per cluster is the paper's printed
//     figure (see note below) and 9,216e6 ops/s per NF;
//   * ratio: ~18 LDAP ops per subscriber per second.
//
// Note: 32 servers x 1e6 ops/s is 32e6; the paper prints 36e6 ops/s per
// cluster and 9,216e6 = 256 x 36e6 per NF, implying the authors budgeted
// 1.125e6 ops/s per server. Both interpretations are exposed here; the
// benches print the paper's figures next to the strict arithmetic.

#ifndef UDR_UDR_CAPACITY_MODEL_H_
#define UDR_UDR_CAPACITY_MODEL_H_

#include <cstdint>

namespace udr::udrnf {

/// Parameters of the §3.5 capacity model.
struct CapacityModel {
  int64_t se_ram_bytes = 200LL * 1000 * 1000 * 1000;  ///< 200 GB per SE.
  int64_t subscribers_per_se = 2'000'000;             ///< Tested figure.
  int se_per_cluster_limit = 16;
  int se_per_nf_limit = 256;
  int64_t ldap_ops_per_server = 1'000'000;            ///< Tested figure.
  int ldap_servers_per_cluster_limit = 32;
  int clusters_per_nf_limit = 256;

  /// Average RAM footprint per subscriber implied by the SE figures.
  int64_t BytesPerSubscriber() const {
    return se_ram_bytes / subscribers_per_se;
  }
  /// 16 SE/cluster x 2e6 = 32e6 subscribers per cluster.
  int64_t SubscribersPerCluster() const {
    return static_cast<int64_t>(se_per_cluster_limit) * subscribers_per_se;
  }
  /// 256 SE/NF x 2e6 = 512e6 subscribers per NF.
  int64_t SubscribersPerNf() const {
    return static_cast<int64_t>(se_per_nf_limit) * subscribers_per_se;
  }
  /// Strict arithmetic: 32 x 1e6 = 32e6 ops/s per cluster.
  int64_t LdapOpsPerClusterStrict() const {
    return static_cast<int64_t>(ldap_servers_per_cluster_limit) *
           ldap_ops_per_server;
  }
  /// The figure the paper prints for one cluster.
  int64_t LdapOpsPerClusterPaper() const { return 36'000'000; }
  /// The figure the paper prints for the whole NF (256 x 36e6).
  int64_t LdapOpsPerNfPaper() const { return 9'216'000'000; }
  /// Strict arithmetic for the whole NF.
  int64_t LdapOpsPerNfStrict() const {
    return static_cast<int64_t>(clusters_per_nf_limit) *
           LdapOpsPerClusterStrict();
  }
  /// ~18 ops per subscriber per second (paper, from 9,216e6 / 512e6).
  double OpsPerSubscriberPaper() const {
    return static_cast<double>(LdapOpsPerNfPaper()) /
           static_cast<double>(SubscribersPerNf());
  }
};

}  // namespace udr::udrnf

#endif  // UDR_UDR_CAPACITY_MODEL_H_
