// A blade cluster: the scale-up unit of the UDR NF (paper §3.4.1). Hosts up
// to 16 storage elements (RAM-hungry) and up to 32 stateless LDAP server
// processes (CPU-hungry), fronted by an L4 balancer that realizes the local
// Point of Access, plus one data location stage instance.

#ifndef UDR_UDR_BLADE_CLUSTER_H_
#define UDR_UDR_BLADE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ldap/server.h"
#include "location/location_stage.h"
#include "sim/clock.h"
#include "storage/storage_element.h"

namespace udr::udrnf {

/// Architectural limits from the paper's §3.5 calculations.
constexpr int kMaxStorageElementsPerCluster = 16;
constexpr int kMaxLdapServersPerCluster = 32;
constexpr int kMaxClustersPerNf = 256;

/// One blade cluster instance.
class BladeCluster {
 public:
  BladeCluster(uint32_t id, sim::SiteId site, sim::SimClock* clock)
      : id_(id), site_(site), clock_(clock), balancer_(site) {}

  uint32_t id() const { return id_; }
  sim::SiteId site() const { return site_; }

  /// Deploys a storage element to the cluster (limit: 16 per cluster).
  StatusOr<storage::StorageElement*> AddStorageElement(
      storage::StorageElementConfig config, uint32_t replica_id);

  /// Deploys an LDAP server process; the balancer auto-detects it.
  StatusOr<ldap::LdapServer*> AddLdapServer(ldap::LdapServerConfig config,
                                            ldap::LdapBackend* backend);

  /// Installs the cluster's data location stage instance.
  void SetLocationStage(std::unique_ptr<location::LocationStage> stage) {
    location_stage_ = std::move(stage);
  }
  location::LocationStage* location_stage() const {
    return location_stage_.get();
  }

  ldap::L4Balancer& balancer() { return balancer_; }
  const std::vector<std::unique_ptr<storage::StorageElement>>& storage_elements()
      const {
    return storage_elements_;
  }
  size_t se_count() const { return storage_elements_.size(); }
  size_t ldap_count() const { return ldap_servers_.size(); }

  /// Aggregate LDAP ops/s capacity of this cluster's healthy servers.
  int64_t LdapOpsPerSecond() const { return balancer_.OpsPerSecondCapacity(); }

  /// Aggregate subscriber capacity for a given average profile footprint.
  int64_t SubscriberCapacity(int64_t avg_record_bytes) const {
    int64_t total = 0;
    for (const auto& se : storage_elements_) {
      total += se->SubscriberCapacity(avg_record_bytes);
    }
    return total;
  }

 private:
  uint32_t id_;
  sim::SiteId site_;
  sim::SimClock* clock_;
  ldap::L4Balancer balancer_;
  std::vector<std::unique_ptr<storage::StorageElement>> storage_elements_;
  std::vector<std::unique_ptr<ldap::LdapServer>> ldap_servers_;
  std::unique_ptr<location::LocationStage> location_stage_;
};

}  // namespace udr::udrnf

#endif  // UDR_UDR_BLADE_CLUSTER_H_
