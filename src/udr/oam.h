// Operation and Maintenance (paper §2.4): a UDC network is operated through
// an OSS that offers the operator a consolidated view of all nodes. This
// module provides that view for the simulated UDR NF:
//   * inventory (clusters / SEs / LDAP servers / partitions / subscribers);
//   * a health scan that raises alarms for down replicas, degraded
//     redundancy, syncing location stages and drained PoAs;
//   * the availability KPI with the paper's footnote-4 semantics: the
//     99.999% figure is an AVERAGE over subscribers — one subscriber dark
//     for the whole window while 99,999 others are fine still averages
//     99.999%.

#ifndef UDR_UDR_OAM_H_
#define UDR_UDR_OAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "udr/udr_nf.h"

namespace udr::udrnf {

/// ITU-T style alarm severities.
enum class AlarmSeverity { kWarning, kMajor, kCritical };

const char* AlarmSeverityName(AlarmSeverity s);

/// One alarm raised by the OSS health scan.
struct Alarm {
  MicroTime raised_at = 0;
  AlarmSeverity severity = AlarmSeverity::kWarning;
  std::string source;  ///< Object the alarm is about ("partition-3", ...).
  std::string text;
};

/// Consolidated NF inventory.
struct Inventory {
  int clusters = 0;
  int storage_elements = 0;
  int ldap_servers = 0;
  int partitions = 0;
  int64_t subscribers = 0;
};

/// Per-subscriber availability sample set (footnote-4 averaging).
struct AvailabilityKpi {
  int64_t subscribers_sampled = 0;
  int64_t reachable = 0;

  double Availability() const {
    return subscribers_sampled == 0
               ? 1.0
               : static_cast<double>(reachable) /
                     static_cast<double>(subscribers_sampled);
  }
  /// The paper's requirement 3: >= 99.999% on average.
  bool MeetsFiveNines() const { return Availability() >= 0.99999; }
};

/// The Operations Support System view onto one UDR NF.
class OamSystem {
 public:
  explicit OamSystem(UdrNf* udr) : udr_(udr) {}

  /// Snapshot of deployed resources.
  Inventory GetInventory() const;

  /// Scans the NF and raises alarms for newly detected conditions; clears
  /// conditions that no longer hold. Returns the number of NEW alarms.
  int Scan();

  /// All alarms raised so far (history, including cleared conditions).
  const std::vector<Alarm>& alarm_history() const { return history_; }
  /// Currently active alarm conditions, keyed by source+text.
  const std::map<std::string, Alarm>& active_alarms() const { return active_; }

  /// Samples data availability: subscriber i counts as available when its
  /// data can be read right now from `serving_sites[i % size]` via any
  /// replica. This is the paper's R metric (requirement 3).
  AvailabilityKpi SampleAvailability(
      const std::vector<location::Identity>& identities,
      const std::vector<sim::SiteId>& serving_sites);

 private:
  void Raise(AlarmSeverity severity, const std::string& source,
             const std::string& text, std::map<std::string, Alarm>* next,
             int* new_alarms);

  UdrNf* udr_;
  std::map<std::string, Alarm> active_;
  std::vector<Alarm> history_;
};

}  // namespace udr::udrnf

#endif  // UDR_UDR_OAM_H_
