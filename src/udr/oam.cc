#include "udr/oam.h"

namespace udr::udrnf {

const char* AlarmSeverityName(AlarmSeverity s) {
  switch (s) {
    case AlarmSeverity::kWarning:
      return "WARNING";
    case AlarmSeverity::kMajor:
      return "MAJOR";
    case AlarmSeverity::kCritical:
      return "CRITICAL";
  }
  return "?";
}

Inventory OamSystem::GetInventory() const {
  Inventory inv;
  inv.clusters = static_cast<int>(udr_->cluster_count());
  inv.storage_elements = udr_->TotalStorageElements();
  for (size_t c = 0; c < udr_->cluster_count(); ++c) {
    inv.ldap_servers += static_cast<int>(udr_->cluster(
        static_cast<uint32_t>(c))->ldap_count());
  }
  inv.partitions = static_cast<int>(udr_->partition_count());
  inv.subscribers = udr_->SubscriberCount();
  return inv;
}

void OamSystem::Raise(AlarmSeverity severity, const std::string& source,
                      const std::string& text,
                      std::map<std::string, Alarm>* next, int* new_alarms) {
  std::string key = source + "|" + text;
  auto it = active_.find(key);
  if (it != active_.end()) {
    (*next)[key] = it->second;  // Condition persists; keep original alarm.
    return;
  }
  Alarm alarm;
  alarm.raised_at = udr_->Now();
  alarm.severity = severity;
  alarm.source = source;
  alarm.text = text;
  (*next)[key] = alarm;
  history_.push_back(alarm);
  ++*new_alarms;
}

int OamSystem::Scan() {
  int new_alarms = 0;
  std::map<std::string, Alarm> next;

  // Partition replica health.
  for (size_t p = 0; p < udr_->partition_count(); ++p) {
    auto* rs = udr_->partition(static_cast<uint32_t>(p));
    int down = 0;
    for (uint32_t r = 0; r < rs->replica_count(); ++r) {
      if (!rs->replica_up(r)) ++down;
    }
    std::string source = "partition-" + std::to_string(p);
    if (down > 0 && !rs->replica_up(rs->master_id())) {
      Raise(AlarmSeverity::kCritical, source,
            "master copy down, failover pending or in progress", &next,
            &new_alarms);
    } else if (static_cast<size_t>(down) >= rs->replica_count() - 1) {
      Raise(AlarmSeverity::kCritical, source,
            "redundancy exhausted: one copy left", &next, &new_alarms);
    } else if (down > 0) {
      Raise(AlarmSeverity::kMajor, source,
            std::to_string(down) + " replica(s) down, redundancy degraded",
            &next, &new_alarms);
    }
    if (rs->HasDivergence()) {
      Raise(AlarmSeverity::kMajor, source,
            "divergent writes pending consistency restoration", &next,
            &new_alarms);
    }
  }

  // PoA / LDAP farm health and location stage sync state.
  for (size_t c = 0; c < udr_->cluster_count(); ++c) {
    auto* cluster = udr_->cluster(static_cast<uint32_t>(c));
    std::string source = "cluster-" + std::to_string(c);
    if (cluster->ldap_count() > 0 && cluster->balancer().healthy_count() == 0) {
      Raise(AlarmSeverity::kCritical, source,
            "PoA drained: no healthy LDAP server", &next, &new_alarms);
    }
    auto* stage = cluster->location_stage();
    auto* provisioned =
        dynamic_cast<location::ProvisionedLocationStage*>(stage);
    if (provisioned != nullptr && provisioned->Syncing(udr_->Now())) {
      Raise(AlarmSeverity::kWarning, source,
            "location stage syncing identity maps (scale-out)", &next,
            &new_alarms);
    }
  }

  // Backbone partitions (the operator sees link state too).
  const auto& topo = udr_->network()->topology();
  for (sim::SiteId a = 0; a < topo.site_count(); ++a) {
    for (sim::SiteId b = a + 1; b < topo.site_count(); ++b) {
      if (!udr_->network()->Reachable(a, b)) {
        Raise(AlarmSeverity::kCritical,
              "link-" + topo.SiteName(a) + "-" + topo.SiteName(b),
              "backbone partition", &next, &new_alarms);
      }
    }
  }

  active_ = std::move(next);
  return new_alarms;
}

AvailabilityKpi OamSystem::SampleAvailability(
    const std::vector<location::Identity>& identities,
    const std::vector<sim::SiteId>& serving_sites) {
  AvailabilityKpi kpi;
  if (serving_sites.empty()) return kpi;
  for (size_t i = 0; i < identities.size(); ++i) {
    ++kpi.subscribers_sampled;
    sim::SiteId site = serving_sites[i % serving_sites.size()];
    auto loc = udr_->Locate(identities[i], site);
    if (!loc.status.ok()) continue;
    auto* rs = udr_->partition(loc.entry.partition);
    auto rec = rs->ReadRecord(site, loc.entry.key,
                              replication::ReadPreference::kNearest);
    if (rec.ok()) ++kpi.reachable;
  }
  return kpi;
}

}  // namespace udr::udrnf
