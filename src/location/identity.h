// Subscriber identities. The UDR must support one index per identity type
// (MSISDN, IMSI, IMPU, ... — paper §3.3.1/§3.5); an identity is the key a
// client presents, the data location stage turns it into a record location.

#ifndef UDR_LOCATION_IDENTITY_H_
#define UDR_LOCATION_IDENTITY_H_

#include <cstdint>
#include <functional>
#include <string>

namespace udr::location {

/// Identity spaces indexed by the UDR.
enum class IdentityType : uint8_t {
  kImsi = 0,    ///< E.212 International Mobile Subscriber Identity.
  kMsisdn = 1,  ///< E.164 directory number.
  kImpu = 2,    ///< IMS Public User Identity (SIP URI / tel URI).
  kImpi = 3,    ///< IMS Private User Identity.
};

constexpr int kIdentityTypeCount = 4;

/// Name of an identity type ("IMSI", "MSISDN", ...).
const char* IdentityTypeName(IdentityType type);

/// One concrete identity value.
struct Identity {
  IdentityType type = IdentityType::kImsi;
  std::string value;

  bool operator==(const Identity& o) const {
    return type == o.type && value == o.value;
  }
  bool operator<(const Identity& o) const {
    if (type != o.type) return type < o.type;
    return value < o.value;
  }

  std::string ToString() const {
    return std::string(IdentityTypeName(type)) + ":" + value;
  }
};

/// FNV-1a hash of an identity (stable across platforms; used by the
/// consistent-hashing location alternative).
uint64_t HashIdentity(const Identity& id);

struct IdentityHasher {
  size_t operator()(const Identity& id) const {
    return static_cast<size_t>(HashIdentity(id));
  }
};

}  // namespace udr::location

#endif  // UDR_LOCATION_IDENTITY_H_
