#include "location/location_stage.h"

#include <algorithm>
#include <cmath>

namespace udr::location {

namespace {

/// log2(n) rounded up, minimum 1 (cost model for tree descent).
double Log2Ceil(int64_t n) {
  if (n <= 2) return 1.0;
  return std::ceil(std::log2(static_cast<double>(n)));
}

}  // namespace

// ---------------------------------------------------------------------------
// ProvisionedLocationStage
// ---------------------------------------------------------------------------

ProvisionedLocationStage::ProvisionedLocationStage(LocationCostModel model)
    : model_(model) {}

ResolveResult ProvisionedLocationStage::Resolve(const Identity& id,
                                                MicroTime now) {
  ResolveResult out;
  if (Syncing(now)) {
    // §3.4.2: operations issued on the PoA realized by the new blade cluster
    // cannot be handled during the initial identity-map sync.
    out.status = Status::Unavailable(
        "location stage syncing identity maps (scale-out in progress)");
    return out;
  }
  const auto& index = index_[static_cast<int>(id.type)];
  out.cost = model_.map_base +
             static_cast<MicroDuration>(
                 static_cast<double>(model_.map_per_log2) *
                 Log2Ceil(static_cast<int64_t>(index.size())));
  auto it = index.find(id.value);
  if (it == index.end()) {
    out.status = Status::NotFound("identity " + id.ToString());
    return out;
  }
  out.status = Status::Ok();
  out.entry = it->second;
  return out;
}

Status ProvisionedLocationStage::Bind(const Identity& id,
                                      const LocationEntry& entry) {
  index_[static_cast<int>(id.type)][id.value] = entry;
  return Status::Ok();
}

Status ProvisionedLocationStage::Unbind(const Identity& id) {
  auto& index = index_[static_cast<int>(id.type)];
  if (index.erase(id.value) == 0) {
    return Status::NotFound("identity " + id.ToString());
  }
  return Status::Ok();
}

int64_t ProvisionedLocationStage::EntryCount() const {
  int64_t total = 0;
  for (const auto& index : index_) total += static_cast<int64_t>(index.size());
  return total;
}

int64_t ProvisionedLocationStage::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& index : index_) {
    for (const auto& [value, _] : index) {
      bytes += model_.bytes_per_entry + static_cast<int64_t>(value.size());
    }
  }
  return bytes;
}

MicroDuration ProvisionedLocationStage::BeginSyncFrom(
    const ProvisionedLocationStage& peer, MicroTime now) {
  for (int t = 0; t < kIdentityTypeCount; ++t) {
    index_[t] = peer.index_[t];
  }
  MicroDuration window =
      peer.EntryCount() * model_.sync_per_entry;
  sync_done_at_ = now + window;
  return window;
}

// ---------------------------------------------------------------------------
// CachedLocationStage
// ---------------------------------------------------------------------------

CachedLocationStage::CachedLocationStage(
    std::function<StatusOr<LocationEntry>(const Identity&)> authoritative,
    std::function<int()> se_count_fn, LocationCostModel model)
    : authoritative_(std::move(authoritative)),
      se_count_fn_(std::move(se_count_fn)),
      model_(model) {}

ResolveResult CachedLocationStage::Resolve(const Identity& id, MicroTime now) {
  (void)now;
  ResolveResult out;
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    out.status = Status::Ok();
    out.entry = it->second;
    out.cost = model_.map_base;
    return out;
  }
  // Miss: broadcast a location query to every SE in the system (§3.5: "every
  // cache miss implies locating the subscriber by querying multiple or even
  // all the SE in the system").
  ++misses_;
  out.cache_miss = true;
  int se_count = se_count_fn_();
  out.cost = model_.broadcast_rtt + se_count * model_.broadcast_per_se;
  auto found = authoritative_(id);
  if (!found.ok()) {
    out.status = found.status();
    return out;
  }
  cache_[id] = *found;
  out.status = Status::Ok();
  out.entry = *found;
  return out;
}

Status CachedLocationStage::Bind(const Identity& id,
                                 const LocationEntry& entry) {
  cache_[id] = entry;
  return Status::Ok();
}

Status CachedLocationStage::Unbind(const Identity& id) {
  cache_.erase(id);
  return Status::Ok();
}

int64_t CachedLocationStage::EntryCount() const {
  return static_cast<int64_t>(cache_.size());
}

int64_t CachedLocationStage::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& [id, _] : cache_) {
    bytes += model_.bytes_per_entry + static_cast<int64_t>(id.value.size());
  }
  return bytes;
}

void CachedLocationStage::InvalidateAll() { cache_.clear(); }

// ---------------------------------------------------------------------------
// ConsistentHashLocationStage
// ---------------------------------------------------------------------------

ConsistentHashLocationStage::ConsistentHashLocationStage(
    uint32_t partitions, int vnodes_per_partition, LocationCostModel model)
    : model_(model), partitions_(partitions), ring_(vnodes_per_partition) {
  ring_.AddNodes(0, partitions);
}

uint32_t ConsistentHashLocationStage::PartitionOf(const Identity& id) const {
  return ring_.NodeOfHash(HashIdentity(id));
}

ResolveResult ConsistentHashLocationStage::Resolve(const Identity& id,
                                                   MicroTime now) {
  (void)now;
  ResolveResult out;
  out.status = Status::Ok();
  out.entry.key = HashIdentity(id);
  out.entry.partition = PartitionOf(id);
  out.cost = model_.hash_lookup;
  return out;
}

Status ConsistentHashLocationStage::Bind(const Identity& id,
                                         const LocationEntry& entry) {
  if (entry.partition != PartitionOf(id)) {
    return Status::FailedPrecondition(
        "consistent hashing cannot honor selective placement for " +
        id.ToString());
  }
  return Status::Ok();
}

int64_t ConsistentHashLocationStage::ApproxBytes() const {
  // Ring points only: (8-byte hash + 4-byte partition) per vnode.
  return static_cast<int64_t>(ring_.point_count()) * 12;
}

}  // namespace udr::location
