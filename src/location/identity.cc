#include "location/identity.h"

namespace udr::location {

const char* IdentityTypeName(IdentityType type) {
  switch (type) {
    case IdentityType::kImsi:
      return "IMSI";
    case IdentityType::kMsisdn:
      return "MSISDN";
    case IdentityType::kImpu:
      return "IMPU";
    case IdentityType::kImpi:
      return "IMPI";
  }
  return "?";
}

uint64_t HashIdentity(const Identity& id) {
  uint64_t h = 14695981039346656037ULL;
  h = (h ^ static_cast<uint8_t>(id.type)) * 1099511628211ULL;
  for (unsigned char c : id.value) {
    h = (h ^ c) * 1099511628211ULL;
  }
  // FNV-1a avalanches poorly in the high bits, and ring ownership compares
  // full 64-bit values: sequential numbering-plan identities (IMSI blocks
  // differing only in trailing digits) would otherwise cluster on one ring
  // arc and land on 1-2 partitions. Finish with a splitmix64-style mixer.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace udr::location
