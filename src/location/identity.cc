#include "location/identity.h"

namespace udr::location {

const char* IdentityTypeName(IdentityType type) {
  switch (type) {
    case IdentityType::kImsi:
      return "IMSI";
    case IdentityType::kMsisdn:
      return "MSISDN";
    case IdentityType::kImpu:
      return "IMPU";
    case IdentityType::kImpi:
      return "IMPI";
  }
  return "?";
}

uint64_t HashIdentity(const Identity& id) {
  uint64_t h = 14695981039346656037ULL;
  h = (h ^ static_cast<uint8_t>(id.type)) * 1099511628211ULL;
  for (unsigned char c : id.value) {
    h = (h ^ c) * 1099511628211ULL;
  }
  return h;
}

}  // namespace udr::location
