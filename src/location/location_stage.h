// The data location stage: resolves subscriber identities to the partition
// (replica set) and record key holding the subscriber's data.
//
// The paper discusses three realizations (§3.3.1, §3.4.2, §3.5):
//   * ProvisionedLocationStage — identity-location maps provisioned by the
//     PS. State-full, O(log N) lookups, supports multiple indexes and
//     selective placement; on scale-out a new stage instance must copy every
//     map entry from a peer, during which its PoA cannot serve (S-R link).
//   * CachedLocationStage — maps built on the fly: a miss broadcasts a
//     location query to every storage element (cost grows with #SE), but
//     scale-out needs no sync window.
//   * ConsistentHashLocationStage — O(1) lookups, but each identity type
//     needs its own ring/replica of the data and selective placement is
//     impossible; the paper deems it impractical.

#ifndef UDR_LOCATION_LOCATION_STAGE_H_
#define UDR_LOCATION_LOCATION_STAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash_ring.h"
#include "common/status.h"
#include "common/time.h"
#include "location/identity.h"
#include "storage/record.h"

namespace udr::location {

/// Where one subscriber's data lives.
struct LocationEntry {
  storage::RecordKey key = 0;  ///< Record key inside the partition.
  uint32_t partition = 0;      ///< Data partition / replica-set id.

  bool operator==(const LocationEntry& o) const {
    return key == o.key && partition == o.partition;
  }
};

/// Cost-model constants for the location stage realizations.
struct LocationCostModel {
  MicroDuration map_base = Micros(2);        ///< Fixed per-lookup cost.
  MicroDuration map_per_log2 = Micros(1);    ///< Per-comparison (tree descent).
  MicroDuration hash_lookup = Micros(2);     ///< O(1) consistent-hash lookup.
  MicroDuration broadcast_per_se = Micros(40); ///< Per-SE cost of a miss probe.
  MicroDuration broadcast_rtt = Millis(30);  ///< Worst backbone RTT of a probe.
  int64_t bytes_per_entry = 64;              ///< RAM per identity-map entry.
  MicroDuration sync_per_entry = Micros(2);  ///< Scale-out copy cost per entry.
};

/// Result of a resolution, including the modelled processing cost.
struct ResolveResult {
  Status status;
  LocationEntry entry;
  MicroDuration cost = 0;
  bool cache_miss = false;
};

/// Abstract data location stage.
class LocationStage {
 public:
  virtual ~LocationStage() = default;

  /// Resolves an identity at virtual time `now`.
  virtual ResolveResult Resolve(const Identity& id, MicroTime now) = 0;

  /// Registers an identity -> location binding (provisioning path).
  virtual Status Bind(const Identity& id, const LocationEntry& entry) = 0;

  /// Removes a binding.
  virtual Status Unbind(const Identity& id) = 0;

  /// Number of bound identities.
  virtual int64_t EntryCount() const = 0;

  /// Approximate RAM consumed by the stage (paper: identity-location maps
  /// "deprive storage elements from memory they could use to store data").
  virtual int64_t ApproxBytes() const = 0;

  /// True when the stage honors explicitly provisioned placements (§3.5).
  virtual bool SupportsSelectivePlacement() const = 0;

  /// Human-readable realization name.
  virtual std::string Name() const = 0;
};

/// Identity-location maps, one ordered index per identity type (O(log N)).
class ProvisionedLocationStage : public LocationStage {
 public:
  explicit ProvisionedLocationStage(LocationCostModel model = LocationCostModel());

  ResolveResult Resolve(const Identity& id, MicroTime now) override;
  Status Bind(const Identity& id, const LocationEntry& entry) override;
  Status Unbind(const Identity& id) override;
  int64_t EntryCount() const override;
  int64_t ApproxBytes() const override;
  bool SupportsSelectivePlacement() const override { return true; }
  std::string Name() const override { return "provisioned-maps"; }

  // -- Scale-out synchronization (§3.4.2) -------------------------------------

  /// Starts copying all entries from `peer`; the stage is unavailable until
  /// the copy completes. Returns the sync window duration.
  MicroDuration BeginSyncFrom(const ProvisionedLocationStage& peer,
                              MicroTime now);

  /// True while the initial sync is still running at `now`.
  bool Syncing(MicroTime now) const { return now < sync_done_at_; }
  MicroTime sync_done_at() const { return sync_done_at_; }

 private:
  LocationCostModel model_;
  std::map<std::string, LocationEntry> index_[kIdentityTypeCount];
  MicroTime sync_done_at_ = 0;
};

/// Cache-on-miss stage: a miss broadcasts a probe to every storage element.
class CachedLocationStage : public LocationStage {
 public:
  /// `authoritative` answers what the broadcast would discover (the union of
  /// all SE contents); `se_count_fn` reports how many SEs a probe must visit.
  CachedLocationStage(
      std::function<StatusOr<LocationEntry>(const Identity&)> authoritative,
      std::function<int()> se_count_fn,
      LocationCostModel model = LocationCostModel());

  ResolveResult Resolve(const Identity& id, MicroTime now) override;
  Status Bind(const Identity& id, const LocationEntry& entry) override;
  Status Unbind(const Identity& id) override;
  int64_t EntryCount() const override;
  int64_t ApproxBytes() const override;
  bool SupportsSelectivePlacement() const override { return true; }
  std::string Name() const override { return "cached-maps"; }

  int64_t cache_hits() const { return hits_; }
  int64_t cache_misses() const { return misses_; }
  /// Drops the whole cache (e.g. a freshly deployed stage instance).
  void InvalidateAll();

 private:
  std::function<StatusOr<LocationEntry>(const Identity&)> authoritative_;
  std::function<int()> se_count_fn_;
  LocationCostModel model_;
  std::unordered_map<Identity, LocationEntry, IdentityHasher> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Consistent-hashing alternative (§3.5): O(1), no per-subscriber state, but
/// one ring (and in the paper's terms, one full data replica) per identity
/// type, and no selective placement.
class ConsistentHashLocationStage : public LocationStage {
 public:
  /// `partitions` is the number of data partitions; `vnodes_per_partition`
  /// controls ring smoothness.
  ConsistentHashLocationStage(uint32_t partitions, int vnodes_per_partition = 64,
                              LocationCostModel model = LocationCostModel());

  ResolveResult Resolve(const Identity& id, MicroTime now) override;
  /// Bind is a no-op check: consistent hashing cannot honor an explicit
  /// placement; returns FailedPrecondition when the requested placement
  /// disagrees with the hash.
  Status Bind(const Identity& id, const LocationEntry& entry) override;
  Status Unbind(const Identity& id) override { (void)id; return Status::Ok(); }
  int64_t EntryCount() const override { return 0; }
  int64_t ApproxBytes() const override;
  bool SupportsSelectivePlacement() const override { return false; }
  std::string Name() const override { return "consistent-hash"; }

  /// Partition an identity hashes to.
  uint32_t PartitionOf(const Identity& id) const;

  /// Number of full data replicas the paper says this approach needs (one
  /// per identity type the UDR must index).
  int RequiredDataReplicas() const { return kIdentityTypeCount; }

 private:
  LocationCostModel model_;
  uint32_t partitions_;
  HashRing ring_;  ///< Shared vnode ring (same primitive as routing::PartitionMap).
};

}  // namespace udr::location

#endif  // UDR_LOCATION_LOCATION_STAGE_H_
