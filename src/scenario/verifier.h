// Continuous scenario verification: the engine feeds every procedure
// outcome and every acknowledged stamped write into the Verifier, which
// keeps the per-class statistics, the acked-write ledger and the hard
// invariants the scenario harness asserts:
//
//   * zero acked-write loss — every write the client saw acknowledged is
//     readable (at its stamp or newer) from the master copy at audit time;
//   * per-key order — stamps committed for one (key, attribute) channel
//     never regress in authoritative-log order (the §3.2 serialization
//     guarantee, observed end to end);
//   * stale-serve policy — master-only (PS) procedures are never stale;
//     nearest-read (FE) staleness stays within the scenario's bound.
//
// Stamps ride real subscriber attributes: the FE location-update channel
// writes the stamp as the location-area integer, the PS service channel
// encodes it in the call-forwarding number. The ledger records the highest
// acknowledged stamp per (subscriber, channel); the end-of-run audit reads
// the master copy back and compares.

#ifndef UDR_SCENARIO_VERIFIER_H_
#define UDR_SCENARIO_VERIFIER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/script.h"
#include "telecom/front_end.h"
#include "workload/testbed.h"
#include "workload/traffic.h"

namespace udr::scenario {

/// Which stamped write channel a ledger entry belongs to.
enum class Channel {
  kLocationArea,     ///< FE UpdateLocation -> attr::kLocationArea (int64).
  kCallForwarding,   ///< PS SetCallForwarding -> attr::kCallForwardingUncond.
};

/// One evaluated SLO row.
struct SloResult {
  SloCheck check;
  double actual = 0.0;
  bool pass = false;
};

/// End-of-run ledger audit outcome.
struct AuditReport {
  int64_t subscribers_audited = 0;
  int64_t acked_writes = 0;       ///< Stamped acks recorded in the ledger.
  int64_t lost_writes = 0;        ///< Master stamp below the acked stamp.
  int64_t unreadable = 0;         ///< Master copy unreachable at audit time.
  int64_t order_violations = 0;   ///< Stamp regressions in log order.
};

/// Traffic-class statistics plus scenario counters, filled by the engine.
struct ScenarioStats {
  workload::ClassStats fe_read;
  workload::ClassStats fe_write;
  workload::ClassStats fe_storm;  ///< Storm-deferred procedures (also in fe_*).
  workload::ClassStats ps;

  workload::ClassStats FeAll() const {
    workload::ClassStats all = fe_read;
    all.Merge(fe_write);
    return all;
  }
};

/// Collects outcomes, keeps the ledger, audits and evaluates SLO rows.
class Verifier {
 public:
  explicit Verifier(workload::Testbed* bed) : bed_(bed) {}

  ScenarioStats& stats() { return stats_; }
  const ScenarioStats& stats() const { return stats_; }

  /// Folds one FE procedure outcome (is_write: contains a write op;
  /// storm: issued by the deferred storm driver).
  void FoldFe(const telecom::ProcedureResult& r, bool is_write, bool storm);

  /// Folds one PS procedure outcome; flags any stale master-only read.
  void FoldPs(const telecom::ProcedureResult& r);

  /// Records an acknowledged stamped write for (subscriber, channel).
  /// Call only when the procedure fully succeeded (no failed ops).
  void RecordAck(uint64_t subscriber, Channel channel, int64_t stamp);

  /// Stale master-only procedures observed (hard invariant: must stay 0).
  int64_t ps_stale() const { return stats_.ps.stale_procedures; }

  /// End-of-run audit: reads every ledgered subscriber's stamped attributes
  /// back from the master copy (kMasterOnly) and scans every partition's
  /// authoritative log for per-channel stamp regressions. Idempotent.
  AuditReport Audit();

  /// Evaluates one SLO row against the current stats / audit / testbed
  /// state. Runs the audit on demand for audit-backed kinds.
  SloResult Evaluate(const SloCheck& check);

  /// Rows evaluated so far, in evaluation order.
  const std::vector<SloResult>& results() const { return results_; }

  /// True when every evaluated row passed (and at least one was evaluated).
  bool AllPassed() const;

 private:
  /// Highest acked stamp per channel for one subscriber.
  struct Ledger {
    int64_t location = 0;
    int64_t cfu = 0;
  };

  /// Master-copy stamp of one subscriber's channel; -1 unreadable.
  int64_t MasterStamp(uint64_t subscriber, Channel channel);

  workload::Testbed* bed_;
  ScenarioStats stats_;
  std::unordered_map<uint64_t, Ledger> ledger_;
  std::vector<SloResult> results_;
  AuditReport audit_;
  bool audited_ = false;
};

/// Parses a stamp out of a call-forwarding number written by the scenario
/// PS driver ("+00<stamp>"); 0 when the value is not a scenario stamp.
int64_t CfuStampOf(const std::string& number);
/// Builds the call-forwarding number encoding `stamp`.
std::string CfuNumberOf(int64_t stamp);

}  // namespace udr::scenario

#endif  // UDR_SCENARIO_VERIFIER_H_
