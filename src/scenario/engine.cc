#include "scenario/engine.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace udr::scenario {

using telecom::ProcedureResult;

namespace {

/// Fixed-format double for the deterministic report ("%.6g").
std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void SerializeClass(std::ostringstream& out, const char* name,
                    const workload::ClassStats& c) {
  out << "class " << name << " attempted=" << c.attempted << " ok=" << c.ok
      << " failed=" << c.failed << " stale=" << c.stale_procedures
      << " ldap=" << c.ldap_ops << " p50=" << c.latency.P50()
      << " p99=" << c.latency.P99() << "\n";
}

}  // namespace

bool ScenarioReport::Passed() const {
  if (slos.empty()) return false;
  for (const SloResult& r : slos) {
    if (!r.pass) return false;
  }
  return true;
}

std::string ScenarioReport::Serialize() const {
  std::ostringstream out;
  out << "scenario " << name << "\n";
  out << "sim-duration-us " << sim_duration << "\n";
  out << "steps-executed " << steps_executed
      << " heal-reconciliations " << heal_reconciliations << "\n";
  SerializeClass(out, "fe.read", stats.fe_read);
  SerializeClass(out, "fe.write", stats.fe_write);
  SerializeClass(out, "fe.storm", stats.fe_storm);
  SerializeClass(out, "ps", stats.ps);
  out << "audit subscribers=" << audit.subscribers_audited
      << " acked=" << audit.acked_writes << " lost=" << audit.lost_writes
      << " unreadable=" << audit.unreadable
      << " order-violations=" << audit.order_violations << "\n";
  out << "restoration divergent=" << restoration.divergent_entries
      << " applied=" << restoration.applied_ops
      << " conflicting=" << restoration.conflicting_ops
      << " dropped=" << restoration.dropped_ops
      << " manual=" << restoration.manual_ops << "\n";
  for (const SloResult& r : slos) {
    out << "slo " << r.check.label << " kind=" << SloKindName(r.check.kind)
        << " bound=" << Fmt(r.check.bound) << " actual=" << Fmt(r.actual)
        << (r.pass ? " PASS" : " FAIL") << "\n";
  }
  out << "passed " << (Passed() ? "true" : "false") << "\n";
  if (!obs_series.empty()) {
    out << "obs-series-begin\n" << obs_series << "obs-series-end\n";
  }
  if (!flight_dump.empty()) {
    out << "flight-recorder-begin\n" << flight_dump << "flight-recorder-end\n";
  }
  return out.str();
}

Engine::Engine(const ScenarioSpec& spec)
    : spec_(spec),
      bed_(spec.testbed),
      verifier_(&bed_),
      rng_(spec.testbed.seed ^ 0x5ce7a7105ce7a710ULL),
      subscriber_pick_(
          std::max<uint64_t>(1, static_cast<uint64_t>(spec.testbed.subscribers)),
          spec.zipf_theta) {
  for (uint32_t s = 0; s < bed_.options().sites; ++s) {
    hlr_fes_.push_back(
        std::make_unique<telecom::HlrFe>(s, &bed_.udr(), spec_.batched));
    hss_fes_.push_back(
        std::make_unique<telecom::HssFe>(s, &bed_.udr(), spec_.batched));
  }
  ps_ = std::make_unique<telecom::ProvisioningSystem>(
      telecom::ProvisioningConfig{spec_.ps_site, 0, spec_.batched}, &bed_.udr(),
      &bed_.factory());
}

void Engine::Dispatch(telecom::FrontEnd* fe, ProcedureResult r, bool is_write,
                      bool storm, uint64_t subscriber, int64_t stamp) {
  if (r.deferred()) {
    in_flight_.push_back({*r.pending, fe, is_write, storm, subscriber, stamp});
    return;
  }
  verifier_.FoldFe(r, is_write, storm);
  if (stamp != 0 && r.ok() && r.failed_ops == 0) {
    verifier_.RecordAck(subscriber, Channel::kLocationArea, stamp);
  }
}

void Engine::Collect() {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    std::optional<ProcedureResult> done = it->fe->TakeDeferred(it->handle);
    if (!done.has_value()) {
      ++it;
      continue;
    }
    verifier_.FoldFe(*done, it->is_write, it->storm);
    if (it->stamp != 0 && done->ok() && done->failed_ops == 0) {
      verifier_.RecordAck(it->subscriber, Channel::kLocationArea, it->stamp);
    }
    it = in_flight_.erase(it);
  }
}

void Engine::FeTick(MicroTime now) {
  const bool storm = now < storm_until_ && storm_events_ > 0;
  const int burst = storm ? storm_events_ : 1;
  for (int b = 0; b < burst; ++b) {
    uint64_t index = subscriber_pick_.Next(rng_);
    telecom::Subscriber sub = bed_.factory().Make(index);
    sim::SiteId serving = bed_.HomeSiteOf(index);
    if (now < wave_until_ && rng_.Bernoulli(wave_fraction_)) {
      serving = wave_site_;
    }
    if (storm) {
      // Mass re-registration: every event is a stamped location update (the
      // re-attach write) enqueued into the PoA's dispatch window.
      telecom::HlrFe& fe = *hlr_fes_[serving];
      bool was_deferred = fe.deferred();
      fe.set_deferred(true);
      int64_t stamp = ++next_stamp_;
      Dispatch(&fe,
               fe.UpdateLocation(sub.ImsiId(), "vlr" + std::to_string(serving),
                                 stamp),
               /*is_write=*/true, /*storm=*/true, index, stamp);
      fe.set_deferred(was_deferred);
      continue;
    }
    if (rng_.Bernoulli(spec_.ims_fraction)) {
      telecom::HssFe& fe = *hss_fes_[serving];
      double pick = rng_.NextDouble();
      if (pick < 0.55) {
        Dispatch(&fe, fe.ImsLocate(sub.ImpuId()), false, false, index, 0);
      } else if (pick < 0.80) {
        Dispatch(&fe,
                 fe.ImsRegister(sub.ImpuId(), "scscf" + std::to_string(serving)),
                 true, false, index, 0);
      } else {
        Dispatch(&fe, fe.ImsDeregister(sub.ImpuId()), true, false, index, 0);
      }
    } else {
      telecom::HlrFe& fe = *hlr_fes_[serving];
      double pick = rng_.NextDouble();
      if (pick < 0.35) {
        Dispatch(&fe, fe.Authenticate(sub.ImsiId()), false, false, index, 0);
      } else if (pick < 0.55) {
        Dispatch(&fe, fe.SendRoutingInfo(sub.MsisdnId()), false, false, index,
                 0);
      } else if (pick < 0.70) {
        Dispatch(&fe, fe.SmsRouting(sub.MsisdnId()), false, false, index, 0);
      } else if (pick < 0.80) {
        Dispatch(&fe, fe.InterrogateSs(sub.MsisdnId()), false, false, index, 0);
      } else {
        // The stamped FE write channel: the acked stamp IS the location
        // area, so the ledger audit can read it back from the master copy.
        int64_t stamp = ++next_stamp_;
        Dispatch(&fe,
                 fe.UpdateLocation(sub.ImsiId(),
                                   "vlr" + std::to_string(serving), stamp),
                 true, false, index, stamp);
      }
    }
  }
  if (!in_flight_.empty()) Collect();
}

void Engine::PsTick() {
  uint64_t index = rng_.Uniform(
      std::max<uint64_t>(1, static_cast<uint64_t>(spec_.testbed.subscribers)));
  double pick = rng_.NextDouble();
  if (pick < 0.6) {
    // The stamped PS write channel (master-only read-modify-write).
    int64_t stamp = ++next_stamp_;
    ProcedureResult r = ps_->SetCallForwarding(index, CfuNumberOf(stamp));
    verifier_.FoldPs(r);
    if (r.ok() && r.failed_ops == 0) {
      verifier_.RecordAck(index, Channel::kCallForwarding, stamp);
    }
  } else {
    verifier_.FoldPs(ps_->SetPremiumBarring(index, rng_.Bernoulli(0.5)));
  }
}

void Engine::ExecuteStep(const Step& step, ScenarioReport* report) {
  udrnf::UdrNf& udr = bed_.udr();
  routing::PartitionMap& map = udr.partition_map();
  // Every script step is a flight-recorder event: when an SLO breach dumps
  // the recorder, the injected faults leading up to it are in the history.
  if (obs::FlightRecorder* flight = udr.flight_recorder()) {
    flight->Record(bed_.clock().Now(), "scenario", StepKindName(step.kind),
                   "site=" + std::to_string(step.site));
  }
  switch (step.kind) {
    case StepKind::kKillSite: {
      // Drain every PoA the site hosts, then crash every replica copy its
      // storage elements hold. The replica sets' failover detection promotes
      // surviving secondaries as the write path touches them.
      for (uint32_t c = 0; c < udr.cluster_count(); ++c) {
        if (udr.cluster(c)->site() == step.site) {
          udr.SetClusterServing(c, false);
        }
      }
      auto& crashed = crashed_[step.site];
      for (uint32_t p = 0; p < map.partition_count(); ++p) {
        replication::ReplicaSet* rs = map.partition(p);
        for (uint32_t r = 0; r < rs->replica_count(); ++r) {
          if (!rs->replica_up(r)) continue;
          int se = map.IndexOfSe(rs->replica_se(r));
          if (se < 0) continue;
          uint32_t cluster = map.se_info(se).cluster;
          if (udr.cluster(cluster)->site() == step.site) {
            rs->CrashReplica(r);
            crashed.push_back({p, r});
          }
        }
      }
      break;
    }
    case StepKind::kRestoreSite: {
      auto it = crashed_.find(step.site);
      if (it != crashed_.end()) {
        for (const CrashedReplica& cr : it->second) {
          map.partition(cr.partition)->RecoverReplica(cr.replica);
        }
        it->second.clear();
      }
      for (uint32_t c = 0; c < udr.cluster_count(); ++c) {
        if (udr.cluster(c)->site() == step.site) {
          udr.SetClusterServing(c, true);
        }
      }
      break;
    }
    case StepKind::kPartitionLink:
      // The outage interval was installed into the partition schedule at
      // compile time (schedules are interval sets); nothing to do now.
      break;
    case StepKind::kHealLink: {
      udr.CatchUpAllPartitions();
      replication::RestorationReport r = udr.RestoreAllPartitions();
      report->restoration.divergent_entries += r.divergent_entries;
      report->restoration.applied_ops += r.applied_ops;
      report->restoration.conflicting_ops += r.conflicting_ops;
      report->restoration.dropped_ops += r.dropped_ops;
      report->restoration.manual_ops += r.manual_ops;
      ++report->heal_reconciliations;
      break;
    }
    case StepKind::kAttachStorm:
      storm_until_ = bed_.clock().Now() + step.duration;
      storm_events_ = step.events_per_tick;
      break;
    case StepKind::kRoamingWave:
      wave_until_ = bed_.clock().Now() + step.duration;
      wave_site_ = step.site;
      wave_fraction_ = step.fraction;
      break;
    case StepKind::kScaleOut:
      (void)udr.AddCluster(step.site);
      break;
    case StepKind::kStartRebalance:
      (void)udr.StartMigration();
      break;
    case StepKind::kDecommissionSe:
      (void)udr.StartDecommission(step.se_index);
      break;
    case StepKind::kAssertSlo: {
      const SloResult r = verifier_.Evaluate(step.slo);
      if (obs::FlightRecorder* flight = udr.flight_recorder()) {
        flight->Record(bed_.clock().Now(), "slo", r.pass ? "pass" : "fail",
                       r.check.label + " kind=" + SloKindName(r.check.kind) +
                           " bound=" + Fmt(r.check.bound) +
                           " actual=" + Fmt(r.actual));
      }
      break;
    }
  }
  ++report->steps_executed;
}

ScenarioReport Engine::Run() {
  ScenarioReport report;
  report.name = spec_.name;

  sim::SimClock& clock = bed_.clock();
  udrnf::UdrNf& udr = bed_.udr();
  const MicroTime start = clock.Now();
  const MicroTime horizon = start + spec_.duration;

  std::vector<Step> steps = spec_.script.Sorted();
  // Link outages are pure schedule state: install every cut up-front so
  // replication delivery times are exact from the first affected entry.
  for (const Step& s : steps) {
    if (s.kind == StepKind::kPartitionLink) {
      bed_.network().partitions().CutBetween(s.group_a, s.group_b,
                                             start + s.at, start + s.until);
    }
  }

  const MicroDuration fe_gap =
      spec_.fe_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / spec_.fe_rate_per_sec)
          : kTimeInfinity;
  const MicroDuration ps_gap =
      spec_.ps_rate_per_sec > 0
          ? static_cast<MicroDuration>(1e6 / spec_.ps_rate_per_sec)
          : kTimeInfinity;
  MicroTime next_fe = start + fe_gap;
  MicroTime next_ps = start + ps_gap;
  size_t step_i = 0;

  while (true) {
    MicroTime next_step =
        step_i < steps.size() ? start + steps[step_i].at : kTimeInfinity;
    MicroTime next = std::min({next_fe, next_ps, next_step});

    // Wake exactly at the earliest open PoA window's deadline — or the
    // time-series sampler's next due tick (PumpEvents drives both).
    MicroTime flush_at =
        std::min(udr.NextEventDeadline(), udr.NextObsSampleDue());
    if (flush_at <= std::min(next, horizon)) {
      clock.AdvanceTo(std::max(flush_at, clock.Now()));
      udr.PumpEvents();
      Collect();
      continue;
    }
    // Wake at the migration scheduler's next chunk deadline.
    MicroTime mig_at = udr.NextMigrationDeadline();
    if (mig_at <= std::min(next, horizon)) {
      clock.AdvanceTo(std::max(mig_at, clock.Now()));
      udr.PumpMigration();
      continue;
    }
    if (next > horizon) break;
    clock.AdvanceTo(next);

    if (next_step <= next_fe && next_step <= next_ps) {
      ExecuteStep(steps[step_i], &report);
      ++step_i;
    } else if (next_fe <= next_ps) {
      next_fe += fe_gap;
      FeTick(next);
    } else {
      next_ps += ps_gap;
      PsTick();
    }
  }

  clock.AdvanceTo(horizon);
  udr.FlushEvents();
  Collect();

  if (spec_.drain_migration_at_end) {
    // Drain background tasks at the scheduler's own pace so end-of-run SLOs
    // judge the completed move. Bounded: a stuck scheduler cannot hang us.
    for (int guard = 0; udr.MigrationActive() && guard < 1000000; ++guard) {
      MicroTime at = udr.NextMigrationDeadline();
      if (at == kTimeInfinity) break;
      clock.AdvanceTo(std::max(at, clock.Now()));
      udr.PumpMigration();
    }
  }
  udr.CatchUpAllPartitions();

  // Post-horizon steps (scenarios put their SLO rows just past the traffic
  // horizon so they see flushed windows and drained migrations).
  for (; step_i < steps.size(); ++step_i) {
    ExecuteStep(steps[step_i], &report);
  }

  report.stats = verifier_.stats();
  report.audit = verifier_.Audit();
  report.slos = verifier_.results();
  report.sim_duration = clock.Now() - start;
  if (udr.sampler() != nullptr) {
    report.obs_series = udr.sampler()->Serialize();
  }
  if (!report.slos.empty() && !report.Passed() &&
      udr.flight_recorder() != nullptr) {
    // SLO breach: dump the recent control-plane history so the events
    // leading up to the failure travel with the report.
    report.flight_dump = udr.flight_recorder()->Dump();
    std::fprintf(stderr, "[scenario %s] SLO FAILED; flight recorder:\n%s",
                 report.name.c_str(), report.flight_dump.c_str());
  }
  return report;
}

ScenarioReport RunScenario(const ScenarioSpec& spec) {
  Engine engine(spec);
  return engine.Run();
}

}  // namespace udr::scenario
