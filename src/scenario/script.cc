#include "scenario/script.h"

#include <algorithm>
#include <utility>

namespace udr::scenario {

Script& Script::KillSite(MicroTime at, sim::SiteId site) {
  Step s;
  s.at = at;
  s.kind = StepKind::kKillSite;
  s.site = site;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::RestoreSite(MicroTime at, sim::SiteId site) {
  Step s;
  s.at = at;
  s.kind = StepKind::kRestoreSite;
  s.site = site;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::PartitionLink(MicroTime at, MicroTime until,
                              std::vector<sim::SiteId> group_a,
                              std::vector<sim::SiteId> group_b) {
  Step s;
  s.at = at;
  s.kind = StepKind::kPartitionLink;
  s.until = until;
  s.group_a = std::move(group_a);
  s.group_b = std::move(group_b);
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::HealLink(MicroTime at) {
  Step s;
  s.at = at;
  s.kind = StepKind::kHealLink;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::AttachStorm(MicroTime at, MicroDuration duration,
                            int events_per_tick) {
  Step s;
  s.at = at;
  s.kind = StepKind::kAttachStorm;
  s.duration = duration;
  s.events_per_tick = events_per_tick;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::RoamingWave(MicroTime at, MicroDuration duration,
                            sim::SiteId to_site, double fraction) {
  Step s;
  s.at = at;
  s.kind = StepKind::kRoamingWave;
  s.duration = duration;
  s.site = to_site;
  s.fraction = fraction;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::ScaleOut(MicroTime at, sim::SiteId site) {
  Step s;
  s.at = at;
  s.kind = StepKind::kScaleOut;
  s.site = site;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::StartRebalance(MicroTime at) {
  Step s;
  s.at = at;
  s.kind = StepKind::kStartRebalance;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::DecommissionSe(MicroTime at, int se_index) {
  Step s;
  s.at = at;
  s.kind = StepKind::kDecommissionSe;
  s.se_index = se_index;
  steps_.push_back(std::move(s));
  return *this;
}

Script& Script::AssertSlo(MicroTime at, SloCheck check) {
  Step s;
  s.at = at;
  s.kind = StepKind::kAssertSlo;
  s.slo = std::move(check);
  steps_.push_back(std::move(s));
  return *this;
}

std::vector<Step> Script::Sorted() const {
  std::vector<Step> sorted = steps_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Step& a, const Step& b) { return a.at < b.at; });
  return sorted;
}

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kKillSite: return "kill-site";
    case StepKind::kRestoreSite: return "restore-site";
    case StepKind::kPartitionLink: return "partition-link";
    case StepKind::kHealLink: return "heal-link";
    case StepKind::kAttachStorm: return "attach-storm";
    case StepKind::kRoamingWave: return "roaming-wave";
    case StepKind::kScaleOut: return "scale-out";
    case StepKind::kStartRebalance: return "start-rebalance";
    case StepKind::kDecommissionSe: return "decommission-se";
    case StepKind::kAssertSlo: return "assert-slo";
  }
  return "?";
}

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kZeroAckedWriteLoss: return "zero-acked-write-loss";
    case SloKind::kPerKeyOrder: return "per-key-order";
    case SloKind::kPsStaleZero: return "ps-stale-zero";
    case SloKind::kFeStaleFractionMax: return "fe-stale-fraction-max";
    case SloKind::kFeAvailabilityMin: return "fe-availability-min";
    case SloKind::kPsAvailabilityMin: return "ps-availability-min";
    case SloKind::kFeP99Max: return "fe-p99-max";
    case SloKind::kStormP99Max: return "storm-p99-max";
    case SloKind::kFailoversMin: return "failovers-min";
    case SloKind::kDivergenceObserved: return "divergence-observed";
    case SloKind::kConverged: return "converged";
    case SloKind::kMigrationComplete: return "migration-complete";
    case SloKind::kPopulationSpreadMax: return "population-spread-max";
    case SloKind::kSeDrained: return "se-drained";
  }
  return "?";
}

}  // namespace udr::scenario
