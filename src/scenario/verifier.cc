#include "scenario/verifier.h"

#include <cstdio>
#include <variant>

#include "storage/commit_log.h"
#include "telecom/subscriber.h"

namespace udr::scenario {

namespace {

/// Per-key running stamp maximum for one channel's order scan.
using StampMap = std::unordered_map<storage::RecordKey, int64_t>;

void ScanOp(const storage::WriteOp& op, StampMap* loc, StampMap* cfu,
            int64_t* violations) {
  if (op.kind != storage::WriteKind::kUpsertAttr) return;
  std::string_view name = op.attr_name();
  int64_t stamp = 0;
  StampMap* map = nullptr;
  if (name == telecom::attr::kLocationArea) {
    if (!std::holds_alternative<int64_t>(op.attribute.value)) return;
    stamp = std::get<int64_t>(op.attribute.value);
    map = loc;
  } else if (name == telecom::attr::kCallForwardingUncond) {
    if (!std::holds_alternative<std::string>(op.attribute.value)) return;
    stamp = CfuStampOf(std::get<std::string>(op.attribute.value));
    map = cfu;
  }
  if (map == nullptr || stamp == 0) return;
  int64_t& seen = (*map)[op.key];
  if (stamp < seen) {
    ++*violations;
  } else {
    seen = stamp;
  }
}

}  // namespace

int64_t CfuStampOf(const std::string& number) {
  // Scenario stamps travel as "+00<digits>"; provisioning seeds and real
  // numbers use other prefixes and parse to 0 (not a stamp).
  if (number.size() < 4 || number.compare(0, 3, "+00") != 0) return 0;
  int64_t stamp = 0;
  for (size_t i = 3; i < number.size(); ++i) {
    char c = number[i];
    if (c < '0' || c > '9') return 0;
    stamp = stamp * 10 + (c - '0');
  }
  return stamp;
}

std::string CfuNumberOf(int64_t stamp) {
  return "+00" + std::to_string(stamp);
}

void Verifier::FoldFe(const telecom::ProcedureResult& r, bool is_write,
                      bool storm) {
  (is_write ? stats_.fe_write : stats_.fe_read).Fold(r);
  if (storm) stats_.fe_storm.Fold(r);
}

void Verifier::FoldPs(const telecom::ProcedureResult& r) {
  stats_.ps.Fold(r);
}

void Verifier::RecordAck(uint64_t subscriber, Channel channel, int64_t stamp) {
  Ledger& l = ledger_[subscriber];
  int64_t& slot = channel == Channel::kLocationArea ? l.location : l.cfu;
  if (stamp > slot) slot = stamp;
  ++audit_.acked_writes;
}

int64_t Verifier::MasterStamp(uint64_t subscriber, Channel channel) {
  location::Identity id{location::IdentityType::kImsi,
                        bed_->factory().ImsiOf(subscriber)};
  auto entry = bed_->udr().AuthoritativeLookup(id);
  if (!entry.ok()) return -1;
  replication::ReplicaSet* rs =
      bed_->udr().partition_map().partition(entry->partition);
  const char* attr = channel == Channel::kLocationArea
                         ? telecom::attr::kLocationArea
                         : telecom::attr::kCallForwardingUncond;
  replication::ReadResult read = rs->ReadAttribute(
      rs->master_site(), entry->key, attr,
      replication::ReadPreference::kMasterOnly);
  if (!read.status.ok() || !read.value.has_value()) return -1;
  if (channel == Channel::kLocationArea) {
    return std::holds_alternative<int64_t>(*read.value)
               ? std::get<int64_t>(*read.value)
               : -1;
  }
  return std::holds_alternative<std::string>(*read.value)
             ? CfuStampOf(std::get<std::string>(*read.value))
             : -1;
}

AuditReport Verifier::Audit() {
  if (audited_) return audit_;
  audited_ = true;

  for (const auto& [subscriber, ledger] : ledger_) {
    ++audit_.subscribers_audited;
    const struct {
      Channel channel;
      int64_t acked;
    } channels[] = {{Channel::kLocationArea, ledger.location},
                    {Channel::kCallForwarding, ledger.cfu}};
    for (const auto& [channel, acked] : channels) {
      if (acked == 0) continue;  // Channel never acknowledged a stamp.
      int64_t durable = MasterStamp(subscriber, channel);
      if (durable < 0) {
        ++audit_.unreadable;
      } else if (durable < acked) {
        ++audit_.lost_writes;
      }
    }
  }

  // Per-key order: stamps for one channel must never regress along the
  // authoritative serialization order of the owning partition's log.
  routing::PartitionMap& map = bed_->udr().partition_map();
  for (uint32_t p = 0; p < map.partition_count(); ++p) {
    StampMap loc, cfu;
    for (const storage::LogEntry& entry : map.partition(p)->log().entries()) {
      for (const storage::WriteOp& op : entry.ops) {
        ScanOp(op, &loc, &cfu, &audit_.order_violations);
      }
    }
  }
  if ((audit_.lost_writes > 0 || audit_.unreadable > 0 ||
       audit_.order_violations > 0) &&
      bed_->udr().flight_recorder() != nullptr) {
    // A hard-invariant breach is exactly what the flight recorder exists
    // for: dump the control-plane events that preceded it.
    std::fprintf(stderr,
                 "[audit] invariant breach (lost=%lld unreadable=%lld "
                 "order=%lld); flight recorder:\n%s",
                 static_cast<long long>(audit_.lost_writes),
                 static_cast<long long>(audit_.unreadable),
                 static_cast<long long>(audit_.order_violations),
                 bed_->udr().flight_recorder()->Dump().c_str());
  }
  return audit_;
}

SloResult Verifier::Evaluate(const SloCheck& check) {
  SloResult row;
  row.check = check;
  routing::PartitionMap& map = bed_->udr().partition_map();
  switch (check.kind) {
    case SloKind::kZeroAckedWriteLoss: {
      const AuditReport& audit = Audit();
      row.actual = static_cast<double>(audit.lost_writes + audit.unreadable);
      row.pass = row.actual == 0;
      break;
    }
    case SloKind::kPerKeyOrder: {
      row.actual = static_cast<double>(Audit().order_violations);
      row.pass = row.actual == 0;
      break;
    }
    case SloKind::kPsStaleZero:
      row.actual = static_cast<double>(stats_.ps.stale_procedures);
      row.pass = row.actual == 0;
      break;
    case SloKind::kFeStaleFractionMax: {
      workload::ClassStats fe = stats_.FeAll();
      row.actual = fe.attempted == 0 ? 0.0
                                     : static_cast<double>(fe.stale_procedures) /
                                           static_cast<double>(fe.attempted);
      row.pass = row.actual <= check.bound;
      break;
    }
    case SloKind::kFeAvailabilityMin:
      row.actual = stats_.FeAll().availability();
      row.pass = row.actual >= check.bound;
      break;
    case SloKind::kPsAvailabilityMin:
      row.actual = stats_.ps.availability();
      row.pass = row.actual >= check.bound;
      break;
    case SloKind::kFeP99Max:
      row.actual = static_cast<double>(stats_.FeAll().latency.P99());
      row.pass = row.actual <= check.bound;
      break;
    case SloKind::kStormP99Max:
      row.actual = static_cast<double>(stats_.fe_storm.latency.P99());
      row.pass = row.actual <= check.bound;
      break;
    case SloKind::kFailoversMin: {
      // The master slot starts as replica 0 everywhere; a moved slot in a
      // migration-free scenario means a failover promoted a secondary.
      int64_t moved = 0;
      for (uint32_t p = 0; p < map.partition_count(); ++p) {
        if (!map.partition_retired(p) && map.partition(p)->master_id() != 0) {
          ++moved;
        }
      }
      row.actual = static_cast<double>(moved);
      row.pass = row.actual >= check.bound;
      break;
    }
    case SloKind::kDivergenceObserved: {
      int64_t diverged = 0;
      for (uint32_t p = 0; p < map.partition_count(); ++p) {
        diverged += map.partition(p)->diverged_writes();
      }
      row.actual = static_cast<double>(diverged);
      row.pass = row.actual >= check.bound;
      break;
    }
    case SloKind::kConverged: {
      int64_t divergent = 0;
      for (uint32_t p = 0; p < map.partition_count(); ++p) {
        if (map.partition(p)->HasDivergence()) ++divergent;
      }
      row.actual = static_cast<double>(divergent);
      row.pass = row.actual == 0;
      break;
    }
    case SloKind::kMigrationComplete:
      row.actual = bed_->udr().MigrationActive() ? 1.0 : 0.0;
      row.pass = row.actual == 0;
      break;
    case SloKind::kPopulationSpreadMax:
      row.actual = static_cast<double>(map.PopulationSpread());
      row.pass = row.actual <= check.bound;
      break;
    case SloKind::kSeDrained: {
      std::vector<int> primaries = map.PrimariesPerSe();
      row.actual = check.arg >= 0 &&
                           check.arg < static_cast<int64_t>(primaries.size())
                       ? static_cast<double>(primaries[check.arg])
                       : -1.0;
      row.pass = row.actual == 0;
      break;
    }
  }
  results_.push_back(row);
  return row;
}

bool Verifier::AllPassed() const {
  if (results_.empty()) return false;
  for (const SloResult& r : results_) {
    if (!r.pass) return false;
  }
  return true;
}

}  // namespace udr::scenario
