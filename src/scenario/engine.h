// Scenario engine: compiles a scenario::Script against a workload::Testbed
// and executes it — one deterministic sim-clock loop interleaving the FE/PS
// traffic mix, the PoA dispatch-window flushes, background-migration pacing
// and the script's timed steps — while a scenario::Verifier continuously
// folds every outcome and checks the harness invariants. The result is a
// ScenarioReport whose Serialize() output is byte-identical for the same
// spec + seed (the replay-determinism contract the harness tests assert).

#ifndef UDR_SCENARIO_ENGINE_H_
#define UDR_SCENARIO_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scenario/script.h"
#include "scenario/verifier.h"
#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"
#include "workload/zipf.h"

namespace udr::scenario {

/// Everything a scenario run needs: the deployment, the script and the
/// traffic shape driven around it.
struct ScenarioSpec {
  std::string name = "scenario";
  workload::TestbedOptions testbed;
  Script script;
  MicroDuration duration = Seconds(20);
  double fe_rate_per_sec = 400.0;
  double ps_rate_per_sec = 20.0;
  double ims_fraction = 0.15;
  /// Skew of the subscriber draw (0 = uniform; storm scenarios use 0.99).
  double zipf_theta = 0.0;
  sim::SiteId ps_site = 0;
  bool batched = false;
  /// After the traffic horizon, keep advancing the clock at the migration
  /// scheduler's pace until every background task drained (so end-of-run
  /// SLOs judge the completed move).
  bool drain_migration_at_end = true;
};

/// Outcome of one scenario run.
struct ScenarioReport {
  std::string name;
  ScenarioStats stats;
  AuditReport audit;
  std::vector<SloResult> slos;
  /// Consistency-restoration totals over every HealLink reconciliation.
  replication::RestorationReport restoration;
  int64_t heal_reconciliations = 0;
  int64_t steps_executed = 0;
  MicroDuration sim_duration = 0;
  /// Time-series sampler output (empty when obs_sample_interval_us is 0 —
  /// Serialize() appends obs sections only when non-empty, so runs with
  /// observability off keep their byte-identical legacy serialization).
  std::string obs_series;
  /// Flight-recorder dump captured when an evaluated SLO failed (empty on
  /// pass or when no SLO row ran): the recent control-plane events leading
  /// up to the breach.
  std::string flight_dump;

  /// Every SLO row evaluated and passed (false when none was evaluated).
  bool Passed() const;

  /// Stable text form: same spec + seed => byte-identical output. No wall
  /// clock, no addresses, fixed float formatting.
  std::string Serialize() const;
};

/// Executes one spec. Owns the testbed and all driver state.
class Engine {
 public:
  explicit Engine(const ScenarioSpec& spec);

  ScenarioReport Run();

  workload::Testbed& testbed() { return bed_; }
  Verifier& verifier() { return verifier_; }

 private:
  /// A deferred FE procedure parked in a PoA window.
  struct InFlight {
    uint64_t handle = 0;
    telecom::FrontEnd* fe = nullptr;
    bool is_write = false;
    bool storm = false;
    uint64_t subscriber = 0;
    int64_t stamp = 0;  ///< 0: unstamped procedure.
  };

  void ExecuteStep(const Step& step, ScenarioReport* report);
  void FeTick(MicroTime now);
  void PsTick();
  /// Scores one FE outcome (or parks it while deferred).
  void Dispatch(telecom::FrontEnd* fe, telecom::ProcedureResult r,
                bool is_write, bool storm, uint64_t subscriber, int64_t stamp);
  /// Collects every deferred procedure whose window flushed.
  void Collect();

  ScenarioSpec spec_;
  workload::Testbed bed_;
  Verifier verifier_;
  Rng rng_;
  workload::ZipfGenerator subscriber_pick_;
  std::vector<std::unique_ptr<telecom::HlrFe>> hlr_fes_;
  std::vector<std::unique_ptr<telecom::HssFe>> hss_fes_;
  std::unique_ptr<telecom::ProvisioningSystem> ps_;
  std::vector<InFlight> in_flight_;

  int64_t next_stamp_ = 0;  ///< Monotonic acked-write stamp source.

  // Script-driven window state.
  MicroTime storm_until_ = 0;
  int storm_events_ = 0;
  MicroTime wave_until_ = 0;
  sim::SiteId wave_site_ = 0;
  double wave_fraction_ = 0.0;
  /// Replicas crashed per KillSite, for the matching RestoreSite.
  struct CrashedReplica {
    uint32_t partition = 0;
    uint32_t replica = 0;
  };
  std::unordered_map<sim::SiteId, std::vector<CrashedReplica>> crashed_;
};

/// One-shot convenience: build the engine, run, return the report.
ScenarioReport RunScenario(const ScenarioSpec& spec);

}  // namespace udr::scenario

#endif  // UDR_SCENARIO_ENGINE_H_
