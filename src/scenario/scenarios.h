// The five compound disaster / mass-event scenarios the harness ships with,
// each a ScenarioSpec (deployment + script + traffic shape) with explicit
// SLO rows:
//
//   1. site-loss-failover    — a whole site dies under load and later
//      returns; dual-sequence replication + failover keep every acked write,
//      PS reads stay master-clean, FE staleness stays within policy.
//   2. intersite-partition   — the backbone splits one site from the other
//      two under prefer-availability; divergent writes are taken, the heal
//      reconciliation converges, and the last-acked state survives.
//   3. attach-storm          — a mass re-registration storm fires through
//      the PoA dispatch windows over a Zipf-skewed population; the storm
//      p99 stays bounded and nothing acked is lost.
//   4. roaming-wave          — a population wave roams to one site; a new
//      cluster scales out there and a population-weighted rebalance drains
//      live through the throttled migration scheduler.
//   5. se-decommission       — one storage element drains its primary
//      copies via a single planner call while traffic keeps flowing.

#ifndef UDR_SCENARIO_SCENARIOS_H_
#define UDR_SCENARIO_SCENARIOS_H_

#include <string>
#include <vector>

#include "scenario/engine.h"

namespace udr::scenario {

ScenarioSpec SiteLossFailover();
ScenarioSpec IntersitePartition();
ScenarioSpec AttachStorm();
ScenarioSpec RoamingWave();
ScenarioSpec SeDecommission();

/// All five, in the order above.
std::vector<ScenarioSpec> StandardScenarios();

}  // namespace udr::scenario

#endif  // UDR_SCENARIO_SCENARIOS_H_
