// Declarative disaster / mass-event scripts: a scenario is a list of timed
// steps over the simulation clock — sites die and recover, backbone links
// partition and heal, attach storms and roaming waves fire, storage elements
// decommission — plus SLO assertions evaluated against the continuously
// collected statistics. Scripts are pure data: the scenario::Engine compiles
// and executes them against a workload::Testbed, and the same script + seed
// always replays byte-identically.

#ifndef UDR_SCENARIO_SCRIPT_H_
#define UDR_SCENARIO_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/topology.h"

namespace udr::scenario {

/// What a timed step does when the clock reaches it.
enum class StepKind {
  kKillSite,        ///< Crash every replica the site hosts + drain its PoA.
  kRestoreSite,     ///< Recover the site's replicas + rejoin its PoA.
  kPartitionLink,   ///< Sever links between two site groups for [at, until).
  kHealLink,        ///< Post-heal reconciliation (catch-up + restoration).
  kAttachStorm,     ///< Mass re-registration burst through the PoA windows.
  kRoamingWave,     ///< A share of procedures originates at a visited site.
  kScaleOut,        ///< Deploy one more blade cluster at a site.
  kStartRebalance,  ///< Plan + enqueue a background (throttled) rebalance.
  kDecommissionSe,  ///< Drain one SE's primary copies via the scheduler.
  kAssertSlo,       ///< Evaluate one SLO row against the stats so far.
};

/// What an SLO assertion measures. `bound` semantics per kind are noted;
/// counters with an implicit bound of zero ignore it.
enum class SloKind {
  kZeroAckedWriteLoss,   ///< Ledger audit: acked stamps all durable (== 0).
  kPerKeyOrder,          ///< Commit-log stamp regressions per key (== 0).
  kPsStaleZero,          ///< Stale master-only PS procedures (== 0).
  kFeStaleFractionMax,   ///< FE stale-procedure fraction <= bound.
  kFeAvailabilityMin,    ///< FE availability >= bound.
  kPsAvailabilityMin,    ///< PS availability >= bound.
  kFeP99Max,             ///< FE p99 procedure latency <= bound µs.
  kStormP99Max,          ///< Storm-deferred p99 latency <= bound µs.
  kFailoversMin,         ///< Partitions whose master moved >= bound.
  kDivergenceObserved,   ///< AP-mode divergent writes taken >= bound.
  kConverged,            ///< Partitions still holding divergence (== 0).
  kMigrationComplete,    ///< Background migration tasks still live (== 0).
  kPopulationSpreadMax,  ///< Final per-SE population spread <= bound.
  kSeDrained,            ///< Primary copies left on SE `arg` (== 0).
};

/// One SLO row: named, bounded, evaluated by the verifier when its step
/// fires (scenarios put them at end-of-run).
struct SloCheck {
  SloKind kind = SloKind::kZeroAckedWriteLoss;
  std::string label;   ///< Row name in the report / BENCH json.
  double bound = 0.0;  ///< Threshold (see SloKind).
  int64_t arg = -1;    ///< Kind-specific operand (e.g. SE index).
};

/// One timed step. Which fields matter depends on `kind`; unused fields
/// keep their defaults so steps compare and serialize deterministically.
struct Step {
  MicroTime at = 0;  ///< Fire time, relative to scenario start.
  StepKind kind = StepKind::kAssertSlo;

  sim::SiteId site = 0;               ///< Kill/Restore/ScaleOut/RoamingWave.
  std::vector<sim::SiteId> group_a;   ///< PartitionLink side A.
  std::vector<sim::SiteId> group_b;   ///< PartitionLink side B.
  MicroTime until = 0;                ///< PartitionLink heal time.
  MicroDuration duration = 0;         ///< Storm / wave window length.
  int events_per_tick = 0;            ///< Storm: deferred events per FE tick.
  double fraction = 0.0;              ///< Wave: share of roamed procedures.
  int se_index = -1;                  ///< DecommissionSe target.
  SloCheck slo;                       ///< AssertSlo payload.
};

/// A scenario script: construction-order step list with builder helpers.
/// The engine executes steps in time order (stable for equal times).
class Script {
 public:
  Script& KillSite(MicroTime at, sim::SiteId site);
  Script& RestoreSite(MicroTime at, sim::SiteId site);
  /// Severs every link between the groups for [at, until). Pair with a
  /// HealLink step shortly after `until` to reconcile divergent state.
  Script& PartitionLink(MicroTime at, MicroTime until,
                        std::vector<sim::SiteId> group_a,
                        std::vector<sim::SiteId> group_b);
  Script& HealLink(MicroTime at);
  Script& AttachStorm(MicroTime at, MicroDuration duration,
                      int events_per_tick);
  Script& RoamingWave(MicroTime at, MicroDuration duration,
                      sim::SiteId to_site, double fraction);
  Script& ScaleOut(MicroTime at, sim::SiteId site);
  Script& StartRebalance(MicroTime at);
  Script& DecommissionSe(MicroTime at, int se_index);
  Script& AssertSlo(MicroTime at, SloCheck check);

  const std::vector<Step>& steps() const { return steps_; }

  /// Steps sorted by fire time (stable: ties keep construction order).
  std::vector<Step> Sorted() const;

 private:
  std::vector<Step> steps_;
};

/// Human-readable step kind (reports and traces).
const char* StepKindName(StepKind kind);
const char* SloKindName(SloKind kind);

}  // namespace udr::scenario

#endif  // UDR_SCENARIO_SCRIPT_H_
