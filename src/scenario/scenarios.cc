#include "scenario/scenarios.h"

namespace udr::scenario {

namespace {

/// Shared deployment shape: three sites, one cluster each, two SEs per
/// cluster, two partitions per SE, subscribers pinned to home sites
/// (selective placement §3.5). Scenarios tweak the replication / coalescing
/// / migration knobs on top.
ScenarioSpec Base(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.testbed.sites = 3;
  spec.testbed.seed = 42;
  spec.testbed.subscribers = 600;
  spec.testbed.pin_home_sites = true;
  spec.testbed.udr.replication_factor = 3;
  spec.testbed.udr.se_per_cluster = 2;
  spec.testbed.udr.partitions_per_se = 2;
  spec.testbed.udr.fe_slave_reads = true;
  spec.duration = Seconds(12);
  spec.fe_rate_per_sec = 300.0;
  spec.ps_rate_per_sec = 20.0;
  spec.ims_fraction = 0.15;
  spec.ps_site = 0;
  return spec;
}

/// SLO rows fire just past the traffic horizon: windows are flushed and
/// (when the spec drains) background migration has completed by then.
MicroTime AssertAt(const ScenarioSpec& spec) {
  return spec.duration + Millis(1);
}

SloCheck Slo(SloKind kind, const std::string& label, double bound = 0.0,
             int64_t arg = -1) {
  return SloCheck{kind, label, bound, arg};
}

/// The invariant rows every scenario carries: acked durability, per-key
/// serialization order, and the PS master-only stale policy.
void AddCoreSlos(ScenarioSpec* spec) {
  MicroTime at = AssertAt(*spec);
  spec->script.AssertSlo(
      at, Slo(SloKind::kZeroAckedWriteLoss, "zero-acked-write-loss"));
  spec->script.AssertSlo(at, Slo(SloKind::kPerKeyOrder, "per-key-order"));
  spec->script.AssertSlo(at, Slo(SloKind::kPsStaleZero, "ps-stale-zero"));
}

}  // namespace

ScenarioSpec SiteLossFailover() {
  ScenarioSpec spec = Base("site-loss-failover");
  // Zero acked-write loss across a site kill needs synchronous replication:
  // async mode legitimately loses acked-but-unshipped writes on failover.
  spec.testbed.udr.sync_mode = replication::SyncMode::kDualSequence;
  spec.testbed.udr.failover_detection = Millis(500);
  spec.script.KillSite(Seconds(3), 1);
  spec.script.RestoreSite(Seconds(9), 1);
  AddCoreSlos(&spec);
  MicroTime at = AssertAt(spec);
  spec.script.AssertSlo(at, Slo(SloKind::kFailoversMin, "failovers-min", 1));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeAvailabilityMin, "fe-availability-min", 0.98));
  spec.script.AssertSlo(
      at, Slo(SloKind::kPsAvailabilityMin, "ps-availability-min", 0.90));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeStaleFractionMax, "fe-stale-fraction-max", 0.05));
  return spec;
}

ScenarioSpec IntersitePartition() {
  ScenarioSpec spec = Base("intersite-partition");
  // Prefer availability: the minority side keeps accepting writes into
  // divergence logs; the heal step reconciles them (§5).
  spec.testbed.udr.partition_mode =
      replication::PartitionMode::kPreferAvailability;
  spec.testbed.udr.merge_policy = replication::MergePolicy::kFieldMergeLww;
  spec.script.PartitionLink(Seconds(3), Seconds(8), {0}, {1, 2});
  spec.script.HealLink(Seconds(8) + Millis(50));
  AddCoreSlos(&spec);
  MicroTime at = AssertAt(spec);
  spec.script.AssertSlo(
      at, Slo(SloKind::kDivergenceObserved, "divergence-observed", 1));
  spec.script.AssertSlo(at, Slo(SloKind::kConverged, "converged"));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeAvailabilityMin, "fe-availability-min", 0.95));
  return spec;
}

ScenarioSpec AttachStorm() {
  ScenarioSpec spec = Base("attach-storm");
  // Storm events ride the PoA cross-event dispatch windows; the subscriber
  // draw is Zipf-skewed so hot keys hammer single partitions.
  spec.testbed.udr.coalesce_window_us = Micros(200);
  spec.testbed.udr.coalesce_max_ops = 64;
  spec.zipf_theta = 0.99;
  spec.script.AttachStorm(Seconds(3), Seconds(4), /*events_per_tick=*/8);
  AddCoreSlos(&spec);
  MicroTime at = AssertAt(spec);
  spec.script.AssertSlo(at,
                        Slo(SloKind::kStormP99Max, "storm-p99-max", 5000.0));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeAvailabilityMin, "fe-availability-min", 0.99));
  return spec;
}

ScenarioSpec RoamingWave() {
  ScenarioSpec spec = Base("roaming-wave");
  // Population-weighted rebalance onto a freshly scaled-out cluster, drained
  // live through the throttled background migration scheduler.
  spec.testbed.udr.rebalance_weight = routing::RebalanceWeight::kPopulation;
  spec.testbed.udr.migration_bandwidth_bps = 4 * 1024 * 1024;
  spec.testbed.udr.migration_chunk_bytes = 32 * 1024;
  spec.script.RoamingWave(Seconds(2), Seconds(8), /*to_site=*/2,
                          /*fraction=*/0.5);
  spec.script.ScaleOut(Seconds(4), /*site=*/2);
  spec.script.StartRebalance(Seconds(4) + Millis(500));
  AddCoreSlos(&spec);
  MicroTime at = AssertAt(spec);
  spec.script.AssertSlo(
      at, Slo(SloKind::kMigrationComplete, "migration-complete"));
  spec.script.AssertSlo(
      at, Slo(SloKind::kPopulationSpreadMax, "population-spread-max", 150));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeAvailabilityMin, "fe-availability-min", 0.97));
  spec.script.AssertSlo(at, Slo(SloKind::kFeP99Max, "fe-p99-max", 100000.0));
  return spec;
}

ScenarioSpec SeDecommission() {
  ScenarioSpec spec = Base("se-decommission");
  spec.testbed.udr.migration_bandwidth_bps = 4 * 1024 * 1024;
  spec.testbed.udr.migration_chunk_bytes = 32 * 1024;
  spec.duration = Seconds(10);
  spec.script.DecommissionSe(Seconds(3), /*se_index=*/0);
  AddCoreSlos(&spec);
  MicroTime at = AssertAt(spec);
  spec.script.AssertSlo(at, Slo(SloKind::kSeDrained, "se-drained", 0, 0));
  spec.script.AssertSlo(
      at, Slo(SloKind::kMigrationComplete, "migration-complete"));
  spec.script.AssertSlo(
      at, Slo(SloKind::kFeAvailabilityMin, "fe-availability-min", 0.97));
  return spec;
}

std::vector<ScenarioSpec> StandardScenarios() {
  return {SiteLossFailover(), IntersitePartition(), AttachStorm(),
          RoamingWave(), SeDecommission()};
}

}  // namespace udr::scenario
