#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/time.h"

namespace udr {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) total += w + 3;
  if (total > 0) total -= 1;

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "  ";
      os << c;
      for (size_t pad = c.size(); pad < widths[i]; ++pad) os << ' ';
      os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

std::string Table::Num(int64_t v) {
  char raw[32];
  bool neg = v < 0;
  unsigned long long uv =
      neg ? static_cast<unsigned long long>(-(v + 1)) + 1ULL
          : static_cast<unsigned long long>(v);
  std::snprintf(raw, sizeof(raw), "%llu", uv);
  std::string digits = raw;
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::Dbl(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string Table::Dur(int64_t micros) { return FormatDuration(micros); }

std::string Table::Bytes(int64_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (b < 1024) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else if (b < 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else if (b < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f GB", b / (1024.0 * 1024 * 1024));
  }
  return buf;
}

}  // namespace udr
