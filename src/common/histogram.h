// Latency/size histogram with exact percentile queries. Values are stored in
// logarithmic buckets (HdrHistogram-style, base-2 with linear sub-buckets) so
// recording is O(1) and memory is bounded regardless of sample count.

#ifndef UDR_COMMON_HISTOGRAM_H_
#define UDR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace udr {

/// Fixed-memory histogram of non-negative int64 values.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative values are clamped to zero.
  void Record(int64_t value);
  /// Records `count` identical samples.
  void RecordMany(int64_t value, int64_t count);

  /// Number of recorded samples.
  int64_t count() const { return count_; }
  /// Sum of recorded samples.
  int64_t sum() const { return sum_; }
  /// Minimum recorded value (0 when empty).
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  /// Maximum recorded value (0 when empty).
  int64_t max() const { return max_; }
  /// Arithmetic mean (0 when empty).
  double Mean() const;
  /// Value at the given percentile in [0, 100]. Returns an upper bound of the
  /// bucket containing the requested rank (<= 6.25% relative error).
  int64_t Percentile(double p) const;

  int64_t P50() const { return Percentile(50); }
  int64_t P95() const { return Percentile(95); }
  int64_t P99() const { return Percentile(99); }
  int64_t P999() const { return Percentile(99.9); }

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Resets to empty.
  void Reset();

  /// One-line summary "n=.. mean=.. p50=.. p95=.. p99=.. max=..".
  std::string Summary() const;
  /// Same but with values formatted as durations (µs input).
  std::string LatencySummary() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 48;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace udr

#endif  // UDR_COMMON_HISTOGRAM_H_
