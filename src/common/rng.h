// Deterministic pseudo-random number generation (xoshiro256** seeded via
// SplitMix64). Every source of randomness in the library flows through Rng so
// that a fixed seed reproduces a run exactly.

#ifndef UDR_COMMON_RNG_H_
#define UDR_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace udr {

/// Deterministic RNG. Not thread-safe; use one per logical actor.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same sequence on every platform.
  explicit Rng(uint64_t seed = 42) { Reseed(seed); }

  /// Re-seeds in place.
  void Reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word xoshiro state.
    uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      w = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normally distributed value (Box-Muller).
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
  }

  /// Zipf-like skewed rank in [0, n): rank 0 is the most popular. skew <= 0
  /// degenerates to uniform. Uses the closed-form inverse CDF of the
  /// continuous power-law density p(x) ~ x^-skew on [1, n+1] — loop-free and
  /// deterministic, with the discrete distribution's qualitative shape.
  uint64_t Zipf(uint64_t n, double skew) {
    assert(n > 0);
    if (skew <= 0.0 || n == 1) return Uniform(n);
    const double s = skew;
    const double u = NextDouble();
    const double top = static_cast<double>(n) + 1.0;
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
      x = std::exp(u * std::log(top));
    } else {
      const double a = 1.0 - s;
      x = std::pow(u * (std::pow(top, a) - 1.0) + 1.0, 1.0 / a);
    }
    uint64_t k = static_cast<uint64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    return k - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-actor streams).
  Rng Fork() { return Rng(Next() ^ 0xA02BDBF7BB3C0A7ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace udr

#endif  // UDR_COMMON_RNG_H_
