#include "common/hash_ring.h"

#include <algorithm>
#include <cassert>

namespace udr {

HashRing::HashRing(int vnodes_per_node) : vnodes_(vnodes_per_node) {
  assert(vnodes_ > 0);
}

uint64_t HashRing::PointHash(uint32_t node, int vnode) {
  uint64_t h = 14695981039346656037ULL;
  uint64_t seed =
      (static_cast<uint64_t>(node) << 20) | static_cast<uint64_t>(vnode);
  for (int b = 0; b < 8; ++b) {
    h = (h ^ ((seed >> (b * 8)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

void HashRing::AddNode(uint32_t node) {
  if (!nodes_.insert(node).second) return;
  size_t old_size = ring_.size();
  ring_.reserve(old_size + static_cast<size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    ring_.emplace_back(PointHash(node, v), node);
  }
  std::sort(ring_.begin() + old_size, ring_.end());
  std::inplace_merge(ring_.begin(), ring_.begin() + old_size, ring_.end());
}

void HashRing::AddNodes(uint32_t first, uint32_t count) {
  bool appended = false;
  for (uint32_t node = first; node < first + count; ++node) {
    if (!nodes_.insert(node).second) continue;
    for (int v = 0; v < vnodes_; ++v) {
      ring_.emplace_back(PointHash(node, v), node);
    }
    appended = true;
  }
  if (appended) std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveNode(uint32_t node) {
  if (nodes_.erase(node) == 0) return;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const auto& p) { return p.second == node; }),
              ring_.end());
}

bool HashRing::SplitNode(uint32_t parent, uint32_t sibling) {
  if (nodes_.count(parent) == 0 || nodes_.count(sibling) != 0) return false;
  if (ring_.empty()) return false;

  // A point at ring_[i] owns the arc (ring_[i-1].first, ring_[i].first]
  // (wrapping), so the midpoint of that arc hands the lower half to the
  // sibling while the parent keeps (mid, point]. Modular arithmetic on
  // uint64_t handles the wrap-around arc for free.
  std::vector<std::pair<uint64_t, uint32_t>> midpoints;
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i].second != parent) continue;
    const uint64_t point = ring_[i].first;
    const uint64_t prev =
        i == 0 ? ring_.back().first : ring_[i - 1].first;
    const uint64_t arc = point - prev;  // Wraps when i == 0.
    if (arc < 2) continue;              // Nothing left to split.
    midpoints.emplace_back(prev + arc / 2, sibling);
  }
  if (midpoints.empty()) return false;

  nodes_.insert(sibling);
  const size_t old_size = ring_.size();
  ring_.insert(ring_.end(), midpoints.begin(), midpoints.end());
  std::sort(ring_.begin() + old_size, ring_.end());
  std::inplace_merge(ring_.begin(), ring_.begin() + old_size, ring_.end());
  return true;
}

uint32_t HashRing::NodeOfHash(uint64_t hash) const {
  assert(!ring_.empty());
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(hash, 0u),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace udr
