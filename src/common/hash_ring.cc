#include "common/hash_ring.h"

#include <algorithm>
#include <cassert>

namespace udr {

HashRing::HashRing(int vnodes_per_node) : vnodes_(vnodes_per_node) {
  assert(vnodes_ > 0);
}

uint64_t HashRing::PointHash(uint32_t node, int vnode) {
  uint64_t h = 14695981039346656037ULL;
  uint64_t seed =
      (static_cast<uint64_t>(node) << 20) | static_cast<uint64_t>(vnode);
  for (int b = 0; b < 8; ++b) {
    h = (h ^ ((seed >> (b * 8)) & 0xFF)) * 1099511628211ULL;
  }
  return h;
}

void HashRing::AddNode(uint32_t node) {
  if (!nodes_.insert(node).second) return;
  size_t old_size = ring_.size();
  ring_.reserve(old_size + static_cast<size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    ring_.emplace_back(PointHash(node, v), node);
  }
  std::sort(ring_.begin() + old_size, ring_.end());
  std::inplace_merge(ring_.begin(), ring_.begin() + old_size, ring_.end());
}

void HashRing::AddNodes(uint32_t first, uint32_t count) {
  bool appended = false;
  for (uint32_t node = first; node < first + count; ++node) {
    if (!nodes_.insert(node).second) continue;
    for (int v = 0; v < vnodes_; ++v) {
      ring_.emplace_back(PointHash(node, v), node);
    }
    appended = true;
  }
  if (appended) std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveNode(uint32_t node) {
  if (nodes_.erase(node) == 0) return;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const auto& p) { return p.second == node; }),
              ring_.end());
}

uint32_t HashRing::NodeOfHash(uint64_t hash) const {
  assert(!ring_.empty());
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(hash, 0u),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace udr
