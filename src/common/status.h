// Status and StatusOr: error handling primitives used across the UDR library.
//
// The library does not throw exceptions across module boundaries. Fallible
// operations return Status (or StatusOr<T> when they produce a value), in the
// style of Arrow / RocksDB / absl.

#ifndef UDR_COMMON_STATUS_H_
#define UDR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace udr {

/// Canonical error space for the UDR library.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,          ///< Entry/subscriber/record does not exist.
  kAlreadyExists = 2,     ///< Insert of a key that is already present.
  kInvalidArgument = 3,   ///< Malformed DN, filter, or parameter.
  kUnavailable = 4,       ///< Target unreachable (partition, crash, not started).
  kAborted = 5,           ///< Transaction aborted (conflict, explicit rollback).
  kDeadlineExceeded = 6,  ///< Operation exceeded its latency budget.
  kFailedPrecondition = 7,///< System state forbids the operation (e.g. read-only
                          ///< slave receives a write).
  kResourceExhausted = 8, ///< RAM budget or capacity limit hit.
  kCorruption = 9,        ///< Checkpoint/log integrity violation.
  kInternal = 10,         ///< Invariant violation inside the library.
  kUnimplemented = 11,    ///< Feature not provided by this realization.
};

/// Human-readable name of a StatusCode ("NotFound", "Unavailable", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the Ok case.
class Status {
 public:
  /// Constructs an Ok status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Unavailable(std::string m = "unavailable") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Aborted(std::string m = "aborted") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m = "deadline exceeded") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "failed precondition") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "resource exhausted") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Corruption(std::string m = "corruption") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Internal(std::string m = "internal error") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m = "unimplemented") {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value or an error. `ok()` must be checked before dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Implicit from error status (must not be Ok).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from Ok status without value");
  }
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-Ok status from an expression to the caller.
#define UDR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::udr::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a StatusOr expression or returns its error.
#define UDR_ASSIGN_OR_RETURN(lhs, expr)          \
  auto UDR_CONCAT_(_so_, __LINE__) = (expr);     \
  if (!UDR_CONCAT_(_so_, __LINE__).ok())         \
    return UDR_CONCAT_(_so_, __LINE__).status(); \
  lhs = std::move(UDR_CONCAT_(_so_, __LINE__)).value()

#define UDR_CONCAT_INNER_(a, b) a##b
#define UDR_CONCAT_(a, b) UDR_CONCAT_INNER_(a, b)

}  // namespace udr

#endif  // UDR_COMMON_STATUS_H_
