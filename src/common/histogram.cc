#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/time.h"

namespace udr {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  // Octave = position of the highest set bit above the sub-bucket range.
  int msb = 63 - __builtin_clzll(static_cast<unsigned long long>(value));
  int octave = msb - kSubBucketBits + 1;
  if (octave >= kOctaves - 1) octave = kOctaves - 2;
  int sub = static_cast<int>(value >> octave) & (kSubBuckets - 1);
  // Values in octave o span [2^(o+kSubBucketBits-1), 2^(o+kSubBucketBits)).
  int idx = (octave + 1) * kSubBuckets + sub;
  if (idx >= kBuckets) idx = kBuckets - 1;
  return idx;
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  int octave = bucket / kSubBuckets - 1;
  int sub = bucket % kSubBuckets;
  return (static_cast<int64_t>(sub) + 1) << octave;
}

void Histogram::Record(int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(int64_t value, int64_t n) {
  if (n <= 0) return;
  if (value < 0) value = 0;
  buckets_[BucketFor(value)] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += n;
  sum_ += value * n;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min();
  if (p >= 100) return max_;
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      int64_t ub = BucketUpperBound(i);
      return std::min(ub, max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<long long>(count_), Mean(),
                static_cast<long long>(P50()), static_cast<long long>(P95()),
                static_cast<long long>(P99()), static_cast<long long>(max_));
  return buf;
}

std::string Histogram::LatencySummary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%s p50=%s p95=%s p99=%s max=%s",
                static_cast<long long>(count_),
                FormatDuration(static_cast<MicroDuration>(Mean())).c_str(),
                FormatDuration(P50()).c_str(), FormatDuration(P95()).c_str(),
                FormatDuration(P99()).c_str(), FormatDuration(max_).c_str());
  return buf;
}

}  // namespace udr
