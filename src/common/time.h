// Simulated-time primitives. All time in the UDR library is virtual and
// expressed in integer microseconds since simulation start, which makes every
// run bit-for-bit deterministic.

#ifndef UDR_COMMON_TIME_H_
#define UDR_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace udr {

/// Virtual time in microseconds since the start of the simulation.
using MicroTime = int64_t;

/// A duration in microseconds.
using MicroDuration = int64_t;

constexpr MicroTime kTimeZero = 0;
constexpr MicroTime kTimeInfinity = std::numeric_limits<int64_t>::max();

constexpr MicroDuration Micros(int64_t us) { return us; }
constexpr MicroDuration Millis(int64_t ms) { return ms * 1000; }
constexpr MicroDuration Seconds(int64_t s) { return s * 1000 * 1000; }
constexpr MicroDuration Minutes(int64_t m) { return m * 60 * 1000 * 1000; }
constexpr MicroDuration Hours(int64_t h) { return h * 3600LL * 1000 * 1000; }

constexpr double ToMillis(MicroDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToSeconds(MicroDuration d) { return static_cast<double>(d) / 1e6; }

/// Formats a duration with an adaptive unit, e.g. "12.5ms", "3.2s".
std::string FormatDuration(MicroDuration d);

/// A half-open time interval [begin, end).
struct TimeInterval {
  MicroTime begin = 0;
  MicroTime end = 0;

  bool Contains(MicroTime t) const { return t >= begin && t < end; }
  bool Overlaps(const TimeInterval& o) const {
    return begin < o.end && o.begin < end;
  }
  MicroDuration length() const { return end - begin; }
};

}  // namespace udr

#endif  // UDR_COMMON_TIME_H_
