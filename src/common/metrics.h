// Lightweight named-counter / named-histogram registry used by the simulation
// components to report what happened during a scenario run.
//
// Thread safety: counter and histogram mutation through Add() / Observe() /
// Get() / MergeFrom() / Reset() / Dump() is guarded by mu_ (an annotated
// common::Mutex — clang -Wthread-safety checks the discipline), so a
// registry may be shared by the concurrent shard threads of the
// multi-threaded execution mode (src/exec/). The reference-returning
// accessors (Hist(), counters(), histograms()) exist for the single-threaded
// simulation drivers and are NOT safe against concurrent mutators — shard
// runtimes give each shard its own registry and merge them on read via
// MergeFrom() instead of sharing references.

#ifndef UDR_COMMON_METRICS_H_
#define UDR_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace udr {

/// A registry of named counters and histograms.
class Metrics {
 public:
  /// Pre-registered counter handle: the hot-path alternative to the string
  /// Add() API. RegisterCounter() resolves the name once; Add() through the
  /// handle takes the registry lock but skips the string-map lookup. Slots
  /// are std::map nodes, so handles stay valid for the registry's lifetime
  /// (Reset() zeroes values in place rather than erasing nodes). A
  /// default-constructed handle is a safe no-op.
  class Counter {
   public:
    Counter() = default;

    void Add(int64_t delta = 1) {
      if (mu_ == nullptr) return;
      common::MutexLock lock(*mu_);
      *slot_ += delta;
    }
    int64_t value() const {
      if (mu_ == nullptr) return 0;
      common::MutexLock lock(*mu_);
      return *slot_;
    }

   private:
    friend class Metrics;
    Counter(common::Mutex* mu, int64_t* slot) : mu_(mu), slot_(slot) {}

    common::Mutex* mu_ = nullptr;
    int64_t* slot_ = nullptr;
  };

  /// Pre-registered histogram handle; same contract as Counter.
  class HistHandle {
   public:
    HistHandle() = default;

    void Observe(int64_t value) {
      if (mu_ == nullptr) return;
      common::MutexLock lock(*mu_);
      slot_->Record(value);
    }

   private:
    friend class Metrics;
    HistHandle(common::Mutex* mu, Histogram* slot) : mu_(mu), slot_(slot) {}

    common::Mutex* mu_ = nullptr;
    Histogram* slot_ = nullptr;
  };

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Resolves a counter name to a stable handle (creating the counter at
  /// zero). Register at construction time, Add() on the hot path.
  Counter RegisterCounter(const std::string& name) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return Counter(&mu_, &counters_[name]);
  }

  /// Resolves a histogram name to a stable handle (creating it empty).
  HistHandle RegisterHist(const std::string& name) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return HistHandle(&mu_, &histograms_[name]);
  }

  /// Adds `delta` to the named counter (creating it at zero). Thread-safe.
  /// Cold-path API — hot call sites use RegisterCounter() handles.
  void Add(const std::string& name, int64_t delta = 1) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    counters_[name] += delta;
  }

  /// Current value of the named counter (0 when absent). Thread-safe.
  int64_t Get(const std::string& name) const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Records a sample into the named histogram. Thread-safe.
  void Observe(const std::string& name, int64_t value) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    histograms_[name].Record(value);
  }

  /// Access to a named histogram (created empty on first use). The returned
  /// reference is only safe while no other thread mutates this registry.
  Histogram& Hist(const std::string& name) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return histograms_[name];
  }

  /// Read-only view of the named histogram; an empty one when absent. Same
  /// single-threaded caveat as Hist().
  const Histogram& HistOrEmpty(const std::string& name) const EXCLUDES(mu_) {
    static const Histogram kEmpty;
    common::MutexLock lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? kEmpty : it->second;
  }

  /// Snapshot of every counter. Thread-safe (copies under the lock).
  std::map<std::string, int64_t> CountersSnapshot() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return counters_;
  }

  /// Folds another registry into this one: counters add, histograms merge.
  /// The per-shard pattern — each shard owns a registry, readers merge.
  void MergeFrom(const Metrics& o) EXCLUDES(mu_) {
    // Snapshot the source first so the two locks never nest (no lock-order
    // deadlock between two registries merging into each other; both locks
    // share the "metrics.registry" node in the lock-order graph, so nesting
    // them would trip the UDR_DEADLOCK_CHECK self-cycle detection too).
    std::map<std::string, int64_t> counters;
    std::map<std::string, Histogram> histograms;
    {
      common::MutexLock lock(o.mu_);
      counters = o.counters_;
      histograms = o.histograms_;
    }
    common::MutexLock lock(mu_);
    for (const auto& [k, v] : counters) counters_[k] += v;
    for (const auto& [k, h] : histograms) histograms_[k].Merge(h);
  }

  /// Reference views for single-threaded drivers (tests, sim reports). Not
  /// safe against concurrent mutators — which is exactly why the analysis
  /// cannot bless them: they hand out references to guarded state without
  /// the lock. Contract: caller guarantees no concurrent mutator exists.
  // Escape justified by the single-threaded-driver contract above.
  const std::map<std::string, int64_t>& counters() const
      NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  // Escape justified by the single-threaded-driver contract above.
  const std::map<std::string, Histogram>& histograms() const
      NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  /// Zeroes all counters and histograms. Values are reset in place — map
  /// nodes are never erased, so RegisterCounter()/RegisterHist() handles
  /// survive a Reset(). Thread-safe.
  void Reset() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    for (auto& [k, v] : counters_) v = 0;
    for (auto& [k, h] : histograms_) h.Reset();
  }

  /// Multi-line dump: all counters ("name = value"), then all histograms
  /// ("name : count=N p50=X p99=Y"), each section in sorted name order and
  /// every histogram line carrying the same fields (empty ones included) —
  /// deterministic bytes for replay comparison.
  std::string Dump() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    std::string out;
    for (const auto& [k, v] : counters_) {
      out += k;
      out += " = ";
      out += std::to_string(v);
      out += '\n';
    }
    for (const auto& [k, h] : histograms_) {
      out += k;
      out += " : count=";
      out += std::to_string(h.count());
      out += " p50=";
      out += std::to_string(h.P50());
      out += " p99=";
      out += std::to_string(h.P99());
      out += '\n';
    }
    return out;
  }

 private:
  mutable common::Mutex mu_{"metrics.registry"};
  std::map<std::string, int64_t> counters_ GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mu_);
};

}  // namespace udr

#endif  // UDR_COMMON_METRICS_H_
