// Lightweight named-counter / named-histogram registry used by the simulation
// components to report what happened during a scenario run.

#ifndef UDR_COMMON_METRICS_H_
#define UDR_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"

namespace udr {

/// A registry of named counters and histograms. Not thread-safe (the
/// simulation is single-threaded by design).
class Metrics {
 public:
  /// Adds `delta` to the named counter (creating it at zero).
  void Add(const std::string& name, int64_t delta = 1) { counters_[name] += delta; }

  /// Current value of the named counter (0 when absent).
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Records a sample into the named histogram.
  void Observe(const std::string& name, int64_t value) {
    histograms_[name].Record(value);
  }

  /// Access to a named histogram (created empty on first use).
  Histogram& Hist(const std::string& name) { return histograms_[name]; }

  /// Read-only view of the named histogram; an empty one when absent.
  const Histogram& HistOrEmpty(const std::string& name) const {
    static const Histogram kEmpty;
    auto it = histograms_.find(name);
    return it == histograms_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Clears all counters and histograms.
  void Reset() {
    counters_.clear();
    histograms_.clear();
  }

  /// Multi-line dump of all counters (for debugging and examples).
  std::string Dump() const {
    std::string out;
    for (const auto& [k, v] : counters_) {
      out += k;
      out += " = ";
      out += std::to_string(v);
      out += '\n';
    }
    for (const auto& [k, h] : histograms_) {
      out += k;
      out += " : ";
      out += h.Summary();
      out += '\n';
    }
    return out;
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace udr

#endif  // UDR_COMMON_METRICS_H_
