// Consistent-hash ring with virtual nodes. Each node (a data partition, in
// this codebase) contributes `vnodes_per_node` pseudo-random points on a
// 64-bit ring; a key is owned by the first node point at or after the key's
// hash. Adding a node therefore moves only ~K/N of K keys — the property the
// routing layer's PartitionMap and the consistent-hash location stage both
// rely on, so the ring lives here where either layer can use it.

#ifndef UDR_COMMON_HASH_RING_H_
#define UDR_COMMON_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace udr {

class HashRing {
 public:
  explicit HashRing(int vnodes_per_node = 64);

  /// Adds a node's virtual points (a sorted-block merge, O(ring + vnodes)).
  /// Node ids must be unique; re-adding an id is a no-op.
  void AddNode(uint32_t node);

  /// Bulk add for ring construction: appends every node's points and sorts
  /// once, instead of paying the per-add merge N times.
  void AddNodes(uint32_t first, uint32_t count);

  /// Removes a node's points (e.g. a decommissioned partition).
  void RemoveNode(uint32_t node);

  /// Runtime split: inserts `sibling`'s points at the midpoint of every arc
  /// currently owned by `parent`, so the sibling takes (roughly) the lower
  /// half of each parent arc and **no other node's keys move** — unlike
  /// AddNode, which steals ~1/(N+1) of every node's key space. The sibling
  /// gets one point per parent point instead of the usual vnodes_per_node.
  /// A later RemoveNode(sibling) undoes the split: each midpoint's keys fall
  /// back to the arc successor (the parent point, unless a nested split put
  /// a closer point there first). Returns false if `parent` is absent,
  /// `sibling` already present, or every parent arc is too short to split.
  bool SplitNode(uint32_t parent, uint32_t sibling);

  /// Node owning `hash`. The ring must be non-empty.
  uint32_t NodeOfHash(uint64_t hash) const;

  size_t node_count() const { return nodes_.size(); }
  size_t point_count() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  int vnodes_per_node() const { return vnodes_; }

  /// Stable ring point for (node, vnode): FNV-1a over the packed pair, so a
  /// ring rebuilt from the same node set is bit-identical across runs.
  static uint64_t PointHash(uint32_t node, int vnode);

 private:
  int vnodes_;
  std::unordered_set<uint32_t> nodes_;
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  ///< Sorted (point, node).
};

}  // namespace udr

#endif  // UDR_COMMON_HASH_RING_H_
