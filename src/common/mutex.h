// The repo's annotated locking layer. Every lock in src/ outside this
// directory must be a common::Mutex (the invariant linter bans raw
// std::mutex elsewhere), because the wrapper is what carries the two
// enforcement mechanisms:
//
//   * Clang thread-safety attributes (thread_annotations.h): a Mutex is a
//     CAPABILITY, MutexLock is a SCOPED_CAPABILITY, and every guarded member
//     names its mutex via GUARDED_BY — so `clang -Wthread-safety -Werror`
//     (CMake option UDR_WTHREAD_SAFETY) rejects unguarded access at compile
//     time.
//
//   * A debug lock-order checker (UDR_DEADLOCK_CHECK, on by default outside
//     Release builds): every acquisition feeds a process-wide lock-order
//     graph keyed by lock NAME. Acquiring B while holding A establishes the
//     edge A -> B; any later acquisition that would close a cycle (the
//     classic ABBA inversion) aborts immediately — with the acquiring
//     thread's held-lock stack AND the stack recorded when the conflicting
//     edge was first established — instead of deadlocking some unlucky run.
//     Locks are graphed by name, so two instances of the same class count as
//     one node: nesting two Metrics registries in both orders is flagged
//     even though a given pair deadlocks only when interleaved. Acquisitions
//     taken while no other lock is held skip the graph entirely (thread-local
//     push only), so leaf locks — the common case on the data path — stay
//     cheap.
//
// CondVar wraps std::condition_variable_any waiting on the Mutex itself, so
// the wait's internal unlock/relock flows through the same bookkeeping.

#ifndef UDR_COMMON_MUTEX_H_
#define UDR_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace udr::common {

#if defined(UDR_DEADLOCK_CHECK)
namespace lockorder {
/// Checks the process-wide lock-order graph for a cycle that acquiring
/// `name` (while holding this thread's current stack) would close, aborts
/// with both stacks on inversion, then records the new edges. Called before
/// a blocking acquire.
void OnAcquire(const char* name);
/// Records a non-blocking successful acquire (try-lock): pushes onto the
/// held stack without cycle-checking — a try-acquire cannot deadlock, so it
/// does not constrain the order graph.
void OnTryAcquire(const char* name);
/// Pops `name` from this thread's held stack.
void OnRelease(const char* name);
/// Number of locks the calling thread currently holds (tests/debugging).
int HeldCount();
}  // namespace lockorder
#endif

/// An annotated exclusive mutex. Prefer MutexLock over bare Lock()/Unlock().
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` labels this lock in the lock-order graph and in inversion
  /// reports; it must be a string literal (the checker keeps the pointer).
  /// Locks of one class share a name on purpose — the order policy is
  /// per-class, not per-instance.
  explicit Mutex(const char* name = "mutex") : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if defined(UDR_DEADLOCK_CHECK)
    lockorder::OnAcquire(name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if defined(UDR_DEADLOCK_CHECK)
    lockorder::OnRelease(name_);
#endif
  }

  /// Non-blocking acquire; true on success. A failed try leaves no trace in
  /// the order graph (and a successful one adds no edges — it cannot block).
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if defined(UDR_DEADLOCK_CHECK)
    lockorder::OnTryAcquire(name_);
#endif
    return true;
  }

  const char* name() const { return name_; }

  /// BasicLockable aliases so std::condition_variable_any (CondVar below)
  /// waits through the checker's bookkeeping.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
  const char* name_;
};

/// RAII lock scope. Releases on every exit path, exceptions included.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to common::Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and waits; `mu` is re-held on return. As with
  /// std::condition_variable, re-check the predicate (spurious wakeups).
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Waits until `pred()` holds (evaluated with `mu` held).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace udr::common

#endif  // UDR_COMMON_MUTEX_H_
