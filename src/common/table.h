// Plain-text table printer used by the benchmark harness to emit the paper's
// rows/series in a stable, diff-friendly format.

#ifndef UDR_COMMON_TABLE_H_
#define UDR_COMMON_TABLE_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace udr {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
 public:
  /// Creates a table with the given title and column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; the number of cells should match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table to the stream (default stdout).
  void Print(std::ostream& os = std::cout) const;

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

  // -- Cell formatting helpers ------------------------------------------------

  /// Formats an integer with thousands separators: 1234567 -> "1,234,567".
  static std::string Num(int64_t v);
  /// Formats a double with the given precision.
  static std::string Dbl(double v, int precision = 2);
  /// Formats a ratio as a percentage with 3 decimals ("99.999%").
  static std::string Pct(double ratio, int precision = 3);
  /// Formats microseconds adaptively ("12.5ms").
  static std::string Dur(int64_t micros);
  /// Formats a byte count adaptively ("1.5 GB").
  static std::string Bytes(int64_t bytes);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace udr

#endif  // UDR_COMMON_TABLE_H_
