#include "common/time.h"

#include <cstdio>

namespace udr {

std::string FormatDuration(MicroDuration d) {
  char buf[64];
  double ad = static_cast<double>(d < 0 ? -d : d);
  if (ad < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
  } else if (ad < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(d) / 1e3);
  } else if (ad < 60e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(d) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", static_cast<double>(d) / 60e6);
  }
  return buf;
}

}  // namespace udr
