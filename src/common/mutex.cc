#include "common/mutex.h"

#if defined(UDR_DEADLOCK_CHECK)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace udr::common::lockorder {
namespace {

// One directed edge "held -> acquired" with the held-lock stack captured the
// first time the edge was established — that stack is the "other side" of an
// inversion report.
struct Edge {
  std::vector<std::string> stack;  ///< Held names (oldest first) + acquired.
};

struct Graph {
  // Raw std::mutex on purpose: the graph lock is the checker's own leaf lock
  // and must not recurse into common::Mutex bookkeeping.
  std::mutex mu;
  std::map<std::string, std::map<std::string, Edge>> edges;  ///< from -> to.
};

// Leaked function-local singleton: checker state must outlive every static
// Mutex in the process.
Graph& G() {
  static Graph* g = new Graph();
  return *g;
}

// The calling thread's currently-held lock names, oldest first. Stores the
// name pointers handed to Mutex (string literals), so no allocation on the
// leaf-lock fast path.
thread_local std::vector<const char*> t_held;

// Is `to` reachable from `from` along recorded edges? Iterative DFS; called
// with G().mu held.
bool Reachable(const std::string& from, const std::string& to,
               const std::map<std::string, std::map<std::string, Edge>>& edges,
               std::vector<std::string>* path) {
  if (from == to) {
    path->push_back(from);
    return true;
  }
  std::set<std::string> visited;
  std::vector<std::pair<std::string, std::vector<std::string>>> stack;
  stack.emplace_back(from, std::vector<std::string>{from});
  while (!stack.empty()) {
    auto [node, p] = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    auto it = edges.find(node);
    if (it == edges.end()) continue;
    for (const auto& [next, edge] : it->second) {
      (void)edge;
      std::vector<std::string> np = p;
      np.push_back(next);
      if (next == to) {
        *path = std::move(np);
        return true;
      }
      stack.emplace_back(next, std::move(np));
    }
  }
  return false;
}

void AppendStack(std::string* out, const std::vector<std::string>& names) {
  *out += '[';
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) *out += " -> ";
    *out += names[i];
  }
  *out += ']';
}

[[noreturn]] void ReportInversion(const char* acquiring,
                                  const std::vector<std::string>& cycle_path,
                                  const Edge& first_edge) {
  std::string msg =
      "[udr-deadlock-check] lock-order inversion: acquiring \"";
  msg += acquiring;
  msg += "\" while holding ";
  std::vector<std::string> held(t_held.begin(), t_held.end());
  AppendStack(&msg, held);
  msg += "\n  this acquisition needs the order ";
  std::vector<std::string> want;
  want.push_back(cycle_path.back());  // The held lock the cycle reaches.
  want.push_back(acquiring);
  AppendStack(&msg, want);
  msg += "\n  but the opposite order ";
  AppendStack(&msg, cycle_path);
  msg += " was established earlier with held stack ";
  AppendStack(&msg, first_edge.stack);
  msg += "\n  (a schedule interleaving the two acquisition orders deadlocks)\n";
  std::fputs(msg.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const char* name) {
  if (t_held.empty()) {
    // Leaf acquisition: no held locks means no new ordering edges and no
    // possible cycle — skip the global graph entirely.
    t_held.push_back(name);
    return;
  }
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string acquiring(name);
  // A cycle exists iff some held lock is reachable FROM the acquiring one:
  // the recorded order says acquiring-before-held, this thread is doing
  // held-before-acquiring.
  for (const char* held : t_held) {
    std::vector<std::string> path;
    if (Reachable(acquiring, held, g.edges, &path)) {
      // First edge of the recorded (conflicting) path carries the stack
      // captured when that order was established.
      const Edge& first = g.edges[path[0]][path.size() > 1 ? path[1] : path[0]];
      ReportInversion(name, path, first);
    }
  }
  for (const char* held : t_held) {
    auto& edge = g.edges[held];
    if (edge.find(acquiring) == edge.end()) {
      Edge e;
      for (const char* h : t_held) e.stack.emplace_back(h);
      e.stack.push_back(acquiring);
      edge.emplace(acquiring, std::move(e));
    }
  }
  t_held.push_back(name);
}

void OnTryAcquire(const char* name) { t_held.push_back(name); }

void OnRelease(const char* name) {
  // Locks are almost always released LIFO, so scan from the back; same-name
  // locks release the most recent acquisition, which is the right stack
  // semantics for the graph.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == name ||
        std::string_view(*it) == std::string_view(name)) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

int HeldCount() { return static_cast<int>(t_held.size()); }

}  // namespace udr::common::lockorder

#else

// UDR_DEADLOCK_CHECK off: mutex.h is header-only; keep the TU non-empty.
namespace udr::common {
namespace {
[[maybe_unused]] constexpr int kDeadlockCheckDisabled = 0;
}  // namespace
}  // namespace udr::common

#endif  // UDR_DEADLOCK_CHECK
