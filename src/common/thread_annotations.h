// Clang thread-safety analysis attribute macros (the canonical set from the
// clang documentation / Abseil). Annotating a mutex-guarded structure with
// these turns its locking discipline into a compiler-checked contract: build
// with clang and -Wthread-safety (CMake option UDR_WTHREAD_SAFETY) and any
// access to a GUARDED_BY member without its mutex held, any REQUIRES
// violation, or any ACQUIRE/RELEASE imbalance is a compile error.
//
// Under gcc (or any non-clang compiler) every macro expands to nothing, so
// the annotations cost zero and the tree builds identically; the analysis
// runs as a dedicated ci.sh stage on clang hosts.
//
// Usage rules for this repo (see ARCHITECTURE.md "Concurrency contracts"):
//   * every shared mutable member is GUARDED_BY its mutex;
//   * lock with common::MutexLock (SCOPED_CAPABILITY RAII), not bare
//     Lock()/Unlock() pairs;
//   * NO_THREAD_SAFETY_ANALYSIS is allowed only with an inline comment
//     justifying why the analysis cannot see the invariant (and the
//     invariant itself).

#ifndef UDR_COMMON_THREAD_ANNOTATIONS_H_
#define UDR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define UDR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define UDR_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) UDR_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY UDR_THREAD_ANNOTATION__(scoped_lockable)

/// Member data protected by the given capability.
#define GUARDED_BY(x) UDR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) UDR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares a required lock acquisition order between capabilities.
#define ACQUIRED_BEFORE(...) UDR_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) UDR_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function must be called with the capabilities held (and does not
/// release them).
#define REQUIRES(...) UDR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  UDR_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) UDR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  UDR_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases a held capability.
#define RELEASE(...) UDR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  UDR_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire and reports success via its return value.
#define TRY_ACQUIRE(...) \
  UDR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  UDR_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held (it acquires it
/// internally — calling with it held would self-deadlock).
#define EXCLUDES(...) UDR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the capability is held; informs the analysis.
#define ASSERT_CAPABILITY(x) UDR_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) UDR_THREAD_ANNOTATION__(lock_returned(x))

/// Opt a function out of the analysis. Allowed ONLY with an inline
/// justification comment (enforced by review; see tools/LINT_ALLOWLIST.md).
#define NO_THREAD_SAFETY_ANALYSIS \
  UDR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // UDR_COMMON_THREAD_ANNOTATIONS_H_
