// Small string helpers shared across the library (no locale dependence).

#ifndef UDR_COMMON_STRINGS_H_
#define UDR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace udr {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements with the separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace udr

#endif  // UDR_COMMON_STRINGS_H_
