// PoA-local read-through cache for the hottest subscriber records.
//
// Signaling reads tolerate "fresh enough" (the FE read preference is
// kNearest, not kMasterOnly), but this cache is built to a stricter policy so
// it never widens the staleness window the replica set already has:
//
//   * it serves only reads that asked for kNearest — master-only reads
//     (provisioning, delete preconditions) always go to the primary;
//   * it is populated only from NON-stale read results, so an entry always
//     equals the newest committed master state at insert time;
//   * every committed write/delete for a key synchronously invalidates the
//     key (the router's batched write flush and the UdrNf direct-write sites
//     both call through), so an entry keeps equaling master state;
//   * every entry is tagged with the (partition, epoch) it was resolved
//     under; the router bumps a partition's epoch on migration cutover and
//     on runtime split/merge, so entries cached across a re-home can never
//     be served — the same defense-in-depth shape as the bypass-exception
//     list on the hash-routing path.
//
// Net effect: a cache hit is indistinguishable from a fresh non-stale
// kNearest read, at PoA-local cost instead of a PoA->SE round trip.
//
// Capacity is bounded in BYTES (Record::CacheFootprintBytes — payload plus
// per-entry bookkeeping), evicting least-recently-used entries.
//
// Thread safety: all state is guarded by mu_ (annotated common::Mutex).
// Today each PoA's cache is shard-confined so the lock is uncontended; the
// guard makes the structure safe to share when the multi-master replication
// path starts invalidating keys across threads. Lookup() hands out a pointer
// into the cache — see its contract note.

#ifndef UDR_ROUTING_POA_CACHE_H_
#define UDR_ROUTING_POA_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "storage/record.h"

namespace udr::routing {

struct PoaCacheConfig {
  /// Byte budget for cached records (CacheFootprintBytes accounting).
  int64_t capacity_bytes = 256 * 1024;
  /// PoA-local cost charged per cache hit (no PoA->SE transit, no SE
  /// service slot — that is the whole point).
  MicroDuration hit_cost = Micros(2);
};

class PoaCache {
 public:
  explicit PoaCache(PoaCacheConfig config);

  /// Returns the cached record iff the entry was inserted under the same
  /// (partition, epoch) the caller resolved `key` to right now; an entry
  /// from an older epoch or a different partition is silently dropped and
  /// the lookup misses. A hit refreshes LRU position. The pointer stays
  /// valid until the next mutating call — callers must consume it before
  /// touching the cache again (the shard-confined dispatch stage does), and
  /// a future cross-thread sharer must copy under its own coordination.
  const storage::Record* Lookup(storage::RecordKey key, uint32_t partition,
                                uint64_t epoch) EXCLUDES(mu_);

  /// Inserts (or refreshes) a record copy tagged (partition, epoch),
  /// evicting LRU entries until the byte budget holds. A record bigger than
  /// the whole budget is not admitted.
  void Insert(storage::RecordKey key, uint32_t partition, uint64_t epoch,
              const storage::Record& record) EXCLUDES(mu_);

  /// Drops `key`; returns true when an entry existed. The write path calls
  /// this synchronously for every committed write/delete.
  bool Invalidate(storage::RecordKey key) EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  int64_t bytes() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return bytes_;
  }
  size_t size() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return index_.size();
  }
  int64_t capacity_bytes() const { return config_.capacity_bytes; }
  MicroDuration hit_cost() const { return config_.hit_cost; }

  int64_t hits() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return hits_;
  }
  int64_t misses() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return misses_;
  }
  int64_t insertions() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return insertions_;
  }
  int64_t invalidations() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return invalidations_;
  }
  int64_t evictions() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return evictions_;
  }
  int64_t epoch_drops() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return epoch_drops_;
  }

 private:
  struct Entry {
    storage::RecordKey key = 0;
    uint32_t partition = 0;
    uint64_t epoch = 0;
    int64_t bytes = 0;
    storage::Record record;
  };

  void Erase(std::list<Entry>::iterator it) REQUIRES(mu_);

  PoaCacheConfig config_;  ///< Immutable after construction.
  mutable common::Mutex mu_{"routing.poa_cache"};
  std::list<Entry> lru_ GUARDED_BY(mu_);  ///< Front = most recently used.
  std::unordered_map<storage::RecordKey, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  int64_t bytes_ GUARDED_BY(mu_) = 0;
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
  int64_t insertions_ GUARDED_BY(mu_) = 0;
  int64_t invalidations_ GUARDED_BY(mu_) = 0;
  int64_t evictions_ GUARDED_BY(mu_) = 0;
  int64_t epoch_drops_ GUARDED_BY(mu_) = 0;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_POA_CACHE_H_
