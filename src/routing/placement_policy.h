// PlacementPolicy: where a new subscription's primary copy goes, extracted
// from the hard-coded partition-selection logic that used to live inside
// UdrNf::PickPartitionForCreate.
//
// Realizations:
//   * LeastLoadedPolicy  — global load balancing by partition population;
//   * RoundRobinPolicy   — cycle through partitions in id order;
//   * HashPolicy         — consistent-hash the first identity on the map's
//                          ring (no placement state, no selectivity);
//   * SelectivePolicy    — §3.5 selective placement: honor an explicit home
//                          site by pinning to a partition whose master copy
//                          sits there, delegating to an inner policy when no
//                          home site is given (or none matches).

#ifndef UDR_ROUTING_PLACEMENT_POLICY_H_
#define UDR_ROUTING_PLACEMENT_POLICY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "location/identity.h"
#include "routing/partition_map.h"
#include "sim/topology.h"

namespace udr::routing {

/// Inputs a policy may consult when placing one new subscription.
struct PlacementRequest {
  /// Selective placement (§3.5): pin the primary copy to this site.
  std::optional<sim::SiteId> home_site;
  /// First identity of the subscription (hash-placement key); may be null.
  const location::Identity* identity = nullptr;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Picks the partition for a new subscription. The map is commissioned
  /// before this is called; an empty map is FailedPrecondition.
  virtual StatusOr<uint32_t> PickPartition(const PartitionMap& map,
                                           const PlacementRequest& req) = 0;

  virtual std::string Name() const = 0;

 protected:
  static Status EmptyMapError() {
    return Status::FailedPrecondition("no storage deployed in the UDR NF");
  }
};

/// Least-populated partition wins (ties to the lowest id).
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  StatusOr<uint32_t> PickPartition(const PartitionMap& map,
                                   const PlacementRequest& req) override;
  std::string Name() const override { return "least-loaded"; }
};

/// Partitions in id order, wrapping around.
class RoundRobinPolicy : public PlacementPolicy {
 public:
  StatusOr<uint32_t> PickPartition(const PartitionMap& map,
                                   const PlacementRequest& req) override;
  std::string Name() const override { return "round-robin"; }

 private:
  uint32_t cursor_ = 0;
};

/// Consistent-hash the first identity on the partition map's ring.
class HashPolicy : public PlacementPolicy {
 public:
  StatusOr<uint32_t> PickPartition(const PartitionMap& map,
                                   const PlacementRequest& req) override;
  std::string Name() const override { return "consistent-hash"; }
};

/// Honors `home_site` by picking the least-populated partition whose master
/// copy sits there; everything else goes to the inner policy.
class SelectivePolicy : public PlacementPolicy {
 public:
  explicit SelectivePolicy(std::unique_ptr<PlacementPolicy> fallback);

  StatusOr<uint32_t> PickPartition(const PartitionMap& map,
                                   const PlacementRequest& req) override;
  std::string Name() const override {
    return "selective(" + fallback_->Name() + ")";
  }

 private:
  std::unique_ptr<PlacementPolicy> fallback_;
};

/// Which fallback policy the NF deploys under selective placement.
enum class PlacementKind { kLeastLoaded, kRoundRobin, kHash };

/// Builds the deployment policy: SelectivePolicy over the requested kind,
/// except kHash, which is deployed bare — consistent hashing cannot honor a
/// home site (§3.5), and keeping the partition a pure function of the
/// identity is what enables the router's hash-routed location bypass.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementKind kind);

}  // namespace udr::routing

#endif  // UDR_ROUTING_PLACEMENT_POLICY_H_
