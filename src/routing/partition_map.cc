#include "routing/partition_map.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string>

namespace udr::routing {

using replication::MigrationReport;
using replication::ReplicaSet;
using replication::ReplicaSetConfig;

PartitionMap::PartitionMap(PartitionMapConfig config, sim::Network* network)
    : config_(std::move(config)),
      network_(network),
      ring_(config_.vnodes_per_partition) {}

void PartitionMap::RegisterStorageElement(storage::StorageElement* se,
                                          uint32_t cluster) {
  assert(se_index_.count(se) == 0 && "storage element registered twice");
  se_index_[se] = static_cast<int>(ses_.size());
  SeInfo info;
  info.se = se;
  info.cluster = cluster;
  ses_.push_back(info);
}

int PartitionMap::IndexOfSe(const storage::StorageElement* se) const {
  auto it = se_index_.find(se);
  return it == se_index_.end() ? -1 : it->second;
}

void PartitionMap::Commission() {
  for (int round = 0; round < config_.partitions_per_se; ++round) {
    for (size_t i = 0; i < ses_.size(); ++i) {
      SeInfo& primary = ses_[i];
      if (primary.commissioned > round) continue;

      // Secondary copies: prefer SEs in other clusters (geographic
      // dispersion, §3.1 decision 2), least-loaded first; fall back to
      // same-cluster SEs.
      std::vector<size_t> candidates;
      for (size_t j = 0; j < ses_.size(); ++j) {
        if (j != i) candidates.push_back(j);
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](size_t a, size_t b) {
                         bool a_other = ses_[a].cluster != primary.cluster;
                         bool b_other = ses_[b].cluster != primary.cluster;
                         if (a_other != b_other) return a_other;
                         if (ses_[a].secondary_load != ses_[b].secondary_load) {
                           return ses_[a].secondary_load <
                                  ses_[b].secondary_load;
                         }
                         return a < b;
                       });

      std::vector<storage::StorageElement*> members;
      members.push_back(primary.se);
      std::vector<uint32_t> used_clusters = {primary.cluster};
      for (size_t j : candidates) {
        if (static_cast<int>(members.size()) >= config_.replication_factor) {
          break;
        }
        // First pass: one copy per cluster where possible.
        if (std::count(used_clusters.begin(), used_clusters.end(),
                       ses_[j].cluster) > 0 &&
            candidates.size() + 1 >
                static_cast<size_t>(config_.replication_factor)) {
          int remaining =
              config_.replication_factor - static_cast<int>(members.size());
          int distinct_left = 0;
          for (size_t k : candidates) {
            if (std::count(used_clusters.begin(), used_clusters.end(),
                           ses_[k].cluster) == 0) {
              ++distinct_left;
            }
          }
          if (distinct_left >= remaining) continue;
        }
        members.push_back(ses_[j].se);
        used_clusters.push_back(ses_[j].cluster);
        ++ses_[j].secondary_load;
      }

      uint32_t id = static_cast<uint32_t>(partitions_.size());
      ReplicaSetConfig rs_cfg = config_.replica_template;
      rs_cfg.name = "partition-" + std::to_string(id);
      partitions_.push_back(
          std::make_unique<ReplicaSet>(rs_cfg, std::move(members), network_));
      population_.push_back(0);
      retired_.push_back(0);
      draining_.push_back(0);
      parent_.push_back(-1);
      ring_.AddNode(id);
      ++primary.commissioned;
    }
  }
}

uint32_t PartitionMap::PartitionOfIdentity(const location::Identity& id) const {
  return PartitionOfKey(location::HashIdentity(id));
}

StatusOr<uint32_t> PartitionMap::CommissionSplitSibling(uint32_t parent) {
  if (parent >= partitions_.size()) {
    return Status::InvalidArgument("split of unknown partition " +
                                   std::to_string(parent));
  }
  if (retired_[parent] != 0 || draining_[parent] != 0) {
    return Status::FailedPrecondition("split parent " + std::to_string(parent) +
                                      " is retired or draining");
  }
  if (ses_.empty()) return Status::FailedPrecondition("no storage elements");

  // Primary placement: the split exists to relieve the parent's primary SE,
  // so the sibling's primary goes to the least-primary-loaded *other* SE
  // (same SE only when it is the sole one registered).
  const std::vector<int> primaries = PrimariesPerSe();
  ReplicaSet* parent_rs = partitions_[parent].get();
  const int parent_primary = IndexOfSe(parent_rs->replica_se(parent_rs->master_id()));
  int pick = -1;
  for (size_t i = 0; i < ses_.size(); ++i) {
    if (static_cast<int>(i) == parent_primary && ses_.size() > 1) continue;
    if (pick < 0 || primaries[i] < primaries[pick]) pick = static_cast<int>(i);
  }

  // Secondary copies: other clusters first, least-loaded, stable order —
  // the same dispersion preference Commission() applies.
  std::vector<size_t> candidates;
  for (size_t j = 0; j < ses_.size(); ++j) {
    if (static_cast<int>(j) != pick) candidates.push_back(j);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](size_t a, size_t b) {
                     bool a_other = ses_[a].cluster != ses_[pick].cluster;
                     bool b_other = ses_[b].cluster != ses_[pick].cluster;
                     if (a_other != b_other) return a_other;
                     if (ses_[a].secondary_load != ses_[b].secondary_load) {
                       return ses_[a].secondary_load < ses_[b].secondary_load;
                     }
                     return a < b;
                   });
  if (static_cast<int>(candidates.size()) + 1 > config_.replication_factor) {
    candidates.resize(static_cast<size_t>(config_.replication_factor - 1));
  }

  const uint32_t id = static_cast<uint32_t>(partitions_.size());
  if (!ring_.SplitNode(parent, id)) {
    return Status::Internal("ring split of partition " +
                            std::to_string(parent) + " produced no points");
  }

  std::vector<storage::StorageElement*> members;
  members.push_back(ses_[pick].se);
  for (size_t j : candidates) {
    members.push_back(ses_[j].se);
    ++ses_[j].secondary_load;
  }
  ReplicaSetConfig rs_cfg = config_.replica_template;
  rs_cfg.name = "partition-" + std::to_string(id);
  partitions_.push_back(
      std::make_unique<ReplicaSet>(rs_cfg, std::move(members), network_));
  population_.push_back(0);
  retired_.push_back(0);
  draining_.push_back(0);
  parent_.push_back(static_cast<int>(parent));
  ++ses_[pick].commissioned;
  return id;
}

Status PartitionMap::BeginMerge(uint32_t partition) {
  if (partition >= partitions_.size()) {
    return Status::InvalidArgument("merge of unknown partition " +
                                   std::to_string(partition));
  }
  if (retired_[partition] != 0 || draining_[partition] != 0) {
    return Status::FailedPrecondition("partition " + std::to_string(partition) +
                                      " already merging or retired");
  }
  if (ring_.node_count() <= 1) {
    return Status::FailedPrecondition("cannot merge the last ring partition");
  }
  ring_.RemoveNode(partition);
  draining_[partition] = 1;
  return Status::Ok();
}

Status PartitionMap::RetirePartition(uint32_t partition) {
  if (partition >= partitions_.size() || draining_[partition] == 0) {
    return Status::FailedPrecondition("partition " + std::to_string(partition) +
                                      " is not draining");
  }
  if (population_[partition] != 0) {
    return Status::FailedPrecondition(
        "partition " + std::to_string(partition) + " still holds " +
        std::to_string(population_[partition]) + " subscribers");
  }
  ReplicaSet* rs = partitions_[partition].get();
  for (uint32_t r = 0; r < rs->replica_count(); ++r) {
    int idx = IndexOfSe(rs->replica_se(r));
    if (idx < 0) continue;
    if (r == rs->master_id()) {
      if (ses_[idx].commissioned > 0) --ses_[idx].commissioned;
    } else if (ses_[idx].secondary_load > 0) {
      --ses_[idx].secondary_load;
    }
  }
  draining_[partition] = 0;
  retired_[partition] = 1;
  return Status::Ok();
}

size_t PartitionMap::live_partition_count() const {
  size_t live = 0;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (retired_[p] == 0 && draining_[p] == 0) ++live;
  }
  return live;
}

std::vector<int> PartitionMap::PrimariesPerSe() const {
  std::vector<int> counts(ses_.size(), 0);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (retired_[p] != 0) continue;
    const ReplicaSet* rs = partitions_[p].get();
    int idx = IndexOfSe(rs->replica_se(rs->master_id()));
    if (idx >= 0) ++counts[idx];
  }
  return counts;
}

int PartitionMap::PrimarySpread() const {
  if (ses_.empty() || partitions_.empty()) return 0;
  std::vector<int> counts = PrimariesPerSe();
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  return *mx - *mn;
}

std::vector<int64_t> PartitionMap::PopulationPerSe() const {
  std::vector<int64_t> pops(ses_.size(), 0);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (retired_[p] != 0) continue;
    const ReplicaSet* rs = partitions_[p].get();
    int idx = IndexOfSe(rs->replica_se(rs->master_id()));
    if (idx >= 0) pops[idx] += population_[p];
  }
  return pops;
}

int64_t PartitionMap::PopulationSpread() const {
  if (ses_.empty() || partitions_.empty()) return 0;
  std::vector<int64_t> pops = PopulationPerSe();
  auto [mn, mx] = std::minmax_element(pops.begin(), pops.end());
  return *mx - *mn;
}

void PartitionMap::NotePrimaryMoved(uint32_t partition, int from_se, int to_se,
                                    const replication::MigrationReport& migration) {
  (void)partition;
  // Secondary-load bookkeeping: a promoted secondary frees its slot on the
  // target and the demoted primary now hosts a secondary copy.
  if (migration.promoted_existing) {
    --ses_[to_se].secondary_load;
    ++ses_[from_se].secondary_load;
  }
  // A received primary counts toward the target's commissioning quota; the
  // donor keeps its quota so a later lazy Commission() never re-creates
  // partitions on the SEs a rebalance drained (which would churn the ring
  // and undo the balance the migration paid for).
  ++ses_[to_se].commissioned;
}

Status PartitionMap::MovePrimary(size_t partition, size_t to_idx,
                                 RebalanceReport* report) {
  ReplicaSet* rs = partitions_[partition].get();
  int from_idx = IndexOfSe(rs->replica_se(rs->master_id()));
  sim::SiteId from_site = rs->master_site();
  auto migration = rs->MigratePrimaryTo(ses_[to_idx].se);
  if (!migration.ok()) return migration.status();

  NotePrimaryMoved(static_cast<uint32_t>(partition), from_idx,
                   static_cast<int>(to_idx), *migration);

  PartitionMove move;
  move.partition = static_cast<uint32_t>(partition);
  move.from_site = from_site;
  move.to_site = ses_[to_idx].se->site();
  move.migration = *migration;
  report->entries_replayed += migration->entries_replayed;
  report->bytes_moved += migration->bytes_moved;
  report->duration += migration->duration;
  report->moves.push_back(std::move(move));
  return Status::Ok();
}

void PartitionMap::PlanByPrimaryCount(
    std::vector<int>* owner, std::vector<PlannedPrimaryMove>* plan) const {
  // Greedy: repeatedly move the cheapest primary (smallest population) off
  // the most-loaded SE onto the least-loaded one. Each move shrinks the
  // imbalance, so the loop terminates.
  while (true) {
    std::vector<int> counts(ses_.size(), 0);
    for (int se : *owner) {
      if (se >= 0) ++counts[se];
    }
    size_t max_i = 0, min_i = 0;
    for (size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[max_i]) max_i = i;
      if (counts[i] < counts[min_i]) min_i = i;
    }
    if (counts[max_i] - counts[min_i] <= 1) break;

    int best = -1;
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if ((*owner)[p] != static_cast<int>(max_i)) continue;
      if (best < 0 || population_[p] < population_[best]) {
        best = static_cast<int>(p);
      }
    }
    if (best < 0) break;  // Defensive: counts said otherwise.
    plan->push_back({static_cast<uint32_t>(best), static_cast<int>(max_i),
                     static_cast<int>(min_i)});
    (*owner)[best] = static_cast<int>(min_i);
  }
}

void PartitionMap::PlanByPopulation(
    std::vector<int>* owner, std::vector<PlannedPrimaryMove>* plan) const {
  // Greedy: move a primary from the most- to the least-populated SE when a
  // candidate strictly shrinks their gap (0 < population < gap), preferring
  // the one closest to half the gap. Each move strictly decreases the sum of
  // squared per-SE populations, so the loop terminates; the cap is defensive.
  const size_t max_moves = 4 * partitions_.size() + 8;
  while (plan->size() < max_moves) {
    std::vector<int64_t> pops(ses_.size(), 0);
    for (size_t p = 0; p < owner->size(); ++p) {
      if ((*owner)[p] >= 0) pops[(*owner)[p]] += population_[p];
    }
    size_t max_i = 0, min_i = 0;
    for (size_t i = 1; i < pops.size(); ++i) {
      if (pops[i] > pops[max_i]) max_i = i;
      if (pops[i] < pops[min_i]) min_i = i;
    }
    int64_t gap = pops[max_i] - pops[min_i];
    if (gap <= 0) break;

    int best = -1;
    int64_t best_off_center = 0;
    for (size_t p = 0; p < partitions_.size(); ++p) {
      if ((*owner)[p] != static_cast<int>(max_i)) continue;
      int64_t w = population_[p];
      if (w <= 0 || w >= gap) continue;  // Would not shrink the gap.
      int64_t off_center = std::abs(2 * w - gap);
      if (best < 0 || off_center < best_off_center) {
        best = static_cast<int>(p);
        best_off_center = off_center;
      }
    }
    if (best < 0) break;  // No improving move left.
    plan->push_back({static_cast<uint32_t>(best), static_cast<int>(max_i),
                     static_cast<int>(min_i)});
    (*owner)[best] = static_cast<int>(min_i);
  }
}

std::vector<PlannedPrimaryMove> PartitionMap::PlanRebalance() const {
  std::vector<PlannedPrimaryMove> plan;
  if (partitions_.empty() || ses_.empty()) return plan;
  // Simulated assignment the greedy passes mutate instead of live state.
  // Retired partitions hold nothing and draining ones are already being
  // emptied by the merge machinery — neither is a planning unit.
  std::vector<int> owner(partitions_.size(), -1);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (retired_[p] != 0 || draining_[p] != 0) continue;
    const ReplicaSet* rs = partitions_[p].get();
    owner[p] = IndexOfSe(rs->replica_se(rs->master_id()));
  }
  if (config_.rebalance_weight == RebalanceWeight::kPopulation) {
    PlanByPopulation(&owner, &plan);
  } else {
    PlanByPrimaryCount(&owner, &plan);
  }
  return plan;
}

StatusOr<RebalanceReport> PartitionMap::Rebalance() {
  RebalanceReport report;
  report.spread_before = PrimarySpread();
  report.spread_after = report.spread_before;
  report.population_spread_before = PopulationSpread();
  report.population_spread_after = report.population_spread_before;
  if (partitions_.empty()) return report;

  for (const PlannedPrimaryMove& move : PlanRebalance()) {
    UDR_RETURN_IF_ERROR(MovePrimary(move.partition,
                                    static_cast<size_t>(move.to_se), &report));
  }
  report.spread_after = PrimarySpread();
  report.population_spread_after = PopulationSpread();
  return report;
}

void PartitionMap::CatchUpAll() {
  for (auto& rs : partitions_) rs->CatchUpAll();
}

replication::RestorationReport PartitionMap::RestoreAll() {
  replication::RestorationReport agg;
  for (auto& rs : partitions_) {
    replication::RestorationReport r = rs->RestoreConsistency();
    agg.divergent_entries += r.divergent_entries;
    agg.applied_ops += r.applied_ops;
    agg.conflicting_ops += r.conflicting_ops;
    agg.dropped_ops += r.dropped_ops;
    agg.manual_ops += r.manual_ops;
  }
  return agg;
}

}  // namespace udr::routing
