#include "routing/coalescer.h"

#include <utility>

namespace udr::routing {

Coalescer::Coalescer(CoalescerConfig config, Router* router,
                     const sim::SimClock* clock, Metrics* metrics)
    : config_(config),
      router_(router),
      clock_(clock),
      metrics_(metrics),
      events_(metrics->RegisterCounter("coalescer.events")),
      flush_passthrough_(metrics->RegisterCounter("coalescer.flush.passthrough")),
      flush_cap_(metrics->RegisterCounter("coalescer.flush.cap")),
      flush_deadline_(metrics->RegisterCounter("coalescer.flush.deadline")),
      flush_barrier_(metrics->RegisterCounter("coalescer.flush.barrier")),
      flush_ops_(metrics->RegisterHist("coalescer.flush.ops")),
      flush_events_(metrics->RegisterHist("coalescer.flush.events")),
      flush_groups_(metrics->RegisterHist("coalescer.flush.groups")),
      queue_delay_(metrics->RegisterHist("coalescer.queue_delay_us")) {}

EventId Coalescer::Submit(BatchRequest event) {
  const EventId id = next_id_++;
  if (event.empty()) {
    // Nothing to dispatch: complete immediately without opening a window.
    EventOutcome out;
    completed_.emplace(id, std::move(out));
    return id;
  }
  if (pending_.empty()) deadline_ = clock_->Now() + config_.window;
  pending_ops_ += event.size();
  pending_.push_back(Parked{id, std::move(event), clock_->Now()});
  events_.Add();

  if (config_.window <= 0) {
    Flush(flush_passthrough_);
  } else if (config_.max_ops > 0 && pending_ops_ >= config_.max_ops) {
    Flush(flush_cap_);
  }
  return id;
}

bool Coalescer::FlushIfDue() {
  if (pending_.empty() || clock_->Now() < deadline_) return false;
  Flush(flush_deadline_);
  return true;
}

void Coalescer::FlushNow() {
  if (pending_.empty()) return;
  Flush(flush_barrier_);
}

void Coalescer::Flush(Metrics::Counter& reason) {
  if (pending_.empty()) return;

  // One aggregate batch in arrival order: per-key order across events is
  // arrival order, matching what serial execution of the events would do.
  BatchRequest agg;
  agg.ops.reserve(pending_ops_);
  for (Parked& parked : pending_) {
    for (Operation& op : parked.event.ops) agg.ops.push_back(std::move(op));
  }

  // Trace attribution: the shared dispatch runs once for every event in the
  // window, so its spans hang off the first *sampled* event's trace (the
  // others see their park span only — one trace per flush keeps the span
  // volume proportional to sampled events, not window width).
  obs::Tracer* tracer = router_->tracer();
  obs::TraceContext flush_parent;
  for (const Parked& parked : pending_) {
    if (parked.event.trace.active()) {
      flush_parent = parked.event.trace;
      break;
    }
  }
  obs::Span flush_span = obs::StartSpan(tracer, "coalesce.flush", flush_parent);
  agg.trace = flush_span.context().active() ? flush_span.context()
                                            : flush_parent;
  BatchResult flush = router_->RouteBatch(agg, config_.poa_site);
  const MicroTime now = clock_->Now();
  flush_span.EndAt(now + flush.latency);

  ++flushes_;
  reason.Add();
  flush_ops_.Observe(static_cast<int64_t>(agg.size()));
  flush_events_.Observe(static_cast<int64_t>(pending_.size()));
  flush_groups_.Observe(flush.partition_groups);

  // Demultiplex: outcomes [cursor, cursor + event size) belong to each event
  // in arrival order. Every event completes when the shared dispatch does.
  size_t cursor = 0;
  for (Parked& parked : pending_) {
    EventOutcome out;
    out.coalesced_events = static_cast<int>(pending_.size());
    out.partition_groups = flush.partition_groups;
    out.queue_delay = now - parked.arrival;
    out.service_latency = flush.latency;
    out.outcomes.reserve(parked.event.size());
    for (size_t i = 0; i < parked.event.size(); ++i) {
      OpOutcome& op = flush.outcomes[cursor++];
      if (!op.ok()) ++out.failed_ops;
      if (op.bypassed_location) ++out.bypass_hits;
      if (op.from_cache) ++out.cache_hits;
      out.outcomes.push_back(std::move(op));
    }
    queue_delay_.Observe(out.queue_delay);
    // Each sampled event gets its park window as a span of its own trace
    // (recorded at flush time — the wait is only known once the window
    // closes).
    if (tracer != nullptr && parked.event.trace.active()) {
      tracer->RecordSpan("coalesce.park", parked.event.trace, parked.arrival,
                         now);
    }
    completed_.emplace(parked.id, std::move(out));
  }

  pending_.clear();
  pending_ops_ = 0;
  deadline_ = kTimeInfinity;
}

std::optional<EventOutcome> Coalescer::Take(EventId id) {
  auto it = completed_.find(id);
  if (it == completed_.end()) return std::nullopt;
  EventOutcome out = std::move(it->second);
  completed_.erase(it);
  return out;
}

}  // namespace udr::routing
