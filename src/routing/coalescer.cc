#include "routing/coalescer.h"

#include <string>
#include <utility>

namespace udr::routing {

Coalescer::Coalescer(CoalescerConfig config, Router* router,
                     const sim::SimClock* clock, Metrics* metrics)
    : config_(config), router_(router), clock_(clock), metrics_(metrics) {}

EventId Coalescer::Submit(BatchRequest event) {
  const EventId id = next_id_++;
  if (event.empty()) {
    // Nothing to dispatch: complete immediately without opening a window.
    EventOutcome out;
    completed_.emplace(id, std::move(out));
    return id;
  }
  if (pending_.empty()) deadline_ = clock_->Now() + config_.window;
  pending_ops_ += event.size();
  pending_.push_back(Parked{id, std::move(event), clock_->Now()});
  metrics_->Add("coalescer.events");

  if (config_.window <= 0) {
    Flush("passthrough");
  } else if (config_.max_ops > 0 && pending_ops_ >= config_.max_ops) {
    Flush("cap");
  }
  return id;
}

bool Coalescer::FlushIfDue() {
  if (pending_.empty() || clock_->Now() < deadline_) return false;
  Flush("deadline");
  return true;
}

void Coalescer::FlushNow() {
  if (pending_.empty()) return;
  Flush("barrier");
}

void Coalescer::Flush(const char* reason) {
  if (pending_.empty()) return;

  // One aggregate batch in arrival order: per-key order across events is
  // arrival order, matching what serial execution of the events would do.
  BatchRequest agg;
  agg.ops.reserve(pending_ops_);
  for (Parked& parked : pending_) {
    for (Operation& op : parked.event.ops) agg.ops.push_back(std::move(op));
  }
  BatchResult flush = router_->RouteBatch(agg, config_.poa_site);

  ++flushes_;
  metrics_->Add(std::string("coalescer.flush.") + reason);
  metrics_->Observe("coalescer.flush.ops", static_cast<int64_t>(agg.size()));
  metrics_->Observe("coalescer.flush.events",
                    static_cast<int64_t>(pending_.size()));
  metrics_->Observe("coalescer.flush.groups", flush.partition_groups);

  // Demultiplex: outcomes [cursor, cursor + event size) belong to each event
  // in arrival order. Every event completes when the shared dispatch does.
  const MicroTime now = clock_->Now();
  size_t cursor = 0;
  for (Parked& parked : pending_) {
    EventOutcome out;
    out.coalesced_events = static_cast<int>(pending_.size());
    out.partition_groups = flush.partition_groups;
    out.queue_delay = now - parked.arrival;
    out.service_latency = flush.latency;
    out.outcomes.reserve(parked.event.size());
    for (size_t i = 0; i < parked.event.size(); ++i) {
      OpOutcome& op = flush.outcomes[cursor++];
      if (!op.ok()) ++out.failed_ops;
      if (op.bypassed_location) ++out.bypass_hits;
      if (op.from_cache) ++out.cache_hits;
      out.outcomes.push_back(std::move(op));
    }
    metrics_->Observe("coalescer.queue_delay_us", out.queue_delay);
    completed_.emplace(parked.id, std::move(out));
  }

  pending_.clear();
  pending_ops_ = 0;
  deadline_ = kTimeInfinity;
}

std::optional<EventOutcome> Coalescer::Take(EventId id) {
  auto it = completed_.find(id);
  if (it == completed_.end()) return std::nullopt;
  EventOutcome out = std::move(it->second);
  completed_.erase(it);
  return out;
}

}  // namespace udr::routing
