// Batched operations through the data path: the unit types of the staged
// batch pipeline (resolve -> group-by-partition -> grouped dispatch).
//
// A signaling event reaching the UDR is a multi-op LDAP request (bind +
// search + modify, 1-6 ops per procedure — paper §2.2); routing each op as
// its own resolve + hop wastes one location-stage lookup and one PoA ->
// storage round trip per op even when the whole request touches one
// partition. A BatchRequest carries every op of one such request;
// Router::RouteBatch resolves them all at the PoA-local location stage,
// groups them by owning partition and dispatches one grouped
// ReplicaSet::WriteBatch / ReadBatch per replica set, preserving per-key op
// order and returning one OpOutcome per op.

#ifndef UDR_ROUTING_BATCH_H_
#define UDR_ROUTING_BATCH_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "location/identity.h"
#include "obs/trace.h"
#include "replication/replica_set.h"
#include "storage/record.h"

namespace udr::routing {

/// One record mutation of a batched write op, expressed against the
/// subscriber (the record key is filled in by the resolution stage).
struct Mutation {
  enum class Kind { kSet, kRemove, kDeleteRecord };
  Kind kind = Kind::kSet;
  std::string attr;       ///< kSet / kRemove.
  storage::Value value;   ///< kSet only.
};

/// One operation of a batch: a whole-record read, a single-attribute read or
/// a write transaction, addressed by subscriber identity.
struct Operation {
  enum class Kind { kReadRecord, kReadAttribute, kWrite };
  Kind kind = Kind::kReadRecord;
  location::Identity identity;
  std::string attr;                 ///< kReadAttribute.
  std::vector<Mutation> mutations;  ///< kWrite (applied atomically).
  replication::ReadPreference read_pref =
      replication::ReadPreference::kNearest;

  bool IsRead() const { return kind != Kind::kWrite; }

  static Operation ReadRecord(
      location::Identity id,
      replication::ReadPreference pref = replication::ReadPreference::kNearest) {
    Operation op;
    op.kind = Kind::kReadRecord;
    op.identity = std::move(id);
    op.read_pref = pref;
    return op;
  }
  static Operation ReadAttribute(
      location::Identity id, std::string attr,
      replication::ReadPreference pref = replication::ReadPreference::kNearest) {
    Operation op;
    op.kind = Kind::kReadAttribute;
    op.identity = std::move(id);
    op.attr = std::move(attr);
    op.read_pref = pref;
    return op;
  }
  static Operation Write(location::Identity id,
                         std::vector<Mutation> mutations) {
    Operation op;
    op.kind = Kind::kWrite;
    op.identity = std::move(id);
    op.mutations = std::move(mutations);
    return op;
  }
};

/// A multi-op request entering the pipeline as one unit.
struct BatchRequest {
  std::vector<Operation> ops;
  /// Trace identity of the signaling event this batch serves; default
  /// (inactive) means every pipeline span is a no-op.
  obs::TraceContext trace;

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
  BatchRequest& Add(Operation op) {
    ops.push_back(std::move(op));
    return *this;
  }
};

/// Per-op outcome; index i corresponds to BatchRequest::ops[i].
struct OpOutcome {
  Status status;
  uint32_t partition = 0;
  storage::RecordKey key = 0;
  bool bypassed_location = false;  ///< Hash fast path skipped the stage.
  bool from_cache = false;         ///< Read served by the PoA record cache.
  bool stale = false;              ///< Read served by a lagging slave copy.
  MicroDuration latency = 0;       ///< Op's own service share (no transit).
  uint32_t served_by = 0;          ///< Replica that executed the op.
  std::optional<storage::Record> record;  ///< kReadRecord payload.
  std::optional<storage::Value> value;    ///< kReadAttribute payload.
  storage::CommitSeq seq = 0;             ///< kWrite commit sequence.

  bool ok() const { return status.ok(); }
};

/// Aggregate outcome of one batch through the pipeline.
struct BatchResult {
  std::vector<OpOutcome> outcomes;  ///< 1:1 with the request's ops.
  /// Modelled end-to-end latency: resolution of every op plus the slowest
  /// partition-group dispatch (groups fan out concurrently from the PoA).
  MicroDuration latency = 0;
  MicroDuration resolve_cost = 0;  ///< Stage-1 total location-stage cost.
  int partition_groups = 0;        ///< Distinct replica sets dispatched to.
  int bypass_hits = 0;             ///< Ops routed via the hash fast path.
  int cache_hits = 0;              ///< Reads served by the PoA record cache.
  int failed_ops = 0;

  bool ok() const { return failed_ops == 0; }
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_BATCH_H_
