// Access-heat tracking for the routing layer. Telecom signaling traffic is
// extremely read-skewed (mass events, roaming waves concentrate on a handful
// of subscribers), so the router samples every resolved operation into two
// cheap structures:
//
//   * a per-partition exponentially-decayed access count ("heat") — the
//     signal the runtime split/merge controller acts on, and
//   * a space-saving top-K sketch over record keys — the admission filter
//     for the PoA read-through cache (only records the sketch has seen
//     often enough are worth caching).
//
// Both are O(1) amortized per access and fully deterministic: decay runs on
// the simulation clock, never on wall time.
//
// Thread safety: sketch + partition heat are guarded by mu_ (annotated
// common::Mutex). Each router's tracker is shard-confined today, so the
// lock is uncontended; the guard is what lets the upcoming multi-master
// write routing sample heat from more than one thread without a rework.

#ifndef UDR_ROUTING_HEAT_TRACKER_H_
#define UDR_ROUTING_HEAT_TRACKER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "storage/record.h"

namespace udr::routing {

struct HeatTrackerConfig {
  /// Half-life of the per-partition decayed access count. After this much
  /// idle sim-time a partition's heat halves.
  MicroDuration halflife_us = Millis(500);
  /// Capacity of the space-saving per-key sketch. Keys beyond the K hottest
  /// are approximated (classic space-saving overestimate, bounded by the
  /// evicted slot's count).
  int top_k = 128;
};

class HeatTracker {
 public:
  explicit HeatTracker(HeatTrackerConfig config = {});

  /// Samples one routed access. Called from the router's resolve stage on
  /// every op of Route/RouteBatch — must stay cheap (one uncontended lock).
  void RecordAccess(uint32_t partition, storage::RecordKey key, MicroTime now)
      EXCLUDES(mu_);

  /// Decayed access count of `partition` as of `now` (0 for partitions never
  /// seen). Does not mutate state.
  double PartitionHeat(uint32_t partition, MicroTime now) const EXCLUDES(mu_);

  /// Estimated access count of `key`; 0 when the sketch is not tracking it.
  /// The space-saving guarantee: any key with true count above the smallest
  /// tracked count is present.
  int64_t KeyCount(storage::RecordKey key) const EXCLUDES(mu_);

  struct HotKey {
    storage::RecordKey key = 0;
    int64_t count = 0;  ///< Estimated accesses (upper bound).
    int64_t error = 0;  ///< Max overestimate inherited from evictions.
  };

  /// Up to `n` hottest keys, descending by estimated count.
  std::vector<HotKey> TopKeys(size_t n) const EXCLUDES(mu_);

  int64_t total_accesses() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return total_;
  }
  size_t tracked_keys() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return sketch_.size();
  }

 private:
  struct PartitionState {
    double heat = 0.0;
    MicroTime last = 0;
  };

  /// 2^(-dt/halflife); 1.0 for dt <= 0.
  double Decay(MicroDuration dt) const;

  HeatTrackerConfig config_;  ///< Immutable after construction.
  mutable common::Mutex mu_{"routing.heat_tracker"};
  std::vector<PartitionState> partitions_ GUARDED_BY(mu_);
  /// Unordered; at most config_.top_k entries.
  std::vector<HotKey> sketch_ GUARDED_BY(mu_);
  std::unordered_map<storage::RecordKey, size_t> index_
      GUARDED_BY(mu_);  ///< key -> slot.
  int64_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_HEAT_TRACKER_H_
