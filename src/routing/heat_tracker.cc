#include "routing/heat_tracker.h"

#include <algorithm>
#include <cmath>

namespace udr::routing {

HeatTracker::HeatTracker(HeatTrackerConfig config) : config_(config) {
  if (config_.halflife_us < 1) config_.halflife_us = 1;
  if (config_.top_k < 1) config_.top_k = 1;
  sketch_.reserve(static_cast<size_t>(config_.top_k));
}

double HeatTracker::Decay(MicroDuration dt) const {
  if (dt <= 0) return 1.0;
  return std::exp2(-static_cast<double>(dt) /
                   static_cast<double>(config_.halflife_us));
}

void HeatTracker::RecordAccess(uint32_t partition, storage::RecordKey key,
                               MicroTime now) {
  common::MutexLock lock(mu_);
  ++total_;

  if (partitions_.size() <= partition) partitions_.resize(partition + 1);
  PartitionState& p = partitions_[partition];
  p.heat = p.heat * Decay(now - p.last) + 1.0;
  p.last = now;

  // Space-saving sketch: hit bumps the slot; a miss with a full sketch
  // replaces the coldest slot, inheriting its count as the error bound. The
  // replacement scan is linear over top_k but only runs on the (cold-key)
  // miss path — hot keys, the ones that matter, take the O(1) branch.
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++sketch_[it->second].count;
    return;
  }
  if (sketch_.size() < static_cast<size_t>(config_.top_k)) {
    index_[key] = sketch_.size();
    sketch_.push_back(HotKey{key, 1, 0});
    return;
  }
  size_t coldest = 0;
  for (size_t i = 1; i < sketch_.size(); ++i) {
    if (sketch_[i].count < sketch_[coldest].count) coldest = i;
  }
  HotKey& slot = sketch_[coldest];
  index_.erase(slot.key);
  index_[key] = coldest;
  slot.error = slot.count;
  slot.count = slot.count + 1;
  slot.key = key;
}

double HeatTracker::PartitionHeat(uint32_t partition, MicroTime now) const {
  common::MutexLock lock(mu_);
  if (partition >= partitions_.size()) return 0.0;
  const PartitionState& p = partitions_[partition];
  return p.heat * Decay(now - p.last);
}

int64_t HeatTracker::KeyCount(storage::RecordKey key) const {
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  return it == index_.end() ? 0 : sketch_[it->second].count;
}

std::vector<HeatTracker::HotKey> HeatTracker::TopKeys(size_t n) const {
  std::vector<HotKey> out;
  {
    common::MutexLock lock(mu_);
    out = sketch_;
  }
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;  // Deterministic tie-break.
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace udr::routing
