// Coalescer: the PoA's cross-event dispatch window.
//
// Router::RouteBatch amortizes ops arriving inside ONE signaling event; a
// production PoA serves many concurrent events, so the next amortization win
// is coalescing ops from *different* in-flight events into one partition-
// group dispatch window. The Coalescer parks events as they arrive, closes
// the window when the sim-clock deadline (`window`) passes or the size cap
// (`max_ops`) fills, and flushes everything as one RouteBatch — one grouped
// WriteBatch / ReadBatch per partition group across all coalesced events —
// then demultiplexes per-op results back to their originating events.
//
// Accounting splits each event's latency into queueing delay (submit ->
// window close) and service latency (the shared pipeline dispatch), so the
// cost of waiting for the window is visible separately from the work. Error
// isolation is per op and therefore per event: a failed op in one event
// never poisons another event sharing the window.

#ifndef UDR_ROUTING_COALESCER_H_
#define UDR_ROUTING_COALESCER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"
#include "routing/batch.h"
#include "routing/router.h"
#include "sim/clock.h"

namespace udr::routing {

/// Static configuration of one PoA dispatch window.
struct CoalescerConfig {
  /// Window length: an event arriving at an empty window opens it and sets
  /// its close deadline `window` microseconds out. 0 disables coalescing —
  /// every Submit flushes immediately (behavior identical to a direct
  /// RouteBatch per event).
  MicroDuration window = 0;
  /// Closes the window early once this many ops are parked (0 = no cap,
  /// deadline-only close).
  size_t max_ops = 0;
  /// PoA whose location stage resolves the flushed batch.
  sim::SiteId poa_site = 0;
};

/// Identifies one submitted event within its coalescer.
using EventId = uint64_t;

/// One event's demultiplexed share of a window flush.
struct EventOutcome {
  std::vector<OpOutcome> outcomes;  ///< 1:1 with the event's submitted ops.
  /// Time the event spent parked waiting for its window to close.
  MicroDuration queue_delay = 0;
  /// Modelled latency of the shared pipeline dispatch (resolution + slowest
  /// partition-group; every event in the window completes with the flush).
  MicroDuration service_latency = 0;
  int coalesced_events = 0;  ///< Events that shared this flush.
  int partition_groups = 0;  ///< Fan-out of the whole shared dispatch.
  int bypass_hits = 0;       ///< This event's ops served by the hash fast path.
  int cache_hits = 0;        ///< This event's reads served by the PoA cache.
  int failed_ops = 0;        ///< This event's failed ops (isolation is per op).

  bool ok() const { return failed_ops == 0; }
  /// Client-observed latency contribution: waiting plus service.
  MicroDuration latency() const { return queue_delay + service_latency; }
};

/// Cross-event dispatch window in front of one PoA's Router pipeline.
class Coalescer {
 public:
  Coalescer(CoalescerConfig config, Router* router, const sim::SimClock* clock,
            Metrics* metrics);

  const CoalescerConfig& config() const { return config_; }

  /// Parks one event's ops in the window; opens the window when it is the
  /// first arrival. May flush inline (window 0, or the size cap filled);
  /// completed outcomes are claimed with Take().
  EventId Submit(BatchRequest event);

  /// Flushes the window when the sim clock has reached its deadline.
  /// Returns whether a flush happened. Drivers call this whenever they
  /// advance the clock.
  bool FlushIfDue();

  /// Closes the window now regardless of deadline (end-of-run barrier).
  void FlushNow();

  /// Claims a completed event's outcome; nullopt while it is still parked.
  std::optional<EventOutcome> Take(EventId id);

  bool HasPending() const { return !pending_.empty(); }
  size_t pending_events() const { return pending_.size(); }
  size_t pending_ops() const { return pending_ops_; }
  /// Close deadline of the open window; kTimeInfinity when none is open.
  MicroTime deadline() const {
    return pending_.empty() ? kTimeInfinity : deadline_;
  }
  int64_t flushes() const { return flushes_; }

 private:
  struct Parked {
    EventId id = 0;
    BatchRequest event;
    MicroTime arrival = 0;
  };

  /// Aggregates every parked event into one RouteBatch, dispatches it and
  /// demultiplexes per-op results back to their events. `reason` is the
  /// pre-registered counter of the close trigger (deadline / cap /
  /// passthrough / barrier — a fixed set, so no dynamic metric names).
  void Flush(Metrics::Counter& reason);

  CoalescerConfig config_;
  Router* router_;
  const sim::SimClock* clock_;
  Metrics* metrics_;
  // Window-stat handles: the coalescer sits on every event submission, so
  // its counters are pre-registered rather than string-looked-up per op.
  Metrics::Counter events_;
  Metrics::Counter flush_passthrough_;
  Metrics::Counter flush_cap_;
  Metrics::Counter flush_deadline_;
  Metrics::Counter flush_barrier_;
  Metrics::HistHandle flush_ops_;
  Metrics::HistHandle flush_events_;
  Metrics::HistHandle flush_groups_;
  Metrics::HistHandle queue_delay_;

  std::vector<Parked> pending_;  ///< Arrival order (per-key order across events).
  size_t pending_ops_ = 0;
  MicroTime deadline_ = kTimeInfinity;
  EventId next_id_ = 1;
  int64_t flushes_ = 0;
  std::unordered_map<EventId, EventOutcome> completed_;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_COALESCER_H_
