// PartitionMap: the authoritative partition layer of the UDR data path.
//
// It owns what used to be scattered through the UdrNf god-object:
//   * the registry of storage elements (with cluster affinity and
//     secondary-copy load, the inputs to replica placement);
//   * the partition -> replica-set assignment, including commissioning new
//     partitions with geographically disperse secondary copies (§3.1
//     decision 2) and per-partition subscriber population accounting;
//   * key -> partition resolution via a consistent-hash ring with virtual
//     nodes (shared HashRing primitive), so hash-routed lookups move only
//     ~K/N keys when the map grows by one partition;
//   * live rebalancing: after a scale-out adds storage elements, Rebalance()
//     migrates primary copies onto them through the commit-log resync
//     machinery (replication::ReplicaSet::MigratePrimaryTo) until the
//     per-SE primary-count spread is <= 1, losing no acknowledged write.

#ifndef UDR_ROUTING_PARTITION_MAP_H_
#define UDR_ROUTING_PARTITION_MAP_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash_ring.h"
#include "common/status.h"
#include "common/time.h"
#include "location/identity.h"
#include "replication/replica_set.h"
#include "sim/network.h"
#include "storage/storage_element.h"

namespace udr::routing {

/// What Rebalance() balances across storage elements.
enum class RebalanceWeight {
  kPrimaryCount,  ///< Primary copies hosted per SE (spread <= 1).
  kPopulation,    ///< Subscriber population primary-hosted per SE.
};

/// Static configuration of the partition layer.
struct PartitionMapConfig {
  /// Copies per partition (1 primary + N-1 secondaries).
  int replication_factor = 3;
  /// Partitions commissioned per storage element. Values > 1 give the
  /// rebalancer finer-grained units to move on scale-out.
  int partitions_per_se = 1;
  /// Ring smoothness for key -> partition hashing.
  int vnodes_per_partition = 64;
  /// Balancing criterion for Rebalance(). Population weighting uses the
  /// per-partition subscriber accounting, so SEs end up with similar served
  /// populations even when partitions are unevenly filled.
  RebalanceWeight rebalance_weight = RebalanceWeight::kPrimaryCount;
  /// Template for every partition's replica set; `name` is overridden with
  /// "partition-<id>" per partition.
  replication::ReplicaSetConfig replica_template;
};

/// One registered storage element and its placement bookkeeping.
struct SeInfo {
  storage::StorageElement* se = nullptr;
  uint32_t cluster = 0;
  int secondary_load = 0;  ///< Secondary copies hosted (placement input).
  /// Commissioning-quota marker: partitions this SE was given as primary,
  /// whether commissioned here or received through rebalancing. Never
  /// decremented — a donor SE keeps its quota so Commission() does not
  /// re-create partitions on SEs a rebalance drained.
  int commissioned = 0;
};

/// One primary-copy move performed by Rebalance().
struct PartitionMove {
  uint32_t partition = 0;
  sim::SiteId from_site = 0;
  sim::SiteId to_site = 0;
  replication::MigrationReport migration;
};

/// One move of a rebalancing *plan*: computed against current state without
/// executing anything. PlanRebalance() is the single placement brain — the
/// inline Rebalance() pass and the background migration scheduler both
/// execute deltas it produced, so repeated planning over a balanced (or
/// already-planned) map is a stable no-op instead of a from-scratch
/// recomputation.
struct PlannedPrimaryMove {
  uint32_t partition = 0;
  int from_se = -1;  ///< Registry index of the current primary's SE.
  int to_se = -1;    ///< Registry index of the receiving SE.
};

/// Aggregate outcome of a rebalancing pass.
struct RebalanceReport {
  std::vector<PartitionMove> moves;
  int spread_before = 0;  ///< max-min primaries per SE before the pass.
  int spread_after = 0;
  int64_t population_spread_before = 0;  ///< max-min population per SE.
  int64_t population_spread_after = 0;
  int64_t entries_replayed = 0;
  int64_t bytes_moved = 0;
  MicroDuration duration = 0;  ///< Modelled total migration time.
};

class PartitionMap {
 public:
  PartitionMap(PartitionMapConfig config, sim::Network* network);

  const PartitionMapConfig& config() const { return config_; }

  // -- Storage-element registry -----------------------------------------------

  void RegisterStorageElement(storage::StorageElement* se, uint32_t cluster);
  size_t se_count() const { return ses_.size(); }
  const SeInfo& se_info(size_t idx) const { return ses_[idx]; }
  /// Registry index of an SE; -1 when unknown.
  int IndexOfSe(const storage::StorageElement* se) const;

  // -- Commissioning -----------------------------------------------------------

  /// Creates replica sets until every registered SE primary-hosts
  /// `partitions_per_se` partitions, picking geographically disperse,
  /// least-loaded secondaries. Idempotent; called lazily by the data path.
  void Commission();

  // -- Runtime split / merge ---------------------------------------------------
  //
  // A hot partition splits at runtime: a sibling replica set is commissioned
  // and the ring gains the sibling's points at the midpoint of every
  // parent-owned arc (HashRing::SplitNode), so ~half of the parent's key
  // space — and no other partition's — re-homes to the sibling. The actual
  // subscriber movement is a MigrationPlanner plan executed by the throttled
  // scheduler. A cold sibling merges back in two phases: BeginMerge removes
  // its ring points (keys re-home to the arc successors, i.e. the parent),
  // the scheduler drains its records, and RetirePartition finishes the
  // bookkeeping once the population hits zero. Replica-set slots are never
  // erased — partition ids stay dense and stable — a retired partition is
  // just excluded from planning, spread accounting and the ring.

  /// Commissions a split sibling for `parent`: a new replica set whose
  /// primary lands on the least-primary-loaded SE other than the parent's
  /// (the SE the split is relieving), taking the lower half of every parent
  /// ring arc. Returns the sibling's partition id.
  StatusOr<uint32_t> CommissionSplitSibling(uint32_t parent);

  /// Phase 1 of a merge: removes `partition`'s ring points so no new keys
  /// resolve to it. The partition keeps serving its remaining records (the
  /// migration machinery's bypass exceptions route them) until drained.
  Status BeginMerge(uint32_t partition);

  /// Phase 2 of a merge: marks a drained (population 0) partition retired
  /// and releases its placement bookkeeping.
  Status RetirePartition(uint32_t partition);

  bool partition_retired(uint32_t id) const { return retired_[id] != 0; }
  bool partition_draining(uint32_t id) const { return draining_[id] != 0; }
  /// Parent partition this one was split from; -1 for commissioned ones.
  int parent_of(uint32_t id) const { return parent_[id]; }
  /// Partitions that are neither retired nor draining.
  size_t live_partition_count() const;

  // -- Partition access --------------------------------------------------------

  size_t partition_count() const { return partitions_.size(); }
  replication::ReplicaSet* partition(uint32_t id) {
    return partitions_[id].get();
  }
  const replication::ReplicaSet* partition(uint32_t id) const {
    return partitions_[id].get();
  }
  /// SE currently holding the partition's primary copy (tracks failovers and
  /// migrations, since it reads the live replica-set state).
  storage::StorageElement* primary_se(uint32_t id) {
    return partitions_[id]->replica_se(partitions_[id]->master_id());
  }
  sim::SiteId master_site(uint32_t id) const {
    return partitions_[id]->master_site();
  }

  // -- Population accounting ---------------------------------------------------

  int64_t population(uint32_t id) const { return population_[id]; }
  void AddPopulation(uint32_t id, int64_t delta) { population_[id] += delta; }

  // -- Key -> partition resolution ---------------------------------------------

  /// Ring owner of a pre-hashed key. Requires a commissioned map.
  uint32_t PartitionOfKey(uint64_t hash) const { return ring_.NodeOfHash(hash); }
  uint32_t PartitionOfIdentity(const location::Identity& id) const;

  // -- Rebalancing -------------------------------------------------------------

  /// Primary copies hosted per registered SE, from live replica-set state.
  std::vector<int> PrimariesPerSe() const;
  /// max - min of PrimariesPerSe() (0 for an empty map).
  int PrimarySpread() const;
  /// Subscriber population primary-hosted per registered SE.
  std::vector<int64_t> PopulationPerSe() const;
  /// max - min of PopulationPerSe() (0 for an empty map).
  int64_t PopulationSpread() const;

  /// Computes the ordered delta that balances the map under the configured
  /// weight — primary-count spread <= 1 (kPrimaryCount) or no population-
  /// improving move left (kPopulation) — without touching any state.
  /// Deterministic: the same map state always yields the same plan, and a
  /// balanced map yields an empty one.
  std::vector<PlannedPrimaryMove> PlanRebalance() const;

  /// Executes PlanRebalance() inline: migrates each planned primary copy via
  /// the commit-log handoff machinery. Planned handoffs ship the full commit
  /// log before switching ownership, so no acknowledged write is lost.
  StatusOr<RebalanceReport> Rebalance();

  /// Post-cutover bookkeeping for an externally executed primary move (the
  /// background migration scheduler performs the chunked handoff itself and
  /// reports it here): secondary-load accounting and the commissioning-quota
  /// transfer that keeps a later lazy Commission() off drained SEs.
  void NotePrimaryMoved(uint32_t partition, int from_se, int to_se,
                        const replication::MigrationReport& migration);

  // -- Maintenance fan-out -----------------------------------------------------

  void CatchUpAll();
  replication::RestorationReport RestoreAll();

 private:
  /// Migrates partition `partition`'s primary copy onto SE `to_idx`,
  /// recording the move and bookkeeping into `report`.
  Status MovePrimary(size_t partition, size_t to_idx, RebalanceReport* report);

  /// One greedy planning pass per weight mode, simulated over `owner`
  /// (partition -> SE registry index); both append to `plan`.
  void PlanByPrimaryCount(std::vector<int>* owner,
                          std::vector<PlannedPrimaryMove>* plan) const;
  void PlanByPopulation(std::vector<int>* owner,
                        std::vector<PlannedPrimaryMove>* plan) const;

  PartitionMapConfig config_;
  sim::Network* network_;
  std::vector<SeInfo> ses_;
  std::unordered_map<const storage::StorageElement*, int> se_index_;
  std::vector<std::unique_ptr<replication::ReplicaSet>> partitions_;
  std::vector<int64_t> population_;
  std::vector<uint8_t> retired_;   ///< 1:1 with partitions_.
  std::vector<uint8_t> draining_;  ///< Merge phase 1 done, not yet retired.
  std::vector<int> parent_;        ///< Split parent; -1 when commissioned.
  HashRing ring_;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_PARTITION_MAP_H_
