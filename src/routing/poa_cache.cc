#include "routing/poa_cache.h"

namespace udr::routing {

PoaCache::PoaCache(PoaCacheConfig config) : config_(config) {
  if (config_.capacity_bytes < 0) config_.capacity_bytes = 0;
  if (config_.hit_cost < 0) config_.hit_cost = 0;
}

const storage::Record* PoaCache::Lookup(storage::RecordKey key,
                                        uint32_t partition, uint64_t epoch) {
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  Entry& entry = *it->second;
  if (entry.partition != partition || entry.epoch != epoch) {
    // Cached under an owner/epoch that has since moved on (split, merge,
    // migration cutover). Never serve across the boundary.
    ++epoch_drops_;
    ++misses_;
    Erase(it->second);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return &lru_.front().record;
}

void PoaCache::Insert(storage::RecordKey key, uint32_t partition,
                      uint64_t epoch, const storage::Record& record) {
  common::MutexLock lock(mu_);
  const int64_t cost = record.CacheFootprintBytes();
  if (cost > config_.capacity_bytes) return;

  auto it = index_.find(key);
  if (it != index_.end()) Erase(it->second);

  while (bytes_ + cost > config_.capacity_bytes && !lru_.empty()) {
    ++evictions_;
    Erase(std::prev(lru_.end()));
  }

  lru_.push_front(Entry{key, partition, epoch, cost, record});
  index_[key] = lru_.begin();
  bytes_ += cost;
  ++insertions_;
}

bool PoaCache::Invalidate(storage::RecordKey key) {
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  ++invalidations_;
  Erase(it->second);
  return true;
}

void PoaCache::Clear() {
  common::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void PoaCache::Erase(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace udr::routing
