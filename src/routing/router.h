// Router: carries a request from the Point of Access through identity
// location to the replica set owning the subscriber's partition — the data
// location stage of the paper's three-tier PoA / location / storage split,
// extracted from UdrNf.
//
// Responsibilities:
//   * PoA selection: nearest reachable Point of Access for a client site;
//   * identity resolution at a PoA's data location stage instance (§3.3.1
//     decision 1: resolution never leaves the PoA);
//   * the authoritative identity -> location map (what a broadcast over all
//     SEs would answer) and bind/unbind fan-out to every PoA stage;
//   * the final hop: LocationEntry -> owning replication::ReplicaSet via the
//     PartitionMap.
//
// Location entries name a partition id, not a storage element, so they stay
// valid across primary-copy migrations and failovers — rebalancing needs no
// location-stage rebind.

#ifndef UDR_ROUTING_ROUTER_H_
#define UDR_ROUTING_ROUTER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "location/identity.h"
#include "location/location_stage.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "routing/batch.h"
#include "routing/heat_tracker.h"
#include "routing/partition_map.h"
#include "routing/poa_cache.h"
#include "sim/network.h"

namespace udr::routing {

/// Outcome of routing one request to its owning replica set.
struct RouteResult {
  Status status;
  replication::ReplicaSet* rs = nullptr;
  storage::RecordKey key = 0;
  uint32_t partition = 0;
  MicroDuration resolve_cost = 0;  ///< Location-stage processing cost.
  bool bypassed_location = false;  ///< Served by the hash fast path.
};

/// What a single-op Route call will do with the replica set. Reads are
/// eligible for the hash-routed location bypass; writes always resolve
/// through the location stage (a bypassed write on an unprovisioned identity
/// would silently materialize a record).
enum class RouteIntent { kRead, kWrite };

/// Hash-routed location bypass (deployed under PlacementKind::kHash): read
/// resolution short-circuits via PartitionMap::PartitionOfIdentity and the
/// identity-hash record key, skipping the location stage entirely. Only
/// identities of `identity_type` are eligible — under hash placement the
/// record is keyed and placed by that identity, and routing any *other*
/// identity type by hash would land on the wrong ring (the paper's
/// one-ring-per-identity-type limitation, §3.5).
struct HashBypassConfig {
  bool enabled = false;
  location::IdentityType identity_type = location::IdentityType::kImsi;
  /// O(1) ring-lookup cost, mirroring LocationCostModel::hash_lookup.
  MicroDuration lookup_cost = Micros(2);
};

/// Heat-aware data path: the router samples every resolved op into a
/// HeatTracker (per-partition EWMA + space-saving top-K key sketch) and can
/// serve the hottest records from per-PoA read-through caches. Everything is
/// off by default — an unconfigured router routes byte-identically to a
/// heat-unaware one.
struct HeatConfig {
  /// Enables access sampling (prerequisite for the cache and split/merge).
  bool track = false;
  HeatTrackerConfig tracker;
  /// Byte budget of each PoA's read-through cache; 0 = no caching.
  int64_t poa_cache_bytes = 0;
  /// PoA-local cost charged per cache hit.
  MicroDuration cache_hit_cost = Micros(2);
  /// Sketch count a key needs before its record is admitted to a cache —
  /// keeps one-hit wonders from churning the byte budget.
  int64_t cache_admit_min_count = 4;
};

class Router {
 public:
  Router(PartitionMap* map, sim::Network* network, Metrics* metrics);

  // -- PoA registry ------------------------------------------------------------

  /// Registers a blade cluster's Point of Access and its data location stage
  /// instance. Called by the deployment layer as clusters come up.
  void RegisterPoa(uint32_t cluster_id, sim::SiteId site,
                   location::LocationStage* stage);

  /// Nearest reachable, serving PoA for a client; returns its cluster id.
  StatusOr<uint32_t> FindPoaCluster(sim::SiteId client_site) const;

  /// Takes a PoA out of (or back into) client rotation. A non-serving PoA —
  /// its site lost, its LDAP farm drained — is skipped by FindPoaCluster, so
  /// clients transparently fail over to the next-nearest PoA while the data
  /// path keeps resolving through surviving location-stage instances.
  void SetPoaServing(uint32_t cluster_id, bool serving);
  bool PoaServing(uint32_t cluster_id) const;

  /// Location stage serving `site`; nullptr when no PoA is deployed there.
  location::LocationStage* StageAtSite(sim::SiteId site) const;

  // -- Identity binding --------------------------------------------------------

  /// Authoritative lookup (what a broadcast over all SEs returns).
  StatusOr<location::LocationEntry> AuthoritativeLookup(
      const location::Identity& id) const;
  bool IsBound(const location::Identity& id) const {
    return authoritative_.count(id) > 0;
  }

  /// Read-only view of every authoritative binding (used by the deployment
  /// layer to re-home hash-keyed subscribers after the ring grows).
  const std::unordered_map<location::Identity, location::LocationEntry,
                           location::IdentityHasher>&
  bindings() const {
    return authoritative_;
  }

  /// Records a binding authoritatively and at every PoA stage.
  void Bind(const location::Identity& id, const location::LocationEntry& entry);

  /// Removes a binding everywhere.
  void Unbind(const location::Identity& id);

  // -- Resolution and routing --------------------------------------------------

  /// Resolves an identity at the location stage local to `poa_site`.
  location::ResolveResult ResolveAt(const location::Identity& id,
                                    sim::SiteId poa_site);

  /// Full data-path hop: identity -> location entry -> owning replica set.
  /// A thin wrapper over the resolution stage of a size-1 batch; reads may
  /// take the hash bypass when it is enabled.
  RouteResult Route(const location::Identity& id, sim::SiteId poa_site,
                    RouteIntent intent = RouteIntent::kWrite);

  // -- Batched pipeline --------------------------------------------------------

  /// Configures the hash-routed location bypass (see HashBypassConfig).
  void SetHashBypass(HashBypassConfig config) { bypass_ = config; }
  const HashBypassConfig& hash_bypass() const { return bypass_; }

  /// Excludes one identity from the bypass: its reads fall back to the
  /// location stage until cleared. Used by the deployment layer when a
  /// subscriber's record could not be re-homed to its ring owner (the stage
  /// still knows the true location; the hash would misroute). The entry's
  /// lifetime is tied to the binding: Unbind drops it, so a deleted
  /// subscriber cannot leak an exception.
  void AddBypassException(const location::Identity& id) {
    bypass_exceptions_.insert(id);
  }
  void ClearBypassException(const location::Identity& id) {
    bypass_exceptions_.erase(id);
  }
  size_t bypass_exception_count() const { return bypass_exceptions_.size(); }

  /// Stage 1 of the pipeline: resolves every op of the batch at the location
  /// stage local to `poa_site` (or via the hash bypass for eligible reads).
  /// Returns one RouteResult per op and accounts resolution cost and bypass
  /// hits into `result` when non-null.
  std::vector<RouteResult> ResolveStage(const BatchRequest& batch,
                                        sim::SiteId poa_site,
                                        BatchResult* result);

  /// The staged batch pipeline: (1) resolve all identities at the PoA,
  /// (2) group ops by owning partition, (3) dispatch one grouped
  /// ReplicaSet::WriteBatch / ReadBatch per partition-group run. Per-key op
  /// order is preserved (grouping is stable and runs within a group execute
  /// in request order); a failed op never poisons the rest of the batch.
  BatchResult RouteBatch(const BatchRequest& batch, sim::SiteId poa_site);

  PartitionMap* partition_map() { return map_; }

  // -- Observability -----------------------------------------------------------

  /// Installs the tracer the pipeline records spans into (nullptr = off).
  /// The coalescer and other front ends reach the tracer through here so
  /// one sink covers the whole data path of this router.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  /// Installs the flight recorder resolve failures are logged to.
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

  // -- Heat tier ---------------------------------------------------------------

  /// Installs (or reconfigures) heat tracking and the per-PoA caches. PoAs
  /// registered later inherit the configuration.
  void ConfigureHeat(const HeatConfig& config);
  const HeatConfig& heat_config() const { return heat_; }

  /// The access-heat tracker; nullptr until ConfigureHeat(track = true).
  HeatTracker* heat_tracker() { return heat_tracker_.get(); }
  const HeatTracker* heat_tracker() const { return heat_tracker_.get(); }

  /// The read-through cache of the PoA at `site`; nullptr when uncached.
  PoaCache* poa_cache_at(sim::SiteId site);

  /// Synchronously drops `key` from every PoA cache. Called by the batched
  /// write flush and by every direct-write site (create/delete/modify/
  /// re-home), so a cached record never outlives a committed write.
  void InvalidateCached(storage::RecordKey key);

  /// Serves a solo-path kNearest read from the PoA cache when the record is
  /// cached under the current (partition, epoch); nullptr otherwise. The
  /// pointer stays valid until the next router call.
  const storage::Record* CacheLookup(storage::RecordKey key,
                                     uint32_t partition, sim::SiteId poa_site);

  /// Offers a freshly read record for caching; admitted only if the key is
  /// hot enough in the sketch (and `stale` is false — a cache entry must
  /// equal newest committed master state).
  void CachePopulate(storage::RecordKey key, uint32_t partition,
                     sim::SiteId poa_site, const storage::Record& record,
                     bool stale);

  /// Partition epoch, bumped on migration cutover and split/merge; cache
  /// entries are tagged with it so nothing is served across a re-home (the
  /// bypass-exception shape, applied to cached state).
  uint64_t partition_epoch(uint32_t partition) const {
    return partition < partition_epochs_.size() ? partition_epochs_[partition]
                                                : 0;
  }
  void BumpPartitionEpoch(uint32_t partition);

 private:
  struct Poa {
    uint32_t cluster_id = 0;
    sim::SiteId site = 0;
    location::LocationStage* stage = nullptr;
    std::unique_ptr<PoaCache> cache;
    bool serving = true;  ///< In client rotation (false: site lost/drained).
  };

  /// Resolves one op: hash bypass when eligible, location stage otherwise.
  RouteResult ResolveOne(const location::Identity& id, sim::SiteId poa_site,
                         bool read_intent);

  /// Stage 3 helper: dispatches one partition-group, walking its ops in
  /// request order and flushing consecutive same-kind runs as one grouped
  /// ReplicaSet call. Returns the group's modelled latency.
  MicroDuration DispatchGroup(const BatchRequest& batch,
                              const std::vector<RouteResult>& routes,
                              const std::vector<size_t>& members,
                              sim::SiteId poa_site, BatchResult* result,
                              const obs::TraceContext& span_parent,
                              MicroTime dispatch_start);

  /// Serves one read op from `cache` when possible (same status/value
  /// semantics as the replica-set read path). Returns false on miss.
  bool TryServeFromCache(const Operation& op, const RouteResult& route,
                         PoaCache* cache, OpOutcome* out);

  PartitionMap* map_;
  sim::Network* network_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  // Pre-registered handles for the pipeline's hot-path metrics (the string
  // Add/Observe API stays for cold call sites).
  Metrics::Counter routed_;
  Metrics::Counter bypass_hits_;
  Metrics::Counter cache_hits_;
  Metrics::Counter cache_misses_;
  Metrics::Counter batch_count_;
  Metrics::Counter batch_ops_;
  Metrics::HistHandle batch_size_;
  Metrics::HistHandle batch_groups_;
  HashBypassConfig bypass_;
  HeatConfig heat_;
  std::unique_ptr<HeatTracker> heat_tracker_;
  std::vector<uint64_t> partition_epochs_;
  std::unordered_set<location::Identity, location::IdentityHasher>
      bypass_exceptions_;
  std::vector<Poa> poas_;
  std::unordered_map<location::Identity, location::LocationEntry,
                     location::IdentityHasher>
      authoritative_;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_ROUTER_H_
