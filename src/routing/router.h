// Router: carries a request from the Point of Access through identity
// location to the replica set owning the subscriber's partition — the data
// location stage of the paper's three-tier PoA / location / storage split,
// extracted from UdrNf.
//
// Responsibilities:
//   * PoA selection: nearest reachable Point of Access for a client site;
//   * identity resolution at a PoA's data location stage instance (§3.3.1
//     decision 1: resolution never leaves the PoA);
//   * the authoritative identity -> location map (what a broadcast over all
//     SEs would answer) and bind/unbind fan-out to every PoA stage;
//   * the final hop: LocationEntry -> owning replication::ReplicaSet via the
//     PartitionMap.
//
// Location entries name a partition id, not a storage element, so they stay
// valid across primary-copy migrations and failovers — rebalancing needs no
// location-stage rebind.

#ifndef UDR_ROUTING_ROUTER_H_
#define UDR_ROUTING_ROUTER_H_

#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "location/identity.h"
#include "location/location_stage.h"
#include "routing/partition_map.h"
#include "sim/network.h"

namespace udr::routing {

/// Outcome of routing one request to its owning replica set.
struct RouteResult {
  Status status;
  replication::ReplicaSet* rs = nullptr;
  storage::RecordKey key = 0;
  uint32_t partition = 0;
  MicroDuration resolve_cost = 0;  ///< Location-stage processing cost.
};

class Router {
 public:
  Router(PartitionMap* map, sim::Network* network, Metrics* metrics);

  // -- PoA registry ------------------------------------------------------------

  /// Registers a blade cluster's Point of Access and its data location stage
  /// instance. Called by the deployment layer as clusters come up.
  void RegisterPoa(uint32_t cluster_id, sim::SiteId site,
                   location::LocationStage* stage);

  /// Nearest reachable PoA for a client; returns its cluster id.
  StatusOr<uint32_t> FindPoaCluster(sim::SiteId client_site) const;

  /// Location stage serving `site`; nullptr when no PoA is deployed there.
  location::LocationStage* StageAtSite(sim::SiteId site) const;

  // -- Identity binding --------------------------------------------------------

  /// Authoritative lookup (what a broadcast over all SEs returns).
  StatusOr<location::LocationEntry> AuthoritativeLookup(
      const location::Identity& id) const;
  bool IsBound(const location::Identity& id) const {
    return authoritative_.count(id) > 0;
  }

  /// Records a binding authoritatively and at every PoA stage.
  void Bind(const location::Identity& id, const location::LocationEntry& entry);

  /// Removes a binding everywhere.
  void Unbind(const location::Identity& id);

  // -- Resolution and routing --------------------------------------------------

  /// Resolves an identity at the location stage local to `poa_site`.
  location::ResolveResult ResolveAt(const location::Identity& id,
                                    sim::SiteId poa_site);

  /// Full data-path hop: identity -> location entry -> owning replica set.
  RouteResult Route(const location::Identity& id, sim::SiteId poa_site);

  PartitionMap* partition_map() { return map_; }

 private:
  struct Poa {
    uint32_t cluster_id = 0;
    sim::SiteId site = 0;
    location::LocationStage* stage = nullptr;
  };

  PartitionMap* map_;
  sim::Network* network_;
  Metrics* metrics_;
  std::vector<Poa> poas_;
  std::unordered_map<location::Identity, location::LocationEntry,
                     location::IdentityHasher>
      authoritative_;
};

}  // namespace udr::routing

#endif  // UDR_ROUTING_ROUTER_H_
