#include "routing/placement_policy.h"

namespace udr::routing {

StatusOr<uint32_t> LeastLoadedPolicy::PickPartition(
    const PartitionMap& map, const PlacementRequest& req) {
  (void)req;
  if (map.partition_count() == 0) return EmptyMapError();
  uint32_t best = 0;
  for (uint32_t p = 1; p < map.partition_count(); ++p) {
    if (map.population(p) < map.population(best)) best = p;
  }
  return best;
}

StatusOr<uint32_t> RoundRobinPolicy::PickPartition(
    const PartitionMap& map, const PlacementRequest& req) {
  (void)req;
  if (map.partition_count() == 0) return EmptyMapError();
  uint32_t pick = cursor_ % static_cast<uint32_t>(map.partition_count());
  cursor_ = pick + 1;
  return pick;
}

StatusOr<uint32_t> HashPolicy::PickPartition(const PartitionMap& map,
                                             const PlacementRequest& req) {
  if (map.partition_count() == 0) return EmptyMapError();
  if (req.identity == nullptr) {
    return Status::InvalidArgument("hash placement needs an identity");
  }
  return map.PartitionOfIdentity(*req.identity);
}

SelectivePolicy::SelectivePolicy(std::unique_ptr<PlacementPolicy> fallback)
    : fallback_(std::move(fallback)) {}

StatusOr<uint32_t> SelectivePolicy::PickPartition(const PartitionMap& map,
                                                  const PlacementRequest& req) {
  if (map.partition_count() == 0) return EmptyMapError();
  if (req.home_site.has_value()) {
    int best = -1;
    for (uint32_t p = 0; p < map.partition_count(); ++p) {
      if (map.master_site(p) != *req.home_site) continue;
      if (best < 0 || map.population(p) < map.population(best)) {
        best = static_cast<int>(p);
      }
    }
    if (best >= 0) return static_cast<uint32_t>(best);
    // No partition's master copy lives there: global placement.
  }
  return fallback_->PickPartition(map, req);
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementKind kind) {
  std::unique_ptr<PlacementPolicy> inner;
  switch (kind) {
    case PlacementKind::kLeastLoaded:
      inner = std::make_unique<LeastLoadedPolicy>();
      break;
    case PlacementKind::kRoundRobin:
      inner = std::make_unique<RoundRobinPolicy>();
      break;
    case PlacementKind::kHash:
      // No selective wrapper: consistent hashing cannot honor an explicit
      // home site (§3.5), and a selective override would break the router's
      // hash-routed location bypass (partition must stay a pure function of
      // the identity).
      return std::make_unique<HashPolicy>();
  }
  return std::make_unique<SelectivePolicy>(std::move(inner));
}

}  // namespace udr::routing
