#include "routing/router.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "replication/write_builder.h"

namespace udr::routing {

using location::Identity;
using location::LocationEntry;
using location::ResolveResult;

Router::Router(PartitionMap* map, sim::Network* network, Metrics* metrics)
    : map_(map),
      network_(network),
      metrics_(metrics),
      routed_(metrics->RegisterCounter("router.routed")),
      bypass_hits_(metrics->RegisterCounter("router.bypass.hits")),
      cache_hits_(metrics->RegisterCounter("router.cache.hits")),
      cache_misses_(metrics->RegisterCounter("router.cache.misses")),
      batch_count_(metrics->RegisterCounter("router.batch.count")),
      batch_ops_(metrics->RegisterCounter("router.batch.ops")),
      batch_size_(metrics->RegisterHist("router.batch.size")),
      batch_groups_(metrics->RegisterHist("router.batch.groups")) {}

void Router::RegisterPoa(uint32_t cluster_id, sim::SiteId site,
                         location::LocationStage* stage) {
  // A freshly deployed stage starts with whatever its realization syncs on
  // its own (§3.4.2 provisioned copy, or cache-on-miss); the router only
  // fans out bindings made from now on.
  Poa poa;
  poa.cluster_id = cluster_id;
  poa.site = site;
  poa.stage = stage;
  if (heat_.poa_cache_bytes > 0) {
    poa.cache = std::make_unique<PoaCache>(
        PoaCacheConfig{heat_.poa_cache_bytes, heat_.cache_hit_cost});
  }
  poas_.push_back(std::move(poa));
}

void Router::ConfigureHeat(const HeatConfig& config) {
  heat_ = config;
  // A cache without the sketch has no admission signal; the tracker is the
  // prerequisite tier, so a cache budget implies tracking.
  if (heat_.poa_cache_bytes > 0) heat_.track = true;
  heat_tracker_ =
      heat_.track ? std::make_unique<HeatTracker>(heat_.tracker) : nullptr;
  for (Poa& poa : poas_) {
    poa.cache = heat_.poa_cache_bytes > 0
                    ? std::make_unique<PoaCache>(PoaCacheConfig{
                          heat_.poa_cache_bytes, heat_.cache_hit_cost})
                    : nullptr;
  }
}

PoaCache* Router::poa_cache_at(sim::SiteId site) {
  for (Poa& poa : poas_) {
    if (poa.site == site) return poa.cache.get();
  }
  return nullptr;
}

void Router::InvalidateCached(storage::RecordKey key) {
  for (Poa& poa : poas_) {
    if (poa.cache != nullptr && poa.cache->Invalidate(key)) {
      metrics_->Add("router.cache.invalidations");
    }
  }
}

void Router::BumpPartitionEpoch(uint32_t partition) {
  if (partition_epochs_.size() <= partition) {
    partition_epochs_.resize(partition + 1, 0);
  }
  ++partition_epochs_[partition];
  if (flight_ != nullptr) {
    flight_->Record(network_->Now(), "router", "epoch.bump",
                    "partition=" + std::to_string(partition) + " epoch=" +
                        std::to_string(partition_epochs_[partition]));
  }
}

const storage::Record* Router::CacheLookup(storage::RecordKey key,
                                           uint32_t partition,
                                           sim::SiteId poa_site) {
  PoaCache* cache = poa_cache_at(poa_site);
  if (cache == nullptr) return nullptr;
  const storage::Record* rec =
      cache->Lookup(key, partition, partition_epoch(partition));
  (rec != nullptr ? cache_hits_ : cache_misses_).Add();
  return rec;
}

void Router::CachePopulate(storage::RecordKey key, uint32_t partition,
                           sim::SiteId poa_site, const storage::Record& record,
                           bool stale) {
  // Policy: only non-stale reads may seed the cache — an entry must equal
  // the newest committed master state, or a hit would widen the staleness
  // window beyond what the replica set itself serves.
  if (stale) return;
  PoaCache* cache = poa_cache_at(poa_site);
  if (cache == nullptr) return;
  if (heat_tracker_ != nullptr &&
      heat_tracker_->KeyCount(key) < heat_.cache_admit_min_count) {
    return;
  }
  cache->Insert(key, partition, partition_epoch(partition), record);
  metrics_->Add("router.cache.insertions");
}

StatusOr<uint32_t> Router::FindPoaCluster(sim::SiteId client_site) const {
  int best = -1;
  MicroDuration best_rtt = 0;
  for (size_t i = 0; i < poas_.size(); ++i) {
    if (!poas_[i].serving) continue;
    sim::SiteId s = poas_[i].site;
    if (!network_->Reachable(client_site, s)) continue;
    MicroDuration rtt = network_->topology().Rtt(client_site, s);
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(i);
      best_rtt = rtt;
    }
  }
  if (best < 0) {
    return Status::Unavailable("no reachable Point of Access from site " +
                               std::to_string(client_site));
  }
  return poas_[best].cluster_id;
}

void Router::SetPoaServing(uint32_t cluster_id, bool serving) {
  for (Poa& poa : poas_) {
    if (poa.cluster_id == cluster_id) poa.serving = serving;
  }
}

bool Router::PoaServing(uint32_t cluster_id) const {
  for (const Poa& poa : poas_) {
    if (poa.cluster_id == cluster_id) return poa.serving;
  }
  return false;
}

location::LocationStage* Router::StageAtSite(sim::SiteId site) const {
  for (const Poa& poa : poas_) {
    if (poa.site == site) return poa.stage;
  }
  return nullptr;
}

StatusOr<LocationEntry> Router::AuthoritativeLookup(const Identity& id) const {
  auto it = authoritative_.find(id);
  if (it == authoritative_.end()) {
    return Status::NotFound("identity " + id.ToString() + " not provisioned");
  }
  return it->second;
}

void Router::Bind(const Identity& id, const LocationEntry& entry) {
  authoritative_[id] = entry;
  for (const Poa& poa : poas_) {
    if (poa.stage != nullptr) (void)poa.stage->Bind(id, entry);
  }
}

void Router::Unbind(const Identity& id) {
  authoritative_.erase(id);
  // An unbound identity must not pin a bypass exception: the exception list
  // exists to protect live bindings the hash would misroute, and a leaked
  // entry would linger forever (and silently disable the fast path if the
  // identity is ever provisioned again).
  bypass_exceptions_.erase(id);
  for (const Poa& poa : poas_) {
    if (poa.stage != nullptr) (void)poa.stage->Unbind(id);
  }
}

ResolveResult Router::ResolveAt(const Identity& id, sim::SiteId poa_site) {
  location::LocationStage* stage = StageAtSite(poa_site);
  if (stage == nullptr) {
    ResolveResult out;
    out.status = Status::Unavailable("no location stage at site " +
                                     std::to_string(poa_site));
    return out;
  }
  return stage->Resolve(id, network_->Now());
}

RouteResult Router::ResolveOne(const Identity& id, sim::SiteId poa_site,
                               bool read_intent) {
  RouteResult out;
  // Hash fast path: under hash placement the owning partition and the record
  // key are pure functions of the identity, so an eligible read never needs
  // the location stage (no lookup state, no scale-out sync window).
  if (bypass_.enabled && read_intent && id.type == bypass_.identity_type &&
      map_->partition_count() > 0 && bypass_exceptions_.count(id) == 0) {
    out.status = Status::Ok();
    out.resolve_cost = bypass_.lookup_cost;
    out.key = location::HashIdentity(id);
    out.partition = map_->PartitionOfIdentity(id);
    out.rs = map_->partition(out.partition);
    out.bypassed_location = true;
    if (heat_tracker_ != nullptr) {
      heat_tracker_->RecordAccess(out.partition, out.key, network_->Now());
    }
    bypass_hits_.Add();
    routed_.Add();
    return out;
  }
  ResolveResult loc = ResolveAt(id, poa_site);
  out.resolve_cost = loc.cost;
  if (!loc.status.ok()) {
    out.status = loc.status;
    metrics_->Add("router.resolve.failed");
    if (flight_ != nullptr) {
      flight_->Record(network_->Now(), "router", "resolve.fail",
                      id.ToString() + " " + loc.status.ToString());
    }
    return out;
  }
  if (loc.entry.partition >= map_->partition_count()) {
    out.status = Status::Internal("location entry names unknown partition " +
                                  std::to_string(loc.entry.partition));
    return out;
  }
  out.status = Status::Ok();
  out.key = loc.entry.key;
  out.partition = loc.entry.partition;
  out.rs = map_->partition(loc.entry.partition);
  if (heat_tracker_ != nullptr) {
    heat_tracker_->RecordAccess(out.partition, out.key, network_->Now());
  }
  routed_.Add();
  return out;
}

RouteResult Router::Route(const Identity& id, sim::SiteId poa_site,
                          RouteIntent intent) {
  BatchRequest one;
  one.Add(intent == RouteIntent::kRead ? Operation::ReadRecord(id)
                                       : Operation::Write(id, {}));
  return ResolveStage(one, poa_site, nullptr).front();
}

std::vector<RouteResult> Router::ResolveStage(const BatchRequest& batch,
                                              sim::SiteId poa_site,
                                              BatchResult* result) {
  std::vector<RouteResult> routes;
  routes.reserve(batch.ops.size());
  for (const Operation& op : batch.ops) {
    RouteResult r = ResolveOne(op.identity, poa_site, op.IsRead());
    if (result != nullptr) {
      result->resolve_cost += r.resolve_cost;
      if (r.bypassed_location) ++result->bypass_hits;
    }
    routes.push_back(std::move(r));
  }
  return routes;
}

MicroDuration Router::DispatchGroup(const BatchRequest& batch,
                                    const std::vector<RouteResult>& routes,
                                    const std::vector<size_t>& members,
                                    sim::SiteId poa_site, BatchResult* result,
                                    const obs::TraceContext& span_parent,
                                    MicroTime dispatch_start) {
  replication::ReplicaSet* rs = routes[members.front()].rs;
  PoaCache* cache = poa_cache_at(poa_site);
  // The whole group ships to its replica set as one message: runs within it
  // execute in order, but their transits overlap in a single round-trip
  // window, so the group pays max(run transit) + the serialized service time.
  // Cache hits never enter the window at all — they cost PoA-local time.
  MicroDuration service_total = 0;
  MicroDuration window_transit = 0;
  MicroDuration cache_cost = 0;
  // Span attribution cursor in modelled time: each flushed run occupies
  // [cursor, cursor + run latency] and advances the cursor by its serialized
  // service share (the overlapping transits stay inside the run span).
  MicroTime span_cursor = dispatch_start;

  // Pending run of consecutive same-kind ops (one grouped dispatch each).
  std::vector<std::vector<storage::WriteOp>> write_txns;
  std::vector<size_t> write_idx;
  std::vector<replication::BatchReadOp> read_ops;
  std::vector<size_t> read_idx;

  auto flush_writes = [&]() {
    if (write_txns.empty()) return;
    replication::GroupWriteResult gw =
        rs->WriteBatch(poa_site, std::move(write_txns));
    service_total += gw.latency - gw.transit;
    window_transit = std::max(window_transit, gw.transit);
    if (tracer_ != nullptr) {
      tracer_->RecordSpan("replica.write", span_parent, span_cursor,
                          span_cursor + gw.latency);
    }
    span_cursor += gw.latency - gw.transit;
    for (size_t j = 0; j < gw.per_op.size(); ++j) {
      OpOutcome& o = result->outcomes[write_idx[j]];
      o.status = gw.per_op[j].status;
      o.latency = gw.per_op[j].latency;
      o.seq = gw.per_op[j].seq;
      o.served_by = gw.per_op[j].served_by;
      if (!o.status.ok()) ++result->failed_ops;
      // Synchronous invalidation: a committed write must never leave a
      // cached copy behind, at this PoA or any other.
      if (o.status.ok()) InvalidateCached(routes[write_idx[j]].key);
    }
    write_txns.clear();
    write_idx.clear();
  };
  auto flush_reads = [&]() {
    if (read_ops.empty()) return;
    replication::GroupReadResult gr = rs->ReadBatch(poa_site, read_ops);
    service_total += gr.latency - gr.transit;
    window_transit = std::max(window_transit, gr.transit);
    if (tracer_ != nullptr) {
      tracer_->RecordSpan("replica.read", span_parent, span_cursor,
                          span_cursor + gr.latency);
    }
    span_cursor += gr.latency - gr.transit;
    for (size_t j = 0; j < gr.per_op.size(); ++j) {
      const size_t idx = read_idx[j];
      OpOutcome& o = result->outcomes[idx];
      o.status = gr.per_op[j].status;
      o.latency = gr.per_op[j].latency;
      o.stale = gr.per_op[j].stale;
      o.served_by = gr.per_op[j].served_by;
      o.value = gr.per_op[j].value;
      o.record = std::move(gr.records[j]);
      if (!o.status.ok()) ++result->failed_ops;
      // Read-through population: a fresh whole-record read of a hot key
      // seeds this PoA's cache (admission filtered by the heat sketch).
      if (cache != nullptr && o.ok() && !o.stale && o.record.has_value() &&
          batch.ops[idx].kind == Operation::Kind::kReadRecord &&
          batch.ops[idx].read_pref == replication::ReadPreference::kNearest) {
        CachePopulate(routes[idx].key, routes[idx].partition, poa_site,
                      *o.record, o.stale);
      }
    }
    read_ops.clear();
    read_idx.clear();
  };

  // Walk the group's ops in request order; consecutive writes commit as one
  // log-append window, consecutive reads probe as one fan-out. A kind switch
  // flushes the pending run first, preserving per-key op order.
  for (size_t i : members) {
    const Operation& op = batch.ops[i];
    if (op.kind == Operation::Kind::kWrite) {
      flush_reads();
      replication::WriteBuilder wb;
      for (const Mutation& m : op.mutations) {
        switch (m.kind) {
          case Mutation::Kind::kSet:
            wb.Set(routes[i].key, m.attr, m.value);
            break;
          case Mutation::Kind::kRemove:
            wb.Remove(routes[i].key, m.attr);
            break;
          case Mutation::Kind::kDeleteRecord:
            wb.Delete(routes[i].key);
            break;
        }
      }
      write_txns.push_back(std::move(wb).Build());
      write_idx.push_back(i);
    } else {
      // Flushing pending writes FIRST both preserves per-key order and makes
      // the cache check below read-your-writes safe: any earlier write of
      // this batch has already committed and invalidated its key.
      flush_writes();
      if (TryServeFromCache(op, routes[i], cache, &result->outcomes[i])) {
        cache_cost += cache->hit_cost();
        ++result->cache_hits;
        if (!result->outcomes[i].ok()) ++result->failed_ops;
        continue;
      }
      replication::BatchReadOp ro;
      ro.key = routes[i].key;
      if (op.kind == Operation::Kind::kReadAttribute) ro.attr = op.attr;
      ro.pref = op.read_pref;
      read_ops.push_back(std::move(ro));
      read_idx.push_back(i);
    }
  }
  flush_writes();
  flush_reads();
  return window_transit + service_total + cache_cost;
}

bool Router::TryServeFromCache(const Operation& op, const RouteResult& route,
                               PoaCache* cache, OpOutcome* out) {
  if (cache == nullptr || op.kind == Operation::Kind::kWrite) return false;
  // Policy boundary: only kNearest reads are cache-eligible. Master-only
  // reads (provisioning, delete preconditions) always see the primary.
  if (op.read_pref != replication::ReadPreference::kNearest) return false;
  const storage::Record* rec = cache->Lookup(
      route.key, route.partition, partition_epoch(route.partition));
  if (rec == nullptr) {
    cache_misses_.Add();
    return false;
  }
  out->from_cache = true;
  out->stale = false;
  out->latency = cache->hit_cost();
  if (op.kind == Operation::Kind::kReadAttribute) {
    // Mirrors ReplicaSet::ReadAttrOn exactly: the cached record equals the
    // master copy, so attribute presence/absence answers match too.
    const storage::Attribute* a = rec->Find(op.attr);
    if (a == nullptr) {
      out->status = Status::NotFound("attribute " + op.attr);
    } else {
      out->status = Status::Ok();
      out->value = a->value;
    }
  } else {
    out->status = Status::Ok();
    out->record = *rec;
  }
  cache_hits_.Add();
  return true;
}

BatchResult Router::RouteBatch(const BatchRequest& batch,
                               sim::SiteId poa_site) {
  BatchResult result;
  result.outcomes.resize(batch.ops.size());
  if (batch.empty()) return result;

  // Pipeline root span: covers the batch's whole modelled latency. All
  // stage spans hang off it in modelled time (the clock does not advance
  // while latencies are computed, so children close via EndAt/RecordSpan
  // at start + modelled cost).
  const MicroTime t0 = network_->Now();
  obs::Span batch_span = obs::StartSpan(tracer_, "route.batch", batch.trace);
  const obs::TraceContext batch_ctx = batch_span.context();

  // Stage 1: resolve every identity at the PoA (or via the hash bypass).
  std::vector<RouteResult> routes = ResolveStage(batch, poa_site, &result);
  if (tracer_ != nullptr) {
    tracer_->RecordSpan("resolve", batch_ctx, t0, t0 + result.resolve_cost);
  }

  // Stage 2: group resolved ops by owning partition, keeping request order
  // inside each group (stable grouping = per-key order preserved).
  std::vector<std::pair<uint32_t, std::vector<size_t>>> groups;
  std::unordered_map<uint32_t, size_t> group_of;
  for (size_t i = 0; i < routes.size(); ++i) {
    OpOutcome& o = result.outcomes[i];
    o.bypassed_location = routes[i].bypassed_location;
    if (!routes[i].status.ok()) {
      // Per-op isolation: a failed resolution fails this op only.
      o.status = routes[i].status;
      ++result.failed_ops;
      continue;
    }
    o.partition = routes[i].partition;
    o.key = routes[i].key;
    auto [it, fresh] = group_of.try_emplace(routes[i].partition, groups.size());
    if (fresh) groups.push_back({routes[i].partition, {}});
    groups[it->second].second.push_back(i);
  }
  result.partition_groups = static_cast<int>(groups.size());

  // Stage 3: one grouped dispatch per replica set; groups fan out
  // concurrently from the PoA, so the batch pays the slowest one.
  const MicroTime dispatch_start = t0 + result.resolve_cost;
  MicroDuration slowest_group = 0;
  for (const auto& [partition, members] : groups) {
    obs::Span dispatch_span =
        tracer_ != nullptr
            ? tracer_->StartSpanAt("dispatch", batch_ctx, dispatch_start)
            : obs::Span();
    const MicroDuration group_latency =
        DispatchGroup(batch, routes, members, poa_site, &result,
                      dispatch_span.context(), dispatch_start);
    dispatch_span.EndAt(dispatch_start + group_latency);
    slowest_group = std::max(slowest_group, group_latency);
  }
  result.latency = result.resolve_cost + slowest_group;
  batch_span.EndAt(t0 + result.latency);

  batch_count_.Add();
  batch_ops_.Add(static_cast<int64_t>(batch.ops.size()));
  batch_size_.Observe(static_cast<int64_t>(batch.ops.size()));
  batch_groups_.Observe(result.partition_groups);
  return result;
}

}  // namespace udr::routing
