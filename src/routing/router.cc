#include "routing/router.h"

#include <string>

namespace udr::routing {

using location::Identity;
using location::LocationEntry;
using location::ResolveResult;

Router::Router(PartitionMap* map, sim::Network* network, Metrics* metrics)
    : map_(map), network_(network), metrics_(metrics) {}

void Router::RegisterPoa(uint32_t cluster_id, sim::SiteId site,
                         location::LocationStage* stage) {
  // A freshly deployed stage starts with whatever its realization syncs on
  // its own (§3.4.2 provisioned copy, or cache-on-miss); the router only
  // fans out bindings made from now on.
  poas_.push_back(Poa{cluster_id, site, stage});
}

StatusOr<uint32_t> Router::FindPoaCluster(sim::SiteId client_site) const {
  int best = -1;
  MicroDuration best_rtt = 0;
  for (size_t i = 0; i < poas_.size(); ++i) {
    sim::SiteId s = poas_[i].site;
    if (!network_->Reachable(client_site, s)) continue;
    MicroDuration rtt = network_->topology().Rtt(client_site, s);
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(i);
      best_rtt = rtt;
    }
  }
  if (best < 0) {
    return Status::Unavailable("no reachable Point of Access from site " +
                               std::to_string(client_site));
  }
  return poas_[best].cluster_id;
}

location::LocationStage* Router::StageAtSite(sim::SiteId site) const {
  for (const Poa& poa : poas_) {
    if (poa.site == site) return poa.stage;
  }
  return nullptr;
}

StatusOr<LocationEntry> Router::AuthoritativeLookup(const Identity& id) const {
  auto it = authoritative_.find(id);
  if (it == authoritative_.end()) {
    return Status::NotFound("identity " + id.ToString() + " not provisioned");
  }
  return it->second;
}

void Router::Bind(const Identity& id, const LocationEntry& entry) {
  authoritative_[id] = entry;
  for (const Poa& poa : poas_) {
    if (poa.stage != nullptr) (void)poa.stage->Bind(id, entry);
  }
}

void Router::Unbind(const Identity& id) {
  authoritative_.erase(id);
  for (const Poa& poa : poas_) {
    if (poa.stage != nullptr) (void)poa.stage->Unbind(id);
  }
}

ResolveResult Router::ResolveAt(const Identity& id, sim::SiteId poa_site) {
  location::LocationStage* stage = StageAtSite(poa_site);
  if (stage == nullptr) {
    ResolveResult out;
    out.status = Status::Unavailable("no location stage at site " +
                                     std::to_string(poa_site));
    return out;
  }
  return stage->Resolve(id, network_->Now());
}

RouteResult Router::Route(const Identity& id, sim::SiteId poa_site) {
  RouteResult out;
  ResolveResult loc = ResolveAt(id, poa_site);
  out.resolve_cost = loc.cost;
  if (!loc.status.ok()) {
    out.status = loc.status;
    metrics_->Add("router.resolve.failed");
    return out;
  }
  if (loc.entry.partition >= map_->partition_count()) {
    out.status = Status::Internal("location entry names unknown partition " +
                                  std::to_string(loc.entry.partition));
    return out;
  }
  out.status = Status::Ok();
  out.key = loc.entry.key;
  out.partition = loc.entry.partition;
  out.rs = map_->partition(loc.entry.partition);
  metrics_->Add("router.routed");
  return out;
}

}  // namespace udr::routing
