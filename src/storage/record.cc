#include "storage/record.h"

#include <algorithm>

namespace udr::storage {
namespace {

// Byte-model constants. The packed side charges what the structures actually
// occupy (sizeof-based, contiguous entries amortize one allocation); the map
// side charges what libstdc++'s std::map<std::string, Attribute> costs per
// attribute: a red-black-tree node header (parent/left/right + color, padded)
// plus its allocation header, plus the std::string name object — the per-
// attribute overheads the packed layout eliminates.
constexpr int64_t kAllocHeader = 16;       // malloc bookkeeping per allocation.
constexpr int64_t kRbNodeHeader = 40;      // _Rb_tree_node_base + padding.
constexpr int64_t kStringObject = 32;      // sizeof(std::string), SSO buffer.
constexpr int64_t kStringSso = 15;         // chars held inline by SSO.
constexpr int64_t kMapRecordOverhead = 64; // map object + version + index slot.
// Packed record: vector object + version + hash-index slot share. Entry
// storage is charged per entry below.
constexpr int64_t kPackedRecordOverhead = 48;
// PoA read-through cache bookkeeping per cached record: doubly-linked LRU
// node + unordered_map index slot + (partition, epoch) tag, alloc headers in.
constexpr int64_t kCacheEntryOverhead = 96;

int64_t StringHeapBytes(const std::string& s) {
  return static_cast<int64_t>(s.size()) <= kStringSso
             ? 0
             : static_cast<int64_t>(s.size()) + 1 + kAllocHeader;
}

}  // namespace

std::string ValueToString(const Value& v) {
  struct Visitor {
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<std::string>& xs) const {
      std::string out = "[";
      for (size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ", ";
        out += xs[i];
      }
      out += "]";
      return out;
    }
  };
  return std::visit(Visitor{}, v);
}

int64_t ValueBytes(const Value& v) {
  struct Visitor {
    int64_t operator()(int64_t) const { return 8; }
    int64_t operator()(bool) const { return 1; }
    int64_t operator()(const std::string& s) const {
      return static_cast<int64_t>(s.size()) + 16;
    }
    int64_t operator()(const std::vector<std::string>& xs) const {
      int64_t total = 24;
      for (const auto& s : xs) total += static_cast<int64_t>(s.size()) + 16;
      return total;
    }
  };
  return std::visit(Visitor{}, v);
}

int64_t ValueHeapBytes(const Value& v) {
  struct Visitor {
    int64_t operator()(int64_t) const { return 0; }
    int64_t operator()(bool) const { return 0; }
    int64_t operator()(const std::string& s) const {
      return StringHeapBytes(s);
    }
    int64_t operator()(const std::vector<std::string>& xs) const {
      if (xs.empty()) return 0;
      int64_t total =
          kAllocHeader + static_cast<int64_t>(xs.size()) * kStringObject;
      for (const auto& s : xs) total += StringHeapBytes(s);
      return total;
    }
  };
  return std::visit(Visitor{}, v);
}

bool ValueEquals(const Value& a, const Value& b) { return a == b; }

size_t Record::LowerBound(AttrId id) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), id,
      [](const PackedAttr& e, AttrId target) { return e.name_id < target; });
  return static_cast<size_t>(it - attrs_.begin());
}

void Record::Set(std::string_view name, Value value, MicroTime at,
                 uint32_t writer) {
  SetById(AttrPool::Global().Intern(name), std::move(value), at, writer);
}

void Record::SetById(AttrId id, Value value, MicroTime at, uint32_t writer) {
  size_t pos = LowerBound(id);
  if (pos < attrs_.size() && attrs_[pos].name_id == id) {
    Attribute& attr = attrs_[pos].attr;
    attr.value = std::move(value);
    attr.modified_at = at;
    attr.writer = writer;
    return;
  }
  PackedAttr entry;
  entry.name_id = id;
  entry.attr.value = std::move(value);
  entry.attr.modified_at = at;
  entry.attr.writer = writer;
  attrs_.insert(attrs_.begin() + pos, std::move(entry));
}

bool Record::Remove(std::string_view name) {
  AttrId id = AttrPool::Global().Lookup(name);
  return id == kInvalidAttrId ? false : RemoveById(id);
}

bool Record::RemoveById(AttrId id) {
  size_t pos = LowerBound(id);
  if (pos >= attrs_.size() || attrs_[pos].name_id != id) return false;
  attrs_.erase(attrs_.begin() + pos);
  return true;
}

const Attribute* Record::Find(std::string_view name) const {
  AttrId id = AttrPool::Global().Lookup(name);
  return id == kInvalidAttrId ? nullptr : FindById(id);
}

const Attribute* Record::FindById(AttrId id) const {
  size_t pos = LowerBound(id);
  if (pos >= attrs_.size() || attrs_[pos].name_id != id) return nullptr;
  return &attrs_[pos].attr;
}

std::optional<Value> Record::Get(std::string_view name) const {
  const Attribute* attr = Find(name);
  if (attr == nullptr) return std::nullopt;
  return attr->value;
}

void Record::ForEachAttribute(
    const std::function<void(std::string_view, const Attribute&)>& fn) const {
  for (const PackedAttr& e : attrs_) {
    fn(AttrPool::Global().NameOf(e.name_id), e.attr);
  }
}

// lint:allow(storage-string-map): legacy-form shim, see record.h.
std::map<std::string, Attribute> Record::ToMap() const {
  // lint:allow(storage-string-map): legacy-form shim, see record.h.
  std::map<std::string, Attribute> out;
  for (const PackedAttr& e : attrs_) {
    out.emplace(std::string(AttrPool::Global().NameOf(e.name_id)), e.attr);
  }
  return out;
}

// lint:allow(storage-string-map): legacy-form shim, see record.h.
Record Record::FromMap(const std::map<std::string, Attribute>& attrs) {
  Record r;
  for (const auto& [name, attr] : attrs) {
    r.Set(name, attr.value, attr.modified_at, attr.writer);
  }
  return r;
}

MicroTime Record::LastModified() const {
  MicroTime latest = 0;
  for (const PackedAttr& e : attrs_) {
    latest = std::max(latest, e.attr.modified_at);
  }
  return latest;
}

int64_t Record::ApproxBytes() const {
  int64_t total = kPackedRecordOverhead;
  if (!attrs_.empty()) {
    total += kAllocHeader +
             static_cast<int64_t>(attrs_.size() * sizeof(PackedAttr));
  }
  for (const PackedAttr& e : attrs_) total += ValueHeapBytes(e.attr.value);
  return total;
}

int64_t Record::CacheFootprintBytes() const {
  // The cached copy pays the record's own packed footprint plus the cache's
  // per-entry bookkeeping (LRU list node + hash index slot + epoch tag).
  return ApproxBytes() + kCacheEntryOverhead;
}

int64_t Record::MapLayoutBytes() const {
  int64_t total = kMapRecordOverhead;
  for (const PackedAttr& e : attrs_) {
    std::string_view name = AttrPool::Global().NameOf(e.name_id);
    total += kRbNodeHeader + kAllocHeader + kStringObject;
    if (static_cast<int64_t>(name.size()) > kStringSso) {
      total += static_cast<int64_t>(name.size()) + 1 + kAllocHeader;
    }
    total += static_cast<int64_t>(sizeof(Attribute));
    total += ValueHeapBytes(e.attr.value);
  }
  return total;
}

}  // namespace udr::storage
