#include "storage/record.h"

#include <algorithm>

namespace udr::storage {

std::string ValueToString(const Value& v) {
  struct Visitor {
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<std::string>& xs) const {
      std::string out = "[";
      for (size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ", ";
        out += xs[i];
      }
      out += "]";
      return out;
    }
  };
  return std::visit(Visitor{}, v);
}

int64_t ValueBytes(const Value& v) {
  struct Visitor {
    int64_t operator()(int64_t) const { return 8; }
    int64_t operator()(bool) const { return 1; }
    int64_t operator()(const std::string& s) const {
      return static_cast<int64_t>(s.size()) + 16;
    }
    int64_t operator()(const std::vector<std::string>& xs) const {
      int64_t total = 24;
      for (const auto& s : xs) total += static_cast<int64_t>(s.size()) + 16;
      return total;
    }
  };
  return std::visit(Visitor{}, v);
}

bool ValueEquals(const Value& a, const Value& b) { return a == b; }

void Record::Set(const std::string& name, Value value, MicroTime at,
                 uint32_t writer) {
  Attribute& attr = attrs_[name];
  attr.value = std::move(value);
  attr.modified_at = at;
  attr.writer = writer;
}

bool Record::Remove(const std::string& name) { return attrs_.erase(name) > 0; }

const Attribute* Record::Find(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

std::optional<Value> Record::Get(const std::string& name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) return std::nullopt;
  return it->second.value;
}

MicroTime Record::LastModified() const {
  MicroTime latest = 0;
  for (const auto& [_, attr] : attrs_) {
    latest = std::max(latest, attr.modified_at);
  }
  return latest;
}

int64_t Record::ApproxBytes() const {
  int64_t total = 64;  // Record header + index entry overhead.
  for (const auto& [name, attr] : attrs_) {
    total += static_cast<int64_t>(name.size()) + 24 + ValueBytes(attr.value);
  }
  return total;
}

}  // namespace udr::storage
