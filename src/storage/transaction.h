// Single-storage-element ACID transactions (paper §3.2).
//
// Design decisions reproduced from the paper:
//   * ACID is guaranteed only within one storage element — there is no 2PC
//     across elements, so this manager is strictly local.
//   * Isolation for concurrent transactions on one element is READ_COMMITTED:
//     reads never take locks and see the latest committed state (plus the
//     transaction's own writes). Writers take per-record write locks with a
//     no-wait conflict policy (conflicting writers abort and retry).
//   * Cross-element "transactions" get READ_UNCOMMITTED only; that level is
//     also available here so the provisioning-system logic and tests can
//     observe the dirty-read anomalies the paper warns about.

#ifndef UDR_STORAGE_TRANSACTION_H_
#define UDR_STORAGE_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/commit_log.h"
#include "storage/record_store.h"

namespace udr::storage {

/// SQL-92 isolation levels offered by the UDR storage element.
enum class IsolationLevel {
  kReadCommitted,    ///< Intra-SE transactions (paper §3.2 decision 2).
  kReadUncommitted,  ///< Afforded to multi-SE transactions (paper §3.2).
};

using TxnId = uint64_t;

class TransactionManager;

/// Handle to an open transaction. Obtained from TransactionManager::Begin;
/// must end in exactly one Commit or Abort.
class Transaction {
 public:
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&& o) noexcept;
  Transaction& operator=(Transaction&& o) noexcept;
  ~Transaction();

  TxnId id() const { return id_; }
  IsolationLevel isolation() const { return isolation_; }
  bool active() const { return manager_ != nullptr; }

  /// Buffers an attribute upsert. Takes the record write lock; returns
  /// kAborted on a write-write conflict (the transaction stays usable but the
  /// op is not applied; telecom callers abort-and-retry whole procedures).
  Status SetAttribute(RecordKey key, const std::string& name, Value value);

  /// Buffers an attribute removal (same locking rules).
  Status RemoveAttribute(RecordKey key, const std::string& name);

  /// Buffers a whole-record delete (same locking rules).
  Status DeleteRecord(RecordKey key);

  /// Reads one attribute according to the isolation level. Never blocks.
  StatusOr<Value> GetAttribute(RecordKey key, const std::string& name) const;

  /// Reads a full record snapshot according to the isolation level.
  StatusOr<Record> GetRecord(RecordKey key) const;

  /// True when the record is visible to this transaction.
  bool RecordExists(RecordKey key) const;

  /// Commits buffered writes atomically, appending one commit-log entry with
  /// the given commit time. Returns the assigned sequence number.
  StatusOr<CommitSeq> Commit(MicroTime commit_time);

  /// Discards buffered writes and releases locks.
  void Abort();

  /// Number of buffered write operations.
  size_t write_count() const { return writes_.size(); }

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* manager, TxnId id, IsolationLevel isolation)
      : manager_(manager), id_(id), isolation_(isolation) {}

  Status LockForWrite(RecordKey key);

  TransactionManager* manager_ = nullptr;
  TxnId id_ = 0;
  IsolationLevel isolation_ = IsolationLevel::kReadCommitted;
  std::vector<WriteOp> writes_;
  std::set<RecordKey> locked_;
};

/// Per-storage-element transaction coordinator: lock table + commit path.
class TransactionManager {
 public:
  /// The manager mutates `store` and appends to `log` on commit; both must
  /// outlive it. `replica_id` stamps attribute writers for LWW merging.
  TransactionManager(RecordStore* store, CommitLog* log, uint32_t replica_id)
      : store_(store), log_(log), replica_id_(replica_id) {}

  /// Opens a transaction.
  Transaction Begin(IsolationLevel isolation = IsolationLevel::kReadCommitted);

  /// Number of currently open transactions.
  size_t active_count() const { return active_.size(); }

  /// Commits since construction.
  int64_t commits() const { return commits_; }
  /// Aborts (explicit or conflict) since construction.
  int64_t aborts() const { return aborts_; }
  /// Write-write conflicts observed.
  int64_t conflicts() const { return conflicts_; }

  uint32_t replica_id() const { return replica_id_; }
  RecordStore* store() const { return store_; }
  CommitLog* log() const { return log_; }

 private:
  friend class Transaction;

  /// Computes the record state visible to `txn` for `key`.
  bool VisibleRecord(const Transaction* txn, RecordKey key, Record* out) const;

  static void ApplyOpToRecord(Record* rec, bool* exists, const WriteOp& op);

  RecordStore* store_;
  CommitLog* log_;
  uint32_t replica_id_;
  TxnId next_txn_id_ = 1;
  std::map<RecordKey, TxnId> lock_table_;
  std::map<TxnId, Transaction*> active_;
  int64_t commits_ = 0;
  int64_t aborts_ = 0;
  int64_t conflicts_ = 0;
};

}  // namespace udr::storage

#endif  // UDR_STORAGE_TRANSACTION_H_
