#include "storage/storage_element.h"

#include <algorithm>

namespace udr::storage {

StorageElement::StorageElement(StorageElementConfig config,
                               sim::SimClock* clock, uint32_t replica_id)
    : config_(std::move(config)),
      clock_(clock),
      replica_id_(replica_id),
      txn_manager_(&store_, &log_, replica_id) {}

MicroDuration StorageElement::ReadServiceTime() const {
  // The checkpoint pass steals cycles from the engine; amortized as a small
  // factor that grows as the period shrinks (5-minute period = configured
  // factor; 1-minute period = 5x the factor, etc.).
  double factor = config_.checkpoint_overhead_factor *
                  (static_cast<double>(Minutes(5)) /
                   static_cast<double>(std::max<MicroDuration>(
                       config_.checkpoint_period, Seconds(1))));
  return static_cast<MicroDuration>(
      static_cast<double>(config_.read_service_time) * (1.0 + factor));
}

MicroDuration StorageElement::WriteServiceTime(int ops) const {
  double factor = config_.checkpoint_overhead_factor *
                  (static_cast<double>(Minutes(5)) /
                   static_cast<double>(std::max<MicroDuration>(
                       config_.checkpoint_period, Seconds(1))));
  MicroDuration base = static_cast<MicroDuration>(
      static_cast<double>(config_.write_service_time * ops) * (1.0 + factor));
  if (config_.wal_sync_commit) base += config_.wal_sync_penalty;
  return base;
}

Status StorageElement::CheckCapacity(int64_t bytes) const {
  if (store_.ApproxBytes() + bytes > config_.ram_budget_bytes) {
    return Status::ResourceExhausted(
        config_.name + ": RAM budget exceeded (" +
        std::to_string(store_.ApproxBytes() + bytes) + " > " +
        std::to_string(config_.ram_budget_bytes) + " bytes)");
  }
  return Status::Ok();
}

MicroTime StorageElement::LastCheckpointTime(MicroTime t) const {
  if (config_.checkpoint_period <= 0) return t;
  return (t / config_.checkpoint_period) * config_.checkpoint_period;
}

CommitSeq StorageElement::DurableSeqAt(MicroTime t) const {
  if (config_.wal_sync_commit) {
    // Every commit is forced to disk before acknowledging.
    return log_.SeqAtTime(t);
  }
  return log_.SeqAtTime(LastCheckpointTime(t));
}

CrashRecovery StorageElement::CrashAndRecoverLocally(MicroTime crash_time) {
  CrashRecovery out;
  out.crash_time = crash_time;
  out.last_seq_before_crash = log_.SeqAtTime(crash_time);
  out.recovered_seq = DurableSeqAt(crash_time);
  out.lost_transactions =
      static_cast<int64_t>(out.last_seq_before_crash - out.recovered_seq);
  if (out.lost_transactions > 0) {
    const LogEntry& first_lost = log_.At(out.recovered_seq + 1);
    out.data_loss_window = crash_time - first_lost.commit_time;
  }
  // RAM contents vanish; rebuild from the durable prefix.
  store_.Clear();
  log_.ReplayRange(&store_, 0, out.recovered_seq);
  log_.TruncateAfter(out.recovered_seq);
  return out;
}

}  // namespace udr::storage
