#include "storage/record_store.h"

namespace udr::storage {

const Record* RecordStore::Find(RecordKey key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

bool RecordStore::MutateRecord(RecordKey key,
                               const std::function<void(Record&)>& fn) {
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  AccountRemove(it->second);
  fn(it->second);
  it->second.bump_version();
  AccountAdd(it->second);
  return true;
}

void RecordStore::SetAttribute(RecordKey key, std::string_view name,
                               Value value, MicroTime at, uint32_t writer) {
  SetAttribute(key, AttrPool::Global().Intern(name), std::move(value), at,
               writer);
}

void RecordStore::SetAttribute(RecordKey key, AttrId attr_id, Value value,
                               MicroTime at, uint32_t writer) {
  auto [it, inserted] = records_.try_emplace(key);
  Record& rec = it->second;
  if (!inserted) AccountRemove(rec);
  rec.SetById(attr_id, std::move(value), at, writer);
  rec.bump_version();
  AccountAdd(rec);
}

void RecordStore::RemoveAttribute(RecordKey key, std::string_view name) {
  AttrId id = AttrPool::Global().Lookup(name);
  if (id != kInvalidAttrId) RemoveAttribute(key, id);
}

void RecordStore::RemoveAttribute(RecordKey key, AttrId attr_id) {
  auto it = records_.find(key);
  if (it == records_.end()) return;
  AccountRemove(it->second);
  it->second.RemoveById(attr_id);
  it->second.bump_version();
  AccountAdd(it->second);
}

const Attribute* RecordStore::FindAttribute(RecordKey key,
                                            std::string_view name) const {
  auto it = records_.find(key);
  if (it == records_.end()) return nullptr;
  return it->second.Find(name);
}

void RecordStore::PutRecord(RecordKey key, Record record) {
  auto it = records_.find(key);
  if (it != records_.end()) {
    AccountRemove(it->second);
    it->second = std::move(record);
    AccountAdd(it->second);
  } else {
    auto [pos, _] = records_.emplace(key, std::move(record));
    AccountAdd(pos->second);
  }
}

bool RecordStore::DeleteRecord(RecordKey key) {
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  AccountRemove(it->second);
  records_.erase(it);
  return true;
}

void RecordStore::ForEach(
    const std::function<void(RecordKey, const Record&)>& fn) const {
  for (const auto& [key, rec] : records_) fn(key, rec);
}

void RecordStore::Clear() {
  records_.clear();
  approx_bytes_ = 0;
}

}  // namespace udr::storage
