// Subscriber data records. A record is a set of named attributes, each with a
// value plus the modification metadata (time + writing replica) needed by the
// multi-master consistency-restoration process of the paper's §5.

#ifndef UDR_STORAGE_RECORD_H_
#define UDR_STORAGE_RECORD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"

namespace udr::storage {

/// Internal record key. The UDR addresses subscriber data by identity via the
/// data location stage; inside a storage element records live under a
/// stable 64-bit key.
using RecordKey = uint64_t;

/// Attribute value: telecom subscriber profiles mix integers (flags,
/// counters), strings (identities, addresses) and multi-valued strings
/// (IMPU lists, service triggers).
using Value = std::variant<int64_t, bool, std::string, std::vector<std::string>>;

/// Renders a value for logs and examples.
std::string ValueToString(const Value& v);

/// Approximate RAM footprint of a value in bytes.
int64_t ValueBytes(const Value& v);

/// True when two values are equal (same alternative and payload).
bool ValueEquals(const Value& a, const Value& b);

/// One attribute version: the value and who wrote it when. `writer` is a
/// replica identifier used for last-writer-wins tie-breaking during
/// consistency restoration.
struct Attribute {
  Value value;
  MicroTime modified_at = 0;
  uint32_t writer = 0;

  bool operator==(const Attribute& o) const {
    return ValueEquals(value, o.value) && modified_at == o.modified_at &&
           writer == o.writer;
  }
};

/// A subscriber data record: named attributes plus a record version that
/// increments on every committed write.
class Record {
 public:
  Record() = default;

  /// Sets (or overwrites) an attribute.
  void Set(const std::string& name, Value value, MicroTime at, uint32_t writer);

  /// Removes an attribute. Returns true if it existed.
  bool Remove(const std::string& name);

  /// Attribute lookup; nullptr when absent.
  const Attribute* Find(const std::string& name) const;

  /// Value lookup; empty when absent.
  std::optional<Value> Get(const std::string& name) const;

  bool Has(const std::string& name) const { return attrs_.count(name) > 0; }

  const std::map<std::string, Attribute>& attributes() const { return attrs_; }
  uint64_t version() const { return version_; }
  void set_version(uint64_t v) { version_ = v; }
  void bump_version() { ++version_; }

  /// Most recent attribute modification time (0 for empty records).
  MicroTime LastModified() const;

  /// Approximate RAM footprint in bytes (used for SE capacity accounting).
  int64_t ApproxBytes() const;

  bool operator==(const Record& o) const {
    return attrs_ == o.attrs_;  // Version excluded: content equality.
  }

 private:
  std::map<std::string, Attribute> attrs_;
  uint64_t version_ = 0;
};

}  // namespace udr::storage

#endif  // UDR_STORAGE_RECORD_H_
