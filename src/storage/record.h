// Subscriber data records. A record is a set of named attributes, each with a
// value plus the modification metadata (time + writing replica) needed by the
// multi-master consistency-restoration process of the paper's §5.
//
// Storage layout: attributes live in a small vector of (AttrId, Attribute)
// entries kept sorted by interned-name id — not in a std::map keyed by
// std::string. Names are shared through the process-wide AttrPool (they
// repeat across millions of subscribers), entries are contiguous (one
// allocation per record instead of one red-black-tree node per attribute),
// and lookups binary-search the packed vector after resolving the name
// through the pool with zero per-call std::string construction. ApproxBytes()
// models this packed footprint; MapLayoutBytes() models what the legacy
// std::map<std::string, Attribute> layout would cost, for the bytes/
// subscriber comparison benchmark (bench_record_layout).

#ifndef UDR_STORAGE_RECORD_H_
#define UDR_STORAGE_RECORD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/time.h"
#include "storage/attr_pool.h"

namespace udr::storage {

/// Internal record key. The UDR addresses subscriber data by identity via the
/// data location stage; inside a storage element records live under a
/// stable 64-bit key.
using RecordKey = uint64_t;

/// Attribute value: telecom subscriber profiles mix integers (flags,
/// counters), strings (identities, addresses) and multi-valued strings
/// (IMPU lists, service triggers).
using Value = std::variant<int64_t, bool, std::string, std::vector<std::string>>;

/// Renders a value for logs and examples.
std::string ValueToString(const Value& v);

/// Approximate serialized payload size of a value in bytes (wire/estimate
/// model, used by log shipping and capacity planning).
int64_t ValueBytes(const Value& v);

/// Heap bytes a value holds beyond its inline variant storage (0 for
/// integers, booleans and small-string-optimized strings). The packed
/// layout's RAM model = inline entry size + this.
int64_t ValueHeapBytes(const Value& v);

/// True when two values are equal (same alternative and payload).
bool ValueEquals(const Value& a, const Value& b);

/// One attribute version: the value and who wrote it when. `writer` is a
/// replica identifier used for last-writer-wins tie-breaking during
/// consistency restoration.
struct Attribute {
  Value value;
  MicroTime modified_at = 0;
  uint32_t writer = 0;

  bool operator==(const Attribute& o) const {
    return ValueEquals(value, o.value) && modified_at == o.modified_at &&
           writer == o.writer;
  }
};

/// One packed entry: interned name id + attribute version. Entries sort by
/// `name_id` inside a record.
struct PackedAttr {
  AttrId name_id = 0;
  Attribute attr;

  bool operator==(const PackedAttr& o) const {
    return name_id == o.name_id && attr == o.attr;
  }
};

/// A subscriber data record: named attributes plus a record version that
/// increments on every committed write.
class Record {
 public:
  Record() = default;

  /// Sets (or overwrites) an attribute by name (interned on first use).
  void Set(std::string_view name, Value value, MicroTime at, uint32_t writer);
  /// Sets (or overwrites) an attribute by interned id (the log-replay path).
  void SetById(AttrId id, Value value, MicroTime at, uint32_t writer);

  /// Removes an attribute. Returns true if it existed.
  bool Remove(std::string_view name);
  bool RemoveById(AttrId id);

  /// Attribute lookup; nullptr when absent. Resolves the name through the
  /// intern pool (no per-call std::string construction), then binary-searches
  /// the packed entries.
  const Attribute* Find(std::string_view name) const;
  const Attribute* FindById(AttrId id) const;

  /// Value lookup; empty when absent.
  std::optional<Value> Get(std::string_view name) const;

  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  /// Packed entries, sorted by interned name id.
  const std::vector<PackedAttr>& entries() const { return attrs_; }
  size_t attribute_count() const { return attrs_.size(); }

  /// Iterates attributes as (name, attribute) pairs, resolving names through
  /// the pool (replaces the old std::map accessor for serialization layers).
  void ForEachAttribute(
      const std::function<void(std::string_view, const Attribute&)>& fn) const;

  /// Unpacks into the legacy map form (tests / equivalence checks): a
  /// deliberate boundary shim — the packed layout's equivalence tests
  /// round-trip through the legacy form; no storage data path stores it.
  // lint:allow(storage-string-map): boundary shim, see doc comment above.
  std::map<std::string, Attribute> ToMap() const;
  /// Packs a legacy map form back into a record (version 0).
  // lint:allow(storage-string-map): same boundary shim as ToMap().
  static Record FromMap(const std::map<std::string, Attribute>& attrs);

  uint64_t version() const { return version_; }
  void set_version(uint64_t v) { version_ = v; }
  void bump_version() { ++version_; }

  /// Most recent attribute modification time (0 for empty records).
  MicroTime LastModified() const;

  /// Approximate RAM footprint in bytes of the packed layout (used for SE
  /// capacity accounting). Interned names are charged to the shared pool,
  /// not to individual records.
  int64_t ApproxBytes() const;

  /// Bytes the PoA read-through cache charges for holding a copy of this
  /// record: the packed payload plus the cache's per-entry bookkeeping (LRU
  /// node, index slot, epoch tag). The cache's byte budget is denominated in
  /// this, so capacity maps to real RAM and not just payload bytes.
  int64_t CacheFootprintBytes() const;

  /// What the legacy std::map<std::string, Attribute> layout would cost for
  /// this record's content: per-attribute red-black-tree node + allocation
  /// header + name string object (+ its heap spill) on top of the same
  /// attribute payload. The baseline for bench_record_layout.
  int64_t MapLayoutBytes() const;

  bool operator==(const Record& o) const {
    return attrs_ == o.attrs_;  // Version excluded: content equality.
  }

 private:
  /// First entry with name_id >= id (insertion/search position).
  size_t LowerBound(AttrId id) const;

  std::vector<PackedAttr> attrs_;  ///< Sorted by name_id.
  uint64_t version_ = 0;
};

}  // namespace udr::storage

#endif  // UDR_STORAGE_RECORD_H_
