#include "storage/transaction.h"

#include <cassert>

namespace udr::storage {

Transaction::Transaction(Transaction&& o) noexcept
    : manager_(o.manager_),
      id_(o.id_),
      isolation_(o.isolation_),
      writes_(std::move(o.writes_)),
      locked_(std::move(o.locked_)) {
  o.manager_ = nullptr;
  if (manager_ != nullptr) manager_->active_[id_] = this;
}

Transaction& Transaction::operator=(Transaction&& o) noexcept {
  if (this != &o) {
    if (manager_ != nullptr) Abort();
    manager_ = o.manager_;
    id_ = o.id_;
    isolation_ = o.isolation_;
    writes_ = std::move(o.writes_);
    locked_ = std::move(o.locked_);
    o.manager_ = nullptr;
    if (manager_ != nullptr) manager_->active_[id_] = this;
  }
  return *this;
}

Transaction::~Transaction() {
  if (manager_ != nullptr) Abort();
}

Status Transaction::LockForWrite(RecordKey key) {
  assert(manager_ != nullptr && "transaction already finished");
  if (locked_.count(key) > 0) return Status::Ok();
  auto it = manager_->lock_table_.find(key);
  if (it != manager_->lock_table_.end() && it->second != id_) {
    ++manager_->conflicts_;
    return Status::Aborted("write-write conflict on record " +
                           std::to_string(key));
  }
  manager_->lock_table_[key] = id_;
  locked_.insert(key);
  return Status::Ok();
}

Status Transaction::SetAttribute(RecordKey key, const std::string& name,
                                 Value value) {
  UDR_RETURN_IF_ERROR(LockForWrite(key));
  WriteOp op;
  op.kind = WriteKind::kUpsertAttr;
  op.key = key;
  op.attr_id = InternAttr(name);
  op.attribute.value = std::move(value);
  writes_.push_back(std::move(op));
  return Status::Ok();
}

Status Transaction::RemoveAttribute(RecordKey key, const std::string& name) {
  UDR_RETURN_IF_ERROR(LockForWrite(key));
  WriteOp op;
  op.kind = WriteKind::kRemoveAttr;
  op.key = key;
  op.attr_id = InternAttr(name);
  writes_.push_back(std::move(op));
  return Status::Ok();
}

Status Transaction::DeleteRecord(RecordKey key) {
  UDR_RETURN_IF_ERROR(LockForWrite(key));
  WriteOp op;
  op.kind = WriteKind::kDeleteRecord;
  op.key = key;
  writes_.push_back(std::move(op));
  return Status::Ok();
}

StatusOr<Value> Transaction::GetAttribute(RecordKey key,
                                          const std::string& name) const {
  Record rec;
  if (!manager_->VisibleRecord(this, key, &rec)) {
    return Status::NotFound("record " + std::to_string(key));
  }
  auto v = rec.Get(name);
  if (!v.has_value()) {
    return Status::NotFound("attribute " + name + " of record " +
                            std::to_string(key));
  }
  return *v;
}

StatusOr<Record> Transaction::GetRecord(RecordKey key) const {
  Record rec;
  if (!manager_->VisibleRecord(this, key, &rec)) {
    return Status::NotFound("record " + std::to_string(key));
  }
  return rec;
}

bool Transaction::RecordExists(RecordKey key) const {
  Record rec;
  return manager_->VisibleRecord(this, key, &rec);
}

StatusOr<CommitSeq> Transaction::Commit(MicroTime commit_time) {
  assert(manager_ != nullptr && "transaction already finished");
  TransactionManager* mgr = manager_;
  CommitSeq seq = 0;
  if (!writes_.empty()) {
    // Stamp write metadata at commit time: serialization order == commit
    // order, which is what the replication layer relays to slaves.
    for (WriteOp& op : writes_) {
      if (op.kind == WriteKind::kUpsertAttr) {
        op.attribute.modified_at = commit_time;
        op.attribute.writer = mgr->replica_id_;
      }
    }
    for (const WriteOp& op : writes_) ApplyWriteOp(mgr->store_, op);
    seq = mgr->log_->Append(commit_time, mgr->replica_id_, std::move(writes_));
  }
  for (RecordKey key : locked_) mgr->lock_table_.erase(key);
  mgr->active_.erase(id_);
  ++mgr->commits_;
  manager_ = nullptr;
  writes_.clear();
  locked_.clear();
  return seq;
}

void Transaction::Abort() {
  if (manager_ == nullptr) return;
  for (RecordKey key : locked_) manager_->lock_table_.erase(key);
  manager_->active_.erase(id_);
  ++manager_->aborts_;
  manager_ = nullptr;
  writes_.clear();
  locked_.clear();
}

Transaction TransactionManager::Begin(IsolationLevel isolation) {
  Transaction txn(this, next_txn_id_++, isolation);
  active_[txn.id()] = &txn;
  return txn;
}

void TransactionManager::ApplyOpToRecord(Record* rec, bool* exists,
                                         const WriteOp& op) {
  switch (op.kind) {
    case WriteKind::kUpsertAttr:
      rec->SetById(op.attr_id, op.attribute.value, op.attribute.modified_at,
               op.attribute.writer);
      *exists = true;
      break;
    case WriteKind::kRemoveAttr:
      if (*exists) rec->RemoveById(op.attr_id);
      break;
    case WriteKind::kDeleteRecord:
      *rec = Record();
      *exists = false;
      break;
  }
}

bool TransactionManager::VisibleRecord(const Transaction* txn, RecordKey key,
                                       Record* out) const {
  bool exists = false;
  const Record* committed = store_->Find(key);
  if (committed != nullptr) {
    *out = *committed;
    exists = true;
  } else {
    *out = Record();
  }
  // READ_UNCOMMITTED sees other transactions' buffered (dirty) writes, in
  // transaction-begin order. This is the anomaly surface the paper accepts
  // for multi-SE transactions.
  if (txn->isolation() == IsolationLevel::kReadUncommitted) {
    for (const auto& [other_id, other] : active_) {
      if (other_id == txn->id()) continue;
      for (const WriteOp& op : other->writes_) {
        if (op.key == key) ApplyOpToRecord(out, &exists, op);
      }
    }
  }
  // Both levels read their own buffered writes.
  for (const WriteOp& op : txn->writes_) {
    if (op.key == key) ApplyOpToRecord(out, &exists, op);
  }
  return exists;
}

}  // namespace udr::storage
