#include "storage/attr_pool.h"

namespace udr::storage {

AttrPool::AttrPool() { snapshot_.store(BuildSnapshot({})); }

AttrPool::Snapshot* AttrPool::BuildSnapshot(const std::deque<std::string>& names) {
  auto* snap = new Snapshot();
  size_t cap = 16;
  while (cap < names.size() * 2) cap <<= 1;  // Load factor <= 0.5.
  snap->mask = cap - 1;
  snap->slots.assign(cap, Slot());
  snap->names.reserve(names.size());
  for (size_t id = 0; id < names.size(); ++id) {
    std::string_view name(names[id]);
    snap->names.push_back(name);
    size_t slot = HashName(name) & snap->mask;
    while (snap->slots[slot].id != kInvalidAttrId) {
      slot = (slot + 1) & snap->mask;
    }
    snap->slots[slot] = Slot{name, static_cast<AttrId>(id)};
  }
  return snap;
}

AttrId AttrPool::Intern(std::string_view name) {
  AttrId id = Lookup(name);
  if (id != kInvalidAttrId) return id;
  common::MutexLock lock(write_mu_);
  id = Lookup(name);  // Raced with another interner?
  if (id != kInvalidAttrId) return id;
  id = static_cast<AttrId>(names_.size());
  names_.emplace_back(name);
  pool_bytes_ += static_cast<int64_t>(sizeof(std::string) + name.size());
  const Snapshot* fresh = BuildSnapshot(names_);
  retired_.emplace_back(snapshot_.load(std::memory_order_relaxed));
  snapshot_.store(fresh, std::memory_order_release);
  return id;
}

int64_t AttrPool::PoolBytes() const {
  common::MutexLock lock(write_mu_);
  return pool_bytes_;
}

}  // namespace udr::storage
