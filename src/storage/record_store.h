// Committed-state record store: the RAM-resident hash-indexed table that a
// storage element keeps for one (sub-)partition of the subscriber space.

#ifndef UDR_STORAGE_RECORD_STORE_H_
#define UDR_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "storage/record.h"

namespace udr::storage {

/// Hash-indexed in-memory record table with byte accounting.
class RecordStore {
 public:
  /// Looks up a record; nullptr when absent.
  const Record* Find(RecordKey key) const;

  /// In-place mutation with byte re-accounting. The record's footprint is
  /// subtracted before `fn` runs and re-added after, so `fn` may freely grow
  /// or shrink the record without desynchronizing ApproxBytes() — the
  /// footgun the old bare mutable lookup allowed. Returns false when the key
  /// is absent (`fn` is not called).
  bool MutateRecord(RecordKey key, const std::function<void(Record&)>& fn);

  bool Contains(RecordKey key) const { return records_.count(key) > 0; }

  /// Sets one attribute, creating the record if needed. The name is interned
  /// on first use; the AttrId overload is the log-replay fast path.
  void SetAttribute(RecordKey key, std::string_view name, Value value,
                    MicroTime at, uint32_t writer);
  void SetAttribute(RecordKey key, AttrId attr_id, Value value, MicroTime at,
                    uint32_t writer);

  /// Removes one attribute; removes nothing if absent.
  void RemoveAttribute(RecordKey key, std::string_view name);
  void RemoveAttribute(RecordKey key, AttrId attr_id);

  /// Single-attribute read fast path: record hash lookup + packed binary
  /// search, resolving the name through the intern pool — no per-call
  /// std::string construction anywhere. nullptr when record or attribute is
  /// absent.
  const Attribute* FindAttribute(RecordKey key, std::string_view name) const;

  /// Inserts or replaces a whole record.
  void PutRecord(RecordKey key, Record record);

  /// Deletes a record. Returns true if it existed.
  bool DeleteRecord(RecordKey key);

  /// Number of records.
  int64_t Count() const { return static_cast<int64_t>(records_.size()); }

  /// Approximate RAM usage in bytes.
  int64_t ApproxBytes() const { return approx_bytes_; }

  /// Iterates all records (scan order is unspecified but deterministic for a
  /// given insertion history).
  void ForEach(const std::function<void(RecordKey, const Record&)>& fn) const;

  /// Removes everything.
  void Clear();

 private:
  void AccountRemove(const Record& r) { approx_bytes_ -= r.ApproxBytes(); }
  void AccountAdd(const Record& r) { approx_bytes_ += r.ApproxBytes(); }

  std::unordered_map<RecordKey, Record> records_;
  int64_t approx_bytes_ = 0;
};

}  // namespace udr::storage

#endif  // UDR_STORAGE_RECORD_STORE_H_
