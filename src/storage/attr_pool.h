// Process-wide attribute-name intern pool. Telecom subscriber profiles use a
// small closed vocabulary of attribute names (msisdn, cfu-number, auth-key,
// ...) repeated across millions of records; storing each name once and
// referencing it by a 32-bit AttrId is what makes the packed record layout
// (record.h) memory-lean, and resolving lookups through the pool by
// std::string_view is what removes per-call std::string construction from
// the attribute hot path.
//
// Thread safety: the pool is shared by every shard of the multi-threaded
// execution mode (src/exec/), and attribute lookup is THE data-path hot
// path, so the read side is lock-free: Lookup()/NameOf() probe an immutable
// open-addressed snapshot published through an atomic pointer (no mutex, no
// refcount, no allocation per call). First-time interning rebuilds the
// snapshot under a mutex and publishes it with release semantics; retired
// snapshots are parked until the pool dies, so a reader can never touch a
// freed table. Interned names are never freed and their ids are dense and
// stable for the process lifetime.

#ifndef UDR_STORAGE_ATTR_POOL_H_
#define UDR_STORAGE_ATTR_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace udr::storage {

/// Dense id of an interned attribute name.
using AttrId = uint32_t;

/// Sentinel returned by Lookup() for a never-interned name.
inline constexpr AttrId kInvalidAttrId = 0xFFFFFFFFu;

class AttrPool {
 public:
  /// The process-wide pool every record layout references into. Leaked on
  /// purpose: ids and name views are valid for the process lifetime. Inline
  /// so the hot path pays a guard check, not a cross-TU call.
  static AttrPool& Global() {
    static AttrPool* pool = new AttrPool();
    return *pool;
  }

  AttrPool();

  /// Id of `name`, interning it on first use.
  AttrId Intern(std::string_view name) EXCLUDES(write_mu_);

  /// Id of `name` if already interned, kInvalidAttrId otherwise. Lock-free
  /// and allocation-free — the read-side hot path for attribute lookups
  /// (inline, header-defined, so callers pay no cross-TU call).
  AttrId Lookup(std::string_view name) const {
    const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
    size_t i = HashName(name) & snap->mask;
    for (;;) {
      const Slot& slot = snap->slots[i];
      if (slot.id == kInvalidAttrId) return kInvalidAttrId;
      if (slot.key == name) return slot.id;
      i = (i + 1) & snap->mask;
    }
  }

  /// Name of an interned id. Lock-free; the view stays valid forever (names
  /// are never freed or moved).
  std::string_view NameOf(AttrId id) const {
    const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
    return id < snap->names.size() ? snap->names[id]
                                   : std::string_view("<unknown-attr>");
  }

  /// Number of distinct interned names.
  size_t size() const {
    return snapshot_.load(std::memory_order_acquire)->names.size();
  }

  /// Bytes held by the shared name storage (amortized across every record
  /// in the process; reported separately from per-record footprints).
  int64_t PoolBytes() const EXCLUDES(write_mu_);

 private:
  /// One immutable snapshot: an open-addressed (power-of-two, linear-probe)
  /// hash table over the interned names plus the id -> name view. Readers
  /// acquire-load the pointer and probe; writers build a fresh one.
  struct Slot {
    std::string_view key;
    AttrId id = kInvalidAttrId;  ///< kInvalidAttrId = empty slot.
  };
  struct Snapshot {
    std::vector<Slot> slots;
    std::vector<std::string_view> names;  ///< names[id], dense.
    size_t mask = 0;
  };

  /// Word-wise FNV-1a variant: attribute names are 4-20 chars, so hashing
  /// 8-byte words (1-3 multiplies) instead of bytes keeps the whole lookup
  /// in the ~10ns range. Seeding with the length differentiates prefixes.
  static size_t HashName(std::string_view name) {
    uint64_t h = 0xcbf29ce484222325ULL ^
                 (static_cast<uint64_t>(name.size()) * 0x100000001b3ULL);
    const char* p = name.data();
    size_t n = name.size();
    while (n >= 8) {
      uint64_t w;
      __builtin_memcpy(&w, p, 8);
      h = (h ^ w) * 0x100000001b3ULL;
      p += 8;
      n -= 8;
    }
    uint64_t tail = 0;
    __builtin_memcpy(&tail, p, n);
    h = (h ^ tail) * 0x100000001b3ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }

  static Snapshot* BuildSnapshot(const std::deque<std::string>& names);

  /// The atomic-snapshot publication point. Deliberately NOT GUARDED_BY:
  /// readers acquire-load it lock-free (the hot path), and ONLY writers —
  /// who hold write_mu_ — store it. The analysis cannot express a
  /// "lock-free read / locked write" atomic, so the store-side discipline
  /// is documented here and enforced by Intern() being the sole store site.
  std::atomic<const Snapshot*> snapshot_;

  mutable common::Mutex write_mu_{
      "storage.attr_pool.write"};  ///< Serializes interning only.
  /// Stable storage: deque never moves existing strings on growth, so every
  /// snapshot's views and the views NameOf() hands out stay valid.
  std::deque<std::string> names_ GUARDED_BY(write_mu_);
  /// Superseded snapshots, parked until the pool dies (readers may still be
  /// probing them; the attr vocabulary is tiny, so this is bytes, not megs).
  std::vector<std::unique_ptr<const Snapshot>> retired_ GUARDED_BY(write_mu_);
  int64_t pool_bytes_ GUARDED_BY(write_mu_) = 0;
};

/// Convenience wrappers over AttrPool::Global().
inline AttrId InternAttr(std::string_view name) {
  return AttrPool::Global().Intern(name);
}
inline AttrId LookupAttr(std::string_view name) {
  return AttrPool::Global().Lookup(name);
}
inline std::string_view AttrNameOf(AttrId id) {
  return AttrPool::Global().NameOf(id);
}

}  // namespace udr::storage

#endif  // UDR_STORAGE_ATTR_POOL_H_
