// The per-storage-element commit log. Every committed transaction appends one
// entry containing its write set in serialization order. The log is the
// single source of truth for three mechanisms of the paper:
//   * periodic checkpoint-to-disk (§3.1 decision 1): disk state == replay of
//     the log up to the checkpoint sequence number;
//   * master->slave replication (§3.2): slaves apply the identical entry
//     order, which is the paper's serialization-order guarantee;
//   * crash recovery: RAM contents after an unplanned restart are whatever
//     the disk had, i.e. entries after the checkpoint are lost unless a
//     remote slave already received them.

#ifndef UDR_STORAGE_COMMIT_LOG_H_
#define UDR_STORAGE_COMMIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "storage/record.h"

namespace udr::storage {

/// Sequence number of a committed transaction within one replica set.
/// Sequence 0 means "nothing committed"; the first commit is 1.
using CommitSeq = uint64_t;

/// Kinds of record mutation carried in a log entry.
enum class WriteKind {
  kUpsertAttr,   ///< Set one attribute of a record (creating the record).
  kRemoveAttr,   ///< Remove one attribute.
  kDeleteRecord, ///< Delete the whole record.
};

/// One mutation of the write set. Attribute names travel as interned AttrIds
/// — a log entry serializes 4 bytes per name instead of the string, and
/// replay applies by id without re-hashing the name (the packed-layout
/// serialization path).
struct WriteOp {
  WriteKind kind = WriteKind::kUpsertAttr;
  RecordKey key = 0;
  AttrId attr_id = 0;   ///< Interned attribute name (kUpsertAttr / kRemoveAttr).
  Attribute attribute;  ///< New attribute version (kUpsertAttr).

  /// Pool-resolved attribute name (debugging / serialization to text).
  std::string_view attr_name() const { return AttrNameOf(attr_id); }
};

/// Approximate serialized size of one write op as shipped by the log-based
/// replication and migration streams: key + kind + interned name id +
/// metadata, plus the value payload for upserts.
int64_t WriteOpWireBytes(const WriteOp& op);

/// One committed transaction.
struct LogEntry {
  CommitSeq seq = 0;
  MicroTime commit_time = 0;
  uint32_t origin_replica = 0;  ///< Replica id that executed the transaction.
  std::vector<WriteOp> ops;
};

class RecordStore;

/// Append-only, in-order commit log.
class CommitLog {
 public:
  /// Appends an entry; assigns and returns the next sequence number.
  CommitSeq Append(MicroTime commit_time, uint32_t origin_replica,
                   std::vector<WriteOp> ops);

  /// Last assigned sequence (0 when empty).
  CommitSeq LastSeq() const { return entries_.empty() ? 0 : entries_.back().seq; }

  /// Number of entries.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entry access by sequence number (seq in [1, LastSeq()]).
  const LogEntry& At(CommitSeq seq) const { return entries_[seq - 1]; }

  const std::vector<LogEntry>& entries() const { return entries_; }

  /// Greatest sequence with commit_time <= t (0 if none).
  CommitSeq SeqAtTime(MicroTime t) const;

  /// Applies entries (from_seq, to_seq] to the store in order.
  void ReplayRange(RecordStore* store, CommitSeq from_seq, CommitSeq to_seq) const;

  /// Truncates everything after `seq` (used when a crashed master rejoins and
  /// must discard unreplicated suffix entries).
  void TruncateAfter(CommitSeq seq);

  /// Clears the log.
  void Reset() { entries_.clear(); }

 private:
  std::vector<LogEntry> entries_;
};

/// Applies one write op to a store (shared by replay and replication).
void ApplyWriteOp(RecordStore* store, const WriteOp& op);

}  // namespace udr::storage

#endif  // UDR_STORAGE_COMMIT_LOG_H_
